package symbee

import (
	"bytes"
	"errors"
	"testing"
)

// TestReassemblerResyncAfterLostTail is the regression test for the
// truncated-delivery bug: losing the LAST fragment of one message made
// the old reassembler accept the tail of the NEXT message as a complete
// short message. The fixed reassembler drops frames until a message
// boundary passes and resumes cleanly on the message after that.
func TestReassemblerResyncAfterLostTail(t *testing.T) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMessenger(link)
	msg1 := bytes.Repeat([]byte{0xA1}, MaxDataBytes*3)
	msg2 := bytes.Repeat([]byte{0xB2}, MaxDataBytes*2)
	msg3 := []byte("after")
	frames1, err := m.Fragment(msg1)
	if err != nil {
		t.Fatal(err)
	}
	frames2, err := m.Fragment(msg2)
	if err != nil {
		t.Fatal(err)
	}
	frames3, err := m.Fragment(msg3)
	if err != nil {
		t.Fatal(err)
	}

	var r Reassembler
	// msg1 arrives minus its final fragment.
	for _, f := range frames1[:len(frames1)-1] {
		if _, done, err := r.Add(f); err != nil || done {
			t.Fatalf("msg1 prefix: done=%v err=%v", done, err)
		}
	}
	// msg2's first fragment exposes the gap.
	if _, _, err := r.Add(frames2[0]); !errors.Is(err, ErrFragmentGap) {
		t.Fatalf("err = %v, want ErrFragmentGap", err)
	}
	// msg2's final fragment must be DROPPED, not delivered as a message:
	// the reassembler cannot know it isn't the tail of the broken one.
	msg, done, err := r.Add(frames2[1])
	if err != nil || done || msg != nil {
		t.Fatalf("post-gap tail delivered: msg=%q done=%v err=%v", msg, done, err)
	}
	// The boundary has now passed: msg3 reassembles normally.
	got, done, err := r.Add(frames3[0])
	if err != nil || !done || !bytes.Equal(got, msg3) {
		t.Fatalf("msg3 after resync: msg=%q done=%v err=%v", got, done, err)
	}
}

// TestReassemblerResyncAcrossContinuations: when the gap frame itself
// has FlagMore set, every following continuation fragment is dropped
// too, not just the first.
func TestReassemblerResyncAcrossContinuations(t *testing.T) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMessenger(link)
	frames1, err := m.Fragment(bytes.Repeat([]byte{1}, MaxDataBytes*2))
	if err != nil {
		t.Fatal(err)
	}
	frames2, err := m.Fragment(bytes.Repeat([]byte{2}, MaxDataBytes*4))
	if err != nil {
		t.Fatal(err)
	}

	var r Reassembler
	if _, _, err := r.Add(frames1[0]); err != nil {
		t.Fatal(err)
	}
	// Lose frames1[1]; msg2 starts with a continuation-flagged frame.
	if _, _, err := r.Add(frames2[0]); !errors.Is(err, ErrFragmentGap) {
		t.Fatalf("err = %v, want ErrFragmentGap", err)
	}
	for i, f := range frames2[1:] {
		msg, done, err := r.Add(f)
		if err != nil || done || msg != nil {
			t.Fatalf("resync frame %d: msg=%q done=%v err=%v", i, msg, done, err)
		}
	}
	// Boundary passed with frames2's final fragment: next message works.
	fresh, err := m.Fragment([]byte("fresh"))
	if err != nil {
		t.Fatal(err)
	}
	got, done, err := r.Add(fresh[0])
	if err != nil || !done || !bytes.Equal(got, []byte("fresh")) {
		t.Fatalf("post-resync message: msg=%q done=%v err=%v", got, done, err)
	}
}

// TestReassemblerResetClearsResync: an explicit Reset abandons
// resynchronization and the very next frame starts a message.
func TestReassemblerResetClearsResync(t *testing.T) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMessenger(link)
	frames1, err := m.Fragment(bytes.Repeat([]byte{1}, MaxDataBytes*2))
	if err != nil {
		t.Fatal(err)
	}
	frames2, err := m.Fragment(bytes.Repeat([]byte{2}, MaxDataBytes*2))
	if err != nil {
		t.Fatal(err)
	}
	var r Reassembler
	if _, _, err := r.Add(frames1[0]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Add(frames2[0]); !errors.Is(err, ErrFragmentGap) {
		t.Fatalf("err = %v, want ErrFragmentGap", err)
	}
	r.Reset()
	msg, err := func() ([]byte, error) {
		fresh, err := m.Fragment([]byte("go"))
		if err != nil {
			return nil, err
		}
		got, done, err := r.Add(fresh[0])
		if err != nil || !done {
			t.Fatalf("after Reset: done=%v err=%v", done, err)
		}
		return got, nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg, []byte("go")) {
		t.Fatalf("after Reset got %q", msg)
	}
}
