// Mobility: a jogger's fitness sensor streams data to a WiFi access
// point while passing by (the Fig. 23 track-and-field study as an
// application). A multi-fragment message is sent at three carrier
// speeds; the Messenger/Reassembler pair handles fragmentation and the
// demo reports delivery quality per speed.
package main

import (
	"fmt"
	"log"

	"symbee"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	link, err := symbee.NewLink(symbee.Params20(), symbee.CanonicalCompensation)
	if err != nil {
		return err
	}

	message := []byte("HR=142bpm;pace=5:20/km;gps=38.83,-77.31;t=162s")
	fmt.Printf("streaming %d-byte reading (%d fragments of ≤%d bytes)\n\n",
		len(message), (len(message)+symbee.MaxDataBytes-1)/symbee.MaxDataBytes, symbee.MaxDataBytes)
	fmt.Printf("%-10s %-8s %-12s %-10s\n", "carrier", "mph", "fragments ok", "message")

	speeds := []struct {
		label string
		mph   float64
		mps   float64
	}{
		{"walking", 3.4, 1.52},
		{"running", 5.3, 2.37},
		{"cycling", 9.3, 4.16},
	}
	for _, sp := range speeds {
		ch, err := symbee.NewChannel(symbee.ChannelConfig{
			Scenario: "outdoor",
			Distance: 15,
			SpeedMps: sp.mps,
			Seed:     int64(sp.mph * 10),
		})
		if err != nil {
			return err
		}

		// Retransmit each fragment until acknowledged (up to 5 tries),
		// as an upper layer would under packet loss.
		m := symbee.NewMessenger(link)
		frames, err := m.Fragment(message)
		if err != nil {
			return err
		}
		var r symbee.Reassembler
		delivered, ok := []byte(nil), 0
		for _, f := range frames {
			sig, err := link.TransmitFrame(f)
			if err != nil {
				return err
			}
			for try := 0; try < 5; try++ {
				capture, err := ch.Transmit(sig)
				if err != nil {
					return err
				}
				got, err := link.ReceiveFrame(capture)
				if err != nil {
					continue // lost or corrupted: retransmit
				}
				if msg, done, err := r.Add(got); err == nil {
					ok++
					if done {
						delivered = msg
					}
					break
				}
			}
		}
		status := "LOST"
		if string(delivered) == string(message) {
			status = "delivered intact"
		} else if delivered != nil {
			status = "corrupted"
		}
		fmt.Printf("%-10s %-8.1f %2d/%-9d %s\n", sp.label, sp.mph, ok, len(frames), status)
	}
	fmt.Println("\nfaster carriers fade more often; CRC-protected frames plus retransmission cover it")
	return nil
}
