// Quickstart: send "hello, wifi" from a simulated ZigBee node to a WiFi
// receiver across an office at 10 m — the minimal end-to-end SymBee
// flow: frame → payload encoding → OQPSK packet → channel → idle
// listening phases → decode.
package main

import (
	"fmt"
	"log"

	"symbee"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// One link object holds the encoder, the ZigBee modulator, the WiFi
	// front-end and the decoder. CanonicalCompensation undoes the
	// carrier offset between whatever overlapping WiFi/ZigBee channel
	// pair is in use — it is the same constant for all of them.
	link, err := symbee.NewLink(symbee.Params20(), symbee.CanonicalCompensation)
	if err != nil {
		return err
	}

	frame := &symbee.Frame{Seq: 1, Data: []byte("hello, wifi")[:symbee.MaxDataBytes]}
	signal, err := link.TransmitFrame(frame)
	if err != nil {
		return err
	}
	fmt.Printf("TX: frame seq=%d data=%q → ZigBee packet of %d IQ samples (%.0f µs)\n",
		frame.Seq, frame.Data, len(signal), float64(len(signal))/20)

	// Seed picks one channel realization; the office at 10 m has ~10%
	// frame error rate (Fig. 15), so some seeds genuinely lose the frame
	// — that is what the reliability layer (internal/reliable) is for.
	ch, err := symbee.NewChannel(symbee.ChannelConfig{
		Scenario: "office",
		Distance: 10,
		Seed:     1,
	})
	if err != nil {
		return err
	}
	capture, err := ch.Transmit(signal)
	if err != nil {
		return err
	}

	got, err := link.ReceiveFrame(capture)
	if err != nil {
		return err
	}
	fmt.Printf("RX: frame seq=%d data=%q — decoded from WiFi idle-listening phases alone\n",
		got.Seq, got.Data)

	// The same capture through the streaming API: a receiver built with
	// functional options accepts IQ in arbitrary chunks — a live SDR
	// feed — and emits decode events incrementally. The default options
	// already select Params20 and the canonical compensation.
	rx, err := symbee.NewReceiver(symbee.Params20())
	if err != nil {
		return err
	}
	for off := 0; off < len(capture); off += 4096 {
		end := off + 4096
		if end > len(capture) {
			end = len(capture)
		}
		rx.PushIQ(capture[off:end])
	}
	rx.Flush()
	for _, ev := range rx.Drain() {
		if ev.Kind == symbee.EventFrame {
			fmt.Printf("RX (streaming): frame seq=%d data=%q from 4096-sample chunks\n",
				ev.Frame.Seq, ev.Frame.Data)
		}
	}

	fmt.Printf("raw SymBee rate: %.2f kbps (1 bit per %.0f µs payload byte)\n",
		symbee.RawBitRate/1000, symbee.Params20().BitDuration()*1e6)
	return nil
}
