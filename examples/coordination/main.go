// Cross-technology channel coordination (§II-A, §VI-A): a SymBee
// broadcast announces a ZigBee reservation window to WiFi devices, which
// then restrain their channel usage, while ZigBee sensors upload inside
// the window. The demo contrasts implicit CSMA coexistence against the
// explicit reservation: the MAC-level simulation shows how much of the
// offered ZigBee traffic survives each regime.
//
// This example demonstrates the internal/mac substrate in addition to
// the public API; see examples/broadcast for the pure-API broadcast.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"symbee"
	"symbee/internal/mac"
	"symbee/internal/zigbee"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Step 1: the coordinator broadcasts the reservation as a SymBee
	// frame. Flags=0x2 marks a reservation message; the payload carries
	// the window in milliseconds.
	link, err := symbee.NewLink(symbee.Params20(), symbee.CanonicalCompensation)
	if err != nil {
		return err
	}
	frame := &symbee.Frame{Seq: 1, Flags: 0x2, Data: []byte("RSV 500ms")}
	sig, err := link.TransmitFrame(frame)
	if err != nil {
		return err
	}
	ch, err := symbee.NewChannel(symbee.ChannelConfig{Scenario: "office", Distance: 8, Seed: 1})
	if err != nil {
		return err
	}
	var got *symbee.Frame
	tries := 0
	for ; tries < 5; tries++ {
		capture, err := ch.Transmit(sig)
		if err != nil {
			return err
		}
		if got, err = link.ReceiveFrame(capture); err == nil {
			break
		}
	}
	if got == nil {
		return fmt.Errorf("reservation broadcast lost after %d tries", tries)
	}
	fmt.Printf("WiFi AP received reservation %q (try %d) — restraining for the window\n\n",
		got.Data, tries+1)

	// Step 2: compare ZigBee upload delivery with and without the
	// honored reservation, under heavy WiFi background.
	const (
		horizon  = 0.5 // the reserved half second
		nodes    = 12
		rate     = 20.0 // packets/s/node
		wifiDuty = 0.80 // heavy traffic when not restraining
	)
	airtime := zigbee.Airtime(104) // 100-bit SymBee packet

	runRegime := func(duty float64, seed int64) mac.Stats {
		rng := rand.New(rand.NewSource(seed))
		sim, err := mac.NewSim(mac.DefaultConfig(), rng)
		if err != nil {
			log.Fatal(err)
		}
		sim.AddWiFiBackground(horizon, duty, 2e-3)
		packets := mac.PoissonArrivals(nodes, rate, horizon, airtime, rng)
		return mac.Summarize(sim.Run(packets))
	}

	implicit := runRegime(wifiDuty, 7) // CSMA/CA only, WiFi blasting
	explicit := runRegime(0.02, 7)     // reservation honored (residual beacons)

	fmt.Printf("%-28s %-10s %-10s %-12s %-10s\n", "regime", "delivered", "collided", "access fail", "delay")
	for _, row := range []struct {
		name string
		st   mac.Stats
	}{
		{"implicit CSMA/CA coexistence", implicit},
		{"explicit SymBee reservation", explicit},
	} {
		fmt.Printf("%-28s %-10s %-10d %-12d %.1f ms\n",
			row.name,
			fmt.Sprintf("%d/%d", row.st.Delivered, row.st.Attempted),
			row.st.Collided, row.st.AccessFailures, row.st.MeanDelay*1000)
	}
	fmt.Println("\nthe broadcast costs one ZigBee packet and reaches both technologies at once")
	return nil
}
