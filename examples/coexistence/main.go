// Coexistence: an IoT sensor uploads readings to WiFi through heavy
// interference — the Fig. 21 scenario as an application. The message is
// protected with Hamming(7,4) link-layer coding; the demo compares raw
// and coded delivery across the library preset (the paper's worst WiFi
// environment) at increasing distance.
package main

import (
	"fmt"
	"log"

	"symbee"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	link, err := symbee.NewLink(symbee.Params20(), symbee.CanonicalCompensation)
	if err != nil {
		return err
	}

	// An 8-byte sensor reading: 64 data bits.
	reading := []byte{0x21, 0x5A, 0x00, 0xC7, 0x19, 0x84, 0x3F, 0x02}
	dataBits := symbee.BytesToBits(reading)
	codedBits := symbee.HammingEncodeBits(dataBits)

	rawSig, err := link.TransmitBits(dataBits)
	if err != nil {
		return err
	}
	codedSig, err := link.TransmitBits(codedBits)
	if err != nil {
		return err
	}
	fmt.Printf("sensor reading: %d data bits raw, %d bits after Hamming(7,4)\n\n",
		len(dataBits), len(codedBits))
	fmt.Printf("%-10s  %-12s  %-12s\n", "distance", "raw errors", "coded errors")

	const trials = 20
	for _, distance := range []float64{5, 10, 15, 20} {
		ch, err := symbee.NewChannel(symbee.ChannelConfig{
			Scenario: "library",
			Distance: distance,
			Seed:     int64(distance),
		})
		if err != nil {
			return err
		}
		rawErrs, codedErrs := 0, 0
		for i := 0; i < trials; i++ {
			// Raw path.
			capture, err := ch.Transmit(rawSig)
			if err != nil {
				return err
			}
			if got, err := link.ReceiveBits(capture, len(dataBits)); err == nil {
				rawErrs += bitErrors(got, dataBits)
			} else {
				rawErrs += len(dataBits) // lost packet
			}

			// Coded path.
			capture, err = ch.Transmit(codedSig)
			if err != nil {
				return err
			}
			if got, err := link.ReceiveBits(capture, len(codedBits)); err == nil {
				decoded, _, err := symbee.HammingDecodeBits(got)
				if err == nil {
					codedErrs += bitErrors(decoded[:len(dataBits)], dataBits)
					continue
				}
			}
			codedErrs += len(dataBits)
		}
		fmt.Printf("%-10v  %3d/%-8d  %3d/%-8d\n",
			fmt.Sprintf("%.0f m", distance),
			rawErrs, trials*len(dataBits),
			codedErrs, trials*len(dataBits))
	}
	fmt.Println("\nHamming(7,4) halves the residual error rate at the cost of 7/4 airtime (Fig. 21)")
	return nil
}

func bitErrors(got, want []byte) int {
	n := 0
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			n++
		}
	}
	return n
}
