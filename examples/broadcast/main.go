// Cross-technology broadcast (§VI-A): ONE ZigBee transmission received
// simultaneously by a WiFi device (from idle-listening phase patterns)
// and by a neighbouring ZigBee node (as an ordinary packet whose payload
// bytes it inspects at the application layer). This is the primitive
// behind explicit WiFi/ZigBee channel coordination: a single message,
// e.g. a spectrum reservation, reaches both technologies at once.
package main

import (
	"fmt"
	"log"

	"symbee"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	link, err := symbee.NewLink(symbee.Params20(), symbee.CanonicalCompensation)
	if err != nil {
		return err
	}

	// A channel-coordination message: "ZigBee reserves the band for the
	// next 50 ms" — flags carry the message type.
	reservation := &symbee.Frame{Seq: 7, Flags: 0x2, Data: []byte("RSV 50ms")}
	signal, err := link.TransmitFrame(reservation)
	if err != nil {
		return err
	}
	fmt.Printf("broadcast: seq=%d flags=%X %q\n\n", reservation.Seq, reservation.Flags, reservation.Data)

	// --- Receiver 1: WiFi, via cross-observed phases. -------------------
	wifiCh, err := symbee.NewChannel(symbee.ChannelConfig{
		Scenario: "classroom", Distance: 12, Seed: 9,
	})
	if err != nil {
		return err
	}
	capture, err := wifiCh.Transmit(signal)
	if err != nil {
		return err
	}
	atWiFi, err := link.ReceiveFrame(capture)
	if err != nil {
		return fmt.Errorf("wifi side: %w", err)
	}
	fmt.Printf("WiFi   receiver: decoded %q from idle-listening phases\n", atWiFi.Data)

	// --- Receiver 2: ZigBee, natively. ----------------------------------
	// A ZigBee neighbour demodulates the very same packet with its
	// standard OQPSK receiver (its own channel: no carrier offset) and
	// reads the SymBee message straight out of the payload bytes —
	// plain application code, no firmware change.
	zigCh, err := symbee.NewChannel(symbee.ChannelConfig{
		Scenario: "classroom", Distance: 8, Seed: 10,
		SameTechnology: true, // tuned to the ZigBee channel: no offset
	})
	if err != nil {
		return err
	}
	zigCapture, err := zigCh.Transmit(signal)
	if err != nil {
		return err
	}
	payload, err := symbee.ReceiveZigBee(zigCapture, 20e6)
	if err != nil {
		return fmt.Errorf("zigbee side: %w", err)
	}
	fmt.Printf("ZigBee receiver: packet payload starts % X ...\n", payload[:8])
	atZigBee, err := symbee.DecodeBroadcastPayload(payload)
	if err != nil {
		return fmt.Errorf("zigbee side parse: %w", err)
	}
	fmt.Printf("ZigBee receiver: decoded %q from payload codewords\n", atZigBee.Data)

	if string(atWiFi.Data) == string(atZigBee.Data) {
		fmt.Println("\nboth technologies received the same reservation — coordination achieved")
	}
	return nil
}
