package symbee

import (
	"symbee/internal/core"
	"symbee/internal/reliable"
)

// Unified error taxonomy. Every failure the public surface can return
// wraps (or is) one of these sentinels, so callers discriminate with
// errors.Is instead of matching message strings:
//
//	frame, err := link.ReceiveFrame(capture)
//	switch {
//	case errors.Is(err, symbee.ErrNoPreamble): // nothing SymBee in the capture
//	case errors.Is(err, symbee.ErrCRC):        // frame arrived, checksum failed
//	case errors.Is(err, symbee.ErrBadLength):  // truncated stream or oversized data
//	}
//
// The reliability layer adds ErrWindowFull (its send window cannot
// accept another frame) and ErrTimeout (the retransmission budget is
// exhausted).
var (
	// ErrNoPreamble: no SymBee preamble was found in the capture.
	ErrNoPreamble = core.ErrNoPreamble
	// ErrCRC: a frame arrived but its CRC-16 did not validate.
	ErrCRC = core.ErrCRC
	// ErrBadLength: a length is out of range — data too long to encode,
	// a capture too short to decode, or a header claiming an impossible
	// size. Wrapped by the more specific core sentinels (ErrDataTooLong,
	// ErrTruncated), so errors.Is works against either granularity.
	ErrBadLength = core.ErrBadLength
	// ErrWindowFull: the ARQ send window has no room for another frame.
	ErrWindowFull = reliable.ErrWindowFull
	// ErrTimeout: the ARQ retransmission budget was exhausted without an
	// acknowledgment.
	ErrTimeout = reliable.ErrTimeout
)
