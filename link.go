package symbee

import "symbee/internal/link"

// Link-stack re-exports: the layered receive pipeline of internal/link
// through the public surface. Every receive path in this repository —
// the batch decode, the streaming pool sessions and the reliable
// harness — is one configuration of the same Stack.
type (
	// Stack is the composed receive pipeline: optional IQ front end →
	// phase layers → frame machine → event sinks.
	Stack = link.Stack
	// StackSpec configures a custom Stack assembly.
	StackSpec = link.Spec
	// LayerStats is one pipeline layer's in/out/error accounting.
	LayerStats = link.LayerStats
)

var (
	// NewStack assembles a custom pipeline from a spec.
	NewStack = link.New
	// NewBatchStack is the whole-capture preset: phase-fed, unbounded
	// history, bit-identical to the historical Decoder.DecodeFrame.
	NewBatchStack = link.NewBatch
	// NewStreamingStack is the bounded-history incremental preset used
	// by pool sessions (IQ front end included).
	NewStreamingStack = link.NewStreaming
	// DecodeBatch runs one whole capture of phase values through a batch
	// stack and returns the first decoded frame — the Stack form of
	// Decoder.DecodeFrame.
	DecodeBatch = link.DecodeBatch
)
