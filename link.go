package symbee

import "symbee/internal/link"

// Link-stack re-exports: the layered receive pipeline of internal/link
// through the public surface. Every receive path in this repository —
// the batch decode, the streaming pool sessions and the reliable
// harness — is one configuration of the same Stack.
type (
	// Stack is the composed receive pipeline: optional IQ front end →
	// phase layers → frame machine → event sinks.
	Stack = link.Stack
	// StackSpec configures a custom Stack assembly.
	StackSpec = link.Spec
	// LayerStats is one pipeline layer's in/out/error accounting.
	LayerStats = link.LayerStats
	// Duplex pairs an uplink decode Stack with a downlink ack stack
	// behind one composed surface — the full link of the reliable
	// transport.
	Duplex = link.Duplex
	// DownStack is the layered reverse channel: ack coalescer → scheme
	// occupancy → loss/collision fault stage → timed sinks.
	DownStack = link.DownStack
	// DownSpec configures a DownStack assembly.
	DownSpec = link.DownSpec
	// DownTiming is an explicit downlink timing point (an alternative
	// to resolving a CTC scheme).
	DownTiming = link.DownTiming
	// DownlinkLedger is the DownStack's cross-stage accounting.
	DownlinkLedger = link.DownlinkLedger
	// TimedEvent is one timestamped event (an ack arrival) emitted by
	// the downlink stack.
	TimedEvent = link.TimedEvent
	// TimedLayer is a sink stage for timestamped downlink events.
	TimedLayer = link.TimedLayer
)

var (
	// NewStack assembles a custom pipeline from a spec.
	NewStack = link.New
	// NewBatchStack is the whole-capture preset: phase-fed, unbounded
	// history, bit-identical to the historical Decoder.DecodeFrame.
	NewBatchStack = link.NewBatch
	// NewStreamingStack is the bounded-history incremental preset used
	// by pool sessions (IQ front end included).
	NewStreamingStack = link.NewStreaming
	// DecodeBatch runs one whole capture of phase values through a batch
	// stack and returns the first decoded frame — the Stack form of
	// Decoder.DecodeFrame.
	DecodeBatch = link.DecodeBatch
	// NewDownStack assembles a layered downlink ack stack from a spec.
	NewDownStack = link.NewDownStack
	// NewDuplex pairs an uplink Stack with a DownStack.
	NewDuplex = link.NewDuplex
	// NewTimedCallback adapts a function into a TimedLayer sink.
	NewTimedCallback = link.NewTimedCallback
)
