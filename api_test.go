package symbee

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"symbee/internal/reliable"
)

// Every exported sentinel must match, via errors.Is, an error produced
// by a genuine code path of the layer it belongs to.
func TestPublicSentinelsEndToEnd(t *testing.T) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}

	// ErrNoPreamble: a capture with no SymBee content.
	if _, err := link.ReceiveFrame(make([]complex128, 20000)); !errors.Is(err, ErrNoPreamble) {
		t.Fatalf("empty capture: %v, want ErrNoPreamble", err)
	}

	// ErrCRC: corrupt one codeword byte of a valid frame payload.
	payload, err := EncodeFrame(&Frame{Seq: 1, Data: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	payload[len(payload)-1] ^= Bit0Byte ^ Bit1Byte // flip the last bit's codeword
	sig, err := link.PayloadToSignal(payload)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := link.ReceiveFrame(sig); !errors.Is(err, ErrCRC) {
		t.Fatalf("corrupted frame: %v, want ErrCRC", err)
	}

	// ErrBadLength: data that cannot fit one frame.
	if _, err := EncodeFrame(&Frame{Data: make([]byte, MaxDataBytes+1)}); !errors.Is(err, ErrBadLength) {
		t.Fatalf("oversize frame: %v, want ErrBadLength", err)
	}

	// ErrWindowFull / ErrTimeout surface from the reliability layer.
	s, err := NewSession(WithTransport(lossyTransport{}),
		WithWindow(1), WithRetries(1), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Send(context.Background(), []byte("never arrives"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("dead transport: %v, want ErrTimeout", err)
	}
	if !errors.Is(reliable.ErrWindowFull, ErrWindowFull) {
		t.Fatal("public ErrWindowFull is not the reliability layer's sentinel")
	}
}

// lossyTransport loses every frame and never produces an ack.
type lossyTransport struct{}

func (lossyTransport) Send(now time.Duration, f *Frame, coded bool) (time.Duration, error) {
	return time.Millisecond, nil
}

func (lossyTransport) Acks(now time.Duration) []AckEvent { return nil }

func (lossyTransport) NextArrival(now time.Duration) (time.Duration, bool) { return 0, false }

func (lossyTransport) AckLatency() time.Duration { return 0 }

// The option-based session delivers end to end over the built-in
// simulated link with a modeled ack downlink, and the reverse channel
// demonstrably costs airtime.
func TestNewSessionOptions(t *testing.T) {
	link, err := NewSimLink(DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	sess, err := NewSession(WithTransport(link), WithWindow(4), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("bidirectional cross-technology session")
	rep, err := sess.Send(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := link.Messages(); len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
		t.Fatalf("message not delivered: %d messages", len(msgs))
	}
	if rep.Airtime <= 0 {
		t.Fatal("no forward airtime reported")
	}
	rs := link.ReverseStats()
	if rs.AcksSent == 0 || rs.Airtime <= 0 {
		t.Fatalf("acks rode for free: %+v", rs)
	}

	// Without WithTransport the session builds its own link; an invalid
	// option surfaces at construction.
	if _, err := NewSession(WithDownlink(DownlinkFreeBee), WithSeed(3)); err != nil {
		t.Fatalf("self-built link: %v", err)
	}
	if _, err := NewSession(WithAckRepeat(0)); err == nil {
		t.Fatal("invalid ack repeat accepted")
	}
	if _, err := NewSession(WithWindow(-1)); err == nil {
		t.Fatal("invalid window accepted")
	}
}

// The option-based receiver decodes a chunked capture exactly like the
// batch path.
func TestNewReceiverOptions(t *testing.T) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := &Frame{Seq: 9, Data: []byte("streamed!!")}
	sig, err := link.TransmitFrame(want)
	if err != nil {
		t.Fatal(err)
	}

	m := NewMetrics()
	rx, err := NewReceiver(Params20(), WithCompensation(0), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(sig); off += 4096 {
		end := off + 4096
		if end > len(sig) {
			end = len(sig)
		}
		rx.PushIQ(sig[off:end])
	}
	rx.Flush()
	var got *Frame
	for _, ev := range rx.Drain() {
		if ev.Kind == EventFrame {
			got = ev.Frame
		}
	}
	if got == nil || got.Seq != want.Seq || !bytes.Equal(got.Data, want.Data) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if m.FramesDecoded.Load() != 1 {
		t.Fatalf("shared metrics missed the frame: %d", m.FramesDecoded.Load())
	}
}

// A context-bound pool decodes, then shuts down cleanly on cancel:
// subsequent Ingest reports rejection and Close stays safe.
func TestNewPoolContextCancellation(t *testing.T) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := &Frame{Seq: 2, Data: []byte("pooled")}
	sig, err := link.TransmitFrame(want)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var frames []*Frame
	ctx, cancel := context.WithCancel(context.Background())
	pool, err := NewPool(
		WithContext(ctx),
		WithWorkers(2),
		WithCompensation(0),
		WithEvents(func(ev Event) {
			if ev.Kind == EventFrame {
				mu.Lock()
				frames = append(frames, ev.Frame)
				mu.Unlock()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !pool.Ingest(Chunk{Stream: 7, IQ: sig, Flush: true}) {
		t.Fatal("ingest rejected on an open pool")
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	// Poll with content-free chunks: cancellation propagates
	// asynchronously, and a chunk that slips in before the close lands
	// must not decode anything.
	for pool.Ingest(Chunk{Stream: 8, IQ: make([]complex128, 64)}) {
		if time.Now().After(deadline) {
			t.Fatal("pool still accepting chunks after cancel")
		}
		time.Sleep(time.Millisecond)
	}
	pool.Close() // idempotent with the context-driven close
	mu.Lock()
	defer mu.Unlock()
	if len(frames) != 1 || !bytes.Equal(frames[0].Data, want.Data) {
		t.Fatalf("decoded %d frames, want the one ingested before cancel", len(frames))
	}
}
