// Command symbeestream replays a trace file (or raw IQ from stdin)
// through the real-time streaming receiver pipeline (internal/stream):
// the capture is chopped into chunks, fanned out over N logical streams
// into the sharded worker pool, and decoded frames are printed as they
// fall out, followed by a throughput line and the pipeline's metrics
// snapshot as JSON.
//
// Usage:
//
//	symbeestream -in packet.sbtr
//	symbeestream -in packet.sbtr -streams 8 -workers 4 -repeat 20
//	symbeestream -in packet.sbtr -sps 20e6            # pace at 20 Msps
//	symbeestream -raw -rate 20e6 < iq.bin             # raw complex64 LE stdin
//	symbeestream -in packet.sbtr -drop -queue 4       # load-shedding mode
package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"symbee/internal/core"
	"symbee/internal/stream"
	"symbee/internal/trace"
	"symbee/internal/wifi"
)

func main() {
	var (
		in        = flag.String("in", "", "trace file to replay (\"-\" for stdin)")
		raw       = flag.Bool("raw", false, "read raw interleaved complex64 LE IQ from stdin instead of a trace")
		rate      = flag.Float64("rate", 20e6, "sample rate for -raw input, Hz")
		streams   = flag.Int("streams", 1, "replay the capture as this many concurrent streams")
		repeat    = flag.Int("repeat", 1, "times each stream loops the capture")
		chunk     = flag.Int("chunk", 4096, "chunk size in samples")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "per-worker queue depth (0 = default)")
		drop      = flag.Bool("drop", false, "drop chunks when a worker queue is full instead of blocking")
		sps       = flag.Float64("sps", 0, "pace each stream at this many samples/sec (0 = as fast as possible)")
		comp      = flag.Float64("comp", 0, "CFO compensation in radians (ignored with -canonical)")
		canonical = flag.Bool("canonical", false, "use the canonical +4π/5 CFO compensation")
		quiet     = flag.Bool("quiet", false, "suppress per-frame output")
	)
	flag.Parse()
	compensation := *comp
	if *canonical {
		compensation = wifi.CanonicalCompensation
	}
	// SIGINT/SIGTERM cancel the replay: the pool flushes its open
	// sessions and the final metrics snapshot is still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, replayConfig{
		in: *in, raw: *raw, rate: *rate,
		streams: *streams, repeat: *repeat, chunk: *chunk,
		workers: *workers, queue: *queue, drop: *drop,
		sps: *sps, compensation: compensation, quiet: *quiet,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbeestream:", err)
		os.Exit(1)
	}
}

type replayConfig struct {
	in           string
	raw          bool
	rate         float64
	streams      int
	repeat       int
	chunk        int
	workers      int
	queue        int
	drop         bool
	sps          float64
	compensation float64
	quiet        bool
}

// loadInput reads the capture: a trace file, a trace on stdin, or raw
// complex64 IQ on stdin.
func loadInput(cfg replayConfig) (*trace.Trace, error) {
	if cfg.raw {
		iq, err := readRawIQ(os.Stdin)
		if err != nil {
			return nil, err
		}
		return &trace.Trace{Kind: trace.KindIQ, SampleRate: cfg.rate, IQ: iq}, nil
	}
	switch cfg.in {
	case "":
		return nil, fmt.Errorf("need -in trace file (or -raw for stdin IQ)")
	case "-":
		return trace.Read(os.Stdin)
	default:
		return trace.Load(cfg.in)
	}
}

// readRawIQ consumes interleaved little-endian complex64 pairs to EOF.
func readRawIQ(r io.Reader) ([]complex128, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var iq []complex128
	buf := make([]byte, 8)
	for {
		if _, err := io.ReadFull(br, buf); err != nil {
			if errors.Is(err, io.EOF) {
				return iq, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("raw input ends mid-sample (%d bytes over)", len(buf))
			}
			return nil, err
		}
		re := math.Float32frombits(binary.LittleEndian.Uint32(buf))
		im := math.Float32frombits(binary.LittleEndian.Uint32(buf[4:]))
		iq = append(iq, complex(float64(re), float64(im)))
	}
}

func paramsForRate(rate float64) (core.Params, error) {
	switch rate {
	case 20e6:
		return core.Params20(), nil
	case 40e6:
		return core.Params40(), nil
	}
	return core.Params{}, fmt.Errorf("sample rate %v unsupported (want 20e6 or 40e6)", rate)
}

func run(ctx context.Context, cfg replayConfig) error {
	tr, err := loadInput(cfg)
	if err != nil {
		return err
	}
	if tr.Len() == 0 {
		return fmt.Errorf("empty capture")
	}
	if cfg.streams < 1 || cfg.repeat < 1 || cfg.chunk < 1 {
		return fmt.Errorf("-streams, -repeat and -chunk must be ≥ 1")
	}
	p, err := paramsForRate(tr.SampleRate)
	if err != nil {
		return err
	}

	var mu sync.Mutex
	pool, err := stream.NewPoolContext(ctx, stream.Config{
		Params:       p,
		Compensation: cfg.compensation,
		Workers:      cfg.workers,
		QueueDepth:   cfg.queue,
		DropWhenFull: cfg.drop,
		OnEvent: func(ev stream.Event) {
			if cfg.quiet {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			switch ev.Kind {
			case core.EventFrame:
				fmt.Printf("stream %d: frame @%d seq=%d flags=%#x data=%q\n",
					ev.Stream, ev.Anchor, ev.Frame.Seq, ev.Frame.Flags, ev.Frame.Data)
			case core.EventDecodeError:
				fmt.Printf("stream %d: decode error @%d: %v\n", ev.Stream, ev.Anchor, ev.Err)
			}
		},
	})
	if err != nil {
		return err
	}

	totalPerStream := uint64(tr.Len()) * uint64(cfg.repeat)
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < cfg.streams; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			pushed := uint64(0)
			for rep := 0; rep < cfg.repeat; rep++ {
				for off := 0; off < tr.Len(); off += cfg.chunk {
					end := off + cfg.chunk
					if end > tr.Len() {
						end = tr.Len()
					}
					c := stream.Chunk{Stream: id}
					if tr.Kind == trace.KindIQ {
						c.IQ = tr.IQ[off:end]
					} else {
						c.Phases = tr.Phases[off:end]
					}
					if !pool.Ingest(c) && ctx.Err() != nil {
						return // canceled: the pool is draining
					}
					pushed += uint64(end - off)
					if cfg.sps > 0 {
						// Pace the replay: sleep off any lead over the
						// target rate.
						ahead := float64(pushed)/cfg.sps - time.Since(start).Seconds()
						if ahead > 0 {
							time.Sleep(time.Duration(ahead * float64(time.Second)))
						}
					}
				}
			}
			pool.Ingest(stream.Chunk{Stream: id, Flush: true})
		}(uint64(id))
	}
	wg.Wait()
	pool.Close()
	elapsed := time.Since(start).Seconds()
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "symbeestream: interrupted — flushed open sessions, final metrics follow")
	}

	s := pool.Metrics().Snapshot()
	processed := s.SamplesIn + s.PhasesIn
	rate := float64(processed) / elapsed
	fmt.Printf("\nreplayed %d stream(s) × %d samples in %.3fs: %.1f Msps aggregate (%.2fx real time)\n",
		cfg.streams, totalPerStream, elapsed, rate/1e6, rate/(p.SampleRate*float64(cfg.streams)))
	fmt.Printf("frames=%d errors=%d locks=%d drops=%d\n", s.FramesDecoded, s.FramesFailed, s.Locks, s.Drops)
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("metrics: %s\n", out)
	return nil
}
