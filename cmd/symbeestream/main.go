// Command symbeestream replays a trace file (or raw IQ from stdin)
// through the real-time streaming receiver pipeline (internal/stream):
// the capture is chopped into chunks, fanned out over N logical streams
// into the sharded worker pool, and decoded frames are printed as they
// fall out, followed by a throughput line and the pipeline's metrics
// snapshot as JSON.
//
// Usage:
//
//	symbeestream -in packet.sbtr
//	symbeestream -in packet.sbtr -streams 8 -workers 4 -repeat 20
//	symbeestream -in packet.sbtr -sps 20e6            # pace at 20 Msps
//	symbeestream -raw -rate 20e6 < iq.bin             # raw complex64 LE stdin
//	symbeestream -in packet.sbtr -drop -queue 4       # load-shedding mode
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"symbee/internal/cli"
	"symbee/internal/core"
	"symbee/internal/stream"
	"symbee/internal/trace"
	"symbee/internal/wifi"
)

func main() {
	var (
		input     = cli.RegisterInput(flag.CommandLine, true)
		workers   = cli.RegisterWorkers(flag.CommandLine)
		streams   = flag.Int("streams", 1, "replay the capture as this many concurrent streams")
		repeat    = flag.Int("repeat", 1, "times each stream loops the capture")
		chunk     = flag.Int("chunk", 4096, "chunk size in samples")
		queue     = flag.Int("queue", 0, "per-worker queue depth (0 = default)")
		drop      = flag.Bool("drop", false, "drop chunks when a worker queue is full instead of blocking")
		sps       = flag.Float64("sps", 0, "pace each stream at this many samples/sec (0 = as fast as possible)")
		comp      = flag.Float64("comp", 0, "CFO compensation in radians (ignored with -canonical)")
		canonical = flag.Bool("canonical", false, "use the canonical +4π/5 CFO compensation")
		quiet     = flag.Bool("quiet", false, "suppress per-frame output")
	)
	flag.Parse()
	compensation := *comp
	if *canonical {
		compensation = wifi.CanonicalCompensation
	}
	// SIGINT/SIGTERM cancel the replay: the pool flushes its open
	// sessions and the final metrics snapshot is still written.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, replayConfig{
		input:   input,
		streams: *streams, repeat: *repeat, chunk: *chunk,
		workers: *workers, queue: *queue, drop: *drop,
		sps: *sps, compensation: compensation, quiet: *quiet,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbeestream:", err)
		os.Exit(1)
	}
}

type replayConfig struct {
	input        *cli.Input
	streams      int
	repeat       int
	chunk        int
	workers      int
	queue        int
	drop         bool
	sps          float64
	compensation float64
	quiet        bool
}

func run(ctx context.Context, cfg replayConfig) error {
	tr, err := cfg.input.Load()
	if err != nil {
		return err
	}
	if tr.Len() == 0 {
		return fmt.Errorf("empty capture")
	}
	if cfg.streams < 1 || cfg.repeat < 1 || cfg.chunk < 1 {
		return fmt.Errorf("-streams, -repeat and -chunk must be ≥ 1")
	}
	p, err := cli.ParamsForTrace(tr)
	if err != nil {
		return err
	}

	var mu sync.Mutex
	pool, err := stream.NewPoolContext(ctx, stream.Config{
		Params:       p,
		Compensation: cfg.compensation,
		Workers:      cfg.workers,
		QueueDepth:   cfg.queue,
		DropWhenFull: cfg.drop,
		OnEvent: func(ev stream.Event) {
			if cfg.quiet {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			switch ev.Kind {
			case core.EventFrame:
				fmt.Printf("stream %d: frame @%d seq=%d flags=%#x data=%q\n",
					ev.Stream, ev.Anchor, ev.Frame.Seq, ev.Frame.Flags, ev.Frame.Data)
			case core.EventDecodeError:
				fmt.Printf("stream %d: decode error @%d: %v\n", ev.Stream, ev.Anchor, ev.Err)
			}
		},
	})
	if err != nil {
		return err
	}

	totalPerStream := uint64(tr.Len()) * uint64(cfg.repeat)
	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < cfg.streams; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			pushed := uint64(0)
			for rep := 0; rep < cfg.repeat; rep++ {
				for off := 0; off < tr.Len(); off += cfg.chunk {
					end := off + cfg.chunk
					if end > tr.Len() {
						end = tr.Len()
					}
					c := stream.Chunk{Stream: id}
					if tr.Kind == trace.KindIQ {
						c.IQ = tr.IQ[off:end]
					} else {
						c.Phases = tr.Phases[off:end]
					}
					if !pool.Ingest(c) && ctx.Err() != nil {
						return // canceled: the pool is draining
					}
					pushed += uint64(end - off)
					if cfg.sps > 0 {
						// Pace the replay: sleep off any lead over the
						// target rate.
						ahead := float64(pushed)/cfg.sps - time.Since(start).Seconds()
						if ahead > 0 {
							time.Sleep(time.Duration(ahead * float64(time.Second)))
						}
					}
				}
			}
			pool.Ingest(stream.Chunk{Stream: id, Flush: true})
		}(uint64(id))
	}
	wg.Wait()
	pool.Close()
	elapsed := time.Since(start).Seconds()
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "symbeestream: interrupted — flushed open sessions, final metrics follow")
	}

	s := pool.Metrics().Snapshot()
	processed := s.SamplesIn + s.PhasesIn
	rate := float64(processed) / elapsed
	fmt.Printf("\nreplayed %d stream(s) × %d samples in %.3fs: %.1f Msps aggregate (%.2fx real time)\n",
		cfg.streams, totalPerStream, elapsed, rate/1e6, rate/(p.SampleRate*float64(cfg.streams)))
	fmt.Printf("frames=%d errors=%d locks=%d drops=%d\n", s.FramesDecoded, s.FramesFailed, s.Locks, s.Drops)
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("metrics: %s\n", out)
	return nil
}
