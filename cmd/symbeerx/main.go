// Command symbeerx decodes SymBee messages from trace files produced by
// symbeetx (or any IQ/phase capture in the trace format). It can
// optionally impair the capture with noise and a carrier offset first,
// to demonstrate decoding under realistic conditions.
//
// Usage:
//
//	symbeerx -in packet.sbtr
//	symbeerx -in packet.sbtr -snr 0 -cfo 3e6
//	symbeerx -in packet.sbtr -bits 6     # raw-bit mode: decode 6 bits
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"symbee"
	"symbee/internal/channel"
	"symbee/internal/cli"
	"symbee/internal/trace"
)

func main() {
	var (
		input = cli.RegisterInput(flag.CommandLine, false)
		seed  = cli.RegisterSeed(flag.CommandLine)
		nBit  = flag.Int("bits", 0, "decode this many raw bits instead of a frame")
		snr   = flag.Float64("snr", 0, "add noise at this SNR in dB (with -impair)")
		cfo   = flag.Float64("cfo", 0, "apply this carrier offset in Hz before decoding")
	)
	flag.Parse()
	if err := run(input, *nBit, *snr, *cfo, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "symbeerx:", err)
		os.Exit(1)
	}
}

func run(input *cli.Input, nBits int, snr, cfo float64, seed int64) error {
	tr, err := input.Load()
	if err != nil {
		return err
	}
	p, err := cli.ParamsForTrace(tr)
	if err != nil {
		return err
	}

	comp := 0.0
	if cfo != 0 {
		comp = symbee.CanonicalCompensation
	}
	link, err := symbee.NewLink(p, comp)
	if err != nil {
		return err
	}

	var phases []float64
	switch tr.Kind {
	case trace.KindIQ:
		iq := tr.IQ
		if cfo != 0 {
			channel.ApplyCFO(iq, cfo, tr.SampleRate)
		}
		if snr != 0 {
			rng := rand.New(rand.NewSource(seed))
			channel.AddNoiseAtSNR(iq, snr, rng)
			fmt.Printf("impaired capture: SNR %.1f dB, CFO %+.1f MHz\n", snr, cfo/1e6)
		}
		phases = link.Phases(iq)
	case trace.KindPhase:
		phases = tr.Phases
	default:
		return fmt.Errorf("unknown trace kind %d", tr.Kind)
	}

	dec := link.Decoder()
	if nBits > 0 {
		bits, err := dec.DecodeBits(phases, nBits)
		if err != nil {
			return err
		}
		fmt.Print("bits: ")
		for _, b := range bits {
			fmt.Print(b)
		}
		fmt.Println()
		return nil
	}

	frame, err := symbee.DecodeBatch(dec, phases)
	if err != nil {
		return err
	}
	fmt.Printf("frame seq=%d flags=%X data=%q\n", frame.Seq, frame.Flags, frame.Data)
	return nil
}
