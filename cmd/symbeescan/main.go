// Command symbeescan inspects an IQ trace and reports everything this
// repository knows how to find in the 2.4 GHz band: WiFi OFDM frames,
// ZigBee packets (with MAC parsing), SymBee messages, and summary
// statistics of the idle-listening phase stream — a little tcpdump for
// the cross-technology ether.
//
// Usage:
//
//	symbeetx -msg hello -trace x.sbtr && symbeescan -in x.sbtr
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"symbee"
	"symbee/internal/cli"
	"symbee/internal/dsp"
	"symbee/internal/trace"
	"symbee/internal/wifi"
	"symbee/internal/zigbee"
)

func main() {
	var (
		input   = cli.RegisterInput(flag.CommandLine, false)
		verbose = flag.Bool("v", false, "print per-detection detail")
	)
	flag.Parse()
	if err := run(input, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "symbeescan:", err)
		os.Exit(1)
	}
}

func run(input *cli.Input, verbose bool) error {
	tr, err := input.Load()
	if err != nil {
		return err
	}
	if tr.Kind != trace.KindIQ {
		return fmt.Errorf("scan needs an IQ trace (kind %d)", tr.Kind)
	}
	fmt.Printf("trace: %d samples, %.1f µs at %.0f Msps, mean power %.3g\n\n",
		tr.Len(), tr.Duration()*1e6, tr.SampleRate/1e6, dsp.Power(tr.IQ))

	if err := scanWiFi(tr, verbose); err != nil {
		return err
	}
	if err := scanZigBee(tr, verbose); err != nil {
		return err
	}
	if err := scanSymBee(tr); err != nil {
		return err
	}
	return phaseSummary(tr)
}

func scanWiFi(tr *trace.Trace, verbose bool) error {
	fe, err := wifi.NewFrontEnd(tr.SampleRate)
	if err != nil {
		fmt.Printf("WiFi: front-end unavailable at this rate: %v\n\n", err)
		return nil
	}
	starts := fe.DetectPackets(tr.IQ, 0.7, 4*fe.Lag())
	fmt.Printf("WiFi: %d OFDM frame(s) detected\n", len(starts))
	if verbose && tr.SampleRate == 20e6 { //symbee:ignore floatcmp -- configured rate constant, never computed
		rx, err := wifi.NewReceiver()
		if err != nil {
			return err
		}
		for _, s := range starts {
			got, err := rx.Receive(tr.IQ[s:], 1)
			if err != nil {
				fmt.Printf("  @%d: preamble only (%v)\n", s, err)
				continue
			}
			fmt.Printf("  @%d: CFO %+.1f kHz, EVM %.2f\n", s, got.CFO/1e3, got.SymbolEVM)
		}
	}
	fmt.Println()
	return nil
}

func scanZigBee(tr *trace.Trace, verbose bool) error {
	demod, err := zigbee.NewDemodulator(tr.SampleRate)
	if err != nil {
		fmt.Printf("ZigBee: demodulator unavailable at this rate: %v\n\n", err)
		return nil
	}
	payload, err := demod.Receive(tr.IQ, zigbee.OrderMSBFirst)
	if err != nil {
		fmt.Printf("ZigBee: no packet (%v)\n\n", err)
		return nil
	}
	fmt.Printf("ZigBee: packet with %d-byte MAC payload\n", len(payload))
	if mpdu, err := zigbee.ParseMPDU(payload); err == nil {
		fmt.Printf("  MAC: type=%d seq=%d PAN=%04X dst=%04X src=%04X, %d-byte MSDU\n",
			mpdu.Type, mpdu.Seq, mpdu.PANID, mpdu.Dest, mpdu.Src, len(mpdu.Payload))
		payload = mpdu.Payload
	} else if verbose {
		fmt.Printf("  (payload is not a short-addressed MPDU: %v)\n", err)
	}
	if f, err := symbee.DecodeBroadcastPayload(payload); err == nil {
		fmt.Printf("  SymBee (ZigBee side): seq=%d flags=%X data=%q\n", f.Seq, f.Flags, f.Data)
	}
	fmt.Println()
	return nil
}

func scanSymBee(tr *trace.Trace) error {
	p, err := cli.ParamsForTrace(tr)
	if err != nil {
		fmt.Printf("SymBee: %v\n\n", err)
		return nil
	}
	link, err := symbee.NewLink(p, 0)
	if err != nil {
		return err
	}
	phases := link.Phases(tr.IQ)
	anchor, err := link.Decoder().CapturePreamble(phases)
	if err != nil {
		fmt.Printf("SymBee (WiFi side): no preamble (%v)\n\n", err)
		return nil
	}
	fmt.Printf("SymBee (WiFi side): preamble at phase index %d\n", anchor)
	if f, err := symbee.DecodeBatch(link.Decoder(), phases); err == nil {
		fmt.Printf("  frame: seq=%d flags=%X data=%q\n", f.Seq, f.Flags, f.Data)
	} else {
		fmt.Printf("  frame decode: %v (raw-bit message? try symbeerx -bits N)\n", err)
	}
	fmt.Println()
	return nil
}

func phaseSummary(tr *trace.Trace) error {
	lag := int(math.Round(tr.SampleRate * wifi.AutocorrLag))
	phases := dsp.PhaseDiffStream(tr.IQ, lag)
	if phases == nil {
		return errors.New("trace too short for a phase stream")
	}
	neg, nonneg := dsp.SignCounts(phases)
	// How much of the stream sits near the SymBee stable values ±4π/5?
	nearStable := 0
	for _, phi := range phases {
		if dsp.PhaseDistance(math.Abs(phi), 4*math.Pi/5) < 0.1 {
			nearStable++
		}
	}
	fmt.Printf("phases: %d values, %.1f%% negative / %.1f%% nonnegative, %.1f%% within 0.1 rad of ±4π/5\n",
		len(phases),
		100*float64(neg)/float64(len(phases)),
		100*float64(nonneg)/float64(len(phases)),
		100*float64(nearStable)/float64(len(phases)))
	return nil
}
