// Command symbeetx encodes a SymBee message and emits, at choice, the
// ZigBee payload bytes (to place in a commodity node's packet), the raw
// bit string, or a complex-baseband IQ trace file for replay through
// symbeerx.
//
// Usage:
//
//	symbeetx -msg "hello wifi"                # payload bytes as hex
//	symbeetx -msg hi -seq 3 -trace out.sbtr   # IQ trace of the packet
//	symbeetx -bits 010110 -trace out.sbtr     # raw-bit mode
//	symbeetx -msg hi -rate 40e6 -trace out.sbtr
package main

import (
	"flag"
	"fmt"
	"os"

	"symbee"
	"symbee/internal/trace"
)

func main() {
	var (
		msg   = flag.String("msg", "", "message bytes to send as one frame")
		bits  = flag.String("bits", "", "raw bit string (e.g. 0101) instead of a frame")
		seq   = flag.Int("seq", 0, "frame sequence number")
		flags = flag.Int("flags", 0, "frame flag nibble")
		rate  = flag.Float64("rate", 20e6, "receiver sample rate the trace targets")
		out   = flag.String("trace", "", "write an IQ trace file instead of printing hex")
	)
	flag.Parse()
	if err := run(*msg, *bits, byte(*seq), byte(*flags), *rate, *out); err != nil {
		fmt.Fprintln(os.Stderr, "symbeetx:", err)
		os.Exit(1)
	}
}

func run(msg, bitStr string, seq, flags byte, rate float64, out string) error {
	if msg == "" && bitStr == "" {
		return fmt.Errorf("need -msg or -bits")
	}

	var payload []byte
	var err error
	if bitStr != "" {
		bits := make([]byte, len(bitStr))
		for i, c := range bitStr {
			switch c {
			case '0':
				bits[i] = 0
			case '1':
				bits[i] = 1
			default:
				return fmt.Errorf("bit string may only contain 0/1, got %q", c)
			}
		}
		payload, err = symbee.EncodeBits(bits)
	} else {
		payload, err = symbee.EncodeFrame(&symbee.Frame{Seq: seq, Flags: flags & 0x0F, Data: []byte(msg)})
	}
	if err != nil {
		return err
	}

	if out == "" {
		fmt.Printf("ZigBee payload (%d bytes, 1 SymBee bit per byte):\n", len(payload))
		for i, b := range payload {
			if i > 0 && i%16 == 0 {
				fmt.Println()
			}
			fmt.Printf("%02X ", b)
		}
		fmt.Println()
		return nil
	}

	p, err := paramsFor(rate)
	if err != nil {
		return err
	}
	link, err := symbee.NewLink(p, 0)
	if err != nil {
		return err
	}
	sig, err := link.PayloadToSignal(payload)
	if err != nil {
		return err
	}
	tr := &trace.Trace{Kind: trace.KindIQ, SampleRate: rate, IQ: sig}
	if err := tr.Save(out); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d IQ samples (%.1f µs at %.0f Msps)\n",
		out, tr.Len(), tr.Duration()*1e6, rate/1e6)
	return nil
}

func paramsFor(rate float64) (symbee.Params, error) {
	switch rate {
	case 20e6: //symbee:ignore floatcmp -- rate is a flag-parsed literal matched exactly: near-20e6 rates must hit the error branch, not round into it
		return symbee.Params20(), nil
	case 40e6: //symbee:ignore floatcmp -- same exact-match contract as the 20e6 arm
		return symbee.Params40(), nil
	}
	return symbee.Params{}, fmt.Errorf("unsupported rate %v (use 20e6 or 40e6)", rate)
}
