package main

import (
	"fmt"
	"time"

	"symbee/internal/cli"
	"symbee/internal/link"
)

// multisenderArtifact is the schema of BENCH_multisender.json: the
// shared-medium scenario swept over sender counts, with aggregate
// goodput and per-sender collision accounting at each width.
type multisenderArtifact struct {
	Benchmark       string                   `json:"benchmark"`
	Seed            int64                    `json:"seed"`
	FramesPerSender int                      `json:"frames_per_sender"`
	MeanGapAirtimes float64                  `json:"mean_gap_airtimes"`
	Sweep           []link.MultiSenderReport `json:"sweep"`
}

// multisenderWidths is the sender-count sweep of the artifact.
var multisenderWidths = []int{1, 2, 4, 8}

// runMultiSenderBench sweeps the shared-medium scenario over N
// concurrent ZigBee senders into one WiFi receiver and writes
// BENCH_multisender.json.
func runMultiSenderBench(seed int64, frames int, gap float64, outPath string) error {
	art := multisenderArtifact{
		Benchmark:       "multisender-shared-medium",
		Seed:            seed,
		FramesPerSender: frames,
		MeanGapAirtimes: gap,
	}
	fmt.Printf("multi-sender shared-medium bench: %d frames/sender, mean gap %.1f airtimes\n", frames, gap)
	start := time.Now()
	for _, n := range multisenderWidths {
		rep, err := link.RunMultiSender(link.MultiSenderConfig{
			Senders:         n,
			FramesPerSender: frames,
			Seed:            seed,
			SNRdB:           20,
			MeanGapAirtimes: gap,
			CFOJitterHz:     20e3,
			SFOppm:          10,
			GainSpreadDB:    3,
		})
		if err != nil {
			return err
		}
		art.Sweep = append(art.Sweep, *rep)
		fmt.Printf("  N=%d: %d/%d delivered, goodput %7.0f bps, collision rate %.0f%% (%.2fs air)\n",
			n, rep.Delivered, n*frames, rep.GoodputBps, rep.CollisionRate*100, rep.DurationSec)
	}
	fmt.Printf("  [%v]\n", time.Since(start).Round(time.Millisecond))
	if wrote, err := cli.WriteJSON(outPath, art); err != nil {
		return err
	} else if wrote {
		fmt.Printf("  wrote %s\n", outPath)
	}
	return nil
}
