package main

import (
	"fmt"
	"time"

	"symbee/internal/cli"
	"symbee/internal/link"
	"symbee/internal/medium"
)

// densityArtifact is the schema of BENCH_density.json: the
// event-driven shared-medium scenario swept over population widths up
// to 1024 senders, yielding the goodput-vs-density and
// collision-rate-vs-density curves. The artifact is a pure function of
// the seed and sweep knobs (no wall-clock fields), so equal seeds
// produce byte-identical files.
type densityArtifact struct {
	Benchmark       string       `json:"benchmark"`
	Seed            int64        `json:"seed"`
	FramesPerSender int          `json:"frames_per_sender"`
	MeanGapAirtimes float64      `json:"mean_gap_airtimes"`
	DataBytes       int          `json:"data_bytes"`
	SNRdB           float64      `json:"snr_db"`
	CFOJitterHz     float64      `json:"cfo_jitter_hz"`
	SFOppm          float64      `json:"sfo_ppm"`
	GainSpreadDB    float64      `json:"gain_spread_db"`
	Sweep           []densityRow `json:"sweep"`
}

// densityRow is one sweep point: the aggregate shape of a
// medium.Report without the per-sender breakdown (1024 rows of
// per-sender stats would dominate the artifact without adding to the
// density curves).
type densityRow struct {
	Senders              int     `json:"senders"`
	OfferedLoadPerSender float64 `json:"offered_load_per_sender"`
	OfferedLoadTotal     float64 `json:"offered_load_total"`
	DurationSec          float64 `json:"duration_sec"`
	Sent                 int     `json:"sent"`
	Delivered            int     `json:"delivered"`
	Collisions           int     `json:"collisions"`
	GoodputBps           float64 `json:"goodput_bps"`
	CollisionRate        float64 `json:"collision_rate"`
	DeliveryRate         float64 `json:"delivery_rate"`
	PeakOverlap          int     `json:"peak_overlap"`
	PeakWindowSamples    int     `json:"peak_window_samples"`
}

// shortWidths trims a population sweep to the CI smoke sizes (≤64
// senders), keeping at least the smallest width so -short never runs
// an empty sweep.
func shortWidths(widths []int) []int {
	out := widths[:0:0]
	for _, n := range widths {
		if n <= 64 {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = append(out, widths[0])
	}
	return out
}

// runDensityBench sweeps the event-driven medium engine over the given
// sender populations at a fixed per-sender offered load and writes the
// density curves to outPath.
func runDensityBench(seed int64, frames int, gap float64, widths []int, outPath string) error {
	cfg := medium.Defaults()
	cfg.Seed = seed
	cfg.FramesPerSender = frames
	cfg.MeanGapAirtimes = gap
	cfg.CFOJitterHz = 20e3
	cfg.SFOppm = 10
	cfg.GainSpreadDB = 3

	art := densityArtifact{
		Benchmark:       "density-shared-medium",
		Seed:            seed,
		FramesPerSender: frames,
		MeanGapAirtimes: gap,
		DataBytes:       cfg.DataBytes,
		SNRdB:           cfg.SNRdB,
		CFOJitterHz:     cfg.CFOJitterHz,
		SFOppm:          cfg.SFOppm,
		GainSpreadDB:    cfg.GainSpreadDB,
	}
	fmt.Printf("density shared-medium bench: %d frames/sender, mean gap %.1f airtimes (load %.2f/sender)\n",
		frames, gap, cfg.OfferedLoadPerSender())
	start := time.Now()
	for _, n := range widths {
		c := cfg
		c.Senders = n
		t0 := time.Now()
		rep, err := link.RunMedium(c, nil)
		if err != nil {
			return fmt.Errorf("N=%d: %w", n, err)
		}
		sent := rep.Senders * rep.FramesPerSender
		art.Sweep = append(art.Sweep, densityRow{
			Senders:              rep.Senders,
			OfferedLoadPerSender: rep.OfferedLoadPerSender,
			OfferedLoadTotal:     rep.OfferedLoadPerSender * float64(rep.Senders),
			DurationSec:          rep.DurationSec,
			Sent:                 sent,
			Delivered:            rep.Delivered,
			Collisions:           rep.Collisions,
			GoodputBps:           rep.GoodputBps,
			CollisionRate:        rep.CollisionRate,
			DeliveryRate:         rep.DeliveryRate,
			PeakOverlap:          rep.PeakOverlap,
			PeakWindowSamples:    rep.PeakWindowSamples,
		})
		fmt.Printf("  N=%4d: %5d/%5d delivered, goodput %8.0f bps, collisions %5.1f%%, peak overlap %3d (%.2fs air, %v wall)\n",
			n, rep.Delivered, sent, rep.GoodputBps, rep.CollisionRate*100,
			rep.PeakOverlap, rep.DurationSec, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("  [%v]\n", time.Since(start).Round(time.Millisecond))
	if wrote, err := cli.WriteJSON(outPath, art); err != nil {
		return err
	} else if wrote {
		fmt.Printf("  wrote %s\n", outPath)
	}
	return nil
}
