package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"symbee/internal/cli"
	"symbee/internal/core"
	"symbee/internal/dsp"
)

// kernelRates is one measurement row: million phase extractions per
// second for each kernel variant under one worker configuration.
type kernelRates struct {
	Workers      int     `json:"workers"`
	ExactMsps    float64 `json:"exact_msps"`
	FastMsps     float64 `json:"fast_msps"`
	ClassifyMsps float64 `json:"classify_msps"`
	// Speedup is FastMsps/ExactMsps — the machine-independent figure the
	// CI regression gate compares (absolute Msps varies with the runner).
	Speedup float64 `json:"speedup"`
}

// kernelBenchArtifact is the schema of BENCH_kernel.json.
type kernelBenchArtifact struct {
	Benchmark string  `json:"benchmark"`
	Samples   int     `json:"samples_per_pass"`
	MaxErr    float64 `json:"measured_max_err"`
	ErrBound  float64 `json:"documented_err_bound"`
	// Single is the per-core rate; Multi runs one independent kernel
	// loop per logical CPU, modeling the sharded worker pool.
	Single kernelRates `json:"single"`
	Multi  kernelRates `json:"multi"`
}

// kernelRegressionTolerance is how far the fast/exact speedup may fall
// below the committed baseline before CI fails (>20% per the issue).
const kernelRegressionTolerance = 0.20

// runKernelBench measures the phase-extraction kernels in isolation:
// exact math.Atan2, the polynomial FastAtan2, and the atan2-free
// PhaseClassifier sign test, single-core and one-loop-per-CPU. The
// inputs are the lag products a real receiver feeds the kernel
// (x[n]·conj(x[n+lag]) over noise), so branch behavior matches the
// idle-listening workload rather than a friendly sweep.
func runKernelBench(seed int64, samples int, outPath, baselinePath string) error {
	p := core.Params20()
	rng := rand.New(rand.NewSource(seed))
	iq := make([]complex128, samples+p.Lag)
	for i := range iq {
		iq[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	prod := make([]complex128, samples)
	for i := range prod {
		prod[i] = iq[i+p.Lag] * cmplx.Conj(iq[i])
	}

	maxErr := 0.0
	for _, v := range prod {
		d := math.Abs(dsp.FastAtan2(imag(v), real(v)) - math.Atan2(imag(v), real(v)))
		if d > maxErr {
			maxErr = d
		}
	}

	cls, err := dsp.NewPhaseClassifier(0, core.StablePhase-0.1)
	if err != nil {
		return err
	}
	exact := func() float64 {
		s := 0.0
		for _, v := range prod {
			s += math.Atan2(imag(v), real(v))
		}
		return s
	}
	fast := func() float64 {
		s := 0.0
		for _, v := range prod {
			s += dsp.FastAtan2(imag(v), real(v))
		}
		return s
	}
	classify := func() float64 {
		n := 0
		for _, v := range prod {
			if cls.Above(v) {
				n++
			}
		}
		return float64(n)
	}

	fmt.Printf("phase kernel bench: %d lag-product samples per pass\n", samples)
	fmt.Printf("  fast-vs-exact max |Δ| on bench inputs: %.3g (documented bound %.3g)\n",
		maxErr, dsp.FastAtan2MaxErr)

	measure := func(workers int, f func() float64) float64 {
		// Calibrate: passes per worker targeting ~300ms of wall time.
		start := time.Now()
		sinkF += f()
		per := time.Since(start)
		passes := int(300*time.Millisecond/per) + 1
		var wg sync.WaitGroup
		start = time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				s := 0.0
				for i := 0; i < passes; i++ {
					s += f()
				}
				sinkMu.Lock()
				sinkF += s
				sinkMu.Unlock()
			}()
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		return float64(workers) * float64(passes) * float64(samples) / elapsed / 1e6
	}

	row := func(workers int) kernelRates {
		r := kernelRates{
			Workers:      workers,
			ExactMsps:    measure(workers, exact),
			FastMsps:     measure(workers, fast),
			ClassifyMsps: measure(workers, classify),
		}
		r.Speedup = r.FastMsps / r.ExactMsps
		fmt.Printf("  %d worker(s): exact %.1f Msps, fast %.1f Msps (%.2fx), classify %.1f Msps\n",
			r.Workers, r.ExactMsps, r.FastMsps, r.Speedup, r.ClassifyMsps)
		return r
	}
	art := kernelBenchArtifact{
		Benchmark: "phase-kernel",
		Samples:   samples,
		MaxErr:    maxErr,
		ErrBound:  dsp.FastAtan2MaxErr,
		Single:    row(1),
		Multi:     row(runtime.GOMAXPROCS(0)),
	}

	if wrote, err := cli.WriteJSON(outPath, art); err != nil {
		return err
	} else if wrote {
		fmt.Printf("  wrote %s\n", outPath)
	}
	if baselinePath != "" {
		return checkKernelBaseline(art, baselinePath)
	}
	return nil
}

// checkKernelBaseline compares the run against a committed baseline
// artifact and fails on a >20% regression. The gate is the fast/exact
// speedup ratio, not absolute Msps: CI runners differ wildly in clock
// rate, but the ratio only moves when the kernel itself changes shape.
func checkKernelBaseline(art kernelBenchArtifact, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("kernel baseline: %w", err)
	}
	var base kernelBenchArtifact
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("kernel baseline %s: %w", path, err)
	}
	floor := base.Single.Speedup * (1 - kernelRegressionTolerance)
	fmt.Printf("  baseline gate: speedup %.2fx vs baseline %.2fx (floor %.2fx)\n",
		art.Single.Speedup, base.Single.Speedup, floor)
	if art.Single.Speedup < floor {
		return fmt.Errorf("kernel regression: fast/exact speedup %.2fx fell >%d%% below baseline %.2fx",
			art.Single.Speedup, int(kernelRegressionTolerance*100), base.Single.Speedup)
	}
	if art.MaxErr > art.ErrBound {
		return fmt.Errorf("kernel accuracy: measured max error %.3g exceeds documented bound %.3g",
			art.MaxErr, art.ErrBound)
	}
	return nil
}

// sinkF defeats dead-code elimination of the measured kernels.
var (
	sinkF  float64
	sinkMu sync.Mutex
)
