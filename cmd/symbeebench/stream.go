package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"symbee/internal/channel"
	"symbee/internal/cli"
	"symbee/internal/core"
	"symbee/internal/stream"
	"symbee/internal/wifi"
)

// streamRegressionTolerance is how far either replay regime's realtime
// multiple may fall below the committed baseline before CI fails.
const streamRegressionTolerance = 0.20

// streamBenchArtifact is the schema of BENCH_stream.json: the two
// throughput regimes that bracket a live receiver — a frame-bearing
// replay and pure-noise hunting — plus the pass/fail verdict against
// the real-time target.
type streamBenchArtifact struct {
	Benchmark   string                  `json:"benchmark"`
	SampleRate  float64                 `json:"sample_rate"`
	TargetSps   float64                 `json:"target_sps"`
	FrameReplay stream.ThroughputReport `json:"frame_replay"`
	NoiseReplay stream.ThroughputReport `json:"noise_replay"`
	Realtime    bool                    `json:"realtime"`
}

// runStreamBench measures single-stream ingest throughput of the full
// IQ→phase→decode chain on one core and writes the JSON artifact. With
// a baseline path it additionally gates the run: the noise (idle
// hunting) path must hold real time outright, and neither regime may
// regress more than streamRegressionTolerance below the baseline.
func runStreamBench(seed int64, chunk int, minSamples uint64, outPath, baselinePath string) error {
	p := core.Params20()
	rng := rand.New(rand.NewSource(seed))

	l, err := core.NewLink(p, wifi.CanonicalCompensation)
	if err != nil {
		return err
	}
	sig, err := l.TransmitFrame(&core.Frame{Seq: 1, Data: []byte("benchload!")})
	if err != nil {
		return err
	}
	m, err := channel.NewMedium(channel.Config{
		SampleRate: p.SampleRate,
		SNRdB:      10,
		FreqOffset: channel.DefaultFreqOffset,
		Pad:        4000,
	}, rng)
	if err != nil {
		return err
	}
	capture := m.Transmit(sig)

	noise := make([]complex128, 1<<18)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	fmt.Printf("stream throughput bench: chunk=%d, ≥%d samples per regime\n", chunk, minSamples)
	frameRep, err := stream.MeasureThroughput(p, wifi.CanonicalCompensation, capture, chunk, minSamples)
	if err != nil {
		return err
	}
	fmt.Printf("  frame replay: %.1f Msps (%.2fx real time), %d frames\n",
		frameRep.SamplesPerSec/1e6, frameRep.RealtimeX, frameRep.Frames)
	noiseRep, err := stream.MeasureThroughput(p, wifi.CanonicalCompensation, noise, chunk, minSamples)
	if err != nil {
		return err
	}
	fmt.Printf("  noise hunting: %.1f Msps (%.2fx real time)\n",
		noiseRep.SamplesPerSec/1e6, noiseRep.RealtimeX)

	art := streamBenchArtifact{
		Benchmark:   "stream-throughput",
		SampleRate:  p.SampleRate,
		TargetSps:   p.SampleRate,
		FrameReplay: frameRep,
		NoiseReplay: noiseRep,
		Realtime:    frameRep.SamplesPerSec >= p.SampleRate,
	}
	fmt.Printf("  real-time at %.0f Msps: %v\n", p.SampleRate/1e6, art.Realtime)
	if wrote, err := cli.WriteJSON(outPath, art); err != nil {
		return err
	} else if wrote {
		fmt.Printf("  wrote %s\n", outPath)
	}
	if baselinePath != "" {
		return checkStreamBaseline(art, baselinePath)
	}
	return nil
}

// checkStreamBaseline gates a stream bench run against the committed
// artifact: the noise path — the state a deployed idle listener is in
// almost all the time — must hold ≥1× real time on its own, and
// neither regime's realtime multiple may fall more than
// streamRegressionTolerance below the baseline's.
func checkStreamBaseline(art streamBenchArtifact, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("stream baseline: %w", err)
	}
	var base streamBenchArtifact
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("stream baseline %s: %w", path, err)
	}
	fmt.Printf("  baseline gate: frame %.2fx (baseline %.2fx), noise %.2fx (baseline %.2fx)\n",
		art.FrameReplay.RealtimeX, base.FrameReplay.RealtimeX,
		art.NoiseReplay.RealtimeX, base.NoiseReplay.RealtimeX)
	if art.NoiseReplay.RealtimeX < 1.0 {
		return fmt.Errorf("stream regression: noise hunting at %.2fx real time, the idle-listening path must hold ≥1.0x",
			art.NoiseReplay.RealtimeX)
	}
	pct := int(streamRegressionTolerance * 100)
	if floor := base.FrameReplay.RealtimeX * (1 - streamRegressionTolerance); art.FrameReplay.RealtimeX < floor {
		return fmt.Errorf("stream regression: frame replay %.2fx fell >%d%% below baseline %.2fx",
			art.FrameReplay.RealtimeX, pct, base.FrameReplay.RealtimeX)
	}
	if floor := base.NoiseReplay.RealtimeX * (1 - streamRegressionTolerance); art.NoiseReplay.RealtimeX < floor {
		return fmt.Errorf("stream regression: noise hunting %.2fx fell >%d%% below baseline %.2fx",
			art.NoiseReplay.RealtimeX, pct, base.NoiseReplay.RealtimeX)
	}
	return nil
}
