package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func TestShortWidths(t *testing.T) {
	cases := []struct {
		in, want []int
	}{
		{[]int{8, 64, 256, 1024}, []int{8, 64}},
		{[]int{64}, []int{64}},
		{[]int{256, 1024}, []int{256}}, // nothing small: keep the smallest
	}
	for _, c := range cases {
		if got := shortWidths(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("shortWidths(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestDensityBenchSmoke runs a tiny sweep end-to-end and checks the
// artifact has one well-formed row per width. The N=256 byte-identical
// determinism contract is pinned in internal/link
// (TestMediumDensityDeterminism); this is just the CLI plumbing.
func TestDensityBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep in -short mode")
	}
	out := filepath.Join(t.TempDir(), "density.json")
	if err := runDensityBench(1, 2, 4, []int{1, 2}, out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var art densityArtifact
	if err := json.Unmarshal(raw, &art); err != nil {
		t.Fatal(err)
	}
	if art.Benchmark != "density-shared-medium" || len(art.Sweep) != 2 {
		t.Fatalf("artifact shape: benchmark=%q rows=%d", art.Benchmark, len(art.Sweep))
	}
	for i, row := range art.Sweep {
		if row.Sent != row.Senders*art.FramesPerSender || row.DurationSec <= 0 {
			t.Errorf("row %d malformed: %+v", i, row)
		}
	}
}
