package main

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"symbee/internal/channel"
	"symbee/internal/cli"
	"symbee/internal/reliable"
	"symbee/internal/stream"
)

// reliableRun is one loss point of a scheme's sweep in the JSON
// artifact. Forward and reverse airtime are ledgered separately: the
// reverse channel is a modeled CTC downlink, not a free side channel.
type reliableRun struct {
	Loss              float64 `json:"loss"`
	Delivered         int     `json:"delivered"`
	Runs              int     `json:"runs"`
	GoodputBps        float64 `json:"goodput_bps"` // mean over delivered runs
	Retransmits       int     `json:"retransmits"` // totals over all runs
	Timeouts          int     `json:"timeouts"`
	Escalations       int     `json:"escalations"`
	AirtimeSec        float64 `json:"airtime_s"`
	ReverseAirtimeSec float64 `json:"reverse_airtime_s"`
	AcksSent          int     `json:"acks_sent"`
	AcksDropped       int     `json:"acks_dropped"`
	AckCollisions     int     `json:"ack_collisions"`
	ForwardCollisions int     `json:"forward_collisions"`
}

// reliableScheme is one downlink's measurement block: clean-channel
// goodput and reverse-airtime share, plus the goodput-vs-loss sweep.
type reliableScheme struct {
	Scheme          string        `json:"scheme"`
	AckLatencySec   float64       `json:"ack_latency_s"`
	CleanGoodputBps float64       `json:"clean_goodput_bps"`
	ReverseFraction float64       `json:"reverse_airtime_fraction"`
	ReverseOK       bool          `json:"reverse_ok"`
	LossSweep       []reliableRun `json:"loss_sweep"`
}

// reliableArtifact is the schema of BENCH_reliable.json.
type reliableArtifact struct {
	Benchmark    string              `json:"benchmark"`
	MessageBytes int                 `json:"message_bytes"`
	Profile      channel.FaultConfig `json:"soak_profile"`

	// Acceptance: every seeded run under the soak profile — acks riding
	// the C-Morse downlink — must deliver the message intact on both
	// receive paths.
	SoakRuns        int  `json:"soak_runs"`
	BatchDelivered  int  `json:"batch_delivered"`
	StreamDelivered int  `json:"stream_delivered"`
	SoakOK          bool `json:"soak_ok"`

	// Bidirectional acceptance: 10% loss forward, 10% per-copy loss on
	// the reverse path with Repeat-2 acks — every run must deliver.
	BidirRuns      int  `json:"bidir_runs"`
	BidirDelivered int  `json:"bidir_delivered"`
	BidirOK        bool `json:"bidir_ok"`

	// Overhead: forward airtime vs the fire-and-forget baseline on a
	// clean channel with the ideal downlink (acceptance bound: ≤5%).
	// Under a modeled downlink go-back-N inherently retransmits
	// delivered-but-unacked frames; that honest cost shows up in the
	// per-scheme sweeps instead.
	ARQAirtimeSec   float64 `json:"arq_airtime_s"`
	PlainAirtimeSec float64 `json:"plain_airtime_s"`
	OverheadPct     float64 `json:"overhead_pct"`
	OverheadOK      bool    `json:"overhead_ok"`

	// Per-downlink measurements: ideal baseline plus every modeled
	// scheme. Acceptance: each modeled scheme moves real reverse
	// airtime (fraction > 0).
	Schemes []reliableScheme `json:"schemes"`
}

// reliableTransfer runs one ARQ transfer of msg over the given fault
// profile and downlink, reporting the session report, the reverse
// ledger and whether the message arrived intact.
func reliableTransfer(msg []byte, faults channel.FaultConfig, streaming bool,
	downlink reliable.DownlinkScheme, ackRepeat int) (*reliable.Report, reliable.ReverseStats, bool, error) {
	m := stream.NewMetrics()
	cfg := reliable.DefaultSimConfig()
	cfg.Faults = faults
	cfg.Stream = streaming
	cfg.Downlink = downlink
	cfg.AckRepeat = ackRepeat
	cfg.Metrics = m
	link, err := reliable.NewSimLink(cfg)
	if err != nil {
		return nil, reliable.ReverseStats{}, false, err
	}
	defer link.Close()
	scfg := reliable.DefaultConfig()
	scfg.Seed = faults.Seed
	scfg.Metrics = m
	s, err := reliable.NewSession(link, scfg)
	if err != nil {
		return nil, reliable.ReverseStats{}, false, err
	}
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		// Exhausted retries counts as undelivered, not a bench failure.
		return rep, link.ReverseStats(), false, nil
	}
	msgs := link.Messages()
	ok := len(msgs) == 1 && bytes.Equal(msgs[0], msg)
	return rep, link.ReverseStats(), ok, nil
}

func benchMessage(seed int64, n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(int64(i)*31 + seed*17 + 5)
	}
	return msg
}

// runReliableBench measures the reliability layer — the 100-run soak
// acceptance on both receive paths, the bidirectional soak, the
// clean-channel airtime overhead, and per-downlink goodput across an
// i.i.d. loss sweep — and writes BENCH_reliable.json.
func runReliableBench(seed int64, runs, msgLen int, outPath string) error {
	art := reliableArtifact{
		Benchmark:    "reliable-arq",
		MessageBytes: msgLen,
		Profile:      reliable.ProfileSoak(0),
		SoakRuns:     runs,
	}

	fmt.Printf("reliable ARQ bench: %d-byte message, %d soak runs per path\n", msgLen, runs)
	start := time.Now()
	for _, path := range []struct {
		name      string
		streaming bool
		delivered *int
	}{
		{"batch", false, &art.BatchDelivered},
		{"stream", true, &art.StreamDelivered},
	} {
		for i := 0; i < runs; i++ {
			s := seed + int64(i) - 1 // seeds 0..runs-1 for the default -seed 1
			_, _, ok, err := reliableTransfer(benchMessage(s, msgLen), reliable.ProfileSoak(s),
				path.streaming, reliable.DownlinkCMorse, 1)
			if err != nil {
				return err
			}
			if ok {
				*path.delivered++
			}
		}
		fmt.Printf("  soak %-6s %d/%d delivered\n", path.name, *path.delivered, runs)
	}
	art.SoakOK = art.BatchDelivered == runs && art.StreamDelivered == runs

	// Bidirectional soak: matched 10% loss in both directions, Repeat-2
	// acks for reverse loss protection.
	art.BidirRuns = runs / 10
	if art.BidirRuns < 3 {
		art.BidirRuns = 3
	}
	for i := 0; i < art.BidirRuns; i++ {
		s := seed + int64(i) - 1
		_, _, ok, err := reliableTransfer(benchMessage(s, msgLen), reliable.ProfileBidir(s),
			false, reliable.DownlinkCMorse, 2)
		if err != nil {
			return err
		}
		if ok {
			art.BidirDelivered++
		}
	}
	art.BidirOK = art.BidirDelivered == art.BidirRuns
	fmt.Printf("  bidir  %d/%d delivered (10%%/10%% loss, repeat-2 acks)\n",
		art.BidirDelivered, art.BidirRuns)

	rep, _, ok, err := reliableTransfer(benchMessage(1, msgLen), channel.FaultConfig{},
		false, reliable.DownlinkIdeal, 1)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("clean-channel transfer failed")
	}
	art.ARQAirtimeSec = rep.Airtime.Seconds()
	art.PlainAirtimeSec = reliable.PlainAirtime(msgLen).Seconds()
	art.OverheadPct = (art.ARQAirtimeSec/art.PlainAirtimeSec - 1) * 100
	art.OverheadOK = art.OverheadPct <= 5
	fmt.Printf("  overhead: ARQ %.2f ms vs plain %.2f ms forward airtime (%+.2f%%, ideal downlink)\n",
		art.ARQAirtimeSec*1e3, art.PlainAirtimeSec*1e3, art.OverheadPct)

	const sweepSeeds = 2
	schemesOK := true
	for _, dl := range reliable.DownlinkSchemes() {
		block := reliableScheme{Scheme: dl.String()}
		for _, loss := range []float64{0, 0.05, 0.10, 0.20, 0.30} {
			row := reliableRun{Loss: loss, Runs: sweepSeeds}
			var goodput float64
			for i := int64(0); i < sweepSeeds; i++ {
				faults := channel.FaultConfig{Seed: seed + i, FrameLoss: loss, AckLoss: loss / 2}
				rep, rs, ok, err := reliableTransfer(benchMessage(seed+i, msgLen), faults, false, dl, 1)
				if err != nil {
					return err
				}
				if ok {
					row.Delivered++
					goodput += rep.GoodputBps()
				}
				if rep != nil {
					row.Retransmits += rep.Retransmits
					row.Timeouts += rep.Timeouts
					row.Escalations += rep.Escalations
					row.AirtimeSec += rep.Airtime.Seconds()
				}
				row.ReverseAirtimeSec += rs.Airtime.Seconds()
				row.AcksSent += rs.AcksSent
				row.AcksDropped += rs.AcksDropped
				row.AckCollisions += rs.AckCollisions
				row.ForwardCollisions += rs.ForwardCollisions
			}
			if row.Delivered > 0 {
				row.GoodputBps = goodput / float64(row.Delivered)
			}
			block.LossSweep = append(block.LossSweep, row)
		}
		clean := block.LossSweep[0]
		block.CleanGoodputBps = clean.GoodputBps
		if total := clean.AirtimeSec + clean.ReverseAirtimeSec; total > 0 {
			block.ReverseFraction = clean.ReverseAirtimeSec / total
		}
		if !dl.Modeled() {
			block.ReverseOK = block.ReverseFraction == 0
		} else {
			// The acceptance gate: a modeled downlink must move real
			// reverse airtime — acks are never free.
			block.ReverseOK = block.ReverseFraction > 0
			// AckLatency of the scheme, via a throwaway link.
			cfg := reliable.DefaultSimConfig()
			cfg.Downlink = dl
			l, err := reliable.NewSimLink(cfg)
			if err != nil {
				return err
			}
			block.AckLatencySec = l.AckLatency().Seconds()
			l.Close()
		}
		schemesOK = schemesOK && block.ReverseOK
		art.Schemes = append(art.Schemes, block)
		fmt.Printf("  downlink %-8s clean goodput %7.0f bps, reverse share %5.2f%%, ack latency %6.1f ms\n",
			block.Scheme, block.CleanGoodputBps, block.ReverseFraction*100, block.AckLatencySec*1e3)
		for _, row := range block.LossSweep {
			fmt.Printf("    loss %4.0f%%: %d/%d delivered, goodput %7.0f bps, %d rtx, %d timeouts, %d collisions\n",
				row.Loss*100, row.Delivered, row.Runs, row.GoodputBps, row.Retransmits,
				row.Timeouts, row.AckCollisions+row.ForwardCollisions)
		}
	}
	fmt.Printf("  [%v] soak_ok=%v bidir_ok=%v overhead_ok=%v reverse_ok=%v\n",
		time.Since(start).Round(time.Second), art.SoakOK, art.BidirOK, art.OverheadOK, schemesOK)

	if wrote, err := cli.WriteJSON(outPath, art); err != nil {
		return err
	} else if wrote {
		fmt.Printf("  wrote %s\n", outPath)
	}
	if !art.SoakOK || !art.BidirOK || !art.OverheadOK || !schemesOK {
		return fmt.Errorf("acceptance failed: soak %d+%d/%d, bidir %d/%d, overhead %.2f%%, reverse_ok %v",
			art.BatchDelivered, art.StreamDelivered, runs,
			art.BidirDelivered, art.BidirRuns, art.OverheadPct, schemesOK)
	}
	return nil
}
