package main

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"symbee/internal/channel"
	"symbee/internal/cli"
	"symbee/internal/reliable"
	"symbee/internal/stream"
)

// reliableRun is one transfer's result in the JSON artifact.
type reliableRun struct {
	Loss        float64 `json:"loss"`
	Delivered   int     `json:"delivered"`
	Runs        int     `json:"runs"`
	GoodputBps  float64 `json:"goodput_bps"` // mean over delivered runs
	Retransmits int     `json:"retransmits"` // totals over all runs
	Timeouts    int     `json:"timeouts"`
	Escalations int     `json:"escalations"`
	AirtimeSec  float64 `json:"airtime_s"`
}

// reliableArtifact is the schema of BENCH_reliable.json.
type reliableArtifact struct {
	Benchmark    string              `json:"benchmark"`
	MessageBytes int                 `json:"message_bytes"`
	Profile      channel.FaultConfig `json:"soak_profile"`

	// Acceptance: every seeded run under the soak profile must deliver
	// the message intact on both receive paths.
	SoakRuns        int  `json:"soak_runs"`
	BatchDelivered  int  `json:"batch_delivered"`
	StreamDelivered int  `json:"stream_delivered"`
	SoakOK          bool `json:"soak_ok"`

	// Overhead: forward airtime vs the fire-and-forget baseline on a
	// clean channel (acceptance bound: ≤5%).
	ARQAirtimeSec   float64 `json:"arq_airtime_s"`
	PlainAirtimeSec float64 `json:"plain_airtime_s"`
	OverheadPct     float64 `json:"overhead_pct"`
	OverheadOK      bool    `json:"overhead_ok"`

	// Goodput vs i.i.d. loss rate (batch path).
	LossSweep []reliableRun `json:"loss_sweep"`
}

// reliableTransfer runs one ARQ transfer of msg over the given fault
// profile and reports whether it arrived intact.
func reliableTransfer(msg []byte, faults channel.FaultConfig, streaming bool) (*reliable.Report, bool, error) {
	m := stream.NewMetrics()
	link, err := reliable.NewSimLink(reliable.SimConfig{Faults: faults, Stream: streaming, Metrics: m})
	if err != nil {
		return nil, false, err
	}
	defer link.Close()
	s, err := reliable.NewSession(link, reliable.Config{Seed: faults.Seed, Metrics: m})
	if err != nil {
		return nil, false, err
	}
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		return rep, false, nil // exhausted retries counts as undelivered, not a bench failure
	}
	msgs := link.Messages()
	ok := len(msgs) == 1 && bytes.Equal(msgs[0], msg)
	return rep, ok, nil
}

func benchMessage(seed int64, n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(int64(i)*31 + seed*17 + 5)
	}
	return msg
}

// runReliableBench measures the reliability layer — the 100-run soak
// acceptance on both receive paths, the clean-channel airtime overhead,
// and goodput across an i.i.d. loss sweep — and writes BENCH_reliable.json.
func runReliableBench(seed int64, runs, msgLen int, outPath string) error {
	art := reliableArtifact{
		Benchmark:    "reliable-arq",
		MessageBytes: msgLen,
		Profile:      reliable.ProfileSoak(0),
		SoakRuns:     runs,
	}

	fmt.Printf("reliable ARQ bench: %d-byte message, %d soak runs per path\n", msgLen, runs)
	start := time.Now()
	for _, path := range []struct {
		name      string
		streaming bool
		delivered *int
	}{
		{"batch", false, &art.BatchDelivered},
		{"stream", true, &art.StreamDelivered},
	} {
		for i := 0; i < runs; i++ {
			s := seed + int64(i) - 1 // seeds 0..runs-1 for the default -seed 1
			_, ok, err := reliableTransfer(benchMessage(s, msgLen), reliable.ProfileSoak(s), path.streaming)
			if err != nil {
				return err
			}
			if ok {
				*path.delivered++
			}
		}
		fmt.Printf("  soak %-6s %d/%d delivered\n", path.name, *path.delivered, runs)
	}
	art.SoakOK = art.BatchDelivered == runs && art.StreamDelivered == runs

	rep, ok, err := reliableTransfer(benchMessage(1, msgLen), channel.FaultConfig{}, false)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("clean-channel transfer failed")
	}
	art.ARQAirtimeSec = rep.Airtime.Seconds()
	art.PlainAirtimeSec = reliable.PlainAirtime(msgLen).Seconds()
	art.OverheadPct = (art.ARQAirtimeSec/art.PlainAirtimeSec - 1) * 100
	art.OverheadOK = art.OverheadPct <= 5
	fmt.Printf("  overhead: ARQ %.2f ms vs plain %.2f ms forward airtime (%+.2f%%)\n",
		art.ARQAirtimeSec*1e3, art.PlainAirtimeSec*1e3, art.OverheadPct)

	const sweepSeeds = 3
	for _, loss := range []float64{0, 0.05, 0.10, 0.20, 0.30} {
		row := reliableRun{Loss: loss, Runs: sweepSeeds}
		var goodput float64
		for i := int64(0); i < sweepSeeds; i++ {
			faults := channel.FaultConfig{Seed: seed + i, FrameLoss: loss, AckLoss: loss / 2}
			rep, ok, err := reliableTransfer(benchMessage(seed+i, msgLen), faults, false)
			if err != nil {
				return err
			}
			if ok {
				row.Delivered++
				goodput += rep.GoodputBps()
			}
			if rep != nil {
				row.Retransmits += rep.Retransmits
				row.Timeouts += rep.Timeouts
				row.Escalations += rep.Escalations
				row.AirtimeSec += rep.Airtime.Seconds()
			}
		}
		if row.Delivered > 0 {
			row.GoodputBps = goodput / float64(row.Delivered)
		}
		art.LossSweep = append(art.LossSweep, row)
		fmt.Printf("  loss %4.0f%%: %d/%d delivered, goodput %7.0f bps, %d retransmits, %d timeouts\n",
			loss*100, row.Delivered, row.Runs, row.GoodputBps, row.Retransmits, row.Timeouts)
	}
	fmt.Printf("  [%v] soak_ok=%v overhead_ok=%v\n", time.Since(start).Round(time.Second), art.SoakOK, art.OverheadOK)

	if wrote, err := cli.WriteJSON(outPath, art); err != nil {
		return err
	} else if wrote {
		fmt.Printf("  wrote %s\n", outPath)
	}
	if !art.SoakOK || !art.OverheadOK {
		return fmt.Errorf("acceptance failed: soak %d+%d/%d, overhead %.2f%%",
			art.BatchDelivered, art.StreamDelivered, runs, art.OverheadPct)
	}
	return nil
}
