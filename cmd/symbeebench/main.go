// Command symbeebench reruns the paper's evaluation on the simulated
// testbed and prints each table/figure series. It also measures the
// streaming pipeline's single-core throughput (-stream), writing the
// result as a JSON artifact for regression tracking.
//
// Usage:
//
//	symbeebench -list
//	symbeebench -run fig13
//	symbeebench -all
//	symbeebench -run fig12 -packets 200 -seed 7 -csv
//	symbeebench -stream -stream-out BENCH_stream.json -stream-baseline BENCH_stream.json
//	symbeebench -kernel -kernel-out BENCH_kernel.json -kernel-baseline BENCH_kernel.json
//	symbeebench -reliable -reliable-out BENCH_reliable.json
//	symbeebench -multisender -multisender-out BENCH_multisender.json
//	symbeebench -density -density-out BENCH_density.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"symbee/internal/cli"
	"symbee/internal/sim"
)

func main() {
	var (
		seed    = cli.RegisterSeed(flag.CommandLine)
		list    = flag.Bool("list", false, "list available experiments")
		run     = flag.String("run", "", "experiment id to run (see -list)")
		all     = flag.Bool("all", false, "run every experiment")
		packets = flag.Int("packets", 0, "packets per measurement point (0 = default)")
		short   = flag.Bool("short", false, "quarter-size runs")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")

		streamBench    = flag.Bool("stream", false, "measure streaming receiver throughput instead of a paper experiment")
		streamOut      = flag.String("stream-out", "BENCH_stream.json", "file for the stream throughput JSON artifact (\"\" = don't write)")
		streamChunk    = flag.Int("stream-chunk", 4096, "stream bench chunk size in samples")
		streamSamples  = flag.Uint64("stream-samples", 50_000_000, "minimum samples the stream bench replays")
		streamBaseline = flag.String("stream-baseline", "", "baseline BENCH_stream.json to gate against (fail if noise hunting <1x real time or either path regresses >20%)")

		kernelBench    = flag.Bool("kernel", false, "measure the phase-extraction kernels (exact vs fast atan2, classify)")
		kernelOut      = flag.String("kernel-out", "BENCH_kernel.json", "file for the kernel JSON artifact (\"\" = don't write)")
		kernelSamples  = flag.Int("kernel-samples", 1<<20, "lag-product samples per kernel pass")
		kernelBaseline = flag.String("kernel-baseline", "", "baseline BENCH_kernel.json to gate against (fail on >20% speedup regression)")

		reliableBench = flag.Bool("reliable", false, "measure the ARQ reliability layer (soak acceptance, overhead, loss sweep)")
		reliableOut   = flag.String("reliable-out", "BENCH_reliable.json", "file for the reliability JSON artifact (\"\" = don't write)")
		reliableRuns  = flag.Int("reliable-runs", 100, "seeded soak runs per receive path")
		reliableMsg   = flag.Int("reliable-msg", 4096, "message size in bytes for every reliability measurement")

		msBench  = flag.Bool("multisender", false, "sweep the shared-medium scenario over 1/2/4/8 concurrent senders")
		msOut    = flag.String("multisender-out", "BENCH_multisender.json", "file for the multi-sender JSON artifact (\"\" = don't write)")
		msFrames = flag.Int("multisender-frames", 8, "frames each sender transmits")
		msGap    = flag.Float64("multisender-gap", 2, "mean inter-frame gap in airtime multiples")

		densityBench  = flag.Bool("density", false, "sweep the event-driven shared medium over large sender populations")
		densityOut    = flag.String("density-out", "BENCH_density.json", "file for the density sweep JSON artifact (\"\" = don't write)")
		densityFrames = flag.Int("density-frames", 4, "frames each sender transmits in the density sweep")
		densityGap    = flag.Float64("density-gap", 4, "mean inter-frame gap in airtime multiples for the density sweep")
		densityWidths = flag.String("density-widths", "8,64,256,1024", "comma-separated sender populations to sweep")
	)
	flag.Parse()
	if *densityBench {
		widths, err := cli.ParseIntList(*densityWidths)
		if err == nil {
			if *short {
				widths = shortWidths(widths)
			}
			err = runDensityBench(*seed, *densityFrames, *densityGap, widths, *densityOut)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "symbeebench:", err)
			os.Exit(1)
		}
		return
	}
	if *msBench {
		if err := runMultiSenderBench(*seed, *msFrames, *msGap, *msOut); err != nil {
			fmt.Fprintln(os.Stderr, "symbeebench:", err)
			os.Exit(1)
		}
		return
	}
	if *reliableBench {
		if err := runReliableBench(*seed, *reliableRuns, *reliableMsg, *reliableOut); err != nil {
			fmt.Fprintln(os.Stderr, "symbeebench:", err)
			os.Exit(1)
		}
		return
	}
	if *kernelBench {
		if err := runKernelBench(*seed, *kernelSamples, *kernelOut, *kernelBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "symbeebench:", err)
			os.Exit(1)
		}
		return
	}
	if *streamBench {
		if err := runStreamBench(*seed, *streamChunk, *streamSamples, *streamOut, *streamBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "symbeebench:", err)
			os.Exit(1)
		}
		return
	}
	if err := realMain(*list, *run, *all, sim.Options{Seed: *seed, Packets: *packets, Short: *short}, *csv); err != nil {
		fmt.Fprintln(os.Stderr, "symbeebench:", err)
		os.Exit(1)
	}
}

func realMain(list bool, run string, all bool, opts sim.Options, csv bool) error {
	switch {
	case list:
		for _, e := range sim.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Description)
		}
		return nil
	case run != "":
		e, err := sim.ByID(run)
		if err != nil {
			return err
		}
		return runOne(e, opts, csv)
	case all:
		for _, e := range sim.Experiments() {
			if err := runOne(e, opts, csv); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	flag.Usage()
	return nil
}

func runOne(e sim.Experiment, opts sim.Options, csv bool) error {
	start := time.Now()
	t, err := e.Run(opts)
	if err != nil {
		return err
	}
	if csv {
		fmt.Printf("# %s\n%s\n", t.Title, t.CSV())
	} else {
		fmt.Println(t.Render())
	}
	fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}
