// Command symbeevet runs the project's static-analysis suite: eight
// analyzers that machine-enforce the repo's hot-path allocation,
// determinism, error-wrapping, float-comparison, import-layering,
// RNG-stream, config-contract and concurrency invariants
// (DESIGN.md §9).
//
// Usage:
//
//	go run ./cmd/symbeevet [-json] [-rules list] [packages]
//
// Patterns default to ./... . Exit status is 0 when clean, 1 when
// diagnostics were reported, 2 on a driver error (load or type-check
// failure, unknown rule).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"symbee/internal/vet"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("symbeevet", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit a machine-readable JSON report instead of text")
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: symbeevet [-json] [-rules list] [packages]")
		fs.PrintDefaults()
		fmt.Fprintln(os.Stderr, "rules:")
		for _, az := range vet.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", az.Name, az.Doc)
		}
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers, err := selectRules(*rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbeevet:", err)
		return 2
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbeevet:", err)
		return 2
	}
	loadStart := time.Now()
	prog, err := vet.Load(wd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "symbeevet:", err)
		return 2
	}
	load := time.Since(loadStart)

	analyzeStart := time.Now()
	diags := vet.Run(prog, analyzers)
	analyze := time.Since(analyzeStart)

	if *jsonOut {
		report := vet.NewReport(patterns, analyzers, prog, diags, load, analyze)
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "symbeevet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "symbeevet: %d diagnostic(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// selectRules resolves the -rules flag against the registered suite.
func selectRules(spec string) ([]*vet.Analyzer, error) {
	all := vet.Analyzers()
	if spec == "" {
		return all, nil
	}
	byName := make(map[string]*vet.Analyzer, len(all))
	for _, az := range all {
		byName[az.Name] = az
	}
	var out []*vet.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		az, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q", name)
		}
		out = append(out, az)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rules selected from %q", spec)
	}
	return out, nil
}
