module symbee

go 1.22
