# Shared test-selection gate lists, sourced by scripts/check.sh and the
# CI workflows (.github/workflows/*.yml) so the two cannot drift: the
# -run regexes and race-scoped package list live here and only here.
#
# POSIX sh; no shebang — this file is sourced, not executed.

# Link-stack bit-exactness gate (DESIGN.md §11): committed golden
# fixtures through every stack configuration at every chunk size, plus
# the warm-ingest zero-alloc pins.
LINK_EQUIVALENCE_RUN='TestGoldenTraceEquivalence|TestStreamingChunkInvariance|TestStackSteadyStateZeroAlloc|TestStackWithSinkZeroAlloc'

# Batched idle-hunt kernel gate (DESIGN.md §13): the chunked batch path
# must match the per-sample reference scanner bit for bit, and the warm
# batch hunt must stay allocation-free.
HUNT_EQUIVALENCE_RUN='TestHuntScalarBatchEquivalence|TestHuntBatchZeroAlloc'

# Medium-engine equivalence (DESIGN.md §12): the event-driven lazy
# synthesizer must reproduce the dense reference bit-for-bit.
MEDIUM_EQUIVALENCE_RUN='TestMediumLinkEquivalence'

# Duplex downlink equivalence gate (DESIGN.md §15): the layered
# link.DownStack must match the retired monolithic reverseChannel bit
# for bit over 100 randomized seeds (the reference survives verbatim in
# internal/reliable as a test-only pin), and the committed downlink
# golden traces must replay byte-identically at every polling cadence.
# Run over both packages: the golden fixture lives in internal/link,
# the equivalence reference in internal/reliable.
DUPLEX_EQUIVALENCE_RUN='TestDownlinkLayeredEquivalence|TestDownlinkGoldenTraces'

# ARQ acceptance soaks (DESIGN.md §14): the 100-seed forward soak on
# both receive paths plus the bidirectional soak (10% loss forward, 10%
# per-copy ack loss on the modeled downlink). CI and nightly run these
# with RELIABLE_SOAK_RUNS=100.
ARQ_SOAK_RUN='TestARQSoak|TestARQBidirectionalSoak'

# Packages for race-detector coverage. Audited 2026-08 against the two
# properties that make -race worth its ~10x slowdown: the package spawns
# goroutines (grep for 'go func'/'go ident' outside tests) or owns
# *rand.Rand / splitmix streams whose draw order a race would scramble.
# Goroutine spawners: dsp, link, reliable, sim, stream (plus testutil,
# whose helpers only run inside the importing packages' tests, and the
# cmd/ binaries, which CI exercises via the stream-throughput job).
# RNG owners: the root package, channel, ctc, mac, medium, reliable,
# sim, splitmix, wifi. core stays listed for the decoder state machine
# driven concurrently by stream, and vet for its GOMAXPROCS-bounded
# analyzer fan-out. Re-audited for the duplex refactor: link now also
# owns the downlink's collision RNG (DownSpec.Collide) — it was already
# in scope as a goroutine spawner, so the list is unchanged.
RACE_PACKAGES='. ./internal/stream/... ./internal/core/... ./internal/reliable/... ./internal/channel/... ./internal/link/... ./internal/medium/... ./internal/ctc/... ./internal/sim/... ./internal/dsp/... ./internal/splitmix/... ./internal/mac/... ./internal/wifi/... ./internal/vet/...'
