#!/bin/sh
# Repo-wide verification: formatting gate, build, vet, the project's own
# static-analysis suite (symbeevet), full test suite, the panic gate for
# library code, then the race detector over every goroutine-spawning or
# RNG-owning package (the audit and the resulting list live in
# scripts/gates.sh), and the equivalence gates. CI runs this same script, so a green local run
# means a green check job. The -run gate lists and race package scope
# are shared with the CI workflows via scripts/gates.sh.
set -eux
cd "$(dirname "$0")/.."
. ./scripts/gates.sh
test -z "$(gofmt -l .)" || { gofmt -l .; echo "gofmt: files above need formatting"; exit 1; }
go build ./...
go vet ./...
go run ./cmd/symbeevet ./...
go test ./...
# Race coverage over every goroutine-spawning or RNG-owning package
# (audit in scripts/gates.sh). The ARQ soak is bounded to two seeds
# here: one seeded 4 KiB transfer costs ~1 min under the race detector,
# and the full 100-seed acceptance sweep runs race-free in CI's
# dedicated soak job.
RELIABLE_SOAK_RUNS=2 go test -race -timeout 15m $RACE_PACKAGES
# Medium-engine equivalence under the race detector: the event-driven
# lazy synthesizer must reproduce the dense reference bit-for-bit
# (DESIGN.md §12).
go test -race ./internal/link/ -run "$MEDIUM_EQUIVALENCE_RUN" -count=1
# Link-stack equivalence: the committed golden fixtures must decode
# byte-identically through the reference batch entrypoint and every
# Stack configuration at every ingest chunk size, and the warm ingest
# path must stay allocation-free (DESIGN.md §11).
go test ./internal/link/ -run "$LINK_EQUIVALENCE_RUN" -count=1
# Batched idle-hunt kernel equivalence: the chunked batch hunt must
# match the per-sample reference scanner bit for bit and allocate
# nothing once warm (DESIGN.md §13).
go test ./internal/core/ -run "$HUNT_EQUIVALENCE_RUN" -count=1
# Duplex downlink equivalence: the layered ack stack must match the
# retired monolithic reverse channel bit for bit over 100 seeds, and
# the committed downlink golden traces must replay byte-identically at
# every polling cadence (DESIGN.md §15).
go test ./internal/link/ ./internal/reliable/ -run "$DUPLEX_EQUIVALENCE_RUN" -count=1
# Library code reports errors, it does not panic: the only panic( calls
# allowed outside tests are the vet suite's own fixtures/doc strings.
panics="$(grep -rn 'panic(' --include='*.go' cmd internal examples *.go | grep -v _test.go | grep -v '^internal/vet/' || true)"
test -z "$panics" || { echo "$panics"; echo "panic( found in library code (use error returns; see DESIGN.md §9)"; exit 1; }
