package symbee

import (
	"testing"

	"symbee/internal/core"
	"symbee/internal/sim"
	"symbee/internal/wifi"
	"symbee/internal/zigbee"
)

// Figure benches: each regenerates one table/figure of the paper's
// evaluation (reduced size; run cmd/symbeebench for full-size tables).
// The table is printed once so `go test -bench` output doubles as a
// compact reproduction record.

func benchFigure(b *testing.B, id string) {
	b.Helper()
	exp, err := sim.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.Options{Seed: 1, Short: true}
	var rendered string
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := exp.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		rendered = t.Render()
	}
	b.StopTimer()
	if rendered != "" {
		b.Logf("\n%s", rendered)
	}
}

func BenchmarkFig06PairSearch(b *testing.B)    { benchFigure(b, "fig6") }
func BenchmarkFig07StablePhase(b *testing.B)   { benchFigure(b, "fig7") }
func BenchmarkFig11Folding(b *testing.B)       { benchFigure(b, "fig11") }
func BenchmarkFig12BERvsSNR(b *testing.B)      { benchFigure(b, "fig12") }
func BenchmarkFig12BERvsSNR40MHz(b *testing.B) { benchFigure(b, "fig12-40mhz") }
func BenchmarkFig13Throughput(b *testing.B)    { benchFigure(b, "fig13") }
func BenchmarkFig14BER(b *testing.B)           { benchFigure(b, "fig14") }
func BenchmarkFig16Comparison(b *testing.B)    { benchFigure(b, "fig16") }
func BenchmarkFig17Constellation(b *testing.B) { benchFigure(b, "fig17") }
func BenchmarkFig18NLOS(b *testing.B)          { benchFigure(b, "fig18") }
func BenchmarkFig19TxPower(b *testing.B)       { benchFigure(b, "fig19") }
func BenchmarkFig20Interference(b *testing.B)  { benchFigure(b, "fig20") }
func BenchmarkFig21Hamming(b *testing.B)       { benchFigure(b, "fig21") }
func BenchmarkFig22Tau(b *testing.B)           { benchFigure(b, "fig22a") }
func BenchmarkFig22Preamble(b *testing.B)      { benchFigure(b, "fig22b") }
func BenchmarkFig23Mobility(b *testing.B)      { benchFigure(b, "fig23") }

// System-level benches beyond the paper's figures.

func BenchmarkNonIntrusiveness(b *testing.B)     { benchFigure(b, "nonintrusive") }
func BenchmarkConvergecast(b *testing.B)         { benchFigure(b, "convergecast") }
func BenchmarkLightweightDecoding(b *testing.B)  { benchFigure(b, "lightweight") }
func BenchmarkCTCInterferenceSweep(b *testing.B) { benchFigure(b, "ctc-sweep") }
func BenchmarkAblationSoftDecision(b *testing.B) { benchFigure(b, "ablation-soft") }

// Ablation benches for the design choices called out in DESIGN.md.

func BenchmarkAblationSymbolPairs(b *testing.B)      { benchFigure(b, "ablation-pairs") }
func BenchmarkAblationPreambleReps(b *testing.B)     { benchFigure(b, "ablation-preamble") }
func BenchmarkAblationCaptureThreshold(b *testing.B) { benchFigure(b, "ablation-threshold") }
func BenchmarkAblationSampleRate(b *testing.B)       { benchFigure(b, "ablation-rate") }

// Hot-path micro-benchmarks: the per-packet cost of each pipeline stage.

func BenchmarkModulatorPacket(b *testing.B) {
	mod, err := zigbee.NewModulator(20e6)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 110)
	ppdu, err := zigbee.BuildPPDU(payload)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(ppdu)*2*mod.SamplesPerSymbol()), "samples/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sig := mod.ModulateBytes(ppdu, zigbee.OrderMSBFirst)
		_ = sig
	}
}

func BenchmarkPhaseStreamPacket(b *testing.B) {
	fe, err := wifi.NewFrontEnd(20e6)
	if err != nil {
		b.Fatal(err)
	}
	mod, err := zigbee.NewModulator(20e6)
	if err != nil {
		b.Fatal(err)
	}
	ppdu, err := zigbee.BuildPPDU(make([]byte, 110))
	if err != nil {
		b.Fatal(err)
	}
	sig := mod.ModulateBytes(ppdu, zigbee.OrderMSBFirst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = fe.PhaseStream(sig)
	}
}

func BenchmarkDecodeFramePacket(b *testing.B) {
	link, err := core.NewLink(core.Params20(), 0)
	if err != nil {
		b.Fatal(err)
	}
	sig, err := link.TransmitFrame(&core.Frame{Seq: 1, Data: []byte("0123456789")})
	if err != nil {
		b.Fatal(err)
	}
	phases := link.Phases(sig)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.Decoder().DecodeFrame(phases); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCapturePreamble(b *testing.B) {
	link, err := core.NewLink(core.Params20(), 0)
	if err != nil {
		b.Fatal(err)
	}
	sig, err := link.TransmitBits(sim.AlternatingBits(100))
	if err != nil {
		b.Fatal(err)
	}
	phases := link.Phases(sig)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.Decoder().CapturePreamble(phases); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEndToEndPacket(b *testing.B) {
	// Full TX→channel→RX round trip for one 100-bit packet at 10 dB.
	link, err := NewLink(Params20(), CanonicalCompensation)
	if err != nil {
		b.Fatal(err)
	}
	bits := sim.AlternatingBits(100)
	sig, err := link.TransmitBits(bits)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := NewChannel(ChannelConfig{Scenario: "office", Distance: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(bits) / 8))
	lost := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		capture, err := ch.Transmit(sig)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := link.ReceiveBits(capture, len(bits)); err != nil {
			// Occasional deep shadowing fades lose a packet — part of
			// the workload, not a bench failure.
			lost++
		}
	}
	b.ReportMetric(float64(lost)/float64(b.N), "lost/op")
}

func BenchmarkZigBeeDemodulatePacket(b *testing.B) {
	mod, err := zigbee.NewModulator(20e6)
	if err != nil {
		b.Fatal(err)
	}
	demod, err := zigbee.NewDemodulator(20e6)
	if err != nil {
		b.Fatal(err)
	}
	ppdu, err := zigbee.BuildPPDU(make([]byte, 60))
	if err != nil {
		b.Fatal(err)
	}
	sig := mod.ModulateBytes(ppdu, zigbee.OrderLSBFirst)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := demod.ReceiveAt(sig, 0, zigbee.OrderLSBFirst); err != nil {
			b.Fatal(err)
		}
	}
}
