package wifi

import (
	"math"
	"testing"

	"symbee/internal/dsp"
)

func TestChannelFrequencies(t *testing.T) {
	if f, err := WiFiChannelFreq(1); err != nil || f != 2412e6 {
		t.Errorf("WiFi ch 1 = %v, %v", f, err)
	}
	if f, err := WiFiChannelFreq(13); err != nil || f != 2472e6 {
		t.Errorf("WiFi ch 13 = %v, %v", f, err)
	}
	if f, err := ZigBeeChannelFreq(11); err != nil || f != 2405e6 {
		t.Errorf("ZigBee ch 11 = %v, %v", f, err)
	}
	if f, err := ZigBeeChannelFreq(26); err != nil || f != 2480e6 {
		t.Errorf("ZigBee ch 26 = %v, %v", f, err)
	}
	for _, c := range []int{0, 14} {
		if _, err := WiFiChannelFreq(c); err == nil {
			t.Errorf("WiFi ch %d should be invalid", c)
		}
	}
	for _, k := range []int{10, 27} {
		if _, err := ZigBeeChannelFreq(k); err == nil {
			t.Errorf("ZigBee ch %d should be invalid", k)
		}
	}
}

func TestPaperChannelExample(t *testing.T) {
	// Appendix B example: ZigBee ch 12 (2.410 GHz) is 2 MHz below WiFi
	// ch 1 (2.412 GHz).
	off, err := FreqOffset(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if off != -2e6 {
		t.Errorf("offset = %v, want -2 MHz", off)
	}
}

func TestOffsetsCongruentTo3Mod5MHz(t *testing.T) {
	// Appendix B: the offset between a WiFi channel and any overlapping
	// ZigBee channel is (3 + 5m) MHz.
	for wc := MinWiFiChannel; wc <= MaxWiFiChannel; wc++ {
		for zk := MinZigBeeChannel; zk <= MaxZigBeeChannel; zk++ {
			ov, err := Overlaps(wc, zk)
			if err != nil {
				t.Fatal(err)
			}
			if !ov {
				continue
			}
			off, err := FreqOffset(wc, zk)
			if err != nil {
				t.Fatal(err)
			}
			mhz := off / 1e6
			mod := math.Mod(math.Mod(mhz-3, 5)+5, 5)
			if math.Abs(mod) > 1e-9 {
				t.Errorf("WiFi %d / ZigBee %d: offset %v MHz not ≡ 3 (mod 5)", wc, zk, mhz)
			}
		}
	}
}

func TestCFOCompensationConstant(t *testing.T) {
	// Appendix B's punchline: the compensation is +4π/5 for EVERY
	// overlapping channel pair.
	want := 4 * math.Pi / 5
	checked := 0
	for wc := MinWiFiChannel; wc <= MaxWiFiChannel; wc++ {
		for zk := MinZigBeeChannel; zk <= MaxZigBeeChannel; zk++ {
			if ov, _ := Overlaps(wc, zk); !ov {
				continue
			}
			off, _ := FreqOffset(wc, zk)
			comp := CompensationPhase(off)
			if math.Abs(dsp.WrapPhase(comp-want)) > 1e-6 {
				t.Errorf("WiFi %d / ZigBee %d: compensation %v, want 4π/5", wc, zk, comp)
			}
			checked++
		}
	}
	if checked < 30 {
		t.Errorf("only %d overlapping pairs checked; expected many more", checked)
	}
	if math.Abs(CanonicalCompensation-want) > 1e-12 {
		t.Errorf("CanonicalCompensation = %v", CanonicalCompensation)
	}
}

func TestEveryWiFiChannelOverlapsFourZigBeeChannels(t *testing.T) {
	for wc := MinWiFiChannel; wc <= MaxWiFiChannel; wc++ {
		count := 0
		for zk := MinZigBeeChannel; zk <= MaxZigBeeChannel; zk++ {
			if ov, _ := Overlaps(wc, zk); ov {
				count++
			}
		}
		if count < 4 {
			t.Errorf("WiFi ch %d overlaps only %d ZigBee channels", wc, count)
		}
	}
}
