package wifi

import (
	"fmt"
	"math"
	"math/rand"

	"symbee/internal/dsp"
)

// 802.11g OFDM numerology at 20 Msps.
const (
	// FFTSize is the number of OFDM subcarriers.
	FFTSize = 64
	// CPLen is the cyclic-prefix length in samples.
	CPLen = 16
	// OFDMSymbolLen is one data symbol: CP + FFT = 80 samples (4 µs).
	OFDMSymbolLen = FFTSize + CPLen
	// STSLen is the short training sequence length: ten 16-sample
	// repetitions (8 µs).
	STSLen = 160
	// LTSLen is the long training sequence length: 32-sample guard plus
	// two 64-sample symbols (8 µs).
	LTSLen = 160
	// PreambleLen is STS + LTS.
	PreambleLen = STSLen + LTSLen
)

// stsFreq is the frequency-domain short training sequence S_{-26..26}
// (IEEE 802.11-2012 Eq. 18-8) without the sqrt(13/6) scale; entries are
// (1+j) or -(1+j) on subcarriers ±4,±8,...,±24.
var stsFreq = func() [53]complex128 {
	var s [53]complex128
	p := complex(1, 1)
	set := map[int]complex128{
		-24: p, -20: -p, -16: p, -12: -p, -8: -p, -4: p,
		4: -p, 8: -p, 12: p, 16: p, 20: p, 24: p,
	}
	for k, v := range set {
		s[k+26] = v
	}
	return s
}()

// ltsFreq is the frequency-domain long training sequence L_{-26..26}
// (IEEE 802.11-2012 Eq. 18-11).
var ltsFreq = [53]complex128{
	1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1,
	1, -1, 1, 1, 1, 1,
	0,
	1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1,
	-1, 1, -1, 1, 1, 1, 1,
}

// dataSubcarriers lists the 48 data-bearing subcarrier indices of an
// 802.11a/g symbol (±1..±26 minus the pilots at ±7 and ±21).
var dataSubcarriers = func() []int {
	idx := make([]int, 0, 48)
	for k := -26; k <= 26; k++ {
		switch k {
		case 0, -21, -7, 7, 21:
			continue
		}
		idx = append(idx, k)
	}
	return idx
}()

// Transmitter generates 802.11g baseband frames, used as a realistic
// interference source for the robustness experiments.
type Transmitter struct {
	rng *rand.Rand
}

// NewTransmitter returns a transmitter whose data bits come from rng
// (pass a deterministically seeded source for reproducible traces).
func NewTransmitter(rng *rand.Rand) *Transmitter {
	return &Transmitter{rng: rng}
}

// ifft64 maps a 53-entry centered spectrum (indices -26..26) onto a
// 64-point IFFT and returns the time-domain samples.
func ifft64(centered []complex128) []complex128 {
	buf := make([]complex128, FFTSize)
	for i, v := range centered {
		k := i - 26
		if k < 0 {
			k += FFTSize
		}
		buf[k] = v
	}
	dsp.IFFT(buf)
	return buf
}

// STS returns the 160-sample short training sequence. Its 16-sample
// periodicity is what the autocorrelation detector keys on.
func STS() []complex128 {
	spec := make([]complex128, 53)
	scale := complex(math.Sqrt(13.0/6.0), 0)
	for i, v := range stsFreq {
		spec[i] = v * scale
	}
	period := ifft64(spec) // inherently periodic with period 16
	out := make([]complex128, STSLen)
	for i := range out {
		out[i] = period[i%FFTSize]
	}
	return out
}

// LTS returns the 160-sample long training sequence (32-sample cyclic
// guard followed by two repetitions of the 64-sample symbol).
func LTS() []complex128 {
	spec := make([]complex128, 53)
	copy(spec, ltsFreq[:])
	sym := ifft64(spec)
	out := make([]complex128, 0, LTSLen)
	out = append(out, sym[FFTSize-32:]...)
	out = append(out, sym...)
	out = append(out, sym...)
	return out
}

// BitsPerOFDMSymbol is the QPSK payload of one data symbol: 48
// subcarriers × 2 bits.
const BitsPerOFDMSymbol = 96

// Frame generates a full frame with nSymbols random-QPSK data symbols
// following the preamble, normalized to unit mean power. At 20 Msps the
// frame spans 16 µs + nSymbols·4 µs.
func (t *Transmitter) Frame(nSymbols int) ([]complex128, error) {
	if nSymbols < 0 {
		return nil, fmt.Errorf("wifi: negative symbol count %d", nSymbols)
	}
	bits := make([]byte, nSymbols*BitsPerOFDMSymbol)
	for i := range bits {
		bits[i] = byte(t.rng.Intn(2))
	}
	return t.FrameWithBits(bits)
}

// FrameWithBits generates a frame carrying the given bit string (QPSK,
// 96 bits per symbol; the final symbol is zero-padded). Bit pairs map
// to constellation points as ((1−2b0) + j(1−2b1))/√2, matching the
// Receiver's demapping.
func (t *Transmitter) FrameWithBits(bits []byte) ([]complex128, error) {
	nSymbols := (len(bits) + BitsPerOFDMSymbol - 1) / BitsPerOFDMSymbol
	if nSymbols == 0 {
		nSymbols = 1
	}
	out := make([]complex128, 0, PreambleLen+nSymbols*OFDMSymbolLen)
	out = append(out, STS()...)
	out = append(out, LTS()...)
	norm := math.Sqrt(0.5)
	pilots := [4]int{-21, -7, 7, 21}
	bit := func(i int) float64 {
		if i < len(bits) && bits[i]&1 == 1 {
			return -1
		}
		return 1
	}
	idx := 0
	for s := 0; s < nSymbols; s++ {
		spec := make([]complex128, 53)
		for _, k := range dataSubcarriers {
			spec[k+26] = complex(bit(idx)*norm, bit(idx+1)*norm)
			idx += 2
		}
		for _, k := range pilots {
			spec[k+26] = 1
		}
		sym := ifft64(spec)
		out = append(out, sym[FFTSize-CPLen:]...)
		out = append(out, sym...)
	}
	dsp.NormalizePower(out, 1)
	return out, nil
}

// FrameForDuration generates a frame whose total airtime is at least
// duration seconds at 20 Msps (data symbols are 4 µs each).
func (t *Transmitter) FrameForDuration(duration float64) ([]complex128, error) {
	if duration <= 0 {
		return nil, fmt.Errorf("wifi: non-positive duration %v", duration)
	}
	samples := int(math.Ceil(duration * 20e6))
	n := (samples - PreambleLen + OFDMSymbolLen - 1) / OFDMSymbolLen
	if n < 1 {
		n = 1
	}
	return t.Frame(n)
}
