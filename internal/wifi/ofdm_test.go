package wifi

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"symbee/internal/dsp"
)

func TestSTSPeriodicity(t *testing.T) {
	sts := STS()
	if len(sts) != STSLen {
		t.Fatalf("len = %d, want %d", len(sts), STSLen)
	}
	for i := 0; i+16 < len(sts); i++ {
		if cmplx.Abs(sts[i]-sts[i+16]) > 1e-9 {
			t.Fatalf("STS not 16-periodic at %d", i)
		}
	}
}

func TestLTSStructure(t *testing.T) {
	lts := LTS()
	if len(lts) != LTSLen {
		t.Fatalf("len = %d, want %d", len(lts), LTSLen)
	}
	// Guard interval is the tail of the symbol; two symbol copies.
	for i := 0; i < 64; i++ {
		if cmplx.Abs(lts[32+i]-lts[96+i]) > 1e-9 {
			t.Fatalf("LTS symbol copies differ at %d", i)
		}
	}
	// The 32-sample guard is the tail of the symbol: lts[i] = sym[32+i]
	// = lts[64+i].
	for i := 0; i < 32; i++ {
		if cmplx.Abs(lts[i]-lts[64+i]) > 1e-9 {
			t.Fatalf("LTS cyclic prefix mismatch at %d", i)
		}
	}
}

func TestFrameLengthAndPower(t *testing.T) {
	tx := NewTransmitter(rand.New(rand.NewSource(1)))
	frame, err := tx.Frame(10)
	if err != nil {
		t.Fatal(err)
	}
	want := PreambleLen + 10*OFDMSymbolLen
	if len(frame) != want {
		t.Fatalf("len = %d, want %d", len(frame), want)
	}
	if p := dsp.Power(frame); math.Abs(p-1) > 1e-9 {
		t.Errorf("power = %v, want 1", p)
	}
}

func TestFrameForDuration(t *testing.T) {
	tx := NewTransmitter(rand.New(rand.NewSource(2)))
	// The Fig. 20 interferer: a 270 µs WiFi burst.
	frame, err := tx.FrameForDuration(270e-6)
	if err != nil {
		t.Fatal(err)
	}
	dur := float64(len(frame)) / 20e6
	if dur < 270e-6 || dur > 290e-6 {
		t.Errorf("duration = %v, want ≈270 µs", dur)
	}
	if _, err := tx.FrameForDuration(0); err == nil {
		t.Error("expected error for zero duration")
	}
}

func TestFrameNegativeSymbols(t *testing.T) {
	tx := NewTransmitter(rand.New(rand.NewSource(3)))
	if _, err := tx.Frame(-1); err == nil {
		t.Error("expected error")
	}
}

func TestDataSubcarrierCount(t *testing.T) {
	if len(dataSubcarriers) != 48 {
		t.Errorf("data subcarriers = %d, want 48", len(dataSubcarriers))
	}
}

func TestFrameOccupiesWideBand(t *testing.T) {
	// An OFDM data frame should spread energy over ±8 MHz; a ZigBee
	// signal concentrates within ±1 MHz. Check the OFDM side.
	tx := NewTransmitter(rand.New(rand.NewSource(4)))
	frame, _ := tx.Frame(8)
	spec := dsp.SpectrumPower(frame[PreambleLen:])
	n := len(spec)
	// Fraction of power beyond ±2 MHz (bins n*2/20 away from DC).
	edge := n / 10
	var outer, total float64
	for k, p := range spec {
		total += p
		if k > edge && k < n-edge {
			outer += p
		}
	}
	if outer/total < 0.5 {
		t.Errorf("outer-band power fraction = %v, want > 0.5", outer/total)
	}
}
