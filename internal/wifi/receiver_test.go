package wifi

import (
	"math"
	"math/rand"
	"testing"

	"symbee/internal/dsp"
	"symbee/internal/zigbee"
)

func randomBits(n int, rng *rand.Rand) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	return bits
}

func addAWGN(x []complex128, power float64, rng *rand.Rand) {
	s := math.Sqrt(power / 2)
	for i := range x {
		x[i] += complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
	}
}

func TestReceiverCleanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tx := NewTransmitter(rng)
	rx, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(4*BitsPerOFDMSymbol, rng)
	frame, err := tx.FrameWithBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	capture := make([]complex128, len(frame)+2000)
	addAWGN(capture, 1e-4, rng)
	for i, v := range frame {
		capture[600+i] += v
	}
	got, err := rx.Receive(capture, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bits) != len(bits) {
		t.Fatalf("decoded %d bits, want %d", len(got.Bits), len(bits))
	}
	for i := range bits {
		if got.Bits[i] != bits[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
	if got.SymbolEVM > 0.1 {
		t.Errorf("clean EVM = %v", got.SymbolEVM)
	}
}

func TestReceiverWithCFOAndNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tx := NewTransmitter(rng)
	rx, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(6*BitsPerOFDMSymbol, rng)
	frame, err := tx.FrameWithBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	const cfo = 40e3 // ≈17 ppm at 2.4 GHz, a typical oscillator error
	capture := make([]complex128, len(frame)+3000)
	for i, v := range frame {
		capture[900+i] += v
	}
	dsp.RotateFrequency(capture, cfo, 20e6, 0)
	addAWGN(capture, dsp.FromDB(-15), rng) // 15 dB SNR
	got, err := rx.Receive(capture, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.CFO-cfo) > 10e3 {
		t.Errorf("CFO estimate = %v, want ≈%v", got.CFO, cfo)
	}
	errs := 0
	for i := range bits {
		if got.Bits[i] != bits[i] {
			errs++
		}
	}
	if errs > len(bits)/100 {
		t.Errorf("%d/%d bit errors at 15 dB SNR with CFO", errs, len(bits))
	}
}

func TestReceiverNoPacket(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rx, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	noise := make([]complex128, 10000)
	addAWGN(noise, 1, rng)
	if _, err := rx.Receive(noise, 2); err == nil {
		t.Error("expected ErrNoPacket on noise")
	}
}

func TestReceiverTruncatedCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tx := NewTransmitter(rng)
	rx, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	frame, err := tx.Frame(2)
	if err != nil {
		t.Fatal(err)
	}
	capture := make([]complex128, len(frame))
	copy(capture, frame)
	// Ask for more symbols than the frame holds.
	if _, err := rx.Receive(capture, 50); err == nil {
		t.Error("expected ErrShortInput")
	}
}

func TestWiFiSurvivesConcurrentZigBee(t *testing.T) {
	// The paper's non-intrusiveness claim, quantified: a WiFi frame
	// 15 dB above a concurrent SymBee transmission still decodes with
	// zero errors — ZigBee's 2 MHz droplet corrupts only 5 of 48
	// subcarriers, and QPSK margins absorb it.
	rng := rand.New(rand.NewSource(5))
	tx := NewTransmitter(rng)
	rx, err := NewReceiver()
	if err != nil {
		t.Fatal(err)
	}
	bits := randomBits(4*BitsPerOFDMSymbol, rng)
	frame, err := tx.FrameWithBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := zigbee.NewModulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 60)
	for i := range payload {
		payload[i] = 0x67
	}
	zb := mod.ModulateBytes(payload, zigbee.OrderMSBFirst)
	dsp.NormalizePower(zb, dsp.FromDB(-15)) // 15 dB below the WiFi frame

	capture := make([]complex128, len(frame)+4000)
	for i, v := range frame {
		capture[500+i] += v
	}
	for i, v := range zb {
		if 500+i < len(capture) {
			capture[500+i] += v
		}
	}
	addAWGN(capture, dsp.FromDB(-25), rng)

	got, err := rx.Receive(capture, 4)
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := range bits {
		if got.Bits[i] != bits[i] {
			errs++
		}
	}
	if errs > 0 {
		t.Errorf("%d bit errors with concurrent ZigBee at -15 dB", errs)
	}
}
