package wifi

import (
	"math"
	"math/rand"
	"testing"

	"symbee/internal/dsp"
	"symbee/internal/zigbee"
)

func TestNewFrontEndRates(t *testing.T) {
	tests := []struct {
		rate    float64
		wantLag int
		wantErr bool
	}{
		{20e6, 16, false},
		{40e6, 32, false},
		{21e6, 0, true}, // 16.8 samples per lag
		{0, 0, true},
		{-1, 0, true},
	}
	for _, tt := range tests {
		f, err := NewFrontEnd(tt.rate)
		if tt.wantErr != (err != nil) {
			t.Errorf("rate %v: err = %v, wantErr %v", tt.rate, err, tt.wantErr)
			continue
		}
		if err == nil && f.Lag() != tt.wantLag {
			t.Errorf("rate %v: lag = %d, want %d", tt.rate, f.Lag(), tt.wantLag)
		}
	}
}

func TestPhaseStreamMatchesManualComputation(t *testing.T) {
	f, err := NewFrontEnd(20e6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, 100)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	ph := f.PhaseStream(x)
	if len(ph) != 100-16 {
		t.Fatalf("len = %d", len(ph))
	}
	// The default path runs the fast phase kernel: manual Atan2 values
	// must agree within its documented bound.
	for n := range ph {
		p := x[n] * complex(real(x[n+16]), -imag(x[n+16]))
		want := math.Atan2(imag(p), real(p))
		if math.Abs(ph[n]-want) > dsp.FastAtan2MaxErr {
			t.Fatalf("ph[%d] = %v, want %v within %v", n, ph[n], want, dsp.FastAtan2MaxErr)
		}
	}
	// Under the exactness escape hatch the stream is bit-identical to
	// the manual computation.
	dsp.UseExactPhase = true
	defer func() { dsp.UseExactPhase = false }()
	for n, v := range f.PhaseStream(x) {
		p := x[n] * complex(real(x[n+16]), -imag(x[n+16]))
		if want := math.Atan2(imag(p), real(p)); v != want {
			t.Fatalf("exact ph[%d] = %v, want %v", n, v, want)
		}
	}
}

func TestAutocorrelationHighOnSTS(t *testing.T) {
	f, _ := NewFrontEnd(20e6)
	sts := STS()
	// Pad with mild noise around the STS.
	rng := rand.New(rand.NewSource(21))
	x := make([]complex128, 1000)
	for i := range x {
		x[i] = complex(rng.NormFloat64()*0.01, rng.NormFloat64()*0.01)
	}
	for i, v := range sts {
		x[400+i] += v
	}
	m := f.Autocorrelation(x)
	if m[400] < 0.9 {
		t.Errorf("timing metric over STS = %v, want > 0.9", m[400])
	}
	if m[100] > 0.5 {
		t.Errorf("timing metric over noise = %v, want < 0.5", m[100])
	}
}

func TestDetectPacketsFindsWiFiNotZigBee(t *testing.T) {
	// SymBee's premise: the packet detector must fire on WiFi frames and
	// stay silent on ZigBee, even though both flow through it.
	f, _ := NewFrontEnd(20e6)
	rng := rand.New(rand.NewSource(33))
	tx := NewTransmitter(rng)
	frame, err := tx.Frame(4)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := zigbee.NewModulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	zb := mod.ModulateBytes([]byte{0x67, 0xEF, 0x67, 0xEF, 0x67, 0xEF}, zigbee.OrderMSBFirst)

	x := make([]complex128, 12000)
	for i := range x {
		x[i] = complex(rng.NormFloat64()*0.02, rng.NormFloat64()*0.02)
	}
	for i, v := range frame {
		x[2000+i] += v
	}
	for i, v := range zb {
		x[7000+i] += v
	}

	starts := f.DetectPackets(x, 0.7, 64)
	if len(starts) != 1 {
		t.Fatalf("detections = %v, want exactly one (the WiFi frame)", starts)
	}
	// The Schmidl-Cox plateau begins slightly before the STS itself once
	// the correlation window is dominated by STS energy.
	if starts[0] < 1850 || starts[0] > 2100 {
		t.Errorf("detection at %d, want near 2000", starts[0])
	}
}

func TestAutocorrelationShortInput(t *testing.T) {
	f, _ := NewFrontEnd(20e6)
	if m := f.Autocorrelation(make([]complex128, 10)); m != nil {
		t.Errorf("expected nil for short input, got %v", m)
	}
}
