// Package wifi models the WiFi receiver elements SymBee interacts with:
//
//   - the idle-listening front-end (paper Fig. 4): sampling at 20 or
//     40 Msps and the autocorrelation packet-detection block whose
//     per-sample phase output ∠p[n] = arg(x[n]·x*[n+lag]) SymBee decoding
//     recycles;
//   - a Schmidl–Cox style STS plateau detector, used to show WiFi packet
//     detection keeps working and to find interfering WiFi frames;
//   - an 802.11g OFDM transmitter (short/long training sequences plus
//     QPSK data symbols) that serves as the interference source for the
//     trace-driven robustness experiments (Figs. 20-21);
//   - the 2.4 GHz channel maps of both technologies and the
//     channel-frequency-offset arithmetic of Appendix B.
package wifi
