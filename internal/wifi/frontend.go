package wifi

import (
	"fmt"
	"math"

	"symbee/internal/dsp"
)

// AutocorrLag is the self-similarity lag of the 802.11 short training
// sequence in seconds: STS repeats every 0.8 µs, so packet detection
// correlates samples 0.8 µs apart (16 samples at 20 Msps, 32 at 40).
const AutocorrLag = 0.8e-6

// FrontEnd is the part of a WiFi receiver that runs unconditionally
// while idle: it digitizes the band and feeds every sample through the
// autocorrelation packet detector. ZigBee energy in the same band flows
// through the identical path, which is what SymBee exploits.
type FrontEnd struct {
	sampleRate float64
	lag        int
}

// NewFrontEnd returns a front-end sampling at sampleRate Hz. The rate
// must place an integer number of samples in the 0.8 µs autocorrelation
// lag (20 Msps → 16, 40 Msps → 32).
func NewFrontEnd(sampleRate float64) (*FrontEnd, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("wifi: sample rate %v must be positive", sampleRate)
	}
	lagF := sampleRate * AutocorrLag
	lag := int(math.Round(lagF))
	if math.Abs(lagF-float64(lag)) > 1e-9 || lag < 1 {
		return nil, fmt.Errorf("wifi: sample rate %v does not give an integer autocorrelation lag", sampleRate)
	}
	return &FrontEnd{sampleRate: sampleRate, lag: lag}, nil
}

// SampleRate returns the front-end sample rate in Hz.
func (f *FrontEnd) SampleRate() float64 { return f.sampleRate }

// Lag returns the autocorrelation lag in samples (16 at 20 Msps).
func (f *FrontEnd) Lag() int { return f.lag }

// PhaseStream computes the idle-listening phase output ∠p[n] for every
// sample of x (paper Eq. 1). This is the signal SymBee decoding consumes.
func (f *FrontEnd) PhaseStream(x []complex128) []float64 {
	return dsp.PhaseDiffStream(x, f.lag)
}

// Autocorrelation returns the normalized Schmidl–Cox timing metric
//
//	M[n] = |P[n]|² / R[n]²,
//	P[n] = Σ_{k<W} x[n+k]·x*[n+k+lag],  R[n] = Σ_{k<W} |x[n+k+lag]|²
//
// with window W = 9·lag (the span of the STS minus one repetition).
// M approaches 1 over an STS and stays well below over noise or ZigBee.
func (f *FrontEnd) Autocorrelation(x []complex128) []float64 {
	w := 9 * f.lag
	n := len(x) - w - f.lag
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	var pRe, pIm, r float64
	// Prime the sums for n = 0.
	for k := 0; k < w; k++ {
		a, b := x[k], x[k+f.lag]
		pRe += real(a)*real(b) + imag(a)*imag(b)
		pIm += imag(a)*real(b) - real(a)*imag(b)
		r += real(b)*real(b) + imag(b)*imag(b)
	}
	for i := 0; ; i++ {
		if r > 0 {
			out[i] = (pRe*pRe + pIm*pIm) / (r * r)
		}
		if i+1 >= n {
			break
		}
		// Slide: remove term k=i, add term k=i+w.
		a, b := x[i], x[i+f.lag]
		pRe -= real(a)*real(b) + imag(a)*imag(b)
		pIm -= imag(a)*real(b) - real(a)*imag(b)
		r -= real(b)*real(b) + imag(b)*imag(b)
		a, b = x[i+w], x[i+w+f.lag]
		pRe += real(a)*real(b) + imag(a)*imag(b)
		pIm += imag(a)*real(b) - real(a)*imag(b)
		r += real(b)*real(b) + imag(b)*imag(b)
		if r < 0 {
			r = 0 // guard against floating-point drift on silent input
		}
	}
	return out
}

// DetectPackets reports the start indices of WiFi packets in x: positions
// where the timing metric exceeds threshold continuously for at least
// minPlateau samples. Detections closer than one STS length (10·lag) to
// the previous one are merged. A threshold of 0.7 and plateau of 4·lag
// work well in practice.
func (f *FrontEnd) DetectPackets(x []complex128, threshold float64, minPlateau int) []int {
	m := f.Autocorrelation(x)
	var starts []int
	run := 0
	lastEnd := -10 * f.lag
	for i, v := range m {
		if v >= threshold {
			run++
			if run == minPlateau {
				start := i - minPlateau + 1
				if start-lastEnd >= 10*f.lag {
					starts = append(starts, start)
				}
				lastEnd = start
			}
		} else {
			run = 0
		}
	}
	return starts
}
