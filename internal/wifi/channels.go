package wifi

import (
	"fmt"
	"math"

	"symbee/internal/dsp"
)

// 2.4 GHz ISM band channel plans.
const (
	// MinWiFiChannel and MaxWiFiChannel bound the 2.4 GHz WiFi channels
	// with the regular 5 MHz spacing (channel 14 is excluded: its
	// 2.484 GHz center breaks the spacing and it is disallowed for
	// 802.11g almost everywhere).
	MinWiFiChannel = 1
	MaxWiFiChannel = 13

	// MinZigBeeChannel and MaxZigBeeChannel bound the 802.15.4 2.4 GHz
	// channel page (channels 11-26).
	MinZigBeeChannel = 11
	MaxZigBeeChannel = 26

	// WiFiBandwidth20 is the occupied bandwidth of a 20 MHz WiFi channel.
	WiFiBandwidth20 = 20e6
	// ZigBeeBandwidth is the occupied bandwidth of a ZigBee channel.
	ZigBeeBandwidth = 2e6
)

// WiFiChannelFreq returns the center frequency in Hz of 2.4 GHz WiFi
// channel c (1-13).
func WiFiChannelFreq(c int) (float64, error) {
	if c < MinWiFiChannel || c > MaxWiFiChannel {
		return 0, fmt.Errorf("wifi: channel %d out of range [%d,%d]", c, MinWiFiChannel, MaxWiFiChannel)
	}
	return 2412e6 + 5e6*float64(c-1), nil
}

// ZigBeeChannelFreq returns the center frequency in Hz of 802.15.4
// channel k (11-26).
func ZigBeeChannelFreq(k int) (float64, error) {
	if k < MinZigBeeChannel || k > MaxZigBeeChannel {
		return 0, fmt.Errorf("wifi: zigbee channel %d out of range [%d,%d]", k, MinZigBeeChannel, MaxZigBeeChannel)
	}
	return 2405e6 + 5e6*float64(k-MinZigBeeChannel), nil
}

// Overlaps reports whether ZigBee channel zk falls inside WiFi channel
// wc's 20 MHz passband (the condition for cross-observability).
func Overlaps(wc, zk int) (bool, error) {
	fw, err := WiFiChannelFreq(wc)
	if err != nil {
		return false, err
	}
	fz, err := ZigBeeChannelFreq(zk)
	if err != nil {
		return false, err
	}
	return math.Abs(fz-fw) <= (WiFiBandwidth20+ZigBeeBandwidth)/2, nil
}

// FreqOffset returns fΔ = fZigBee − fWiFi in Hz for the given channel
// pair: the frequency at which the ZigBee signal appears in the WiFi
// receiver's baseband.
func FreqOffset(wc, zk int) (float64, error) {
	fw, err := WiFiChannelFreq(wc)
	if err != nil {
		return 0, err
	}
	fz, err := ZigBeeChannelFreq(zk)
	if err != nil {
		return 0, err
	}
	return fz - fw, nil
}

// CompensationPhase returns the constant that must be added to every
// measured ∠p[n] to undo the channel frequency offset fDelta:
// wrap(2π·fΔ·0.8 µs). Appendix B proves this is +4π/5 for every
// overlapping WiFi/ZigBee channel pair, because all offsets are
// congruent to 3 MHz modulo the 5 MHz channel spacing and a 5 MHz
// offset rotates an exact 4 cycles over the 0.8 µs lag.
func CompensationPhase(fDelta float64) float64 {
	return dsp.WrapPhase(2 * math.Pi * fDelta * AutocorrLag)
}

// CanonicalCompensation is the channel-independent CFO compensation of
// Appendix B: +4π/5 radians.
var CanonicalCompensation = 4 * math.Pi / 5
