package link

// The dense reference implementation of the shared-medium scenario:
// the historical RunMultiSender, which materializes every sender's
// every waveform and superposes them into one whole capture before
// receiving it. It is kept test-only as the ground truth the
// event-driven medium engine must reproduce bit-for-bit
// (TestMediumLinkEquivalence); production code routes through
// internal/medium, whose memory is bounded by overlap width instead of
// total airtime.

import (
	"math"
	"sort"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/dsp"
	"symbee/internal/splitmix"
	"symbee/internal/wifi"
)

// refTransmission is one frame's placement on the shared timeline.
type refTransmission struct {
	sender  int
	seq     int
	start   int // sample index of the first signal sample
	end     int // one past the last signal sample
	sig     []complex128
	gain    complex128
	collide bool
	decoded bool
}

// referenceMultiSender is the dense implementation: draw all
// schedules, materialize and superpose every waveform, AWGN the whole
// capture, then stream it into one receive stack.
func referenceMultiSender(cfg MultiSenderConfig) (*MultiSenderReport, error) {
	p := cfg.Params
	if p.BitPeriod == 0 {
		p = core.Params20()
	}
	if cfg.Senders < 1 || cfg.FramesPerSender < 1 {
		return nil, errNoSenders
	}
	if cfg.DataBytes == 0 {
		cfg.DataBytes = 4
	}
	if cfg.SNRdB == 0 {
		cfg.SNRdB = 20
	}
	if cfg.MeanGapAirtimes == 0 {
		cfg.MeanGapAirtimes = 4
	}
	if cfg.ChunkSamples <= 0 {
		cfg.ChunkSamples = 4096
	}
	phy, err := core.NewLink(p, 0)
	if err != nil {
		return nil, err
	}
	txs, err := refBuildSchedules(cfg, phy)
	if err != nil {
		return nil, err
	}
	refMarkCollisions(txs)
	capture := refSuperpose(cfg, p, txs)
	if err := refReceiveAll(cfg, p, capture, txs); err != nil {
		return nil, err
	}
	return refReport(cfg, p, capture, txs), nil
}

// refBuildSchedules draws every sender's frame placements and impaired
// waveforms up front — O(senders · frames · airtime) memory.
func refBuildSchedules(cfg MultiSenderConfig, phy *core.Link) ([]*refTransmission, error) {
	var txs []*refTransmission
	for s := 0; s < cfg.Senders; s++ {
		rng := splitmix.New(cfg.Seed, s)
		cfo := channel.DefaultFreqOffset
		if cfg.CFOJitterHz > 0 {
			cfo += (2*rng.Float64() - 1) * cfg.CFOJitterHz
		}
		sfo := 0.0
		if cfg.SFOppm > 0 {
			sfo = (2*rng.Float64() - 1) * cfg.SFOppm
		}
		snr := cfg.SNRdB
		if cfg.GainSpreadDB > 0 {
			snr += (2*rng.Float64() - 1) * cfg.GainSpreadDB
		}
		gain := complex(math.Sqrt(dsp.FromDB(snr)), 0)

		pos := 0
		for seq := 0; seq < cfg.FramesPerSender; seq++ {
			data := make([]byte, cfg.DataBytes)
			data[0] = byte(s)
			if cfg.DataBytes > 1 {
				data[1] = byte(seq)
			}
			payload, err := core.EncodeFrame(&core.Frame{Seq: byte(seq), Data: data})
			if err != nil {
				return nil, err
			}
			sig, err := phy.PayloadToSignal(payload)
			if err != nil {
				return nil, err
			}
			if sfo != 0 {
				sig = channel.ApplySFO(sig, sfo)
			}
			if cfo != 0 {
				channel.ApplyCFO(sig, cfo, phy.Params().SampleRate)
			}
			airtime := len(sig)
			gap := int(rng.ExpFloat64() * cfg.MeanGapAirtimes * float64(airtime))
			pos += gap
			txs = append(txs, &refTransmission{
				sender: s,
				seq:    seq,
				start:  pos,
				end:    pos + airtime,
				sig:    sig,
				gain:   gain,
			})
			pos += airtime
		}
	}
	sort.Slice(txs, func(i, j int) bool {
		if txs[i].start != txs[j].start {
			return txs[i].start < txs[j].start
		}
		if txs[i].sender != txs[j].sender {
			return txs[i].sender < txs[j].sender
		}
		return txs[i].seq < txs[j].seq
	})
	return txs, nil
}

// refMarkCollisions flags every transmission whose airtime interval
// overlaps another transmission's. txs must be sorted by start.
func refMarkCollisions(txs []*refTransmission) {
	maxEnd := -1
	lastIdx := -1
	for i, tx := range txs {
		if lastIdx >= 0 && tx.start < maxEnd {
			tx.collide = true
			txs[lastIdx].collide = true
		}
		if tx.end > maxEnd {
			maxEnd = tx.end
			lastIdx = i
		}
	}
}

// refSuperpose lays every impaired waveform onto one shared capture
// and adds unit receiver noise, with a decode-gate pad after the final
// transmission.
func refSuperpose(cfg MultiSenderConfig, p core.Params, txs []*refTransmission) []complex128 {
	total := 0
	for _, tx := range txs {
		if tx.end > total {
			total = tx.end
		}
	}
	pad := PadHorizon(p, 12) + p.Lag
	capture := make([]complex128, total+pad)
	for _, tx := range txs {
		for i, v := range tx.sig {
			capture[tx.start+i] += v * tx.gain
		}
	}
	rng := splitmix.New(cfg.Seed, splitmix.NoiseStream)
	channel.AddAWGN(capture, 1, rng)
	return capture
}

// refReceiveAll runs the capture through one streaming-preset Stack in
// chunks and matches decoded frames back to their transmissions.
func refReceiveAll(cfg MultiSenderConfig, p core.Params, capture []complex128, txs []*refTransmission) error {
	dec, err := core.NewDecoder(p, wifi.CanonicalCompensation)
	if err != nil {
		return err
	}
	st, err := NewStreaming(dec, 0, cfg.Metrics)
	if err != nil {
		return err
	}
	match := func(events []Event) {
		for _, ev := range events {
			if ev.Kind != core.EventFrame || len(ev.Frame.Data) == 0 {
				continue
			}
			sender := int(ev.Frame.Data[0])
			seq := int(ev.Frame.Seq)
			for _, tx := range txs {
				if tx.sender == sender && tx.seq == seq && !tx.decoded {
					tx.decoded = true
					break
				}
			}
		}
	}
	for off := 0; off < len(capture); off += cfg.ChunkSamples {
		end := off + cfg.ChunkSamples
		if end > len(capture) {
			end = len(capture)
		}
		if err := st.PushIQ(capture[off:end]); err != nil {
			return err
		}
		match(st.Drain())
	}
	if err := st.Flush(); err != nil {
		return err
	}
	match(st.Drain())
	return nil
}

// refReport folds the per-transmission outcomes into the scenario
// report.
func refReport(cfg MultiSenderConfig, p core.Params, capture []complex128, txs []*refTransmission) *MultiSenderReport {
	per := make([]SenderStats, cfg.Senders)
	for i := range per {
		per[i].Sender = i
	}
	delivered, collisions := 0, 0
	for _, tx := range txs {
		st := &per[tx.sender]
		st.Sent++
		if tx.decoded {
			st.Delivered++
			delivered++
		}
		if tx.collide {
			st.Collided++
			collisions++
			if tx.decoded {
				st.CollidedDelivered++
			}
		}
	}
	for i := range per {
		if per[i].Sent > 0 {
			per[i].DeliveryRate = float64(per[i].Delivered) / float64(per[i].Sent)
			per[i].CollisionRate = float64(per[i].Collided) / float64(per[i].Sent)
		}
	}
	duration := float64(len(capture)) / p.SampleRate
	total := cfg.Senders * cfg.FramesPerSender
	return &MultiSenderReport{
		Senders:         cfg.Senders,
		FramesPerSender: cfg.FramesPerSender,
		Seed:            cfg.Seed,
		DurationSec:     duration,
		Delivered:       delivered,
		Collisions:      collisions,
		GoodputBps:      float64(delivered*cfg.DataBytes*8) / duration,
		CollisionRate:   float64(collisions) / float64(total),
		PerSender:       per,
	}
}
