package link

import (
	"errors"
	"fmt"
	"time"

	"symbee/internal/core"
	"symbee/internal/dsp"
)

// Stack errors.
var (
	// ErrNoFrontEnd reports IQ pushed into a stack built without the
	// front-end stage (phase-fed presets).
	ErrNoFrontEnd = errors.New("link: stack has no IQ front-end (push phases, or set Spec.FrontEnd)")
	// ErrClosed reports input pushed into a closed stack.
	ErrClosed = errors.New("link: stack closed")
)

// Spec selects the stages of a Stack. The zero value is invalid: a
// Decoder is required (share one across stacks — pool shards do — or
// build one with core.NewDecoder).
type Spec struct {
	// Decoder supplies the parameter set, CFO compensation, capture
	// threshold and matched-filter template every decode stage shares.
	Decoder *core.Decoder
	// FrontEnd enables the IQ→phase stage (dsp.PhaseDiffStreamer).
	// Without it the stack is phase-fed: PushIQ reports ErrNoFrontEnd.
	FrontEnd bool
	// Batch selects unbounded frame-machine history: whole-capture
	// semantics, bit-identical to the historical batch decode entry.
	// The default is the bounded-retention streaming configuration.
	Batch bool
	// Stream tags emitted events with a stream identity (pool shards
	// demultiplex on it); see also SetStream.
	Stream uint64
	// Phase layers run between the front-end and the frame machine, in
	// order.
	Phase []PhaseLayer
	// Sinks receive every event, in order, before the built-in
	// collector.
	Sinks []EventLayer
	// Metrics receives stage instrumentation; nil leaves the stack
	// uninstrumented (the hot path then skips all accounting).
	Metrics *Metrics
}

// frontEnd is the built-in IQ→phase stage.
type frontEnd struct {
	phaser *dsp.PhaseDiffStreamer
	stats  LayerStats
}

func (f *frontEnd) Name() string      { return "frontend" }
func (f *frontEnd) Flush() error      { return nil } // the lag tail never completes, as in batch PhaseDiffStream
func (f *frontEnd) Close() error      { return nil }
func (f *frontEnd) Stats() LayerStats { return f.stats }

// frameStage is the built-in preamble-scan / frame-machine stage.
type frameStage struct {
	machine *core.FrameMachine
	stats   LayerStats
}

func (f *frameStage) Name() string { return "frame" }
func (f *frameStage) Flush() error {
	f.machine.Flush()
	return nil
}
func (f *frameStage) Close() error      { return nil }
func (f *frameStage) Stats() LayerStats { return f.stats }

// Stack is one assembled receive pipeline: optional IQ front-end,
// optional phase layers, the preamble-scan/frame-machine stage, and a
// chain of event sinks ending in the built-in Collector. It accepts IQ
// or phase chunks of any size and emits events exactly as a batch
// decode of the concatenated stream would. A Stack is owned by one
// goroutine (its pool worker or harness); it is not safe for concurrent
// use.
type Stack struct {
	dec       *core.Decoder
	front     *frontEnd // nil when phase-fed
	phase     []PhaseLayer
	frame     *frameStage
	sinks     []EventLayer // user sinks then the collector, in dispatch order
	collector *Collector
	metrics   *Metrics
	stream    uint64
	scratch   []float64
	closed    bool
}

// New assembles a stack from the spec.
func New(spec Spec) (*Stack, error) {
	if spec.Decoder == nil {
		return nil, fmt.Errorf("link: %w", errNilDecoder)
	}
	var machine *core.FrameMachine
	var err error
	if spec.Batch {
		machine, err = spec.Decoder.NewBatchMachine()
	} else {
		machine, err = spec.Decoder.NewFrameMachine()
	}
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	s := &Stack{
		dec:       spec.Decoder,
		phase:     spec.Phase,
		frame:     &frameStage{machine: machine, stats: LayerStats{Name: "frame"}},
		collector: NewCollector(),
		metrics:   spec.Metrics,
		stream:    spec.Stream,
	}
	if spec.FrontEnd {
		phaser, err := dsp.NewPhaseDiffStreamer(spec.Decoder.Params().Lag)
		if err != nil {
			return nil, fmt.Errorf("link: %w", err)
		}
		s.front = &frontEnd{phaser: phaser, stats: LayerStats{Name: "frontend"}}
	}
	s.sinks = append(s.sinks, spec.Sinks...)
	s.sinks = append(s.sinks, s.collector)
	return s, nil
}

var errNilDecoder = errors.New("spec needs a Decoder")

// Preset constructors — the three historical pipeline assemblies as
// configurations of one Stack.

// NewBatch returns the whole-capture preset: phase-fed, unbounded
// machine history. Push one capture, Flush, Drain — bit-identical to
// the historical Decoder.DecodeFrame batch entry at any chunking.
func NewBatch(d *core.Decoder, m *Metrics) (*Stack, error) {
	return New(Spec{Decoder: d, Batch: true, Metrics: m})
}

// NewStreaming returns the per-stream real-time preset the pool runs
// one of per shard session: IQ front-end plus bounded machine history.
func NewStreaming(d *core.Decoder, stream uint64, m *Metrics) (*Stack, error) {
	return New(Spec{Decoder: d, FrontEnd: true, Stream: stream, Metrics: m})
}

// NewReliable returns the ARQ-harness preset: phase-fed (the SimLink
// front-end runs per capture) with bounded history, so minutes of
// simulated airtime keep constant memory. Pair with PadHorizon to force
// the decode gate between captures.
func NewReliable(d *core.Decoder, m *Metrics) (*Stack, error) {
	return New(Spec{Decoder: d, Metrics: m})
}

// SetStream retags the events the stack emits with a new stream
// identity (pool shards reuse stacks across logical streams).
func (s *Stack) SetStream(id uint64) { s.stream = id }

// Stream returns the stack's stream identity tag.
func (s *Stack) Stream() uint64 { return s.stream }

// Decoder returns the shared decoder configuration.
func (s *Stack) Decoder() *core.Decoder { return s.dec }

// PushIQ consumes a chunk of IQ samples: the front-end turns them into
// phases, which run through the phase layers into the frame machine;
// resulting events fan out to the sinks. Pushing into a flushed stack
// reports core.ErrFlushed.
//
//symbee:hotpath
func (s *Stack) PushIQ(iq []complex128) error {
	if s.closed {
		return ErrClosed
	}
	if s.front == nil {
		return ErrNoFrontEnd
	}
	var start time.Time
	if s.metrics != nil {
		start = wallNow()
	}
	s.scratch = s.front.phaser.Process(iq, s.scratch[:0])
	s.front.stats.In += uint64(len(iq))
	s.front.stats.Out += uint64(len(s.scratch))
	var mid time.Time
	if s.metrics != nil {
		mid = wallNow()
		s.metrics.SamplesIn.Add(uint64(len(iq)))
		s.metrics.PhasesProduced.Add(uint64(len(s.scratch)))
		s.metrics.PhaseNanos.Observe(float64(mid.Sub(start)))
	}
	err := s.pushFrame(s.scratch)
	if s.metrics != nil {
		s.metrics.DecodeNanos.Observe(float64(wallNow().Sub(mid)))
	}
	if derr := s.dispatch(); err == nil {
		err = derr
	}
	return err
}

// PushPhases consumes a chunk of already-computed phase values (a
// phase-kind trace, or an external front-end). Pushing into a flushed
// stack reports core.ErrFlushed.
//
//symbee:hotpath
func (s *Stack) PushPhases(phases []float64) error {
	if s.closed {
		return ErrClosed
	}
	var start time.Time
	if s.metrics != nil {
		start = wallNow()
	}
	err := s.pushFrame(phases)
	if s.metrics != nil {
		s.metrics.PhasesIn.Add(uint64(len(phases)))
		s.metrics.DecodeNanos.Observe(float64(wallNow().Sub(start)))
	}
	if derr := s.dispatch(); err == nil {
		err = derr
	}
	return err
}

// pushFrame runs phases through the phase layers and into the frame
// machine.
//
//symbee:hotpath
func (s *Stack) pushFrame(phases []float64) error {
	for _, l := range s.phase {
		out, err := l.ProcessPhases(phases)
		if err != nil {
			return err
		}
		phases = out
	}
	s.frame.stats.In += uint64(len(phases))
	return s.frame.machine.PushChunk(phases)
}

// dispatch moves freshly produced machine events through the sink
// chain, tagging them with the stream identity and folding counts into
// the shared metrics exactly once per event.
//
//symbee:hotpath
func (s *Stack) dispatch() error {
	var firstErr error
	for _, ev := range s.frame.machine.Events() {
		s.frame.stats.Out++
		if s.metrics != nil {
			switch ev.Kind {
			case core.EventLock:
				s.metrics.Locks.Add(1)
			case core.EventFrame:
				s.metrics.FramesDecoded.Add(1)
			case core.EventDecodeError:
				s.metrics.FramesFailed.Add(1)
			}
		}
		e := Event{Stream: s.stream, StreamEvent: ev}
		for _, l := range s.sinks {
			if err := l.OnEvent(e); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Flush ends the stream: every layer forces its pending decision with
// the data at hand (the frame machine decodes a truncated tail exactly
// as the batch path does at the end of a capture), and the resulting
// events are dispatched.
func (s *Stack) Flush() error {
	var firstErr error
	if s.front != nil {
		if err := s.front.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, l := range s.phase {
		if err := l.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.frame.machine.Flush()
	if err := s.dispatch(); err != nil && firstErr == nil {
		firstErr = err
	}
	for _, l := range s.sinks {
		if err := l.Flush(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Reset returns the stack to a fresh hunting state at stream index 0,
// reusing every retained buffer: the reliable harness resets one batch
// stack per capture instead of building a machine per frame.
func (s *Stack) Reset() {
	if s.front != nil {
		s.front.phaser.Reset()
	}
	s.frame.machine.Reset()
	s.collector.pending = s.collector.pending[:0]
	s.closed = false
}

// Close flushes the stack and closes every layer; further pushes report
// ErrClosed (Reset reopens it).
func (s *Stack) Close() error {
	if s.closed {
		return nil
	}
	err := s.Flush()
	s.closed = true
	for _, l := range s.layers() {
		if cerr := l.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Drain returns the events produced since the last call, tagged with
// the stack's stream identity. The returned slice is the built-in
// collector's internal queue and is reused: it stays valid only until
// the next PushIQ/PushPhases/Flush on this stack.
func (s *Stack) Drain() []Event { return s.collector.Drain() }

// State returns the frame machine's stage (for diagnostics).
func (s *Stack) State() core.MachineState { return s.frame.machine.State() }

// Buffered returns the machine's retained history length in phases.
func (s *Stack) Buffered() int { return s.frame.machine.Buffered() }

// layers returns every stage bottom-up.
func (s *Stack) layers() []Layer {
	out := make([]Layer, 0, 2+len(s.phase)+len(s.sinks))
	if s.front != nil {
		out = append(out, s.front)
	}
	for _, l := range s.phase {
		out = append(out, l)
	}
	out = append(out, s.frame)
	for _, l := range s.sinks {
		out = append(out, l)
	}
	return out
}

// LayerStats reports the per-layer accounting, bottom-up.
func (s *Stack) LayerStats() []LayerStats {
	ls := s.layers()
	out := make([]LayerStats, len(ls))
	for i, l := range ls {
		out[i] = l.Stats()
	}
	return out
}

// PadHorizon returns the number of zero phases that force the frame
// machine's pending decode gate open after a capture: the largest span
// a decode attempt may read (core.DecodeGateSpan) plus slackPeriods bit
// periods of anchor slack. Zero phases fold far below any capture
// threshold, so the pad cannot cause a false lock.
func PadHorizon(p core.Params, slackPeriods int) int {
	return core.DecodeGateSpan(p) + slackPeriods*p.BitPeriod
}

// DecodeBatch runs one whole phase capture through the batch preset and
// returns the first terminal event — the Stack form of the historical
// Decoder.DecodeFrame entry (which remains in core as the reference
// implementation the golden-trace equivalence tests compare against).
func DecodeBatch(d *core.Decoder, phases []float64) (*core.Frame, error) {
	st, err := NewBatch(d, nil)
	if err != nil {
		return nil, err
	}
	if err := st.PushPhases(phases); err != nil {
		return nil, err
	}
	if err := st.Flush(); err != nil {
		return nil, err
	}
	for _, ev := range st.Drain() {
		switch ev.Kind {
		case core.EventFrame:
			return ev.Frame, nil
		case core.EventDecodeError:
			return nil, ev.Err
		}
	}
	return nil, core.ErrNoPreamble
}
