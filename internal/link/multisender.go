package link

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/dsp"
	"symbee/internal/wifi"
)

// MultiSenderConfig parameterizes a shared-medium scenario: N
// independent ZigBee senders transmitting SymBee frames on one channel,
// superposed into a single WiFi receiver capture.
type MultiSenderConfig struct {
	// Params is the receiver parameter set; the zero value means
	// Params20.
	Params core.Params
	// Senders is the number of independent ZigBee transmitters (≥1).
	Senders int
	// FramesPerSender is how many frames each sender transmits (≥1).
	FramesPerSender int
	// Seed drives every random draw (gaps, impairments, noise). Equal
	// seeds reproduce the scenario exactly.
	Seed int64
	// SNRdB is the per-sender signal-to-noise ratio before the gain
	// spread is applied. The zero value means 20 dB.
	SNRdB float64
	// MeanGapAirtimes is each sender's mean inter-frame idle gap, as a
	// multiple of one frame airtime (exponential holdoff — a Poisson-ish
	// unslotted ALOHA offered load of 1/(1+gap) per sender). The zero
	// value means 4.
	MeanGapAirtimes float64
	// CFOJitterHz spreads each sender's carrier offset uniformly in
	// ±CFOJitterHz around channel.DefaultFreqOffset. Zero keeps all
	// senders at the nominal offset.
	CFOJitterHz float64
	// SFOppm spreads each sender's sampling clock uniformly in ±SFOppm
	// parts per million. Zero disables SFO.
	SFOppm float64
	// GainSpreadDB spreads each sender's receive power uniformly in
	// ±GainSpreadDB around SNRdB (near-far effect). Zero makes all
	// senders equally strong.
	GainSpreadDB float64
	// DataBytes is the frame payload size (1..core.MaxDataBytes); byte 0
	// carries the sender identity. The zero value means 4.
	DataBytes int
	// ChunkSamples is the IQ chunk size pushed into the receive stack
	// (the zero value means 4096), exercising the streaming path.
	ChunkSamples int
	// Metrics optionally shares a registry with the receive stack.
	Metrics *Metrics
}

// SenderStats is one sender's delivery accounting.
type SenderStats struct {
	// Sender is the sender's identity (0-based; also frame Data[0]).
	Sender int `json:"sender"`
	// Sent is the number of frames transmitted.
	Sent int `json:"sent"`
	// Delivered is the number of frames the receiver decoded intact.
	Delivered int `json:"delivered"`
	// Collided is the number of transmissions whose airtime overlapped
	// another sender's transmission.
	Collided int `json:"collided"`
	// CollidedDelivered counts collided transmissions that decoded
	// anyway (capture effect under the gain spread).
	CollidedDelivered int `json:"collided_delivered"`
	// DeliveryRate is Delivered/Sent.
	DeliveryRate float64 `json:"delivery_rate"`
	// CollisionRate is Collided/Sent.
	CollisionRate float64 `json:"collision_rate"`
}

// MultiSenderReport is the outcome of one shared-medium scenario run.
type MultiSenderReport struct {
	// Senders echoes the scenario width.
	Senders int `json:"senders"`
	// FramesPerSender echoes the per-sender load.
	FramesPerSender int `json:"frames_per_sender"`
	// Seed echoes the scenario seed.
	Seed int64 `json:"seed"`
	// DurationSec is the simulated capture length in seconds.
	DurationSec float64 `json:"duration_sec"`
	// Delivered is the total number of frames decoded intact.
	Delivered int `json:"delivered"`
	// Collisions is the total number of collided transmissions.
	Collisions int `json:"collisions"`
	// GoodputBps is aggregate delivered application data in bits per
	// simulated second.
	GoodputBps float64 `json:"goodput_bps"`
	// CollisionRate is Collisions over total transmissions.
	CollisionRate float64 `json:"collision_rate"`
	// PerSender is each sender's accounting, ordered by sender id.
	PerSender []SenderStats `json:"per_sender"`
}

// Multi-sender scenario errors.
var (
	errNoSenders = errors.New("link: multisender needs at least one sender and one frame")
	errDataBytes = errors.New("link: multisender DataBytes out of range")
)

// transmission is one frame's placement on the shared timeline.
type transmission struct {
	sender  int
	seq     int
	start   int // sample index of the first signal sample
	end     int // one past the last signal sample
	sig     []complex128
	gain    complex128
	collide bool
	decoded bool
}

// RunMultiSender simulates the shared-medium scenario: every sender
// draws an independent schedule of frames with exponential idle gaps and
// per-sender CFO/SFO/gain impairments; all transmissions are superposed
// into one noisy capture; one streaming-preset Stack receives it; each
// decoded frame is matched back to its sender through the identity byte.
// The run is deterministic in Seed.
func RunMultiSender(cfg MultiSenderConfig) (*MultiSenderReport, error) {
	p := cfg.Params
	if p.BitPeriod == 0 {
		p = core.Params20()
	}
	if cfg.Senders < 1 || cfg.FramesPerSender < 1 {
		return nil, errNoSenders
	}
	if cfg.DataBytes == 0 {
		cfg.DataBytes = 4
	}
	if cfg.DataBytes < 1 || cfg.DataBytes > core.MaxDataBytes {
		return nil, errDataBytes
	}
	if cfg.SNRdB == 0 {
		cfg.SNRdB = 20
	}
	if cfg.MeanGapAirtimes == 0 {
		cfg.MeanGapAirtimes = 4
	}
	if cfg.ChunkSamples <= 0 {
		cfg.ChunkSamples = 4096
	}
	// The modulator is baseband-aligned; senders carry their own CFO, so
	// the receiver compensates the canonical offset exactly as it would
	// on a real channel pair.
	phy, err := core.NewLink(p, 0)
	if err != nil {
		return nil, err
	}

	txs, err := buildSchedules(cfg, phy)
	if err != nil {
		return nil, err
	}
	markCollisions(txs)
	capture := superpose(cfg, p, txs)

	if err := receiveAll(cfg, p, capture, txs); err != nil {
		return nil, err
	}
	return report(cfg, p, capture, txs), nil
}

// senderSeed derives one sender's private RNG stream from the scenario
// seed (splitmix-style so adjacent seeds do not correlate).
func senderSeed(seed int64, sender int) int64 {
	z := uint64(seed) + uint64(sender+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// buildSchedules draws every sender's frame placements and impaired
// waveforms.
func buildSchedules(cfg MultiSenderConfig, phy *core.Link) ([]*transmission, error) {
	var txs []*transmission
	for s := 0; s < cfg.Senders; s++ {
		rng := rand.New(rand.NewSource(senderSeed(cfg.Seed, s)))
		cfo := channel.DefaultFreqOffset
		if cfg.CFOJitterHz > 0 {
			cfo += (2*rng.Float64() - 1) * cfg.CFOJitterHz
		}
		sfo := 0.0
		if cfg.SFOppm > 0 {
			sfo = (2*rng.Float64() - 1) * cfg.SFOppm
		}
		snr := cfg.SNRdB
		if cfg.GainSpreadDB > 0 {
			snr += (2*rng.Float64() - 1) * cfg.GainSpreadDB
		}
		gain := complex(ampFromSNRdB(snr), 0)

		pos := 0
		for seq := 0; seq < cfg.FramesPerSender; seq++ {
			data := make([]byte, cfg.DataBytes)
			data[0] = byte(s)
			if cfg.DataBytes > 1 {
				data[1] = byte(seq)
			}
			payload, err := core.EncodeFrame(&core.Frame{Seq: byte(seq), Data: data})
			if err != nil {
				return nil, err
			}
			sig, err := phy.PayloadToSignal(payload)
			if err != nil {
				return nil, err
			}
			if sfo != 0 {
				sig = channel.ApplySFO(sig, sfo)
			}
			if cfo != 0 {
				channel.ApplyCFO(sig, cfo, phy.Params().SampleRate)
			}
			airtime := len(sig)
			// Exponential idle gap before this frame, in airtime
			// multiples; the first frame also starts after a random gap
			// so sender 0 does not always open the capture.
			gap := int(rng.ExpFloat64() * cfg.MeanGapAirtimes * float64(airtime))
			pos += gap
			txs = append(txs, &transmission{
				sender: s,
				seq:    seq,
				start:  pos,
				end:    pos + airtime,
				sig:    sig,
				gain:   gain,
			})
			pos += airtime
		}
	}
	sort.Slice(txs, func(i, j int) bool {
		if txs[i].start != txs[j].start {
			return txs[i].start < txs[j].start
		}
		if txs[i].sender != txs[j].sender {
			return txs[i].sender < txs[j].sender
		}
		return txs[i].seq < txs[j].seq
	})
	return txs, nil
}

// ampFromSNRdB converts a target SNR against unit noise to a linear
// amplitude scale.
func ampFromSNRdB(snrDB float64) float64 {
	return math.Sqrt(dsp.FromDB(snrDB))
}

// markCollisions flags every transmission whose airtime interval
// overlaps another transmission's. txs must be sorted by start.
func markCollisions(txs []*transmission) {
	maxEnd := -1
	lastIdx := -1
	for i, tx := range txs {
		if lastIdx >= 0 && tx.start < maxEnd {
			tx.collide = true
			txs[lastIdx].collide = true
		}
		if tx.end > maxEnd {
			maxEnd = tx.end
			lastIdx = i
		}
	}
}

// superpose lays every impaired waveform onto one shared capture and
// adds unit receiver noise. The capture gets a decode-gate pad after the
// final transmission so the last frame's deferred decode fires.
func superpose(cfg MultiSenderConfig, p core.Params, txs []*transmission) []complex128 {
	total := 0
	for _, tx := range txs {
		if tx.end > total {
			total = tx.end
		}
	}
	// The phase stream trails the samples by Lag, so the decode-gate pad
	// needs that much extra on top of the phase horizon.
	pad := PadHorizon(p, 12) + p.Lag
	capture := make([]complex128, total+pad)
	for _, tx := range txs {
		for i, v := range tx.sig {
			capture[tx.start+i] += v * tx.gain
		}
	}
	rng := rand.New(rand.NewSource(senderSeed(cfg.Seed, -1)))
	channel.AddAWGN(capture, 1, rng)
	return capture
}

// receiveAll runs the capture through one streaming-preset Stack in
// chunks and matches decoded frames back to their transmissions.
func receiveAll(cfg MultiSenderConfig, p core.Params, capture []complex128, txs []*transmission) error {
	dec, err := core.NewDecoder(p, wifi.CanonicalCompensation)
	if err != nil {
		return err
	}
	st, err := NewStreaming(dec, 0, cfg.Metrics)
	if err != nil {
		return err
	}
	match := func(events []Event) {
		for _, ev := range events {
			if ev.Kind != core.EventFrame || len(ev.Frame.Data) == 0 {
				continue
			}
			sender := int(ev.Frame.Data[0])
			seq := int(ev.Frame.Seq)
			for _, tx := range txs {
				if tx.sender == sender && tx.seq == seq && !tx.decoded {
					tx.decoded = true
					break
				}
			}
		}
	}
	for off := 0; off < len(capture); off += cfg.ChunkSamples {
		end := off + cfg.ChunkSamples
		if end > len(capture) {
			end = len(capture)
		}
		if err := st.PushIQ(capture[off:end]); err != nil {
			return err
		}
		match(st.Drain())
	}
	if err := st.Flush(); err != nil {
		return err
	}
	match(st.Drain())
	return nil
}

// report folds the per-transmission outcomes into the scenario report.
func report(cfg MultiSenderConfig, p core.Params, capture []complex128, txs []*transmission) *MultiSenderReport {
	per := make([]SenderStats, cfg.Senders)
	for i := range per {
		per[i].Sender = i
	}
	delivered, collisions := 0, 0
	for _, tx := range txs {
		st := &per[tx.sender]
		st.Sent++
		if tx.decoded {
			st.Delivered++
			delivered++
		}
		if tx.collide {
			st.Collided++
			collisions++
			if tx.decoded {
				st.CollidedDelivered++
			}
		}
	}
	for i := range per {
		if per[i].Sent > 0 {
			per[i].DeliveryRate = float64(per[i].Delivered) / float64(per[i].Sent)
			per[i].CollisionRate = float64(per[i].Collided) / float64(per[i].Sent)
		}
	}
	duration := float64(len(capture)) / p.SampleRate
	total := cfg.Senders * cfg.FramesPerSender
	rep := &MultiSenderReport{
		Senders:         cfg.Senders,
		FramesPerSender: cfg.FramesPerSender,
		Seed:            cfg.Seed,
		DurationSec:     duration,
		Delivered:       delivered,
		Collisions:      collisions,
		GoodputBps:      float64(delivered*cfg.DataBytes*8) / duration,
		CollisionRate:   float64(collisions) / float64(total),
		PerSender:       per,
	}
	return rep
}
