package link

import (
	"errors"
	"fmt"

	"symbee/internal/core"
	"symbee/internal/medium"
	"symbee/internal/wifi"
)

// MultiSenderConfig parameterizes the legacy shared-medium scenario
// entry point: N independent ZigBee senders transmitting SymBee frames
// on one channel into a single WiFi receiver.
//
// Legacy quirk, kept for compatibility: SNRdB and MeanGapAirtimes use
// their zero values as sentinels (0 means "default": 20 dB and 4
// airtimes respectively), so a genuine 0 dB or zero-gap scenario is
// unrepresentable through this type. New code should build a
// medium.Config (which takes every field literally, starting from
// medium.Defaults()) and call RunMedium instead.
//
//symbee:ignore confvalid -- frozen legacy surface: the zero-sentinel semantics documented above are the API; the sentinel-free replacement is medium.Config (Defaults/Validate), which new code must use
type MultiSenderConfig struct {
	// Params is the receiver parameter set; the zero value means
	// Params20.
	Params core.Params
	// Senders is the number of independent ZigBee transmitters (≥1).
	Senders int
	// FramesPerSender is how many frames each sender transmits (≥1).
	FramesPerSender int
	// Seed drives every random draw (gaps, impairments, noise). Equal
	// seeds reproduce the scenario exactly.
	Seed int64
	// SNRdB is the per-sender signal-to-noise ratio before the gain
	// spread is applied. The zero value means 20 dB (see the legacy
	// quirk above).
	SNRdB float64
	// MeanGapAirtimes is each sender's mean inter-frame idle gap, as a
	// multiple of one frame airtime (exponential holdoff — a Poisson-ish
	// unslotted ALOHA offered load of 1/(1+gap) per sender). The zero
	// value means 4 (see the legacy quirk above).
	MeanGapAirtimes float64
	// CFOJitterHz spreads each sender's carrier offset uniformly in
	// ±CFOJitterHz around channel.DefaultFreqOffset. Zero keeps all
	// senders at the nominal offset.
	CFOJitterHz float64
	// SFOppm spreads each sender's sampling clock uniformly in ±SFOppm
	// parts per million. Zero disables SFO.
	SFOppm float64
	// GainSpreadDB spreads each sender's receive power uniformly in
	// ±GainSpreadDB around SNRdB (near-far effect). Zero makes all
	// senders equally strong.
	GainSpreadDB float64
	// DataBytes is the frame payload size (1..core.MaxDataBytes); byte 0
	// carries the sender identity. The zero value means 4.
	DataBytes int
	// ChunkSamples is the IQ chunk size pushed into the receive stack
	// (the zero value means 4096), exercising the streaming path.
	ChunkSamples int
	// Metrics optionally shares a registry with the receive stack.
	Metrics *Metrics
}

// SenderStats is one sender's delivery accounting.
type SenderStats struct {
	// Sender is the sender's identity (0-based; also frame Data[0]).
	Sender int `json:"sender"`
	// Sent is the number of frames transmitted.
	Sent int `json:"sent"`
	// Delivered is the number of frames the receiver decoded intact.
	Delivered int `json:"delivered"`
	// Collided is the number of transmissions whose airtime overlapped
	// another sender's transmission.
	Collided int `json:"collided"`
	// CollidedDelivered counts collided transmissions that decoded
	// anyway (capture effect under the gain spread).
	CollidedDelivered int `json:"collided_delivered"`
	// DeliveryRate is Delivered/Sent.
	DeliveryRate float64 `json:"delivery_rate"`
	// CollisionRate is Collided/Sent.
	CollisionRate float64 `json:"collision_rate"`
}

// MultiSenderReport is the outcome of one shared-medium scenario run.
type MultiSenderReport struct {
	// Senders echoes the scenario width.
	Senders int `json:"senders"`
	// FramesPerSender echoes the per-sender load.
	FramesPerSender int `json:"frames_per_sender"`
	// Seed echoes the scenario seed.
	Seed int64 `json:"seed"`
	// DurationSec is the simulated capture length in seconds.
	DurationSec float64 `json:"duration_sec"`
	// Delivered is the total number of frames decoded intact.
	Delivered int `json:"delivered"`
	// Collisions is the total number of collided transmissions.
	Collisions int `json:"collisions"`
	// GoodputBps is aggregate delivered application data in bits per
	// simulated second.
	GoodputBps float64 `json:"goodput_bps"`
	// CollisionRate is Collisions over total transmissions.
	CollisionRate float64 `json:"collision_rate"`
	// PerSender is each sender's accounting, ordered by sender id.
	PerSender []SenderStats `json:"per_sender"`
}

// errNoSenders keeps the legacy validation error for the wrapper's
// pre-checks (the medium package validates everything else).
var errNoSenders = errors.New("link: multisender needs at least one sender and one frame")

// RunMultiSender simulates the shared-medium scenario through the
// event-driven medium engine: every sender draws an independent
// schedule of frames with exponential idle gaps and per-sender
// CFO/SFO/gain impairments; the superposed noisy capture is synthesized
// lazily window-by-window (internal/medium) and fed into one
// streaming-preset Stack; each decoded frame is matched back to its
// sender through the identity byte. The run is deterministic in Seed
// and reproduces the historical dense-superposition implementation
// bit-for-bit.
func RunMultiSender(cfg MultiSenderConfig) (*MultiSenderReport, error) {
	// The legacy config has no Validate by design (see the type's
	// suppression); the sentinel translation below is its whole contract.
	if cfg.Senders < 1 || cfg.FramesPerSender < 1 { //symbee:ignore confvalid -- legacy sentinel config validates inline; medium.Config owns the Validate-first path
		return nil, errNoSenders
	}
	mc := medium.Defaults()
	if cfg.Params.BitPeriod != 0 {
		mc.Params = cfg.Params
	}
	mc.Senders = cfg.Senders
	mc.FramesPerSender = cfg.FramesPerSender
	mc.Seed = cfg.Seed
	// Legacy sentinel mapping: the zero values of SNRdB,
	// MeanGapAirtimes, DataBytes and ChunkSamples mean "default", so 0
	// dB and zero-gap scenarios need medium.Config directly.
	if cfg.SNRdB != 0 {
		mc.SNRdB = cfg.SNRdB
	}
	if cfg.MeanGapAirtimes != 0 {
		mc.MeanGapAirtimes = cfg.MeanGapAirtimes
	}
	if cfg.DataBytes != 0 {
		mc.DataBytes = cfg.DataBytes
	}
	if cfg.ChunkSamples > 0 {
		mc.ChunkSamples = cfg.ChunkSamples
	}
	mc.CFOJitterHz = cfg.CFOJitterHz
	mc.SFOppm = cfg.SFOppm
	mc.GainSpreadDB = cfg.GainSpreadDB

	rep, err := RunMedium(mc, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	per := make([]SenderStats, len(rep.PerSender))
	for i, st := range rep.PerSender {
		per[i] = SenderStats(st)
	}
	return &MultiSenderReport{
		Senders:         rep.Senders,
		FramesPerSender: rep.FramesPerSender,
		Seed:            rep.Seed,
		DurationSec:     rep.DurationSec,
		Delivered:       rep.Delivered,
		Collisions:      rep.Collisions,
		GoodputBps:      rep.GoodputBps,
		CollisionRate:   rep.CollisionRate,
		PerSender:       per,
	}, nil
}

// RunMedium drives one event-driven shared-medium scenario end-to-end:
// a medium.Engine synthesizes the capture chunk-by-chunk into a
// streaming-preset Stack, and decoded frames are credited back to
// their transmissions through the payload identity bytes. This is the
// sentinel-free entry point density sweeps use; RunMultiSender wraps it
// for the legacy config type.
func RunMedium(cfg medium.Config, m *Metrics) (*medium.Report, error) {
	eng, err := medium.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	dec, err := core.NewDecoder(cfg.Params, wifi.CanonicalCompensation)
	if err != nil {
		return nil, fmt.Errorf("link: %w", err)
	}
	st, err := NewStreaming(dec, 0, m)
	if err != nil {
		return nil, err
	}
	sink := &mediumSink{st: st, eng: eng, wideID: cfg.DataBytes >= 3}
	return eng.Run(sink)
}

// mediumSink adapts a streaming Stack to the engine's Sink contract:
// every synthesized chunk is pushed as IQ, and each decoded frame is
// matched back to its transmission by the identity bytes (Data[0] low,
// Data[2] high when the payload is wide enough).
type mediumSink struct {
	st     *Stack
	eng    *medium.Engine
	wideID bool
}

func (s *mediumSink) PushChunk(iq []complex128) error {
	if err := s.st.PushIQ(iq); err != nil {
		return err
	}
	s.match()
	return nil
}

func (s *mediumSink) Flush() error {
	if err := s.st.Flush(); err != nil {
		return err
	}
	s.match()
	return nil
}

func (s *mediumSink) match() {
	for _, ev := range s.st.Drain() {
		if ev.Kind != core.EventFrame || len(ev.Frame.Data) == 0 {
			continue
		}
		sender := int(ev.Frame.Data[0])
		if s.wideID && len(ev.Frame.Data) > 2 {
			sender |= int(ev.Frame.Data[2]) << 8
		}
		s.eng.MarkDecoded(sender, int(ev.Frame.Seq))
	}
}
