package link

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"symbee/internal/splitmix"
)

// The downlink golden harness pins the layered reverse channel the same
// way golden_test.go pins the decode path: committed fixtures of the
// exact ack event sequences — under coalescing, AckRepeat duplicates
// and collision draws — that a scripted schedule must produce, byte
// identical at every polling cadence. Regenerate with -update (the
// flag is shared with the decode fixtures).

// downGoldenFile is the committed fixture in testdata.
const downGoldenFile = "downlink_golden.json"

// downGoldenSteps are the Arrivals polling cadences every scenario must
// reproduce byte-identically (0 polls once at the horizon).
var downGoldenSteps = []time.Duration{time.Millisecond, 7 * time.Millisecond, 0}

// downOp is one step of a scenario schedule.
type downOp struct {
	// at is the op instant (for collide, the forward frame's start).
	at time.Duration
	// collide marks a forward-frame transmission over [at, at+span];
	// otherwise the op is an ack generation.
	collide bool
	span    time.Duration
	seq     byte
	drop    bool
}

// downScenario is one seeded scenario recipe.
type downScenario struct {
	name            string
	wall, air, base time.Duration
	repeat          int
	ideal           bool
	lossSeed        int64 // 0 = lossless; else splitmix reverse-loss stream
	collideSeed     int64 // 0 = no collisions; else splitmix collision stream
	ops             []downOp
	horizon         time.Duration
}

// downScenarios are the committed recipes: serialization + coalescing,
// AckRepeat duplicates under reverse loss, collision draws against
// forward frames, and the ideal no-op stage.
func downScenarios() []downScenario {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	return []downScenario{
		{
			name: "coalesce", wall: ms(10), air: ms(2), base: ms(1), repeat: 1,
			ops: []downOp{
				{at: 0, seq: 1},
				{at: ms(2), seq: 2}, // queued behind seq 1
				{at: ms(4), seq: 3}, // replaces seq 2 before it starts
				{at: ms(30), seq: 4},
				{at: ms(32), seq: 5, drop: true}, // scripted full loss
			},
			horizon: ms(80),
		},
		{
			name: "repeat-loss", wall: ms(8), air: ms(3), base: ms(2), repeat: 3,
			lossSeed: 11,
			ops: []downOp{
				{at: 0, seq: 1},
				{at: ms(40), seq: 2},
				{at: ms(41), seq: 3}, // coalesces seq 2
			},
			horizon: ms(150),
		},
		{
			name: "collide", wall: ms(12), air: ms(6), base: ms(1), repeat: 2,
			collideSeed: 21,
			ops: []downOp{
				{at: 0, seq: 1},
				{at: ms(5), collide: true, span: ms(10)},
				{at: ms(30), seq: 2},
				{at: ms(31), collide: true, span: ms(8)},
				{at: ms(60), collide: true, span: ms(20)},
			},
			horizon: ms(120),
		},
		{
			name: "ideal", repeat: 2, ideal: true,
			ops: []downOp{
				{at: ms(1), seq: 1},
				{at: ms(2), seq: 2},
				{at: ms(3), seq: 3},
			},
			horizon: ms(10),
		},
	}
}

// downGoldenEvent is the serialized form of one ack arrival.
type downGoldenEvent struct {
	Seq   byte  `json:"seq"`
	GenNS int64 `json:"gen_ns"`
	AtNS  int64 `json:"at_ns"`
}

// downGoldenLedger is the serialized cross-stage ledger.
type downGoldenLedger struct {
	AcksSent          int   `json:"acks_sent"`
	AcksCoalesced     int   `json:"acks_coalesced"`
	AcksDropped       int   `json:"acks_dropped"`
	AckCollisions     int   `json:"ack_collisions"`
	ForwardCollisions int   `json:"forward_collisions"`
	AirtimeNS         int64 `json:"airtime_ns"`
}

// downGoldenResult is one committed scenario outcome.
type downGoldenResult struct {
	Name   string            `json:"name"`
	Events []downGoldenEvent `json:"events"`
	Ledger downGoldenLedger  `json:"ledger"`
}

// runDownScenario replays sc, polling Arrivals every step (0 = once at
// the horizon), and returns the flattened outcome.
func runDownScenario(t *testing.T, sc downScenario, step time.Duration) downGoldenResult {
	t.Helper()
	spec := DownSpec{Repeat: sc.repeat}
	if !sc.ideal {
		spec.Timing = &DownTiming{Wall: sc.wall, Air: sc.air, Base: sc.base}
	}
	if sc.lossSeed != 0 {
		r := splitmix.New(sc.lossSeed, splitmix.ReverseStream)
		spec.DropCopy = func() bool { return r.Float64() < 0.3 }
	}
	if sc.collideSeed != 0 {
		spec.Collide = splitmix.New(sc.collideSeed, splitmix.CollisionStream)
	}
	s, err := NewDownStack(spec)
	if err != nil {
		t.Fatal(err)
	}
	res := downGoldenResult{Name: sc.name, Events: []downGoldenEvent{}}
	record := func(evs []TimedEvent) {
		for _, ev := range evs {
			res.Events = append(res.Events, downGoldenEvent{
				Seq: ev.Seq, GenNS: int64(ev.Gen), AtNS: int64(ev.At),
			})
		}
	}
	now := time.Duration(0)
	poll := func(until time.Duration) {
		if step > 0 {
			for now+step <= until {
				now += step
				record(s.Arrivals(now))
			}
		}
		now = until
	}
	for _, op := range sc.ops {
		poll(op.at)
		if op.collide {
			end := op.at + op.span
			s.Advance(end)
			s.CollideForward(op.at, end)
			poll(end)
			continue
		}
		s.Generate(op.at, op.seq, op.drop)
	}
	poll(sc.horizon)
	record(s.Arrivals(sc.horizon))
	led := s.Ledger()
	res.Ledger = downGoldenLedger{
		AcksSent:          led.AcksSent,
		AcksCoalesced:     led.AcksCoalesced,
		AcksDropped:       led.AcksDropped,
		AckCollisions:     led.AckCollisions,
		ForwardCollisions: led.ForwardCollisions,
		AirtimeNS:         int64(led.Airtime),
	}
	return res
}

// TestDownlinkGoldenTraces pins every scenario's ack event sequence and
// ledger against the committed fixture, at every polling cadence.
func TestDownlinkGoldenTraces(t *testing.T) {
	var results []downGoldenResult
	for _, sc := range downScenarios() {
		base := runDownScenario(t, sc, downGoldenSteps[0])
		for _, step := range downGoldenSteps[1:] {
			got := runDownScenario(t, sc, step)
			if !downResultsEqual(base, got) {
				t.Errorf("%s: cadence %v diverged from %v:\n%+v\nvs\n%+v",
					sc.name, step, downGoldenSteps[0], got, base)
			}
		}
		results = append(results, base)
	}
	path := filepath.Join(goldenDir, downGoldenFile)
	blob, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	if *update {
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("downlink golden fixture missing (regenerate with -update): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("downlink traces diverged from committed fixture %s:\n%s", path, blob)
	}
}

// downResultsEqual compares two scenario outcomes exactly.
func downResultsEqual(a, b downGoldenResult) bool {
	if a.Name != b.Name || a.Ledger != b.Ledger || len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			return false
		}
	}
	return true
}
