package link

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"symbee/internal/medium"
)

// TestMediumLinkEquivalence pins the event-driven engine against the
// dense reference: for every room-scale width the lazily-synthesized
// capture must decode into an identical report — same schedule, same
// collisions, same per-sender delivery, bit-for-bit (the engine
// reproduces the reference's RNG draw order and per-sample addition
// order, so this is exact equality, not statistical agreement).
func TestMediumLinkEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		cfg := MultiSenderConfig{
			Senders:         n,
			FramesPerSender: 4,
			Seed:            3,
			SNRdB:           20,
			MeanGapAirtimes: 1.5,
			CFOJitterHz:     20e3,
			SFOppm:          10,
			GainSpreadDB:    3,
		}
		want, err := referenceMultiSender(cfg)
		if err != nil {
			t.Fatalf("N=%d reference: %v", n, err)
		}
		got, err := RunMultiSender(cfg)
		if err != nil {
			t.Fatalf("N=%d engine: %v", n, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("N=%d: engine report differs from dense reference:\nengine:    %+v\nreference: %+v",
				n, got, want)
		}
	}
}

// TestMediumLinkEquivalenceOddChunk re-pins equivalence at an awkward
// chunk size (the render window and receive chunk are the same knob in
// the engine; neither may shift the outcome).
func TestMediumLinkEquivalenceOddChunk(t *testing.T) {
	cfg := MultiSenderConfig{
		Senders:         4,
		FramesPerSender: 3,
		Seed:            17,
		MeanGapAirtimes: 1,
		CFOJitterHz:     15e3,
		GainSpreadDB:    2,
		ChunkSamples:    1009, // prime, never aligned with airtime
	}
	want, err := referenceMultiSender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunMultiSender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("odd chunk: engine report differs from dense reference:\nengine:    %+v\nreference: %+v",
			got, want)
	}
}

// TestMediumDensityDeterminism pins the density-sweep seed contract at
// a population the dense reference cannot reach: two N=256 runs with
// equal seeds must serialize to byte-identical JSON (the property the
// committed BENCH_density.json rows rely on).
func TestMediumDensityDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("N=256 sweep row in -short mode")
	}
	row := func() []byte {
		cfg := medium.Defaults()
		cfg.Senders = 256
		cfg.FramesPerSender = 1
		cfg.Seed = 1
		cfg.MeanGapAirtimes = 2
		cfg.CFOJitterHz, cfg.SFOppm, cfg.GainSpreadDB = 20e3, 10, 3
		rep, err := RunMedium(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := row(), row()
	if !bytes.Equal(a, b) {
		t.Errorf("equal seeds produced different density rows:\n%s\n%s", a, b)
	}
}

// TestMediumWideIdentity checks sender identities above 255 round-trip
// through the payload high byte (Data[2]) and land on the right
// per-sender rows — populations beyond a byte are the engine's reason
// to exist.
func TestMediumWideIdentity(t *testing.T) {
	cfg := medium.Defaults()
	cfg.Senders = 300
	cfg.FramesPerSender = 1
	cfg.Seed = 5
	cfg.MeanGapAirtimes = 40 // sparse: most frames should survive
	rep, err := RunMedium(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered == 0 {
		t.Fatal("nothing delivered in the sparse wide-identity scenario")
	}
	// Sender 256 aliases sender 0 in the low byte; only the high byte
	// separates them. If any high-identity sender delivered, the wide
	// matching worked.
	wide := 0
	for _, st := range rep.PerSender[256:] {
		wide += st.Delivered
	}
	if wide == 0 {
		t.Error("no sender above 255 delivered; wide identity matching broken")
	}
}
