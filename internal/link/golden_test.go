package link

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/trace"
	"symbee/internal/wifi"
)

// -update regenerates the committed golden fixtures: the traces are
// rebuilt from their seeded recipes and the expected frames re-derived
// through the REFERENCE batch entrypoint (core.Decoder.DecodeFrame).
// Normal runs only read the committed files, so the test pins the link
// stack against history, not against itself.
var update = flag.Bool("update", false, "regenerate golden trace fixtures")

// goldenChunks are the ingest chunk sizes every fixture must decode
// bit-identically at (0 is replaced by the whole capture).
var goldenChunks = []int{1, 7, 64, 1024, 0}

// goldenFrame is the byte-exact expected decode.
type goldenFrame struct {
	Seq   byte   `json:"seq"`
	Flags byte   `json:"flags"`
	Data  string `json:"data_hex"`
}

// goldenCase is one committed fixture in golden.json.
type goldenCase struct {
	// Trace is the .sbtr fixture file name in testdata.
	Trace string `json:"trace"`
	// Description says what channel the capture went through.
	Description string `json:"description"`
	// Compensation is the receiver CFO compensation for this capture.
	Compensation float64 `json:"compensation"`
	// Frame is the expected decode, derived by the reference batch
	// entrypoint when the fixture was generated.
	Frame goldenFrame `json:"frame"`
}

const goldenDir = "testdata"

// generateGolden rebuilds every fixture from its seeded recipe.
func generateGolden(t *testing.T) []goldenCase {
	t.Helper()
	p := core.Params20()
	phy, err := core.NewLink(p, 0)
	if err != nil {
		t.Fatal(err)
	}

	var cases []goldenCase
	write := func(name, desc string, comp float64, tr *trace.Trace) {
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(filepath.Join(goldenDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.Write(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		phases := tracePhases(t, tr)
		dec, err := core.NewDecoder(p, comp)
		if err != nil {
			t.Fatal(err)
		}
		// The REFERENCE decode: the historical batch entrypoint.
		frame, err := dec.DecodeFrame(phases)
		if err != nil {
			t.Fatalf("%s: reference decode failed: %v", name, err)
		}
		cases = append(cases, goldenCase{
			Trace:        name,
			Description:  desc,
			Compensation: comp,
			Frame: goldenFrame{
				Seq:   frame.Seq,
				Flags: frame.Flags,
				Data:  hex.EncodeToString(frame.Data),
			},
		})
	}

	// Fixture 1: clean baseband capture, stored as the phase stream the
	// WiFi front end would produce (KindPhase input path).
	sig, err := phy.TransmitFrame(&core.Frame{Seq: 7, Data: []byte("golden")})
	if err != nil {
		t.Fatal(err)
	}
	write("clean_phase.sbtr", "clean baseband frame, phase-kind trace", 0,
		&trace.Trace{Kind: trace.KindPhase, SampleRate: p.SampleRate, Phases: phy.Phases(sig)})

	// Fixture 2: the same PHY through a noisy offset channel, stored as
	// IQ (KindIQ input path, canonical compensation at the receiver).
	sig2, err := phy.TransmitFrame(&core.Frame{Seq: 12, Flags: 0x0A, Data: []byte("noisy!")})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	med, err := channel.NewMedium(channel.Config{
		SampleRate: p.SampleRate,
		SNRdB:      12,
		FreqOffset: channel.DefaultFreqOffset,
		Pad:        1500,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	write("noisy_cfo_iq.sbtr", "12 dB SNR, +3 MHz CFO, padded IQ trace", wifi.CanonicalCompensation,
		&trace.Trace{Kind: trace.KindIQ, SampleRate: p.SampleRate, IQ: med.Transmit(sig2)})

	out, err := json.MarshalIndent(cases, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(goldenDir, "golden.json"), append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	return cases
}

// tracePhases converts a fixture to the receiver phase stream. Batch
// phase extraction is compensation-free here; the decoder applies its
// own compensation, mirroring the production paths.
func tracePhases(t *testing.T, tr *trace.Trace) []float64 {
	t.Helper()
	switch tr.Kind {
	case trace.KindPhase:
		return tr.Phases
	case trace.KindIQ:
		phy, err := core.NewLink(core.Params20(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return phy.Phases(tr.IQ)
	}
	t.Fatalf("unknown trace kind %d", tr.Kind)
	return nil
}

func loadGolden(t *testing.T) []goldenCase {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(goldenDir, "golden.json"))
	if err != nil {
		t.Fatalf("golden fixtures missing (regenerate with -update): %v", err)
	}
	var cases []goldenCase
	if err := json.Unmarshal(raw, &cases); err != nil {
		t.Fatal(err)
	}
	return cases
}

func wantFrame(t *testing.T, g goldenFrame) *core.Frame {
	t.Helper()
	data, err := hex.DecodeString(g.Data)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Frame{Seq: g.Seq, Flags: g.Flags, Data: data}
}

func checkFrame(t *testing.T, label string, got, want *core.Frame) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no frame decoded", label)
	}
	if got.Seq != want.Seq || got.Flags != want.Flags || !bytes.Equal(got.Data, want.Data) {
		t.Fatalf("%s: frame seq=%d flags=%#x data=%x, want seq=%d flags=%#x data=%x",
			label, got.Seq, got.Flags, got.Data, want.Seq, want.Flags, want.Data)
	}
}

// TestGoldenTraceEquivalence is the bit-exactness regression gate of the
// layered refactor: every committed fixture must decode byte-for-byte
// identically through (a) the historical reference entrypoint, (b) the
// Stack batch preset via DecodeBatch, (c) a chunk-fed batch stack at
// every golden chunk size, and (d) — for IQ fixtures — the streaming
// preset at every golden chunk size.
func TestGoldenTraceEquivalence(t *testing.T) {
	var cases []goldenCase
	if *update {
		cases = generateGolden(t)
	} else {
		cases = loadGolden(t)
	}
	for _, tc := range cases {
		t.Run(tc.Trace, func(t *testing.T) {
			tr, err := trace.Load(filepath.Join(goldenDir, tc.Trace))
			if err != nil {
				t.Fatal(err)
			}
			p, err := core.NewParams(tr.SampleRate)
			if err != nil {
				t.Fatal(err)
			}
			dec, err := core.NewDecoder(p, tc.Compensation)
			if err != nil {
				t.Fatal(err)
			}
			want := wantFrame(t, tc.Frame)
			phases := tracePhases(t, tr)

			ref, err := dec.DecodeFrame(phases)
			if err != nil {
				t.Fatalf("reference decode: %v", err)
			}
			checkFrame(t, "reference", ref, want)

			got, err := DecodeBatch(dec, phases)
			if err != nil {
				t.Fatalf("DecodeBatch: %v", err)
			}
			checkFrame(t, "DecodeBatch", got, want)

			for _, chunk := range goldenChunks {
				n := chunk
				if n == 0 {
					n = len(phases)
				}
				st, err := NewBatch(dec, nil)
				if err != nil {
					t.Fatal(err)
				}
				for off := 0; off < len(phases); off += n {
					end := off + n
					if end > len(phases) {
						end = len(phases)
					}
					if err := st.PushPhases(phases[off:end]); err != nil {
						t.Fatal(err)
					}
				}
				if err := st.Flush(); err != nil {
					t.Fatal(err)
				}
				checkFrame(t, "batch stack", firstFrame(st.Drain()), want)

				if tr.Kind != trace.KindIQ {
					continue
				}
				srx, err := NewStreaming(dec, 0, nil)
				if err != nil {
					t.Fatal(err)
				}
				for off := 0; off < len(tr.IQ); off += n {
					end := off + n
					if end > len(tr.IQ) {
						end = len(tr.IQ)
					}
					if err := srx.PushIQ(tr.IQ[off:end]); err != nil {
						t.Fatal(err)
					}
				}
				if err := srx.Flush(); err != nil {
					t.Fatal(err)
				}
				checkFrame(t, "streaming stack", firstFrame(srx.Drain()), want)
			}
		})
	}
}

func firstFrame(events []Event) *core.Frame {
	for _, ev := range events {
		if ev.Kind == core.EventFrame {
			return ev.Frame
		}
	}
	return nil
}
