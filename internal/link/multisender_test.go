package link

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestMultiSenderSingle pins the degenerate scenario: one sender on a
// quiet channel delivers everything and collides with nobody.
func TestMultiSenderSingle(t *testing.T) {
	rep, err := RunMultiSender(MultiSenderConfig{
		Senders:         1,
		FramesPerSender: 4,
		Seed:            1,
		SNRdB:           20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Collisions != 0 {
		t.Errorf("single sender collided %d times", rep.Collisions)
	}
	if rep.Delivered != 4 {
		t.Errorf("delivered %d/4 frames", rep.Delivered)
	}
	if len(rep.PerSender) != 1 || rep.PerSender[0].Sent != 4 {
		t.Errorf("per-sender accounting wrong: %+v", rep.PerSender)
	}
	if rep.GoodputBps <= 0 {
		t.Errorf("goodput %v, want positive", rep.GoodputBps)
	}
}

// TestMultiSenderContention runs the 4-sender acceptance scenario
// end-to-end: per-sender accounting is complete, collisions appear under
// a crowded schedule, and at least the uncollided share of each sender's
// frames is delivered.
func TestMultiSenderContention(t *testing.T) {
	rep, err := RunMultiSender(MultiSenderConfig{
		Senders:         4,
		FramesPerSender: 4,
		Seed:            3,
		SNRdB:           20,
		MeanGapAirtimes: 1.5,
		CFOJitterHz:     20e3,
		SFOppm:          10,
		GainSpreadDB:    3,
		Metrics:         NewMetrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerSender) != 4 {
		t.Fatalf("per-sender entries %d, want 4", len(rep.PerSender))
	}
	total := 0
	for i, st := range rep.PerSender {
		if st.Sender != i {
			t.Errorf("sender %d reported as %d", i, st.Sender)
		}
		if st.Sent != 4 {
			t.Errorf("sender %d sent %d, want 4", i, st.Sent)
		}
		if st.Delivered < st.Sent-st.Collided {
			t.Errorf("sender %d: %d delivered < %d uncollided",
				i, st.Delivered, st.Sent-st.Collided)
		}
		total += st.Delivered
	}
	if total != rep.Delivered {
		t.Errorf("per-sender delivered sums to %d, report says %d", total, rep.Delivered)
	}
	if rep.Delivered == 0 {
		t.Error("nothing delivered in the contention scenario")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report does not marshal: %v", err)
	}
}

// TestMultiSenderDeterminism pins the seed contract: equal seeds
// reproduce the scenario bit-for-bit, different seeds differ somewhere.
func TestMultiSenderDeterminism(t *testing.T) {
	cfg := MultiSenderConfig{
		Senders:         2,
		FramesPerSender: 3,
		Seed:            17,
		MeanGapAirtimes: 2,
		CFOJitterHz:     15e3,
		GainSpreadDB:    2,
	}
	a, err := RunMultiSender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiSender(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different reports:\n%+v\n%+v", a, b)
	}
}

// TestMultiSenderValidation pins the config error surface.
func TestMultiSenderValidation(t *testing.T) {
	if _, err := RunMultiSender(MultiSenderConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := RunMultiSender(MultiSenderConfig{
		Senders: 1, FramesPerSender: 1, DataBytes: 99,
	}); err == nil {
		t.Error("oversized DataBytes accepted")
	}
}
