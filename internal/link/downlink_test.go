package link

import (
	"errors"
	"testing"
	"time"

	"symbee/internal/core"
	"symbee/internal/ctc"
	"symbee/internal/splitmix"
)

// fixedDown builds a DownStack with explicit quanta — the white-box
// stage tests state timing exactly instead of resolving a ctc point.
func fixedDown(t *testing.T, wall, air, base time.Duration, repeat int) *DownStack {
	t.Helper()
	s, err := NewDownStack(DownSpec{
		Timing: &DownTiming{Wall: wall, Air: air, Base: base},
		Repeat: repeat,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDownSpecValidation(t *testing.T) {
	if _, err := NewDownStack(DownSpec{}); !errors.Is(err, ErrDownRepeat) {
		t.Errorf("zero Repeat: %v, want ErrDownRepeat", err)
	}
	if _, err := NewDownStack(DownSpec{Repeat: -1}); !errors.Is(err, ErrDownRepeat) {
		t.Errorf("negative Repeat: %v, want ErrDownRepeat", err)
	}
	// The two timing sources are mutually exclusive; a DownTiming
	// alongside a resolved ctc downlink must be rejected. A nil-nil pair
	// is the explicit ideal stage.
	dl, err := ctc.NewDownlink(ctc.DefaultDownlink(ctc.NewCMorse()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDownStack(DownSpec{Repeat: 1, Timing: &DownTiming{},
		Downlink: dl}); !errors.Is(err, ErrDownTiming) {
		t.Errorf("both timing sources: %v, want ErrDownTiming", err)
	}
	s, err := NewDownStack(DownSpec{Repeat: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Latency() != 0 {
		t.Errorf("ideal latency = %v", s.Latency())
	}
}

func TestDownStackSerialAndCoalescing(t *testing.T) {
	// Serial transmitter with a 10 ms wall: an ack generated while the
	// previous one is on the air queues behind it; a third ack generated
	// before the queued one starts replaces it (cumulative coalescing).
	s := fixedDown(t, 10*time.Millisecond, 2*time.Millisecond, time.Millisecond, 1)
	s.Generate(0, 1, false)                  // starts at 1ms, ends 11ms
	s.Generate(2*time.Millisecond, 2, false) // queued: starts 11ms
	s.Generate(4*time.Millisecond, 3, false) // replaces seq 2
	evs := s.Arrivals(11 * time.Millisecond)
	if len(evs) != 1 || evs[0].Seq != 1 || evs[0].At != 11*time.Millisecond {
		t.Fatalf("first drain = %+v", evs)
	}
	evs = s.Arrivals(21 * time.Millisecond)
	if len(evs) != 1 || evs[0].Seq != 3 {
		t.Fatalf("second drain = %+v, want the coalesced seq 3", evs)
	}
	if evs[0].At != 21*time.Millisecond {
		t.Errorf("queued ack arrived at %v, want serialized 21ms", evs[0].At)
	}
	led := s.Ledger()
	if led.AcksCoalesced != 1 {
		t.Errorf("coalesced = %d, want 1", led.AcksCoalesced)
	}
	if led.AcksSent != 2 {
		t.Errorf("sent = %d, want 2 (seq 2 never aired)", led.AcksSent)
	}
	if want := 2 * 2 * time.Millisecond; led.Airtime != want {
		t.Errorf("reverse airtime = %v, want %v", led.Airtime, want)
	}
}

func TestDownStackNextArrival(t *testing.T) {
	s := fixedDown(t, 10*time.Millisecond, 0, time.Millisecond, 2)
	if _, ok := s.NextArrival(0); ok {
		t.Fatal("idle channel reported an arrival")
	}
	s.Generate(0, 1, false)
	next, ok := s.NextArrival(0)
	if !ok || next != 11*time.Millisecond {
		t.Fatalf("next = %v %v, want first copy at 11ms", next, ok)
	}
	// After the first copy lands, the repeat copy is next.
	s.Arrivals(11 * time.Millisecond)
	next, ok = s.NextArrival(11 * time.Millisecond)
	if !ok || next != 21*time.Millisecond {
		t.Fatalf("next = %v %v, want repeat copy at 21ms", next, ok)
	}
	// A fully dropped ack never arrives.
	s2 := fixedDown(t, 10*time.Millisecond, 0, 0, 1)
	s2.Generate(0, 1, true)
	if _, ok := s2.NextArrival(0); ok {
		t.Fatal("dropped ack reported as arriving")
	}
}

func TestDownStackCollisionModel(t *testing.T) {
	const trials = 4000
	run := func(seed int64, overlapFrac float64) (fwd, ack int) {
		s, err := NewDownStack(DownSpec{
			Timing:  &DownTiming{Wall: 10 * time.Millisecond, Air: 5 * time.Millisecond},
			Repeat:  1,
			Collide: splitmix.New(seed, splitmix.CollisionStream),
		})
		if err != nil {
			t.Fatal(err)
		}
		span := time.Duration(overlapFrac * float64(10*time.Millisecond))
		for i := 0; i < trials; i++ {
			s.fault.inFlight = []downCopy{{start: 0, end: 10 * time.Millisecond}}
			s.CollideForward(0, span)
		}
		led := s.Ledger()
		return led.ForwardCollisions, led.AckCollisions
	}
	// Full overlap: the copy is always destroyed; the forward frame dies
	// at the 50% duty cross-section.
	fwd, ack := run(7, 1)
	if ack != trials {
		t.Errorf("full overlap destroyed %d/%d copies", ack, trials)
	}
	if fwd < trials*45/100 || fwd > trials*55/100 {
		t.Errorf("forward kills = %d/%d, want ≈50%%", fwd, trials)
	}
	// 20% overlap: the copy survives ~80% of the time; the forward
	// frame's cross-section is unchanged (duty, not overlap).
	_, ack = run(8, 0.2)
	if ack < trials*15/100 || ack > trials*25/100 {
		t.Errorf("partial-overlap copy kills = %d/%d, want ≈20%%", ack, trials)
	}
	// Same seed, same schedule: the collision stream is deterministic.
	f1, a1 := run(9, 0.5)
	f2, a2 := run(9, 0.5)
	if f1 != f2 || a1 != a2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", f1, a1, f2, a2)
	}
}

// TestDownStackIdealNoOp pins the explicit ideal stage: instant
// turnaround, zero airtime, and — critically — no collision draws, so
// an ideal baseline can never perturb a shared RNG stream.
func TestDownStackIdealNoOp(t *testing.T) {
	collide := splitmix.New(1, splitmix.CollisionStream)
	probe := splitmix.New(1, splitmix.CollisionStream)
	s, err := NewDownStack(DownSpec{Repeat: 1, Collide: collide})
	if err != nil {
		t.Fatal(err)
	}
	if name := s.occ.Name(); name != "occupancy:ideal" {
		t.Errorf("ideal occupancy named %q", name)
	}
	s.Generate(5*time.Millisecond, 9, false)
	if s.CollideForward(0, time.Second) {
		t.Error("ideal downlink killed a forward frame")
	}
	evs := s.Arrivals(5 * time.Millisecond)
	if len(evs) != 1 || evs[0].At != 5*time.Millisecond || evs[0].Gen != 5*time.Millisecond {
		t.Fatalf("ideal arrival = %+v, want instant delivery", evs)
	}
	if led := s.Ledger(); led.Airtime != 0 || led.AcksSent != 1 {
		t.Errorf("ideal ledger = %+v", led)
	}
	// The collision stream must be untouched: the next draw equals a
	// fresh stream's first draw.
	if collide.Float64() != probe.Float64() {
		t.Error("ideal downlink consumed a collision draw")
	}
}

// TestDownStackLayerStats checks per-stage accounting across a small
// scripted run: one coalesced ack, one lossy copy.
func TestDownStackLayerStats(t *testing.T) {
	drops := []bool{true, false, false}
	i := 0
	s, err := NewDownStack(DownSpec{
		Timing:   &DownTiming{Wall: 10 * time.Millisecond, Air: 2 * time.Millisecond},
		Repeat:   1,
		DropCopy: func() bool { d := drops[i%len(drops)]; i++; return d },
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Generate(0, 1, false)                  // copy 1: dropped by the fault stage
	s.Generate(1*time.Millisecond, 2, false) // queued
	s.Generate(2*time.Millisecond, 3, false) // coalesces seq 2 away
	s.Arrivals(30 * time.Millisecond)
	want := map[string]LayerStats{
		"coalescer":       {Name: "coalescer", In: 3, Out: 2},
		"occupancy:fixed": {Name: "occupancy:fixed", In: 2, Out: 2},
		"reversefault":    {Name: "reversefault", In: 2, Out: 1, Errs: 1},
		"timedsink":       {Name: "timedsink", In: 1, Out: 1},
	}
	for _, st := range s.LayerStats() {
		if w, ok := want[st.Name]; ok && st != w {
			t.Errorf("%s stats = %+v, want %+v", st.Name, st, w)
		}
	}
	if n := len(s.LayerStats()); n != 4 {
		t.Errorf("stage count = %d, want 4", n)
	}
}

// TestDownStackSinks routes arrivals through an extra TimedLayer ahead
// of the built-in collector.
func TestDownStackSinks(t *testing.T) {
	var seen []TimedEvent
	probe := NewTimedCallback(func(ev TimedEvent) { seen = append(seen, ev) })
	s, err := NewDownStack(DownSpec{Repeat: 1, Sinks: []TimedLayer{probe}})
	if err != nil {
		t.Fatal(err)
	}
	s.Generate(time.Millisecond, 7, false)
	evs := s.Arrivals(time.Millisecond)
	if len(evs) != 1 || len(seen) != 1 || seen[0] != evs[0] {
		t.Fatalf("sink saw %+v, collector %+v", seen, evs)
	}
	if st := probe.Stats(); st.In != 1 || st.Out != 1 {
		t.Errorf("probe stats = %+v", st)
	}
}

func TestDuplexComposer(t *testing.T) {
	if _, err := NewDuplex(nil, nil); !errors.Is(err, ErrNilUplink) {
		t.Errorf("nil uplink: %v", err)
	}
	dec, err := core.NewDecoder(core.Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	up, err := NewBatch(dec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDuplex(up, nil); !errors.Is(err, ErrNilDownlink) {
		t.Errorf("nil downlink: %v", err)
	}
	down, err := NewDownStack(DownSpec{
		Timing:  &DownTiming{Wall: 10 * time.Millisecond, Air: 5 * time.Millisecond},
		Repeat:  1,
		Collide: splitmix.New(3, splitmix.CollisionStream),
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDuplex(up, down)
	if err != nil {
		t.Fatal(err)
	}
	if d.Up() != up || d.Down() != down {
		t.Fatal("duplex lost a half")
	}
	// ForwardCollides must advance the downlink first: an ack generated
	// before the frame but starting mid-frame participates in the draw.
	d.Down().Generate(0, 1, false)
	killed := false
	for i := 0; i < 200 && !killed; i++ {
		killed = d.ForwardCollides(0, 10*time.Millisecond)
	}
	if !killed {
		t.Error("no forward kill in 200 draws at 50% duty")
	}
	// Both halves' stages appear in the combined stats.
	names := map[string]bool{}
	for _, st := range d.LayerStats() {
		names[st.Name] = true
	}
	for _, want := range []string{"frame", "coalescer", "occupancy:fixed", "reversefault", "timedsink"} {
		if !names[want] {
			t.Errorf("missing %q in duplex stats", want)
		}
	}
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}
