package link

import (
	"math/rand"
	"testing"

	"symbee/internal/core"
	"symbee/internal/wifi"
)

// TestStackSteadyStateZeroAlloc pins the refactor's hot-path guarantee
// at the Stack level (the stream package pins it again through its
// Receiver wrapper): once warm, pushing IQ and draining events on the
// hunting steady state allocates nothing, instrumented or not.
func TestStackSteadyStateZeroAlloc(t *testing.T) {
	p := core.Params20()
	rng := rand.New(rand.NewSource(55))
	noise := make([]complex128, 4096)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	dec, err := core.NewDecoder(p, wifi.CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		metrics *Metrics
	}{
		{"uninstrumented", nil},
		{"instrumented", NewMetrics()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := NewStreaming(dec, 1, tc.metrics)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				st.PushIQ(noise)
				st.Drain()
			}
			allocs := testing.AllocsPerRun(100, func() {
				st.PushIQ(noise)
				st.Drain()
			})
			if allocs != 0 {
				t.Errorf("steady-state PushIQ+Drain allocates %.1f times per chunk, want 0", allocs)
			}
		})
	}
}

// TestStackWithSinkZeroAlloc extends the guarantee to a stack with an
// extra event sink and a phase layer in the chain: the layered dispatch
// itself must not allocate either.
func TestStackWithSinkZeroAlloc(t *testing.T) {
	p := core.Params20()
	rng := rand.New(rand.NewSource(56))
	noise := make([]complex128, 4096)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	dec, err := core.NewDecoder(p, wifi.CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	probe := &countingPhaseLayer{stats: LayerStats{Name: "counting"}}
	sink := NewCallback(nil)
	st, err := New(Spec{
		Decoder:  dec,
		FrontEnd: true,
		Phase:    []PhaseLayer{probe},
		Sinks:    []EventLayer{sink},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		st.PushIQ(noise)
		st.Drain()
	}
	allocs := testing.AllocsPerRun(100, func() {
		st.PushIQ(noise)
		st.Drain()
	})
	if allocs != 0 {
		t.Errorf("layered steady-state PushIQ+Drain allocates %.1f times per chunk, want 0", allocs)
	}
}
