package link

import "time"

// wallNow is the package's single wall-clock seam. Stage-latency
// histograms are wall-clock measurements by definition — they describe
// the host machine, not the decoded stream — so this is deliberately
// outside the reliable.Clock virtual-time plumbing. Tests may swap it
// to freeze latency accounting.
var wallNow = time.Now //symbee:ignore determinism -- stage-latency metrics are wall-clock by definition
