package link

import (
	"errors"
	"math/rand"
	"time"

	"symbee/internal/ctc"
)

// This file is the downlink half of the duplex link architecture: the
// serial WiFi→ZigBee reverse channel decomposed into the same layered
// discipline as the forward decode Stack. A DownStack is discrete-event
// and clockless — callers push ack generations at forward-frame
// delivery instants and pull arrivals with explicit `now` stamps — so
// it composes with both virtual and wall clocks, exactly like the
// reverse-channel model it replaces. The stages, bottom to top:
//
//	coalescer       ack serializer: one pending slot, newer cumulative
//	                acks replace a queued unstarted older one
//	occupancy       scheme occupancy & busy-queue: per-copy wall/air
//	                quanta and the serial transmitter's busy horizon
//	                (schemeOccupancy from ctc.Downlink timing, or the
//	                explicit idealOccupancy no-op)
//	reverseFault    per-copy loss draws and the half-duplex forward/ack
//	                collision model
//	timed sinks     TimedLayer consumers, terminated by the built-in
//	                TimedCollector the owner Drains through Arrivals
//
// Every stage reports LayerStats; the cross-stage ack ledger the
// reliability layer publishes as ReverseStats is assembled by Ledger.

// DownTiming pins a downlink's per-copy occupancy as explicit
// durations: the wall-clock span one ack copy holds the reverse
// channel, the on-air time within it, and the fixed turnaround before
// the first copy can start. Tests and scripted transports use it to
// state quanta exactly; production links resolve a *ctc.Downlink
// instead.
type DownTiming struct {
	Wall, Air, Base time.Duration
}

// DownSpec assembles a DownStack. Exactly one timing source applies:
// Downlink resolves a ctc operating point, Timing states the quanta
// directly, and leaving both nil builds the explicit ideal no-op
// occupancy stage (instant, free, collision-less acks).
type DownSpec struct {
	// Downlink is the resolved ctc ack-downlink timing model.
	Downlink *ctc.Downlink
	// Timing overrides the quanta with explicit durations (tests,
	// scripted links). Mutually exclusive with Downlink.
	Timing *DownTiming
	// Repeat transmits each committed ack this many times (≥ 1).
	Repeat int
	// DropCopy is the per-copy reverse loss draw (nil = lossless).
	DropCopy func() bool
	// Collide draws the half-duplex collision outcomes (nil = never
	// collides). Callers seed it from their collision RNG stream.
	Collide *rand.Rand
	// Sinks are additional timed-event consumers ahead of the built-in
	// collector.
	Sinks []TimedLayer
}

// DownSpec validation errors.
var (
	// ErrDownRepeat reports a non-positive ack repetition count.
	ErrDownRepeat = errors.New("link: DownSpec.Repeat must be at least 1")
	// ErrDownTiming reports both timing sources set at once.
	ErrDownTiming = errors.New("link: DownSpec.Downlink and DownSpec.Timing are mutually exclusive")
)

// downCopy is one committed reverse-channel transmission of an ack.
type downCopy struct {
	seq        byte
	gen        time.Duration // when the receiver generated the ack
	start, end time.Duration // reverse-channel occupancy span
	dropped    bool          // lost (reverse fault or collision): never arrives
}

// pendingTimed is the newest cumulative ack queued behind the serial
// reverse transmitter, not yet started. A newer ack generated before it
// starts replaces it — cumulative acks make the older one redundant.
type pendingTimed struct {
	seq   byte
	gen   time.Duration
	start time.Duration
	drop  bool // scripted loss for this ack's copies (tests)
}

// coalescer is the ack serializer stage: it owns the single pending
// slot of the serial reverse transmitter. In counts acks offered, Out
// counts acks committed downstream; the difference is what coalescing
// (and any still-pending ack) absorbed.
type coalescer struct {
	pending   *pendingTimed
	coalesced int
	stats     LayerStats
}

func newCoalescer() *coalescer {
	return &coalescer{stats: LayerStats{Name: "coalescer"}}
}

// put queues p, replacing (and counting) a still-pending older ack.
func (c *coalescer) put(p pendingTimed) {
	c.stats.In++
	if c.pending != nil {
		c.coalesced++
	}
	c.pending = &p
}

// take commits the pending ack once simulated time reaches its start
// instant, clearing the slot.
func (c *coalescer) take(now time.Duration) *pendingTimed {
	p := c.pending
	if p == nil || p.start > now {
		return nil
	}
	c.pending = nil
	c.stats.Out++
	return p
}

// peek returns the queued ack without committing it.
func (c *coalescer) peek() *pendingTimed { return c.pending }

// Name implements Layer.
func (c *coalescer) Name() string { return "coalescer" }

// Flush implements Layer; commitment follows simulated time, never
// end-of-stream.
func (c *coalescer) Flush() error { return nil }

// Close implements Layer.
func (c *coalescer) Close() error { return nil }

// Stats implements Layer.
func (c *coalescer) Stats() LayerStats { return c.stats }

// occupancy is the scheme occupancy & busy-queue stage: it owns the
// per-copy quanta and the serial transmitter's busy horizon. In counts
// acks committed, Out counts copies put on the air.
type occupancy interface {
	Layer
	// quanta reports the per-copy wall span, on-air time and turnaround.
	quanta() (wall, air, base time.Duration)
	// copies is how many copies each committed ack transmits.
	copies() int
	// startFor schedules an ack generated at gen: after the turnaround,
	// or when the transmitter frees up, whichever is later.
	startFor(gen time.Duration) time.Duration
	// commit accounts one ack's copies starting at start and advances
	// the busy horizon past them.
	commit(start time.Duration)
}

// schemeOccupancy is the modeled occupancy stage: real wall/air/base
// quanta resolved from a ctc operating point or stated explicitly.
type schemeOccupancy struct {
	label           string
	wall, air, base time.Duration
	repeat          int
	busyUntil       time.Duration
	stats           LayerStats
}

func newSchemeOccupancy(label string, wall, air, base time.Duration, repeat int) *schemeOccupancy {
	name := "occupancy:" + label
	return &schemeOccupancy{
		label: label, wall: wall, air: air, base: base, repeat: repeat,
		stats: LayerStats{Name: name},
	}
}

// Name implements Layer.
func (o *schemeOccupancy) Name() string { return o.stats.Name }

func (o *schemeOccupancy) quanta() (time.Duration, time.Duration, time.Duration) {
	return o.wall, o.air, o.base
}

func (o *schemeOccupancy) copies() int { return o.repeat }

func (o *schemeOccupancy) startFor(gen time.Duration) time.Duration {
	start := gen + o.base
	if o.busyUntil > start {
		start = o.busyUntil
	}
	return start
}

func (o *schemeOccupancy) commit(start time.Duration) {
	o.stats.In++
	o.stats.Out += uint64(o.repeat)
	o.busyUntil = start + time.Duration(o.repeat)*o.wall
}

// Flush implements Layer.
func (o *schemeOccupancy) Flush() error { return nil }

// Close implements Layer.
func (o *schemeOccupancy) Close() error { return nil }

// Stats implements Layer.
func (o *schemeOccupancy) Stats() LayerStats { return o.stats }

// idealOccupancy is the explicit no-op occupancy stage behind the ideal
// downlink: acks cost no air, occupy no wall time and turn around
// instantly. It runs the same pending/busy protocol as schemeOccupancy
// with zero quanta, so the ideal baseline follows the identical
// discrete-event path instead of special-cased branches in harness or
// session code.
type idealOccupancy struct {
	repeat    int
	busyUntil time.Duration
	stats     LayerStats
}

func newIdealOccupancy(repeat int) *idealOccupancy {
	return &idealOccupancy{repeat: repeat, stats: LayerStats{Name: "occupancy:ideal"}}
}

// Name implements Layer.
func (o *idealOccupancy) Name() string { return o.stats.Name }

func (o *idealOccupancy) quanta() (time.Duration, time.Duration, time.Duration) {
	return 0, 0, 0
}

func (o *idealOccupancy) copies() int { return o.repeat }

func (o *idealOccupancy) startFor(gen time.Duration) time.Duration {
	if o.busyUntil > gen {
		return o.busyUntil
	}
	return gen
}

func (o *idealOccupancy) commit(start time.Duration) {
	o.stats.In++
	o.stats.Out += uint64(o.repeat)
	o.busyUntil = start
}

// Flush implements Layer.
func (o *idealOccupancy) Flush() error { return nil }

// Close implements Layer.
func (o *idealOccupancy) Close() error { return nil }

// Stats implements Layer.
func (o *idealOccupancy) Stats() LayerStats { return o.stats }

// reverseFault is the per-copy loss + half-duplex collision stage: it
// owns the in-flight copies, draws their reverse loss on admission and
// resolves collisions with forward frames. In counts copies admitted,
// Out counts copies delivered upward, Errs counts copies destroyed
// (reverse loss or collision).
type reverseFault struct {
	dropCopy func() bool
	collide  *rand.Rand
	wall     time.Duration
	duty     float64

	inFlight                                  []downCopy
	dropped, ackCollisions, forwardCollisions int
	stats                                     LayerStats
}

func newReverseFault(dropCopy func() bool, collide *rand.Rand, wall, air time.Duration) *reverseFault {
	f := &reverseFault{
		dropCopy: dropCopy,
		collide:  collide,
		wall:     wall,
		stats:    LayerStats{Name: "reversefault"},
	}
	if wall > 0 {
		f.duty = float64(air) / float64(wall)
	}
	return f
}

// admit puts one committed copy in flight, drawing its reverse loss.
// forceDrop short-circuits the draw (scripted loss consumes no RNG).
func (f *reverseFault) admit(c downCopy, forceDrop bool) {
	f.stats.In++
	if forceDrop || (f.dropCopy != nil && f.dropCopy()) {
		c.dropped = true
		f.dropped++
		f.stats.Errs++
	}
	f.inFlight = append(f.inFlight, c)
}

// collideForward resolves the half-duplex interaction between a forward
// frame on the air over [start, end] and every in-flight copy whose
// span overlaps it. The reverse transmitter radiates air/wall (duty) of
// an ack span, so the forward frame is destroyed with probability duty
// per overlapping copy; the forward frame radiates continuously, so the
// copy is destroyed with probability overlap/wall (the fraction of its
// span the frame covers). Both draws come from the collision stream and
// are consumed for every overlapping pair, killed or not, so one
// outcome never shifts the next pair's draw. It reports whether the
// forward frame was destroyed.
func (f *reverseFault) collideForward(start, end time.Duration) bool {
	if f.collide == nil || f.wall <= 0 {
		return false
	}
	killed := false
	for i := range f.inFlight {
		c := &f.inFlight[i]
		lo, hi := c.start, c.end
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi <= lo {
			continue
		}
		fwdDraw := f.collide.Float64()
		copyDraw := f.collide.Float64()
		if fwdDraw < f.duty {
			if !killed {
				f.forwardCollisions++
			}
			killed = true
		}
		if copyDraw < float64(hi-lo)/float64(c.end-c.start) && !c.dropped {
			c.dropped = true
			f.ackCollisions++
			f.stats.Errs++
		}
	}
	return killed
}

// drain emits every copy that has fully arrived by now, in arrival
// order, skipping destroyed ones, and keeps the rest in flight.
func (f *reverseFault) drain(now time.Duration, emit func(TimedEvent)) {
	keep := f.inFlight[:0]
	for _, c := range f.inFlight {
		if c.end > now {
			keep = append(keep, c)
			continue
		}
		if c.dropped {
			continue
		}
		f.stats.Out++
		emit(TimedEvent{Kind: TimedAck, Seq: c.seq, Gen: c.gen, At: c.end})
	}
	f.inFlight = keep
}

// nextEnd reports the earliest surviving in-flight arrival after now.
func (f *reverseFault) nextEnd(now time.Duration) (time.Duration, bool) {
	best := time.Duration(-1)
	for _, c := range f.inFlight {
		if c.dropped || c.end <= now {
			continue
		}
		if best < 0 || c.end < best {
			best = c.end
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Name implements Layer.
func (f *reverseFault) Name() string { return "reversefault" }

// Flush implements Layer; arrivals follow simulated time.
func (f *reverseFault) Flush() error { return nil }

// Close implements Layer.
func (f *reverseFault) Close() error { return nil }

// Stats implements Layer.
func (f *reverseFault) Stats() LayerStats { return f.stats }

// DownlinkLedger is the cross-stage ack accounting of a DownStack — the
// provenance of the reliability layer's ReverseStats.
type DownlinkLedger struct {
	// AcksSent counts committed ack copies put on the air.
	AcksSent int
	// AcksCoalesced counts acks superseded by a newer cumulative ack
	// before their transmission started.
	AcksCoalesced int
	// AcksDropped counts copies lost on the reverse path.
	AcksDropped int
	// AckCollisions counts copies destroyed by an overlapping forward
	// frame.
	AckCollisions int
	// ForwardCollisions counts forward frames destroyed by an
	// overlapping ack burst.
	ForwardCollisions int
	// Airtime is the reverse on-air time spent.
	Airtime time.Duration
}

// DownStack is the downlink half of a duplex link: the layered,
// discrete-event model of a serial ack reverse channel. Like Stack it
// is owned by one goroutine; callers stamp every method with the
// current simulated time, and time must be monotone across calls.
type DownStack struct {
	coal   *coalescer
	occ    occupancy
	fault  *reverseFault
	sinks  []TimedLayer
	sink   *TimedCollector
	closed bool
}

// NewDownStack assembles the downlink stack described by spec.
func NewDownStack(spec DownSpec) (*DownStack, error) {
	if spec.Repeat < 1 {
		return nil, ErrDownRepeat
	}
	if spec.Downlink != nil && spec.Timing != nil {
		return nil, ErrDownTiming
	}
	var occ occupancy
	switch {
	case spec.Downlink != nil:
		sec := func(x float64) time.Duration { return time.Duration(x * float64(time.Second)) }
		dl := spec.Downlink
		occ = newSchemeOccupancy(dl.SchemeName(),
			sec(dl.AckWall()), sec(dl.AckAir()), sec(dl.BaseLatency()), spec.Repeat)
	case spec.Timing != nil:
		occ = newSchemeOccupancy("fixed",
			spec.Timing.Wall, spec.Timing.Air, spec.Timing.Base, spec.Repeat)
	default:
		occ = newIdealOccupancy(spec.Repeat)
	}
	wall, air, _ := occ.quanta()
	s := &DownStack{
		coal:  newCoalescer(),
		occ:   occ,
		fault: newReverseFault(spec.DropCopy, spec.Collide, wall, air),
		sinks: spec.Sinks,
		sink:  NewTimedCollector(),
	}
	return s, nil
}

// Advance commits the pending ack once simulated time reaches its start
// instant: its copies are scheduled serially through the occupancy
// stage, each drawing its reverse loss in the fault stage, and the
// transmitter is busy until the last one ends. Callers invoke it with
// every observed `now` (Generate, Arrivals and NextArrival do so
// themselves), so commitment order follows simulated time regardless of
// which accessor runs first.
func (s *DownStack) Advance(now time.Duration) {
	p := s.coal.take(now)
	if p == nil {
		return
	}
	wall, _, _ := s.occ.quanta()
	n := s.occ.copies()
	for k := 0; k < n; k++ {
		s.fault.admit(downCopy{
			seq:   p.seq,
			gen:   p.gen,
			start: p.start + time.Duration(k)*wall,
			end:   p.start + time.Duration(k+1)*wall,
		}, p.drop)
	}
	s.occ.commit(p.start)
}

// Generate hands a cumulative ack to the downlink at time gen (the
// forward frame's delivery instant). The copy starts after the
// turnaround, or when the serial transmitter frees up, whichever is
// later; a still-queued older ack is coalesced away. drop forces every
// copy of this ack to be lost (scripted tests; simulated links draw
// per-copy through DropCopy instead).
func (s *DownStack) Generate(gen time.Duration, seq byte, drop bool) {
	s.Advance(gen)
	s.coal.put(pendingTimed{seq: seq, gen: gen, start: s.occ.startFor(gen), drop: drop})
}

// CollideForward resolves a forward frame on the air over [start, end]
// against every in-flight ack copy (see reverseFault.collideForward)
// and reports whether the frame was destroyed. Callers must Advance(end)
// first so copies starting mid-frame participate — Duplex.ForwardCollides
// does both.
func (s *DownStack) CollideForward(start, end time.Duration) bool {
	return s.fault.collideForward(start, end)
}

// Arrivals drains every ack that has fully arrived by now, in arrival
// order, through the configured sinks into the built-in collector. The
// returned slice is the collector's reused queue: valid until the next
// drain.
func (s *DownStack) Arrivals(now time.Duration) []TimedEvent {
	s.Advance(now)
	s.fault.drain(now, s.emit)
	return s.sink.Drain()
}

// emit pushes one arrival through the sink chain. Sink errors are
// recorded in the sinks' own stats; arrival delivery never blocks on
// them.
func (s *DownStack) emit(ev TimedEvent) {
	for _, l := range s.sinks {
		_ = l.OnTimed(ev)
	}
	_ = s.sink.OnTimed(ev)
}

// NextArrival reports when the next ack will finish arriving, if any is
// scheduled: the earliest surviving in-flight copy, or the queued
// pending ack's first copy. Copies already destroyed never arrive and
// are skipped — the sender cannot know, which is exactly why it also
// keeps a retransmission timer.
func (s *DownStack) NextArrival(now time.Duration) (time.Duration, bool) {
	s.Advance(now)
	best, ok := s.fault.nextEnd(now)
	if p := s.coal.peek(); p != nil && !p.drop {
		wall, _, _ := s.occ.quanta()
		if first := p.start + wall; !ok || first < best {
			best, ok = first, true
		}
	}
	if !ok {
		return 0, false
	}
	return best, true
}

// Latency is the nominal one-way ack delay on an idle reverse channel:
// turnaround plus one copy's span (the ack decodes when its last symbol
// lands).
func (s *DownStack) Latency() time.Duration {
	wall, _, base := s.occ.quanta()
	return base + wall
}

// Ledger assembles the cross-stage ack accounting.
func (s *DownStack) Ledger() DownlinkLedger {
	_, air, _ := s.occ.quanta()
	sent := int(s.occ.Stats().Out)
	return DownlinkLedger{
		AcksSent:          sent,
		AcksCoalesced:     s.coal.coalesced,
		AcksDropped:       s.fault.dropped,
		AckCollisions:     s.fault.ackCollisions,
		ForwardCollisions: s.fault.forwardCollisions,
		Airtime:           time.Duration(sent) * air,
	}
}

// LayerStats reports every stage's accounting, bottom to top.
func (s *DownStack) LayerStats() []LayerStats {
	out := []LayerStats{s.coal.Stats(), s.occ.Stats(), s.fault.Stats()}
	for _, l := range s.sinks {
		out = append(out, l.Stats())
	}
	return append(out, s.sink.Stats())
}

// Flush implements the stack-level flush: stage flushes only —
// commitment and arrival follow simulated time, never end-of-stream.
func (s *DownStack) Flush() error {
	for _, l := range s.layers() {
		if err := l.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every stage; a closed stack keeps reporting stats.
func (s *DownStack) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, l := range s.layers() {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// layers lists the stages bottom to top.
func (s *DownStack) layers() []Layer {
	out := []Layer{s.coal, s.occ, s.fault}
	for _, l := range s.sinks {
		out = append(out, l)
	}
	return append(out, s.sink)
}
