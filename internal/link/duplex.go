package link

import (
	"errors"
	"time"
)

// Duplex validation errors.
var (
	// ErrNilUplink reports a duplex built without its decode stack.
	ErrNilUplink = errors.New("link: duplex needs an uplink Stack")
	// ErrNilDownlink reports a duplex built without its downlink stack.
	ErrNilDownlink = errors.New("link: duplex needs a DownStack")
)

// Duplex pairs an uplink decode Stack with a downlink DownStack on one
// shared virtual clock: the forward path pushes IQ/phases down the
// decode pipeline while acks ride the layered reverse channel back, and
// the half-duplex coupling between them — a forward frame colliding
// with an ack burst on the air — is resolved here. The duplex owns
// neither clock nor goroutine: like its halves it is discrete-event,
// stamped by the caller, and owned by one goroutine.
type Duplex struct {
	up   *Stack
	down *DownStack
}

// NewDuplex composes the two halves.
func NewDuplex(up *Stack, down *DownStack) (*Duplex, error) {
	if up == nil {
		return nil, ErrNilUplink
	}
	if down == nil {
		return nil, ErrNilDownlink
	}
	return &Duplex{up: up, down: down}, nil
}

// Up returns the uplink decode stack.
func (d *Duplex) Up() *Stack { return d.up }

// Down returns the downlink stack.
func (d *Duplex) Down() *DownStack { return d.down }

// ForwardCollides resolves a forward frame on the air over [start, end]
// against the reverse channel: it advances the downlink to the frame's
// end so ack copies starting mid-frame participate, then draws the
// half-duplex collision outcomes. It reports whether the forward frame
// was destroyed.
func (d *Duplex) ForwardCollides(start, end time.Duration) bool {
	d.down.Advance(end)
	return d.down.CollideForward(start, end)
}

// LayerStats reports every stage of both halves, uplink first.
func (d *Duplex) LayerStats() []LayerStats {
	return append(d.up.LayerStats(), d.down.LayerStats()...)
}

// Flush flushes both halves.
func (d *Duplex) Flush() error {
	if err := d.up.Flush(); err != nil {
		return err
	}
	return d.down.Flush()
}

// Close closes both halves.
func (d *Duplex) Close() error {
	err := d.up.Close()
	if derr := d.down.Close(); err == nil {
		err = derr
	}
	return err
}
