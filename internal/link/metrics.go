package link

import (
	"encoding/json"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotone atomic event counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Histogram is a fixed-bucket latency/size histogram safe for
// concurrent Observe. Bucket i counts observations ≤ bounds[i]; the
// final implicit bucket counts everything larger. Stdlib only: atomics
// over a fixed slice, no allocation on the observe path.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram returns a histogram with the given upper bounds. Bounds
// are sorted and deduplicated, so any bound set yields a well-formed
// histogram (one extra overflow bucket is added internally).
func NewHistogram(bounds ...float64) *Histogram {
	sorted := make([]float64, len(bounds))
	copy(sorted, bounds)
	sort.Float64s(sorted)
	dedup := sorted[:0]
	for i, b := range sorted {
		if i == 0 || b > dedup[len(dedup)-1] {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{
		bounds:  dedup,
		buckets: make([]atomic.Uint64, len(dedup)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramBucket is one bucket of a histogram snapshot: the count of
// observations ≤ Le (Le is +Inf for the overflow bucket).
type HistogramBucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// MarshalJSON renders +Inf as the string "+Inf" (JSON has no Inf).
func (b HistogramBucket) MarshalJSON() ([]byte, error) {
	type alias struct {
		Le    any    `json:"le"`
		Count uint64 `json:"count"`
	}
	a := alias{Le: b.Le, Count: b.Count}
	if math.IsInf(b.Le, 1) {
		a.Le = "+Inf"
	}
	return json.Marshal(a)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     float64           `json:"sum"`
	Mean    float64           `json:"mean"`
	Buckets []HistogramBucket `json:"buckets"`
}

// Snapshot copies the histogram's current state. Concurrent observes
// may land between bucket reads; totals are internally consistent
// enough for monitoring (this is a metrics read, not a barrier).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Buckets: make([]HistogramBucket, len(h.buckets)),
	}
	for i := range h.buckets {
		le := math.Inf(1)
		if i < len(h.bounds) {
			le = h.bounds[i]
		}
		s.Buckets[i] = HistogramBucket{Le: le, Count: h.buckets[i].Load()}
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	return s
}

// Metrics is the one stage-instrumentation registry of the link stack:
// every pipeline configuration — batch, streaming pool, reliable ARQ,
// multi-sender scenarios — reports into the same schema instead of
// keeping per-subsystem copies. All fields are safe for concurrent use;
// a single Metrics is shared by every worker of a pool. Latency
// histograms are in nanoseconds.
type Metrics struct {
	// Ingestion.
	ChunksIn  Counter // chunks accepted into the pipeline
	SamplesIn Counter // IQ samples accepted
	PhasesIn  Counter // phase values accepted directly (phase-kind input)
	Drops     Counter // chunks rejected because a worker queue was full

	// DSP / decode stages.
	PhasesProduced Counter // phases produced by the front-end stage
	Locks          Counter // preamble fold locks
	FramesDecoded  Counter // frames that passed the checksum
	FramesFailed   Counter // locks that failed to decode
	StreamsOpened  Counter // distinct streams a worker has seen
	StreamsFlushed Counter // streams flushed (end-of-stream markers)

	// Reliability (ARQ) stage — incremented by internal/reliable
	// sessions sharing the registry.
	Retransmits   Counter // data frames sent again after a loss signal
	Timeouts      Counter // retransmit timer expiries (silent flights)
	Escalations   Counter // plain → Hamming-coded mode switches
	Deescalations Counter // coded → plain mode switches after recovery
	DupDrops      Counter // duplicate/out-of-order frames dropped at the receiver
	AcksLost      Counter // acknowledgments lost on the reverse channel
	FramesLost    Counter // data frames lost or corrupted by the channel

	// Per-stage latency, nanoseconds per chunk.
	PhaseNanos  *Histogram // IQ→phase front-end stage
	DecodeNanos *Histogram // FrameMachine stage
	ChunkNanos  *Histogram // whole chunk, queue-exit to done
}

// latencyBounds are the fixed histogram edges in nanoseconds:
// 1 µs … 1 s in decades.
func latencyBounds() []float64 {
	return []float64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
}

// NewMetrics returns a zeroed registry.
func NewMetrics() *Metrics {
	return &Metrics{
		PhaseNanos:  NewHistogram(latencyBounds()...),
		DecodeNanos: NewHistogram(latencyBounds()...),
		ChunkNanos:  NewHistogram(latencyBounds()...),
	}
}

// Snapshot is the JSON-marshalable point-in-time state of the registry;
// its field names are the pipeline's stable metrics schema (see
// DESIGN.md).
type Snapshot struct {
	ChunksIn       uint64 `json:"chunks_in"`
	SamplesIn      uint64 `json:"samples_in"`
	PhasesIn       uint64 `json:"phases_in"`
	Drops          uint64 `json:"drops"`
	PhasesProduced uint64 `json:"phases_produced"`
	Locks          uint64 `json:"locks"`
	FramesDecoded  uint64 `json:"frames_decoded"`
	FramesFailed   uint64 `json:"frames_failed"`
	StreamsOpened  uint64 `json:"streams_opened"`
	StreamsFlushed uint64 `json:"streams_flushed"`

	Retransmits   uint64 `json:"retransmits"`
	Timeouts      uint64 `json:"timeouts"`
	Escalations   uint64 `json:"escalations"`
	Deescalations uint64 `json:"deescalations"`
	DupDrops      uint64 `json:"dup_drops"`
	AcksLost      uint64 `json:"acks_lost"`
	FramesLost    uint64 `json:"frames_lost"`

	PhaseNanos  HistogramSnapshot `json:"phase_ns"`
	DecodeNanos HistogramSnapshot `json:"decode_ns"`
	ChunkNanos  HistogramSnapshot `json:"chunk_ns"`
}

// Snapshot captures the current state of every instrument.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		ChunksIn:       m.ChunksIn.Load(),
		SamplesIn:      m.SamplesIn.Load(),
		PhasesIn:       m.PhasesIn.Load(),
		Drops:          m.Drops.Load(),
		PhasesProduced: m.PhasesProduced.Load(),
		Locks:          m.Locks.Load(),
		FramesDecoded:  m.FramesDecoded.Load(),
		FramesFailed:   m.FramesFailed.Load(),
		StreamsOpened:  m.StreamsOpened.Load(),
		StreamsFlushed: m.StreamsFlushed.Load(),
		Retransmits:    m.Retransmits.Load(),
		Timeouts:       m.Timeouts.Load(),
		Escalations:    m.Escalations.Load(),
		Deescalations:  m.Deescalations.Load(),
		DupDrops:       m.DupDrops.Load(),
		AcksLost:       m.AcksLost.Load(),
		FramesLost:     m.FramesLost.Load(),
		PhaseNanos:     m.PhaseNanos.Snapshot(),
		DecodeNanos:    m.DecodeNanos.Snapshot(),
		ChunkNanos:     m.ChunkNanos.Snapshot(),
	}
}

// MarshalJSON renders the snapshot of the registry.
func (m *Metrics) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.Snapshot())
}
