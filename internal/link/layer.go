package link

import "symbee/internal/core"

// Event is one occurrence on one stream: a preamble lock, a decoded
// frame, or a decode failure. It wraps core.StreamEvent with the stream
// identity so multi-stream consumers (the pool, scenario harnesses) can
// demultiplex.
type Event struct {
	Stream uint64
	core.StreamEvent
}

// LayerStats is the per-layer accounting every stage reports through
// the Layer contract: units in, units out, and failures. The unit is
// the layer's natural quantum (IQ samples for the front-end, phase
// values for phase layers and the frame machine, events for sinks).
type LayerStats struct {
	// Name identifies the layer ("frontend", "frame", "collector", ...).
	Name string `json:"name"`
	// In counts units consumed.
	In uint64 `json:"in"`
	// Out counts units produced (events emitted, for the frame layer
	// and sinks).
	Out uint64 `json:"out"`
	// Errs counts processing failures.
	Errs uint64 `json:"errs"`
}

// Layer is the contract every stage of a Stack satisfies. A layer is
// owned by one goroutine (its stack); the typed Process method lives on
// the stage kind (PhaseLayer, EventLayer — the front-end and frame
// machine stages are built in, selected by Spec).
type Layer interface {
	// Name identifies the layer in stats and diagnostics.
	Name() string
	// Flush forces any buffered state downstream at end-of-stream.
	Flush() error
	// Close releases the layer's resources; a closed layer rejects
	// further input.
	Close() error
	// Stats reports the layer's input/output accounting.
	Stats() LayerStats
}

// PhaseLayer is a stage that transforms phase chunks between the
// front-end and the frame machine — SFO resampling correction, phase
// unwrap experiments, scenario-specific probes. The returned slice may
// be in (in-place transform) or a layer-owned buffer valid until the
// next call; it must not allocate per chunk in steady state.
type PhaseLayer interface {
	Layer
	ProcessPhases(in []float64) ([]float64, error)
}

// EventLayer is a stage that consumes decode events at the top of the
// stack: application sinks, ARQ delivery, coded-mode fallbacks,
// per-sender accounting.
type EventLayer interface {
	Layer
	OnEvent(ev Event) error
}

// Collector is the default application sink: it queues events for the
// owner to Drain, reusing one backing array so the steady-state push
// path stays allocation-free.
type Collector struct {
	pending []Event
	stats   LayerStats
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{stats: LayerStats{Name: "collector"}}
}

// Name implements Layer.
func (c *Collector) Name() string { return "collector" }

// OnEvent implements EventLayer: the event is appended to the pending
// queue.
//
//symbee:hotpath
func (c *Collector) OnEvent(ev Event) error {
	c.pending = append(c.pending, ev)
	c.stats.In++
	c.stats.Out++
	return nil
}

// Drain returns the events collected since the last call. The returned
// slice is the collector's internal queue and is reused: it stays valid
// only until the next event lands. Consumers that buffer events across
// pushes must copy the elements out (Frame pointers remain valid
// indefinitely).
func (c *Collector) Drain() []Event {
	out := c.pending
	c.pending = c.pending[:0]
	return out
}

// Flush implements Layer; a collector holds nothing back.
func (c *Collector) Flush() error { return nil }

// Close implements Layer.
func (c *Collector) Close() error { return nil }

// Stats implements Layer.
func (c *Collector) Stats() LayerStats { return c.stats }

// Callback adapts a function to an EventLayer — the streaming pool's
// OnEvent hook and test probes use it.
type Callback struct {
	fn    func(Event)
	stats LayerStats
}

// NewCallback returns an event layer invoking fn for every event. A nil
// fn yields a drop-everything sink.
func NewCallback(fn func(Event)) *Callback {
	return &Callback{fn: fn, stats: LayerStats{Name: "callback"}}
}

// Name implements Layer.
func (c *Callback) Name() string { return "callback" }

// OnEvent implements EventLayer.
func (c *Callback) OnEvent(ev Event) error {
	c.stats.In++
	if c.fn != nil {
		c.fn(ev)
		c.stats.Out++
	}
	return nil
}

// Flush implements Layer.
func (c *Callback) Flush() error { return nil }

// Close implements Layer.
func (c *Callback) Close() error { return nil }

// Stats implements Layer.
func (c *Callback) Stats() LayerStats { return c.stats }
