// Package link is the composable SymBee receive stack: one explicit
// Layer contract (typed input/output, per-layer stats) and a Stack
// composer that assembles the paper's layered pipeline — PHY sample
// source → phase-extraction kernel → preamble scan / frame machine →
// optional coding/ARQ hooks → application sink — from reusable stages.
//
// Before this package the repository wired that pipeline three times:
// the batch decoder (internal/core), the streaming worker pool
// (internal/stream) and the reliable-delivery harness
// (internal/reliable) each assembled DSP, framing and metrics slightly
// differently. Those are now three presets of the same Stack:
//
//   - NewBatch: unbounded machine history, whole-capture semantics —
//     bit-identical to the historical Decoder.DecodeFrame batch entry
//     (the golden-trace equivalence tests pin this).
//   - NewStreaming: IQ front-end plus bounded history, the per-stream
//     configuration internal/stream runs one of per pool shard.
//   - NewReliable: phase-fed bounded-history stack the ARQ SimLink
//     drives over internal/channel, with the decode-gate pad helper.
//
// The Stack's push path keeps the repository's zero-alloc steady-state
// guarantee (//symbee:hotpath roots, pinned by AllocsPerRun tests), and
// every stage reports into the one Metrics registry that the streaming
// pool and the reliability layer previously kept separate copies of.
//
// On top of the unified stack, multisender.go provides the shared-medium
// scenario layer: N seeded ZigBee senders with independent CFO/SFO,
// timing and gain offsets superposed into a single WiFi receiver
// capture, with per-sender delivery and collision accounting.
package link
