package link

import (
	"errors"
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/wifi"
)

// testCapture modulates one framed message and returns the receiver-side
// phase stream (baseband-aligned) plus the expected frame.
func testCapture(t *testing.T, p core.Params, seq byte, data string) ([]float64, *core.Frame) {
	t.Helper()
	phy, err := core.NewLink(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := &core.Frame{Seq: seq, Data: []byte(data)}
	sig, err := phy.TransmitFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	return phy.Phases(sig), want
}

// testIQCapture modulates one framed message through the default noisy
// channel scenario and returns the IQ capture plus the expected frame.
func testIQCapture(t *testing.T, p core.Params, seq byte, data string) ([]complex128, *core.Frame) {
	t.Helper()
	phy, err := core.NewLink(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := &core.Frame{Seq: seq, Data: []byte(data)}
	sig, err := phy.TransmitFrame(want)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	med, err := channel.NewMedium(channel.Config{
		SampleRate: p.SampleRate,
		SNRdB:      15,
		FreqOffset: channel.DefaultFreqOffset,
		Pad:        2000,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return med.Transmit(sig), want
}

func frameEqual(a, b *core.Frame) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Seq != b.Seq || a.Flags != b.Flags || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestDecodeBatchMatchesDecodeFrame pins the tentpole equivalence: the
// Stack batch preset and the historical core.Decoder.DecodeFrame are the
// same decoder — identical frames on success, identical error classes on
// failure.
func TestDecodeBatchMatchesDecodeFrame(t *testing.T) {
	p := core.Params20()
	dec, err := core.NewDecoder(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	phases, want := testCapture(t, p, 3, "hello link")
	ref, refErr := dec.DecodeFrame(phases)
	got, gotErr := DecodeBatch(dec, phases)
	if refErr != nil || gotErr != nil {
		t.Fatalf("decode errors: ref %v, stack %v", refErr, gotErr)
	}
	if !frameEqual(ref, got) || !frameEqual(got, want) {
		t.Fatalf("frames differ: ref %+v, stack %+v, want %+v", ref, got, want)
	}

	// Pure noise: both paths must agree there is no preamble.
	rng := rand.New(rand.NewSource(11))
	noise := make([]float64, 40_000)
	for i := range noise {
		noise[i] = rng.NormFloat64() * 0.3
	}
	_, refErr = dec.DecodeFrame(noise)
	_, gotErr = DecodeBatch(dec, noise)
	if !errors.Is(refErr, core.ErrNoPreamble) || !errors.Is(gotErr, core.ErrNoPreamble) {
		t.Fatalf("noise decode: ref %v, stack %v, want both ErrNoPreamble", refErr, gotErr)
	}
}

// TestStreamingChunkInvariance pins the streaming preset's defining
// property: the same capture decodes to the same frame regardless of how
// it is chunked on the way in.
func TestStreamingChunkInvariance(t *testing.T) {
	p := core.Params20()
	iq, want := testIQCapture(t, p, 9, "chunks")
	dec, err := core.NewDecoder(p, wifi.CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 7, 64, 1024, len(iq)} {
		st, err := NewStreaming(dec, 42, nil)
		if err != nil {
			t.Fatal(err)
		}
		var frames []*core.Frame
		collect := func() {
			for _, ev := range st.Drain() {
				if ev.Stream != 42 {
					t.Fatalf("chunk %d: event stream %d, want 42", chunk, ev.Stream)
				}
				if ev.Kind == core.EventFrame {
					frames = append(frames, ev.Frame)
				}
			}
		}
		for off := 0; off < len(iq); off += chunk {
			end := off + chunk
			if end > len(iq) {
				end = len(iq)
			}
			if err := st.PushIQ(iq[off:end]); err != nil {
				t.Fatal(err)
			}
			collect()
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		collect()
		if len(frames) != 1 || !frameEqual(frames[0], want) {
			t.Fatalf("chunk %d: got %d frame(s) %+v, want 1 × %+v", chunk, len(frames), frames, want)
		}
	}
}

// countingPhaseLayer is a pass-through PhaseLayer recording traffic.
type countingPhaseLayer struct {
	stats LayerStats
}

func (l *countingPhaseLayer) Name() string      { return "counting" }
func (l *countingPhaseLayer) Flush() error      { return nil }
func (l *countingPhaseLayer) Close() error      { return nil }
func (l *countingPhaseLayer) Stats() LayerStats { return l.stats }
func (l *countingPhaseLayer) ProcessPhases(in []float64) ([]float64, error) {
	l.stats.In += uint64(len(in))
	l.stats.Out += uint64(len(in))
	return in, nil
}

// TestStackLayersAndStats exercises a custom assembly: a pass-through
// phase layer and a callback sink, with per-layer accounting visible
// through LayerStats.
func TestStackLayersAndStats(t *testing.T) {
	p := core.Params20()
	phases, want := testCapture(t, p, 1, "layers")
	dec, err := core.NewDecoder(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	probe := &countingPhaseLayer{stats: LayerStats{Name: "counting"}}
	var seen []Event
	cb := NewCallback(func(ev Event) { seen = append(seen, ev) })
	st, err := New(Spec{
		Decoder: dec,
		Batch:   true,
		Stream:  5,
		Phase:   []PhaseLayer{probe},
		Sinks:   []EventLayer{cb},
		Metrics: NewMetrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PushPhases(phases); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	var frame *core.Frame
	for _, ev := range st.Drain() {
		if ev.Kind == core.EventFrame {
			frame = ev.Frame
		}
	}
	if !frameEqual(frame, want) {
		t.Fatalf("collector frame %+v, want %+v", frame, want)
	}
	var cbFrame *core.Frame
	for _, ev := range seen {
		if ev.Stream != 5 {
			t.Fatalf("callback event stream %d, want 5", ev.Stream)
		}
		if ev.Kind == core.EventFrame {
			cbFrame = ev.Frame
		}
	}
	if !frameEqual(cbFrame, want) {
		t.Fatalf("callback frame %+v, want %+v", cbFrame, want)
	}
	stats := st.LayerStats()
	byName := map[string]LayerStats{}
	for _, ls := range stats {
		byName[ls.Name] = ls
	}
	if got := byName["counting"].In; got != uint64(len(phases)) {
		t.Errorf("phase layer saw %d phases, want %d", got, len(phases))
	}
	if byName["frame"].In != uint64(len(phases)) {
		t.Errorf("frame layer saw %d phases, want %d", byName["frame"].In, len(phases))
	}
	if byName["frame"].Out == 0 || byName["collector"].In != byName["frame"].Out {
		t.Errorf("event accounting: frame out %d, collector in %d",
			byName["frame"].Out, byName["collector"].In)
	}
	if byName["callback"].In != byName["collector"].In {
		t.Errorf("sink fan-out unequal: callback %d, collector %d",
			byName["callback"].In, byName["collector"].In)
	}
}

// TestStackResetReuse pins the harness pattern: one batch stack, Reset
// between captures, no cross-capture state leakage.
func TestStackResetReuse(t *testing.T) {
	p := core.Params20()
	dec, err := core.NewDecoder(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewBatch(dec, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		phases, want := testCapture(t, p, byte(i), "capture")
		st.Reset()
		if err := st.PushPhases(phases); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		var frame *core.Frame
		for _, ev := range st.Drain() {
			if ev.Kind == core.EventFrame {
				frame = ev.Frame
			}
		}
		if !frameEqual(frame, want) {
			t.Fatalf("capture %d: frame %+v, want %+v", i, frame, want)
		}
	}
}

// TestStackErrors pins the error surface: IQ into a phase-fed stack,
// pushes after Close, and the nil-decoder spec.
func TestStackErrors(t *testing.T) {
	p := core.Params20()
	dec, err := core.NewDecoder(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewBatch(dec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PushIQ(make([]complex128, 64)); !errors.Is(err, ErrNoFrontEnd) {
		t.Errorf("PushIQ on phase-fed stack: %v, want ErrNoFrontEnd", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.PushPhases(make([]float64, 16)); !errors.Is(err, ErrClosed) {
		t.Errorf("push after Close: %v, want ErrClosed", err)
	}
	st.Reset()
	if err := st.PushPhases(make([]float64, 16)); err != nil {
		t.Errorf("push after Reset: %v, want nil", err)
	}
	if _, err := New(Spec{}); err == nil {
		t.Error("New with nil decoder succeeded, want error")
	}
}

// TestStackMetrics checks the one-registry contract: pushing a capture
// through an instrumented stack lands in the shared counters.
func TestStackMetrics(t *testing.T) {
	p := core.Params20()
	iq, _ := testIQCapture(t, p, 2, "metrics")
	dec, err := core.NewDecoder(p, wifi.CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMetrics()
	st, err := NewStreaming(dec, 0, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PushIQ(iq); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	st.Drain()
	snap := m.Snapshot()
	if snap.SamplesIn != uint64(len(iq)) {
		t.Errorf("SamplesIn %d, want %d", snap.SamplesIn, len(iq))
	}
	if snap.PhasesProduced == 0 {
		t.Error("PhasesProduced is zero")
	}
	if snap.FramesDecoded != 1 {
		t.Errorf("FramesDecoded %d, want 1", snap.FramesDecoded)
	}
}
