package link

import "time"

// TimedKind discriminates timed events on a duplex link's clock.
type TimedKind int

const (
	// TimedAck is a cumulative acknowledgment arriving on the reverse
	// channel.
	TimedAck TimedKind = iota
)

// TimedEvent is one timed occurrence on a duplex link: a frame or ack
// stamped with its generation and arrival instants on the shared
// virtual clock. Where Event carries what was decoded, TimedEvent
// carries when — the downlink stack's stages trade in these.
type TimedEvent struct {
	// Kind discriminates the event.
	Kind TimedKind
	// Seq is the event's sequence content (for TimedAck, the cumulative
	// next-expected sequence number).
	Seq byte
	// Gen is when the event was generated on the link clock — for an
	// ack, the end of the forward frame that triggered it. It stands in
	// for the token a real downlink would carry, and lets the consumer
	// tell a fresh ack from a stale one that spent its latency in
	// flight.
	Gen time.Duration
	// At is when the event finished arriving (its last reverse-channel
	// symbol landed).
	At time.Duration
}

// TimedLayer is a stage that consumes timed frame/ack events at the top
// of a downlink stack: ARQ ack delivery, latency probes, per-scheme
// accounting. It is the timed counterpart of EventLayer.
type TimedLayer interface {
	Layer
	OnTimed(ev TimedEvent) error
}

// TimedCollector is the default downlink sink: it queues timed events
// for the owner to Drain, reusing one backing array so the steady-state
// push path stays allocation-free.
type TimedCollector struct {
	pending []TimedEvent
	stats   LayerStats
}

// NewTimedCollector returns an empty collector.
func NewTimedCollector() *TimedCollector {
	return &TimedCollector{stats: LayerStats{Name: "timedsink"}}
}

// Name implements Layer.
func (c *TimedCollector) Name() string { return "timedsink" }

// OnTimed implements TimedLayer: the event is appended to the pending
// queue.
func (c *TimedCollector) OnTimed(ev TimedEvent) error {
	c.pending = append(c.pending, ev)
	c.stats.In++
	c.stats.Out++
	return nil
}

// Drain returns the events collected since the last call. The returned
// slice is the collector's internal queue and is reused: it stays valid
// only until the next event lands; consumers that buffer across drains
// must copy the elements out.
func (c *TimedCollector) Drain() []TimedEvent {
	out := c.pending
	c.pending = c.pending[:0]
	return out
}

// Flush implements Layer; a collector holds nothing back.
func (c *TimedCollector) Flush() error { return nil }

// Close implements Layer.
func (c *TimedCollector) Close() error { return nil }

// Stats implements Layer.
func (c *TimedCollector) Stats() LayerStats { return c.stats }

// TimedCallback adapts a function to a TimedLayer — scenario probes and
// tests use it.
type TimedCallback struct {
	fn    func(TimedEvent)
	stats LayerStats
}

// NewTimedCallback returns a timed layer invoking fn for every event. A
// nil fn yields a drop-everything sink.
func NewTimedCallback(fn func(TimedEvent)) *TimedCallback {
	return &TimedCallback{fn: fn, stats: LayerStats{Name: "timedcallback"}}
}

// Name implements Layer.
func (c *TimedCallback) Name() string { return "timedcallback" }

// OnTimed implements TimedLayer.
func (c *TimedCallback) OnTimed(ev TimedEvent) error {
	c.stats.In++
	if c.fn != nil {
		c.fn(ev)
		c.stats.Out++
	}
	return nil
}

// Flush implements Layer.
func (c *TimedCallback) Flush() error { return nil }

// Close implements Layer.
func (c *TimedCallback) Close() error { return nil }

// Stats implements Layer.
func (c *TimedCallback) Stats() LayerStats { return c.stats }
