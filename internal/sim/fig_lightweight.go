package sim

import (
	"time"

	"symbee/internal/core"
	"symbee/internal/zigbee"
)

// LightweightDecoding quantifies §IV-C's "extremely light-weight
// decoding" claim: the marginal cost of SymBee reception given that the
// WiFi idle listening already computed the phase stream, versus what a
// from-scratch software ZigBee receiver would spend demodulating the
// same packet. SymBee's marginal work is sign checks over recycled
// phases; the SDR alternative is chip matched-filtering plus 16-way
// symbol correlation over 10× oversampled IQ.
func LightweightDecoding(opts Options) (*Table, error) {
	const nBits = 100
	reps := opts.packets(200)
	p := core.Params20()
	link, err := core.NewLink(p, 0)
	if err != nil {
		return nil, err
	}
	bits := AlternatingBits(nBits)
	sig, err := link.TransmitBits(bits)
	if err != nil {
		return nil, err
	}
	phases := link.Phases(sig) // computed by idle listening regardless

	demod, err := zigbee.NewDemodulator(p.SampleRate)
	if err != nil {
		return nil, err
	}

	// SymBee marginal decode: capture + majority voting on phases the
	// front-end already produced.
	start := wallNow()
	for i := 0; i < reps; i++ {
		if _, err := link.Decoder().DecodeBits(phases, nBits); err != nil {
			return nil, err
		}
	}
	symbeePerPkt := wallNow().Sub(start) / time.Duration(reps)

	// Sync-only and vote-only breakdown.
	anchor, err := link.Decoder().CapturePreamble(phases)
	if err != nil {
		return nil, err
	}
	start = wallNow()
	for i := 0; i < reps; i++ {
		if _, err := link.Decoder().DecodeSyncBits(phases, anchor, nBits); err != nil {
			return nil, err
		}
	}
	votePerPkt := wallNow().Sub(start) / time.Duration(reps)

	// Full SDR ZigBee demodulation of the same packet (the gateway
	// alternative: an extra radio pipeline running at all times).
	nSymbols := len(sig)/(32*p.BitPeriod/64) - 1
	start = wallNow()
	for i := 0; i < reps; i++ {
		if _, err := demod.DemodulateSymbols(sig, 0, nSymbols); err != nil {
			return nil, err
		}
	}
	sdrPerPkt := wallNow().Sub(start) / time.Duration(reps)

	t := &Table{
		Title:   "Lightweight decoding — marginal cost of SymBee reception (§IV-C)",
		Note:    "per 100-bit packet, single core; the phase stream is free (idle listening\ncomputes it to detect WiFi packets anyway), so SymBee adds only fold + voting",
		Columns: []string{"receiver path", "time/packet", "time/bit", "vs SymBee"},
	}
	rows := []struct {
		name string
		d    time.Duration
	}{
		{"SymBee voting only (synchronized)", votePerPkt},
		{"SymBee capture + voting", symbeePerPkt},
		{"full SDR ZigBee demodulation", sdrPerPkt},
	}
	base := float64(symbeePerPkt)
	for _, r := range rows {
		t.AddRow(r.name, r.d.String(), (r.d / nBits).String(), float64(r.d)/base)
	}
	return t, nil
}
