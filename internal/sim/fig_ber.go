package sim

//symbee:ignore-file rngstream -- the per-point seed arithmetic in the figure drivers is part of each figure's published definition: the paper artifacts were generated from these exact streams, and rederiving them through splitmix would silently regenerate different curves. New drivers must split streams via internal/splitmix.

import (
	"math"
	"math/rand"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/dsp"
	"symbee/internal/wifi"
	"symbee/internal/zigbee"
)

// MeasurePrEpsilon estimates Prε — the probability that one stable
// phase value falls on the wrong side of the decision boundary — at the
// given full-band SNR, by transmitting long runs of both codewords and
// inspecting the known stable windows.
func MeasurePrEpsilon(snrDB float64, packets int, seed int64) (float64, error) {
	p := core.Params20()
	mod, err := zigbee.NewModulator(p.SampleRate)
	if err != nil {
		return 0, err
	}
	fe, err := wifi.NewFrontEnd(p.SampleRate)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, 60)
	for i := range payload {
		if i%2 == 0 {
			payload[i] = core.Bit0Byte
		} else {
			payload[i] = core.Bit1Byte
		}
	}
	sig := mod.ModulateBytes(payload, zigbee.OrderMSBFirst)
	wrong, total := 0, 0
	for pk := 0; pk < packets; pk++ {
		med, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      snrDB,
			FreqOffset: channel.DefaultFreqOffset,
		}, rng)
		if err != nil {
			return 0, err
		}
		ph := fe.PhaseStream(med.Transmit(sig))
		dsp.CompensatePhases(ph, wifi.CanonicalCompensation)
		// Byte k's stable run occupies [k·640+270, k·640+350): sample
		// the 80 interior values (avoiding run-edge jitter).
		for k := 1; k < len(payload)-1; k++ {
			bit0 := k%2 == 0
			for j := 270; j < 350; j++ {
				v := ph[k*640+j]
				if bit0 != (v >= 0) {
					wrong++
				}
				total++
			}
		}
	}
	return float64(wrong) / float64(total), nil
}

// EquationBER evaluates the paper's Eq. 2: the probability that a
// majority vote over `window` stable values fails when each value errs
// independently with probability prEps.
func EquationBER(prEps float64, window int) float64 {
	// Sum_{l=window/2}^{window} C(l,window) prEps^l (1-prEps)^(window-l)
	// computed in log space for numerical stability.
	if prEps <= 0 {
		return 0
	}
	if prEps >= 1 {
		return 1
	}
	logP, log1P := math.Log(prEps), math.Log1p(-prEps)
	var sum float64
	for l := window / 2; l <= window; l++ {
		logC := logChoose(window, l)
		sum += math.Exp(logC + float64(l)*logP + float64(window-l)*log1P)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

func logChoose(n, k int) float64 {
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// Fig12BER reproduces the numerical BER-vs-SNR study (Fig. 12): for a
// sweep of SNRs it reports the measured Prε, the Eq. 2 closed-form BER
// and the BER measured end to end with synchronized decoding. Our SNR
// axis is full-band per-sample SNR, ≈5 dB below the paper's testbed
// axis (EXPERIMENTS.md records the calibration).
func Fig12BER(opts Options) (*Table, error) {
	return fig12BER(opts, core.Params20(), "Fig. 12 — BER vs SNR (20 Msps)")
}

// Fig12BER40MHz is the §VI-B variant at 40 Msps: doubled stable windows
// tolerate twice the errors, improving BER at equal SNR.
func Fig12BER40MHz(opts Options) (*Table, error) {
	return fig12BER(opts, core.Params40(), "Fig. 12 (40 MHz variant, §VI-B) — BER vs SNR")
}

func fig12BER(opts Options, p core.Params, title string) (*Table, error) {
	packets := opts.packets(40)
	bits := AlternatingBits(50)
	t := &Table{
		Title:   title,
		Note:    "Prε measured on stable windows; Eq.2 = closed-form majority vote;\nmeasured = end-to-end sync decoding (captured packets); capture = preamble capture rate",
		Columns: []string{"SNR (dB)", "Prε", "BER (Eq. 2)", "BER (measured)", "capture"},
	}
	for _, snr := range []float64{-10, -8, -6, -4, -2, 0, 2, 4, 6} {
		prEps, err := MeasurePrEpsilon(snr, (packets+9)/10, opts.Seed)
		if err != nil {
			return nil, err
		}
		stats, err := Run(RunSpec{
			Params:  p,
			Bits:    bits,
			Packets: packets,
			Seed:    opts.Seed + int64(snr*100),
			ConfigFor: func(rng *rand.Rand) channel.Config {
				return channel.Config{
					SampleRate: p.SampleRate,
					SNRdB:      snr,
					FreqOffset: channel.DefaultFreqOffset,
					Pad:        512,
				}
			},
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(snr, prEps, EquationBER(prEps, p.StableLen), stats.BER(), stats.CaptureRate())
	}
	return t, nil
}
