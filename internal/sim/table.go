// Package sim is the experiment harness: it reruns every table and
// figure of the paper's evaluation over the simulated testbed and
// renders the resulting series. Each figure has a constructor
// (Fig12BER, Fig13Throughput, ...) returning a Table; the registry maps
// the experiment identifiers used by cmd/symbeebench onto them.
package sim

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a titled grid of columns and rows.
type Table struct {
	// Title names the experiment ("Fig. 13 — Throughput ...").
	Title string
	// Note carries methodology remarks printed under the title.
	Note string
	// Columns are the header labels.
	Columns []string
	// Rows hold cells already formatted as strings.
	Rows [][]string
}

// AddRow appends a row, formatting each cell with %v (floats get
// 4 significant digits).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the table as aligned ASCII text.
func (t *Table) Render() string {
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			b.WriteString("  # ")
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header included).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
