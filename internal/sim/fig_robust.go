package sim

//symbee:ignore-file rngstream -- the per-point seed arithmetic in the figure drivers is part of each figure's published definition: the paper artifacts were generated from these exact streams, and rederiving them through splitmix would silently regenerate different curves. New drivers must split streams via internal/splitmix.

import (
	"math/rand"

	"symbee/internal/channel"
	"symbee/internal/coding"
	"symbee/internal/core"
	"symbee/internal/dsp"
	"symbee/internal/wifi"
)

// Fig11Folding reproduces the folding study: preamble capture rate with
// the fold-based detector versus the availability of plain
// (unsynchronized) decoding, across low SNRs.
func Fig11Folding(opts Options) (*Table, error) {
	packets := opts.packets(40)
	p := core.Params20()
	bits := AlternatingBits(20)
	t := &Table{
		Title:   "Fig. 11 — Preamble capture by folding vs plain decoding under noise",
		Note:    "plain usable = unsync detector recovers at least as many bits as were sent",
		Columns: []string{"SNR (dB)", "capture rate (folding)", "plain decoding usable"},
	}
	for _, snr := range []float64{2, 0, -2, -4, -6} {
		captured, plainUsable := 0, 0
		rng := rand.New(rand.NewSource(opts.Seed + int64(snr*10)))
		link, err := core.NewLink(p, wifi.CanonicalCompensation)
		if err != nil {
			return nil, err
		}
		sig, err := link.TransmitBits(bits)
		if err != nil {
			return nil, err
		}
		for i := 0; i < packets; i++ {
			med, err := channel.NewMedium(channel.Config{
				SampleRate: p.SampleRate,
				SNRdB:      snr,
				FreqOffset: channel.DefaultFreqOffset,
				Pad:        512,
			}, rng)
			if err != nil {
				return nil, err
			}
			phases := link.Phases(med.Transmit(sig))
			if _, err := link.Decoder().CapturePreamble(phases); err == nil {
				captured++
			}
			if det := link.Decoder().DecodeUnsync(phases); len(det) >= len(bits) {
				plainUsable++
			}
		}
		t.AddRow(snr, float64(captured)/float64(packets), float64(plainUsable)/float64(packets))
	}
	return t, nil
}

// Fig20Interference reproduces the single-burst robustness example: a
// SymBee packet of all-'1' bits is hit by a 270 µs WiFi frame at 0 dB
// SINR; the stable windows under the burst shrink but stay above the
// majority threshold, so every bit still decodes (Fig. 20).
func Fig20Interference(opts Options) (*Table, error) {
	p := core.Params20()
	rng := rand.New(rand.NewSource(opts.Seed))
	link, err := core.NewLink(p, 0)
	if err != nil {
		return nil, err
	}
	bits := make([]byte, 20) // all '1' as in the paper's example
	for i := range bits {
		bits[i] = 1
	}
	sig, err := link.TransmitBits(bits)
	if err != nil {
		return nil, err
	}
	tx := wifi.NewTransmitter(rng)
	burst, err := tx.FrameForDuration(270e-6)
	if err != nil {
		return nil, err
	}
	// Land the burst in the middle of the data region.
	offset := len(sig)/2 - len(burst)/2
	mixed := channel.MixAtSINR(sig, burst, offset, 0)
	channel.AddAWGN(mixed, dsp.Power(sig)/dsp.FromDB(10), rng)

	phases := link.Phases(mixed)
	dec := link.Decoder()
	anchor, err := dec.CapturePreamble(phases)
	if err != nil {
		return nil, err
	}
	margins, err := dec.SyncBitMargins(phases, anchor, len(bits))
	if err != nil {
		return nil, err
	}
	got, err := dec.DecodeSyncBits(phases, anchor, len(bits))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig. 20 — SymBee packet (all bits '1') hit by a 270 µs WiFi burst at 0 dB SINR",
		Note:    "margin = stable values above the boundary; bit 1 decodes while margin < τ_sync = 42;\nthe burst corrupts a stretch of windows but not past the majority threshold",
		Columns: []string{"bit", "margin (of 84)", "decoded", "correct"},
	}
	for i := range bits {
		t.AddRow(i, margins[i], got[i], got[i] == bits[i])
	}
	return t, nil
}

// Fig21Hamming reproduces the trace-driven interference sweep: BER
// versus SINR with and without Hamming(7,4) link-layer coding.
func Fig21Hamming(opts Options) (*Table, error) {
	packets := opts.packets(40)
	p := core.Params20()
	dataBits := AlternatingBits(48)
	coded := coding.HammingEncodeBits(dataBits) // 84 bits
	t := &Table{
		Title:   "Fig. 21 — BER vs SINR, with and without Hamming(7,4)",
		Note:    "trace-driven: clean SymBee capture mixed with 802.11g frames at the target SINR;\nbackground SNR fixed at 10 dB",
		Columns: []string{"SINR (dB)", "BER uncoded", "BER Hamming(7,4)"},
	}
	link, err := core.NewLink(p, 0)
	if err != nil {
		return nil, err
	}
	rawSig, err := link.TransmitBits(dataBits)
	if err != nil {
		return nil, err
	}
	codedSig, err := link.TransmitBits(coded)
	if err != nil {
		return nil, err
	}
	for _, sinr := range []float64{-10, -7.5, -5, -2.5, 0, 2.5, 5, 7.5, 10} {
		rng := rand.New(rand.NewSource(opts.Seed + int64(sinr*100)))
		tx := wifi.NewTransmitter(rng)
		uncodedErr, uncodedTot := 0, 0
		codedErr, codedTot := 0, 0
		for i := 0; i < packets; i++ {
			burst, err := tx.FrameForDuration(400e-6)
			if err != nil {
				return nil, err
			}
			// Uncoded path.
			off := rng.Intn(len(rawSig) - len(burst))
			mixed := channel.MixAtSINR(rawSig, burst, off, sinr)
			channel.AddAWGN(mixed, dsp.Power(rawSig)/dsp.FromDB(10), rng)
			if got, err := link.ReceiveBits(mixed, len(dataBits)); err == nil {
				for k := range dataBits {
					if got[k] != dataBits[k] {
						uncodedErr++
					}
				}
				uncodedTot += len(dataBits)
			}

			// Hamming-coded path.
			off = rng.Intn(len(codedSig) - len(burst))
			mixedC := channel.MixAtSINR(codedSig, burst, off, sinr)
			channel.AddAWGN(mixedC, dsp.Power(codedSig)/dsp.FromDB(10), rng)
			if got, err := link.ReceiveBits(mixedC, len(coded)); err == nil {
				decoded, _, err := coding.HammingDecodeBits(got)
				if err == nil {
					for k := range dataBits {
						if decoded[k] != dataBits[k] {
							codedErr++
						}
					}
					codedTot += len(dataBits)
				}
			}
		}
		t.AddRow(sinr, ratio(uncodedErr, uncodedTot), ratio(codedErr, codedTot))
	}
	return t, nil
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// Fig22Tau reproduces the τ sweep: false-positive and false-negative
// rates of unsynchronized detection as the tolerance grows (Fig. 22a).
func Fig22Tau(opts Options) (*Table, error) {
	packets := opts.packets(30)
	p := core.Params20()
	bits := AlternatingBits(50)
	t := &Table{
		Title:   "Fig. 22a — Unsynchronized detection: impact of τ (SNR 7 dB)",
		Note:    "F/N = transmitted bits not detected; F/P = detections at wrong positions or values,\nrelative to transmitted bits. Larger τ trades misses for spurious detections;\nthe paper balances the two at τ=10 (its SNR axis sits ≈5 dB above ours)",
		Columns: []string{"tau", "false negative", "false positive"},
	}
	for _, tau := range []int{4, 8, 12, 16, 20, 24} {
		link, err := core.NewLink(p.WithTau(tau), wifi.CanonicalCompensation)
		if err != nil {
			return nil, err
		}
		sig, err := link.TransmitBits(bits)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(opts.Seed + int64(tau)))
		missed, spurious, total := 0, 0, 0
		for i := 0; i < packets; i++ {
			med, err := channel.NewMedium(channel.Config{
				SampleRate: p.SampleRate,
				SNRdB:      7,
				FreqOffset: channel.DefaultFreqOffset,
				Pad:        512,
			}, rng)
			if err != nil {
				return nil, err
			}
			phases := link.Phases(med.Transmit(sig))
			det := link.Decoder().DecodeUnsync(phases)
			// Ground truth: preamble+data bits at known positions.
			want := append(append([]byte{}, 0, 0, 0, 0), bits...)
			anchor := med.SignalStart() + 12*p.BitPeriod/2 + 263
			matched := make([]bool, len(want))
			for _, d := range det {
				k := (d.Pos - anchor + p.BitPeriod/2) / p.BitPeriod
				if k >= 0 && k < len(want) && !matched[k] && d.Bit == want[k] &&
					absInt(d.Pos-(anchor+k*p.BitPeriod)) <= p.BitPeriod/4 {
					matched[k] = true
				} else {
					spurious++
				}
			}
			for _, ok := range matched {
				if !ok {
					missed++
				}
			}
			total += len(want)
		}
		t.AddRow(tau, ratio(missed, total), ratio(spurious, total))
	}
	return t, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Fig22Preamble reproduces the preamble ablation: BER with
// synchronized (preamble) decoding versus plain unsynchronized decoding
// at low SNR (Fig. 22b; the paper reports 27.4% → 7.6% at its −5 dB).
func Fig22Preamble(opts Options) (*Table, error) {
	packets := opts.packets(40)
	p := core.Params20()
	bits := AlternatingBits(50)
	link, err := core.NewLink(p, wifi.CanonicalCompensation)
	if err != nil {
		return nil, err
	}
	sig, err := link.TransmitBits(bits)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig. 22b — BER with vs without the SymBee preamble",
		Note:    "without preamble = sliding-window unsync detection; a sent bit counts as received\nonly if a matching detection lands within a quarter bit period of its position.\nThe paper reports 27.4% → 7.6% at its −5 dB (≈ our 0 dB)",
		Columns: []string{"SNR (dB)", "BER with preamble", "BER without preamble"},
	}
	for _, snr := range []float64{8, 6, 4, 2, 0} {
		rng := rand.New(rand.NewSource(opts.Seed + int64(snr*10)))
		syncErr, syncTot := 0, 0
		unsyncErr, unsyncTot := 0, 0
		for i := 0; i < packets; i++ {
			med, err := channel.NewMedium(channel.Config{
				SampleRate: p.SampleRate,
				SNRdB:      snr,
				FreqOffset: channel.DefaultFreqOffset,
				Pad:        512,
			}, rng)
			if err != nil {
				return nil, err
			}
			phases := link.Phases(med.Transmit(sig))

			if got, err := link.Decoder().DecodeBits(phases, len(bits)); err == nil {
				for k := range bits {
					if got[k] != bits[k] {
						syncErr++
					}
				}
				syncTot += len(bits)
			}

			// Without the preamble the receiver only has the raw
			// detections; match them positionally against the sent bits.
			det := link.Decoder().DecodeUnsync(phases)
			anchor := med.SignalStart() + 12*p.BitPeriod/2 + 263
			for k := range bits {
				pos := anchor + (k+core.PreambleBits)*p.BitPeriod
				found := false
				for _, d := range det {
					if absInt(d.Pos-pos) <= p.BitPeriod/4 {
						found = d.Bit == bits[k]
						break
					}
				}
				if !found {
					unsyncErr++
				}
			}
			unsyncTot += len(bits)
		}
		t.AddRow(snr, ratio(syncErr, syncTot), ratio(unsyncErr, unsyncTot))
	}
	return t, nil
}
