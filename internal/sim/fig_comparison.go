package sim

//symbee:ignore-file rngstream -- the per-point seed arithmetic in the figure drivers is part of each figure's published definition: the paper artifacts were generated from these exact streams, and rederiving them through splitmix would silently regenerate different curves. New drivers must split streams via internal/splitmix.

import (
	"math/rand"
	"strconv"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/ctc"
)

// Fig16Comparison reproduces the CTC comparison: SymBee against the
// five packet-level ZigBee→WiFi schemes in the same (office) setting.
// Baseline throughputs are measured end to end over the shared RSSI
// medium; SymBee's over the IQ-level link. The paper's headline is the
// 145.4× speedup over C-Morse, the packet-level state of the art.
func Fig16Comparison(opts Options) (*Table, error) {
	packets := opts.packets(60)
	rng := rand.New(rand.NewSource(opts.Seed))

	// Office conditions at short range (the C-Morse 215 bps reference
	// point was measured at 1.5 m in an office).
	office, err := channel.ByName(channel.Office)
	if err != nil {
		return nil, err
	}
	env := &ctc.InterferenceEnv{
		DutyCycle:     office.Interference.DutyCycle,
		BurstDuration: office.Interference.BurstDuration,
		INRdB:         office.Interference.INRdB,
	}

	p := core.Params20()
	symbee, err := Run(RunSpec{
		Params:  p,
		Bits:    AlternatingBits(100),
		Packets: packets,
		Seed:    opts.Seed,
		ConfigFor: func(rng *rand.Rand) channel.Config {
			return office.Config(p.SampleRate, 1.5, 0, 0, rng)
		},
	})
	if err != nil {
		return nil, err
	}
	symbeeRate := symbee.Throughput(p)

	t := &Table{
		Title:   "Fig. 16 — Throughput comparison with packet-level CTCs (office, short range)",
		Note:    "clean = interference-free medium (the published operating points);\noffice = same schemes under the office WiFi duty cycle;\nspeedup relative to clean C-Morse, the packet-level state of the art (215 bps)",
		Columns: []string{"scheme", "clean (bps)", "office (bps)", "vs C-Morse"},
	}

	var cmorseClean float64
	type row struct {
		name          string
		clean, office float64
	}
	rows := make([]row, 0, 6)
	nBits := 120
	if opts.Short {
		nBits = 40
	}
	for _, s := range ctc.All() {
		clean, err := ctc.Measure(s, nBits, 20, nil, rng)
		if err != nil {
			return nil, err
		}
		interfered, err := ctc.Measure(s, nBits, 20, env, rng)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row{s.Name(), clean.Goodput, interfered.Goodput})
		if s.Name() == "C-Morse" {
			cmorseClean = clean.Goodput
		}
	}
	rows = append(rows, row{"SymBee", symbeeRate, symbeeRate})
	for _, r := range rows {
		speedup := 0.0
		if cmorseClean > 0 {
			speedup = r.clean / cmorseClean
		}
		t.AddRow(r.name, r.clean, r.office, speedup)
	}
	return t, nil
}

// Fig17Constellation reproduces the constellation diagram: for 2500
// transmissions of bits '01' outdoors at 15 m, the number of stable
// phase values above the decision boundary per bit, histogrammed. Bit 0
// concentrates near 84 and bit 1 near 0; decoding succeeds when each
// lands on its side of 42.
func Fig17Constellation(opts Options) (*Table, error) {
	packets := opts.packets(125) // ×20 bits = 2500 bits at defaults
	sc, err := channel.ByName(channel.Outdoor)
	if err != nil {
		return nil, err
	}
	p := core.Params20()
	stats, err := Run(RunSpec{
		Params:         p,
		Bits:           AlternatingBits(20),
		Packets:        packets,
		Seed:           opts.Seed,
		CollectMargins: true,
		ConfigFor: func(rng *rand.Rand) channel.Config {
			return sc.Config(p.SampleRate, 15, 0, 0, rng)
		},
	})
	if err != nil {
		return nil, err
	}
	// Histogram margins per bit value in 7 buckets of 12.
	const buckets = 7
	hist := [2][buckets]int{}
	correct, total := 0, 0
	for i, m := range stats.Margins {
		bit := stats.MarginBits[i]
		b := m / (p.StableLen/buckets + 1)
		if b >= buckets {
			b = buckets - 1
		}
		hist[bit][b]++
		total++
		if (bit == 0) == (m >= p.TauSync) {
			correct++
		}
	}
	t := &Table{
		Title:   "Fig. 17 — Constellation: stable values above boundary per bit (outdoor, 15 m)",
		Columns: []string{"margin bucket", "bit 0 count", "bit 1 count"},
	}
	for b := 0; b < buckets; b++ {
		lo := b * (p.StableLen/buckets + 1)
		hi := lo + p.StableLen/buckets
		t.AddRow(rangeLabel(lo, hi, p.StableLen), hist[0][b], hist[1][b])
	}
	t.AddRow("decoded correctly", percent(correct, total), "")
	return t, nil
}

func rangeLabel(lo, hi, maxVal int) string {
	if hi > maxVal {
		hi = maxVal
	}
	return strconv.Itoa(lo) + "-" + strconv.Itoa(hi)
}

func percent(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return strconv.Itoa(num*100/den) + "%"
}
