package sim

//symbee:ignore-file rngstream -- the per-point seed arithmetic in the figure drivers is part of each figure's published definition: the paper artifacts were generated from these exact streams, and rederiving them through splitmix would silently regenerate different curves. New drivers must split streams via internal/splitmix.

import (
	"math/rand"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/mac"
	"symbee/internal/zigbee"
)

// Convergecast evaluates the deployment the paper motivates in §I: many
// ZigBee sensors upload to one WiFi sink. CSMA/CA contention is
// simulated at the airtime level (with the scenario's WiFi background
// occupying the medium); every cleanly delivered packet is then run
// through the PHY-level SymBee link to account for channel errors, so
// the aggregate goodput folds MAC losses and PHY losses together.
func Convergecast(opts Options) (*Table, error) {
	packetsPerNode := opts.packets(16)
	sc, err := channel.ByName(channel.Office)
	if err != nil {
		return nil, err
	}
	p := core.Params20()
	bits := AlternatingBits(100)
	airtime := zigbee.Airtime(core.PreambleBits + len(bits))

	t := &Table{
		Title:   "Convergecast — N ZigBee sensors uploading to one WiFi sink (office, 10 m)",
		Note:    "each sensor offers 10 pkt/s of 100-bit reports; CSMA/CA + PHY losses combined.\naggregate goodput is correct bits/s of wall-clock across all sensors",
		Columns: []string{"sensors", "MAC delivery", "collided", "access fail", "mean delay (ms)", "PHY ok", "goodput (kbps)"},
	}
	for _, nodes := range []int{1, 2, 4, 8, 16, 32} {
		rng := rand.New(rand.NewSource(opts.Seed + int64(nodes)))
		sim, err := mac.NewSim(mac.DefaultConfig(), rng)
		if err != nil {
			return nil, err
		}
		const rate = 10.0 // packets per second per node
		horizon := float64(packetsPerNode) / rate
		sim.AddWiFiBackground(horizon,
			sc.Interference.DutyCycle, sc.Interference.BurstDuration)
		arrivals := mac.PoissonArrivals(nodes, rate, horizon, airtime, rng)
		results := sim.Run(arrivals)
		st := mac.Summarize(results)

		// PHY pass for cleanly delivered packets.
		stats, err := Run(RunSpec{
			Params:  p,
			Bits:    bits,
			Packets: maxInt(st.Delivered, 1),
			Seed:    opts.Seed + int64(nodes)*31,
			ConfigFor: func(rng *rand.Rand) channel.Config {
				return sc.Config(p.SampleRate, 10, 0, 0, rng)
			},
		})
		if err != nil {
			return nil, err
		}
		correctBits := float64(st.Delivered) * float64(len(bits)) *
			stats.CaptureRate() * (1 - stats.BER())
		goodput := correctBits / horizon / 1000
		t.AddRow(nodes,
			float64(st.Delivered)/float64(st.Attempted),
			st.Collided,
			st.AccessFailures,
			st.MeanDelay*1000,
			stats.CaptureRate()*(1-stats.BER()),
			goodput)
	}
	return t, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
