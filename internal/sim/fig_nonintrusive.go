package sim

//symbee:ignore-file rngstream -- the per-point seed arithmetic in the figure drivers is part of each figure's published definition: the paper artifacts were generated from these exact streams, and rederiving them through splitmix would silently regenerate different curves. New drivers must split streams via internal/splitmix.

import (
	"math/rand"

	"symbee/internal/dsp"
	"symbee/internal/wifi"
	"symbee/internal/zigbee"
)

// NonIntrusiveness quantifies the paper's claim that SymBee leaves
// legacy WiFi communication intact (§I, §III-A): a WiFi frame is decoded
// while a SymBee transmission runs concurrently at increasing relative
// power. The 2 MHz ZigBee signal only grazes a handful of the 48 OFDM
// subcarriers, so WiFi BER stays near zero until the interloper gets
// within a few dB of the WiFi signal itself.
func NonIntrusiveness(opts Options) (*Table, error) {
	trials := opts.packets(20)
	rng := rand.New(rand.NewSource(opts.Seed))
	tx := wifi.NewTransmitter(rng)
	rx, err := wifi.NewReceiver()
	if err != nil {
		return nil, err
	}
	mod, err := zigbee.NewModulator(20e6)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 80)
	for i := range payload {
		if i%2 == 0 {
			payload[i] = 0x67
		} else {
			payload[i] = 0xEF
		}
	}
	symbeeSig := mod.ModulateBytes(payload, zigbee.OrderMSBFirst)

	t := &Table{
		Title:   "Non-intrusiveness — WiFi reception under a concurrent SymBee transmission",
		Note:    "WiFi frame at 20 dB SNR; SymBee power swept relative to the WiFi frame.\nEVM = RMS error vector magnitude of the equalized QPSK symbols",
		Columns: []string{"SymBee rel. power (dB)", "WiFi BER", "WiFi EVM", "frames decoded"},
	}
	const nSymbols = 6
	for _, rel := range []float64{-100, -20, -15, -10, -5, 0} {
		errs, total, decoded := 0, 0, 0
		var evmSum float64
		for i := 0; i < trials; i++ {
			bits := make([]byte, nSymbols*wifi.BitsPerOFDMSymbol)
			for k := range bits {
				bits[k] = byte(rng.Intn(2))
			}
			frame, err := tx.FrameWithBits(bits)
			if err != nil {
				return nil, err
			}
			capture := make([]complex128, len(frame)+3000)
			for k, v := range frame {
				capture[700+k] += v
			}
			if rel > -90 {
				zb := make([]complex128, len(symbeeSig))
				copy(zb, symbeeSig)
				dsp.NormalizePower(zb, dsp.FromDB(rel))
				// The ZigBee channel sits at a +3 MHz offset from the
				// WiFi center, the canonical overlap.
				dsp.RotateFrequency(zb, 3e6, 20e6, 0)
				dsp.MixInto(capture, zb, 700-rng.Intn(500))
			}
			// 20 dB SNR thermal noise (frame power ≈ 1 → noise 0.01).
			sigma := 0.0707106781 // sqrt(0.01/2) per real dimension
			for k := range capture {
				capture[k] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
			}
			got, err := rx.Receive(capture, nSymbols)
			if err != nil {
				continue
			}
			decoded++
			evmSum += got.SymbolEVM
			for k := range bits {
				if got.Bits[k] != bits[k] {
					errs++
				}
			}
			total += len(bits)
		}
		evm := 0.0
		if decoded > 0 {
			evm = evmSum / float64(decoded)
		}
		t.AddRow(rel, ratio(errs, total), evm, float64(decoded)/float64(trials))
	}
	return t, nil
}
