package sim

import (
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/core"
)

func TestTableRender(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Note:    "n1\nn2",
		Columns: []string{"a", "bb"},
	}
	tb.AddRow(1, 2.34567)
	tb.AddRow("x", "y")
	out := tb.Render()
	for _, want := range []string{"T\n", "# n1", "# n2", "a", "bb", "2.346", "x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "a,bb\n1,2.346\n") {
		t.Errorf("CSV = %q", csv)
	}
}

func TestAlternatingBits(t *testing.T) {
	bits := AlternatingBits(5)
	want := []byte{0, 1, 0, 1, 0}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits = %v", bits)
		}
	}
}

func TestOptionsPackets(t *testing.T) {
	if got := (Options{}).packets(60); got != 60 {
		t.Errorf("default = %d", got)
	}
	if got := (Options{Packets: 7}).packets(60); got != 7 {
		t.Errorf("override = %d", got)
	}
	if got := (Options{Short: true}).packets(60); got != 15 {
		t.Errorf("short = %d", got)
	}
	if got := (Options{Short: true, Packets: 8}).packets(60); got != 4 {
		t.Errorf("short small = %d", got)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(RunSpec{Params: core.Params20(), Bits: []byte{0}, Packets: 0}); err == nil {
		t.Error("expected error for zero packets")
	}
}

func TestRunCleanChannel(t *testing.T) {
	p := core.Params20()
	stats, err := Run(RunSpec{
		Params:  p,
		Bits:    AlternatingBits(20),
		Packets: 8,
		Seed:    1,
		ConfigFor: func(rng *rand.Rand) channel.Config {
			return channel.Config{
				SampleRate: p.SampleRate,
				SNRdB:      20,
				FreqOffset: channel.DefaultFreqOffset,
				Pad:        256,
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CaptureRate() != 1 {
		t.Errorf("capture rate = %v", stats.CaptureRate())
	}
	if stats.BER() != 0 {
		t.Errorf("BER = %v", stats.BER())
	}
	if got := stats.Throughput(p); math.Abs(got-31250) > 1 {
		t.Errorf("throughput = %v, want 31250", got)
	}
}

func TestRunDeterministicAcrossCalls(t *testing.T) {
	p := core.Params20()
	spec := RunSpec{
		Params:  p,
		Bits:    AlternatingBits(20),
		Packets: 6,
		Seed:    42,
		ConfigFor: func(rng *rand.Rand) channel.Config {
			return channel.Config{
				SampleRate: p.SampleRate,
				SNRdB:      rng.Float64()*4 - 2,
				FreqOffset: channel.DefaultFreqOffset,
				Pad:        256,
			}
		},
	}
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Captured != b.Captured || a.WrongBits != b.WrongBits {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestEquationBER(t *testing.T) {
	if got := EquationBER(0, 84); got != 0 {
		t.Errorf("EquationBER(0) = %v", got)
	}
	if got := EquationBER(1, 84); got != 1 {
		t.Errorf("EquationBER(1) = %v", got)
	}
	// Symmetry at 1/2: majority vote of an even window fails with
	// probability >= 1/2 at prEps = 1/2 (includes the tie).
	mid := EquationBER(0.5, 84)
	if mid < 0.5 || mid > 0.6 {
		t.Errorf("EquationBER(0.5) = %v", mid)
	}
	// Monotone in prEps.
	prev := 0.0
	for _, pe := range []float64{0.05, 0.1, 0.2, 0.3, 0.4, 0.45} {
		v := EquationBER(pe, 84)
		if v < prev {
			t.Errorf("EquationBER not monotone at %v: %v < %v", pe, v, prev)
		}
		prev = v
	}
	// The paper's design point: Prε=0.45 gives ≈20% BER; Prε=0.3 is
	// already negligible.
	if v := EquationBER(0.45, 84); v < 0.1 || v > 0.4 {
		t.Errorf("EquationBER(0.45) = %v", v)
	}
	if v := EquationBER(0.3, 84); v > 0.001 {
		t.Errorf("EquationBER(0.3) = %v", v)
	}
	// Doubling the window at equal prEps can only help.
	if EquationBER(0.4, 168) >= EquationBER(0.4, 84) {
		t.Error("168-window should beat 84-window at equal prEps")
	}
}

func TestMeasurePrEpsilonDecreasing(t *testing.T) {
	hi, err := MeasurePrEpsilon(10, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := MeasurePrEpsilon(-6, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hi >= lo {
		t.Errorf("Prε should fall with SNR: %v at 10 dB vs %v at -6 dB", hi, lo)
	}
	if hi > 0.1 {
		t.Errorf("Prε(10 dB) = %v, want < 0.1", hi)
	}
	if lo < 0.3 {
		t.Errorf("Prε(-6 dB) = %v, want > 0.3", lo)
	}
}

func TestRegistryComplete(t *testing.T) {
	exps := Experiments()
	if len(exps) < 18 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	// Every paper figure is present.
	for _, id := range []string{"fig6", "fig7", "fig11", "fig12", "fig13", "fig14",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "fig22a", "fig22b", "fig23"} {
		if !seen[id] {
			t.Errorf("missing figure experiment %s", id)
		}
	}
	if _, err := ByID("fig13"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("expected error for unknown id")
	}
}

func TestFig6TopPairs(t *testing.T) {
	tb, err := Fig6PairSearch(Options{Seed: 1, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows[0][1] != "(6,7)" || tb.Rows[1][1] != "(E,F)" {
		t.Errorf("top pairs = %v, %v; want (6,7),(E,F)", tb.Rows[0][1], tb.Rows[1][1])
	}
}

func TestFig7RunsCarryBits(t *testing.T) {
	tb, err := Fig7StablePhase(Options{})
	if err != nil {
		t.Fatal(err)
	}
	var carries []string
	for _, row := range tb.Rows {
		if row[4] != "-" {
			carries = append(carries, row[4])
		}
	}
	if len(carries) != 2 || carries[0] != "bit 0" || carries[1] != "bit 1" {
		t.Errorf("carried bits = %v", carries)
	}
}

func TestFig20PacketSurvivesBurst(t *testing.T) {
	tb, err := Fig20Interference(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[3] != "true" {
			t.Errorf("bit %s not decoded correctly under the burst", row[0])
		}
	}
}

func TestScenarioExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario sweeps are slow")
	}
	opts := Options{Seed: 1, Packets: 6}
	for _, id := range []string{"fig13", "fig18", "fig23"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", id)
		}
	}
}

func TestFig16SymBeeDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison sweep is slow")
	}
	tb, err := Fig16Comparison(Options{Seed: 1, Packets: 8, Short: true})
	if err != nil {
		t.Fatal(err)
	}
	// Last row is SymBee; its speedup column must exceed 100×.
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "SymBee" {
		t.Fatalf("last row = %v", last)
	}
	speedup, err := strconv.ParseFloat(last[3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if speedup < 100 {
		t.Errorf("SymBee speedup = %v, want > 100x", speedup)
	}
}
