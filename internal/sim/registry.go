package sim

import (
	"fmt"
	"sort"
)

// Experiment is one reproducible evaluation artifact.
type Experiment struct {
	// ID is the registry key ("fig13", "ablation-tau", ...).
	ID string
	// Description summarizes what the experiment shows.
	Description string
	// Run executes it.
	Run func(Options) (*Table, error)
}

// registry lists every table/figure reproduction and ablation.
var registry = []Experiment{
	{"fig6", "exhaustive symbol-pair search for the longest stable phase", Fig6PairSearch},
	{"fig7", "cross-observed phase pattern of bits 0 and 1", Fig7StablePhase},
	{"fig11", "preamble capture by folding vs plain decoding under noise", Fig11Folding},
	{"fig12", "numerical BER vs SNR (Prε, Eq. 2, measured), 20 Msps", Fig12BER},
	{"fig12-40mhz", "BER vs SNR at the 40 Msps receiver (§VI-B)", Fig12BER40MHz},
	{"fig13", "throughput vs distance in six scenarios", Fig13Throughput},
	{"fig14", "BER vs distance in six scenarios", Fig14BER},
	{"fig16", "throughput comparison against five packet-level CTCs", Fig16Comparison},
	{"fig17", "constellation diagram, outdoor at 15 m", Fig17Constellation},
	{"fig18", "NLOS office: throughput per sender position", Fig18NLOS},
	{"fig19", "impact of TX power on BER and SNR", Fig19TxPower},
	{"fig20", "SymBee packet surviving a 270 µs WiFi burst at 0 dB SINR", Fig20Interference},
	{"fig21", "BER vs SINR with and without Hamming(7,4)", Fig21Hamming},
	{"fig22a", "impact of the detection tolerance τ", Fig22Tau},
	{"fig22b", "BER with vs without the SymBee preamble", Fig22Preamble},
	{"fig23", "mobility: BER vs carrier speed", Fig23Mobility},
	{"nonintrusive", "WiFi reception quality under a concurrent SymBee transmission", NonIntrusiveness},
	{"convergecast", "N ZigBee sensors uploading to one WiFi sink through CSMA/CA", Convergecast},
	{"lightweight", "marginal decode cost: SymBee vs full SDR ZigBee demodulation", LightweightDecoding},
	{"ctc-sweep", "BER of every CTC scheme vs WiFi duty cycle", CTCInterferenceSweep},
	{"ablation-pairs", "codeword pair choice vs stable-run length", AblationSymbolPairs},
	{"ablation-preamble", "preamble repetitions vs capture rate", AblationPreambleReps},
	{"ablation-threshold", "capture threshold sensitivity/false-alarm trade-off", AblationCaptureThreshold},
	{"ablation-rate", "20 vs 40 Msps reception at equal SNR", AblationSampleRate},
	{"ablation-soft", "hard sign-counting vs soft hypothesis-distance decoding", AblationSoftDecision},
}

// Experiments returns all registered experiments in registry order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("sim: unknown experiment %q (have %v)", id, ids)
}
