package sim

//symbee:ignore-file rngstream -- the per-point seed arithmetic in the figure drivers is part of each figure's published definition: the paper artifacts were generated from these exact streams, and rederiving them through splitmix would silently regenerate different curves. New drivers must split streams via internal/splitmix.

import (
	"math/rand"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/wifi"
)

// AblationSoftDecision compares the paper's sign-counting (hard)
// decoder with the soft-decision extension that scores each phase value
// against both codeword hypotheses. The phases are already computed, so
// the soft decoder costs nothing extra at the front-end; the gain shows
// at low SNR.
func AblationSoftDecision(opts Options) (*Table, error) {
	packets := opts.packets(60)
	p := core.Params20()
	bits := AlternatingBits(60)
	link, err := core.NewLink(p, wifi.CanonicalCompensation)
	if err != nil {
		return nil, err
	}
	sig, err := link.TransmitBits(bits)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation — hard (sign counting, §IV-C) vs soft (hypothesis distance) decoding",
		Note:    "same captures decoded both ways; capture anchors shared. Finding: the two\ntie — low-SNR errors are dominated by anchor placement, not per-bit decisions,\nwhich justifies the paper's choice of plain sign counting",
		Columns: []string{"SNR (dB)", "BER hard", "BER soft", "packets decoded"},
	}
	for _, snr := range []float64{-3, -2, -1, 0, 1, 2} {
		rng := rand.New(rand.NewSource(opts.Seed + int64(snr*10)))
		hardErrs, softErrs, used := 0, 0, 0
		for i := 0; i < packets; i++ {
			m, err := channel.NewMedium(channel.Config{
				SampleRate: p.SampleRate,
				SNRdB:      snr,
				FreqOffset: channel.DefaultFreqOffset,
				Pad:        400,
			}, rng)
			if err != nil {
				return nil, err
			}
			phases := link.Phases(m.Transmit(sig))
			anchor, err := link.Decoder().CapturePreamble(phases)
			if err != nil {
				continue
			}
			hard, err := link.Decoder().DecodeSyncBits(phases, anchor, len(bits))
			if err != nil {
				continue
			}
			soft, err := link.Decoder().DecodeSyncBitsSoft(phases, anchor, len(bits))
			if err != nil {
				continue
			}
			used++
			for k := range bits {
				if hard[k] != bits[k] {
					hardErrs++
				}
				if soft[k].Bit != bits[k] {
					softErrs++
				}
			}
		}
		total := used * len(bits)
		t.AddRow(snr, ratio(hardErrs, total), ratio(softErrs, total), used)
	}
	return t, nil
}
