package sim

import (
	"fmt"
	"math"
	"sort"

	"symbee/internal/dsp"
	"symbee/internal/wifi"
	"symbee/internal/zigbee"
)

// Fig6PairSearch exhaustively scores all 256 ordered ZigBee symbol
// pairs by the length of the stable phase run they produce when
// cross-observed (the analysis behind Fig. 6: (6,7) and (E,F) are the
// unique optimal pair per sign).
func Fig6PairSearch(opts Options) (*Table, error) {
	mod, err := zigbee.NewModulator(20e6)
	if err != nil {
		return nil, err
	}
	fe, err := wifi.NewFrontEnd(20e6)
	if err != nil {
		return nil, err
	}
	type pairScore struct {
		a, b   byte
		length int
		value  float64
	}
	scores := make([]pairScore, 0, 256)
	for a := byte(0); a < 16; a++ {
		for b := byte(0); b < 16; b++ {
			x := mod.ModulateSymbols([]byte{a, b})
			ph := fe.PhaseStream(x)
			start, length := dsp.LongestStableRun(ph, 0.05)
			scores = append(scores, pairScore{a, b, length, ph[start]})
		}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].length != scores[j].length {
			return scores[i].length > scores[j].length
		}
		if scores[i].a != scores[j].a {
			return scores[i].a < scores[j].a
		}
		return scores[i].b < scores[j].b
	})
	t := &Table{
		Title:   "Fig. 6 — Exhaustive symbol-pair search: longest stable phase",
		Note:    "top 10 of 256 ordered pairs; SymBee uses (6,7)=bit 0 and (E,F)=bit 1",
		Columns: []string{"rank", "pair", "stable run (samples)", "stable run (µs)", "phase (rad)", "phase/π"},
	}
	for i := 0; i < 10 && i < len(scores); i++ {
		s := scores[i]
		t.AddRow(i+1,
			fmt.Sprintf("(%X,%X)", s.a, s.b),
			s.length,
			float64(s.length)/20.0,
			s.value,
			s.value/math.Pi)
	}
	return t, nil
}

// Fig7StablePhase reports the cross-observed phase pattern of SymBee
// bits 0 and 1 sent back to back (Figs. 5 and 7): the location, length
// and value of every stable run.
func Fig7StablePhase(opts Options) (*Table, error) {
	mod, err := zigbee.NewModulator(20e6)
	if err != nil {
		return nil, err
	}
	fe, err := wifi.NewFrontEnd(20e6)
	if err != nil {
		return nil, err
	}
	// Bits 0 then 1 = payload bytes 0x67, 0xEF.
	x := mod.ModulateBytes([]byte{0x67, 0xEF}, zigbee.OrderMSBFirst)
	ph := fe.PhaseStream(x)
	t := &Table{
		Title:   "Fig. 7 — Phase ∠p[n] of SymBee bits 0,1 sent back to back",
		Note:    "stable runs of the phase stream; bits live in the ±4π/5 runs (840 ns units at 20 Msps)",
		Columns: []string{"start (sample)", "length", "value (rad)", "value/π", "carries"},
	}
	i := 0
	for i < len(ph) {
		ref := ph[i]
		j := i + 1
		for j < len(ph) && dsp.PhaseDistance(ph[j], ref) <= 0.05 {
			j++
		}
		if j-i >= 40 {
			carries := "-"
			if math.Abs(math.Abs(ref)-core4Pi5) < 0.05 && j-i >= 84 {
				if ref >= 0 {
					carries = "bit 0"
				} else {
					carries = "bit 1"
				}
			}
			t.AddRow(i, j-i, ref, ref/math.Pi, carries)
		}
		i = j
	}
	return t, nil
}

const core4Pi5 = 4 * math.Pi / 5
