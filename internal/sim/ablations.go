package sim

//symbee:ignore-file rngstream -- the per-point seed arithmetic in the figure drivers is part of each figure's published definition: the paper artifacts were generated from these exact streams, and rederiving them through splitmix would silently regenerate different curves. New drivers must split streams via internal/splitmix.

import (
	"fmt"
	"math"
	"math/rand"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/dsp"
	"symbee/internal/wifi"
	"symbee/internal/zigbee"
)

// AblationSymbolPairs decodes with deliberately suboptimal codeword
// pairs to show (6,7)/(E,F) are the right choice: shorter stable runs
// shrink the voting window and collapse the noise margin.
func AblationSymbolPairs(opts Options) (*Table, error) {
	mod, err := zigbee.NewModulator(20e6)
	if err != nil {
		return nil, err
	}
	fe, err := wifi.NewFrontEnd(20e6)
	if err != nil {
		return nil, err
	}
	pairs := []struct {
		label      string
		zero, one  []byte
		optimality string
	}{
		{"(6,7)/(E,F)", []byte{6, 7}, []byte{0xE, 0xF}, "SymBee (optimal)"},
		{"(5,6)/(D,E)", []byte{5, 6}, []byte{0xD, 0xE}, "shifted by one"},
		{"(0,1)/(8,9)", []byte{0, 1}, []byte{8, 9}, "arbitrary"},
	}
	t := &Table{
		Title:   "Ablation — codeword pair choice: stable-run length and phase separation",
		Note:    "run length bounds the voting window; |φ0−φ1| is the bit distinction\n(8π/5 ≈ 5.03 is the paper's maximum, §IV-A)",
		Columns: []string{"pair", "role", "bit0 run", "φ0/π", "bit1 run", "φ1/π", "|φ0−φ1|"},
	}
	for _, pr := range pairs {
		measure := func(symbols []byte) (int, float64) {
			ph := fe.PhaseStream(mod.ModulateSymbols(symbols))
			start, n := dsp.LongestStableRun(ph, 0.05)
			return n, ph[start]
		}
		run0, ph0 := measure(pr.zero)
		run1, ph1 := measure(pr.one)
		t.AddRow(pr.label, pr.optimality, run0, ph0/math.Pi, run1, ph1/math.Pi, math.Abs(ph0-ph1))
	}
	return t, nil
}

// AblationPreambleReps sweeps the preamble length: capture rate in deep
// noise versus the airtime overhead (the paper fixes 4 repetitions).
func AblationPreambleReps(opts Options) (*Table, error) {
	packets := opts.packets(40)
	p := core.Params20()
	t := &Table{
		Title:   "Ablation — preamble repetitions vs capture rate at −4 dB",
		Note:    "capture uses a matched fold of depth = repetitions; overhead is preamble airtime",
		Columns: []string{"repetitions", "capture rate", "overhead (µs)"},
	}
	// The decoder folds at depth PreambleBits (fixed by the standard
	// frame layout); sweeping the transmitted repetitions shows how
	// much of the preamble the fold actually exploits. Fewer than
	// PreambleBits repetitions cannot be folded at all.
	for _, reps := range []int{4, 6, 8} {
		extra := reps - core.PreambleBits
		bits := make([]byte, extra+20)
		for i := extra; i < len(bits); i++ {
			bits[i] = byte(i % 2)
		}
		link, err := core.NewLink(p, wifi.CanonicalCompensation)
		if err != nil {
			return nil, err
		}
		sig, err := link.TransmitBits(bits)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(opts.Seed + int64(reps)))
		captured := 0
		for i := 0; i < packets; i++ {
			med, err := channel.NewMedium(channel.Config{
				SampleRate: p.SampleRate,
				SNRdB:      -4,
				FreqOffset: channel.DefaultFreqOffset,
				Pad:        512,
			}, rng)
			if err != nil {
				return nil, err
			}
			if _, err := link.Decoder().CapturePreamble(link.Phases(med.Transmit(sig))); err == nil {
				captured++
			}
		}
		t.AddRow(reps, float64(captured)/float64(packets), float64(reps)*p.BitDuration()*1e6)
	}
	return t, nil
}

// AblationCaptureThreshold sweeps the preamble detection threshold,
// exposing the sensitivity/false-capture trade-off that fixed the
// default at one fifth of the ideal fold magnitude.
func AblationCaptureThreshold(opts Options) (*Table, error) {
	packets := opts.packets(40)
	p := core.Params20()
	bits := AlternatingBits(30)
	t := &Table{
		Title:   "Ablation — preamble capture threshold (fraction of ideal fold magnitude)",
		Note:    "capture at −2 dB vs false captures on signal-free noise",
		Columns: []string{"threshold (frac)", "capture rate @ -2 dB", "false captures on noise"},
	}
	for _, frac := range []float64{0.1, 0.2, 0.3, 0.5, 0.7} {
		link, err := core.NewLink(p, wifi.CanonicalCompensation)
		if err != nil {
			return nil, err
		}
		link.Decoder().CaptureThreshold = float64(core.PreambleBits) * core.StablePhase * frac
		sig, err := link.TransmitBits(bits)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(opts.Seed + int64(frac*100)))
		captured, falseCaptures := 0, 0
		for i := 0; i < packets; i++ {
			med, err := channel.NewMedium(channel.Config{
				SampleRate: p.SampleRate,
				SNRdB:      -2,
				FreqOffset: channel.DefaultFreqOffset,
				Pad:        512,
			}, rng)
			if err != nil {
				return nil, err
			}
			if _, err := link.Decoder().CapturePreamble(link.Phases(med.Transmit(sig))); err == nil {
				captured++
			}
			// Signal-free capture attempt: pure noise.
			noise := make([]float64, 20000)
			for j := range noise {
				noise[j] = (rng.Float64()*2 - 1) * 3.14159
			}
			if _, err := link.Decoder().CapturePreamble(noise); err == nil {
				falseCaptures++
			}
		}
		t.AddRow(fmt.Sprintf("%.1f", frac), float64(captured)/float64(packets), falseCaptures)
	}
	return t, nil
}

// AblationSampleRate contrasts 20 and 40 Msps reception at equal SNR:
// the doubled stable window at 40 MHz tolerates twice the errors
// (§VI-B).
func AblationSampleRate(opts Options) (*Table, error) {
	packets := opts.packets(40)
	bits := AlternatingBits(50)
	t := &Table{
		Title:   "Ablation — receiver sample rate: 20 vs 40 Msps (§VI-B)",
		Columns: []string{"SNR (dB)", "BER @20 Msps", "BER @40 Msps"},
	}
	for _, snr := range []float64{-4, -2, 0, 2} {
		var bers [2]float64
		for i, p := range []core.Params{core.Params20(), core.Params40()} {
			stats, err := Run(RunSpec{
				Params:  p,
				Bits:    bits,
				Packets: packets,
				Seed:    opts.Seed + int64(snr*10),
				ConfigFor: func(rng *rand.Rand) channel.Config {
					return channel.Config{
						SampleRate: p.SampleRate,
						SNRdB:      snr,
						FreqOffset: channel.DefaultFreqOffset,
						Pad:        512,
					}
				},
			})
			if err != nil {
				return nil, err
			}
			bers[i] = stats.BER()
		}
		t.AddRow(snr, bers[0], bers[1])
	}
	return t, nil
}
