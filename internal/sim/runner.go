package sim

//symbee:ignore-file rngstream -- the per-point seed arithmetic in the figure drivers is part of each figure's published definition: the paper artifacts were generated from these exact streams, and rederiving them through splitmix would silently regenerate different curves. New drivers must split streams via internal/splitmix.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/wifi"
)

// Options tunes experiment cost and reproducibility.
type Options struct {
	// Seed makes every experiment deterministic.
	Seed int64
	// Packets per measurement point (0 → per-experiment default).
	Packets int
	// Short divides the default packet counts by 4 (used by `go test`).
	Short bool
}

func (o Options) packets(def int) int {
	n := o.Packets
	if n == 0 {
		n = def
	}
	if o.Short {
		n = (n + 3) / 4
		if n < 4 {
			n = 4
		}
	}
	return n
}

// AlternatingBits returns the paper's evaluation workload: n bits of
// repeated "01" (§VIII sends 50 repeated '01' per packet).
func AlternatingBits(n int) []byte {
	bits := make([]byte, n)
	for i := range bits {
		bits[i] = byte(i % 2)
	}
	return bits
}

// LinkStats aggregates one batch of packet transmissions.
type LinkStats struct {
	// Packets sent, and how many had their preamble captured and
	// decoded (raw mode: preamble capture; frame mode: CRC pass).
	Packets, Captured int
	// BitsPerPacket in the workload.
	BitsPerPacket int
	// WrongBits among captured packets.
	WrongBits int
	// Margins collects the per-bit constellation statistic when
	// requested (nonnegative counts per stable window).
	Margins []int
	// MarginBits are the ground-truth bits matching Margins.
	MarginBits []byte
	// MeanSNR is the average of the per-packet SNR draws.
	MeanSNR float64
}

// CaptureRate is the fraction of packets whose preamble was captured.
func (s *LinkStats) CaptureRate() float64 {
	if s.Packets == 0 {
		return 0
	}
	return float64(s.Captured) / float64(s.Packets)
}

// BER is the bit error rate among captured packets.
func (s *LinkStats) BER() float64 {
	bits := s.Captured * s.BitsPerPacket
	if bits == 0 {
		return 1
	}
	return float64(s.WrongBits) / float64(bits)
}

// Throughput converts the batch into the paper's throughput metric:
// the 31.25 kbps instantaneous rate scaled by the fraction of all sent
// bits that arrived correctly (lost packets deliver nothing).
func (s *LinkStats) Throughput(p core.Params) float64 {
	total := s.Packets * s.BitsPerPacket
	if total == 0 {
		return 0
	}
	correct := s.Captured*s.BitsPerPacket - s.WrongBits
	return p.RawBitRate() * float64(correct) / float64(total)
}

// RunSpec describes one batch of raw-mode packet transmissions.
type RunSpec struct {
	// Params selects 20/40 MHz operation.
	Params core.Params
	// Bits is the SymBee payload of every packet.
	Bits []byte
	// Packets to send.
	Packets int
	// Seed drives all randomness.
	Seed int64
	// ConfigFor draws the channel configuration for one packet.
	ConfigFor func(rng *rand.Rand) channel.Config
	// Compensation defaults to wifi.CanonicalCompensation when the
	// config has a frequency offset; set NoCompensation to force 0.
	NoCompensation bool
	// CollectMargins records per-bit constellation statistics.
	CollectMargins bool
	// Tau overrides the unsynchronized tolerance (0 keeps the default).
	Tau int
	// Sequential disables the worker pool (needed when the channel
	// keeps cross-packet state, e.g. a mobility fading track).
	Sequential bool
}

// Run transmits the batch and aggregates statistics. Packets are
// processed by a bounded worker pool, each worker owning its own
// deterministic RNG.
func Run(spec RunSpec) (*LinkStats, error) {
	if spec.Packets <= 0 {
		return nil, fmt.Errorf("sim: non-positive packet count %d", spec.Packets)
	}
	params := spec.Params
	if spec.Tau > 0 {
		params = params.WithTau(spec.Tau)
	}
	comp := wifi.CanonicalCompensation
	if spec.NoCompensation {
		comp = 0
	}

	workers := runtime.NumCPU()
	if workers > spec.Packets {
		workers = spec.Packets
	}
	if spec.Sequential || workers < 1 {
		workers = 1
	}

	type result struct {
		captured  bool
		wrongBits int
		margins   []int
		snr       float64
		err       error
	}
	results := make([]result, spec.Packets)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(w)*7919))
			link, err := core.NewLink(params, comp)
			if err != nil {
				results[w].err = err
				return
			}
			sig, err := link.TransmitBits(spec.Bits)
			if err != nil {
				results[w].err = err
				return
			}
			// Mobility state lives in the medium: sequential runs keep
			// one medium across packets for track continuity.
			var persistent *channel.Medium
			for i := w; i < spec.Packets; i += workers {
				cfg := spec.ConfigFor(rng)
				var med *channel.Medium
				if spec.Sequential && cfg.Mobility != nil {
					if persistent == nil {
						persistent, err = channel.NewMedium(cfg, rng)
						if err != nil {
							results[i].err = err
							return
						}
					}
					med = persistent
				} else {
					med, err = channel.NewMedium(cfg, rng)
					if err != nil {
						results[i].err = err
						return
					}
				}
				capture := med.Transmit(sig)
				results[i].snr = cfg.SNRdB
				phases := link.Phases(capture)
				dec := link.Decoder()
				anchor, err := dec.CapturePreamble(phases)
				if err != nil {
					continue
				}
				got, err := dec.DecodeSyncBits(phases, anchor, len(spec.Bits))
				if err != nil {
					continue
				}
				results[i].captured = true
				for k := range spec.Bits {
					if got[k] != spec.Bits[k] {
						results[i].wrongBits++
					}
				}
				if spec.CollectMargins {
					margins, err := dec.SyncBitMargins(phases, anchor, len(spec.Bits))
					if err == nil {
						results[i].margins = margins
					}
				}
			}
		}(w)
	}
	wg.Wait()

	stats := &LinkStats{Packets: spec.Packets, BitsPerPacket: len(spec.Bits)}
	var snrSum float64
	for i := range results {
		if results[i].err != nil {
			return nil, results[i].err
		}
		snrSum += results[i].snr
		if !results[i].captured {
			continue
		}
		stats.Captured++
		stats.WrongBits += results[i].wrongBits
		if spec.CollectMargins && results[i].margins != nil {
			stats.Margins = append(stats.Margins, results[i].margins...)
			stats.MarginBits = append(stats.MarginBits, spec.Bits...)
		}
	}
	stats.MeanSNR = snrSum / float64(spec.Packets)
	return stats, nil
}
