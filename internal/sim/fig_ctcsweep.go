package sim

//symbee:ignore-file rngstream -- the per-point seed arithmetic in the figure drivers is part of each figure's published definition: the paper artifacts were generated from these exact streams, and rederiving them through splitmix would silently regenerate different curves. New drivers must split streams via internal/splitmix.

import (
	"fmt"
	"math/rand"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/ctc"
)

// CTCInterferenceSweep contrasts how every CTC scheme degrades as WiFi
// occupancy grows. Packet-level schemes live or die by energy-sensing
// the whole packet, so bursts that merely overlap them destroy symbols;
// SymBee needs only 42 of 84 phase samples per bit to survive, which is
// why its BER stays flat far longer (the systems argument behind
// §VIII-E).
func CTCInterferenceSweep(opts Options) (*Table, error) {
	nBits := 80
	if opts.Short {
		nBits = 32
	}
	packets := opts.packets(24)
	duties := []float64{0, 0.1, 0.2, 0.3, 0.4}

	t := &Table{
		Title:   "CTC interference sensitivity — BER vs WiFi duty cycle",
		Note:    "all schemes at 20 dB detection SNR; WiFi bursts of 2 ms at equal power;\nSymBee at 10 dB SNR with the same burst process at IQ level",
		Columns: append([]string{"scheme"}, dutyLabels(duties)...),
	}

	// Baselines over the RSSI medium, averaged over several messages.
	reps := 1 + packets/8
	for _, s := range ctc.All() {
		row := []any{s.Name()}
		for _, duty := range duties {
			rng := rand.New(rand.NewSource(opts.Seed + int64(duty*100)))
			var env *ctc.InterferenceEnv
			if duty > 0 {
				env = &ctc.InterferenceEnv{DutyCycle: duty, BurstDuration: 2e-3, INRdB: 20}
			}
			var ber float64
			for r := 0; r < reps; r++ {
				res, err := ctc.Measure(s, nBits, 20, env, rng)
				if err != nil {
					return nil, err
				}
				ber += res.BER
			}
			row = append(row, ber/float64(reps))
		}
		t.AddRow(row...)
	}

	// SymBee over the IQ medium with the same burst process.
	p := core.Params20()
	bits := AlternatingBits(nBits)
	row := []any{"SymBee"}
	for _, duty := range duties {
		stats, err := Run(RunSpec{
			Params:  p,
			Bits:    bits,
			Packets: packets,
			Seed:    opts.Seed + int64(duty*1000),
			ConfigFor: func(rng *rand.Rand) channel.Config {
				cfg := channel.Config{
					SampleRate: p.SampleRate,
					SNRdB:      10,
					FreqOffset: channel.DefaultFreqOffset,
					Pad:        512,
				}
				if duty > 0 {
					cfg.Interference = channel.InterferenceConfig{
						DutyCycle:     duty,
						BurstDuration: 2e-3,
						INRdB:         10, // equal power to the signal
					}
				}
				return cfg
			},
		})
		if err != nil {
			return nil, err
		}
		// Lost packets count as errored bits for parity with the
		// baselines' accounting.
		total := stats.Packets * stats.BitsPerPacket
		wrong := stats.WrongBits + (stats.Packets-stats.Captured)*stats.BitsPerPacket
		row = append(row, float64(wrong)/float64(total))
	}
	t.AddRow(row...)
	return t, nil
}

func dutyLabels(duties []float64) []string {
	labels := make([]string, len(duties))
	for i, d := range duties {
		labels[i] = fmt.Sprintf("duty %.0f%%", d*100)
	}
	return labels
}
