package sim

import (
	"math/rand"

	"symbee/internal/channel"
	"symbee/internal/core"
)

// scenarioDistances is the evaluation geometry of Figs. 13-14.
var scenarioDistances = []float64{5, 10, 15, 20, 25}

func runScenarioPoint(opts Options, sc channel.Scenario, distance, txPowerDBm float64, walls, packets int) (*LinkStats, error) {
	p := core.Params20()
	return Run(RunSpec{
		Params:  p,
		Bits:    AlternatingBits(100), // 50 repeated '01' per packet (§VIII)
		Packets: packets,
		Seed:    opts.Seed + int64(distance*1000) + int64(walls),
		ConfigFor: func(rng *rand.Rand) channel.Config {
			return sc.Config(p.SampleRate, distance, txPowerDBm, walls, rng)
		},
	})
}

// Fig13Throughput reproduces the six-scenario throughput-vs-distance
// study: 100-bit packets over each scenario preset at 5–25 m.
func Fig13Throughput(opts Options) (*Table, error) {
	t, err := scenarioSweep(opts, true)
	if err != nil {
		return nil, err
	}
	t.Title = "Fig. 13 — Throughput (kbps) vs distance, six scenarios"
	t.Note = "workload: 100 pkt-equivalents of 50×'01' bits at 0 dBm; raw rate 31.25 kbps"
	return t, nil
}

// Fig14BER reproduces the six-scenario BER-vs-distance study.
func Fig14BER(opts Options) (*Table, error) {
	t, err := scenarioSweep(opts, false)
	if err != nil {
		return nil, err
	}
	t.Title = "Fig. 14 — Bit error rate vs distance, six scenarios"
	t.Note = "BER over captured packets"
	return t, nil
}

func scenarioSweep(opts Options, throughput bool) (*Table, error) {
	packets := opts.packets(60)
	t := &Table{Columns: []string{"scenario", "5 m", "10 m", "15 m", "20 m", "25 m"}}
	for _, sc := range channel.Presets() {
		row := make([]any, 0, len(scenarioDistances)+1)
		row = append(row, sc.Name)
		for _, d := range scenarioDistances {
			stats, err := runScenarioPoint(opts, sc, d, 0, 0, packets)
			if err != nil {
				return nil, err
			}
			if throughput {
				row = append(row, stats.Throughput(core.Params20())/1000)
			} else {
				row = append(row, stats.BER())
			}
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Fig18NLOS reproduces the none-line-of-sight office study: four sender
// positions with different distances and wall counts (Fig. 18). S2 is
// farther than S3 but sees fewer walls and wins — the paper's point.
func Fig18NLOS(opts Options) (*Table, error) {
	packets := opts.packets(80)
	sc, err := channel.ByName(channel.Office)
	if err != nil {
		return nil, err
	}
	positions := []struct {
		name     string
		distance float64
		walls    int
	}{
		{"S1 (corridor, 6 m)", 6, 0},
		{"S2 (room, 9 m, 1 wall)", 9, 1},
		{"S3 (room, 8 m, 2 walls)", 8, 2},
		{"S4 (room, 10 m, 2 walls)", 10, 2},
	}
	t := &Table{
		Title:   "Fig. 18 — NLOS office: throughput per sender position",
		Note:    "S3 is closer than S2 but passes more walls, so S2 outperforms it",
		Columns: []string{"position", "mean SNR (dB)", "capture", "BER", "throughput (kbps)"},
	}
	for _, pos := range positions {
		stats, err := runScenarioPoint(opts, sc, pos.distance, 0, pos.walls, packets)
		if err != nil {
			return nil, err
		}
		t.AddRow(pos.name, stats.MeanSNR, stats.CaptureRate(), stats.BER(),
			stats.Throughput(core.Params20())/1000)
	}
	return t, nil
}

// Fig19TxPower reproduces the transmission-power study: BER and mean
// SNR at 5 m for TX power −15…0 dBm, in the midnight office (indoor
// multipath, no WiFi) versus outdoors.
func Fig19TxPower(opts Options) (*Table, error) {
	packets := opts.packets(60)
	office, err := channel.ByName(channel.OfficeMidnight)
	if err != nil {
		return nil, err
	}
	outdoor, err := channel.ByName(channel.Outdoor)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Fig. 19 — Impact of TX power (5 m link)",
		Note:    "indoor multipath costs SNR relative to outdoor at equal TX power",
		Columns: []string{"TX power (dBm)", "office SNR (dB)", "office BER", "outdoor SNR (dB)", "outdoor BER"},
	}
	for _, pw := range []float64{-15, -10, -5, 0} {
		in, err := runScenarioPoint(opts, office, 5, pw, 0, packets)
		if err != nil {
			return nil, err
		}
		out, err := runScenarioPoint(opts, outdoor, 5, pw, 0, packets)
		if err != nil {
			return nil, err
		}
		t.AddRow(pw, in.MeanSNR, in.BER(), out.MeanSNR, out.BER())
	}
	return t, nil
}

// Fig23Mobility reproduces the track-and-field mobility study: BER for
// a sender carried at walking, running and cycling speed past the
// receiver (Fig. 23).
func Fig23Mobility(opts Options) (*Table, error) {
	packets := opts.packets(80)
	sc, err := channel.ByName(channel.Outdoor)
	if err != nil {
		return nil, err
	}
	speeds := []struct {
		label string
		mph   float64
		mps   float64
	}{
		{"walking", 3.4, 1.52},
		{"running", 5.3, 2.37},
		{"cycling", 9.3, 4.16},
	}
	p := core.Params20()
	t := &Table{
		Title:   "Fig. 23 — Mobility: BER vs carrier speed (track & field)",
		Note:    "Doppler fading plus body/bag blockage; static outdoor BER is the baseline",
		Columns: []string{"speed", "mph", "BER", "capture"},
	}
	const distance = 18
	for _, sp := range speeds {
		mob := channel.MobilityPreset(sp.mps)
		stats, err := Run(RunSpec{
			Params:     p,
			Bits:       AlternatingBits(100),
			Packets:    packets,
			Seed:       opts.Seed + int64(sp.mps*100),
			Sequential: true, // the fading track is stateful
			ConfigFor: func(rng *rand.Rand) channel.Config {
				cfg := sc.Config(p.SampleRate, distance, 0, 0, rng)
				cfg.BlockFading = false // mobility track supplies fading
				cfg.Mobility = &mob
				return cfg
			},
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(sp.label, sp.mph, stats.BER(), stats.CaptureRate())
	}
	return t, nil
}
