package sim

import "time"

// wallNow is the package's single wall-clock seam. The lightweight-
// decoding table measures real CPU cost on the host — a wall-clock
// quantity by definition — so it deliberately bypasses the virtual-time
// plumbing that the rest of the simulations run on.
var wallNow = time.Now //symbee:ignore determinism -- decode-cost tables measure real host time
