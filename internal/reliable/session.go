package reliable

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"symbee/internal/core"
	"symbee/internal/link"
	"symbee/internal/splitmix"
)

// Sentinel errors of the reliability layer. The root package re-exports
// them; match with errors.Is.
var (
	// ErrWindowFull reports an offer to a sliding window that already
	// holds Window in-flight frames.
	ErrWindowFull = errors.New("reliable: send window full")
	// ErrTimeout reports that the retransmission budget for one frame
	// was exhausted without an acknowledgment.
	ErrTimeout = errors.New("reliable: retransmission budget exhausted")
)

// Transport carries data frames to the far end over the forward (ZigBee)
// channel and surfaces acknowledgments from the reverse (WiFi→ZigBee)
// channel asynchronously. The contract is discrete-event: every method
// takes the caller's current clock reading, so transports need no clock
// of their own.
//
// Send starts transmitting f at now and returns the forward airtime the
// transmission occupies; it completes when that airtime is spent, and
// says nothing about delivery. Acknowledgments travel back on their own
// schedule: Acks drains every ack that has fully arrived by now, and
// NextArrival reports when the next committed ack will land, so a
// discrete-event caller can sleep precisely to it. AckLatency is the
// nominal one-way ack delay on an idle reverse channel — the floor any
// useful retransmission timeout must respect.
//
// Implementations are single-goroutine, driven synchronously by one
// Session. SimLink is the simulated implementation.
type Transport interface {
	Send(now time.Duration, f *core.Frame, coded bool) (airtime time.Duration, err error)
	Acks(now time.Duration) []AckEvent
	NextArrival(now time.Duration) (time.Duration, bool)
	AckLatency() time.Duration
}

// Config parameterizes a Session. No field doubles as a sentinel: every
// value is taken literally, with 0 meaning "disabled" only where the
// field says so. Start from DefaultConfig and override what the link
// needs; NewSession validates.
type Config struct {
	// Window is the maximum number of in-flight frames (≥ 1).
	Window int
	// InitialRTO is the retransmission timeout after a silent flight
	// (> 0). NewSession floors it at 1.5× the transport's AckLatency —
	// a timer shorter than the reverse channel's delay would declare
	// every flight silent before its ack could possibly arrive.
	InitialRTO time.Duration
	// MaxRTO caps the exponential backoff (≥ InitialRTO).
	MaxRTO time.Duration
	// Backoff is the RTO multiplier per consecutive silent flight (≥ 1).
	Backoff float64
	// Jitter spreads each timeout uniformly over ±Jitter·RTO so
	// colliding senders desynchronize (0 ≤ Jitter < 1; 0 disables).
	Jitter float64
	// MaxRetries is the number of consecutive no-progress flights
	// tolerated for one window base before the send fails with
	// ErrTimeout (≥ 1).
	MaxRetries int
	// EscalateAfter is the number of consecutive no-progress flights
	// that triggers Hamming-coded mode (0 disables escalation).
	EscalateAfter int
	// DeescalateAfter is the number of consecutive clean (progressing)
	// flights in coded mode that returns the session to plain frames
	// (0 keeps coded mode sticky).
	DeescalateAfter int
	// Clock drives timers; nil means a fresh VirtualClock (tests and
	// simulation). Use NewWallClock for live pacing.
	Clock Clock
	// Seed feeds the jitter source, making timer schedules reproducible.
	Seed int64
	// Metrics optionally shares a stream registry; the session
	// increments the ARQ counters (Retransmits, Timeouts, Escalations,
	// Deescalations).
	Metrics *link.Metrics
}

// DefaultConfig returns the baseline session configuration: window 8,
// 20 ms initial RTO doubling to 500 ms with 20% jitter, 16 retries,
// escalation after 3 silent flights and de-escalation after 4 clean
// ones.
func DefaultConfig() Config {
	return Config{
		Window:          8,
		InitialRTO:      20 * time.Millisecond,
		MaxRTO:          500 * time.Millisecond,
		Backoff:         2,
		Jitter:          0.2,
		MaxRetries:      16,
		EscalateAfter:   3,
		DeescalateAfter: 4,
	}
}

// Config validation errors.
var (
	errWindow   = errors.New("reliable: Window must be at least 1")
	errRTO      = errors.New("reliable: InitialRTO must be positive")
	errMaxRTO   = errors.New("reliable: MaxRTO must be at least InitialRTO")
	errBackoff  = errors.New("reliable: Backoff must be at least 1")
	errJitter   = errors.New("reliable: Jitter must be in [0, 1)")
	errRetries  = errors.New("reliable: MaxRetries must be at least 1")
	errEscalate = errors.New("reliable: negative escalation threshold")
)

// Validate reports the first structural problem with the config.
func (c Config) Validate() error {
	switch {
	case c.Window < 1:
		return fmt.Errorf("%w: %d", errWindow, c.Window)
	case c.InitialRTO <= 0:
		return fmt.Errorf("%w: %v", errRTO, c.InitialRTO)
	case c.MaxRTO < c.InitialRTO:
		return fmt.Errorf("%w: %v < %v", errMaxRTO, c.MaxRTO, c.InitialRTO)
	case c.Backoff < 1:
		return fmt.Errorf("%w: %v", errBackoff, c.Backoff)
	case c.Jitter < 0 || c.Jitter >= 1:
		return fmt.Errorf("%w: %v", errJitter, c.Jitter)
	case c.MaxRetries < 1:
		return fmt.Errorf("%w: %d", errRetries, c.MaxRetries)
	case c.EscalateAfter < 0 || c.DeescalateAfter < 0:
		return fmt.Errorf("%w: escalate %d, deescalate %d",
			errEscalate, c.EscalateAfter, c.DeescalateAfter)
	}
	return nil
}

// Report summarizes one Send.
type Report struct {
	// Bytes is the message length delivered.
	Bytes int
	// FramesSent counts every frame transmission, retransmits included.
	FramesSent int
	// Retransmits counts transmissions after the first per frame.
	Retransmits int
	// Timeouts counts silent flights that waited out the retransmission
	// timer.
	Timeouts int
	// Escalations and Deescalations count coding-mode switches.
	Escalations   int
	Deescalations int
	// Airtime is the total forward (ZigBee) airtime spent. Reverse
	// (ack) airtime is the transport's ledger — see SimLink.ReverseStats.
	Airtime time.Duration
	// Elapsed is the transfer duration on the session clock: airtime,
	// ack latency and timer waits included.
	Elapsed time.Duration
	// Coded reports whether the session ended in Hamming-coded mode.
	Coded bool
}

// GoodputBps is the delivered application rate in bits per second over
// the whole transfer, timer waits included.
func (r *Report) GoodputBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes*8) / r.Elapsed.Seconds()
}

// segment is one fragment in flight or awaiting its first transmission.
type segment struct {
	frame    *core.Frame
	attempts int
	// lastTxEnd is when this segment's latest transmission finished
	// arriving (zero until first transmitted). Acks generated before
	// the base segment's lastTxEnd are stale — they say nothing about
	// that transmission's fate.
	lastTxEnd time.Duration
}

// window is the go-back-N flight: segs[0] is the base (oldest unacked).
type window struct {
	segs []*segment
	max  int
}

func (w *window) offer(s *segment) error {
	if len(w.segs) >= w.max {
		return ErrWindowFull
	}
	w.segs = append(w.segs, s)
	return nil
}

// ack releases every segment before next (cumulative), returning how
// many segments and data bytes were released. Acks that do not move the
// base — duplicates, or stale NextSeq — release nothing.
func (w *window) ack(next byte) (released, bytes int) {
	if len(w.segs) == 0 {
		return 0, 0
	}
	n := int(next - w.segs[0].frame.Seq) // byte arithmetic handles wrap
	if n <= 0 || n > len(w.segs) {
		return 0, 0
	}
	for _, s := range w.segs[:n] {
		bytes += len(s.frame.Data)
	}
	w.segs = w.segs[n:]
	return n, bytes
}

func (w *window) clear() { w.segs = nil }

// Session is the ARQ send side. It is single-goroutine: one Send at a
// time, driven synchronously against its Transport and Clock.
type Session struct {
	cfg     Config
	tx      Transport
	clock   Clock
	rng     *rand.Rand
	m       *core.Messenger
	metrics *link.Metrics
	coded   bool
}

// NewSession returns a session over the transport. The config's RTOs
// are floored against the transport's AckLatency: a retransmission
// timer shorter than the reverse channel's one-way delay would read
// every in-flight ack as silence.
func NewSession(tx Transport, cfg Config) (*Session, error) {
	if tx == nil {
		return nil, fmt.Errorf("reliable: nil transport")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if floor := tx.AckLatency() * 3 / 2; floor > 0 {
		if cfg.InitialRTO < floor {
			cfg.InitialRTO = floor
		}
		if cfg.MaxRTO < 2*floor {
			cfg.MaxRTO = 2 * floor
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = NewVirtualClock()
	}
	return &Session{
		cfg:   cfg,
		tx:    tx,
		clock: cfg.Clock,
		// Retransmission jitter draws from its own splitmix stream, so
		// timing randomization and the channel fault schedules derived
		// from the same scenario seed stay independent.
		rng:     splitmix.New(cfg.Seed, splitmix.JitterStream),
		m:       core.NewMessenger(nil),
		metrics: cfg.Metrics,
	}, nil
}

// Coded reports whether the session is currently in Hamming-coded mode.
// The mode is sticky across Send calls until the protocol de-escalates.
func (s *Session) Coded() bool { return s.coded }

// Send delivers msg reliably: fragment, transmit under the sliding
// window, retransmit on loss, escalate the coding on persistent loss.
// It returns a Report alongside any error; on error the report covers
// the work done up to the failure.
func (s *Session) Send(ctx context.Context, msg []byte) (rep *Report, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rep = &Report{Bytes: len(msg)}
	start := s.clock.Now()
	defer func() {
		rep.Elapsed = s.clock.Now() - start
		rep.Coded = s.coded
	}()
	if len(msg) == 0 {
		return rep, core.ErrEmptyMessage
	}

	acked := 0           // message bytes acknowledged so far
	baseSeq := s.m.Seq() // sequence of the oldest unacked frame
	win := &window{max: s.cfg.Window}
	var pending []*segment

	// cut (re-)fragments the unacknowledged tail of the message at the
	// current mode's capacity, discarding any in-flight segments. The
	// go-back-N receiver buffers nothing beyond its expectation, so
	// re-cutting with sequence continuity (SetSeq to the base) is safe —
	// but only once resync has confirmed where that expectation stands:
	// acked must be exact, not a lower bound, or the new byte↔sequence
	// mapping diverges from frames the receiver already consumed.
	cut := func() error {
		win.clear()
		size := core.MaxDataBytes
		if s.coded {
			size = MaxCodedDataBytes
		}
		s.m.SetSeq(baseSeq)
		frames, err := s.m.FragmentSize(msg[acked:], size)
		if err != nil {
			return err
		}
		pending = make([]*segment, len(frames))
		for i, f := range frames {
			pending[i] = &segment{frame: f}
		}
		return nil
	}
	if err := cut(); err != nil {
		return rep, err
	}

	rto := s.cfg.InitialRTO
	consecutive := 0 // no-progress flights for the current base
	clean := 0       // progressing flights since entering coded mode

	for acked < len(msg) {
		if err := ctx.Err(); err != nil {
			return rep, fmt.Errorf("reliable: send canceled: %w", err)
		}
		for len(pending) > 0 {
			if win.offer(pending[0]) != nil {
				break // ErrWindowFull: flight is at capacity
			}
			pending = pending[1:]
		}
		progressed, heard, relBytes, nextBase, err := s.flight(ctx, win, rep, rto)
		acked += relBytes
		baseSeq = nextBase
		if err != nil {
			return rep, err
		}
		switch {
		case progressed:
			consecutive = 0
			rto = s.cfg.InitialRTO
			if s.coded && s.cfg.DeescalateAfter > 0 {
				clean++
				if clean >= s.cfg.DeescalateAfter && acked < len(msg) {
					s.coded = false
					clean = 0
					rep.Deescalations++
					if s.metrics != nil {
						s.metrics.Deescalations.Add(1)
					}
					b, nb, err := s.resync(ctx, win, rep, baseSeq)
					acked += b
					baseSeq = nb
					if err != nil {
						return rep, err
					}
					if acked < len(msg) {
						if err := cut(); err != nil {
							return rep, err
						}
					}
				}
			}
		case heard:
			// Feedback generated after the base's latest transmission
			// arrived, without releasing it: a loss signal — go back and
			// retransmit immediately.
			consecutive++
		default:
			// Silence. The flight already waited out the jittered timer
			// (sleeping toward ack arrivals on the way); just back off.
			consecutive++
			rep.Timeouts++
			if s.metrics != nil {
				s.metrics.Timeouts.Add(1)
			}
			rto = time.Duration(float64(rto) * s.cfg.Backoff)
			if rto > s.cfg.MaxRTO {
				rto = s.cfg.MaxRTO
			}
		}
		if consecutive > s.cfg.MaxRetries {
			return rep, fmt.Errorf("reliable: %w: seq %d after %d flights",
				ErrTimeout, baseSeq, consecutive)
		}
		if !s.coded && s.cfg.EscalateAfter > 0 && consecutive >= s.cfg.EscalateAfter {
			s.coded = true
			clean = 0
			consecutive = 0
			rto = s.cfg.InitialRTO
			rep.Escalations++
			if s.metrics != nil {
				s.metrics.Escalations.Add(1)
			}
			b, nb, err := s.resync(ctx, win, rep, baseSeq)
			acked += b
			baseSeq = nb
			if err != nil {
				return rep, err
			}
			if acked < len(msg) {
				if err := cut(); err != nil {
					return rep, err
				}
			}
		}
	}
	return rep, nil
}

// flight transmits the window in order, draining reverse-channel acks
// after every frame, then waits for feedback: it sleeps toward the next
// committed ack arrival until one of them moves the window or the
// jittered rto deadline passes. Released segments shift the iteration
// back so freshly unacked segments are still sent once per flight.
//
// An ack releasing nothing counts as `heard` loss evidence only when it
// was generated at or after the base segment's latest transmission
// ended: the receiver saw the channel past that transmission and still
// did not want the base. Stale acks — late arrivals from before the
// latest transmission, or duplicate downlink copies — still apply their
// cumulative releases but never trigger a retransmission, which is what
// keeps downlink repeats and post-RTO stragglers from corrupting the
// go-back-N schedule.
func (s *Session) flight(ctx context.Context, win *window, rep *Report, rto time.Duration) (progressed, heard bool, relBytes int, nextBase byte, err error) {
	nextBase = s.baseSeqOf(win)
	shift := 0 // window releases observed by drain, consumed by the tx loop
	drain := func() {
		for _, ev := range s.tx.Acks(s.clock.Now()) {
			rel, b := win.ack(ev.Ack.NextSeq)
			if rel > 0 {
				progressed = true
				relBytes += b
				nextBase = ev.Ack.NextSeq
				shift += rel
				continue
			}
			if len(win.segs) > 0 && win.segs[0].lastTxEnd > 0 &&
				ev.GeneratedAt >= win.segs[0].lastTxEnd {
				heard = true
			}
		}
	}

	idx := 0
	for idx < len(win.segs) {
		if err := ctx.Err(); err != nil {
			return progressed, heard, relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", err)
		}
		seg := win.segs[idx]
		if seg.attempts > 0 {
			rep.Retransmits++
			if s.metrics != nil {
				s.metrics.Retransmits.Add(1)
			}
		}
		seg.attempts++
		rep.FramesSent++
		airtime, err := s.tx.Send(s.clock.Now(), seg.frame, s.coded)
		rep.Airtime += airtime
		if slErr := s.clock.Sleep(ctx, airtime); slErr != nil {
			return progressed, heard, relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", slErr)
		}
		if err != nil {
			return progressed, heard, relBytes, nextBase, fmt.Errorf("reliable: transport: %w", err)
		}
		seg.lastTxEnd = s.clock.Now()
		drain()
		idx -= shift
		shift = 0
		if idx < -1 {
			// A catch-up ack released past the cursor; resume at the new
			// front of the window.
			idx = -1
		}
		idx++
	}
	if progressed || heard {
		return progressed, heard, relBytes, nextBase, nil
	}

	// Await phase: the window is fully transmitted and nothing moved
	// yet. Acks may still be in flight on the reverse channel — sleep
	// precisely toward each committed arrival, giving up when the
	// jittered retransmission deadline passes first.
	deadline := s.clock.Now() + s.jittered(rto)
	for {
		drain()
		if progressed || heard {
			return progressed, heard, relBytes, nextBase, nil
		}
		now := s.clock.Now()
		if now >= deadline {
			return progressed, heard, relBytes, nextBase, nil
		}
		target := deadline
		if next, ok := s.tx.NextArrival(now); ok && next < target {
			target = next
		}
		if slErr := s.clock.Sleep(ctx, target-now); slErr != nil {
			return progressed, heard, relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", slErr)
		}
	}
}

// resync learns the receiver's exact cumulative expectation before a
// coding-mode re-fragmentation. Lost acknowledgments leave the sender's
// acked count a lower bound: frames past it may already be consumed,
// and re-cutting from a stale offset at a different frame size would
// re-map those bytes onto sequence numbers the receiver has moved
// beyond — corrupting the reassembled message. The probe is an empty
// frame whose sequence precedes the window base; the receiver can never
// accept it (its expectation is always at or past the base), so it
// always answers with a duplicate ack carrying the current expectation,
// which releases exactly the old-mapping segments the receiver holds.
//
// Under a latent downlink only an ack generated at or after the probe's
// delivery is authoritative — a stale ack still in flight carries an
// older expectation. Stale arrivals apply their releases and the wait
// continues; probes retry on the usual timer discipline in the
// session's current coding mode.
func (s *Session) resync(ctx context.Context, win *window, rep *Report, baseSeq byte) (relBytes int, nextBase byte, err error) {
	nextBase = baseSeq
	if len(win.segs) == 0 {
		return 0, nextBase, nil // nothing in flight: acked is already exact
	}
	probe := &core.Frame{Seq: baseSeq - 1}
	rto := s.cfg.InitialRTO
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", err)
		}
		if attempt > s.cfg.MaxRetries {
			return relBytes, nextBase, fmt.Errorf("reliable: %w: resync probe at seq %d after %d attempts",
				ErrTimeout, baseSeq, attempt)
		}
		rep.FramesSent++
		airtime, err := s.tx.Send(s.clock.Now(), probe, s.coded)
		rep.Airtime += airtime
		if slErr := s.clock.Sleep(ctx, airtime); slErr != nil {
			return relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", slErr)
		}
		if err != nil {
			return relBytes, nextBase, fmt.Errorf("reliable: transport: %w", err)
		}
		probeEnd := s.clock.Now()
		deadline := probeEnd + s.jittered(rto)
		for {
			for _, ev := range s.tx.Acks(s.clock.Now()) {
				_, b := win.ack(ev.Ack.NextSeq)
				relBytes += b
				if ev.GeneratedAt >= probeEnd {
					// Generated after the probe landed: the receiver's
					// current expectation, exact by construction.
					return relBytes, ev.Ack.NextSeq, nil
				}
			}
			now := s.clock.Now()
			if now >= deadline {
				break
			}
			target := deadline
			if next, ok := s.tx.NextArrival(now); ok && next < target {
				target = next
			}
			if slErr := s.clock.Sleep(ctx, target-now); slErr != nil {
				return relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", slErr)
			}
		}
		rep.Timeouts++
		if s.metrics != nil {
			s.metrics.Timeouts.Add(1)
		}
		rto = time.Duration(float64(rto) * s.cfg.Backoff)
		if rto > s.cfg.MaxRTO {
			rto = s.cfg.MaxRTO
		}
	}
}

func (s *Session) baseSeqOf(win *window) byte {
	if len(win.segs) > 0 {
		return win.segs[0].frame.Seq
	}
	return s.m.Seq()
}

// jittered spreads d uniformly over [d·(1−Jitter), d·(1+Jitter)].
func (s *Session) jittered(d time.Duration) time.Duration {
	if s.cfg.Jitter <= 0 {
		return d
	}
	f := 1 + s.cfg.Jitter*(2*s.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}
