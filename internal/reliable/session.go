package reliable

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"symbee/internal/core"
	"symbee/internal/link"
)

// Sentinel errors of the reliability layer. The root package re-exports
// them; match with errors.Is.
var (
	// ErrWindowFull reports an offer to a sliding window that already
	// holds Window in-flight frames.
	ErrWindowFull = errors.New("reliable: send window full")
	// ErrTimeout reports that the retransmission budget for one frame
	// was exhausted without an acknowledgment.
	ErrTimeout = errors.New("reliable: retransmission budget exhausted")
)

// Transport carries one data frame to the far end and returns the
// acknowledgment observed on the reverse channel — nil when the frame
// or its ack was lost — together with the forward (ZigBee) airtime the
// transmission occupied. coded selects the Hamming(7,4) on-air
// encoding. SimLink is the simulated implementation.
type Transport interface {
	Send(f *core.Frame, coded bool) (*Ack, time.Duration, error)
}

// Config parameterizes a Session. The zero value selects the defaults;
// set a field negative to disable it where noted.
type Config struct {
	// Window is the maximum number of in-flight frames (default 8).
	Window int
	// InitialRTO is the retransmission timeout after a silent flight
	// (default 20ms — a window of max-size frames is ~13ms of airtime).
	InitialRTO time.Duration
	// MaxRTO caps the exponential backoff (default 500ms).
	MaxRTO time.Duration
	// Backoff is the RTO multiplier per consecutive silent flight
	// (default 2).
	Backoff float64
	// Jitter spreads each timeout uniformly over ±Jitter·RTO so
	// colliding senders desynchronize (default 0.2).
	Jitter float64
	// MaxRetries is the number of consecutive no-progress flights
	// tolerated for one window base before the send fails with
	// ErrTimeout (default 16).
	MaxRetries int
	// EscalateAfter is the number of consecutive no-progress flights
	// that triggers Hamming-coded mode (default 3; negative disables
	// escalation).
	EscalateAfter int
	// DeescalateAfter is the number of consecutive clean (progressing)
	// flights in coded mode that returns the session to plain frames
	// (default 4; negative keeps coded mode sticky).
	DeescalateAfter int
	// Clock drives timers; nil means a fresh VirtualClock (tests and
	// simulation). Use NewWallClock for live pacing.
	Clock Clock
	// Seed feeds the jitter source, making timer schedules reproducible.
	Seed int64
	// Metrics optionally shares a stream registry; the session
	// increments the ARQ counters (Retransmits, Timeouts, Escalations,
	// Deescalations).
	Metrics *link.Metrics
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 8
	}
	if c.InitialRTO == 0 {
		c.InitialRTO = 20 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 500 * time.Millisecond
	}
	if c.Backoff == 0 {
		c.Backoff = 2
	}
	if c.Jitter == 0 {
		c.Jitter = 0.2
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 16
	}
	if c.EscalateAfter == 0 {
		c.EscalateAfter = 3
	}
	if c.DeescalateAfter == 0 {
		c.DeescalateAfter = 4
	}
	if c.Clock == nil {
		c.Clock = NewVirtualClock()
	}
	return c
}

// Report summarizes one Send.
type Report struct {
	// Bytes is the message length delivered.
	Bytes int
	// FramesSent counts every frame transmission, retransmits included.
	FramesSent int
	// Retransmits counts transmissions after the first per frame.
	Retransmits int
	// Timeouts counts silent flights that waited out the retransmission
	// timer.
	Timeouts int
	// Escalations and Deescalations count coding-mode switches.
	Escalations   int
	Deescalations int
	// Airtime is the total forward (ZigBee) airtime spent.
	Airtime time.Duration
	// Elapsed is the transfer duration on the session clock, timer
	// waits included.
	Elapsed time.Duration
	// Coded reports whether the session ended in Hamming-coded mode.
	Coded bool
}

// GoodputBps is the delivered application rate in bits per second over
// the whole transfer, timer waits included.
func (r *Report) GoodputBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes*8) / r.Elapsed.Seconds()
}

// segment is one fragment in flight or awaiting its first transmission.
type segment struct {
	frame    *core.Frame
	attempts int
}

// window is the go-back-N flight: segs[0] is the base (oldest unacked).
type window struct {
	segs []*segment
	max  int
}

func (w *window) offer(s *segment) error {
	if len(w.segs) >= w.max {
		return ErrWindowFull
	}
	w.segs = append(w.segs, s)
	return nil
}

// ack releases every segment before next (cumulative), returning how
// many segments and data bytes were released. Acks that do not move the
// base — duplicates, or stale NextSeq — release nothing.
func (w *window) ack(next byte) (released, bytes int) {
	if len(w.segs) == 0 {
		return 0, 0
	}
	n := int(next - w.segs[0].frame.Seq) // byte arithmetic handles wrap
	if n <= 0 || n > len(w.segs) {
		return 0, 0
	}
	for _, s := range w.segs[:n] {
		bytes += len(s.frame.Data)
	}
	w.segs = w.segs[n:]
	return n, bytes
}

func (w *window) clear() { w.segs = nil }

// Session is the ARQ send side. It is single-goroutine: one Send at a
// time, driven synchronously against its Transport and Clock.
type Session struct {
	cfg     Config
	tx      Transport
	clock   Clock
	rng     *rand.Rand
	m       *core.Messenger
	metrics *link.Metrics
	coded   bool
}

// NewSession returns a session over the transport.
func NewSession(tx Transport, cfg Config) (*Session, error) {
	if tx == nil {
		return nil, fmt.Errorf("reliable: nil transport")
	}
	cfg = cfg.withDefaults()
	if cfg.Window < 1 {
		return nil, fmt.Errorf("reliable: %w: window %d", core.ErrBadLength, cfg.Window)
	}
	return &Session{
		cfg:     cfg,
		tx:      tx,
		clock:   cfg.Clock,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		m:       core.NewMessenger(nil),
		metrics: cfg.Metrics,
	}, nil
}

// Coded reports whether the session is currently in Hamming-coded mode.
// The mode is sticky across Send calls until the protocol de-escalates.
func (s *Session) Coded() bool { return s.coded }

// Send delivers msg reliably: fragment, transmit under the sliding
// window, retransmit on loss, escalate the coding on persistent loss.
// It returns a Report alongside any error; on error the report covers
// the work done up to the failure.
func (s *Session) Send(ctx context.Context, msg []byte) (rep *Report, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rep = &Report{Bytes: len(msg)}
	start := s.clock.Now()
	defer func() {
		rep.Elapsed = s.clock.Now() - start
		rep.Coded = s.coded
	}()
	if len(msg) == 0 {
		return rep, core.ErrEmptyMessage
	}

	acked := 0           // message bytes acknowledged so far
	baseSeq := s.m.Seq() // sequence of the oldest unacked frame
	win := &window{max: s.cfg.Window}
	var pending []*segment

	// cut (re-)fragments the unacknowledged tail of the message at the
	// current mode's capacity, discarding any in-flight segments. The
	// go-back-N receiver buffers nothing beyond its expectation, so
	// re-cutting with sequence continuity (SetSeq to the base) is safe —
	// but only once resync has confirmed where that expectation stands:
	// acked must be exact, not a lower bound, or the new byte↔sequence
	// mapping diverges from frames the receiver already consumed.
	cut := func() error {
		win.clear()
		size := core.MaxDataBytes
		if s.coded {
			size = MaxCodedDataBytes
		}
		s.m.SetSeq(baseSeq)
		frames, err := s.m.FragmentSize(msg[acked:], size)
		if err != nil {
			return err
		}
		pending = make([]*segment, len(frames))
		for i, f := range frames {
			pending[i] = &segment{frame: f}
		}
		return nil
	}
	if err := cut(); err != nil {
		return rep, err
	}

	rto := s.cfg.InitialRTO
	consecutive := 0 // no-progress flights for the current base
	clean := 0       // progressing flights since entering coded mode

	for acked < len(msg) {
		if err := ctx.Err(); err != nil {
			return rep, fmt.Errorf("reliable: send canceled: %w", err)
		}
		for len(pending) > 0 {
			if win.offer(pending[0]) != nil {
				break // ErrWindowFull: flight is at capacity
			}
			pending = pending[1:]
		}
		progressed, heard, relBytes, nextBase, err := s.flight(ctx, win, rep)
		acked += relBytes
		baseSeq = nextBase
		if err != nil {
			return rep, err
		}
		switch {
		case progressed:
			consecutive = 0
			rto = s.cfg.InitialRTO
			if s.coded && s.cfg.DeescalateAfter > 0 {
				clean++
				if clean >= s.cfg.DeescalateAfter && acked < len(msg) {
					s.coded = false
					clean = 0
					rep.Deescalations++
					if s.metrics != nil {
						s.metrics.Deescalations.Add(1)
					}
					b, nb, err := s.resync(ctx, win, rep, baseSeq)
					acked += b
					baseSeq = nb
					if err != nil {
						return rep, err
					}
					if acked < len(msg) {
						if err := cut(); err != nil {
							return rep, err
						}
					}
				}
			}
		case heard:
			// Feedback arrived but the base frame did not: a loss
			// signal — go back and retransmit immediately.
			consecutive++
		default:
			// Silence. Wait out the timer, then back off.
			consecutive++
			rep.Timeouts++
			if s.metrics != nil {
				s.metrics.Timeouts.Add(1)
			}
			if err := s.clock.Sleep(ctx, s.jittered(rto)); err != nil {
				return rep, fmt.Errorf("reliable: send canceled: %w", err)
			}
			rto = time.Duration(float64(rto) * s.cfg.Backoff)
			if rto > s.cfg.MaxRTO {
				rto = s.cfg.MaxRTO
			}
		}
		if consecutive > s.cfg.MaxRetries {
			return rep, fmt.Errorf("reliable: %w: seq %d after %d flights",
				ErrTimeout, baseSeq, consecutive)
		}
		if !s.coded && s.cfg.EscalateAfter > 0 && consecutive >= s.cfg.EscalateAfter {
			s.coded = true
			clean = 0
			consecutive = 0
			rto = s.cfg.InitialRTO
			rep.Escalations++
			if s.metrics != nil {
				s.metrics.Escalations.Add(1)
			}
			b, nb, err := s.resync(ctx, win, rep, baseSeq)
			acked += b
			baseSeq = nb
			if err != nil {
				return rep, err
			}
			if acked < len(msg) {
				if err := cut(); err != nil {
					return rep, err
				}
			}
		}
	}
	return rep, nil
}

// flight transmits the window in order, applying acknowledgments as
// they arrive: released segments shift the iteration back so freshly
// unacked segments are still sent once per flight. It reports whether
// the base advanced, whether any feedback was heard at all, the bytes
// released, and the new base sequence.
func (s *Session) flight(ctx context.Context, win *window, rep *Report) (progressed, heard bool, relBytes int, nextBase byte, err error) {
	nextBase = s.baseSeqOf(win)
	idx := 0
	for idx < len(win.segs) {
		if err := ctx.Err(); err != nil {
			return progressed, heard, relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", err)
		}
		seg := win.segs[idx]
		if seg.attempts > 0 {
			rep.Retransmits++
			if s.metrics != nil {
				s.metrics.Retransmits.Add(1)
			}
		}
		seg.attempts++
		rep.FramesSent++
		ack, airtime, err := s.tx.Send(seg.frame, s.coded)
		rep.Airtime += airtime
		if slErr := s.clock.Sleep(ctx, airtime); slErr != nil {
			return progressed, heard, relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", slErr)
		}
		if err != nil {
			return progressed, heard, relBytes, nextBase, fmt.Errorf("reliable: transport: %w", err)
		}
		if ack != nil {
			heard = true
			rel, b := win.ack(ack.NextSeq)
			if rel > 0 {
				progressed = true
				relBytes += b
				nextBase = ack.NextSeq
				// The window shifted left under the iteration; a
				// catch-up ack (previous acks lost) can release past
				// the cursor, so clamp to the new front.
				idx -= rel
				if idx < -1 {
					idx = -1
				}
			}
		}
		idx++
	}
	return progressed, heard, relBytes, nextBase, nil
}

// resync learns the receiver's exact cumulative expectation before a
// coding-mode re-fragmentation. Lost acknowledgments leave the sender's
// acked count a lower bound: frames past it may already be consumed,
// and re-cutting from a stale offset at a different frame size would
// re-map those bytes onto sequence numbers the receiver has moved
// beyond — corrupting the reassembled message. The probe is an empty
// frame whose sequence precedes the window base; the receiver can never
// accept it (its expectation is always at or past the base), so it
// always answers with a duplicate ack carrying the current expectation,
// which releases exactly the old-mapping segments the receiver holds.
// Probes retry on the usual timer discipline in the session's current
// coding mode.
func (s *Session) resync(ctx context.Context, win *window, rep *Report, baseSeq byte) (relBytes int, nextBase byte, err error) {
	nextBase = baseSeq
	if len(win.segs) == 0 {
		return 0, nextBase, nil // nothing in flight: acked is already exact
	}
	probe := &core.Frame{Seq: baseSeq - 1}
	rto := s.cfg.InitialRTO
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", err)
		}
		if attempt > s.cfg.MaxRetries {
			return relBytes, nextBase, fmt.Errorf("reliable: %w: resync probe at seq %d after %d attempts",
				ErrTimeout, baseSeq, attempt)
		}
		rep.FramesSent++
		ack, airtime, err := s.tx.Send(probe, s.coded)
		rep.Airtime += airtime
		if slErr := s.clock.Sleep(ctx, airtime); slErr != nil {
			return relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", slErr)
		}
		if err != nil {
			return relBytes, nextBase, fmt.Errorf("reliable: transport: %w", err)
		}
		if ack != nil {
			_, b := win.ack(ack.NextSeq)
			relBytes += b
			nextBase = ack.NextSeq
			return relBytes, nextBase, nil
		}
		rep.Timeouts++
		if s.metrics != nil {
			s.metrics.Timeouts.Add(1)
		}
		if slErr := s.clock.Sleep(ctx, s.jittered(rto)); slErr != nil {
			return relBytes, nextBase, fmt.Errorf("reliable: send canceled: %w", slErr)
		}
		rto = time.Duration(float64(rto) * s.cfg.Backoff)
		if rto > s.cfg.MaxRTO {
			rto = s.cfg.MaxRTO
		}
	}
}

func (s *Session) baseSeqOf(win *window) byte {
	if len(win.segs) > 0 {
		return win.segs[0].frame.Seq
	}
	return s.m.Seq()
}

// jittered spreads d uniformly over [d·(1−Jitter), d·(1+Jitter)].
func (s *Session) jittered(d time.Duration) time.Duration {
	if s.cfg.Jitter <= 0 {
		return d
	}
	f := 1 + s.cfg.Jitter*(2*s.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}
