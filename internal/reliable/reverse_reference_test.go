package reliable

import (
	"math/rand"
	"testing"
	"time"

	"symbee/internal/link"
	"symbee/internal/splitmix"
)

// This file pins the layered link.DownStack to the monolithic
// reverseChannel it replaced: the PR-8 implementation is preserved
// below verbatim as a test-only reference, and the equivalence test
// drives both through identical randomized schedules with identical
// RNG streams, comparing every observable — ack events, collision
// verdicts, next-arrival predictions and the final ledger — bit for
// bit over 100 splitmix seeds.

// ackCopy is one committed reverse-channel transmission of an ack.
type ackCopy struct {
	ack        Ack
	gen        time.Duration // when the receiver generated the ack
	start, end time.Duration // reverse-channel occupancy span
	dropped    bool          // lost (reverse fault or collision): never arrives
}

// pendingAck is the newest cumulative ack queued behind the serial
// reverse transmitter, not yet started.
type pendingAck struct {
	ack   Ack
	gen   time.Duration
	start time.Duration
	drop  bool
}

// reverseChannel is the PR-8 monolithic downlink model, kept verbatim
// as the equivalence reference.
type reverseChannel struct {
	wall, air, base time.Duration // per-copy occupancy, on-air time, turnaround
	repeat          int           // copies per committed ack
	dropCopy        func() bool   // per-copy reverse loss draw (nil = lossless)
	collide         *rand.Rand    // collision draws (nil = never collides)

	busyUntil time.Duration // serial transmitter: when the last copy ends
	pending   *pendingAck
	inFlight  []ackCopy
	stats     ReverseStats
}

func (rc *reverseChannel) latency() time.Duration { return rc.base + rc.wall }

func (rc *reverseChannel) advance(now time.Duration) {
	p := rc.pending
	if p == nil || p.start > now {
		return
	}
	rc.pending = nil
	for k := 0; k < rc.repeat; k++ {
		c := ackCopy{
			ack:   p.ack,
			gen:   p.gen,
			start: p.start + time.Duration(k)*rc.wall,
			end:   p.start + time.Duration(k+1)*rc.wall,
		}
		if p.drop || (rc.dropCopy != nil && rc.dropCopy()) {
			c.dropped = true
			rc.stats.AcksDropped++
		}
		rc.inFlight = append(rc.inFlight, c)
		rc.stats.AcksSent++
		rc.stats.Airtime += rc.air
	}
	rc.busyUntil = p.start + time.Duration(rc.repeat)*rc.wall
}

func (rc *reverseChannel) generate(gen time.Duration, ack Ack, drop bool) {
	rc.advance(gen)
	start := gen + rc.base
	if rc.busyUntil > start {
		start = rc.busyUntil
	}
	if rc.pending != nil {
		rc.stats.AcksCoalesced++
	}
	rc.pending = &pendingAck{ack: ack, gen: gen, start: start, drop: drop}
}

func (rc *reverseChannel) collideForward(start, end time.Duration) bool {
	if rc.collide == nil || rc.wall <= 0 {
		return false
	}
	duty := float64(rc.air) / float64(rc.wall)
	killed := false
	for i := range rc.inFlight {
		c := &rc.inFlight[i]
		lo, hi := c.start, c.end
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi <= lo {
			continue
		}
		fwdDraw := rc.collide.Float64()
		copyDraw := rc.collide.Float64()
		if fwdDraw < duty {
			if !killed {
				rc.stats.ForwardCollisions++
			}
			killed = true
		}
		if copyDraw < float64(hi-lo)/float64(c.end-c.start) && !c.dropped {
			c.dropped = true
			rc.stats.AckCollisions++
		}
	}
	return killed
}

func (rc *reverseChannel) acks(now time.Duration) []AckEvent {
	rc.advance(now)
	var out []AckEvent
	keep := rc.inFlight[:0]
	for _, c := range rc.inFlight {
		if c.end > now {
			keep = append(keep, c)
			continue
		}
		if !c.dropped {
			out = append(out, AckEvent{Ack: c.ack, GeneratedAt: c.gen, At: c.end})
		}
	}
	rc.inFlight = keep
	return out
}

func (rc *reverseChannel) nextArrival(now time.Duration) (time.Duration, bool) {
	rc.advance(now)
	best := time.Duration(-1)
	for _, c := range rc.inFlight {
		if c.dropped || c.end <= now {
			continue
		}
		if best < 0 || c.end < best {
			best = c.end
		}
	}
	if p := rc.pending; p != nil && !p.drop {
		if first := p.start + rc.wall; best < 0 || first < best {
			best = first
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// reverseOp is one step of a randomized downlink schedule.
type reverseOp struct {
	kind int // 0 generate, 1 collideForward, 2 acks, 3 nextArrival
	now  time.Duration
	end  time.Duration // collideForward span end
	seq  byte
	drop bool
}

// randomReverseSchedule draws a monotone op schedule: times only move
// forward, matching the discrete-event contract both implementations
// assume.
func randomReverseSchedule(r *rand.Rand, n int) []reverseOp {
	ops := make([]reverseOp, 0, n)
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += time.Duration(r.Intn(20)) * time.Millisecond
		op := reverseOp{kind: r.Intn(4), now: now, seq: byte(r.Intn(256))}
		switch op.kind {
		case 0:
			op.drop = r.Intn(10) == 0
		case 1:
			op.end = now + time.Duration(1+r.Intn(30))*time.Millisecond
			now = op.end
		}
		ops = append(ops, op)
	}
	return ops
}

// TestDownlinkLayeredEquivalence drives the layered DownStack and the
// monolithic reference through identical randomized schedules with
// identical splitmix streams over 100 seeds and requires every
// observable to match exactly.
func TestDownlinkLayeredEquivalence(t *testing.T) {
	const seeds = 100
	timings := []struct {
		name            string
		wall, air, base time.Duration
		repeat          int
		ideal           bool
	}{
		{name: "cmorse-like", wall: 37 * time.Millisecond, air: 9 * time.Millisecond,
			base: time.Millisecond, repeat: 1},
		{name: "repeat3", wall: 10 * time.Millisecond, air: 2 * time.Millisecond,
			base: 3 * time.Millisecond, repeat: 3},
		{name: "ideal", repeat: 2, ideal: true},
	}
	for _, tc := range timings {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				// Two independent, identically seeded draws per RNG role:
				// the reference and the stack must consume them in the
				// same order or every downstream comparison unravels.
				refDrop := splitmix.New(seed, splitmix.ReverseStream)
				stkDrop := splitmix.New(seed, splitmix.ReverseStream)
				ref := &reverseChannel{
					wall: tc.wall, air: tc.air, base: tc.base, repeat: tc.repeat,
					dropCopy: func() bool { return refDrop.Float64() < 0.15 },
					collide:  splitmix.New(seed, splitmix.CollisionStream),
				}
				spec := link.DownSpec{
					Repeat:   tc.repeat,
					DropCopy: func() bool { return stkDrop.Float64() < 0.15 },
					Collide:  splitmix.New(seed, splitmix.CollisionStream),
				}
				if !tc.ideal {
					spec.Timing = &link.DownTiming{Wall: tc.wall, Air: tc.air, Base: tc.base}
				}
				stk, err := link.NewDownStack(spec)
				if err != nil {
					t.Fatal(err)
				}
				ops := randomReverseSchedule(splitmix.New(seed, splitmix.ScheduleStream), 200)
				for i, op := range ops {
					switch op.kind {
					case 0:
						ref.generate(op.now, Ack{NextSeq: op.seq}, op.drop)
						stk.Generate(op.now, op.seq, op.drop)
					case 1:
						// Mirror SimLink's usage: advance to the frame end so
						// copies starting mid-frame participate, then draw.
						ref.advance(op.end)
						refKilled := ref.collideForward(op.now, op.end)
						stk.Advance(op.end)
						stkKilled := stk.CollideForward(op.now, op.end)
						if refKilled != stkKilled {
							t.Fatalf("seed %d op %d: collide %v vs %v", seed, i, refKilled, stkKilled)
						}
					case 2:
						refEvs := ref.acks(op.now)
						stkEvs := ackEvents(stk.Arrivals(op.now))
						if len(refEvs) != len(stkEvs) {
							t.Fatalf("seed %d op %d: %d acks vs %d", seed, i, len(refEvs), len(stkEvs))
						}
						for j := range refEvs {
							if refEvs[j] != stkEvs[j] {
								t.Fatalf("seed %d op %d ack %d: %+v vs %+v",
									seed, i, j, refEvs[j], stkEvs[j])
							}
						}
					case 3:
						refAt, refOK := ref.nextArrival(op.now)
						stkAt, stkOK := stk.NextArrival(op.now)
						if refAt != stkAt || refOK != stkOK {
							t.Fatalf("seed %d op %d: nextArrival %v,%v vs %v,%v",
								seed, i, refAt, refOK, stkAt, stkOK)
						}
					}
				}
				if ref.latency() != stk.Latency() {
					t.Fatalf("seed %d: latency %v vs %v", seed, ref.latency(), stk.Latency())
				}
				if got := reverseStats(stk.Ledger()); got != ref.stats {
					t.Fatalf("seed %d: ledger %+v vs %+v", seed, got, ref.stats)
				}
			}
		})
	}
}
