// Package reliable is the SymBee reliability layer: a sliding-window
// ARQ transport that turns the fire-and-forget broadcast of the base
// scheme into guaranteed in-order message delivery over a lossy
// channel.
//
// The paper supplies both halves of the loop. The forward path is the
// ordinary SymBee data plane: payload-encoded ZigBee packets decoded
// from WiFi idle-listening phases. The reverse path is the §VI-A
// cross-technology coordination channel — the WiFi side can always talk
// back to ZigBee (FreeBee shows the side-channel is essentially free),
// so acknowledgments cost no ZigBee airtime. Crocs motivates the third
// ingredient: the two radios share no clock, so retransmission is
// driven by timeouts with exponential backoff and jitter.
//
// # Protocol
//
// A Session fragments a message through core.Messenger and runs
// go-back-N over the fragments: up to Window frames are in flight,
// acknowledgment is cumulative (Ack.NextSeq), duplicates and
// out-of-order arrivals are dropped by the Receiver, which re-acks its
// current expectation so lost acks self-heal. Loss is detected two
// ways: a duplicate ack (some frames arrived, the base frame did not)
// triggers an immediate go-back-N retransmit; silence (every frame or
// every ack lost) waits out a retransmission timer that backs off
// exponentially with jitter up to MaxRTO.
//
// # Graceful degradation
//
// After EscalateAfter consecutive failed flights the session escalates:
// an empty resync probe (sequence base−1, never acceptable to the
// receiver) first elicits a duplicate cumulative ack that pins the
// acknowledged byte count exactly — lost acks make it a lower bound,
// and re-fragmenting from a stale offset would corrupt the stream —
// then the unacknowledged tail of the message is re-fragmented at
// MaxCodedDataBytes and every subsequent frame is Hamming(7,4)-coded
// end to end (header, sequence, data and CRC — the Fig. 21 robustness
// option), giving single-bit-error correction per 7-bit block at 4/7 of
// the plain rate and a third of the per-frame capacity. The receive
// side needs no negotiation: it first tries the plain decoder and falls
// back to synchronized (sync-mode) Hamming decoding at the captured
// anchor, so mode transitions cannot strand frames. After
// DeescalateAfter consecutive clean flights the session de-escalates
// back to plain frames, through the same probe-then-re-cut sequence.
//
// # Testing
//
// SimLink runs the protocol over the real PHY — modulator, channel
// fault injector (internal/channel.FaultInjector: seeded i.i.d. frame
// loss, periodic burst jamming, CFO drift ramps, ack loss) and either
// the batch decoder or the streaming receiver (internal/stream) — under
// a virtual clock, so a 100-run soak over a 4 KiB message takes seconds
// and is bit-reproducible.
package reliable
