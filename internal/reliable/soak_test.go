package reliable

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"

	"symbee/internal/stream"
)

// soakRuns returns how many seeded runs each soak subtest executes.
// Tier-1 defaults to a fast deterministic subset; CI sets
// RELIABLE_SOAK_RUNS=100 for the full acceptance sweep (the bench's
// -reliable mode also replays all 100).
func soakRuns() int {
	if s := os.Getenv("RELIABLE_SOAK_RUNS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 10
}

func soakMessage(seed int64) []byte {
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(int64(i)*31 + seed*17 + 5)
	}
	return msg
}

// soakRun drives one 4 KiB transfer over the fault-injected PHY with the
// C-Morse ack downlink and returns the session report; it fails the test
// unless the message arrives intact.
func soakRun(t *testing.T, seed int64, streaming bool) *Report {
	t.Helper()
	m := stream.NewMetrics()
	cfg := DefaultSimConfig()
	cfg.Faults = ProfileSoak(seed)
	cfg.Stream = streaming
	cfg.Metrics = m
	link, err := NewSimLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	scfg := DefaultConfig()
	scfg.Seed = seed
	scfg.Metrics = m
	s, err := NewSession(link, scfg)
	if err != nil {
		t.Fatal(err)
	}
	msg := soakMessage(seed)
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
	}
	msgs := link.Messages()
	if len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
		t.Fatalf("seed %d: message not delivered intact (%d messages)", seed, len(msgs))
	}
	if rs := link.ReverseStats(); rs.AcksSent == 0 || rs.Airtime == 0 {
		t.Fatalf("seed %d: reverse channel never transmitted (%+v)", seed, rs)
	}
	return rep
}

// TestARQSoak is the acceptance soak: under 10% i.i.d. frame loss plus
// periodic burst interference plus ack loss, every seeded run must
// deliver the 4 KiB message intact over both receive paths — now with
// acks riding the modeled C-Morse downlink instead of a free side
// channel.
func TestARQSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	runs := soakRuns()
	for _, path := range []struct {
		name      string
		streaming bool
	}{{"batch", false}, {"stream", true}} {
		path := path
		t.Run(path.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < int64(runs); seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
					t.Parallel()
					rep := soakRun(t, seed, path.streaming)
					if rep.Retransmits == 0 {
						t.Errorf("seed %d: 10%% loss produced zero retransmits — faults not applied?", seed)
					}
				})
			}
		})
	}
}

// TestARQBidirectionalSoak is the bidirectional acceptance soak: 10%
// frame loss forward, 10% per-copy ack loss on the reverse path, with
// each ack repeated twice for loss protection. Every seeded run must
// survive late, duplicated, collided and missing acks and still deliver
// the 4 KiB message intact. CI nightly runs the full 100 seeds via
// RELIABLE_SOAK_RUNS.
func TestARQBidirectionalSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	runs := soakRuns()
	var dropped, collided int
	for seed := int64(0); seed < int64(runs); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			m := stream.NewMetrics()
			cfg := DefaultSimConfig()
			cfg.Faults = ProfileBidir(seed)
			cfg.AckRepeat = 2
			cfg.Metrics = m
			link, err := NewSimLink(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer link.Close()
			scfg := DefaultConfig()
			scfg.Seed = seed
			scfg.Metrics = m
			s, err := NewSession(link, scfg)
			if err != nil {
				t.Fatal(err)
			}
			msg := soakMessage(seed)
			rep, err := s.Send(context.Background(), msg)
			if err != nil {
				t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
			}
			msgs := link.Messages()
			if len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
				t.Fatalf("seed %d: message not delivered intact (%d messages)", seed, len(msgs))
			}
			rs := link.ReverseStats()
			if rs.AcksSent == 0 {
				t.Fatalf("seed %d: reverse channel idle", seed)
			}
			dropped += rs.AcksDropped
			collided += rs.AckCollisions + rs.ForwardCollisions
		})
	}
	if dropped == 0 {
		t.Error("10% reverse loss dropped zero ack copies across the sweep")
	}
	if collided == 0 {
		t.Error("no ack/forward collisions across the sweep")
	}
}

// With faults disabled and the ideal downlink the ARQ spends exactly
// the fire-and-forget airtime: the ≤5% overhead acceptance criterion,
// met with zero margin, on both receive paths. The ideal downlink is
// load-bearing here — under a latent downlink go-back-N inherently
// retransmits delivered-but-unacked frames, which is the honest cost
// the reliability table in the README now reports.
func TestARQOverheadCleanChannel(t *testing.T) {
	for _, streaming := range []bool{false, true} {
		cfg := DefaultSimConfig()
		cfg.Downlink = DownlinkIdeal
		cfg.Stream = streaming
		link, err := NewSimLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		scfg := DefaultConfig()
		scfg.Seed = 1
		s, err := NewSession(link, scfg)
		if err != nil {
			t.Fatal(err)
		}
		msg := soakMessage(7)
		rep, err := s.Send(context.Background(), msg)
		if err != nil {
			t.Fatalf("stream=%v: %v", streaming, err)
		}
		if msgs := link.Messages(); len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
			t.Fatalf("stream=%v: message not delivered", streaming)
		}
		baseline := PlainAirtime(len(msg))
		if rep.Airtime != baseline {
			t.Fatalf("stream=%v: airtime %v != baseline %v (overhead criterion)", streaming, rep.Airtime, baseline)
		}
		if rep.Retransmits != 0 || rep.Timeouts != 0 {
			t.Fatalf("stream=%v: clean channel produced %d retransmits %d timeouts",
				streaming, rep.Retransmits, rep.Timeouts)
		}
		link.Close()
	}
}

// Under the harsh profile (drift ramps, heavier loss) the transfer must
// still complete; this is the path that exercises escalation against
// the real coded decoder.
func TestARQHarshProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	m := stream.NewMetrics()
	cfg := DefaultSimConfig()
	cfg.Faults = ProfileHarsh(3)
	cfg.Metrics = m
	link, err := NewSimLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	scfg := DefaultConfig()
	scfg.Seed = 3
	scfg.Metrics = m
	s, err := NewSession(link, scfg)
	if err != nil {
		t.Fatal(err)
	}
	msg := soakMessage(3)
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatalf("%v (report %+v)", err, rep)
	}
	if msgs := link.Messages(); len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
		t.Fatal("message not delivered intact")
	}
	lost, jammed, _ := link.FaultStats()
	if lost == 0 || jammed == 0 {
		t.Fatalf("harsh profile exercised nothing: lost=%d jammed=%d", lost, jammed)
	}
}
