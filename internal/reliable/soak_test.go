package reliable

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"

	"symbee/internal/stream"
)

// soakRuns returns how many seeded runs each soak subtest executes.
// Tier-1 defaults to a fast deterministic subset; CI sets
// RELIABLE_SOAK_RUNS=100 for the full acceptance sweep (the bench's
// -reliable mode also replays all 100).
func soakRuns() int {
	if s := os.Getenv("RELIABLE_SOAK_RUNS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 10
}

func soakMessage(seed int64) []byte {
	msg := make([]byte, 4096)
	for i := range msg {
		msg[i] = byte(int64(i)*31 + seed*17 + 5)
	}
	return msg
}

// soakRun drives one 4 KiB transfer over the fault-injected PHY and
// returns the session report; it fails the test unless the message
// arrives intact.
func soakRun(t *testing.T, seed int64, streaming bool) *Report {
	t.Helper()
	m := stream.NewMetrics()
	link, err := NewSimLink(SimConfig{
		Faults:  ProfileSoak(seed),
		Stream:  streaming,
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	s, err := NewSession(link, Config{Seed: seed, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	msg := soakMessage(seed)
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatalf("seed %d: %v (report %+v)", seed, err, rep)
	}
	msgs := link.Messages()
	if len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
		t.Fatalf("seed %d: message not delivered intact (%d messages)", seed, len(msgs))
	}
	return rep
}

// TestARQSoak is the acceptance soak: under 10% i.i.d. frame loss plus
// periodic burst interference plus ack loss, every seeded run must
// deliver the 4 KiB message intact over both receive paths.
func TestARQSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	runs := soakRuns()
	for _, path := range []struct {
		name      string
		streaming bool
	}{{"batch", false}, {"stream", true}} {
		path := path
		t.Run(path.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(0); seed < int64(runs); seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
					t.Parallel()
					rep := soakRun(t, seed, path.streaming)
					if rep.Retransmits == 0 {
						t.Errorf("seed %d: 10%% loss produced zero retransmits — faults not applied?", seed)
					}
				})
			}
		})
	}
}

// With faults disabled the ARQ spends exactly the fire-and-forget
// airtime: the ≤5% overhead acceptance criterion, met with zero margin,
// on both receive paths.
func TestARQOverheadCleanChannel(t *testing.T) {
	for _, streaming := range []bool{false, true} {
		link, err := NewSimLink(SimConfig{Stream: streaming})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewSession(link, Config{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		msg := soakMessage(7)
		rep, err := s.Send(context.Background(), msg)
		if err != nil {
			t.Fatalf("stream=%v: %v", streaming, err)
		}
		if msgs := link.Messages(); len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
			t.Fatalf("stream=%v: message not delivered", streaming)
		}
		baseline := PlainAirtime(len(msg))
		if rep.Airtime != baseline {
			t.Fatalf("stream=%v: airtime %v != baseline %v (overhead criterion)", streaming, rep.Airtime, baseline)
		}
		if rep.Retransmits != 0 || rep.Timeouts != 0 {
			t.Fatalf("stream=%v: clean channel produced %d retransmits %d timeouts",
				streaming, rep.Retransmits, rep.Timeouts)
		}
		link.Close()
	}
}

// Under the harsh profile (drift ramps, heavier loss) the transfer must
// still complete; this is the path that exercises escalation against
// the real coded decoder.
func TestARQHarshProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	m := stream.NewMetrics()
	link, err := NewSimLink(SimConfig{Faults: ProfileHarsh(3), Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	defer link.Close()
	s, err := NewSession(link, Config{Seed: 3, Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	msg := soakMessage(3)
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatalf("%v (report %+v)", err, rep)
	}
	if msgs := link.Messages(); len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
		t.Fatal("message not delivered intact")
	}
	lost, jammed, _ := link.FaultStats()
	if lost == 0 || jammed == 0 {
		t.Fatalf("harsh profile exercised nothing: lost=%d jammed=%d", lost, jammed)
	}
}
