package reliable

import (
	"symbee/internal/core"
	"symbee/internal/link"
)

// Ack is the cumulative acknowledgment carried on the WiFi→ZigBee
// reverse channel: NextSeq is the sequence number of the next frame the
// receiver expects, i.e. everything before it has been delivered.
type Ack struct {
	NextSeq byte
}

// Receiver is the ARQ receive side: it accepts decoded frames in
// whatever order the channel produces them, drops duplicates and
// out-of-order arrivals (go-back-N buffers nothing ahead of the
// expectation), feeds the in-order stream through a core.Reassembler
// and answers every delivery with the current cumulative Ack.
type Receiver struct {
	expected byte
	asm      core.Reassembler
	msgs     [][]byte
	dups     int
	metrics  *link.Metrics
}

// NewReceiver returns an ARQ receiver expecting sequence 0. The metrics
// registry is optional; when set, duplicate drops are counted there.
func NewReceiver(m *link.Metrics) *Receiver {
	return &Receiver{metrics: m}
}

// Deliver accepts one decoded frame and returns the acknowledgment to
// send back. A frame that is not the expected next sequence — a
// duplicate from a retransmission, or a later frame whose predecessor
// was lost — is dropped, and the repeated Ack tells the sender where
// the window really stands.
func (r *Receiver) Deliver(f *core.Frame) (Ack, error) {
	if f.Seq != r.expected {
		r.dups++
		if r.metrics != nil {
			r.metrics.DupDrops.Add(1)
		}
		return Ack{NextSeq: r.expected}, nil
	}
	msg, done, err := r.asm.Add(f)
	if err != nil {
		// The reassembler resynchronizes internally; surface the error
		// but keep the cumulative ack honest.
		return Ack{NextSeq: r.expected}, err
	}
	r.expected = f.Seq + 1
	if done {
		r.msgs = append(r.msgs, msg)
	}
	return Ack{NextSeq: r.expected}, nil
}

// Expected returns the next sequence number the receiver will accept.
func (r *Receiver) Expected() byte { return r.expected }

// DupDrops returns how many frames were dropped as duplicates or
// out-of-order arrivals.
func (r *Receiver) DupDrops() int { return r.dups }

// Messages drains the completely reassembled messages, in order.
func (r *Receiver) Messages() [][]byte {
	out := r.msgs
	r.msgs = nil
	return out
}
