package reliable

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"symbee/internal/core"
	"symbee/internal/link"
	"symbee/internal/stream"
	"symbee/internal/testutil"
)

// scriptTx is a Transport driven by a per-send outcome script:
// 'd' deliver and ack, 'l' lose the frame, 'a' deliver but lose every
// copy of the ack. Past the end of the script every send is 'd'. Acks
// ride a layered link.DownStack — ideal (zero-width, zero-latency) by
// default, so scripted tests reproduce the classic synchronous
// timeline through the async contract.
type scriptTx struct {
	script []byte
	i      int
	arq    *Receiver
	down   *link.DownStack
	coded  []bool // coding mode of each send, in order
}

func newScriptTx(script string) *scriptTx {
	return newScriptTxDownlink(script, 0, 0, 0, 1)
}

// newScriptTxDownlink scripts outcomes over a downlink stack with the
// given per-copy wall span, on-air time, turnaround and repeat count.
func newScriptTxDownlink(script string, wall, air, base time.Duration, repeat int) *scriptTx {
	down, err := link.NewDownStack(link.DownSpec{
		Timing: &link.DownTiming{Wall: wall, Air: air, Base: base},
		Repeat: repeat,
	})
	if err != nil {
		panic(err)
	}
	return &scriptTx{
		script: []byte(script),
		arq:    NewReceiver(nil),
		down:   down,
	}
}

func (tx *scriptTx) Send(now time.Duration, f *core.Frame, coded bool) (time.Duration, error) {
	op := byte('d')
	if tx.i < len(tx.script) {
		op = tx.script[tx.i]
	}
	tx.i++
	tx.coded = append(tx.coded, coded)
	at := FrameAirtime(len(f.Data), coded)
	end := now + at
	tx.down.Advance(end)
	switch op {
	case 'l':
		// Frame lost on the forward path: no delivery, no ack.
	case 'a':
		ack, _ := tx.arq.Deliver(f)
		tx.down.Generate(end, ack.NextSeq, true)
	default:
		ack, _ := tx.arq.Deliver(f)
		tx.down.Generate(end, ack.NextSeq, false)
	}
	return at, nil
}

func (tx *scriptTx) Acks(now time.Duration) []AckEvent {
	return ackEvents(tx.down.Arrivals(now))
}

func (tx *scriptTx) NextArrival(now time.Duration) (time.Duration, bool) {
	return tx.down.NextArrival(now)
}

func (tx *scriptTx) AckLatency() time.Duration { return tx.down.Latency() }

func (tx *scriptTx) message() []byte {
	msgs := tx.arq.Messages()
	if len(msgs) == 0 {
		return nil
	}
	return msgs[0]
}

// cfgSeed is DefaultConfig with just the jitter seed pinned.
func cfgSeed(seed int64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	return cfg
}

func testMessage(n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(i*7 + 3)
	}
	return msg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero window", func(c *Config) { c.Window = 0 }},
		{"zero rto", func(c *Config) { c.InitialRTO = 0 }},
		{"max below initial", func(c *Config) { c.MaxRTO = c.InitialRTO - 1 }},
		{"backoff below 1", func(c *Config) { c.Backoff = 0.5 }},
		{"jitter at 1", func(c *Config) { c.Jitter = 1 }},
		{"zero retries", func(c *Config) { c.MaxRetries = 0 }},
		{"negative escalate", func(c *Config) { c.EscalateAfter = -1 }},
		{"negative deescalate", func(c *Config) { c.DeescalateAfter = -1 }},
	}
	for _, tt := range cases {
		cfg := DefaultConfig()
		tt.mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: validated", tt.name)
		}
		if _, err := NewSession(newScriptTx(""), cfg); err == nil {
			t.Errorf("%s: NewSession accepted it", tt.name)
		}
	}
	if _, err := NewSession(nil, DefaultConfig()); err == nil {
		t.Error("NewSession accepted a nil transport")
	}
}

func TestSessionRTOFloorFromAckLatency(t *testing.T) {
	// A 37 ms + 1 ms downlink floors the default 20 ms RTO at 1.5× the
	// ack latency: any shorter timer would fire before an ack for the
	// first frame could possibly return.
	tx := newScriptTxDownlink("", 37*time.Millisecond, 9*time.Millisecond, time.Millisecond, 1)
	s, err := NewSession(tx, cfgSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if want := 57 * time.Millisecond; s.cfg.InitialRTO != want {
		t.Errorf("InitialRTO = %v, want floored %v", s.cfg.InitialRTO, want)
	}
	if s.cfg.MaxRTO < 2*s.cfg.InitialRTO {
		t.Errorf("MaxRTO %v below 2× floored InitialRTO", s.cfg.MaxRTO)
	}
	// An ideal downlink leaves the config untouched.
	s2, err := NewSession(newScriptTx(""), cfgSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if s2.cfg.InitialRTO != DefaultConfig().InitialRTO {
		t.Errorf("ideal downlink moved InitialRTO to %v", s2.cfg.InitialRTO)
	}
}

func TestCodedCapacityDerivation(t *testing.T) {
	room := core.MaxPayloadBits - core.PreambleBits
	fits := codedLen(core.HeaderBits + 8*MaxCodedDataBytes + core.CRCBits)
	if fits > room {
		t.Fatalf("coded frame of %d data bytes needs %d bits > %d available",
			MaxCodedDataBytes, fits, room)
	}
	next := codedLen(core.HeaderBits + 8*(MaxCodedDataBytes+1) + core.CRCBits)
	if next <= room {
		t.Fatalf("MaxCodedDataBytes too conservative: %d+1 bytes fit in %d bits", MaxCodedDataBytes, room)
	}
}

func TestCodedFrameRejectsOversize(t *testing.T) {
	_, err := CodedFrameBits(&core.Frame{Data: make([]byte, MaxCodedDataBytes+1)})
	if !errors.Is(err, core.ErrBadLength) {
		t.Fatalf("err = %v, want ErrBadLength", err)
	}
}

// A Hamming-coded frame survives the full PHY round trip, including a
// correctable bit error per codeword block.
func TestCodedFramePHYRoundtrip(t *testing.T) {
	link, err := core.NewLink(core.Params20(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := &core.Frame{Seq: 42, Flags: core.FlagMore, Data: []byte{0xDE, 0xAD, 0xBF}}
	bits, err := CodedFrameBits(want)
	if err != nil {
		t.Fatal(err)
	}
	// One flipped bit in every 7-bit block: the worst correctable case.
	for i := 0; i < len(bits); i += 7 {
		bits[i+3] ^= 1
	}
	payload, err := core.EncodeBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := link.PayloadToSignal(payload)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCodedPhases(link.Decoder(), link.Phases(sig))
	if err != nil {
		t.Fatalf("DecodeCodedPhases: %v", err)
	}
	if got.Seq != want.Seq || got.Flags != want.Flags || !bytes.Equal(got.Data, want.Data) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// The plain decoder must reject the same capture fast (version
	// mismatch), or negotiation-free trial decoding would not work.
	if _, err := link.Decoder().DecodeFrame(link.Phases(sig)); err == nil {
		t.Fatal("plain decoder accepted a coded frame")
	}
}

func TestWindowAckArithmetic(t *testing.T) {
	w := &window{max: 4}
	for i := 0; i < 4; i++ {
		f := &core.Frame{Seq: byte(254 + i), Data: []byte{1, 2}} // wraps 254,255,0,1
		if err := w.offer(&segment{frame: f}); err != nil {
			t.Fatalf("offer %d: %v", i, err)
		}
	}
	if err := w.offer(&segment{frame: &core.Frame{}}); !errors.Is(err, ErrWindowFull) {
		t.Fatalf("offer to full window: %v, want ErrWindowFull", err)
	}
	if rel, _ := w.ack(254); rel != 0 {
		t.Fatalf("stale ack released %d", rel)
	}
	rel, bts := w.ack(0) // across the wrap: releases 254,255
	if rel != 2 || bts != 4 {
		t.Fatalf("ack(0) released %d segs %d bytes, want 2 and 4", rel, bts)
	}
	rel, _ = w.ack(2) // catch-up to empty
	if rel != 2 || len(w.segs) != 0 {
		t.Fatalf("ack(2) released %d, window len %d", rel, len(w.segs))
	}
}

func TestReceiverDedup(t *testing.T) {
	m := stream.NewMetrics()
	r := NewReceiver(m)
	ack, err := r.Deliver(&core.Frame{Seq: 0, Flags: core.FlagMore, Data: []byte{1}})
	if err != nil || ack.NextSeq != 1 {
		t.Fatalf("in-order deliver: ack %+v err %v", ack, err)
	}
	// Duplicate and future frames are both dropped with a repeated ack.
	for _, seq := range []byte{0, 2} {
		ack, _ = r.Deliver(&core.Frame{Seq: seq, Data: []byte{9}})
		if ack.NextSeq != 1 {
			t.Fatalf("seq %d: ack %d, want repeated 1", seq, ack.NextSeq)
		}
	}
	if r.DupDrops() != 2 || m.DupDrops.Load() != 2 {
		t.Fatalf("dup drops = %d / metric %d, want 2", r.DupDrops(), m.DupDrops.Load())
	}
	ack, _ = r.Deliver(&core.Frame{Seq: 1, Data: []byte{2}})
	if ack.NextSeq != 2 {
		t.Fatalf("ack %d, want 2", ack.NextSeq)
	}
	msgs := r.Messages()
	if len(msgs) != 1 || !bytes.Equal(msgs[0], []byte{1, 2}) {
		t.Fatalf("messages = %v", msgs)
	}
}

func TestSessionCleanDelivery(t *testing.T) {
	tx := newScriptTx("")
	s, err := NewSession(tx, cfgSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	msg := testMessage(95) // 9 full frames + one 5-byte tail
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tx.message(), msg) {
		t.Fatal("delivered message differs")
	}
	if rep.FramesSent != 10 || rep.Retransmits != 0 || rep.Timeouts != 0 {
		t.Fatalf("report %+v, want 10 clean frames", rep)
	}
	// Zero faults → ARQ forward airtime is exactly the fire-and-forget
	// baseline: the ≤5% overhead criterion holds with margin zero.
	if rep.Airtime != PlainAirtime(len(msg)) {
		t.Fatalf("airtime %v != plain baseline %v", rep.Airtime, PlainAirtime(len(msg)))
	}
	if rep.GoodputBps() <= 0 {
		t.Fatal("goodput not positive")
	}
}

func TestSessionRetransmitOnLoss(t *testing.T) {
	tx := newScriptTx("l") // first frame lost once, everything after clean
	m := stream.NewMetrics()
	cfg := cfgSeed(1)
	cfg.Metrics = m
	s, err := NewSession(tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMessage(80)
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tx.message(), msg) {
		t.Fatal("delivered message differs")
	}
	if rep.Retransmits == 0 {
		t.Fatal("loss produced no retransmit")
	}
	if rep.Timeouts != 0 {
		t.Fatalf("dup-ack recovery should not wait out timers, got %d timeouts", rep.Timeouts)
	}
	if m.Retransmits.Load() == 0 {
		t.Fatal("retransmits not counted in shared registry")
	}
}

func TestSessionAckLossRecovery(t *testing.T) {
	// The whole first flight delivers but every ack is lost: the sender
	// times out, retransmits, and the receiver's catch-up ack releases
	// the full window at once.
	tx := newScriptTx("aaaaaaaa")
	s, err := NewSession(tx, cfgSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	msg := testMessage(80)
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tx.message(), msg) {
		t.Fatal("delivered message differs")
	}
	if rep.Timeouts == 0 {
		t.Fatal("total ack loss must surface as a timeout")
	}
	if tx.arq.DupDrops() == 0 {
		t.Fatal("retransmitted flight should have been dup-dropped")
	}
}

func TestSessionTimeoutExhaustion(t *testing.T) {
	tx := newScriptTx("llllllllllllllllllllllllllllllllllllllllllllllllllllllll")
	clock := NewVirtualClock()
	cfg := cfgSeed(1)
	cfg.Window = 2
	cfg.MaxRetries = 3
	cfg.EscalateAfter = 0 // escalation disabled
	cfg.Clock = clock
	s, err := NewSession(tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Send(context.Background(), testMessage(20))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if rep.Timeouts == 0 {
		t.Fatal("no timeouts reported")
	}
	if clock.Now() == 0 {
		t.Fatal("virtual clock never advanced through the backoff")
	}
}

func TestSessionEscalatesAndDeescalates(t *testing.T) {
	// Window 2, EscalateAfter 2: two silent flights (4 losses) trigger
	// coded mode; the clean channel afterwards de-escalates after 2
	// progressing flights.
	tx := newScriptTx("llll")
	m := stream.NewMetrics()
	cfg := cfgSeed(1)
	cfg.Window = 2
	cfg.EscalateAfter = 2
	cfg.DeescalateAfter = 2
	cfg.Metrics = m
	s, err := NewSession(tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMessage(60)
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tx.message(), msg) {
		t.Fatal("delivered message differs")
	}
	if rep.Escalations != 1 || m.Escalations.Load() != 1 {
		t.Fatalf("escalations = %d, want 1", rep.Escalations)
	}
	if rep.Deescalations != 1 || m.Deescalations.Load() != 1 {
		t.Fatalf("deescalations = %d, want 1", rep.Deescalations)
	}
	var sawCoded, sawPlainAfterCoded bool
	for _, c := range tx.coded {
		if c {
			sawCoded = true
		} else if sawCoded {
			sawPlainAfterCoded = true
		}
	}
	if !sawCoded || !sawPlainAfterCoded {
		t.Fatalf("coding sequence %v never escalated and recovered", tx.coded)
	}
	if rep.Coded {
		t.Fatal("session should have ended in plain mode")
	}
}

// TestSessionEscalationResync is the regression for the
// re-fragmentation desync: frame 0 is delivered but both its acks are
// lost, so the sender's acked count (0) lags the receiver's expectation
// (1) when escalation re-cuts the message at the coded capacity.
// Without the resync probe the re-cut maps msg[0:3] onto seq 0, the
// receiver's duplicate ack for seq 1 releases that 3-byte segment in
// place of the 10 bytes it actually consumed, and the delivered message
// comes up 7 bytes short.
func TestSessionEscalationResync(t *testing.T) {
	// Window 1, EscalateAfter 2: 'a' delivers frame 0 but drops the
	// ack, its retransmission is dup-dropped with the ack lost again,
	// then the second silent flight escalates.
	tx := newScriptTx("aa")
	cfg := cfgSeed(1)
	cfg.Window = 1
	cfg.EscalateAfter = 2
	cfg.DeescalateAfter = 0 // coded mode sticky
	s, err := NewSession(tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMessage(20)
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if got := tx.message(); !bytes.Equal(got, msg) {
		t.Fatalf("delivered %d bytes, want %d intact: resync before re-cut failed", len(got), len(msg))
	}
	if rep.Escalations != 1 {
		t.Fatalf("escalations = %d, want 1", rep.Escalations)
	}
	// The probe is the first coded send and must never be accepted as
	// data: the receiver drops it as out-of-order.
	if tx.arq.DupDrops() < 2 {
		t.Fatalf("dup drops = %d, want ≥2 (retransmit + resync probe)", tx.arq.DupDrops())
	}
}

func TestSessionStickyCodedMode(t *testing.T) {
	tx := newScriptTx("llll")
	cfg := cfgSeed(1)
	cfg.Window = 2
	cfg.EscalateAfter = 2
	cfg.DeescalateAfter = 0
	s, err := NewSession(tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send(context.Background(), testMessage(30)); err != nil {
		t.Fatal(err)
	}
	if !s.Coded() {
		t.Fatal("DeescalateAfter 0 must keep coded mode sticky")
	}
}

func TestSessionContextCancel(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewSession(newScriptTx(""), cfgSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Send(ctx, testMessage(10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSessionEmptyMessage(t *testing.T) {
	s, err := NewSession(newScriptTx(""), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send(context.Background(), nil); !errors.Is(err, core.ErrEmptyMessage) {
		t.Fatalf("err = %v, want ErrEmptyMessage", err)
	}
}

func TestSessionDeterministicSchedule(t *testing.T) {
	run := func() *Report {
		tx := newScriptTx("lalal")
		s, err := NewSession(tx, cfgSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Send(context.Background(), testMessage(200))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if *a != *b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestSessionMultipleMessages(t *testing.T) {
	tx := newScriptTx("")
	s, err := NewSession(tx, cfgSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		msg := testMessage(25 + i)
		if _, err := s.Send(context.Background(), msg); err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got := tx.message(); !bytes.Equal(got, msg) {
			t.Fatalf("message %d differs", i)
		}
	}
}

// lateTx delivers every frame and schedules its ack at a scripted
// per-send arrival delay after the frame ends — a downlink whose
// nominal latency is tiny but whose individual acks can straggle
// arbitrarily past the retransmission timer.
type lateTx struct {
	arq    *Receiver
	delays []time.Duration // ack arrival delay per send; past the end = 0
	i      int
	events []AckEvent
}

func (tx *lateTx) Send(now time.Duration, f *core.Frame, coded bool) (time.Duration, error) {
	at := FrameAirtime(len(f.Data), coded)
	end := now + at
	ack, _ := tx.arq.Deliver(f)
	var d time.Duration
	if tx.i < len(tx.delays) {
		d = tx.delays[tx.i]
	}
	tx.i++
	tx.events = append(tx.events, AckEvent{Ack: ack, GeneratedAt: end, At: end + d})
	return at, nil
}

func (tx *lateTx) Acks(now time.Duration) []AckEvent {
	var out []AckEvent
	keep := tx.events[:0]
	for _, ev := range tx.events {
		if ev.At <= now {
			out = append(out, ev)
		} else {
			keep = append(keep, ev)
		}
	}
	tx.events = keep
	return out
}

func (tx *lateTx) NextArrival(now time.Duration) (time.Duration, bool) {
	best := time.Duration(-1)
	for _, ev := range tx.events {
		if ev.At > now && (best < 0 || ev.At < best) {
			best = ev.At
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

func (tx *lateTx) AckLatency() time.Duration { return time.Millisecond }

// TestSessionLateAckAfterRTO: the first flight's acks straggle in 30 ms
// late, well past the ~20 ms RTO, so the sender has already gone back
// and retransmitted when they land. The late acks must still apply
// their cumulative releases, and their stale generation stamps must not
// read as fresh loss evidence — one timeout, the minimal go-back-N
// retransmissions, and an intact message delivered exactly once.
func TestSessionLateAckAfterRTO(t *testing.T) {
	tx := &lateTx{arq: NewReceiver(nil), delays: []time.Duration{
		30 * time.Millisecond, 30 * time.Millisecond,
		500 * time.Millisecond, 500 * time.Millisecond, 500 * time.Millisecond,
	}}
	cfg := cfgSeed(1)
	cfg.Window = 2
	s, err := NewSession(tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMessage(20) // 2 frames
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	msgs := tx.arq.Messages()
	if len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
		t.Fatalf("late acks corrupted delivery: %d messages", len(msgs))
	}
	if rep.Timeouts != 1 {
		t.Errorf("timeouts = %d, want exactly the one RTO the late acks missed", rep.Timeouts)
	}
	// Flight 2 retransmits both frames before late ack #1 releases the
	// base; flight 3 retransmits the last frame before late ack #2
	// finishes the transfer. Anything above 3 means the stale acks were
	// misread as loss evidence.
	if rep.Retransmits != 3 {
		t.Errorf("retransmits = %d, want 3", rep.Retransmits)
	}
	if tx.arq.DupDrops() != 3 {
		t.Errorf("dup drops = %d, want 3", tx.arq.DupDrops())
	}
}

// TestSessionDuplicateDownlinkAcks: a Repeat-3 downlink delivers every
// ack three times. The duplicate copies carry stale generation stamps,
// so they must neither release anything twice nor read as loss
// evidence: zero retransmits, zero timeouts on a clean forward path.
func TestSessionDuplicateDownlinkAcks(t *testing.T) {
	tx := newScriptTxDownlink("", 2*time.Millisecond, 500*time.Microsecond, 500*time.Microsecond, 3)
	cfg := cfgSeed(1)
	cfg.Window = 1
	s, err := NewSession(tx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	msg := testMessage(20) // 2 frames
	rep, err := s.Send(context.Background(), msg)
	if err != nil {
		t.Fatal(err)
	}
	msgs := tx.arq.Messages()
	if len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
		t.Fatalf("duplicate acks corrupted delivery: %d messages", len(msgs))
	}
	if rep.Retransmits != 0 || rep.Timeouts != 0 {
		t.Errorf("duplicate acks caused %d retransmits and %d timeouts, want none",
			rep.Retransmits, rep.Timeouts)
	}
	ledger := tx.down.Ledger()
	if got := ledger.AcksSent; got != 6 {
		t.Errorf("reverse channel sent %d copies, want 2 acks × 3 repeats", got)
	}
	if ledger.AcksDropped != 0 {
		t.Errorf("clean reverse path dropped %d copies", ledger.AcksDropped)
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock()
	if err := c.Sleep(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Now() != 5*time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sleep: %v", err)
	}
	if c.Now() != 5*time.Second {
		t.Fatal("canceled sleep advanced the clock")
	}
}

func TestWallClockSleepCancel(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	c := NewWallClock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sleep: %v", err)
	}
}
