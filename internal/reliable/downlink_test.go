package reliable

import (
	"bytes"
	"context"
	"testing"
	"time"

	"symbee/internal/channel"
	"symbee/internal/link"
	"symbee/internal/stream"
)

func TestDownlinkSchemeTable(t *testing.T) {
	schemes := DownlinkSchemes()
	if len(schemes) != 5 {
		t.Fatalf("schemes = %v, want ideal + 4 modeled operating points", schemes)
	}
	names := map[DownlinkScheme]string{
		DownlinkIdeal:   "ideal",
		DownlinkCMorse:  "cmorse",
		DownlinkFreeBee: "freebee",
		DownlinkDCTC:    "dctc",
		DownlinkEMF:     "emf",
	}
	for _, d := range schemes {
		if d.String() != names[d] {
			t.Errorf("scheme %d named %q, want %q", d, d.String(), names[d])
		}
		dl, err := d.downlink()
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if d == DownlinkIdeal {
			if d.Modeled() {
				t.Error("ideal reports Modeled")
			}
			if dl != nil {
				t.Errorf("ideal resolved a ctc downlink: %+v", dl)
			}
			continue
		}
		if !d.Modeled() {
			t.Errorf("%s does not report Modeled", d)
		}
		if dl.AckWall() <= 0 || dl.AckAir() <= 0 || dl.AckAir() > dl.AckWall() || dl.BaseLatency() <= 0 {
			t.Errorf("%s: wall=%v air=%v base=%v", d, dl.AckWall(), dl.AckAir(), dl.BaseLatency())
		}
	}
	if _, err := DownlinkScheme(99).downlink(); err == nil {
		t.Error("unknown scheme accepted")
	}
	if DownlinkScheme(99).String() != "unknown" || DownlinkScheme(99).Modeled() {
		t.Error("unknown scheme named or modeled")
	}
}

func TestDownlinkSchemeOperatingPoints(t *testing.T) {
	duty := func(d DownlinkScheme) (wall, duty float64) {
		dl, err := d.downlink()
		if err != nil {
			t.Fatal(err)
		}
		return dl.AckWall(), dl.Duty()
	}
	// FreeBee acks are far slower but far lower duty than C-Morse.
	cw, cd := duty(DownlinkCMorse)
	fw, fd := duty(DownlinkFreeBee)
	if fw <= cw {
		t.Errorf("FreeBee wall %v should exceed C-Morse wall %v", fw, cw)
	}
	if fd >= cd {
		t.Error("FreeBee duty should be below C-Morse duty")
	}
	// DCTC is the fastest modeled point; EMF sits at C-Morse-class
	// latency with a smaller collision cross-section.
	dw, _ := duty(DownlinkDCTC)
	ew, ed := duty(DownlinkEMF)
	if dw >= cw || dw >= ew {
		t.Errorf("DCTC wall %v should undercut C-Morse %v and EMF %v", dw, cw, ew)
	}
	if ed >= cd {
		t.Error("EMF duty should be below C-Morse duty")
	}
}

// TestSimLinkDownlinkLatency pins the Transport-level latency of each
// modeled scheme to its ctc operating point through the layered stack.
func TestSimLinkDownlinkLatency(t *testing.T) {
	for _, d := range DownlinkSchemes() {
		cfg := DefaultSimConfig()
		cfg.Downlink = d
		l, err := NewSimLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		lat := l.AckLatency()
		l.Close()
		if d == DownlinkIdeal {
			if lat != 0 {
				t.Errorf("ideal latency = %v", lat)
			}
			continue
		}
		dl, err := d.downlink()
		if err != nil {
			t.Fatal(err)
		}
		want := time.Duration(dl.AckWall()*float64(time.Second)) +
			time.Duration(dl.BaseLatency()*float64(time.Second))
		if lat != want {
			t.Errorf("%s latency = %v, want %v", d, lat, want)
		}
	}
}

// TestSimLinkReverseCollisions drives a full transfer over the C-Morse
// downlink with no injected faults: every loss in the run is a genuine
// half-duplex collision between forward frames and ack bursts, and the
// session must still deliver through them.
func TestSimLinkReverseCollisions(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY soak skipped in -short mode")
	}
	run := func() (*Report, ReverseStats) {
		cfg := DefaultSimConfig()
		cfg.Faults = channel.FaultConfig{Seed: 5}
		m := stream.NewMetrics()
		cfg.Metrics = m
		link, err := NewSimLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer link.Close()
		scfg := cfgSeed(5)
		scfg.Metrics = m
		s, err := NewSession(link, scfg)
		if err != nil {
			t.Fatal(err)
		}
		msg := testMessage(1000)
		rep, err := s.Send(context.Background(), msg)
		if err != nil {
			t.Fatalf("%v (report %+v)", err, rep)
		}
		if msgs := link.Messages(); len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
			t.Fatal("message not delivered intact through collisions")
		}
		return rep, link.ReverseStats()
	}
	rep, stats := run()
	if stats.AcksSent == 0 || stats.Airtime == 0 {
		t.Fatalf("reverse channel idle: %+v", stats)
	}
	if stats.ForwardCollisions+stats.AckCollisions == 0 {
		t.Errorf("no collisions at 25%% ack duty with a busy forward pipe: %+v", stats)
	}
	if stats.ForwardCollisions > 0 && rep.Retransmits == 0 {
		t.Error("forward frames died in collisions but nothing was retransmitted")
	}
	rep2, stats2 := run()
	if *rep != *rep2 || stats != stats2 {
		t.Errorf("same seed diverged:\n%+v %+v\n%+v %+v", rep, stats, rep2, stats2)
	}
}

// TestSimLinkLayerStats checks the duplex surfaces per-stage accounting
// for both halves: the uplink decode stages and the downlink's
// coalescer → occupancy → fault → sink chain.
func TestSimLinkLayerStats(t *testing.T) {
	cfg := DefaultSimConfig()
	l, err := NewSimLink(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	s, err := NewSession(l, cfgSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send(context.Background(), testMessage(100)); err != nil {
		t.Fatal(err)
	}
	stats := l.Duplex().LayerStats()
	byName := map[string]bool{}
	for _, st := range stats {
		byName[st.Name] = true
	}
	for _, want := range []string{"frame", "coalescer", "occupancy:C-Morse", "reversefault", "timedsink"} {
		if !byName[want] {
			t.Errorf("missing layer %q in %v", want, stats)
		}
	}
	var coal, sink link.LayerStats
	for _, st := range stats {
		switch st.Name {
		case "coalescer":
			coal = st
		case "timedsink":
			sink = st
		}
	}
	if coal.In == 0 || coal.Out == 0 {
		t.Errorf("coalescer idle over a full transfer: %+v", coal)
	}
	if sink.Out == 0 {
		t.Errorf("ack sink idle over a full transfer: %+v", sink)
	}
}

func TestSimConfigValidate(t *testing.T) {
	if err := DefaultSimConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultSimConfig()
	bad.AckRepeat = 0
	if bad.Validate() == nil {
		t.Error("AckRepeat 0 validated")
	}
	bad = DefaultSimConfig()
	bad.Downlink = DownlinkScheme(99)
	if bad.Validate() == nil {
		t.Error("unknown downlink validated")
	}
	bad = DefaultSimConfig()
	bad.Params.BitPeriod = 0
	if bad.Validate() == nil {
		t.Error("zero Params validated")
	}
	if _, err := NewSimLink(SimConfig{}); err == nil {
		t.Error("NewSimLink accepted the zero config")
	}
}
