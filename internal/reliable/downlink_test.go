package reliable

import (
	"bytes"
	"context"
	"testing"
	"time"

	"symbee/internal/channel"
	"symbee/internal/splitmix"
	"symbee/internal/stream"
)

func TestDownlinkSchemeTiming(t *testing.T) {
	for _, d := range DownlinkSchemes() {
		wall, air, base, err := d.timing()
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if d == DownlinkIdeal {
			if wall != 0 || air != 0 || base != 0 {
				t.Errorf("ideal downlink has nonzero timing %v/%v/%v", wall, air, base)
			}
			continue
		}
		if wall <= 0 || air <= 0 || air > wall || base <= 0 {
			t.Errorf("%s: wall=%v air=%v base=%v", d, wall, air, base)
		}
	}
	if _, _, _, err := DownlinkScheme(99).timing(); err == nil {
		t.Error("unknown scheme accepted")
	}
	// FreeBee acks are far slower but far lower duty than C-Morse.
	cw, ca, _, _ := DownlinkCMorse.timing()
	fw, fa, _, _ := DownlinkFreeBee.timing()
	if fw <= cw {
		t.Errorf("FreeBee wall %v should exceed C-Morse wall %v", fw, cw)
	}
	if float64(fa)/float64(fw) >= float64(ca)/float64(cw) {
		t.Error("FreeBee duty should be below C-Morse duty")
	}
}

func TestReverseChannelSerialAndCoalescing(t *testing.T) {
	// Serial transmitter with a 10 ms wall: an ack generated while the
	// previous one is on the air queues behind it; a third ack generated
	// before the queued one starts replaces it (cumulative coalescing).
	rc := &reverseChannel{wall: 10 * time.Millisecond, air: 2 * time.Millisecond,
		base: time.Millisecond, repeat: 1}
	rc.generate(0, Ack{NextSeq: 1}, false)                  // starts at 1ms, ends 11ms
	rc.generate(2*time.Millisecond, Ack{NextSeq: 2}, false) // queued: starts 11ms
	rc.generate(4*time.Millisecond, Ack{NextSeq: 3}, false) // replaces NextSeq 2
	evs := rc.acks(11 * time.Millisecond)
	if len(evs) != 1 || evs[0].Ack.NextSeq != 1 || evs[0].At != 11*time.Millisecond {
		t.Fatalf("first drain = %+v", evs)
	}
	evs = rc.acks(21 * time.Millisecond)
	if len(evs) != 1 || evs[0].Ack.NextSeq != 3 {
		t.Fatalf("second drain = %+v, want the coalesced NextSeq 3", evs)
	}
	if evs[0].At != 21*time.Millisecond {
		t.Errorf("queued ack arrived at %v, want serialized 21ms", evs[0].At)
	}
	if rc.stats.AcksCoalesced != 1 {
		t.Errorf("coalesced = %d, want 1", rc.stats.AcksCoalesced)
	}
	if rc.stats.AcksSent != 2 {
		t.Errorf("sent = %d, want 2 (NextSeq 2 never aired)", rc.stats.AcksSent)
	}
	if want := 2 * rc.air; rc.stats.Airtime != want {
		t.Errorf("reverse airtime = %v, want %v", rc.stats.Airtime, want)
	}
}

func TestReverseChannelNextArrival(t *testing.T) {
	rc := &reverseChannel{wall: 10 * time.Millisecond, base: time.Millisecond, repeat: 2}
	if _, ok := rc.nextArrival(0); ok {
		t.Fatal("idle channel reported an arrival")
	}
	rc.generate(0, Ack{NextSeq: 1}, false)
	next, ok := rc.nextArrival(0)
	if !ok || next != 11*time.Millisecond {
		t.Fatalf("next = %v %v, want first copy at 11ms", next, ok)
	}
	// After the first copy lands, the repeat copy is next.
	rc.acks(11 * time.Millisecond)
	next, ok = rc.nextArrival(11 * time.Millisecond)
	if !ok || next != 21*time.Millisecond {
		t.Fatalf("next = %v %v, want repeat copy at 21ms", next, ok)
	}
	// A fully dropped ack never arrives.
	rc2 := &reverseChannel{wall: 10 * time.Millisecond, repeat: 1}
	rc2.generate(0, Ack{NextSeq: 1}, true)
	if _, ok := rc2.nextArrival(0); ok {
		t.Fatal("dropped ack reported as arriving")
	}
}

func TestReverseChannelCollisionModel(t *testing.T) {
	const trials = 4000
	run := func(seed int64, overlapFrac float64) (fwd, ack int) {
		rc := &reverseChannel{wall: 10 * time.Millisecond, air: 5 * time.Millisecond,
			repeat: 1, collide: splitmix.New(seed, splitmix.CollisionStream)}
		span := time.Duration(overlapFrac * float64(rc.wall))
		for i := 0; i < trials; i++ {
			rc.inFlight = []ackCopy{{start: 0, end: rc.wall}}
			rc.collideForward(0, span)
		}
		return rc.stats.ForwardCollisions, rc.stats.AckCollisions
	}
	// Full overlap: the copy is always destroyed; the forward frame dies
	// at the 50% duty cross-section.
	fwd, ack := run(7, 1)
	if ack != trials {
		t.Errorf("full overlap destroyed %d/%d copies", ack, trials)
	}
	if fwd < trials*45/100 || fwd > trials*55/100 {
		t.Errorf("forward kills = %d/%d, want ≈50%%", fwd, trials)
	}
	// 20% overlap: the copy survives ~80% of the time; the forward
	// frame's cross-section is unchanged (duty, not overlap).
	_, ack = run(8, 0.2)
	if ack < trials*15/100 || ack > trials*25/100 {
		t.Errorf("partial-overlap copy kills = %d/%d, want ≈20%%", ack, trials)
	}
	// Same seed, same schedule: the collision stream is deterministic.
	f1, a1 := run(9, 0.5)
	f2, a2 := run(9, 0.5)
	if f1 != f2 || a1 != a2 {
		t.Errorf("same seed diverged: %d/%d vs %d/%d", f1, a1, f2, a2)
	}
	// An ideal downlink never collides and draws nothing.
	rc := &reverseChannel{repeat: 1, collide: splitmix.New(1, splitmix.CollisionStream)}
	if rc.collideForward(0, time.Second) {
		t.Error("ideal downlink killed a forward frame")
	}
}

// TestSimLinkReverseCollisions drives a full transfer over the C-Morse
// downlink with no injected faults: every loss in the run is a genuine
// half-duplex collision between forward frames and ack bursts, and the
// session must still deliver through them.
func TestSimLinkReverseCollisions(t *testing.T) {
	if testing.Short() {
		t.Skip("PHY soak skipped in -short mode")
	}
	run := func() (*Report, ReverseStats) {
		cfg := DefaultSimConfig()
		cfg.Faults = channel.FaultConfig{Seed: 5}
		m := stream.NewMetrics()
		cfg.Metrics = m
		link, err := NewSimLink(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer link.Close()
		scfg := cfgSeed(5)
		scfg.Metrics = m
		s, err := NewSession(link, scfg)
		if err != nil {
			t.Fatal(err)
		}
		msg := testMessage(1000)
		rep, err := s.Send(context.Background(), msg)
		if err != nil {
			t.Fatalf("%v (report %+v)", err, rep)
		}
		if msgs := link.Messages(); len(msgs) != 1 || !bytes.Equal(msgs[0], msg) {
			t.Fatal("message not delivered intact through collisions")
		}
		return rep, link.ReverseStats()
	}
	rep, stats := run()
	if stats.AcksSent == 0 || stats.Airtime == 0 {
		t.Fatalf("reverse channel idle: %+v", stats)
	}
	if stats.ForwardCollisions+stats.AckCollisions == 0 {
		t.Errorf("no collisions at 25%% ack duty with a busy forward pipe: %+v", stats)
	}
	if stats.ForwardCollisions > 0 && rep.Retransmits == 0 {
		t.Error("forward frames died in collisions but nothing was retransmitted")
	}
	rep2, stats2 := run()
	if *rep != *rep2 || stats != stats2 {
		t.Errorf("same seed diverged:\n%+v %+v\n%+v %+v", rep, stats, rep2, stats2)
	}
}

func TestSimConfigValidate(t *testing.T) {
	if err := DefaultSimConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultSimConfig()
	bad.AckRepeat = 0
	if bad.Validate() == nil {
		t.Error("AckRepeat 0 validated")
	}
	bad = DefaultSimConfig()
	bad.Downlink = DownlinkScheme(99)
	if bad.Validate() == nil {
		t.Error("unknown downlink validated")
	}
	bad = DefaultSimConfig()
	bad.Params.BitPeriod = 0
	if bad.Validate() == nil {
		t.Error("zero Params validated")
	}
	if _, err := NewSimLink(SimConfig{}); err == nil {
		t.Error("NewSimLink accepted the zero config")
	}
}
