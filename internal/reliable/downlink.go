package reliable

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"symbee/internal/ctc"
)

// DownlinkScheme selects the WiFi→ZigBee reverse-channel model that
// carries acknowledgments back to the sender. The non-ideal schemes are
// the packet-level side channels of internal/ctc, resolved through
// ctc.NewDownlink at their published operating points with one-byte
// cumulative acks.
type DownlinkScheme int

const (
	// DownlinkIdeal is the legacy free-reverse-channel assumption: acks
	// arrive the instant the forward frame is delivered, cost no air,
	// are never lost on the reverse path and never collide. It exists
	// so the clean-channel overhead baseline stays measurable.
	DownlinkIdeal DownlinkScheme = iota
	// DownlinkCMorse carries acks by C-Morse duration modulation:
	// ≈37 ms per one-byte ack at ≈25% duty — fast enough to keep the
	// forward pipe busy, but every ack span is a real collision window.
	DownlinkCMorse
	// DownlinkFreeBee carries acks by FreeBee beacon-timing shifts:
	// ≈512 ms per one-byte ack at ≈0.6% duty — nearly collision-free,
	// but the ack latency dominates the round trip.
	DownlinkFreeBee
)

// String names the scheme as it appears in bench artifacts.
func (d DownlinkScheme) String() string {
	switch d {
	case DownlinkIdeal:
		return "ideal"
	case DownlinkCMorse:
		return "cmorse"
	case DownlinkFreeBee:
		return "freebee"
	}
	return "unknown"
}

// DownlinkSchemes lists every modeled reverse channel, ideal first.
func DownlinkSchemes() []DownlinkScheme {
	return []DownlinkScheme{DownlinkIdeal, DownlinkCMorse, DownlinkFreeBee}
}

// errDownlink rejects unknown DownlinkScheme values.
var errDownlink = errors.New("reliable: unknown downlink scheme")

// timing resolves the per-ack-copy occupancy of the scheme: the
// wall-clock span one copy holds the reverse channel, the on-air time
// within it, and the fixed turnaround before the first copy can start.
func (d DownlinkScheme) timing() (wall, air, base time.Duration, err error) {
	if d == DownlinkIdeal {
		return 0, 0, 0, nil
	}
	var s ctc.Scheme
	switch d {
	case DownlinkCMorse:
		s = ctc.NewCMorse()
	case DownlinkFreeBee:
		s = ctc.NewFreeBee()
	default:
		return 0, 0, 0, fmt.Errorf("%w: %d", errDownlink, d)
	}
	dl, err := ctc.NewDownlink(ctc.DefaultDownlink(s))
	if err != nil {
		return 0, 0, 0, fmt.Errorf("reliable: %w", err)
	}
	sec := func(x float64) time.Duration { return time.Duration(x * float64(time.Second)) }
	return sec(dl.AckWall()), sec(dl.AckAir()), sec(dl.BaseLatency()), nil
}

// AckEvent is one acknowledgment arriving at the sender over the
// reverse channel.
type AckEvent struct {
	// Ack is the cumulative acknowledgment content.
	Ack Ack
	// GeneratedAt is when the receiver generated the ack on the
	// transport clock — the end of the forward frame that triggered it.
	// It stands in for the ack token a real downlink would carry, and
	// is what lets the sender tell a fresh ack from a stale one that
	// spent its latency in flight.
	GeneratedAt time.Duration
	// At is when the ack finished arriving at the sender (its last
	// reverse-channel symbol landed).
	At time.Duration
}

// ReverseStats summarizes one transport's reverse-channel activity.
type ReverseStats struct {
	// AcksSent counts committed ack copies put on the air.
	AcksSent int
	// AcksCoalesced counts acks superseded by a newer cumulative ack
	// before their transmission started.
	AcksCoalesced int
	// AcksDropped counts copies lost on the reverse path.
	AcksDropped int
	// AckCollisions counts copies destroyed by an overlapping forward
	// frame.
	AckCollisions int
	// ForwardCollisions counts forward frames destroyed by an
	// overlapping ack burst.
	ForwardCollisions int
	// Airtime is the reverse on-air time spent.
	Airtime time.Duration
}

// ackCopy is one committed reverse-channel transmission of an ack.
type ackCopy struct {
	ack        Ack
	gen        time.Duration // when the receiver generated the ack
	start, end time.Duration // reverse-channel occupancy span
	dropped    bool          // lost (reverse fault or collision): never arrives
}

// pendingAck is the newest cumulative ack queued behind the serial
// reverse transmitter, not yet started. A newer ack generated before it
// starts replaces it — cumulative acks make the older one redundant.
type pendingAck struct {
	ack   Ack
	gen   time.Duration
	start time.Duration
	drop  bool // scripted loss for this ack's copies (tests)
}

// reverseChannel models the serial WiFi→ZigBee ack downlink shared by
// every Transport implementation in this package. It is discrete-event:
// callers push generations at forward-frame delivery instants and pull
// arrivals with explicit `now` stamps, so the model needs no clock of
// its own and composes with both virtual and wall clocks.
type reverseChannel struct {
	wall, air, base time.Duration // per-copy occupancy, on-air time, turnaround
	repeat          int           // copies per committed ack
	dropCopy        func() bool   // per-copy reverse loss draw (nil = lossless)
	collide         *rand.Rand    // collision draws (nil = never collides)

	busyUntil time.Duration // serial transmitter: when the last copy ends
	pending   *pendingAck
	inFlight  []ackCopy
	stats     ReverseStats
}

// newReverseChannel builds the downlink for the scheme. repeat ≥ 1 is
// the caller's responsibility (SimConfig.Validate enforces it).
func newReverseChannel(scheme DownlinkScheme, repeat int, dropCopy func() bool, collide *rand.Rand) (*reverseChannel, error) {
	wall, air, base, err := scheme.timing()
	if err != nil {
		return nil, err
	}
	return &reverseChannel{
		wall: wall, air: air, base: base,
		repeat:   repeat,
		dropCopy: dropCopy,
		collide:  collide,
	}, nil
}

// latency is the nominal one-way ack delay on an idle reverse channel:
// turnaround plus one copy's span (the ack decodes when its last symbol
// lands).
func (rc *reverseChannel) latency() time.Duration { return rc.base + rc.wall }

// advance commits the pending ack once simulated time reaches its start
// instant: its copies are scheduled serially, each drawing its reverse
// loss, and the transmitter is busy until the last one ends. Callers
// invoke it with every observed `now`, so commitment order follows
// simulated time regardless of which accessor runs first.
func (rc *reverseChannel) advance(now time.Duration) {
	p := rc.pending
	if p == nil || p.start > now {
		return
	}
	rc.pending = nil
	for k := 0; k < rc.repeat; k++ {
		c := ackCopy{
			ack:   p.ack,
			gen:   p.gen,
			start: p.start + time.Duration(k)*rc.wall,
			end:   p.start + time.Duration(k+1)*rc.wall,
		}
		if p.drop || (rc.dropCopy != nil && rc.dropCopy()) {
			c.dropped = true
			rc.stats.AcksDropped++
		}
		rc.inFlight = append(rc.inFlight, c)
		rc.stats.AcksSent++
		rc.stats.Airtime += rc.air
	}
	rc.busyUntil = p.start + time.Duration(rc.repeat)*rc.wall
}

// generate hands the receiver's cumulative ack to the downlink at time
// gen (the forward frame's delivery instant). The copy starts after the
// turnaround, or when the serial transmitter frees up, whichever is
// later; a still-queued older ack is coalesced away. drop forces every
// copy of this ack to be lost (scripted tests; simulated links draw
// per-copy through dropCopy instead).
func (rc *reverseChannel) generate(gen time.Duration, ack Ack, drop bool) {
	rc.advance(gen)
	start := gen + rc.base
	if rc.busyUntil > start {
		start = rc.busyUntil
	}
	if rc.pending != nil {
		rc.stats.AcksCoalesced++
	}
	rc.pending = &pendingAck{ack: ack, gen: gen, start: start, drop: drop}
}

// collideForward resolves the half-duplex interaction between a forward
// frame on the air over [start, end] and every reverse copy whose span
// overlaps it. The reverse transmitter radiates air/wall (duty) of an
// ack span, so the forward frame is destroyed with probability duty per
// overlapping copy; the forward frame radiates continuously, so the
// copy is destroyed with probability overlap/wall (the fraction of its
// span the frame covers). Both draws come from the collision stream and
// are consumed for every overlapping pair, killed or not, so one
// outcome never shifts the next pair's draw. It reports whether the
// forward frame was destroyed. Callers must advance(end) first so
// copies starting mid-frame participate.
func (rc *reverseChannel) collideForward(start, end time.Duration) bool {
	if rc.collide == nil || rc.wall <= 0 {
		return false
	}
	duty := float64(rc.air) / float64(rc.wall)
	killed := false
	for i := range rc.inFlight {
		c := &rc.inFlight[i]
		lo, hi := c.start, c.end
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		if hi <= lo {
			continue
		}
		fwdDraw := rc.collide.Float64()
		copyDraw := rc.collide.Float64()
		if fwdDraw < duty {
			if !killed {
				rc.stats.ForwardCollisions++
			}
			killed = true
		}
		if copyDraw < float64(hi-lo)/float64(c.end-c.start) && !c.dropped {
			c.dropped = true
			rc.stats.AckCollisions++
		}
	}
	return killed
}

// acks drains every copy that has fully arrived by now, in arrival
// order, skipping dropped ones.
func (rc *reverseChannel) acks(now time.Duration) []AckEvent {
	rc.advance(now)
	var out []AckEvent
	keep := rc.inFlight[:0]
	for _, c := range rc.inFlight {
		if c.end > now {
			keep = append(keep, c)
			continue
		}
		if !c.dropped {
			out = append(out, AckEvent{Ack: c.ack, GeneratedAt: c.gen, At: c.end})
		}
	}
	rc.inFlight = keep
	return out
}

// nextArrival reports when the next ack will finish arriving, if any is
// scheduled: the earliest surviving committed copy, or the queued
// pending ack's first copy. Copies already dropped never arrive and are
// skipped — the sender cannot know, which is exactly why it also keeps
// a retransmission timer.
func (rc *reverseChannel) nextArrival(now time.Duration) (time.Duration, bool) {
	rc.advance(now)
	best := time.Duration(-1)
	for _, c := range rc.inFlight {
		if c.dropped || c.end <= now {
			continue
		}
		if best < 0 || c.end < best {
			best = c.end
		}
	}
	if p := rc.pending; p != nil && !p.drop {
		if first := p.start + rc.wall; best < 0 || first < best {
			best = first
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}
