package reliable

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"symbee/internal/ctc"
	"symbee/internal/link"
)

// DownlinkScheme selects the WiFi→ZigBee reverse-channel model that
// carries acknowledgments back to the sender. The non-ideal schemes are
// the packet-level side channels of internal/ctc, resolved through
// ctc.NewDownlink at their published operating points with one-byte
// cumulative acks; the model itself is the layered link.DownStack.
type DownlinkScheme int

const (
	// DownlinkIdeal is the legacy free-reverse-channel assumption: acks
	// arrive the instant the forward frame is delivered, cost no air,
	// never collide, and occupy the transmitter for no time (the
	// downlink stack's explicit no-op occupancy stage). It exists so
	// the clean-channel overhead baseline stays measurable.
	DownlinkIdeal DownlinkScheme = iota
	// DownlinkCMorse carries acks by C-Morse duration modulation:
	// ≈37 ms per one-byte ack at ≈25% duty — fast enough to keep the
	// forward pipe busy, but every ack span is a real collision window.
	DownlinkCMorse
	// DownlinkFreeBee carries acks by FreeBee beacon-timing shifts:
	// ≈512 ms per one-byte ack at ≈0.6% duty — nearly collision-free,
	// but the ack latency dominates the round trip.
	DownlinkFreeBee
	// DownlinkDCTC carries acks by inter-packet gap modulation (2 bits
	// per gap): ≈19 ms per one-byte ack at ≈26% duty, between C-Morse
	// and FreeBee on the latency/duty plane but the fastest of the
	// three modeled points.
	DownlinkDCTC
	// DownlinkEMF carries acks in the energy pattern of slotted frames:
	// ≈20 ms per one-byte ack at ≈17% duty — C-Morse-class latency at
	// a noticeably smaller collision cross-section.
	DownlinkEMF
)

// downlinkTable is the single source of truth tying the DownlinkScheme
// enum to the ctc registry: the bench-artifact name and the scheme
// constructor (nil marks the ideal no-op downlink). String,
// DownlinkSchemes, Modeled and the stack resolver all index it, so the
// enum and the registry cannot drift.
var downlinkTable = [...]struct {
	name   string
	scheme func() ctc.Scheme
}{
	DownlinkIdeal:   {name: "ideal"},
	DownlinkCMorse:  {name: "cmorse", scheme: func() ctc.Scheme { return ctc.NewCMorse() }},
	DownlinkFreeBee: {name: "freebee", scheme: func() ctc.Scheme { return ctc.NewFreeBee() }},
	DownlinkDCTC:    {name: "dctc", scheme: func() ctc.Scheme { return ctc.NewDCTC() }},
	DownlinkEMF:     {name: "emf", scheme: func() ctc.Scheme { return ctc.NewEMF() }},
}

// String names the scheme as it appears in bench artifacts.
func (d DownlinkScheme) String() string {
	if d < 0 || int(d) >= len(downlinkTable) {
		return "unknown"
	}
	return downlinkTable[d].name
}

// Modeled reports whether the scheme models a real reverse channel —
// false only for the ideal baseline.
func (d DownlinkScheme) Modeled() bool {
	return d >= 0 && int(d) < len(downlinkTable) && downlinkTable[d].scheme != nil
}

// DownlinkSchemes lists every modeled reverse channel, ideal first.
func DownlinkSchemes() []DownlinkScheme {
	out := make([]DownlinkScheme, len(downlinkTable))
	for i := range downlinkTable {
		out[i] = DownlinkScheme(i)
	}
	return out
}

// errDownlink rejects unknown DownlinkScheme values.
var errDownlink = errors.New("reliable: unknown downlink scheme")

// downlink resolves the scheme's ack-downlink timing model at its
// published operating point with one-byte cumulative acks. The ideal
// baseline resolves to nil: link.NewDownStack turns that into the
// explicit no-op occupancy stage.
func (d DownlinkScheme) downlink() (*ctc.Downlink, error) {
	if d < 0 || int(d) >= len(downlinkTable) {
		return nil, fmt.Errorf("%w: %d", errDownlink, d)
	}
	entry := downlinkTable[d]
	if entry.scheme == nil {
		return nil, nil
	}
	dl, err := ctc.NewDownlink(ctc.DefaultDownlink(entry.scheme()))
	if err != nil {
		return nil, fmt.Errorf("reliable: %w", err)
	}
	return dl, nil
}

// newDownStack builds the layered downlink stack for the scheme.
// repeat ≥ 1 is the caller's responsibility (SimConfig.Validate
// enforces it).
func (d DownlinkScheme) newDownStack(repeat int, dropCopy func() bool, collide *rand.Rand) (*link.DownStack, error) {
	dl, err := d.downlink()
	if err != nil {
		return nil, err
	}
	return link.NewDownStack(link.DownSpec{
		Downlink: dl,
		Repeat:   repeat,
		DropCopy: dropCopy,
		Collide:  collide,
	})
}

// AckEvent is one acknowledgment arriving at the sender over the
// reverse channel.
type AckEvent struct {
	// Ack is the cumulative acknowledgment content.
	Ack Ack
	// GeneratedAt is when the receiver generated the ack on the
	// transport clock — the end of the forward frame that triggered it.
	// It stands in for the ack token a real downlink would carry, and
	// is what lets the sender tell a fresh ack from a stale one that
	// spent its latency in flight.
	GeneratedAt time.Duration
	// At is when the ack finished arriving at the sender (its last
	// reverse-channel symbol landed).
	At time.Duration
}

// ackEvents converts the downlink stack's timed arrivals to the
// transport's AckEvent form. The input slice is the stack collector's
// reused queue, so the conversion copies everything out.
func ackEvents(evs []link.TimedEvent) []AckEvent {
	if len(evs) == 0 {
		return nil
	}
	out := make([]AckEvent, 0, len(evs))
	for _, ev := range evs {
		if ev.Kind != link.TimedAck {
			continue
		}
		out = append(out, AckEvent{
			Ack:         Ack{NextSeq: ev.Seq},
			GeneratedAt: ev.Gen,
			At:          ev.At,
		})
	}
	return out
}

// ReverseStats summarizes one transport's reverse-channel activity. It
// is assembled from the downlink stack's cross-stage ledger
// (link.DownStack.Ledger).
type ReverseStats struct {
	// AcksSent counts committed ack copies put on the air.
	AcksSent int
	// AcksCoalesced counts acks superseded by a newer cumulative ack
	// before their transmission started.
	AcksCoalesced int
	// AcksDropped counts copies lost on the reverse path.
	AcksDropped int
	// AckCollisions counts copies destroyed by an overlapping forward
	// frame.
	AckCollisions int
	// ForwardCollisions counts forward frames destroyed by an
	// overlapping ack burst.
	ForwardCollisions int
	// Airtime is the reverse on-air time spent.
	Airtime time.Duration
}

// reverseStats converts a downlink stack ledger to the transport form.
func reverseStats(l link.DownlinkLedger) ReverseStats {
	return ReverseStats{
		AcksSent:          l.AcksSent,
		AcksCoalesced:     l.AcksCoalesced,
		AcksDropped:       l.AcksDropped,
		AckCollisions:     l.AckCollisions,
		ForwardCollisions: l.ForwardCollisions,
		Airtime:           l.Airtime,
	}
}
