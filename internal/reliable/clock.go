package reliable

import (
	"context"
	"time"
)

// Clock abstracts time for the ARQ session: the soak tests and the
// bench run thousands of simulated seconds of airtime and timer waits
// in milliseconds of wall time on a VirtualClock, while a live pacing
// run uses a WallClock. Now is monotone elapsed time since the clock
// was created.
type Clock interface {
	Now() time.Duration
	// Sleep waits d (or returns early with ctx's error when the context
	// is canceled first).
	Sleep(ctx context.Context, d time.Duration) error
}

// VirtualClock is discrete-event time: Sleep advances it instantly.
// It is single-goroutine, like the Session that drives it.
type VirtualClock struct {
	now time.Duration
}

// NewVirtualClock returns a clock at zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the current virtual time.
func (c *VirtualClock) Now() time.Duration { return c.now }

// Advance moves virtual time forward by d.
func (c *VirtualClock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Sleep advances virtual time by d, honoring context cancellation.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

// WallClock is real time.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a clock anchored at the current instant.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns the elapsed real time since the clock was created.
func (c *WallClock) Now() time.Duration { return time.Since(c.start) }

// Sleep blocks for d or until ctx is canceled.
func (c *WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
