package reliable

import (
	"fmt"

	"symbee/internal/coding"
	"symbee/internal/core"
)

// MaxCodedDataBytes is the frame data capacity in escalated (coded)
// mode. Hamming(7,4)-coding the whole frame bit string expands
// HeaderBits+8L+CRCBits = 40+8L bits to ceil((40+8L)/4)*7 coded bits,
// which must fit the MaxPayloadBits−PreambleBits = 121 bits of payload
// room left after the broadcast preamble: L=3 codes to 112 bits, L=4
// would need 126. (A test pins this derivation.)
const MaxCodedDataBytes = 3

// codedLen returns the Hamming(7,4) codeword length for nBits data
// bits, including the encoder's zero-padding to whole 4-bit blocks.
func codedLen(nBits int) int {
	blocks := (nBits + coding.HammingDataBits - 1) / coding.HammingDataBits
	return blocks * coding.HammingCodeBits
}

// CodedFrameBits serializes f and Hamming(7,4)-codes the entire bit
// string — header, sequence, data and CRC — so the receiver can correct
// one bit error per 7-bit block before the checksum is consulted.
func CodedFrameBits(f *core.Frame) ([]byte, error) {
	if len(f.Data) > MaxCodedDataBytes {
		return nil, fmt.Errorf("%w in coded mode (max %d)", core.ErrDataTooLong, MaxCodedDataBytes)
	}
	bits, err := f.FrameBits()
	if err != nil {
		return nil, err
	}
	return coding.HammingEncodeBits(bits), nil
}

// EncodeCodedFrame maps a coded frame onto a broadcast payload
// (preamble codewords followed by the coded bit codewords).
func EncodeCodedFrame(f *core.Frame) ([]byte, error) {
	bits, err := CodedFrameBits(f)
	if err != nil {
		return nil, err
	}
	return core.EncodeBits(bits)
}

// DecodeCodedPhases decodes one Hamming(7,4)-coded frame from a phase
// capture in synchronized mode: lock on the preamble, decode the coded
// header to learn the length, decode and correct the full codeword,
// then validate the CRC over the corrected bits. Like the plain frame
// scanner it retries the decode one bit period around the captured
// anchor, since a marginal fold can lock a symbol early or late.
func DecodeCodedPhases(d *core.Decoder, phases []float64) (*core.Frame, error) {
	anchor, err := d.CapturePreamble(phases)
	if err != nil {
		return nil, err
	}
	bp := d.Params().BitPeriod
	var firstErr error
	for _, shift := range []int{0, bp, -bp} {
		if anchor+shift < 0 {
			continue
		}
		f, err := decodeCodedAt(d, phases, anchor+shift)
		if err == nil {
			return f, nil
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return nil, firstErr
}

func decodeCodedAt(d *core.Decoder, phases []float64, anchor int) (*core.Frame, error) {
	hbits, err := d.DecodeSyncBits(phases, anchor, codedLen(core.HeaderBits))
	if err != nil {
		return nil, err
	}
	hdr, _, err := coding.HammingDecodeBits(hbits)
	if err != nil {
		return nil, err
	}
	version := hdr[0]<<3 | hdr[1]<<2 | hdr[2]<<1 | hdr[3]
	if version != core.Version {
		return nil, fmt.Errorf("%w: coded 0x%X", core.ErrBadVersion, version)
	}
	dataLen := 0
	for _, b := range hdr[8:16] {
		dataLen = dataLen<<1 | int(b)
	}
	if dataLen > MaxCodedDataBytes {
		return nil, fmt.Errorf("%w: coded header claims %d data bytes", core.ErrBadLength, dataLen)
	}
	// 40+8L is always a multiple of HammingDataBits, so the codeword
	// carries no padding and the corrected bits are exactly the frame.
	total := core.HeaderBits + dataLen*8 + core.CRCBits
	all, err := d.DecodeSyncBits(phases, anchor, codedLen(total))
	if err != nil {
		return nil, err
	}
	bits, _, err := coding.HammingDecodeBits(all)
	if err != nil {
		return nil, err
	}
	return core.ParseFrameBits(bits[:total])
}
