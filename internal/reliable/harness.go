package reliable

import (
	"fmt"
	"time"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/link"
	"symbee/internal/splitmix"
	"symbee/internal/zigbee"
)

// SimConfig parameterizes a SimLink. No field doubles as a sentinel;
// start from DefaultSimConfig and override what the scenario needs.
type SimConfig struct {
	// Params is the receiver parameter set.
	Params core.Params
	// Faults is the channel fault profile (see ProfileSoak/ProfileHarsh
	// for ready-made ones; the zero value is a clean channel).
	Faults channel.FaultConfig
	// Stream selects the streaming receive path (bounded-history
	// link.Stack sessions) instead of the whole-capture batch preset.
	Stream bool
	// Downlink selects the reverse-channel model carrying acks back.
	Downlink DownlinkScheme
	// AckRepeat transmits each committed ack this many times (≥ 1).
	AckRepeat int
	// Metrics optionally shares a registry; nil allocates a private one.
	Metrics *link.Metrics
}

// DefaultSimConfig returns the baseline link: Params20, clean channel,
// batch receive path and a C-Morse ack downlink without repetition.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Params:    core.Params20(),
		Downlink:  DownlinkCMorse,
		AckRepeat: 1,
	}
}

// errAckRepeat rejects non-positive ack repetition counts.
var errAckRepeat = fmt.Errorf("reliable: AckRepeat must be at least 1")

// Validate reports the first structural problem with the config.
func (c SimConfig) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("reliable: %w", err)
	}
	if err := c.Faults.Validate(); err != nil {
		return fmt.Errorf("reliable: %w", err)
	}
	if c.AckRepeat < 1 {
		return fmt.Errorf("%w: %d", errAckRepeat, c.AckRepeat)
	}
	if _, err := c.Downlink.downlink(); err != nil {
		return err
	}
	return nil
}

// SimLink is a reliable.Transport that runs entirely over a
// link.Duplex: every forward frame goes through the real SymBee PHY —
// modulator, fault-injected channel, WiFi phase-extraction front end
// and the duplex's uplink decode Stack (batch or streaming preset) —
// and the ARQ receive side, then the resulting cumulative ack rides
// the duplex's layered downlink stack back. Acks cost reverse airtime,
// arrive one downlink-latency late, can be lost on the reverse path
// and can collide with forward frames; the DownlinkIdeal scheme builds
// the stack's explicit no-op occupancy stage for baselines.
type SimLink struct {
	phy     *core.Link
	dec     *core.Decoder
	inj     *channel.FaultInjector
	arq     *Receiver
	duplex  *link.Duplex
	batch   bool
	pad     []float64
	metrics *link.Metrics
}

// NewSimLink builds the simulated link.
func NewSimLink(cfg SimConfig) (*SimLink, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	phy, err := core.NewLink(cfg.Params, 0)
	if err != nil {
		return nil, fmt.Errorf("reliable: %w", err)
	}
	m := cfg.Metrics
	if m == nil {
		m = link.NewMetrics()
	}
	inj, err := channel.NewFaultInjector(cfg.Faults)
	if err != nil {
		return nil, fmt.Errorf("reliable: %w", err)
	}
	l := &SimLink{
		phy:     phy,
		dec:     phy.Decoder(),
		inj:     inj,
		arq:     NewReceiver(m),
		batch:   !cfg.Stream,
		metrics: m,
	}
	// The reverse path draws from its own splitmix streams so toggling
	// ack loss or collisions never shifts the forward fault schedule.
	dropCopy := func() bool {
		if l.inj.DropAck() {
			l.metrics.AcksLost.Add(1)
			return true
		}
		return false
	}
	down, err := cfg.Downlink.newDownStack(cfg.AckRepeat, dropCopy,
		splitmix.New(cfg.Faults.Seed, splitmix.CollisionStream))
	if err != nil {
		return nil, err
	}
	var up *link.Stack
	if cfg.Stream {
		up, err = link.NewReliable(l.dec, m)
		if err != nil {
			return nil, fmt.Errorf("reliable: %w", err)
		}
		// The FrameMachine defers its decode until a max-size frame
		// could have ended; zero padding after each capture opens that
		// gate without risking a false lock (zero phases fold to zero,
		// far below the capture threshold). anchorSlack bounds how deep
		// into a capture the preamble anchor can sit.
		l.pad = make([]float64, link.PadHorizon(cfg.Params, anchorSlack))
	} else {
		// Batch path: one whole-capture stack, reset per capture —
		// identical semantics to the historical per-capture
		// Decoder.DecodeFrame, without rebuilding the machine each time.
		up, err = link.NewBatch(l.dec, m)
		if err != nil {
			return nil, fmt.Errorf("reliable: %w", err)
		}
	}
	l.duplex, err = link.NewDuplex(up, down)
	if err != nil {
		return nil, fmt.Errorf("reliable: %w", err)
	}
	return l, nil
}

// anchorSlack bounds, in bit periods, how deep into a capture the
// preamble anchor can sit (ZigBee SHR+PHR plus front-end lag).
const anchorSlack = 12

// Metrics returns the link's registry.
func (l *SimLink) Metrics() *link.Metrics { return l.metrics }

// Receiver returns the ARQ receive side (for inspecting expectations
// and duplicate counts in tests).
func (l *SimLink) Receiver() *Receiver { return l.arq }

// Messages drains the fully reassembled messages delivered so far.
func (l *SimLink) Messages() [][]byte { return l.arq.Messages() }

// FaultStats reports the injector's lost/jammed/drifted frame counts.
func (l *SimLink) FaultStats() (lost, jammed, drifted int) { return l.inj.Stats() }

// Duplex returns the layered duplex pipeline the link runs over (for
// per-stage stats and tests).
func (l *SimLink) Duplex() *link.Duplex { return l.duplex }

// ReverseStats reports the downlink's ack ledger: copies sent, airtime
// spent, coalesced, dropped and collided.
func (l *SimLink) ReverseStats() ReverseStats {
	return reverseStats(l.duplex.Down().Ledger())
}

// AckLatency implements Transport.
func (l *SimLink) AckLatency() time.Duration { return l.duplex.Down().Latency() }

// Acks implements Transport.
func (l *SimLink) Acks(now time.Duration) []AckEvent {
	return ackEvents(l.duplex.Down().Arrivals(now))
}

// NextArrival implements Transport.
func (l *SimLink) NextArrival(now time.Duration) (time.Duration, bool) {
	return l.duplex.Down().NextArrival(now)
}

// Send implements Transport: encode (plain or Hamming-coded), modulate,
// resolve collisions with any reverse ack on the air, pass through the
// fault injector, receive, deliver to the ARQ side and hand the
// cumulative ack to the downlink. Delivery feedback never returns here —
// it arrives later through Acks, stamped with the downlink's latency.
func (l *SimLink) Send(now time.Duration, f *core.Frame, coded bool) (time.Duration, error) {
	var payload []byte
	var err error
	if coded {
		payload, err = EncodeCodedFrame(f)
	} else {
		payload, err = core.EncodeFrame(f)
	}
	airtime := FrameAirtime(len(f.Data), coded)
	if err != nil {
		return 0, err
	}
	end := now + airtime
	if l.duplex.ForwardCollides(now, end) {
		l.metrics.FramesLost.Add(1)
		return airtime, nil
	}
	sig, err := l.phy.PayloadToSignal(payload)
	if err != nil {
		return airtime, err
	}
	capture, ok := l.inj.Apply(sig)
	if !ok {
		l.metrics.FramesLost.Add(1)
		return airtime, nil
	}
	frame := l.receive(capture)
	if frame == nil {
		l.metrics.FramesLost.Add(1)
		return airtime, nil
	}
	ack, _ := l.arq.Deliver(frame)
	l.duplex.Down().Generate(end, ack.NextSeq, false)
	return airtime, nil
}

// receive runs the capture through the configured stack preset and
// trial-decodes: plain first, then synchronized Hamming-coded. The
// receiver never learns the sender's mode — a coded frame fails the
// plain version check immediately (its first coded nibble parses as
// version 4), which is what makes negotiation-free escalation work.
func (l *SimLink) receive(capture []complex128) *core.Frame {
	phases := l.phy.Phases(capture)
	up := l.duplex.Up()
	if l.batch {
		up.Reset()
		up.PushPhases(phases)
		up.Flush()
		frame, _ := terminalEvent(up.Drain())
		if frame == nil {
			// Any plain failure — including a missing preamble, which
			// emits no event at all — triggers the coded trial, exactly
			// as the historical per-capture DecodeFrame error did.
			frame, _ = DecodeCodedPhases(l.dec, phases)
		}
		return frame
	}
	up.PushPhases(phases)
	if n := len(l.pad) - len(phases); n > 0 {
		up.PushPhases(l.pad[:n])
	}
	frame, failed := terminalEvent(up.Drain())
	if frame == nil && failed {
		frame, _ = DecodeCodedPhases(l.dec, phases)
	}
	return frame
}

// terminalEvent scans drained stack events for the capture's outcome:
// the decoded frame, or whether a locked preamble failed to decode.
func terminalEvent(events []Event) (frame *core.Frame, failed bool) {
	for _, ev := range events {
		switch ev.Kind {
		case core.EventFrame:
			frame = ev.Frame
		case core.EventDecodeError:
			failed = true
		}
	}
	return frame, failed
}

// Event aliases the link stack event consumed by the harness.
type Event = link.Event

// Close flushes the streaming receive path, if any.
func (l *SimLink) Close() {
	l.duplex.Up().Flush()
	l.duplex.Up().Drain()
}

// FrameAirtime is the forward ZigBee airtime of one SymBee frame
// carrying dataBytes of application data, in the given coding mode.
// Both the harness and the overhead baseline use it, so the ≤5%
// comparison is apples to apples.
func FrameAirtime(dataBytes int, coded bool) time.Duration {
	bits := core.HeaderBits + 8*dataBytes + core.CRCBits
	if coded {
		bits = codedLen(bits)
	}
	return time.Duration(zigbee.Airtime(core.PreambleBits+bits) * float64(time.Second))
}

// PlainAirtime is the total forward airtime a plain fire-and-forget
// Messenger spends on a msgLen-byte message: the baseline the ARQ
// overhead criterion is measured against.
func PlainAirtime(msgLen int) time.Duration {
	var at time.Duration
	for msgLen > 0 {
		n := msgLen
		if n > core.MaxDataBytes {
			n = core.MaxDataBytes
		}
		at += FrameAirtime(n, false)
		msgLen -= n
	}
	return at
}

// ProfileSoak is the acceptance fault profile: 10% i.i.d. frame loss,
// a periodic strong-interference burst window, and 5% ack loss.
func ProfileSoak(seed int64) channel.FaultConfig {
	return channel.FaultConfig{
		Seed:       seed,
		FrameLoss:  0.10,
		BurstEvery: 64,
		BurstLen:   6,
		BurstSNRdB: -18,
		AckLoss:    0.05,
	}
}

// ProfileBidir is the bidirectional acceptance profile: 10% loss on the
// forward path and 10% per-copy loss on the reverse path, plus the soak
// profile's interference bursts.
func ProfileBidir(seed int64) channel.FaultConfig {
	cfg := ProfileSoak(seed)
	cfg.AckLoss = 0.10
	return cfg
}

// ProfileHarsh piles CFO drift ramps and heavier loss on top of the
// soak profile — the regime that forces escalation.
func ProfileHarsh(seed int64) channel.FaultConfig {
	return channel.FaultConfig{
		Seed:       seed,
		FrameLoss:  0.15,
		BurstEvery: 48,
		BurstLen:   8,
		BurstSNRdB: -20,
		DriftEvery: 16,
		DriftRate:  4e-7,
		AckLoss:    0.10,
	}
}
