package dsp

import (
	"fmt"
	"math"
)

// PhaseDiffStreamer computes the idle-listening phase stream
// incrementally: IQ samples are pushed in arbitrarily sized chunks and
// each phase value is emitted as soon as its lag-delayed partner sample
// arrives. The output is bit-identical to PhaseDiffStream over the
// concatenated input, regardless of where the chunk boundaries fall —
// the streamer carries the lag most recent samples in a ring across
// pushes.
type PhaseDiffStreamer struct {
	lag  int
	ring []complex128 // the lag most recent samples, oldest at pos
	pos  int
	fill int
}

// NewPhaseDiffStreamer returns a streamer for the given autocorrelation
// lag (16 at 20 Msps, 32 at 40 Msps).
func NewPhaseDiffStreamer(lag int) (*PhaseDiffStreamer, error) {
	if lag <= 0 {
		return nil, fmt.Errorf("dsp: NewPhaseDiffStreamer lag %d must be positive", lag)
	}
	return &PhaseDiffStreamer{lag: lag, ring: make([]complex128, lag)}, nil
}

// Lag returns the autocorrelation lag in samples.
func (s *PhaseDiffStreamer) Lag() int { return s.lag }

// Push consumes one IQ sample. Once at least lag+1 samples have been
// pushed it returns ∠(x[n]·x*[n+lag]) for n = pushed−lag−1 — the same
// value PhaseDiffStream produces at that index — with ok=true; during
// the initial lag-sample warm-up ok is false.
//
//symbee:hotpath
func (s *PhaseDiffStreamer) Push(x complex128) (phi float64, ok bool) {
	if s.fill < s.lag {
		s.ring[s.pos] = x
		s.pos++
		if s.pos == s.lag {
			s.pos = 0
		}
		s.fill++
		return 0, false
	}
	old := s.ring[s.pos] // x[n], exactly lag samples behind x
	s.ring[s.pos] = x
	s.pos++
	if s.pos == s.lag {
		s.pos = 0
	}
	// Same expression and kernel as PhaseDiffStream so the two paths
	// agree to the last bit: p = x[n] · conj(x[n+lag]).
	p := old * complex(real(x), -imag(x))
	return phaseOf(p), true
}

// Process pushes every sample of in and appends the phases that become
// available to out, returning the extended slice. It is bit-identical
// to calling Push per sample; only the first lag samples of a chunk go
// through the ring — every later sample finds its lag-delayed partner
// inside the chunk itself, so the body runs as a flat 4-wide unrolled
// loop over the input with no per-sample ring bookkeeping (the batched
// front-end half of the idle-hunt kernel).
//
//symbee:hotpath
func (s *PhaseDiffStreamer) Process(in []complex128, out []float64) []float64 {
	// Ring boundary: samples whose partner predates the chunk (or that
	// are still warming the ring) go through the scalar push.
	head := s.lag
	if head > len(in) {
		head = len(in)
	}
	for _, x := range in[:head] {
		if phi, ok := s.Push(x); ok {
			out = append(out, phi)
		}
	}
	if head == len(in) {
		return out
	}
	// Flat body: in[n] pairs with in[n-lag]. Same expression and kernel
	// as Push so the two paths agree to the last bit; the kernel flag is
	// hoisted so one chunk is computed with one kernel throughout.
	lag := s.lag
	if UseExactPhase {
		for n := lag; n < len(in); n++ {
			x := in[n]
			p := in[n-lag] * complex(real(x), -imag(x))
			out = append(out, math.Atan2(imag(p), real(p)))
		}
	} else {
		n := lag
		for ; n+4 <= len(in); n += 4 {
			x0, x1, x2, x3 := in[n], in[n+1], in[n+2], in[n+3]
			p0 := in[n-lag] * complex(real(x0), -imag(x0))
			p1 := in[n-lag+1] * complex(real(x1), -imag(x1))
			p2 := in[n-lag+2] * complex(real(x2), -imag(x2))
			p3 := in[n-lag+3] * complex(real(x3), -imag(x3))
			out = append(out,
				FastAtan2(imag(p0), real(p0)),
				FastAtan2(imag(p1), real(p1)),
				FastAtan2(imag(p2), real(p2)),
				FastAtan2(imag(p3), real(p3)))
		}
		for ; n < len(in); n++ {
			x := in[n]
			p := in[n-lag] * complex(real(x), -imag(x))
			out = append(out, FastAtan2(imag(p), real(p)))
		}
	}
	// The ring ends up holding the last lag samples, oldest first.
	copy(s.ring, in[len(in)-lag:])
	s.pos = 0
	s.fill = lag
	return out
}

// Reset returns the streamer to its initial empty state.
func (s *PhaseDiffStreamer) Reset() {
	s.pos, s.fill = 0, 0
}
