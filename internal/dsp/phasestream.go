package dsp

import "fmt"

// PhaseDiffStreamer computes the idle-listening phase stream
// incrementally: IQ samples are pushed in arbitrarily sized chunks and
// each phase value is emitted as soon as its lag-delayed partner sample
// arrives. The output is bit-identical to PhaseDiffStream over the
// concatenated input, regardless of where the chunk boundaries fall —
// the streamer carries the lag most recent samples in a ring across
// pushes.
type PhaseDiffStreamer struct {
	lag  int
	ring []complex128 // the lag most recent samples, oldest at pos
	pos  int
	fill int
}

// NewPhaseDiffStreamer returns a streamer for the given autocorrelation
// lag (16 at 20 Msps, 32 at 40 Msps).
func NewPhaseDiffStreamer(lag int) (*PhaseDiffStreamer, error) {
	if lag <= 0 {
		return nil, fmt.Errorf("dsp: NewPhaseDiffStreamer lag %d must be positive", lag)
	}
	return &PhaseDiffStreamer{lag: lag, ring: make([]complex128, lag)}, nil
}

// Lag returns the autocorrelation lag in samples.
func (s *PhaseDiffStreamer) Lag() int { return s.lag }

// Push consumes one IQ sample. Once at least lag+1 samples have been
// pushed it returns ∠(x[n]·x*[n+lag]) for n = pushed−lag−1 — the same
// value PhaseDiffStream produces at that index — with ok=true; during
// the initial lag-sample warm-up ok is false.
//
//symbee:hotpath
func (s *PhaseDiffStreamer) Push(x complex128) (phi float64, ok bool) {
	if s.fill < s.lag {
		s.ring[s.pos] = x
		s.pos++
		if s.pos == s.lag {
			s.pos = 0
		}
		s.fill++
		return 0, false
	}
	old := s.ring[s.pos] // x[n], exactly lag samples behind x
	s.ring[s.pos] = x
	s.pos++
	if s.pos == s.lag {
		s.pos = 0
	}
	// Same expression and kernel as PhaseDiffStream so the two paths
	// agree to the last bit: p = x[n] · conj(x[n+lag]).
	p := old * complex(real(x), -imag(x))
	return phaseOf(p), true
}

// Process pushes every sample of in and appends the phases that become
// available to out, returning the extended slice. It is the chunk-sized
// convenience wrapper around Push for hot ingestion paths.
//
//symbee:hotpath
func (s *PhaseDiffStreamer) Process(in []complex128, out []float64) []float64 {
	for _, x := range in {
		if phi, ok := s.Push(x); ok {
			out = append(out, phi)
		}
	}
	return out
}

// Reset returns the streamer to its initial empty state.
func (s *PhaseDiffStreamer) Reset() {
	s.pos, s.fill = 0, 0
}
