package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// angErr is the wrapped absolute difference between two angles, so a
// fast result of +π compares equal to an exact result of −π (both name
// the same seam point).
func angErr(a, b float64) float64 {
	d := math.Abs(a - b)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// TestFastAtan2ErrorBound sweeps the full circle — dense uniform angles
// across 20 decades of magnitude plus adversarial near-axis and
// near-diagonal points — and asserts the documented bound.
func TestFastAtan2ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	maxErr := 0.0
	check := func(y, x float64) {
		got := FastAtan2(y, x)
		want := math.Atan2(y, x)
		if e := angErr(got, want); e > maxErr {
			maxErr = e
			if e > FastAtan2MaxErr {
				t.Fatalf("FastAtan2(%g, %g) = %v, want %v (err %.3e > bound %.0e)",
					y, x, got, want, e, FastAtan2MaxErr)
			}
		}
	}
	// Dense angular sweep at random magnitudes.
	const n = 2_000_000
	for i := 0; i < n; i++ {
		th := (float64(i)/n)*2*math.Pi - math.Pi
		r := math.Exp(rng.Float64()*46 - 23) // |v| from ~1e-10 to ~1e10
		check(r*math.Sin(th), r*math.Cos(th))
	}
	// Near the octant seams, where the fold switches formulas.
	for i := 0; i < 100_000; i++ {
		eps := math.Exp(rng.Float64()*60 - 66)
		s := 1 - 2*float64(rng.Intn(2))
		check(s*(1+eps), 1)
		check(s*(1-eps), 1)
		check(1, s*(1+eps))
		check(s*eps, 1)
		check(1, s*eps)
	}
	t.Logf("max FastAtan2 error over sweep: %.3e rad (bound %.0e)", maxErr, FastAtan2MaxErr)
	if maxErr > FastAtan2MaxErr {
		t.Errorf("max error %.3e exceeds documented bound %.0e", maxErr, FastAtan2MaxErr)
	}
}

// TestFastAtan2SignAgreement: the decoder's whole decision structure is
// sign-based, so FastAtan2 must agree with math.Atan2 on strict
// negativity for every input, not merely within the error bound.
func TestFastAtan2SignAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for i := 0; i < 1_000_000; i++ {
		y := rng.NormFloat64()
		x := rng.NormFloat64()
		if i%17 == 0 {
			y = 0
		}
		if i%23 == 0 {
			x = 0
		}
		if (FastAtan2(y, x) < 0) != (math.Atan2(y, x) < 0) {
			t.Fatalf("sign mismatch at (%g, %g): fast %v exact %v",
				y, x, FastAtan2(y, x), math.Atan2(y, x))
		}
	}
}

// TestFastAtan2Specials pins the axis and corner conventions to the
// stdlib, signed zeros included.
func TestFastAtan2Specials(t *testing.T) {
	vals := []float64{0, math.Copysign(0, -1), 1, -1, 0.5, -0.5,
		math.Inf(1), math.Inf(-1), math.NaN(), 5e-324, -5e-324}
	for _, y := range vals {
		for _, x := range vals {
			got, want := FastAtan2(y, x), math.Atan2(y, x)
			switch {
			case math.IsNaN(want):
				if !math.IsNaN(got) {
					t.Errorf("FastAtan2(%g, %g) = %v, want NaN", y, x, got)
				}
			case want == 0:
				// Exact zero of the right sign.
				if got != 0 || math.Signbit(got) != math.Signbit(want) {
					t.Errorf("FastAtan2(%g, %g) = %v (signbit %v), want %v (signbit %v)",
						y, x, got, math.Signbit(got), want, math.Signbit(want))
				}
			default:
				if angErr(got, want) > FastAtan2MaxErr {
					t.Errorf("FastAtan2(%g, %g) = %v, want %v", y, x, got, want)
				}
				if math.Signbit(got) != math.Signbit(want) {
					t.Errorf("FastAtan2(%g, %g) signbit %v, want %v", y, x, math.Signbit(got), math.Signbit(want))
				}
			}
		}
	}
}

// TestFastAtan2Seam is the ±π seam contract shared with WrapPhase: at
// and around the negative real axis — including denormal and −0
// imaginary parts — FastAtan2 must return exactly ±π where Atan2 does,
// never exceed π in magnitude, and WrapPhase of a compensated fast
// phase must stay inside (−π, π].
func TestFastAtan2Seam(t *testing.T) {
	negZero := math.Copysign(0, -1)
	if got := FastAtan2(0, -1); got != math.Pi {
		t.Errorf("FastAtan2(0, -1) = %v, want exactly π", got)
	}
	if got := FastAtan2(negZero, -1); got != -math.Pi {
		t.Errorf("FastAtan2(-0, -1) = %v, want exactly -π", got)
	}
	seamYs := []float64{
		5e-324, -5e-324, // smallest denormals
		1e-320, -1e-320,
		1e-300, -1e-300,
		1e-16, -1e-16,
		0, negZero,
	}
	seamXs := []float64{-1, -0.5, -2, -1e300, -1e-300}
	for _, y := range seamYs {
		for _, x := range seamXs {
			got, want := FastAtan2(y, x), math.Atan2(y, x)
			if math.Abs(got) > math.Pi {
				t.Errorf("FastAtan2(%g, %g) = %v exceeds π in magnitude", y, x, got)
			}
			if angErr(got, want) > FastAtan2MaxErr {
				t.Errorf("FastAtan2(%g, %g) = %v, want %v", y, x, got, want)
			}
			if (got < 0) != (want < 0) {
				t.Errorf("FastAtan2(%g, %g) = %v: sign disagrees with Atan2 = %v", y, x, got, want)
			}
			// The downstream contract: compensating and wrapping a fast
			// phase lands in WrapPhase's half-open interval.
			for _, comp := range []float64{0, 4 * math.Pi / 5, -4 * math.Pi / 5} {
				w := WrapPhase(got + comp)
				if !(w > -math.Pi && w <= math.Pi) {
					t.Errorf("WrapPhase(FastAtan2(%g, %g) + %g) = %v outside (-π, π]", y, x, comp, w)
				}
			}
		}
	}
	// WrapPhase's own seam: inputs a hair inside and outside ±π must
	// stay in (−π, π], including denormal-sized excursions.
	ulp := math.Nextafter(math.Pi, math.Inf(1)) - math.Pi
	for _, phi := range []float64{
		math.Pi, -math.Pi, math.Pi + ulp, -math.Pi - ulp,
		math.Pi - ulp, -math.Pi + ulp, math.Pi + 1e-300, -math.Pi - 1e-300,
	} {
		w := WrapPhase(phi)
		if !(w > -math.Pi && w <= math.Pi) {
			t.Errorf("WrapPhase(%v) = %v outside (-π, π]", phi, w)
		}
		if angErr(w, math.Atan2(math.Sin(phi), math.Cos(phi))) > 1e-9 {
			t.Errorf("WrapPhase(%v) = %v does not name the same angle", phi, w)
		}
	}
}

// TestUseExactPhaseEscapeHatch verifies the debugging flag swaps both
// stream kernels back to bit-exact math.Atan2 — and that batch and
// incremental paths agree under either kernel.
func TestUseExactPhaseEscapeHatch(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	x := make([]complex128, 300)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	const lag = 16
	for _, exact := range []bool{false, true} {
		UseExactPhase = exact
		batch := PhaseDiffStream(x, lag)
		s, err := NewPhaseDiffStreamer(lag)
		if err != nil {
			t.Fatal(err)
		}
		inc := s.Process(x, nil)
		if len(batch) != len(inc) {
			t.Fatalf("exact=%v: batch %d phases, streamer %d", exact, len(batch), len(inc))
		}
		for i := range batch {
			if batch[i] != inc[i] {
				t.Fatalf("exact=%v: phase %d: batch %v streamer %v", exact, i, batch[i], inc[i])
			}
			p := x[i] * complex(real(x[i+lag]), -imag(x[i+lag]))
			want := math.Atan2(imag(p), real(p))
			if exact && batch[i] != want {
				t.Fatalf("exact kernel phase %d = %v, want Atan2 = %v", i, batch[i], want)
			}
			if !exact && angErr(batch[i], want) > FastAtan2MaxErr {
				t.Fatalf("fast kernel phase %d = %v, off Atan2 = %v by more than the bound", i, batch[i], want)
			}
		}
	}
	UseExactPhase = false
}

// TestPhaseNegative pins the atan2-free sign kernel to the Atan2
// convention over random products and every signed-zero corner.
func TestPhaseNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 500_000; i++ {
		p := complex(rng.NormFloat64(), rng.NormFloat64())
		want := math.Atan2(imag(p), real(p)) < 0
		if PhaseNegative(p) != want {
			t.Fatalf("PhaseNegative(%v) = %v, want %v", p, !want, want)
		}
	}
	negZero := math.Copysign(0, -1)
	for _, tc := range []struct {
		p    complex128
		want bool
	}{
		{complex(1, 0), false},
		{complex(-1, 0), false},      // +π is nonnegative
		{complex(-1, negZero), true}, // −π seam
		{complex(1, negZero), false}, // −0 phase: not < 0
		{complex(0, 0), false},
		{complex(0, -1), true},
		{complex(0, 1), false},
	} {
		if got := PhaseNegative(tc.p); got != tc.want {
			t.Errorf("PhaseNegative(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

// TestPhaseClassifier checks sign and threshold classification against
// the exact wrap(atan2+rotation) reference, away from the decision
// boundaries (the classifier is allowed ~1 ulp of rotation rounding at
// the boundary itself, which the margin here dwarfs).
func TestPhaseClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, rot := range []float64{0, 4 * math.Pi / 5, -4 * math.Pi / 5, 1.1} {
		for _, thr := range []float64{0, math.Pi / 10, 4 * math.Pi / 5 * 0.9, math.Pi} {
			cl, err := NewPhaseClassifier(rot, thr)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 200_000; i++ {
				p := complex(rng.NormFloat64(), rng.NormFloat64())
				phi := WrapPhase(math.Atan2(imag(p), real(p)) + rot)
				const margin = 1e-9
				if math.Abs(math.Abs(phi)-thr) > margin {
					want := math.Abs(phi) >= thr
					if got := cl.Above(p); got != want {
						t.Fatalf("rot=%g thr=%g: Above(%v) = %v, want %v (φ=%v)", rot, thr, p, got, want, phi)
					}
				}
				if math.Abs(phi) > margin && math.Abs(math.Abs(phi)-math.Pi) > margin {
					want := phi < 0
					if got := cl.Negative(p); got != want {
						t.Fatalf("rot=%g thr=%g: Negative(%v) = %v, want %v (φ=%v)", rot, thr, p, got, want, phi)
					}
				}
			}
		}
	}
	// Zero product: ∠0 = 0 by convention.
	cl, err := NewPhaseClassifier(0, math.Pi/2)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Above(0) {
		t.Error("Above(0) with τ=π/2 should be false")
	}
	clZero, err := NewPhaseClassifier(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !clZero.Above(0) {
		t.Error("Above(0) with τ=0 should be true")
	}
	if _, err := NewPhaseClassifier(0, -1); err == nil {
		t.Error("expected error for threshold outside [0, π]")
	}
}

func BenchmarkFastAtan2(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	ys := make([]float64, 1<<14)
	xs := make([]float64, 1<<14)
	out := make([]float64, 1<<14)
	for i := range ys {
		ys[i], xs[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ys {
			out[j] = FastAtan2(ys[j], xs[j])
		}
	}
	b.ReportMetric(float64(len(ys)*b.N)/b.Elapsed().Seconds()/1e6, "Msps")
}

func BenchmarkExactAtan2(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	ys := make([]float64, 1<<14)
	xs := make([]float64, 1<<14)
	out := make([]float64, 1<<14)
	for i := range ys {
		ys[i], xs[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ys {
			out[j] = math.Atan2(ys[j], xs[j])
		}
	}
	b.ReportMetric(float64(len(ys)*b.N)/b.Elapsed().Seconds()/1e6, "Msps")
}

// classifySink keeps the classifier loop observable (a write-only local
// slice lets the compiler elide the work and report fantasy rates).
var classifySink int

func BenchmarkPhaseClassify(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	ps := make([]complex128, 1<<14)
	for i := range ps {
		ps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	cl, err := NewPhaseClassifier(4*math.Pi/5, 4*math.Pi/5*0.9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		for j := range ps {
			if cl.Above(ps[j]) {
				n++
			}
		}
	}
	classifySink += n
	b.ReportMetric(float64(len(ps)*b.N)/b.Elapsed().Seconds()/1e6, "Msps")
}
