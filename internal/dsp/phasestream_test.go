package dsp

import (
	"math/rand"
	"testing"
)

func randomIQ(n int, rng *rand.Rand) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestPhaseDiffStreamerMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randomIQ(5000, rng)
	for _, lag := range []int{1, 16, 32} {
		want := PhaseDiffStream(x, lag)
		for _, chunk := range []int{1, 7, 16, 17, 4096, len(x)} {
			s, err := NewPhaseDiffStreamer(lag)
			if err != nil {
				t.Fatal(err)
			}
			var got []float64
			for off := 0; off < len(x); off += chunk {
				end := off + chunk
				if end > len(x) {
					end = len(x)
				}
				got = s.Process(x[off:end], got)
			}
			if len(got) != len(want) {
				t.Fatalf("lag %d chunk %d: %d phases, want %d", lag, chunk, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("lag %d chunk %d: phase[%d] = %v, want %v (must be bit-identical)",
						lag, chunk, i, got[i], want[i])
				}
			}
		}
	}
}

func TestPhaseDiffStreamerWarmup(t *testing.T) {
	s, err := NewPhaseDiffStreamer(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, ok := s.Push(complex(float64(i), 0)); ok {
			t.Fatalf("phase emitted during warm-up at sample %d", i)
		}
	}
	if _, ok := s.Push(1i); !ok {
		t.Fatal("no phase after warm-up")
	}
}

func TestPhaseDiffStreamerReset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomIQ(100, rng)
	s, err := NewPhaseDiffStreamer(16)
	if err != nil {
		t.Fatal(err)
	}
	first := s.Process(x, nil)
	s.Reset()
	second := s.Process(x, nil)
	if len(first) != len(second) {
		t.Fatalf("run lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("Reset did not restore initial state")
		}
	}
}

func TestPhaseDiffStreamerErrorsOnBadLag(t *testing.T) {
	if _, err := NewPhaseDiffStreamer(0); err == nil {
		t.Fatal("no error for lag 0")
	}
}
