package dsp

import "fmt"

// MovingSignCounter maintains, over a sliding window of fixed size, the
// number of negative values in the window. The SymBee decoder slides an
// 84-value window over the phase stream and checks whether at least
// window-τ values share a sign (§IV-C); this counter makes that an O(1)
// per-sample operation.
type MovingSignCounter struct {
	ring []float64
	pos  int
	fill int
	neg  int
}

// NewMovingSignCounter returns a counter with the given window size.
func NewMovingSignCounter(window int) (*MovingSignCounter, error) {
	if window <= 0 {
		return nil, fmt.Errorf("dsp: NewMovingSignCounter window %d must be positive", window)
	}
	return &MovingSignCounter{ring: make([]float64, window)}, nil
}

// Push adds v to the window, evicting the oldest value when full.
// It reports whether the window is full, along with the current counts
// of negative and nonnegative values in the window.
func (c *MovingSignCounter) Push(v float64) (full bool, neg, nonneg int) {
	if c.fill == len(c.ring) {
		if c.ring[c.pos] < 0 {
			c.neg--
		}
	} else {
		c.fill++
	}
	c.ring[c.pos] = v
	if v < 0 {
		c.neg++
	}
	c.pos++
	if c.pos == len(c.ring) {
		c.pos = 0
	}
	return c.fill == len(c.ring), c.neg, c.fill - c.neg
}

// Reset empties the window.
func (c *MovingSignCounter) Reset() {
	c.pos, c.fill, c.neg = 0, 0, 0
}

// Window returns the window size.
func (c *MovingSignCounter) Window() int { return len(c.ring) }

// Reanchor recounts the negatives from the ring contents. The count is
// integer-exact either way; the method exists so the scalar hunt path
// re-anchors its whole windowed state (counter and average together) at
// the deterministic stream positions the batched hunt kernel re-derives
// its state at — see the hunt-kernel notes in internal/core/scan.go.
func (c *MovingSignCounter) Reanchor() {
	neg := 0
	for _, v := range c.ring[:c.fill] {
		if v < 0 {
			neg++
		}
	}
	c.neg = neg
}

// LoadWindow replaces the window with the given values (oldest first)
// and recounts the negatives, leaving the counter exactly as if the
// values had been pushed in order into a full counter. len(values) must
// equal the window size. The batched hunt kernel uses it to hand a
// scanner back to the scalar path after a fold lock.
func (c *MovingSignCounter) LoadWindow(values []float64) {
	copy(c.ring, values)
	c.pos = 0
	c.fill = len(c.ring)
	c.Reanchor()
}

// MovingAverage maintains a sliding-window mean over a float stream,
// used by the RSSI-based baseline CTC receivers.
type MovingAverage struct {
	ring []float64
	pos  int
	fill int
	sum  float64
}

// NewMovingAverage returns a moving average with the given window size.
func NewMovingAverage(window int) (*MovingAverage, error) {
	if window <= 0 {
		return nil, fmt.Errorf("dsp: NewMovingAverage window %d must be positive", window)
	}
	return &MovingAverage{ring: make([]float64, window)}, nil
}

// Push adds v and returns the mean over the (possibly partially filled)
// window.
func (a *MovingAverage) Push(v float64) float64 {
	if a.fill == len(a.ring) {
		a.sum -= a.ring[a.pos]
	} else {
		a.fill++
	}
	a.ring[a.pos] = v
	a.sum += v
	a.pos++
	if a.pos == len(a.ring) {
		a.pos = 0
	}
	return a.sum / float64(a.fill)
}

// Full reports whether the window has been completely filled.
func (a *MovingAverage) Full() bool { return a.fill == len(a.ring) }

// Reanchor recomputes the running sum from the ring contents, summing
// oldest to newest. The incremental sum drifts from the true window sum
// by at most one rounding per push since the last re-anchor; calling
// Reanchor at deterministic stream positions caps that drift and, more
// importantly, makes the sum at those positions a pure function of the
// window contents — the property that lets the batched hunt kernel skip
// whole idle segments and still agree with the scalar path to the last
// bit (internal/core/scan.go).
func (a *MovingAverage) Reanchor() {
	var s float64
	if a.fill == len(a.ring) {
		// Full ring: oldest at pos, chronological order wraps once.
		for _, v := range a.ring[a.pos:] {
			s += v
		}
		for _, v := range a.ring[:a.pos] {
			s += v
		}
	} else {
		for _, v := range a.ring[:a.fill] {
			s += v
		}
	}
	a.sum = s
}

// LoadWindow replaces the window with the given values (oldest first)
// and installs the carried running sum, leaving the average exactly as
// the incremental scalar path would hold it at the same stream
// position. len(values) must equal the window size. The batched hunt
// kernel uses it to hand a scanner back to the scalar path after a fold
// lock: the kernel maintains the same incremental sum, so the carried
// value — not a fresh recomputation — preserves bit-identity.
func (a *MovingAverage) LoadWindow(values []float64, sum float64) {
	copy(a.ring, values)
	a.pos = 0
	a.fill = len(a.ring)
	a.sum = sum
}

// Reset empties the window so the average can be reused without
// reallocating its ring.
func (a *MovingAverage) Reset() {
	a.pos, a.fill, a.sum = 0, 0, 0
}
