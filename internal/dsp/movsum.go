package dsp

import "fmt"

// MovingSignCounter maintains, over a sliding window of fixed size, the
// number of negative values in the window. The SymBee decoder slides an
// 84-value window over the phase stream and checks whether at least
// window-τ values share a sign (§IV-C); this counter makes that an O(1)
// per-sample operation.
type MovingSignCounter struct {
	ring []float64
	pos  int
	fill int
	neg  int
}

// NewMovingSignCounter returns a counter with the given window size.
func NewMovingSignCounter(window int) (*MovingSignCounter, error) {
	if window <= 0 {
		return nil, fmt.Errorf("dsp: NewMovingSignCounter window %d must be positive", window)
	}
	return &MovingSignCounter{ring: make([]float64, window)}, nil
}

// Push adds v to the window, evicting the oldest value when full.
// It reports whether the window is full, along with the current counts
// of negative and nonnegative values in the window.
func (c *MovingSignCounter) Push(v float64) (full bool, neg, nonneg int) {
	if c.fill == len(c.ring) {
		if c.ring[c.pos] < 0 {
			c.neg--
		}
	} else {
		c.fill++
	}
	c.ring[c.pos] = v
	if v < 0 {
		c.neg++
	}
	c.pos++
	if c.pos == len(c.ring) {
		c.pos = 0
	}
	return c.fill == len(c.ring), c.neg, c.fill - c.neg
}

// Reset empties the window.
func (c *MovingSignCounter) Reset() {
	c.pos, c.fill, c.neg = 0, 0, 0
}

// Window returns the window size.
func (c *MovingSignCounter) Window() int { return len(c.ring) }

// MovingAverage maintains a sliding-window mean over a float stream,
// used by the RSSI-based baseline CTC receivers.
type MovingAverage struct {
	ring []float64
	pos  int
	fill int
	sum  float64
}

// NewMovingAverage returns a moving average with the given window size.
func NewMovingAverage(window int) (*MovingAverage, error) {
	if window <= 0 {
		return nil, fmt.Errorf("dsp: NewMovingAverage window %d must be positive", window)
	}
	return &MovingAverage{ring: make([]float64, window)}, nil
}

// Push adds v and returns the mean over the (possibly partially filled)
// window.
func (a *MovingAverage) Push(v float64) float64 {
	if a.fill == len(a.ring) {
		a.sum -= a.ring[a.pos]
	} else {
		a.fill++
	}
	a.ring[a.pos] = v
	a.sum += v
	a.pos++
	if a.pos == len(a.ring) {
		a.pos = 0
	}
	return a.sum / float64(a.fill)
}

// Full reports whether the window has been completely filled.
func (a *MovingAverage) Full() bool { return a.fill == len(a.ring) }

// Reset empties the window so the average can be reused without
// reallocating its ring.
func (a *MovingAverage) Reset() {
	a.pos, a.fill, a.sum = 0, 0, 0
}
