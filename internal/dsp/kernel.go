package dsp

import (
	"fmt"
	"math"
)

// This file is the phase kernel layer: the per-sample primitives behind
// the idle-listening stream ∠(x[n]·x*[n+lag]) that every receiver path
// computes at the full sample rate (20/40 Msps). The decode logic above
// it only ever consumes signs and coarse thresholds of these phases
// (decision margins are multiples of π/10, see DESIGN.md §8), so the
// kernel trades the last ~8 digits of math.Atan2 for a ~2.5× higher
// sample rate, and offers sign/threshold classification that skips the
// angle entirely.

// UseExactPhase forces every phase-stream kernel back to math.Atan2.
// It exists as a debugging escape hatch: flip it when bisecting whether
// a decode difference stems from kernel error (it never should — see
// FastAtan2MaxErr vs the π/10 decision margins). It is read once per
// chunk/push and must not be toggled while streams are in flight.
var UseExactPhase bool

// FastAtan2MaxErr is the guaranteed absolute error bound of FastAtan2
// against math.Atan2, in radians. The truncated degree-17 Chebyshev
// expansion of atan on [0,1] is exact to 6.7e-9 (measured by the
// full-circle sweep in kernel_test.go); the constant is rounded up for
// slack. For scale: the smallest decision margin anywhere in the
// decoder is the π/10 ≈ 0.314 rad gap between phase-alphabet points
// (Appendix A), seven orders of magnitude above this bound.
const FastAtan2MaxErr = 1e-8

// Coefficients of the truncated Chebyshev expansion of atan(z),
//
//	atan(z) = 2 Σ_{n≥0} (-1)^n c^(2n+1)/(2n+1) · T_{2n+1}(z), c = √2−1,
//
// cut at degree 17 and recombined into monomial form. The octant fold
// in FastAtan2 only evaluates z ∈ [0,1], where the dropped tail sums to
// under 7e-9.
const (
	at01 = 9.99999871163872123e-01
	at03 = -3.33325240026253244e-01
	at05 = 1.99848846855741391e-01
	at07 = -1.41548060418656946e-01
	at09 = 1.04775391986506400e-01
	at11 = -7.19438454245825143e-02
	at13 = 3.93454131479066133e-02
	at15 = -1.41523480361711619e-02
	at17 = 2.39813901250996928e-03
)

// atanPoly evaluates the degree-17 polynomial for atan(z), z ∈ [0,1].
func atanPoly(z float64) float64 {
	u := z * z
	s := at17
	s = s*u + at15
	s = s*u + at13
	s = s*u + at11
	s = s*u + at09
	s = s*u + at07
	s = s*u + at05
	s = s*u + at03
	s = s*u + at01
	return s * z
}

// Octant reconstruction tables, indexed by (|y|>|x|) | (x<0)<<1: the
// folded first-octant angle is flipped and shifted back to the full
// circle, then copysign restores the half-plane.
var (
	octOff = [4]float64{0, math.Pi / 2, math.Pi, math.Pi / 2}
	octSgn = [4]float64{1, -1, -1, 1}
)

// FastAtan2 approximates math.Atan2(y, x) within FastAtan2MaxErr using
// one division and one polynomial, with no data-dependent branches on
// finite nonzero inputs — the octant is folded arithmetically (min/max
// + sign/offset tables), so throughput does not collapse on the
// unpredictable quadrant pattern of noise samples the way a branchy
// reduction does.
//
// Sign conventions match math.Atan2 exactly, including signed zeros and
// the ±π seam: the result is negative iff Atan2's is, the magnitude
// never exceeds π, and axis inputs (either argument ±0) return the same
// exact values (0, ±0, ±π/2, ±π) as the stdlib. NaN and infinite
// inputs, and the (±0, ±0) corner, are delegated to math.Atan2.
//
//symbee:hotpath
func FastAtan2(y, x float64) float64 {
	ay, ax := math.Abs(y), math.Abs(x)
	mx := max(ay, ax)
	mn := min(ay, ax)
	if !(mx > 0) || math.IsInf(mx, 1) {
		// Both zero, an infinity, or a NaN: off the hot path entirely.
		return math.Atan2(y, x)
	}
	z := mn / mx
	if z == 0 && x < 0 {
		// y is ±0, or |y/x| underflowed to zero. Atan2 resolves this
		// collapsed seam from the quotient's rounded sign (+π for both
		// ±underflow, −π only for a true −0 y); reconstructing from y's
		// sign would disagree, so take the stdlib answer verbatim.
		return math.Atan2(y, x)
	}
	base := atanPoly(z)
	i := 0
	if ay > ax {
		i = 1
	}
	if x < 0 {
		i |= 2
	}
	return math.Copysign(octSgn[i]*base+octOff[i], y)
}

// phaseOf returns ∠p through the configured kernel: FastAtan2 by
// default, math.Atan2 when UseExactPhase is set. Hot loops should hoist
// the flag read per chunk (see PhaseDiffStream); this helper is for
// per-sample call sites.
//
//symbee:hotpath
func phaseOf(p complex128) float64 {
	if UseExactPhase {
		return math.Atan2(imag(p), real(p))
	}
	return FastAtan2(imag(p), real(p))
}

// PhaseNegative reports whether ∠p decodes as a negative phase, with
// exactly math.Atan2's sign convention: true iff imag(p) < 0, or
// imag(p) is −0 with real(p) < 0 (the −π seam). This is the SymBee bit
// decision (§IV-C, boundary at 0) computed without any arc tangent — a
// bit-exact replacement for Atan2(...) < 0, not an approximation.
//
//symbee:hotpath
func PhaseNegative(p complex128) bool {
	im := imag(p)
	return im < 0 || (im == 0 && math.Signbit(im) && real(p) < 0)
}

// PhaseClassifier classifies the compensated phase wrap(∠p + rotation)
// against a symmetric magnitude threshold without computing the angle:
// the rotation is applied as a complex multiply by e^{j·rotation} and
// both tests reduce to sign and squared-cosine comparisons on the
// rotated components. It implements the 84-sample run check of
// Appendix A — only |φ| ≷ τ and the sign of φ matter there, never the
// angle itself — at a few multiplies per sample.
//
// The classifications agree with the atan2 path except within the
// rotation's own rounding (≲ 1 ulp of the component magnitudes) of the
// exact decision boundary; noise alone moves samples across a boundary
// by incomparably more.
type PhaseClassifier struct {
	rot     complex128
	cosThr  float64
	cos2Thr float64 // sign(cosThr) · cosThr²
}

// NewPhaseClassifier builds a classifier for the given compensation
// rotation (radians added to every phase, e.g. +4π/5 for the canonical
// ZigBee/WiFi channel pair) and threshold τ ∈ [0, π].
func NewPhaseClassifier(rotation, threshold float64) (PhaseClassifier, error) {
	if threshold < 0 || threshold > math.Pi {
		return PhaseClassifier{}, fmt.Errorf("dsp: NewPhaseClassifier threshold %v outside [0, π]", threshold)
	}
	c := math.Cos(threshold)
	return PhaseClassifier{
		rot:     complex(math.Cos(rotation), math.Sin(rotation)),
		cosThr:  c,
		cos2Thr: math.Copysign(c*c, c),
	}, nil
}

// Negative reports whether the compensated phase is negative — the bit
// decision of §IV-C after CFO compensation, atan2-free.
//
//symbee:hotpath
func (c PhaseClassifier) Negative(p complex128) bool {
	return PhaseNegative(p * c.rot)
}

// Above reports whether |wrap(∠p + rotation)| ≥ τ. Using r = p·e^{jθ}:
// |φ| ≥ τ ⇔ cos φ ≤ cos τ ⇔ real(r) ≤ cos τ · |r|, which resolves with
// signs and one squared comparison — no square root, no arc tangent.
//
//symbee:hotpath
func (c PhaseClassifier) Above(p complex128) bool {
	r := p * c.rot
	re, im := real(r), imag(r)
	mag2 := re*re + im*im
	if mag2 == 0 {
		// ∠0 is 0 by Atan2 convention: above only for τ = 0.
		return c.cosThr >= 1
	}
	if c.cosThr >= 0 {
		// re ≤ cosτ·|r|: certainly true when re ≤ 0, else compare squares.
		return re <= 0 || re*re <= c.cos2Thr*mag2
	}
	// cosτ < 0: re must be negative and large enough in magnitude.
	return re < 0 && re*re >= -c.cos2Thr*mag2
}
