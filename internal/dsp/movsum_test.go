package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestMovingSignCounter(t *testing.T) {
	c, err := NewMovingSignCounter(3)
	if err != nil {
		t.Fatal(err)
	}
	type step struct {
		v          float64
		full       bool
		neg, nonny int
	}
	steps := []step{
		{-1, false, 1, 0},
		{2, false, 1, 1},
		{-3, true, 2, 1},
		{-4, true, 2, 1}, // evicts -1, adds -4
		{5, true, 1, 2},  // evicts 2... window now [-3,-4,5] -> wait
	}
	// Recompute expected by brute force instead of hand-tracking.
	vals := []float64{}
	for i, s := range steps {
		full, neg, nonneg := c.Push(s.v)
		vals = append(vals, s.v)
		win := vals
		if len(win) > 3 {
			win = win[len(win)-3:]
		}
		wantNeg, wantNonneg := SignCounts(win)
		if full != (len(vals) >= 3) || neg != wantNeg || nonneg != wantNonneg {
			t.Errorf("step %d: got (%v,%d,%d), want (%v,%d,%d)",
				i, full, neg, nonneg, len(vals) >= 3, wantNeg, wantNonneg)
		}
	}
}

func TestMovingSignCounterRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const window = 84
	c, err := NewMovingSignCounter(window)
	if err != nil {
		t.Fatal(err)
	}
	var vals []float64
	for i := 0; i < 2000; i++ {
		v := rng.NormFloat64()
		vals = append(vals, v)
		full, neg, nonneg := c.Push(v)
		win := vals
		if len(win) > window {
			win = win[len(win)-window:]
		}
		wantNeg, wantNonneg := SignCounts(win)
		if full != (len(vals) >= window) || neg != wantNeg || nonneg != wantNonneg {
			t.Fatalf("i=%d mismatch: got (%v,%d,%d) want (%v,%d,%d)",
				i, full, neg, nonneg, len(vals) >= window, wantNeg, wantNonneg)
		}
	}
	c.Reset()
	if full, _, _ := c.Push(1); full {
		t.Error("full after Reset")
	}
}

func TestMovingAverage(t *testing.T) {
	a, err := NewMovingAverage(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMovingAverage(0); err == nil {
		t.Error("expected error for non-positive window")
	}
	if got := a.Push(2); got != 2 {
		t.Errorf("first = %v", got)
	}
	if a.Full() {
		t.Error("should not be full yet")
	}
	if got := a.Push(4); got != 3 {
		t.Errorf("second = %v", got)
	}
	if !a.Full() {
		t.Error("should be full")
	}
	if got := a.Push(6); math.Abs(got-5) > 1e-12 {
		t.Errorf("third = %v, want 5", got)
	}
}
