package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestFFTKnownTone(t *testing.T) {
	// A pure tone at bin 3 of a 16-point FFT.
	const n = 16
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * 3 * float64(i) / n
		x[i] = cmplx.Exp(complex(0, ang))
	}
	FFT(x)
	for k := range x {
		mag := cmplx.Abs(x[k])
		if k == 3 {
			if math.Abs(mag-n) > 1e-9 {
				t.Errorf("bin 3 magnitude = %v, want %v", mag, float64(n))
			}
		} else if mag > 1e-9 {
			t.Errorf("bin %d magnitude = %v, want 0", k, mag)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 8, 64, 256, 1024} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		IFFT(FFT(x))
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d: round trip mismatch at %d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 128
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	timeEnergy := Energy(x)
	X := make([]complex128, n)
	copy(X, x)
	FFT(X)
	freqEnergy := Energy(X) / n
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Errorf("Parseval violated: time %v, freq %v", timeEnergy, freqEnergy)
	}
}

func TestFFTNonPow2ZeroPads(t *testing.T) {
	// Non-power-of-two input transforms a zero-padded copy, leaving the
	// original untouched.
	x := make([]complex128, 12)
	for i := range x {
		x[i] = complex(float64(i+1), 0)
	}
	orig := append([]complex128{}, x...)
	X := FFT(x)
	if len(X) != 16 {
		t.Fatalf("padded length = %d, want 16", len(X))
	}
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT of non-power-of-two length mutated its input")
		}
	}
	// DC bin equals the plain sum of the (padded) sequence.
	var sum complex128
	for _, v := range orig {
		sum += v
	}
	if cmplx.Abs(X[0]-sum) > 1e-9 {
		t.Errorf("DC bin = %v, want %v", X[0], sum)
	}
}

func TestNextPow2(t *testing.T) {
	tests := []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {1000, 1024}, {1024, 1024},
	}
	for _, tt := range tests {
		if got := NextPow2(tt.in); got != tt.want {
			t.Errorf("NextPow2(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestSpectrumPowerTone(t *testing.T) {
	// 0.5 MHz tone at 20 Msps over 400 samples pads to 512; peak bin
	// should be near 0.5/20*512 = 12.8 → bin 13.
	const n = 400
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * 0.5e6 * float64(i) / 20e6
		x[i] = cmplx.Exp(complex(0, ang))
	}
	spec := SpectrumPower(x)
	best := 0
	for k, p := range spec {
		if p > spec[best] {
			best = k
		}
	}
	if best < 12 || best > 14 {
		t.Errorf("peak bin = %d, want ~13", best)
	}
}
