package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWrapPhase(t *testing.T) {
	tests := []struct {
		name string
		in   float64
		want float64
	}{
		{"zero", 0, 0},
		{"pi stays pi", math.Pi, math.Pi},
		{"minus pi wraps to pi", -math.Pi, math.Pi},
		{"just above pi", math.Pi + 0.1, -math.Pi + 0.1},
		{"just below minus pi", -math.Pi - 0.1, math.Pi - 0.1},
		{"two pi", 2 * math.Pi, 0},
		{"large positive", 7 * math.Pi, math.Pi},
		{"large negative", -7.5 * math.Pi, 0.5 * math.Pi},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := WrapPhase(tt.in)
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("WrapPhase(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestWrapPhaseProperty(t *testing.T) {
	f := func(phi float64) bool {
		if math.IsNaN(phi) || math.IsInf(phi, 0) || math.Abs(phi) > 1e9 {
			return true // out of the domain we care about
		}
		w := WrapPhase(phi)
		if w <= -math.Pi || w > math.Pi {
			return false
		}
		// Wrapped value must be congruent to the input modulo 2π.
		diff := math.Mod(phi-w, 2*math.Pi)
		diff = math.Abs(diff)
		if diff > math.Pi {
			diff = 2*math.Pi - diff
		}
		return diff < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPhaseDiffStreamConstantTone(t *testing.T) {
	// x[n] = exp(-jωn) gives p[n] = arg(x[n]·conj(x[n+16])) = +16ω.
	const (
		n   = 200
		lag = 16
	)
	omega := 2 * math.Pi * 0.5e6 / 20e6 // 0.5 MHz at 20 Msps
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(-omega*float64(i)), math.Sin(-omega*float64(i)))
	}
	ph := PhaseDiffStream(x, lag)
	if len(ph) != n-lag {
		t.Fatalf("len = %d, want %d", len(ph), n-lag)
	}
	want := WrapPhase(16 * omega) // = 4π/5
	for i, p := range ph {
		if math.Abs(p-want) > 1e-9 {
			t.Fatalf("ph[%d] = %v, want %v (4π/5 = %v)", i, p, want, 4*math.Pi/5)
		}
	}
	if math.Abs(want-4*math.Pi/5) > 1e-12 {
		t.Errorf("expected stable phase 4π/5, got %v", want)
	}
}

func TestPhaseDiffStreamShort(t *testing.T) {
	if got := PhaseDiffStream(make([]complex128, 10), 16); got != nil {
		t.Errorf("expected nil for short input, got %v", got)
	}
}

func TestCompensatePhases(t *testing.T) {
	phases := []float64{0, math.Pi - 0.1, -math.Pi + 0.1}
	CompensatePhases(phases, 0.2)
	want := []float64{0.2, -math.Pi + 0.1, -math.Pi + 0.3}
	for i := range phases {
		if math.Abs(phases[i]-want[i]) > 1e-12 {
			t.Errorf("phases[%d] = %v, want %v", i, phases[i], want[i])
		}
	}
}

func TestQuantizePhase(t *testing.T) {
	step := math.Pi / 10
	snapped, m := QuantizePhase(4*math.Pi/5+0.01, step)
	if m != 8 {
		t.Errorf("multiple = %d, want 8", m)
	}
	if math.Abs(snapped-4*math.Pi/5) > 1e-12 {
		t.Errorf("snapped = %v, want 4π/5", snapped)
	}
}

func TestLongestStableRun(t *testing.T) {
	phases := []float64{0, 0, 1.0, 1.01, 1.02, 0.99, 1.0, 2.5, 2.5}
	start, length := LongestStableRun(phases, 0.05)
	if start != 2 || length != 5 {
		t.Errorf("run = (%d,%d), want (2,5)", start, length)
	}
}

func TestLongestStableRunWrapAround(t *testing.T) {
	// Values near ±π are angularly close even though numerically far.
	phases := []float64{math.Pi - 0.01, -math.Pi + 0.01, math.Pi - 0.02, 0}
	_, length := LongestStableRun(phases, 0.1)
	if length != 3 {
		t.Errorf("length = %d, want 3 (wrap-aware)", length)
	}
}

func TestSignCounts(t *testing.T) {
	neg, nonneg := SignCounts([]float64{-1, -0.5, 0, 0.5, 1})
	if neg != 2 || nonneg != 3 {
		t.Errorf("SignCounts = (%d,%d), want (2,3)", neg, nonneg)
	}
}

func TestPhaseDistanceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := (rng.Float64() - 0.5) * 20
		b := (rng.Float64() - 0.5) * 20
		d := PhaseDistance(a, b)
		if d < 0 || d > math.Pi+1e-12 {
			t.Fatalf("PhaseDistance(%v,%v) = %v out of [0,π]", a, b, d)
		}
		if math.Abs(d-PhaseDistance(b, a)) > 1e-9 {
			t.Fatalf("PhaseDistance not symmetric at (%v,%v)", a, b)
		}
	}
}
