package dsp

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x (0 for fewer than two
// samples).
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 {
	return math.Sqrt(Variance(x))
}

// Percentile returns the p-th percentile (0-100) of x using linear
// interpolation between order statistics. It copies x and does not
// modify the input. It returns 0 for an empty slice.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := make([]float64, len(x))
	copy(s, x)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 {
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// ApproxEqual reports whether a and b agree within the absolute
// tolerance tol. It is the comparison DSP code should use in place of
// exact == / != between computed floats (the floatcmp rule): NaN is
// never approximately equal to anything, and infinities only match
// themselves.
func ApproxEqual(a, b, tol float64) bool {
	if a == b { //symbee:ignore floatcmp -- the fast path for exact hits, incl. matching infinities
		return true
	}
	return math.Abs(a-b) <= tol
}

// Histogram counts x into nbins equal-width bins spanning [lo, hi].
// Values outside the range are clamped into the first/last bin.
// Degenerate binnings (nbins <= 0 or an empty range) are an error.
func Histogram(x []float64, lo, hi float64, nbins int) ([]int, error) {
	if nbins <= 0 || hi <= lo {
		return nil, fmt.Errorf("dsp: Histogram needs nbins > 0 and hi > lo (got nbins=%d, lo=%v, hi=%v)", nbins, lo, hi)
	}
	counts := make([]int, nbins)
	scale := float64(nbins) / (hi - lo)
	for _, v := range x {
		i := int((v - lo) * scale)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, nil
}
