// Package dsp provides the signal-processing primitives shared by the
// SymBee reproduction: complex-vector arithmetic, an FFT, phase math
// (wrapping, quantization, phase-difference streams), the folding
// technique used for preamble capture, window functions, moving sums,
// and basic statistics.
//
// Everything in this package operates on []complex128 or []float64 at an
// abstract sample level; radio-specific constants (sample rates, lags,
// window sizes) live in the zigbee, wifi and core packages.
package dsp
