package dsp

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestEnergyAndPower(t *testing.T) {
	x := []complex128{3 + 4i, 0, 1}
	if e := Energy(x); math.Abs(e-26) > 1e-12 {
		t.Errorf("Energy = %v, want 26", e)
	}
	if p := Power(x); math.Abs(p-26.0/3) > 1e-12 {
		t.Errorf("Power = %v, want 26/3", p)
	}
	if p := Power(nil); p != 0 {
		t.Errorf("Power(nil) = %v, want 0", p)
	}
}

func TestScale(t *testing.T) {
	x := []complex128{1 + 1i, 2}
	Scale(x, 2)
	if x[0] != 2+2i || x[1] != 4 {
		t.Errorf("Scale result = %v", x)
	}
}

func TestNormalizePower(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	NormalizePower(x, 2.5)
	if p := Power(x); math.Abs(p-2.5) > 1e-12 {
		t.Errorf("normalized power = %v, want 2.5", p)
	}
	// Zero signal unchanged.
	z := []complex128{0, 0}
	NormalizePower(z, 1)
	if z[0] != 0 || z[1] != 0 {
		t.Error("zero signal should be unchanged")
	}
}

func TestMixInto(t *testing.T) {
	dst := make([]complex128, 5)
	src := []complex128{1, 2, 3}
	if n := MixInto(dst, src, 3); n != 2 {
		t.Errorf("MixInto clipped count = %d, want 2", n)
	}
	if dst[3] != 1 || dst[4] != 2 {
		t.Errorf("dst = %v", dst)
	}
	dst = make([]complex128, 5)
	if n := MixInto(dst, src, -1); n != 2 {
		t.Errorf("MixInto negative offset count = %d, want 2", n)
	}
	if dst[0] != 2 || dst[1] != 3 {
		t.Errorf("dst = %v", dst)
	}
	if n := MixInto(dst, src, 10); n != 0 {
		t.Errorf("MixInto past end count = %d, want 0", n)
	}
}

func TestRotateFrequency(t *testing.T) {
	// Rotating a DC signal by f produces a tone at f.
	const (
		n    = 2048
		rate = 20e6
		freq = 3e6
	)
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	RotateFrequency(x, freq, rate, 0)
	for i := 0; i < n; i++ {
		want := cmplx.Exp(complex(0, 2*math.Pi*freq*float64(i)/rate))
		if cmplx.Abs(x[i]-want) > 1e-6 {
			t.Fatalf("sample %d = %v, want %v", i, x[i], want)
		}
	}
}

func TestRotateFrequencyChunked(t *testing.T) {
	// Rotating in two chunks with startSample continuation must equal a
	// single rotation.
	const n = 1000
	a := make([]complex128, n)
	b := make([]complex128, n)
	for i := range a {
		a[i] = complex(float64(i%7), float64(i%3))
		b[i] = a[i]
	}
	RotateFrequency(a, 2e6, 20e6, 0)
	RotateFrequency(b[:400], 2e6, 20e6, 0)
	RotateFrequency(b[400:], 2e6, 20e6, 400)
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > 1e-6 {
			t.Fatalf("chunked rotation mismatch at %d", i)
		}
	}
}

func TestDelaySum(t *testing.T) {
	x := []complex128{1, 0, 0, 0}
	y, err := DelaySum(x, []int{0, 2}, []complex128{1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{1, 0, 0.5, 0}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestConj(t *testing.T) {
	x := []complex128{1 + 2i}
	Conj(x)
	if x[0] != 1-2i {
		t.Errorf("Conj = %v", x[0])
	}
}
