package dsp

import "math"

// WrapPhase wraps an angle in radians to the interval (-π, π].
//
// The near-range branches are bit-identical to the math.Mod path: for
// |phi| ≤ 4π every ±2π step is exact (Sterbenz), and two exact results
// in a half-open 2π interval that differ by a multiple of 2π are the
// same value. They just skip math.Mod, which dominates the per-sample
// cost of CFO compensation on the streaming hot path.
//
//symbee:hotpath
func WrapPhase(phi float64) float64 {
	if phi > -math.Pi && phi <= math.Pi {
		return phi
	}
	if phi >= -4*math.Pi && phi <= 4*math.Pi {
		for phi > math.Pi {
			phi -= 2 * math.Pi
		}
		for phi <= -math.Pi {
			phi += 2 * math.Pi
		}
		return phi
	}
	phi = math.Mod(phi, 2*math.Pi)
	switch {
	case phi > math.Pi:
		phi -= 2 * math.Pi
	case phi <= -math.Pi:
		phi += 2 * math.Pi
	}
	return phi
}

// PhaseDiffStream computes the idle-listening phase stream
//
//	p[n] = arg(x[n] · conj(x[n+lag]))
//
// for n in [0, len(x)-lag). This is the quantity the WiFi packet-detection
// (autocorrelation) block computes on every incoming sample; SymBee
// decoding consumes it directly (paper Eq. 1, with lag = 16 at 20 Msps and
// lag = 32 at 40 Msps).
//
// Angles come from the phase kernel (FastAtan2 unless UseExactPhase is
// set); the flag is read once per call, so a capture is computed with
// one kernel throughout.
//
// A non-positive lag, like an input shorter than lag+1 samples, admits
// no phase pairs and returns nil.
func PhaseDiffStream(x []complex128, lag int) []float64 {
	if lag <= 0 || len(x) <= lag {
		return nil
	}
	out := make([]float64, len(x)-lag)
	if UseExactPhase {
		for n := range out {
			p := x[n] * complex(real(x[n+lag]), -imag(x[n+lag]))
			out[n] = math.Atan2(imag(p), real(p))
		}
		return out
	}
	for n := range out {
		p := x[n] * complex(real(x[n+lag]), -imag(x[n+lag]))
		out[n] = FastAtan2(imag(p), real(p))
	}
	return out
}

// CompensatePhases adds offset to every phase in place, re-wrapping to
// (-π, π]. It implements the channel-frequency-offset compensation of
// Appendix B (offset = +4π/5 for every overlapping ZigBee/WiFi channel
// pair at 20 Msps).
func CompensatePhases(phases []float64, offset float64) []float64 {
	if offset == 0 {
		return phases
	}
	for i, p := range phases {
		phases[i] = WrapPhase(p + offset)
	}
	return phases
}

// QuantizePhase snaps phi to the nearest multiple of step and reports the
// integer multiple. Appendix A shows a noiseless cross-observed ZigBee
// signal only produces phases i·π/10 for i in [-8, 8]; tests use this to
// verify the 17-value phase alphabet.
func QuantizePhase(phi, step float64) (snapped float64, multiple int) {
	m := math.Round(phi / step)
	return m * step, int(m)
}

// PhaseDistance returns the absolute angular distance between two phases,
// accounting for wrap-around; the result is in [0, π].
func PhaseDistance(a, b float64) float64 {
	return math.Abs(WrapPhase(a - b))
}

// LongestStableRun scans phases and returns the start index and length of
// the longest run of consecutive values that stay within tol of the run's
// first value (angular distance). It is the analysis tool behind Fig. 6:
// the search for the symbol combinations with the longest stable phase.
func LongestStableRun(phases []float64, tol float64) (start, length int) {
	bestStart, bestLen := 0, 0
	i := 0
	for i < len(phases) {
		ref := phases[i]
		j := i + 1
		for j < len(phases) && PhaseDistance(phases[j], ref) <= tol {
			j++
		}
		if j-i > bestLen {
			bestStart, bestLen = i, j-i
		}
		i++
		// Restarting at i+1 (not j) keeps the scan exact: a longer run
		// may begin inside the previous candidate with a different
		// reference value.
	}
	return bestStart, bestLen
}

// SignCounts reports how many of the given phases are negative and how
// many are nonnegative. The SymBee decision boundary is 0 (§IV-C).
func SignCounts(phases []float64) (neg, nonneg int) {
	for _, p := range phases {
		if p < 0 {
			neg++
		} else {
			nonneg++
		}
	}
	return neg, nonneg
}
