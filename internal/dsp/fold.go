package dsp

import "fmt"

// Fold implements the folding technique (Staelin's fast folding, paper
// §V) used to detect a periodic pattern buried in noise: the input is
// sliced into reps consecutive subvectors of length period, which are
// stacked and summed column-wise.
//
//	FoldSum[n] = Σ_{i=0}^{reps-1} x[n + i·period],  0 ≤ n < period
//
// For SymBee preamble capture the input is the phase stream, period = 640
// (one SymBee bit at 20 Msps) and reps = 4 (four preamble bits), so the
// stable-phase region adds coherently while noise averages out.
//
// Fold reports an error for non-positive dimensions or when x is
// shorter than reps*period.
func Fold(x []float64, period, reps int) ([]float64, error) {
	if period <= 0 || reps <= 0 {
		return nil, fmt.Errorf("dsp: Fold period %d and reps %d must be positive", period, reps)
	}
	if len(x) < period*reps {
		return nil, fmt.Errorf("dsp: Fold input length %d shorter than period*reps = %d", len(x), period*reps)
	}
	out := make([]float64, period)
	for i := 0; i < reps; i++ {
		seg := x[i*period : (i+1)*period]
		for n, v := range seg {
			out[n] += v
		}
	}
	return out, nil
}

// FoldAt is like Fold but starts folding at offset within x, enabling a
// sliding preamble search without re-slicing.
func FoldAt(x []float64, offset, period, reps int) ([]float64, error) {
	return Fold(x[offset:], period, reps)
}

// SlidingFolder incrementally maintains fold sums over a stream so that a
// receiver can evaluate Fold(x[t:], period, reps) for every t in O(1)
// amortized per sample instead of O(reps·period). It keeps a ring of the
// last reps*period samples; pushing a new sample returns the completed
// fold-sum value for the column that just left the window, i.e. after
// pushing sample x[t] the return value is
//
//	Σ_{i=0}^{reps-1} x[t-reps*period+1 + i*period]
//
// (valid once at least reps*period samples have been pushed).
type SlidingFolder struct {
	period int
	reps   int
	ring   []float64
	pos    int
	count  int
}

// NewSlidingFolder returns a SlidingFolder for the given period and
// repetition count.
func NewSlidingFolder(period, reps int) (*SlidingFolder, error) {
	if period <= 0 || reps <= 0 {
		return nil, fmt.Errorf("dsp: NewSlidingFolder period %d and reps %d must be positive", period, reps)
	}
	return &SlidingFolder{
		period: period,
		reps:   reps,
		ring:   make([]float64, period*reps),
	}, nil
}

// Push adds sample v to the stream. Once the folder has seen at least
// period*reps samples it returns the fold sum anchored at the oldest
// sample in its window and ok=true; before that ok is false.
func (f *SlidingFolder) Push(v float64) (sum float64, ok bool) {
	f.ring[f.pos] = v
	f.pos++
	if f.pos == len(f.ring) {
		f.pos = 0
	}
	if f.count < len(f.ring) {
		f.count++
		if f.count < len(f.ring) {
			return 0, false
		}
	}
	// The oldest sample sits at f.pos (just about to be overwritten on
	// the next push). Sum it with its reps-1 period-spaced successors.
	idx := f.pos
	for i := 0; i < f.reps; i++ {
		sum += f.ring[idx]
		idx += f.period
		if idx >= len(f.ring) {
			idx -= len(f.ring)
		}
	}
	return sum, true
}

// Reset returns the folder to its initial empty state. O(1): stale ring
// values are never read, because Push only sums once count reaches the
// ring length again, by which point every slot has been rewritten —
// this keeps per-frame scanner rearming on the streaming path cheap.
func (f *SlidingFolder) Reset() {
	f.pos = 0
	f.count = 0
}

// LoadWindow replaces the folder's window with the given period*reps
// samples (oldest first), leaving it exactly as if they had been pushed
// in order into a full folder: the next Push evicts values[0] and
// returns the fold sum anchored at values[1]. The batched hunt kernel,
// which computes fold sums by direct indexing into the retained phase
// history instead of through this ring, uses LoadWindow to hand a
// scanner back to the scalar path after a fold lock.
func (f *SlidingFolder) LoadWindow(values []float64) {
	copy(f.ring, values)
	f.pos = 0
	f.count = len(f.ring)
}
