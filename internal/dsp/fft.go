package dsp

import (
	"math"
	"math/bits"
)

// FFT computes the radix-2 decimation-in-time fast Fourier transform
// of x. The forward transform uses the engineering sign convention
//
//	X[k] = Σ_n x[n]·exp(-j·2πkn/N)
//
// Power-of-two lengths transform in place and return x; any other
// length is zero-padded into a fresh buffer of the next power of two
// (the DFT of the padded sequence), leaving x untouched.
func FFT(x []complex128) []complex128 {
	return fftDir(padPow2(x), false)
}

// IFFT computes the inverse FFT of x, including the 1/N normalization.
// Like FFT it runs in place for power-of-two lengths and zero-pads
// otherwise.
func IFFT(x []complex128) []complex128 {
	x = fftDir(padPow2(x), true)
	scale := 1 / float64(len(x))
	for i := range x {
		x[i] *= complex(scale, 0)
	}
	return x
}

// padPow2 returns x itself when its length is a power of two (or zero),
// else a zero-padded copy of length NextPow2(len(x)).
func padPow2(x []complex128) []complex128 {
	n := len(x)
	if n&(n-1) == 0 {
		return x
	}
	buf := make([]complex128, NextPow2(n))
	copy(buf, x)
	return buf
}

func fftDir(x []complex128, inverse bool) []complex128 {
	n := len(x)
	if n == 0 {
		return x
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		ang := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(ang), math.Sin(ang))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return x
}

// NextPow2 returns the smallest power of two that is >= n (and >= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// SpectrumPower returns the power spectrum |FFT(x)|²/N of x zero-padded
// to the next power of two. Used by diagnostics and tests to confirm the
// ZigBee baseband occupies ~2 MHz and that the (6,7)/(E,F) stable regions
// concentrate at ±0.5 MHz.
func SpectrumPower(x []complex128) []float64 {
	n := NextPow2(len(x))
	buf := make([]complex128, n)
	copy(buf, x)
	FFT(buf)
	out := make([]float64, n)
	inv := 1 / float64(n)
	for i, v := range buf {
		re, im := real(v), imag(v)
		out[i] = (re*re + im*im) * inv
	}
	return out
}
