package dsp

import (
	"fmt"
	"math"
)

// Energy returns the total energy of x: sum of |x[i]|^2.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		re, im := real(v), imag(v)
		e += re*re + im*im
	}
	return e
}

// Power returns the mean power of x: Energy(x)/len(x).
// It returns 0 for an empty slice.
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// Scale multiplies every element of x by the real factor a, in place,
// and returns x for chaining.
func Scale(x []complex128, a float64) []complex128 {
	c := complex(a, 0)
	for i := range x {
		x[i] *= c
	}
	return x
}

// AddTo adds src into dst element-wise over the shorter of the two
// lengths, dst[i] += src[i], and returns the number of samples added.
func AddTo(dst, src []complex128) int {
	n := min(len(dst), len(src))
	for i := 0; i < n; i++ {
		dst[i] += src[i]
	}
	return n
}

// MixInto adds src into dst starting at offset, clipping src to the part
// that fits. It returns the number of samples mixed.
func MixInto(dst, src []complex128, offset int) int {
	if offset < 0 {
		src = src[-offset:]
		offset = 0
	}
	if offset >= len(dst) {
		return 0
	}
	n := min(len(src), len(dst)-offset)
	for i := 0; i < n; i++ {
		dst[offset+i] += src[i]
	}
	return n
}

// NormalizePower scales x in place so that its mean power equals p.
// A zero-power input is returned unchanged.
func NormalizePower(x []complex128, p float64) []complex128 {
	cur := Power(x)
	if cur <= 0 {
		return x
	}
	return Scale(x, math.Sqrt(p/cur))
}

// Conj conjugates x in place and returns it.
func Conj(x []complex128) []complex128 {
	for i, v := range x {
		x[i] = complex(real(v), -imag(v))
	}
	return x
}

// RotateFrequency multiplies x in place by exp(j*2π*freq*n/sampleRate),
// shifting its spectrum up by freq Hz. startSample offsets the rotator
// phase, allowing a long signal to be rotated in chunks.
func RotateFrequency(x []complex128, freq, sampleRate float64, startSample int) []complex128 {
	if freq == 0 {
		return x
	}
	step := 2 * math.Pi * freq / sampleRate
	// Use an incremental rotator: precise enough for the signal lengths
	// used here (<1e7 samples) and ~6x faster than calling math.Sin per
	// sample; re-seed the rotator periodically to bound drift.
	const reseed = 4096
	for base := 0; base < len(x); base += reseed {
		phi := step * float64(startSample+base)
		rot := complex(math.Cos(phi), math.Sin(phi))
		inc := complex(math.Cos(step), math.Sin(step))
		end := min(base+reseed, len(x))
		for i := base; i < end; i++ {
			x[i] *= rot
			rot *= inc
		}
	}
	return x
}

// DelaySum returns y[n] = sum over taps of gain_k * x[n-delay_k], the
// output of a sparse tapped-delay-line filter. Samples outside x are
// treated as zero (negative delays read ahead, so the tap simply starts
// later in x). The output has the same length as x. Mismatched
// delay/gain tap lists are an error.
func DelaySum(x []complex128, delays []int, gains []complex128) ([]complex128, error) {
	if len(delays) != len(gains) {
		return nil, fmt.Errorf("dsp: DelaySum tap mismatch: %d delays, %d gains", len(delays), len(gains))
	}
	y := make([]complex128, len(x))
	for k, d := range delays {
		g := gains[k]
		for n := max(d, 0); n < len(x); n++ {
			src := n - d
			if src >= len(x) {
				break
			}
			y[n] += g * x[src]
		}
	}
	return y, nil
}
