package dsp

import (
	"math"
	"testing"
)

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(x); math.Abs(v-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(x); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("Mean(nil) = %v", m)
	}
	if v := Variance([]float64{1}); v != 0 {
		t.Errorf("Variance(single) = %v", v)
	}
}

func TestPercentile(t *testing.T) {
	x := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {110, 5},
	}
	for _, tt := range tests {
		if got := Percentile(x, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Input must not be reordered.
	if x[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-20, -3, 0, 3, 10, 30} {
		if got := DB(FromDB(db)); math.Abs(got-db) > 1e-9 {
			t.Errorf("DB(FromDB(%v)) = %v", db, got)
		}
	}
	if math.Abs(FromDB(3)-1.9952623) > 1e-6 {
		t.Errorf("FromDB(3) = %v", FromDB(3))
	}
}

func TestHistogram(t *testing.T) {
	x := []float64{-1, 0, 0.4, 0.6, 1.4, 5}
	h, err := Histogram(x, 0, 2, 4) // bins [0,.5) [.5,1) [1,1.5) [1.5,2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Histogram(x, 2, 0, 4); err == nil {
		t.Error("expected error for inverted range")
	}
	want := []int{3, 1, 1, 1} // -1 clamps into bin 0, 5 clamps into bin 3
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("Histogram[%d] = %d, want %d (full %v)", i, h[i], want[i], h)
		}
	}
}
