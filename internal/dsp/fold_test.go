package dsp

import (
	"math"
	"math/rand"
	"testing"
)

func TestFoldBasic(t *testing.T) {
	// Period 3, reps 2: columns sum pairwise.
	x := []float64{1, 2, 3, 10, 20, 30}
	got, err := Fold(x, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Fold[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFoldAt(t *testing.T) {
	x := []float64{99, 1, 2, 3, 10, 20, 30}
	got, err := FoldAt(x, 1, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("FoldAt[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFoldShortInputErrors(t *testing.T) {
	if _, err := Fold([]float64{1, 2}, 3, 2); err == nil {
		t.Error("expected error for short input")
	}
}

func TestFoldAmplifiesPeriodicSignal(t *testing.T) {
	// A periodic pulse buried in noise should stand out in the fold sum:
	// the core claim behind SymBee preamble capture (Fig. 11).
	const (
		period = 640
		reps   = 4
	)
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, period*reps)
	for i := range x {
		x[i] = rng.NormFloat64() * 1.5 // heavy noise
	}
	// Embed a +1.0 plateau of length 84 at offset 100 in every period.
	for r := 0; r < reps; r++ {
		for k := 0; k < 84; k++ {
			x[r*period+100+k] += 2.0
		}
	}
	sum, err := Fold(x, period, reps)
	if err != nil {
		t.Fatal(err)
	}
	inside := Mean(sum[100:184])
	outside := Mean(append(append([]float64{}, sum[:100]...), sum[184:]...))
	if inside < outside+4 {
		t.Errorf("fold sum did not amplify plateau: inside %.2f, outside %.2f", inside, outside)
	}
}

func TestSlidingFolderMatchesFold(t *testing.T) {
	const (
		period = 7
		reps   = 3
		n      = 100
	)
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	f, err := NewSlidingFolder(period, reps)
	if err != nil {
		t.Fatal(err)
	}
	win := period * reps
	for i, v := range x {
		sum, ok := f.Push(v)
		if i < win-1 {
			if ok {
				t.Fatalf("ok=true before window filled at i=%d", i)
			}
			continue
		}
		if !ok {
			t.Fatalf("ok=false after window filled at i=%d", i)
		}
		start := i - win + 1
		want := 0.0
		for r := 0; r < reps; r++ {
			want += x[start+r*period]
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("sliding fold at %d = %v, want %v", i, sum, want)
		}
	}
}

func TestSlidingFolderReset(t *testing.T) {
	f, err := NewSlidingFolder(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		f.Push(1)
	}
	f.Reset()
	if _, ok := f.Push(1); ok {
		t.Error("expected not-full after Reset")
	}
}
