package mac

import (
	"math"
	"math/rand"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{MinBE: -1, MaxBE: 5, MaxBackoffs: 4},
		{MinBE: 5, MaxBE: 3, MaxBackoffs: 4},
		{MinBE: 3, MaxBE: 5, MaxBackoffs: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if _, err := NewSim(bad[0], rand.New(rand.NewSource(1))); err == nil {
		t.Error("NewSim should reject invalid config")
	}
}

func TestSinglePacketDeliversCleanly(t *testing.T) {
	s, err := NewSim(DefaultConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run([]Packet{{Node: 0, Arrival: 0.001, Airtime: 4e-3}})
	if len(res) != 1 || res[0].Outcome != Delivered {
		t.Fatalf("results = %+v", res)
	}
	// Delay = backoff + CCA + turnaround + airtime ≥ airtime.
	if res[0].Delay < 4e-3 || res[0].Delay > 4e-3+8*UnitBackoff+CCADuration+Turnaround {
		t.Errorf("delay = %v", res[0].Delay)
	}
}

func TestSameNodeSerializes(t *testing.T) {
	s, err := NewSim(DefaultConfig(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	// Two packets from one node arriving together must never collide:
	// the MAC serializes them.
	res := s.Run([]Packet{
		{Node: 0, Arrival: 0, Airtime: 3e-3},
		{Node: 0, Arrival: 0, Airtime: 3e-3},
	})
	for i, r := range res {
		if r.Outcome != Delivered {
			t.Errorf("packet %d: %v", i, r.Outcome)
		}
	}
	if res[1].TxStart < res[0].TxStart+res[0].Packet.Airtime {
		t.Error("second packet started before the first finished")
	}
}

func TestSimultaneousNodesCanCollide(t *testing.T) {
	// Two nodes with identical arrivals collide whenever they draw the
	// same backoff; over many trials both outcomes must occur, and
	// collisions must be symmetric (both packets marked).
	collisions, deliveries := 0, 0
	for seed := int64(0); seed < 200; seed++ {
		s, err := NewSim(DefaultConfig(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run([]Packet{
			{Node: 0, Arrival: 0, Airtime: 4e-3},
			{Node: 1, Arrival: 0, Airtime: 4e-3},
		})
		c := 0
		for _, r := range res {
			if r.Outcome == Collided {
				c++
			}
		}
		switch c {
		case 0:
			deliveries++
		case 2:
			collisions++
		default:
			t.Fatalf("seed %d: asymmetric collision count %d", seed, c)
		}
	}
	if collisions == 0 || deliveries == 0 {
		t.Errorf("collisions=%d deliveries=%d; expected a mix", collisions, deliveries)
	}
}

func TestCSMADefersToVisibleTraffic(t *testing.T) {
	// Why collisions happen at all in CSMA: only because backoffs end
	// inside each other's CCA/turnaround blind spot. If node B arrives
	// while A is already ON AIR, B must defer and deliver cleanly.
	for seed := int64(0); seed < 50; seed++ {
		s, err := NewSim(DefaultConfig(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		res := s.Run([]Packet{
			{Node: 0, Arrival: 0, Airtime: 30e-3},
			// Arrives well inside A's 30 ms transmission.
			{Node: 1, Arrival: 15e-3, Airtime: 3e-3},
		})
		for i, r := range res {
			if r.Outcome == Collided {
				t.Fatalf("seed %d packet %d collided; CCA should have deferred", seed, i)
			}
		}
	}
}

func TestWiFiBackgroundBlocksAccess(t *testing.T) {
	s, err := NewSim(DefaultConfig(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the medium with WiFi: nearly all ZigBee attempts fail
	// channel access.
	s.AddWiFiBackground(1.0, 0.995, 50e-3)
	packets := PoissonArrivals(4, 20, 0.5, 3e-3, rand.New(rand.NewSource(5)))
	res := s.Run(packets)
	st := Summarize(res)
	if st.AccessFailures < st.Attempted*5/10 {
		t.Errorf("only %d/%d access failures under a saturated medium", st.AccessFailures, st.Attempted)
	}
}

func TestLowLoadDeliversAlmostEverything(t *testing.T) {
	s, err := NewSim(DefaultConfig(), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	// 4 nodes × 5 pkt/s × 3.5 ms ≈ 7% offered load.
	packets := PoissonArrivals(4, 5, 2.0, 3.5e-3, rand.New(rand.NewSource(7)))
	res := s.Run(packets)
	st := Summarize(res)
	if ratio := float64(st.Delivered) / float64(st.Attempted); ratio < 0.95 {
		t.Errorf("delivery ratio = %v at 7%% load", ratio)
	}
	if st.MeanDelay <= 0 || st.MeanDelay > 0.05 {
		t.Errorf("mean delay = %v", st.MeanDelay)
	}
}

func TestContentionGrowsWithNodes(t *testing.T) {
	loss := func(nodes int) float64 {
		s, err := NewSim(DefaultConfig(), rand.New(rand.NewSource(8)))
		if err != nil {
			t.Fatal(err)
		}
		packets := PoissonArrivals(nodes, 30, 1.0, 3.5e-3, rand.New(rand.NewSource(9)))
		st := Summarize(s.Run(packets))
		return 1 - float64(st.Delivered)/float64(st.Attempted)
	}
	few, many := loss(2), loss(24)
	if many <= few {
		t.Errorf("loss should grow with contention: %v (2 nodes) vs %v (24 nodes)", few, many)
	}
}

func TestPoissonArrivalsStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	packets := PoissonArrivals(3, 100, 10, 1e-3, rng)
	// Expect ≈ 3 × 100 × 10 = 3000 packets.
	if len(packets) < 2600 || len(packets) > 3400 {
		t.Errorf("packet count = %d, want ≈3000", len(packets))
	}
	perNode := map[int]int{}
	for _, p := range packets {
		if p.Arrival < 0 || p.Arrival >= 10 {
			t.Fatalf("arrival %v outside horizon", p.Arrival)
		}
		perNode[p.Node]++
	}
	if len(perNode) != 3 {
		t.Errorf("nodes = %d", len(perNode))
	}
}

func TestSummarizeDelayMath(t *testing.T) {
	st := Summarize([]Result{
		{Outcome: Delivered, Delay: 0.01, Packet: Packet{Airtime: 2e-3}},
		{Outcome: Delivered, Delay: 0.03, Packet: Packet{Airtime: 2e-3}},
		{Outcome: Collided},
		{Outcome: ChannelAccessFailure},
	})
	if st.Attempted != 4 || st.Delivered != 2 || st.Collided != 1 || st.AccessFailures != 1 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.MeanDelay-0.02) > 1e-12 {
		t.Errorf("mean delay = %v", st.MeanDelay)
	}
	if math.Abs(st.AirtimeUsed-4e-3) > 1e-12 {
		t.Errorf("airtime = %v", st.AirtimeUsed)
	}
}
