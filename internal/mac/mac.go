// Package mac provides the unslotted IEEE 802.15.4 CSMA/CA medium
// access layer that real SymBee senders run under, and an event-driven
// multi-node airtime simulation. The paper positions SymBee as the
// upstream (convergecast) path of IoT deployments — many ZigBee sensors
// reporting to one WiFi sink — which makes contention between SymBee
// senders (and with background WiFi) part of the system's real
// throughput story.
package mac

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// IEEE 802.15.4 unslotted CSMA/CA constants (2.4 GHz PHY timings).
const (
	// UnitBackoff is aUnitBackoffPeriod: 20 symbols = 320 µs.
	UnitBackoff = 320e-6
	// CCADuration is 8 symbols = 128 µs.
	CCADuration = 128e-6
	// Turnaround is aTurnaroundTime: 12 symbols = 192 µs.
	Turnaround = 192e-6
	// DefaultMinBE and DefaultMaxBE bound the backoff exponent.
	DefaultMinBE = 3
	DefaultMaxBE = 5
	// DefaultMaxBackoffs is macMaxCSMABackoffs.
	DefaultMaxBackoffs = 4
)

// Config tunes the CSMA/CA engine.
type Config struct {
	MinBE       int
	MaxBE       int
	MaxBackoffs int
}

// DefaultConfig returns the standard parameter set.
func DefaultConfig() Config {
	return Config{MinBE: DefaultMinBE, MaxBE: DefaultMaxBE, MaxBackoffs: DefaultMaxBackoffs}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.MinBE < 0 || c.MaxBE < c.MinBE:
		return fmt.Errorf("mac: invalid backoff exponents [%d,%d]", c.MinBE, c.MaxBE)
	case c.MaxBackoffs < 0:
		return fmt.Errorf("mac: negative MaxBackoffs %d", c.MaxBackoffs)
	}
	return nil
}

// Packet is one MAC-layer transmission attempt.
type Packet struct {
	// Node that owns the packet.
	Node int
	// Arrival time at the MAC queue, seconds.
	Arrival float64
	// Airtime of the PHY frame, seconds.
	Airtime float64
}

// Outcome classifies a packet's fate.
type Outcome int

// Packet fates.
const (
	// Delivered cleanly: no overlap with any other transmission.
	Delivered Outcome = iota + 1
	// Collided with another transmission (both corrupted).
	Collided
	// ChannelAccessFailure: CSMA gave up after MaxBackoffs busy CCAs.
	ChannelAccessFailure
)

// Result records one packet's journey.
type Result struct {
	Packet  Packet
	Outcome Outcome
	// TxStart is when transmission began (Delivered/Collided only).
	TxStart float64
	// Delay is TxStart+Airtime − Arrival for delivered packets.
	Delay float64
}

// busyInterval is one occupied stretch of the medium.
type busyInterval struct {
	start, end float64
	wifi       bool
}

// Sim is an event-driven multi-node CSMA/CA simulation over a shared
// medium. Background WiFi traffic occupies the medium (ZigBee CCA hears
// it and defers) and is itself immune to ZigBee collisions (WiFi power
// dominates at its own receiver).
type Sim struct {
	cfg Config
	rng *rand.Rand
	// busy holds all scheduled transmissions, kept sorted by start.
	busy []busyInterval
}

// NewSim builds a simulation.
func NewSim(cfg Config, rng *rand.Rand) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Sim{cfg: cfg, rng: rng}, nil
}

// AddWiFiBackground occupies the medium with WiFi bursts of the given
// duty cycle over [0, horizon).
func (s *Sim) AddWiFiBackground(horizon, dutyCycle, burstDuration float64) {
	if dutyCycle <= 0 || burstDuration <= 0 {
		return
	}
	meanGap := burstDuration * (1 - dutyCycle) / dutyCycle
	t := s.rng.ExpFloat64() * meanGap
	for t < horizon {
		s.busy = append(s.busy, busyInterval{start: t, end: t + burstDuration, wifi: true})
		t += burstDuration + s.rng.ExpFloat64()*meanGap
	}
	sort.Slice(s.busy, func(i, j int) bool { return s.busy[i].start < s.busy[j].start })
}

// mediumBusyAt reports whether any transmission overlaps [t, t+d).
func (s *Sim) mediumBusyAt(t, d float64) bool {
	for _, b := range s.busy {
		if b.start < t+d && t < b.end {
			return true
		}
	}
	return false
}

// ccaEvent is one pending clear-channel assessment in the event queue.
type ccaEvent struct {
	time float64
	pkt  int // index into the result slice
}

// eventQueue is a min-heap of CCA events ordered by time.
type eventQueue []ccaEvent

func (q eventQueue) Len() int           { return len(q) }
func (q eventQueue) Less(i, j int) bool { return q[i].time < q[j].time }
func (q eventQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)        { *q = append(*q, x.(ccaEvent)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}
func (q *eventQueue) push(e ccaEvent)  { heap.Push(q, e) }
func (q *eventQueue) pop() ccaEvent    { return heap.Pop(q).(ccaEvent) }
func (q *eventQueue) emptyQueue() bool { return len(*q) == 0 }

// Run processes the given packets (any order) through CSMA/CA as a
// discrete-event simulation — CCA decisions are evaluated in global
// time order, so every assessment sees all transmissions committed
// before it — and reports each packet's fate. Packets from the same
// node are serialized in arrival order.
func (s *Sim) Run(packets []Packet) []Result {
	ordered := make([]Packet, len(packets))
	copy(ordered, packets)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	results := make([]Result, len(ordered))
	type state struct {
		be       int
		attempts int
	}
	states := make([]state, len(ordered))
	// Per-node FIFO of packet indices.
	nodeQueue := map[int][]int{}
	for i, pkt := range ordered {
		results[i] = Result{Packet: pkt, Outcome: ChannelAccessFailure}
		nodeQueue[pkt.Node] = append(nodeQueue[pkt.Node], i)
	}

	var queue eventQueue
	schedule := func(idx int, from float64) {
		slots := 0
		if be := states[idx].be; be > 0 {
			slots = s.rng.Intn(1 << be)
		}
		queue.push(ccaEvent{time: from + float64(slots)*UnitBackoff, pkt: idx})
	}
	// releaseNext starts CSMA for a node's next queued packet once the
	// current one finishes at time tf.
	releaseNext := func(node int, tf float64) {
		q := nodeQueue[node]
		if len(q) == 0 {
			return
		}
		idx := q[0]
		nodeQueue[node] = q[1:]
		states[idx].be = s.cfg.MinBE
		start := ordered[idx].Arrival
		if tf > start {
			start = tf
		}
		schedule(idx, start)
	}
	for node := range nodeQueue {
		releaseNext(node, 0)
	}

	type zigTx struct {
		busyInterval
		owner int
	}
	var zig []zigTx

	for !queue.emptyQueue() {
		e := queue.pop()
		idx := e.pkt
		pkt := ordered[idx]
		if !s.mediumBusyAt(e.time, CCADuration) {
			// Clear channel: transmit after CCA + turnaround.
			start := e.time + CCADuration + Turnaround
			iv := busyInterval{start: start, end: start + pkt.Airtime}
			s.busy = append(s.busy, iv)
			zig = append(zig, zigTx{busyInterval: iv, owner: idx})
			results[idx].Outcome = Delivered
			results[idx].TxStart = start
			results[idx].Delay = start + pkt.Airtime - pkt.Arrival
			releaseNext(pkt.Node, start+pkt.Airtime)
			continue
		}
		// Busy: back off harder or give up.
		states[idx].attempts++
		if states[idx].attempts > s.cfg.MaxBackoffs {
			releaseNext(pkt.Node, e.time+CCADuration)
			continue // Outcome stays ChannelAccessFailure
		}
		if states[idx].be < s.cfg.MaxBE {
			states[idx].be++
		}
		schedule(idx, e.time+CCADuration)
	}

	// Collision marking: two ZigBee transmissions overlapping in time
	// corrupt each other (no capture effect); overlap with WiFi bursts
	// corrupts the ZigBee packet at the SymBee receiver only if the
	// burst arrived after CCA (hidden in our model: CCA already
	// deferred to visible WiFi, so any overlap means the burst started
	// mid-transmission).
	sort.Slice(zig, func(i, j int) bool { return zig[i].start < zig[j].start })
	for i := range results {
		if results[i].Outcome != Delivered {
			continue
		}
		a := busyInterval{start: results[i].TxStart, end: results[i].TxStart + results[i].Packet.Airtime}
		for _, b := range zig {
			if b.start >= a.end {
				break
			}
			if b.owner != i && overlaps(a, b.busyInterval) {
				results[i].Outcome = Collided
				break
			}
		}
	}
	return results
}

func overlaps(a, b busyInterval) bool {
	return a.start < b.end && b.start < a.end
}

// Stats aggregates a batch of results.
type Stats struct {
	Attempted, Delivered, Collided, AccessFailures int
	// MeanDelay over delivered packets, seconds.
	MeanDelay float64
	// AirtimeUsed by delivered packets, seconds.
	AirtimeUsed float64
}

// Summarize folds results into stats.
func Summarize(results []Result) Stats {
	var st Stats
	var delaySum float64
	for _, r := range results {
		st.Attempted++
		switch r.Outcome {
		case Delivered:
			st.Delivered++
			delaySum += r.Delay
			st.AirtimeUsed += r.Packet.Airtime
		case Collided:
			st.Collided++
		case ChannelAccessFailure:
			st.AccessFailures++
		}
	}
	if st.Delivered > 0 {
		st.MeanDelay = delaySum / float64(st.Delivered)
	}
	return st
}

// PoissonArrivals generates packet arrivals for `nodes` senders, each
// with exponential inter-arrival times of the given mean rate
// (packets/second), over [0, horizon).
func PoissonArrivals(nodes int, rate, horizon, airtime float64, rng *rand.Rand) []Packet {
	var packets []Packet
	for n := 0; n < nodes; n++ {
		t := rng.ExpFloat64() / rate
		for t < horizon {
			packets = append(packets, Packet{Node: n, Arrival: t, Airtime: airtime})
			t += rng.ExpFloat64() / rate
		}
	}
	return packets
}
