package ctc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"symbee/internal/splitmix"
)

// Medium is a shared RSSI timeline: linear received power per sample at
// a fixed sampling rate. Transmitters add energy bursts; receivers
// detect them by thresholding. The noise floor is exponentially
// distributed around unit mean power (envelope-detected thermal noise).
type Medium struct {
	rate float64
	rssi []float64
}

// MediumConfig parameterizes one shared RSSI timeline. Like
// medium.Config, no field doubles as a sentinel: every value is taken
// literally. Start from DefaultMedium() and override what the run
// needs.
type MediumConfig struct {
	// Duration is the covered timespan in seconds (> 0; DefaultMedium
	// leaves it zero on purpose — there is no implicit run length).
	Duration float64
	// Rate is the RSSI sampling rate in Hz (> 0; DefaultMedium fills
	// 100 kHz, ≈10 µs timing resolution, comparable to commodity RSSI
	// registers).
	Rate float64
	// Seed drives the noise fill. The noise generator is split from it
	// through the repo-wide splitmix convention (stream −1), so a
	// scenario that also seeds senders from the same value never
	// correlates its noise with their schedules.
	Seed int64
}

// DefaultMedium returns the baseline medium configuration. Duration is
// left zero; the caller must set it (Validate rejects it unset).
func DefaultMedium() MediumConfig {
	return MediumConfig{Rate: defaultRSSIRate}
}

// MediumConfig validation errors.
var (
	errMediumDuration = errors.New("ctc: medium Duration must be positive")
	errMediumRate     = errors.New("ctc: medium Rate must be positive")
)

// Validate reports the first structural problem with the config.
func (c MediumConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("%w: %v", errMediumDuration, c.Duration)
	case c.Rate <= 0:
		return fmt.Errorf("%w: %v", errMediumRate, c.Rate)
	}
	return nil
}

// NewMedium allocates a medium covering cfg.Duration seconds sampled at
// cfg.Rate Hz, pre-filled with seeded noise.
func NewMedium(cfg MediumConfig) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := int(math.Ceil(cfg.Duration * cfg.Rate))
	m := &Medium{rate: cfg.Rate, rssi: make([]float64, n)}
	rng := splitmix.New(cfg.Seed, splitmix.NoiseStream)
	for i := range m.rssi {
		m.rssi[i] = rng.ExpFloat64() // unit-mean noise power
	}
	return m, nil
}

// Rate returns the RSSI sampling rate in Hz.
func (m *Medium) Rate() float64 { return m.rate }

// Duration returns the covered timespan in seconds.
func (m *Medium) Duration() float64 { return float64(len(m.rssi)) / m.rate }

// AddBurst adds a transmission of the given duration and signal-to-noise
// power (dB over the unit noise floor) starting at time start seconds.
// Bursts clipped by the medium edges are truncated.
func (m *Medium) AddBurst(start, duration, snrDB float64) {
	p := math.Pow(10, snrDB/10)
	lo := int(start * m.rate)
	hi := int((start + duration) * m.rate)
	if lo < 0 {
		lo = 0
	}
	if hi > len(m.rssi) {
		hi = len(m.rssi)
	}
	for i := lo; i < hi; i++ {
		m.rssi[i] += p
	}
}

// AddInterference sprinkles WiFi bursts over the whole timeline with the
// given duty cycle, burst duration and power, mimicking the background
// traffic the packet-level receivers must reject.
func (m *Medium) AddInterference(duty, burstDuration, inrDB float64, rng *rand.Rand) {
	if duty <= 0 || burstDuration <= 0 {
		return
	}
	meanGap := burstDuration * (1 - duty) / duty
	t := rng.ExpFloat64() * meanGap
	for t < m.Duration() {
		m.AddBurst(t, burstDuration, inrDB)
		t += burstDuration + rng.ExpFloat64()*meanGap
	}
}

// Burst is one detected energy burst.
type Burst struct {
	// Start time in seconds.
	Start float64
	// Duration in seconds.
	Duration float64
}

// rssiSmoothWindow is the hardware RSSI averaging span in samples:
// commodity radios average received power over ≈8 symbol periods
// (~128 µs ≈ 13 samples at the default 100 kHz RSSI rate), which is what
// keeps single-sample noise spikes from registering as energy.
const rssiSmoothWindow = 8

// DetectBursts finds contiguous stretches where the (hardware-averaged)
// RSSI exceeds thresholdDB above the noise floor, closing gaps shorter
// than mergeGap and dropping bursts shorter than minDuration.
func (m *Medium) DetectBursts(thresholdDB, mergeGap, minDuration float64) []Burst {
	th := math.Pow(10, thresholdDB/10)
	gapSamples := int(mergeGap * m.rate)
	minSamples := int(minDuration * m.rate)

	// Hardware-style moving average; the window is centered to keep
	// burst timing unbiased.
	smoothed := make([]float64, len(m.rssi))
	var acc float64
	for i, v := range m.rssi {
		acc += v
		if i >= rssiSmoothWindow {
			acc -= m.rssi[i-rssiSmoothWindow]
		}
		n := rssiSmoothWindow
		if i+1 < n {
			n = i + 1
		}
		center := i - rssiSmoothWindow/2
		if center >= 0 {
			smoothed[center] = acc / float64(n)
		}
	}
	for i := len(m.rssi) - rssiSmoothWindow/2; i < len(m.rssi); i++ {
		if i >= 0 {
			smoothed[i] = m.rssi[i]
		}
	}

	var bursts []Burst
	start, gap := -1, 0
	flush := func(end int) {
		if start >= 0 && end-start >= minSamples {
			bursts = append(bursts, Burst{
				Start:    float64(start) / m.rate,
				Duration: float64(end-start) / m.rate,
			})
		}
		start = -1
	}
	for i, v := range smoothed {
		if v >= th {
			if start < 0 {
				start = i
			}
			gap = 0
			continue
		}
		if start >= 0 {
			gap++
			if gap > gapSamples {
				flush(i - gap + 1)
				gap = 0
			}
		}
	}
	if start >= 0 {
		flush(len(m.rssi) - gap)
	}
	return bursts
}

// MeanRSSI returns the average linear power over [start, start+duration).
func (m *Medium) MeanRSSI(start, duration float64) float64 {
	lo := int(start * m.rate)
	hi := int((start + duration) * m.rate)
	if lo < 0 {
		lo = 0
	}
	if hi > len(m.rssi) {
		hi = len(m.rssi)
	}
	if hi <= lo {
		return 0
	}
	var s float64
	for i := lo; i < hi; i++ {
		s += m.rssi[i]
	}
	return s / float64(hi-lo)
}
