package ctc

import (
	"errors"
	"fmt"
)

// EMF embeds information in the energy pattern of existing traffic:
// time is divided into frames of SlotsPerFrame slots; the presence or
// absence of a packet in each data slot encodes one bit, and a marker
// packet in slot 0 delimits the frame. This reproduces the
// concurrent-flows idea of EMF at the energy-sensing level; with 10 ms
// frames carrying 4 data bits the rate is 400 bps.
type EMF struct {
	// SlotDuration is one slot in seconds.
	SlotDuration float64
	// SlotsPerFrame includes the marker slot.
	SlotsPerFrame int
	// PacketDuration is the airtime of one packet within a slot.
	PacketDuration float64
}

// NewEMF returns EMF at a 400 bps operating point.
func NewEMF() *EMF {
	return &EMF{
		SlotDuration:   2e-3,
		SlotsPerFrame:  5, // 1 marker + 4 data
		PacketDuration: 576e-6,
	}
}

// Name implements Scheme.
func (e *EMF) Name() string { return "EMF" }

// NominalRate implements Scheme.
func (e *EMF) NominalRate() float64 {
	return float64(e.SlotsPerFrame-1) / (e.SlotDuration * float64(e.SlotsPerFrame))
}

// errEMFPoint rejects unusable EMF operating points.
var errEMFPoint = errors.New("ctc: invalid EMF operating point")

// Validate implements Scheme.
func (e *EMF) Validate() error {
	switch {
	case e.SlotDuration <= 0 || e.PacketDuration <= 0:
		return fmt.Errorf("%w: non-positive slot %v or packet %v",
			errEMFPoint, e.SlotDuration, e.PacketDuration)
	case e.SlotsPerFrame < 2:
		return fmt.Errorf("%w: SlotsPerFrame %d leaves no data slots", errEMFPoint, e.SlotsPerFrame)
	case e.PacketDuration > e.SlotDuration:
		return fmt.Errorf("%w: packet %v overruns slot %v", errEMFPoint, e.PacketDuration, e.SlotDuration)
	}
	return nil
}

// Occupancy implements Scheme: whole frames, one marker packet each and
// the balanced-data expectation of half the data slots filled.
func (e *EMF) Occupancy(nBits int) (wall, air float64, err error) {
	if err := e.Validate(); err != nil {
		return 0, 0, err
	}
	if nBits <= 0 {
		return 0, 0, fmt.Errorf("%w: %d", errNBits, nBits)
	}
	dataSlots := e.SlotsPerFrame - 1
	frames := (nBits + dataSlots - 1) / dataSlots
	wall = float64(frames) * e.SlotDuration * float64(e.SlotsPerFrame)
	air = float64(frames) * e.PacketDuration * (1 + float64(dataSlots)/2)
	return wall, air, nil
}

// Encode implements Scheme.
func (e *EMF) Encode(m *Medium, bits []byte, start, snrDB float64) (float64, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	dataSlots := e.SlotsPerFrame - 1
	frame := 0
	for i := 0; i < len(bits); i += dataSlots {
		base := start + float64(frame)*e.SlotDuration*float64(e.SlotsPerFrame)
		if base+float64(e.SlotsPerFrame)*e.SlotDuration > m.Duration() {
			return 0, fmt.Errorf("ctc: medium too short for EMF encoding")
		}
		m.AddBurst(base, e.PacketDuration, snrDB) // marker
		for j := 0; j < dataSlots; j++ {
			if i+j < len(bits) && bits[i+j] == 1 {
				m.AddBurst(base+float64(j+1)*e.SlotDuration, e.PacketDuration, snrDB)
			}
		}
		frame++
	}
	return float64(frame) * e.SlotDuration * float64(e.SlotsPerFrame), nil
}

// Decode implements Scheme: the first detected burst anchors the slot
// grid; each data slot decodes 1 when its energy rises above the
// midpoint between noise and a packet.
func (e *EMF) Decode(m *Medium, nBits int) ([]byte, error) {
	bursts := m.DetectBursts(6, e.PacketDuration/2, e.PacketDuration/2)
	if len(bursts) == 0 {
		return nil, nil
	}
	base := bursts[0].Start
	dataSlots := e.SlotsPerFrame - 1
	bits := make([]byte, 0, nBits)
	frameLen := e.SlotDuration * float64(e.SlotsPerFrame)
	for frame := 0; len(bits) < nBits; frame++ {
		fb := base + float64(frame)*frameLen
		if fb+frameLen > m.Duration() {
			break
		}
		for j := 0; j < dataSlots && len(bits) < nBits; j++ {
			slot := fb + float64(j+1)*e.SlotDuration
			if m.MeanRSSI(slot, e.PacketDuration) > 2.5 {
				bits = append(bits, 1)
			} else {
				bits = append(bits, 0)
			}
		}
	}
	return bits, nil
}
