package ctc

import (
	"errors"
	"fmt"
)

// CMorse implements C-Morse-style duration modulation: bit 0 is a short
// ("dot") ZigBee packet and bit 1 a long ("dash") one, separated by
// fixed gaps; the WiFi receiver classifies burst durations. With the
// minimal 576 µs dot, a 3× dash and the inter-packet spacing the
// original system needs to stay transparent to regular traffic, the
// rate lands at the published 215 bps.
type CMorse struct {
	// Dot is the short packet duration (the minimal ZigBee packet).
	Dot float64
	// Dash is the long packet duration.
	Dash float64
	// Gap separates consecutive packets.
	Gap float64
}

// NewCMorse returns C-Morse at its published operating point (≈215 bps).
func NewCMorse() *CMorse {
	return &CMorse{
		Dot:  576e-6,
		Dash: 3 * 576e-6,
		Gap:  3.5e-3,
	}
}

// Name implements Scheme.
func (c *CMorse) Name() string { return "C-Morse" }

// NominalRate implements Scheme: the average bit time over balanced data.
func (c *CMorse) NominalRate() float64 {
	avg := (c.Dot+c.Dash)/2 + c.Gap
	return 1 / avg
}

// errCMorsePoint rejects unusable C-Morse operating points.
var errCMorsePoint = errors.New("ctc: invalid C-Morse operating point")

// Validate implements Scheme.
func (c *CMorse) Validate() error {
	switch {
	case c.Dot <= 0 || c.Gap <= 0:
		return fmt.Errorf("%w: non-positive dot %v or gap %v", errCMorsePoint, c.Dot, c.Gap)
	case c.Dash <= c.Dot:
		return fmt.Errorf("%w: dash %v not longer than dot %v (duration classes inseparable)",
			errCMorsePoint, c.Dash, c.Dot)
	}
	return nil
}

// Occupancy implements Scheme: the balanced-data expectation — half
// dots, half dashes, one gap per bit.
func (c *CMorse) Occupancy(nBits int) (wall, air float64, err error) {
	if err := c.Validate(); err != nil {
		return 0, 0, err
	}
	if nBits <= 0 {
		return 0, 0, fmt.Errorf("%w: %d", errNBits, nBits)
	}
	avg := (c.Dot + c.Dash) / 2
	return float64(nBits) * (avg + c.Gap), float64(nBits) * avg, nil
}

// Encode implements Scheme.
func (c *CMorse) Encode(m *Medium, bits []byte, start, snrDB float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	t := start
	for _, b := range bits {
		d := c.Dot
		if b == 1 {
			d = c.Dash
		} else if b != 0 {
			return 0, fmt.Errorf("ctc: invalid bit %d", b)
		}
		if t+d > m.Duration() {
			return 0, fmt.Errorf("ctc: medium too short for C-Morse encoding")
		}
		m.AddBurst(t, d, snrDB)
		t += d + c.Gap
	}
	return t - start, nil
}

// Decode implements Scheme: bursts shorter than the dot/dash midpoint
// are dots (bit 0), longer ones dashes (bit 1). Bursts longer than two
// dashes are interference and are skipped.
func (c *CMorse) Decode(m *Medium, nBits int) ([]byte, error) {
	mid := (c.Dot + c.Dash) / 2
	bursts := m.DetectBursts(6, c.Gap/4, c.Dot/2)
	bits := make([]byte, 0, nBits)
	for _, b := range bursts {
		if len(bits) == nBits {
			break
		}
		if b.Duration > 2*c.Dash {
			continue // too long for any codeword: foreign traffic
		}
		if b.Duration >= mid {
			bits = append(bits, 1)
		} else {
			bits = append(bits, 0)
		}
	}
	return bits, nil
}
