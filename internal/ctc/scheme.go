package ctc

import (
	"errors"
	"fmt"
	"math/rand"
)

// Scheme is a packet-level CTC modulation: it writes bits onto a shared
// RSSI medium and reads them back by energy sensing.
type Scheme interface {
	// Name identifies the scheme ("C-Morse", "FreeBee", ...).
	Name() string
	// NominalRate is the scheme's raw data rate in bits/second.
	NominalRate() float64
	// Validate reports whether the scheme's operating point is usable:
	// positive durations, shift alphabets that fit their grid, and so
	// on. Encode and Occupancy reject invalid points with the same
	// error.
	Validate() error
	// Occupancy returns the expected channel occupancy of one
	// nBits-bit message over balanced data: wall is the elapsed channel
	// time from first to last symbol (including framing and trailing
	// gaps), air the on-air transmit time within it, both in seconds.
	// Schemes whose timing depends on the data (C-Morse durations, DCTC
	// gaps) report the balanced-data expectation, which is what a
	// downlink budget needs.
	Occupancy(nBits int) (wall, air float64, err error)
	// Encode places the transmission for bits onto m starting at time
	// start (seconds) with the given burst SNR, returning the airtime
	// consumed.
	Encode(m *Medium, bits []byte, start, snrDB float64) (airtime float64, err error)
	// Decode recovers up to nBits bits from m. Fewer bits may be
	// returned when detection loses packets.
	Decode(m *Medium, nBits int) ([]byte, error)
}

// errNBits rejects Occupancy calls for empty messages.
var errNBits = errors.New("ctc: Occupancy needs a positive bit count")

// Result summarizes one measured run of a scheme.
type Result struct {
	Scheme string
	// Goodput is correct bits per second of airtime.
	Goodput float64
	// BER among the decoded bits (lost bits count as errors).
	BER float64
}

// Measure runs one scheme over a fresh medium: it encodes random bits,
// optionally overlays interference, decodes, and reports goodput and
// BER. detectionSNR is the burst power over the noise floor.
func Measure(s Scheme, nBits int, detectionSNR float64, interference *InterferenceEnv, rng *rand.Rand) (Result, error) {
	bits := make([]byte, nBits)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	// Generous timeline: nominal airtime plus margin. The medium's
	// noise seed is drawn from the caller's rng so repeated Measure
	// calls see fresh noise while staying reproducible.
	m, err := NewMedium(MediumConfig{
		Duration: float64(nBits)/s.NominalRate()*1.5 + 1,
		Rate:     defaultRSSIRate,
		Seed:     rng.Int63(),
	})
	if err != nil {
		return Result{}, err
	}
	airtime, err := s.Encode(m, bits, 0.1, detectionSNR)
	if err != nil {
		return Result{}, fmt.Errorf("ctc: %s encode: %w", s.Name(), err)
	}
	if interference != nil {
		m.AddInterference(interference.DutyCycle, interference.BurstDuration, interference.INRdB, rng)
	}
	got, err := s.Decode(m, nBits)
	if err != nil {
		return Result{}, fmt.Errorf("ctc: %s decode: %w", s.Name(), err)
	}
	errors := 0
	for i := 0; i < nBits; i++ {
		if i >= len(got) || got[i] != bits[i] {
			errors++
		}
	}
	correct := nBits - errors
	return Result{
		Scheme:  s.Name(),
		Goodput: float64(correct) / airtime,
		BER:     float64(errors) / float64(nBits),
	}, nil
}

// InterferenceEnv mirrors channel.InterferenceConfig for the RSSI-level
// medium.
type InterferenceEnv struct {
	DutyCycle     float64
	BurstDuration float64
	INRdB         float64
}

// defaultRSSIRate is the RSSI sampling rate used by Measure: 100 kHz
// gives 10 µs timing resolution, comparable to commodity RSSI registers.
const defaultRSSIRate = 100e3

// All returns one instance of every baseline scheme in Fig. 16 order.
func All() []Scheme {
	return []Scheme{
		NewFreeBee(),
		NewAFreeBee(),
		NewEMF(),
		NewDCTC(),
		NewCMorse(),
	}
}
