// Package ctc implements the packet-level cross-technology
// communication schemes the paper compares against in Fig. 16:
//
//   - C-Morse   (Yin et al., INFOCOM'17)  — Morse-style packet durations
//   - FreeBee   (Kim & He, MobiCom'15)    — beacon timing shifts
//   - A-FreeBee (FreeBee, aggregated)     — finer shifts, no repetition
//   - EMF       (Chi et al., INFOCOM'17)  — energy patterns in traffic
//   - DCTC      (Jiang et al., INFOCOM'17)— inter-packet gap modulation
//
// All of them convey information with whole ZigBee packets as the
// modulation unit and are received by WiFi energy sensing (RSSI), which
// is why their throughput is bounded by packet airtimes — the paper's
// motivation for symbol-level CTC (§II-B).
//
// The schemes share a Medium: an RSSI trace at a configurable sampling
// rate onto which transmitters place energy bursts and from which
// receivers detect bursts by thresholding. Parameters (packet
// durations, beacon intervals, slot sizes) follow each scheme's
// published configuration closely enough to land at its published data
// rate; DESIGN.md records the modelling choices.
package ctc
