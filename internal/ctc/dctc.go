package ctc

import (
	"errors"
	"fmt"
	"math"
)

// DCTC modulates the gaps between consecutive data packets: a gap of
// (MinGap + s·GapStep) encodes the 2-bit symbol s. This captures the
// transparent data-traffic timing modulation of DCTC; with 1 ms packets
// and 2–5 ms gaps the rate is ≈440 bps.
type DCTC struct {
	// PacketDuration is one data packet's airtime.
	PacketDuration float64
	// MinGap is the smallest inter-packet gap.
	MinGap float64
	// GapStep is the gap quantum; 4 gap values encode 2 bits.
	GapStep float64
	// BitsPerGap is log2 of the number of gap values.
	BitsPerGap int
}

// NewDCTC returns DCTC at its ≈440 bps operating point.
func NewDCTC() *DCTC {
	return &DCTC{
		PacketDuration: 1e-3,
		MinGap:         2e-3,
		GapStep:        1e-3,
		BitsPerGap:     2,
	}
}

// Name implements Scheme.
func (d *DCTC) Name() string { return "DCTC" }

// NominalRate implements Scheme: average symbol time over balanced data.
func (d *DCTC) NominalRate() float64 {
	gaps := 1 << d.BitsPerGap
	avgGap := d.MinGap + d.GapStep*float64(gaps-1)/2
	return float64(d.BitsPerGap) / (d.PacketDuration + avgGap)
}

// errDCTCPoint rejects unusable DCTC operating points.
var errDCTCPoint = errors.New("ctc: invalid DCTC operating point")

// Validate implements Scheme.
func (d *DCTC) Validate() error {
	switch {
	case d.PacketDuration <= 0 || d.MinGap <= 0 || d.GapStep <= 0:
		return fmt.Errorf("%w: non-positive packet %v, gap %v or step %v",
			errDCTCPoint, d.PacketDuration, d.MinGap, d.GapStep)
	case d.BitsPerGap < 1 || d.BitsPerGap > 8:
		return fmt.Errorf("%w: BitsPerGap %d", errDCTCPoint, d.BitsPerGap)
	}
	return nil
}

// Occupancy implements Scheme: the leading packet plus one packet per
// symbol after its expected (balanced-data) gap.
func (d *DCTC) Occupancy(nBits int) (wall, air float64, err error) {
	if err := d.Validate(); err != nil {
		return 0, 0, err
	}
	if nBits <= 0 {
		return 0, 0, fmt.Errorf("%w: %d", errNBits, nBits)
	}
	syms := (nBits + d.BitsPerGap - 1) / d.BitsPerGap
	gaps := 1 << d.BitsPerGap
	avgGap := d.MinGap + d.GapStep*float64(gaps-1)/2
	wall = d.PacketDuration + float64(syms)*(avgGap+d.PacketDuration)
	air = float64(1+syms) * d.PacketDuration
	return wall, air, nil
}

// Encode implements Scheme: a leading packet, then one packet per
// symbol whose preceding gap carries the bits.
func (d *DCTC) Encode(m *Medium, bits []byte, start, snrDB float64) (float64, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	t := start
	if t+d.PacketDuration > m.Duration() {
		return 0, fmt.Errorf("ctc: medium too short for DCTC encoding")
	}
	m.AddBurst(t, d.PacketDuration, snrDB)
	t += d.PacketDuration
	for i := 0; i < len(bits); i += d.BitsPerGap {
		sym := 0
		for j := 0; j < d.BitsPerGap; j++ {
			sym <<= 1
			if i+j < len(bits) && bits[i+j] == 1 {
				sym |= 1
			}
		}
		gap := d.MinGap + float64(sym)*d.GapStep
		t += gap
		if t+d.PacketDuration > m.Duration() {
			return 0, fmt.Errorf("ctc: medium too short for DCTC encoding")
		}
		m.AddBurst(t, d.PacketDuration, snrDB)
		t += d.PacketDuration
	}
	return t - start, nil
}

// Decode implements Scheme: gaps between consecutive packet-sized
// bursts quantize back to symbols.
func (d *DCTC) Decode(m *Medium, nBits int) ([]byte, error) {
	bursts := m.DetectBursts(6, d.PacketDuration/4, d.PacketDuration/2)
	// Keep packet-like bursts only.
	var pk []Burst
	for _, b := range bursts {
		if b.Duration < 3*d.PacketDuration {
			pk = append(pk, b)
		}
	}
	bits := make([]byte, 0, nBits)
	maxSym := 1<<d.BitsPerGap - 1
	for i := 1; i < len(pk) && len(bits) < nBits; i++ {
		gap := pk[i].Start - (pk[i-1].Start + pk[i-1].Duration)
		sym := int(math.Round((gap - d.MinGap) / d.GapStep))
		if sym < 0 {
			sym = 0
		}
		if sym > maxSym {
			continue // gap too long: lost packet or foreign burst
		}
		for j := d.BitsPerGap - 1; j >= 0 && len(bits) < nBits; j-- {
			bits = append(bits, byte(sym>>j&1))
		}
	}
	return bits, nil
}
