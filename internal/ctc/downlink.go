package ctc

import (
	"errors"
	"fmt"
)

// DownlinkConfig parameterizes an acknowledgment downlink built on a
// packet-level Scheme: the WiFi side carries each ARQ ack back to the
// ZigBee sender as an AckBits-bit message through the scheme, so one
// ack copy occupies the reverse channel for the scheme's wall-clock
// occupancy and spends the scheme's on-air time of it actually
// radiating (the part that can collide with forward frames). No field
// doubles as a sentinel; start from DefaultDownlink and override what
// the link needs.
type DownlinkConfig struct {
	// Scheme carries the ack bits (required).
	Scheme Scheme
	// AckBits is the ack message size in bits (> 0; DefaultDownlink
	// fills 8 — a go-back-N cumulative ack is one sequence byte).
	AckBits int
	// BaseLatency is the fixed decode/turnaround delay in seconds
	// between the forward frame ending at the WiFi receiver and the
	// ack transmission being ready to start. Taken literally: 0 models
	// an instant turnaround.
	BaseLatency float64
	// Repeat transmits each committed ack this many times (≥ 1).
	// Packet-level downlinks repeat for loss protection, at the price
	// of duplicate acks arriving back at the sender.
	Repeat int
}

// DefaultDownlink returns the baseline downlink configuration over s:
// one-byte cumulative acks, a 1 ms turnaround, no repetition.
func DefaultDownlink(s Scheme) DownlinkConfig {
	return DownlinkConfig{Scheme: s, AckBits: 8, BaseLatency: 1e-3, Repeat: 1}
}

// DownlinkConfig validation errors.
var (
	errDownlinkScheme  = errors.New("ctc: downlink needs a scheme")
	errDownlinkAckBits = errors.New("ctc: downlink AckBits must be positive")
	errDownlinkLatency = errors.New("ctc: negative downlink BaseLatency")
	errDownlinkRepeat  = errors.New("ctc: downlink Repeat must be at least 1")
)

// Validate reports the first structural problem with the config,
// including an invalid scheme operating point.
func (c DownlinkConfig) Validate() error {
	switch {
	case c.Scheme == nil:
		return errDownlinkScheme
	case c.AckBits <= 0:
		return fmt.Errorf("%w: %d", errDownlinkAckBits, c.AckBits)
	case c.BaseLatency < 0:
		return fmt.Errorf("%w: %v", errDownlinkLatency, c.BaseLatency)
	case c.Repeat < 1:
		return fmt.Errorf("%w: %d", errDownlinkRepeat, c.Repeat)
	}
	return c.Scheme.Validate()
}

// Downlink is the computed timing model of one ack downlink: how long
// one ack copy occupies the reverse channel, how much of that span is
// on the air, and the turnaround latency before the first copy can
// start. The reliability layer builds its reverse-channel simulation
// on these three numbers.
type Downlink struct {
	cfg  DownlinkConfig
	wall float64
	air  float64
}

// NewDownlink resolves the config against the scheme's occupancy model.
func NewDownlink(cfg DownlinkConfig) (*Downlink, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wall, air, err := cfg.Scheme.Occupancy(cfg.AckBits)
	if err != nil {
		return nil, fmt.Errorf("ctc: %s downlink: %w", cfg.Scheme.Name(), err)
	}
	return &Downlink{cfg: cfg, wall: wall, air: air}, nil
}

// SchemeName identifies the carrying scheme.
func (d *Downlink) SchemeName() string { return d.cfg.Scheme.Name() }

// AckWall is the wall-clock span in seconds one ack copy occupies the
// reverse channel, from its first symbol to its last.
func (d *Downlink) AckWall() float64 { return d.wall }

// AckAir is the on-air transmit time in seconds within one copy's wall
// span — the part that costs airtime and can collide.
func (d *Downlink) AckAir() float64 { return d.air }

// BaseLatency is the fixed turnaround delay in seconds before a copy
// can start.
func (d *Downlink) BaseLatency() float64 { return d.cfg.BaseLatency }

// Repeat is how many copies of each committed ack are sent.
func (d *Downlink) Repeat() int { return d.cfg.Repeat }

// Latency is the nominal ack delay in seconds on an idle reverse
// channel: the turnaround plus one copy's wall span (the ack decodes
// when its last symbol lands).
func (d *Downlink) Latency() float64 { return d.cfg.BaseLatency + d.wall }

// Duty is the fraction of an ack span spent on the air — the collision
// cross-section a forward frame sees while an ack copy is in flight.
func (d *Downlink) Duty() float64 { return d.air / d.wall }
