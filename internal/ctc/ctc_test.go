package ctc

import (
	"math"
	"math/rand"
	"testing"
)

func TestMediumBurstsAndDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := NewMedium(1.0, 100e3, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.AddBurst(0.1, 0.001, 20)
	m.AddBurst(0.2, 0.003, 20)
	bursts := m.DetectBursts(6, 0.2e-3, 0.3e-3)
	if len(bursts) != 2 {
		t.Fatalf("detected %d bursts, want 2: %+v", len(bursts), bursts)
	}
	if math.Abs(bursts[0].Start-0.1) > 1e-4 || math.Abs(bursts[0].Duration-0.001) > 2e-4 {
		t.Errorf("burst 0 = %+v", bursts[0])
	}
	if math.Abs(bursts[1].Duration-0.003) > 2e-4 {
		t.Errorf("burst 1 = %+v", bursts[1])
	}
}

func TestMediumValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewMedium(0, 100e3, rng); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, err := NewMedium(1, 0, rng); err == nil {
		t.Error("expected error for zero rate")
	}
}

func TestMediumInterferenceDuty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, err := NewMedium(5, 100e3, rng)
	if err != nil {
		t.Fatal(err)
	}
	m.AddInterference(0.3, 1e-3, 20, rng)
	bursts := m.DetectBursts(6, 0.2e-3, 0.3e-3)
	var busy float64
	for _, b := range bursts {
		busy += b.Duration
	}
	duty := busy / m.Duration()
	if duty < 0.2 || duty > 0.4 {
		t.Errorf("observed duty = %v, want ≈0.3", duty)
	}
}

func TestNominalRates(t *testing.T) {
	// The published operating points the Fig. 16 comparison relies on.
	tests := []struct {
		s        Scheme
		lo, hi   float64
		wantName string
	}{
		{NewFreeBee(), 15, 25, "FreeBee"},
		{NewAFreeBee(), 40, 60, "A-FreeBee"},
		{NewEMF(), 350, 450, "EMF"},
		{NewDCTC(), 350, 500, "DCTC"},
		{NewCMorse(), 200, 230, "C-Morse"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.wantName {
			t.Errorf("name = %s, want %s", got, tt.wantName)
		}
		r := tt.s.NominalRate()
		if r < tt.lo || r > tt.hi {
			t.Errorf("%s nominal rate = %v bps, want [%v,%v]", tt.s.Name(), r, tt.lo, tt.hi)
		}
	}
}

func TestSchemesRoundTripClean(t *testing.T) {
	// Every scheme must decode its own bits exactly on a clean medium.
	rng := rand.New(rand.NewSource(4))
	for _, s := range All() {
		t.Run(s.Name(), func(t *testing.T) {
			bits := make([]byte, 40)
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			duration := float64(len(bits))/s.NominalRate()*1.5 + 1
			m, err := NewMedium(duration, 100e3, rng)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Encode(m, bits, 0.1, 20); err != nil {
				t.Fatal(err)
			}
			got, err := s.Decode(m, len(bits))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(bits) {
				t.Fatalf("decoded %d bits, want %d", len(got), len(bits))
			}
			for i := range bits {
				if got[i] != bits[i] {
					t.Fatalf("bit %d = %d, want %d", i, got[i], bits[i])
				}
			}
		})
	}
}

func TestMeasureCleanGoodputNearNominal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, s := range All() {
		res, err := Measure(s, 60, 20, nil, rng)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.BER > 0.02 {
			t.Errorf("%s: clean BER = %v", s.Name(), res.BER)
		}
		if res.Goodput < 0.6*s.NominalRate() || res.Goodput > 1.4*s.NominalRate() {
			t.Errorf("%s: goodput %v vs nominal %v", s.Name(), res.Goodput, s.NominalRate())
		}
	}
}

func TestMeasureUnderInterferenceDegrades(t *testing.T) {
	// Packet-level schemes must suffer under WiFi interference (their
	// fundamental weakness vs SymBee's phase-level decoding).
	rng := rand.New(rand.NewSource(6))
	env := &InterferenceEnv{DutyCycle: 0.3, BurstDuration: 2e-3, INRdB: 20}
	degraded := 0
	for _, s := range All() {
		res, err := Measure(s, 60, 20, env, rng)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.BER > 0.05 {
			degraded++
		}
	}
	if degraded < 3 {
		t.Errorf("only %d/5 schemes degraded under 30%% interference", degraded)
	}
}

func TestEncodeTooShortMedium(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, err := NewMedium(0.01, 100e3, rng)
	if err != nil {
		t.Fatal(err)
	}
	bits := make([]byte, 100)
	for _, s := range All() {
		if _, err := s.Encode(m, bits, 0, 20); err == nil {
			t.Errorf("%s: expected error on too-short medium", s.Name())
		}
	}
}
