package ctc

import (
	"math"
	"math/rand"
	"testing"
)

// newTestMedium builds a medium from the default config with the given
// duration and seed.
func newTestMedium(t *testing.T, duration float64, seed int64) *Medium {
	t.Helper()
	cfg := DefaultMedium()
	cfg.Duration = duration
	cfg.Seed = seed
	m, err := NewMedium(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMediumBurstsAndDetection(t *testing.T) {
	m := newTestMedium(t, 1.0, 1)
	m.AddBurst(0.1, 0.001, 20)
	m.AddBurst(0.2, 0.003, 20)
	bursts := m.DetectBursts(6, 0.2e-3, 0.3e-3)
	if len(bursts) != 2 {
		t.Fatalf("detected %d bursts, want 2: %+v", len(bursts), bursts)
	}
	if math.Abs(bursts[0].Start-0.1) > 1e-4 || math.Abs(bursts[0].Duration-0.001) > 2e-4 {
		t.Errorf("burst 0 = %+v", bursts[0])
	}
	if math.Abs(bursts[1].Duration-0.003) > 2e-4 {
		t.Errorf("burst 1 = %+v", bursts[1])
	}
}

func TestMediumValidation(t *testing.T) {
	if _, err := NewMedium(MediumConfig{Rate: 100e3}); err == nil {
		t.Error("expected error for zero duration")
	}
	if _, err := NewMedium(MediumConfig{Duration: 1}); err == nil {
		t.Error("expected error for zero rate")
	}
	if DefaultMedium().Validate() == nil {
		t.Error("DefaultMedium must not validate until Duration is set")
	}
}

func TestMediumNoiseDeterministic(t *testing.T) {
	a := newTestMedium(t, 0.5, 9)
	b := newTestMedium(t, 0.5, 9)
	if a.MeanRSSI(0, 0.5) != b.MeanRSSI(0, 0.5) {
		t.Error("same seed must reproduce the noise fill")
	}
	c := newTestMedium(t, 0.5, 10)
	if a.MeanRSSI(0, 0.5) == c.MeanRSSI(0, 0.5) {
		t.Error("different seeds must change the noise fill")
	}
}

func TestMediumInterferenceDuty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := newTestMedium(t, 5, 3)
	m.AddInterference(0.3, 1e-3, 20, rng)
	bursts := m.DetectBursts(6, 0.2e-3, 0.3e-3)
	var busy float64
	for _, b := range bursts {
		busy += b.Duration
	}
	duty := busy / m.Duration()
	if duty < 0.2 || duty > 0.4 {
		t.Errorf("observed duty = %v, want ≈0.3", duty)
	}
}

func TestNominalRates(t *testing.T) {
	// The published operating points the Fig. 16 comparison relies on.
	tests := []struct {
		s        Scheme
		lo, hi   float64
		wantName string
	}{
		{NewFreeBee(), 15, 25, "FreeBee"},
		{NewAFreeBee(), 40, 60, "A-FreeBee"},
		{NewEMF(), 350, 450, "EMF"},
		{NewDCTC(), 350, 500, "DCTC"},
		{NewCMorse(), 200, 230, "C-Morse"},
	}
	for _, tt := range tests {
		if got := tt.s.Name(); got != tt.wantName {
			t.Errorf("name = %s, want %s", got, tt.wantName)
		}
		r := tt.s.NominalRate()
		if r < tt.lo || r > tt.hi {
			t.Errorf("%s nominal rate = %v bps, want [%v,%v]", tt.s.Name(), r, tt.lo, tt.hi)
		}
	}
}

func TestSchemesRoundTripClean(t *testing.T) {
	// Every scheme must decode its own bits exactly on a clean medium.
	rng := rand.New(rand.NewSource(4))
	for _, s := range All() {
		t.Run(s.Name(), func(t *testing.T) {
			bits := make([]byte, 40)
			for i := range bits {
				bits[i] = byte(rng.Intn(2))
			}
			duration := float64(len(bits))/s.NominalRate()*1.5 + 1
			m := newTestMedium(t, duration, 4)
			if _, err := s.Encode(m, bits, 0.1, 20); err != nil {
				t.Fatal(err)
			}
			got, err := s.Decode(m, len(bits))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(bits) {
				t.Fatalf("decoded %d bits, want %d", len(got), len(bits))
			}
			for i := range bits {
				if got[i] != bits[i] {
					t.Fatalf("bit %d = %d, want %d", i, got[i], bits[i])
				}
			}
		})
	}
}

func TestMeasureCleanGoodputNearNominal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, s := range All() {
		res, err := Measure(s, 60, 20, nil, rng)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.BER > 0.02 {
			t.Errorf("%s: clean BER = %v", s.Name(), res.BER)
		}
		if res.Goodput < 0.6*s.NominalRate() || res.Goodput > 1.4*s.NominalRate() {
			t.Errorf("%s: goodput %v vs nominal %v", s.Name(), res.Goodput, s.NominalRate())
		}
	}
}

func TestMeasureUnderInterferenceDegrades(t *testing.T) {
	// Packet-level schemes must suffer under WiFi interference (their
	// fundamental weakness vs SymBee's phase-level decoding).
	rng := rand.New(rand.NewSource(6))
	env := &InterferenceEnv{DutyCycle: 0.3, BurstDuration: 2e-3, INRdB: 20}
	degraded := 0
	for _, s := range All() {
		res, err := Measure(s, 60, 20, env, rng)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.BER > 0.05 {
			degraded++
		}
	}
	if degraded < 3 {
		t.Errorf("only %d/5 schemes degraded under 30%% interference", degraded)
	}
}

func TestEncodeTooShortMedium(t *testing.T) {
	m := newTestMedium(t, 0.01, 7)
	bits := make([]byte, 100)
	for _, s := range All() {
		if _, err := s.Encode(m, bits, 0, 20); err == nil {
			t.Errorf("%s: expected error on too-short medium", s.Name())
		}
	}
}

func TestSchemeValidateOperatingPoints(t *testing.T) {
	// Every published operating point validates.
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: published point invalid: %v", s.Name(), err)
		}
	}
	// Broken points are rejected by Validate, Encode and Occupancy alike.
	broken := []Scheme{
		&FreeBee{Interval: 10e-3, Granularity: 1e-3, BitsPerBeacon: 4, Repeat: 2, BeaconDuration: 576e-6},
		&FreeBee{Interval: 102.4e-3, Granularity: 1e-3, BitsPerBeacon: 4, Repeat: 0, BeaconDuration: 576e-6},
		&CMorse{Dot: 1e-3, Dash: 0.5e-3, Gap: 3.5e-3},
		&CMorse{Dot: 0, Dash: 1e-3, Gap: 3.5e-3},
		&DCTC{PacketDuration: 1e-3, MinGap: 2e-3, GapStep: 0, BitsPerGap: 2},
		&EMF{SlotDuration: 1e-3, SlotsPerFrame: 1, PacketDuration: 0.5e-3},
		&EMF{SlotDuration: 1e-3, SlotsPerFrame: 5, PacketDuration: 2e-3},
	}
	m := newTestMedium(t, 5, 8)
	for _, s := range broken {
		if s.Validate() == nil {
			t.Errorf("%T: broken point validated", s)
		}
		if _, err := s.Encode(m, []byte{0, 1}, 0.1, 20); err == nil {
			t.Errorf("%T: Encode accepted broken point", s)
		}
		if _, _, err := s.Occupancy(8); err == nil {
			t.Errorf("%T: Occupancy accepted broken point", s)
		}
	}
}

func TestOccupancyMatchesEncode(t *testing.T) {
	// On balanced data the occupancy model must agree with the airtime
	// Encode actually reports, and air can never exceed wall.
	for _, s := range All() {
		if _, _, err := s.Occupancy(0); err == nil {
			t.Errorf("%s: Occupancy accepted zero bits", s.Name())
		}
		wall, air, err := s.Occupancy(40)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if wall <= 0 || air <= 0 || air > wall {
			t.Fatalf("%s: wall=%v air=%v", s.Name(), wall, air)
		}
		bits := make([]byte, 40)
		for i := range bits {
			bits[i] = byte(i % 2) // balanced
		}
		m := newTestMedium(t, wall*2+1, 11)
		enc, err := s.Encode(m, bits, 0.1, 20)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if enc < 0.8*wall || enc > 1.2*wall {
			t.Errorf("%s: Encode airtime %v vs Occupancy wall %v", s.Name(), enc, wall)
		}
	}
}

func TestDownlinkTimingModel(t *testing.T) {
	d, err := NewDownlink(DefaultDownlink(NewCMorse()))
	if err != nil {
		t.Fatal(err)
	}
	if d.SchemeName() != "C-Morse" {
		t.Errorf("scheme = %s", d.SchemeName())
	}
	// 8 bits at the published point: 8·((0.576+1.728)/2 + 3.5) ms wall,
	// 8·1.152 ms air.
	if w := d.AckWall(); math.Abs(w-37.216e-3) > 1e-6 {
		t.Errorf("wall = %v, want ≈37.2 ms", w)
	}
	if a := d.AckAir(); math.Abs(a-9.216e-3) > 1e-6 {
		t.Errorf("air = %v, want ≈9.2 ms", a)
	}
	if d.Duty() <= 0 || d.Duty() >= 1 {
		t.Errorf("duty = %v", d.Duty())
	}
	if d.Latency() != d.BaseLatency()+d.AckWall() {
		t.Errorf("latency %v != base %v + wall %v", d.Latency(), d.BaseLatency(), d.AckWall())
	}
	// FreeBee is far slower but far lower duty.
	fb, err := NewDownlink(DefaultDownlink(NewFreeBee()))
	if err != nil {
		t.Fatal(err)
	}
	if fb.AckWall() <= d.AckWall() {
		t.Errorf("FreeBee wall %v should exceed C-Morse wall %v", fb.AckWall(), d.AckWall())
	}
	if fb.Duty() >= d.Duty() {
		t.Errorf("FreeBee duty %v should be below C-Morse duty %v", fb.Duty(), d.Duty())
	}
}

func TestDownlinkConfigValidate(t *testing.T) {
	cases := []DownlinkConfig{
		{},
		{Scheme: NewCMorse(), AckBits: 0, Repeat: 1},
		{Scheme: NewCMorse(), AckBits: 8, BaseLatency: -1e-3, Repeat: 1},
		{Scheme: NewCMorse(), AckBits: 8, Repeat: 0},
		{Scheme: &CMorse{Dot: 1e-3, Dash: 0.5e-3, Gap: 1e-3}, AckBits: 8, Repeat: 1},
	}
	for i, c := range cases {
		if c.Validate() == nil {
			t.Errorf("case %d: expected validation error", i)
		}
		if _, err := NewDownlink(c); err == nil {
			t.Errorf("case %d: NewDownlink accepted invalid config", i)
		}
	}
	if err := DefaultDownlink(NewFreeBee()).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}
