package ctc

import (
	"errors"
	"fmt"
	"math"
)

// FreeBee modulates the timing of periodic beacons: beacon k is shifted
// from its nominal grid position by s·Granularity where the shift index
// s encodes BitsPerBeacon bits. A leading unshifted sync beacon anchors
// the grid at the receiver (standing in for the long-term grid tracking
// of the original system). With the standard 102.4 ms beacon interval,
// 16 shift positions and 2× repetition for reliability, the rate is
// ≈20 bps — the published FreeBee ballpark.
type FreeBee struct {
	// Interval is the beacon period in seconds.
	Interval float64
	// Granularity is the timing shift unit in seconds.
	Granularity float64
	// BitsPerBeacon is log2 of the number of shift positions.
	BitsPerBeacon int
	// Repeat sends every symbol this many times (loss protection).
	Repeat int
	// BeaconDuration is the beacon airtime.
	BeaconDuration float64

	name string
}

// NewFreeBee returns FreeBee at its published operating point.
func NewFreeBee() *FreeBee {
	return &FreeBee{
		Interval:       102.4e-3,
		Granularity:    1e-3,
		BitsPerBeacon:  4,
		Repeat:         2,
		BeaconDuration: 576e-6,
		name:           "FreeBee",
	}
}

// NewAFreeBee returns the aggregated variant: finer granularity, one
// more bit per beacon and no repetition, trading robustness for rate.
func NewAFreeBee() *FreeBee {
	return &FreeBee{
		Interval:       102.4e-3,
		Granularity:    0.5e-3,
		BitsPerBeacon:  5,
		Repeat:         1,
		BeaconDuration: 576e-6,
		name:           "A-FreeBee",
	}
}

// Name implements Scheme.
func (f *FreeBee) Name() string { return f.name }

// NominalRate implements Scheme.
func (f *FreeBee) NominalRate() float64 {
	return float64(f.BitsPerBeacon) / (f.Interval * float64(f.Repeat))
}

func (f *FreeBee) positions() int { return 1 << f.BitsPerBeacon }

// FreeBee operating-point errors.
var (
	errFreeBeePoint = errors.New("ctc: invalid FreeBee operating point")
	errFreeBeeShift = errors.New("ctc: FreeBee shifts exceed half the beacon interval")
)

// Validate implements Scheme.
func (f *FreeBee) Validate() error {
	switch {
	case f.Interval <= 0 || f.Granularity <= 0 || f.BeaconDuration <= 0:
		return fmt.Errorf("%w: non-positive interval %v, granularity %v or beacon %v",
			errFreeBeePoint, f.Interval, f.Granularity, f.BeaconDuration)
	case f.BitsPerBeacon < 1 || f.BitsPerBeacon > 16:
		return fmt.Errorf("%w: BitsPerBeacon %d", errFreeBeePoint, f.BitsPerBeacon)
	case f.Repeat < 1:
		return fmt.Errorf("%w: Repeat %d", errFreeBeePoint, f.Repeat)
	case f.Granularity*float64(f.positions()) > f.Interval/2:
		return fmt.Errorf("%w: %d positions × %v s vs %v s interval",
			errFreeBeeShift, f.positions(), f.Granularity, f.Interval)
	}
	return nil
}

// Occupancy implements Scheme: one sync beacon plus Repeat copies of
// each data beacon, strung along the beacon grid.
func (f *FreeBee) Occupancy(nBits int) (wall, air float64, err error) {
	if err := f.Validate(); err != nil {
		return 0, 0, err
	}
	if nBits <= 0 {
		return 0, 0, fmt.Errorf("%w: %d", errNBits, nBits)
	}
	syms := (nBits + f.BitsPerBeacon - 1) / f.BitsPerBeacon
	beacons := 1 + syms*f.Repeat
	return float64(beacons) * f.Interval, float64(beacons) * f.BeaconDuration, nil
}

// Encode implements Scheme: a sync beacon followed by the data beacons,
// each displaced from the grid by its shift index.
func (f *FreeBee) Encode(m *Medium, bits []byte, start, snrDB float64) (float64, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	place := func(beacon int, shift int) error {
		t := start + float64(beacon)*f.Interval + float64(shift)*f.Granularity
		if t+f.BeaconDuration > m.Duration() {
			return fmt.Errorf("ctc: medium too short for FreeBee encoding")
		}
		m.AddBurst(t, f.BeaconDuration, snrDB)
		return nil
	}
	if err := place(0, 0); err != nil { // sync beacon
		return 0, err
	}
	beacon := 1
	for i := 0; i < len(bits); i += f.BitsPerBeacon {
		shift := 0
		for j := 0; j < f.BitsPerBeacon; j++ {
			shift <<= 1
			if i+j < len(bits) && bits[i+j] == 1 {
				shift |= 1
			}
		}
		for r := 0; r < f.Repeat; r++ {
			if err := place(beacon, shift); err != nil {
				return 0, err
			}
			beacon++
		}
	}
	return float64(beacon) * f.Interval, nil
}

// Decode implements Scheme: arrivals are mapped onto the grid anchored
// at the sync beacon; each data beacon's displacement yields its shift
// index, taking the first surviving repetition copy per symbol.
func (f *FreeBee) Decode(m *Medium, nBits int) ([]byte, error) {
	bursts := m.DetectBursts(6, f.BeaconDuration/2, f.BeaconDuration/2)
	arrivals := make([]float64, 0, len(bursts))
	for _, b := range bursts {
		if b.Duration < 3*f.BeaconDuration {
			arrivals = append(arrivals, b.Start)
		}
	}
	if len(arrivals) == 0 {
		return nil, nil
	}
	base := arrivals[0] // sync beacon
	shifts := map[int]int{}
	maxSym := -1
	for _, t := range arrivals[1:] {
		k := int(math.Round((t - base) / f.Interval))
		if k < 1 {
			continue
		}
		sym := (k - 1) / f.Repeat
		if _, dup := shifts[sym]; dup {
			continue
		}
		shift := int(math.Round((t - base - float64(k)*f.Interval) / f.Granularity))
		if shift < 0 || shift >= f.positions() {
			continue // outside the shift alphabet: foreign burst
		}
		shifts[sym] = shift
		if sym > maxSym {
			maxSym = sym
		}
	}
	bits := make([]byte, 0, nBits)
	for sym := 0; sym <= maxSym && len(bits) < nBits; sym++ {
		shift := shifts[sym] // missing symbols decode as 0s
		for j := f.BitsPerBeacon - 1; j >= 0 && len(bits) < nBits; j-- {
			bits = append(bits, byte(shift>>j&1))
		}
	}
	return bits, nil
}
