// Package testutil holds small helpers shared by the repo's tests; it
// is imported only from _test.go files.
package testutil

import (
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// CheckGoroutineLeaks snapshots the goroutines alive now and returns a
// function to defer at the top of a test: it fails the test if the body
// left extra goroutines behind. Shutdown paths are given a grace period
// (the check retries with short sleeps before declaring a leak), so
// workers that are mid-teardown when the body returns do not flap.
//
//	defer testutil.CheckGoroutineLeaks(t)()
func CheckGoroutineLeaks(t testing.TB) func() {
	t.Helper()
	before := goroutineCounts()
	return func() {
		t.Helper()
		var leaked []string
		for attempt := 0; attempt < 50; attempt++ {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d goroutine(s) survived the test:\n  %s",
			len(leaked), strings.Join(leaked, "\n  "))
	}
}

// leakedSince lists the creation sites with more live goroutines now
// than in the baseline.
func leakedSince(before map[string]int) []string {
	var leaked []string
	for site, n := range goroutineCounts() {
		if n > before[site] {
			leaked = append(leaked, site)
		}
	}
	sort.Strings(leaked)
	return leaked
}

// goroutineCounts returns the live goroutines grouped by creation site
// (the "created by" frame, or the top frame for main-like goroutines).
// Runtime and testing internals are excluded: they come and go on their
// own schedule and are never a leak the test under check caused.
func goroutineCounts() map[string]int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	for n == len(buf) {
		buf = make([]byte, 2*len(buf))
		n = runtime.Stack(buf, true)
	}
	counts := make(map[string]int)
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		site := creationSite(g)
		if site == "" || isHarness(site) {
			continue
		}
		counts[site]++
	}
	return counts
}

// creationSite extracts the identity of one goroutine dump block.
func creationSite(g string) string {
	lines := strings.Split(strings.TrimSpace(g), "\n")
	for i := len(lines) - 1; i >= 0; i-- {
		if rest, ok := strings.CutPrefix(lines[i], "created by "); ok {
			if at, _, found := strings.Cut(rest, " in goroutine"); found {
				return at
			}
			return rest
		}
	}
	// No "created by" frame: main goroutine or a runtime-spawned one.
	if len(lines) > 1 {
		fn, _, _ := strings.Cut(lines[1], "(")
		return strings.TrimSpace(fn)
	}
	return ""
}

// isHarness reports whether the site belongs to the go runtime or the
// testing framework rather than code under test.
func isHarness(site string) bool {
	return strings.HasPrefix(site, "runtime.") ||
		strings.HasPrefix(site, "testing.") ||
		strings.HasPrefix(site, "os/signal.")
}
