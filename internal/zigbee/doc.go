// Package zigbee implements the IEEE 802.15.4 2.4 GHz physical layer
// that SymBee transmits over: the 16-ary symbol→chip spreading table
// (DSSS), the half-sine OQPSK modulator, PPDU framing (preamble, SFD,
// PHR, PSDU with CRC-16 FCS), and a chip-correlation receiver used for
// the ZigBee side of cross-technology broadcast.
//
// The modulator synthesizes complex baseband directly at the receiver's
// sample rate (20 or 40 Msps) so that the WiFi front-end model in package
// wifi can consume it without resampling; the chip rate is the standard
// 2 Mchip/s (chip slot 0.5 µs, half-sine pulse 1 µs, symbol 16 µs).
//
// Nibble transmission order is configurable. The SymBee paper writes the
// bit-0 codeword as byte 0x67 = symbols (6,7), i.e. most-significant
// nibble first; IEEE 802.15.4 hardware transmits the least-significant
// nibble first (on such hardware the same on-air pattern is byte 0x76).
// OrderMSBFirst reproduces the paper's notation and is what package core
// uses; OrderLSBFirst matches the standard.
package zigbee
