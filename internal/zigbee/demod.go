package zigbee

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoSync is returned when frame synchronization fails to find a
// plausible synchronization header in the input.
var ErrNoSync = errors.New("zigbee: no synchronization header found")

// Demodulator recovers chips, symbols and frames from OQPSK baseband.
// It is the receiver a neighbouring ZigBee node uses in the
// cross-technology broadcast scenario (§VI-A): a SymBee packet is a
// legitimate ZigBee packet, so a standard receiver decodes it natively.
type Demodulator struct {
	mod *Modulator
}

// NewDemodulator returns a demodulator for the given sample rate (same
// constraints as NewModulator).
func NewDemodulator(sampleRate float64) (*Demodulator, error) {
	mod, err := NewModulator(sampleRate)
	if err != nil {
		return nil, err
	}
	return &Demodulator{mod: mod}, nil
}

// SoftChips matched-filters nChips chips from x starting at sample
// offset. Even chips correlate the in-phase rail and odd chips the
// quadrature rail against the half-sine pulse; the sign of each value is
// the hard chip decision and its magnitude the confidence.
func (d *Demodulator) SoftChips(x []complex128, offset, nChips int) ([]float64, error) {
	sps := d.mod.samplesPerSlot
	need := offset + (nChips+1)*sps
	if offset < 0 || need > len(x) {
		return nil, fmt.Errorf("zigbee: input too short: need %d samples, have %d", need, len(x))
	}
	soft := make([]float64, nChips)
	for k := 0; k < nChips; k++ {
		base := offset + k*sps
		var acc float64
		if k%2 == 0 {
			for i, p := range d.mod.pulse {
				acc += real(x[base+i]) * p
			}
		} else {
			for i, p := range d.mod.pulse {
				acc += imag(x[base+i]) * p
			}
		}
		soft[k] = acc
	}
	return soft, nil
}

// DemodulateSymbols recovers nSymbols symbols from x starting at sample
// offset using soft-decision correlation against all 16 spreading
// sequences (maximum-likelihood under AWGN).
func (d *Demodulator) DemodulateSymbols(x []complex128, offset, nSymbols int) ([]byte, error) {
	soft, err := d.SoftChips(x, offset, nSymbols*ChipsPerSymbol)
	if err != nil {
		return nil, err
	}
	symbols := make([]byte, nSymbols)
	for s := 0; s < nSymbols; s++ {
		window := soft[s*ChipsPerSymbol : (s+1)*ChipsPerSymbol]
		best, bestScore := byte(0), math.Inf(-1)
		for cand := byte(0); cand < NumSymbols; cand++ {
			var score float64
			for k, c := range chipTable[cand] {
				if c == 1 {
					score += window[k]
				} else {
					score -= window[k]
				}
			}
			if score > bestScore {
				best, bestScore = cand, score
			}
		}
		symbols[s] = best
	}
	return symbols, nil
}

// Synchronize locates the start of a frame in x by sliding the ideal
// synchronization-header waveform (preamble + SFD) over the input and
// returning the offset with the largest correlation magnitude. searchLen
// bounds the number of candidate offsets (use len(x) to search
// everywhere). It returns ErrNoSync when the peak correlation is too
// weak relative to the signal energy to be a real header.
func (d *Demodulator) Synchronize(x []complex128, searchLen int, order SymbolOrder) (int, error) {
	ref := d.mod.ModulateBytes(append(makeZeros(PreambleLen), SFD), order)
	if searchLen <= 0 || searchLen > len(x)-len(ref) {
		searchLen = len(x) - len(ref)
	}
	if searchLen <= 0 {
		return 0, ErrNoSync
	}
	refEnergy := 0.0
	for _, v := range ref {
		refEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	bestOff, bestMag := -1, 0.0
	for off := 0; off < searchLen; off++ {
		var accRe, accIm, energy float64
		for i, r := range ref {
			v := x[off+i]
			// conj(ref)*x accumulated coherently per rail pair.
			accRe += real(v)*real(r) + imag(v)*imag(r)
			accIm += imag(v)*real(r) - real(v)*imag(r)
			energy += real(v)*real(v) + imag(v)*imag(v)
		}
		if energy == 0 {
			continue
		}
		mag := (accRe*accRe + accIm*accIm) / (energy * refEnergy)
		if mag > bestMag {
			bestOff, bestMag = off, mag
		}
	}
	// Normalized correlation is 1 for a perfect match; demand a
	// reasonable fraction to reject pure noise.
	if bestOff < 0 || bestMag < 0.1 {
		return 0, ErrNoSync
	}
	return bestOff, nil
}

// Receive runs the full pipeline on x: synchronize, demodulate the
// header, read the PHR length, demodulate the PSDU and validate the
// frame. It returns the MAC payload (without FCS).
func (d *Demodulator) Receive(x []complex128, order SymbolOrder) ([]byte, error) {
	start, err := d.Synchronize(x, len(x), order)
	if err != nil {
		return nil, err
	}
	return d.ReceiveAt(x, start, order)
}

// ReceiveAt is Receive with a known frame start offset (in samples).
func (d *Demodulator) ReceiveAt(x []complex128, start int, order SymbolOrder) ([]byte, error) {
	headerSyms, err := d.DemodulateSymbols(x, start, HeaderSymbols)
	if err != nil {
		return nil, err
	}
	header, err := SymbolsToBytes(headerSyms, order)
	if err != nil {
		return nil, err
	}
	if header[PreambleLen] != SFD {
		return nil, fmt.Errorf("%w: got 0x%02X", ErrBadSFD, header[PreambleLen])
	}
	psduLen := int(header[PreambleLen+1])
	if psduLen < FCSLen || psduLen > MaxPSDULen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, psduLen)
	}
	sps := d.mod.samplesPerSlot
	psduOffset := start + HeaderSymbols*ChipsPerSymbol*sps
	psduSyms, err := d.DemodulateSymbols(x, psduOffset, psduLen*2)
	if err != nil {
		return nil, err
	}
	psdu, err := SymbolsToBytes(psduSyms, order)
	if err != nil {
		return nil, err
	}
	ppdu := append(header, psdu...)
	return ParsePPDU(ppdu)
}

func makeZeros(n int) []byte { return make([]byte, n) }
