package zigbee

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMPDURoundTrip(t *testing.T) {
	f := func(seq byte, pan, dst, src uint16, ack bool, payload []byte) bool {
		if len(payload) > MaxMSDULen {
			payload = payload[:MaxMSDULen]
		}
		m := &MPDU{
			Type: FrameData, AckRequest: ack, Seq: seq,
			PANID: pan, Dest: dst, Src: src, Payload: payload,
		}
		raw, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := ParseMPDU(raw)
		if err != nil {
			return false
		}
		return got.Type == FrameData && got.AckRequest == ack && got.Seq == seq &&
			got.PANID == pan && got.Dest == dst && got.Src == src &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMPDUErrors(t *testing.T) {
	if _, err := (&MPDU{Type: FrameData, Payload: make([]byte, MaxMSDULen+1)}).Marshal(); !errors.Is(err, ErrBadLength) {
		t.Errorf("oversized payload: err = %v", err)
	}
	if _, err := (&MPDU{Type: 7}).Marshal(); !errors.Is(err, ErrMPDUType) {
		t.Errorf("bad type: err = %v", err)
	}
	if _, err := ParseMPDU(make([]byte, 5)); !errors.Is(err, ErrMPDUShort) {
		t.Errorf("short: err = %v", err)
	}
	// Long addressing mode rejected.
	m := &MPDU{Type: FrameData, Payload: []byte{1}}
	raw, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	raw[1] &^= 0x0C // clear dest addressing bits
	if _, err := ParseMPDU(raw); err == nil {
		t.Error("expected addressing-mode error")
	}
}

func TestMaxMSDULen(t *testing.T) {
	// 127 − 9 header − 2 FCS = 116 SymBee bit slots in a real MAC frame.
	if MaxMSDULen != 116 {
		t.Errorf("MaxMSDULen = %d, want 116", MaxMSDULen)
	}
}

func TestBuildDataPPDUThroughPHY(t *testing.T) {
	// A full stack round trip: MAC frame → PPDU → OQPSK air → PHY
	// receive → MAC parse.
	payload := []byte{0x67, 0x67, 0x67, 0x67, 0xEF, 0x67}
	ppdu, err := BuildDataPPDU(0x1234, 9, payload)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	demod, err := NewDemodulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	sig := mod.ModulateBytes(ppdu, OrderMSBFirst)
	msdu, err := demod.ReceiveAt(sig, 0, OrderMSBFirst)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ParseMPDU(msdu)
	if err != nil {
		t.Fatal(err)
	}
	if m.Src != 0x1234 || m.Seq != 9 || m.Dest != BroadcastAddr {
		t.Errorf("mpdu = %+v", m)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Errorf("payload = %X", m.Payload)
	}
}

func TestMACFramedSymBeeStillDecodesAtWiFi(t *testing.T) {
	// The crucial interaction: with a 9-byte MAC header between the PHY
	// header and the SymBee preamble, the WiFi-side capture must still
	// find the right anchor (the header is just more non-codeword bytes
	// to skip). Exercised via the core link in core's tests; here we
	// verify at the PHY level that a MAC-framed payload preserves the
	// codeword phase structure at the right offsets.
	payload := make([]byte, 20)
	for i := range payload {
		payload[i] = 0x67
	}
	ppdu, err := BuildDataPPDU(0x0001, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := NewModulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	sig := mod.ModulateBytes(ppdu, OrderMSBFirst)
	// Codeword k sits at byte (6 PHY header + 9 MAC header + k).
	// Check the stable run of codeword 0 at its expected offset.
	base := (6 + 9) * 640
	var neg, nonneg int
	phases := phaseStream(sig, 16)
	for i := base + 270; i < base+350; i++ {
		if phases[i] >= 0 {
			nonneg++
		} else {
			neg++
		}
	}
	if nonneg < 75 {
		t.Errorf("stable run not found at MAC-framed offset: %d/80 nonneg", nonneg)
	}
}

// phaseStream is a tiny local helper mirroring the WiFi idle-listening
// computation, keeping this package's tests free of higher-layer
// imports.
func phaseStream(x []complex128, lag int) []float64 {
	out := make([]float64, len(x)-lag)
	for n := range out {
		p := x[n] * complex(real(x[n+lag]), -imag(x[n+lag]))
		out[n] = math.Atan2(imag(p), real(p))
	}
	return out
}
