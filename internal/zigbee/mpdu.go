package zigbee

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC frame (MPDU) support, IEEE 802.15.4 §7.2. A real SymBee sender
// transmits standard MAC data frames whose *MSDU payload* carries the
// SymBee codeword bytes — the MAC header precedes the SymBee preamble
// on air, and the fold-based capture must (and does) skip past it just
// as it skips the PHY header.

// FrameType is the 3-bit MAC frame type.
type FrameType byte

// MAC frame types.
const (
	FrameBeacon FrameType = iota
	FrameData
	FrameAck
	FrameCommand
)

// Broadcast addresses.
const (
	// BroadcastPAN is the broadcast PAN identifier.
	BroadcastPAN = 0xFFFF
	// BroadcastAddr is the broadcast short address.
	BroadcastAddr = 0xFFFF
)

// MPDU is a MAC frame with 16-bit (short) addressing — the mode IoT
// deployments and the paper's TelosB firmware use.
type MPDU struct {
	// Type of the frame.
	Type FrameType
	// AckRequest asks the receiver for a MAC acknowledgement.
	AckRequest bool
	// Seq is the MAC sequence number.
	Seq byte
	// PANID of the destination (intra-PAN frames).
	PANID uint16
	// Dest and Src short addresses.
	Dest, Src uint16
	// Payload is the MSDU (for SymBee: the codeword bytes).
	Payload []byte
}

// MPDU framing errors.
var (
	ErrMPDUShort = errors.New("zigbee: MPDU too short")
	ErrMPDUType  = errors.New("zigbee: unsupported MPDU frame type")
)

// mpduOverhead is the header length with short intra-PAN addressing:
// FCF(2) + Seq(1) + PAN(2) + Dest(2) + Src(2).
const mpduOverhead = 9

// MaxMSDULen is the largest MAC payload that fits a PHY frame:
// 127 − header − FCS.
const MaxMSDULen = MaxPSDULen - mpduOverhead - FCSLen

// Marshal serializes the MPDU (header + payload, FCS excluded — the PHY
// layer appends it via BuildPPDU).
func (m *MPDU) Marshal() ([]byte, error) {
	if len(m.Payload) > MaxMSDULen {
		return nil, fmt.Errorf("%w: payload %d exceeds %d", ErrBadLength, len(m.Payload), MaxMSDULen)
	}
	if m.Type > FrameCommand {
		return nil, fmt.Errorf("%w: %d", ErrMPDUType, m.Type)
	}
	// Frame control field: type | ack-request | intra-PAN, with 16-bit
	// destination and source addressing modes.
	fcf := uint16(m.Type) & 0x7
	if m.AckRequest {
		fcf |= 1 << 5
	}
	fcf |= 1 << 6    // intra-PAN: one PAN id covers both addresses
	fcf |= 0x2 << 10 // dest addressing: short
	fcf |= 0x2 << 14 // src addressing: short
	out := make([]byte, mpduOverhead+len(m.Payload))
	binary.LittleEndian.PutUint16(out[0:], fcf)
	out[2] = m.Seq
	binary.LittleEndian.PutUint16(out[3:], m.PANID)
	binary.LittleEndian.PutUint16(out[5:], m.Dest)
	binary.LittleEndian.PutUint16(out[7:], m.Src)
	copy(out[mpduOverhead:], m.Payload)
	return out, nil
}

// ParseMPDU inverts Marshal.
func ParseMPDU(data []byte) (*MPDU, error) {
	if len(data) < mpduOverhead {
		return nil, ErrMPDUShort
	}
	fcf := binary.LittleEndian.Uint16(data[0:])
	m := &MPDU{
		Type:       FrameType(fcf & 0x7),
		AckRequest: fcf&(1<<5) != 0,
		Seq:        data[2],
		PANID:      binary.LittleEndian.Uint16(data[3:]),
		Dest:       binary.LittleEndian.Uint16(data[5:]),
		Src:        binary.LittleEndian.Uint16(data[7:]),
	}
	if m.Type > FrameCommand {
		return nil, fmt.Errorf("%w: %d", ErrMPDUType, m.Type)
	}
	if fcf>>10&0x3 != 0x2 || fcf>>14&0x3 != 0x2 {
		return nil, fmt.Errorf("zigbee: only short addressing is supported (fcf %04X)", fcf)
	}
	m.Payload = append([]byte{}, data[mpduOverhead:]...)
	return m, nil
}

// BuildDataPPDU wraps a SymBee (or any) payload in a broadcast MAC data
// frame and the PHY framing in one step.
func BuildDataPPDU(src uint16, seq byte, payload []byte) ([]byte, error) {
	mpdu := &MPDU{
		Type:    FrameData,
		Seq:     seq,
		PANID:   BroadcastPAN,
		Dest:    BroadcastAddr,
		Src:     src,
		Payload: payload,
	}
	raw, err := mpdu.Marshal()
	if err != nil {
		return nil, err
	}
	return BuildPPDU(raw)
}
