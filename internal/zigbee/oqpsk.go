package zigbee

import (
	"fmt"
	"math"
)

// Modulator converts symbol streams into complex-baseband OQPSK signal
// sampled at a configurable rate. Even-indexed chips shape the in-phase
// rail and odd-indexed chips the quadrature rail; because the pulse for
// chip k starts at k chip slots, the quadrature rail is naturally offset
// by half a pulse (0.5 µs), which is the "O" in OQPSK (paper Fig. 2).
type Modulator struct {
	sampleRate     float64
	samplesPerSlot int
	pulse          []float64 // half-sine spanning two chip slots
}

// NewModulator returns a modulator producing samples at sampleRate Hz.
// The rate must be a positive integer multiple of the 2 MHz chip rate
// (10 samples per chip slot at 20 Msps, 20 at 40 Msps).
func NewModulator(sampleRate float64) (*Modulator, error) {
	if sampleRate <= 0 {
		return nil, fmt.Errorf("zigbee: sample rate %v must be positive", sampleRate)
	}
	spsF := sampleRate * ChipSlot
	sps := int(math.Round(spsF))
	if math.Abs(spsF-float64(sps)) > 1e-9 || sps < 2 {
		return nil, fmt.Errorf("zigbee: sample rate %v is not an integer multiple >=2 of the chip rate", sampleRate)
	}
	pulse := make([]float64, 2*sps)
	for i := range pulse {
		pulse[i] = math.Sin(math.Pi * float64(i) / float64(2*sps))
	}
	return &Modulator{
		sampleRate:     sampleRate,
		samplesPerSlot: sps,
		pulse:          pulse,
	}, nil
}

// SampleRate returns the output sample rate in Hz.
func (m *Modulator) SampleRate() float64 { return m.sampleRate }

// SamplesPerSlot returns the number of samples in one 0.5 µs chip slot.
func (m *Modulator) SamplesPerSlot() int { return m.samplesPerSlot }

// SamplesPerSymbol returns the number of samples in one 16 µs symbol.
func (m *Modulator) SamplesPerSymbol() int { return m.samplesPerSlot * ChipsPerSymbol }

// ModulateChips shapes a chip stream into complex baseband. Chip value 1
// maps to a positive half-sine and 0 to a negative one (the standard
// polarity; the paper's Fig. 2 text uses the opposite naming, which only
// flips the global sign of the waveform and no observable in this
// repository depends on it).
//
// The output holds (len(chips)+1) chip slots: the final pulse extends one
// slot past the last chip start.
func (m *Modulator) ModulateChips(chips []byte) []complex128 {
	sps := m.samplesPerSlot
	out := make([]complex128, (len(chips)+1)*sps)
	re := make([]float64, len(out))
	im := make([]float64, len(out))
	for k, c := range chips {
		a := 1.0
		if c == 0 {
			a = -1.0
		}
		off := k * sps
		rail := re
		if k%2 == 1 {
			rail = im
		}
		for i, p := range m.pulse {
			rail[off+i] += a * p
		}
	}
	for i := range out {
		out[i] = complex(re[i], im[i])
	}
	return out
}

// ModulateSymbols spreads the symbols and shapes the resulting chips.
func (m *Modulator) ModulateSymbols(symbols []byte) []complex128 {
	return m.ModulateChips(SpreadSymbols(symbols))
}

// ModulateBytes expands bytes into symbols using order and modulates
// them.
func (m *Modulator) ModulateBytes(data []byte, order SymbolOrder) []complex128 {
	return m.ModulateSymbols(BytesToSymbols(data, order))
}
