package zigbee

import "fmt"

// IEEE 802.15.4 2.4 GHz O-QPSK PHY constants.
const (
	// ChipsPerSymbol is the DSSS spreading factor: each 4-bit symbol maps
	// to 32 chips (Table I of the paper, Table 73 of IEEE 802.15.4-2006).
	ChipsPerSymbol = 32

	// NumSymbols is the size of the symbol alphabet (one per nibble).
	NumSymbols = 16

	// ChipRate is the 2.4 GHz PHY chip rate in chips/second.
	ChipRate = 2e6

	// ChipSlot is the duration of one chip slot in seconds (0.5 µs).
	// Each half-sine pulse spans two chip slots (1 µs).
	ChipSlot = 1 / ChipRate

	// SymbolDuration is 32 chips at 2 Mchip/s = 16 µs.
	SymbolDuration = ChipsPerSymbol / ChipRate

	// SymbolRate is the 62.5 ksymbol/s symbol rate.
	SymbolRate = 1 / SymbolDuration

	// BitsPerSymbol is the number of data bits carried per symbol.
	BitsPerSymbol = 4

	// BitRate is the ZigBee data rate: 62.5 ksym/s × 4 bit = 250 kbps.
	BitRate = SymbolRate * BitsPerSymbol
)

// symbol0 is the chip sequence for data symbol 0 from IEEE 802.15.4
// Table 73, chip c0 first. The paper reproduces it in Table I.
const symbol0 = "11011001110000110101001000101110"

// chipTable holds the 16 spreading sequences, chipTable[s][k] being chip
// k (0 or 1) of symbol s. Sequences 1-7 are right cyclic shifts of
// sequence 0 by 4 chips per step; sequences 8-15 are sequences 0-7 with
// every odd-indexed chip inverted (which conjugates the OQPSK waveform).
var chipTable = buildChipTable()

func buildChipTable() [NumSymbols][ChipsPerSymbol]byte {
	var t [NumSymbols][ChipsPerSymbol]byte
	for k := 0; k < ChipsPerSymbol; k++ {
		t[0][k] = symbol0[k] - '0'
	}
	for s := 1; s < 8; s++ {
		for k := 0; k < ChipsPerSymbol; k++ {
			t[s][k] = t[s-1][(k+ChipsPerSymbol-4)%ChipsPerSymbol]
		}
	}
	for s := 8; s < NumSymbols; s++ {
		for k := 0; k < ChipsPerSymbol; k++ {
			c := t[s-8][k]
			if k%2 == 1 {
				c ^= 1
			}
			t[s][k] = c
		}
	}
	return t
}

// ChipSequence returns a copy of the 32-chip spreading sequence for
// symbol s. A symbol is a nibble by construction, so only the low four
// bits of s are significant; higher bits are masked off.
func ChipSequence(s byte) []byte {
	seq := make([]byte, ChipsPerSymbol)
	copy(seq, chipTable[s&0x0F][:])
	return seq
}

// ChipString renders the chip sequence of symbol s as a 32-character
// binary string, matching the notation of the paper's Table I.
func ChipString(s byte) string {
	seq := ChipSequence(s)
	buf := make([]byte, ChipsPerSymbol)
	for i, c := range seq {
		buf[i] = '0' + c
	}
	return string(buf)
}

// SpreadSymbols concatenates the chip sequences of the given symbols.
// As in ChipSequence, only the low nibble of each symbol is used.
func SpreadSymbols(symbols []byte) []byte {
	chips := make([]byte, 0, len(symbols)*ChipsPerSymbol)
	for _, s := range symbols {
		chips = append(chips, chipTable[s&0x0F][:]...)
	}
	return chips
}

// SymbolOrder selects how a byte is split into two 4-bit symbols for
// transmission.
type SymbolOrder int

const (
	// OrderMSBFirst transmits the most-significant nibble first, the
	// notation used throughout the SymBee paper (byte 0x67 → symbols
	// 6 then 7).
	OrderMSBFirst SymbolOrder = iota + 1
	// OrderLSBFirst transmits the least-significant nibble first, as
	// IEEE 802.15.4 hardware does (byte 0x67 → symbols 7 then 6).
	OrderLSBFirst
)

// BytesToSymbols expands data into its 4-bit symbol stream in the given
// nibble order.
func BytesToSymbols(data []byte, order SymbolOrder) []byte {
	symbols := make([]byte, 0, len(data)*2)
	for _, b := range data {
		hi, lo := b>>4, b&0x0F
		switch order {
		case OrderLSBFirst:
			symbols = append(symbols, lo, hi)
		default:
			symbols = append(symbols, hi, lo)
		}
	}
	return symbols
}

// SymbolsToBytes packs a symbol stream back into bytes in the given
// nibble order. The symbol count must be even.
func SymbolsToBytes(symbols []byte, order SymbolOrder) ([]byte, error) {
	if len(symbols)%2 != 0 {
		return nil, fmt.Errorf("zigbee: odd symbol count %d", len(symbols))
	}
	data := make([]byte, len(symbols)/2)
	for i := range data {
		a, b := symbols[2*i], symbols[2*i+1]
		if order == OrderLSBFirst {
			data[i] = a&0x0F | b<<4
		} else {
			data[i] = a<<4 | b&0x0F
		}
	}
	return data, nil
}
