package zigbee

import (
	"errors"
	"fmt"
)

// PPDU framing constants (IEEE 802.15.4 §6.3).
const (
	// PreambleLen is the number of 0x00 bytes in the synchronization
	// header preamble.
	PreambleLen = 4
	// SFD is the start-of-frame delimiter byte that follows the
	// preamble.
	SFD = 0xA7
	// MaxPSDULen is the maximum PHY payload, 127 bytes (aMaxPHYPacketSize).
	MaxPSDULen = 127
	// FCSLen is the length of the CRC-16 frame check sequence appended
	// to the MAC payload.
	FCSLen = 2
	// HeaderSymbols is the number of symbols before the PSDU begins:
	// (4 preamble + 1 SFD + 1 PHR) bytes × 2 symbols.
	HeaderSymbols = (PreambleLen + 1 + 1) * 2
)

// Framing errors returned by ParsePPDU and DecodeFrame.
var (
	ErrShortFrame = errors.New("zigbee: frame too short")
	ErrBadSFD     = errors.New("zigbee: start-of-frame delimiter mismatch")
	ErrBadLength  = errors.New("zigbee: PHR length out of range")
	ErrBadFCS     = errors.New("zigbee: frame check sequence mismatch")
)

// CRC16 computes the ITU-T CRC-16 used as the 802.15.4 FCS
// (x^16 + x^12 + x^5 + 1, bit-reversed, zero initial value).
func CRC16(data []byte) uint16 {
	var crc uint16
	for _, b := range data {
		crc ^= uint16(b)
		for i := 0; i < 8; i++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0x8408
			} else {
				crc >>= 1
			}
		}
	}
	return crc
}

// BuildPPDU assembles the full PHY protocol data unit around payload:
// preamble, SFD, PHR (frame length), payload, and the CRC-16 FCS. The
// payload length including FCS must not exceed MaxPSDULen.
func BuildPPDU(payload []byte) ([]byte, error) {
	psduLen := len(payload) + FCSLen
	if psduLen > MaxPSDULen {
		return nil, fmt.Errorf("%w: payload %d + FCS exceeds %d", ErrBadLength, len(payload), MaxPSDULen)
	}
	ppdu := make([]byte, 0, PreambleLen+2+psduLen)
	for i := 0; i < PreambleLen; i++ {
		ppdu = append(ppdu, 0x00)
	}
	ppdu = append(ppdu, SFD, byte(psduLen))
	ppdu = append(ppdu, payload...)
	fcs := CRC16(payload)
	ppdu = append(ppdu, byte(fcs&0xFF), byte(fcs>>8))
	return ppdu, nil
}

// ParsePPDU validates a received PPDU byte stream and returns the MAC
// payload (PSDU minus FCS). The input must start at the first preamble
// byte.
func ParsePPDU(ppdu []byte) ([]byte, error) {
	if len(ppdu) < PreambleLen+2+FCSLen {
		return nil, ErrShortFrame
	}
	if ppdu[PreambleLen] != SFD {
		return nil, fmt.Errorf("%w: got 0x%02X", ErrBadSFD, ppdu[PreambleLen])
	}
	psduLen := int(ppdu[PreambleLen+1])
	if psduLen < FCSLen || psduLen > MaxPSDULen {
		return nil, fmt.Errorf("%w: %d", ErrBadLength, psduLen)
	}
	body := ppdu[PreambleLen+2:]
	if len(body) < psduLen {
		return nil, ErrShortFrame
	}
	payload := body[:psduLen-FCSLen]
	fcs := uint16(body[psduLen-FCSLen]) | uint16(body[psduLen-FCSLen+1])<<8
	if CRC16(payload) != fcs {
		return nil, ErrBadFCS
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// Airtime returns the on-air duration in seconds of a PPDU whose MAC
// payload (excluding FCS) is payloadLen bytes.
func Airtime(payloadLen int) float64 {
	totalBytes := PreambleLen + 2 + payloadLen + FCSLen
	return float64(totalBytes) * 2 * SymbolDuration
}
