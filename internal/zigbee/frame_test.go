package zigbee

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestCRC16KnownVector(t *testing.T) {
	// CRC-16/KERMIT (the ITU-T CRC used by 802.15.4): check("123456789")
	// = 0x2189.
	if got := CRC16([]byte("123456789")); got != 0x2189 {
		t.Errorf("CRC16 = 0x%04X, want 0x2189", got)
	}
	if got := CRC16(nil); got != 0 {
		t.Errorf("CRC16(nil) = 0x%04X, want 0", got)
	}
}

func TestBuildParsePPDURoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) > MaxPSDULen-FCSLen {
			payload = payload[:MaxPSDULen-FCSLen]
		}
		ppdu, err := BuildPPDU(payload)
		if err != nil {
			return false
		}
		got, err := ParsePPDU(ppdu)
		return err == nil && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildPPDUTooLong(t *testing.T) {
	_, err := BuildPPDU(make([]byte, MaxPSDULen-FCSLen+1))
	if !errors.Is(err, ErrBadLength) {
		t.Errorf("err = %v, want ErrBadLength", err)
	}
}

func TestParsePPDUErrors(t *testing.T) {
	good, err := BuildPPDU([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}

	t.Run("short", func(t *testing.T) {
		if _, err := ParsePPDU(good[:5]); !errors.Is(err, ErrShortFrame) {
			t.Errorf("err = %v, want ErrShortFrame", err)
		}
	})
	t.Run("bad SFD", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[PreambleLen] = 0x55
		if _, err := ParsePPDU(bad); !errors.Is(err, ErrBadSFD) {
			t.Errorf("err = %v, want ErrBadSFD", err)
		}
	})
	t.Run("corrupt payload fails FCS", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[PreambleLen+2] ^= 0xFF
		if _, err := ParsePPDU(bad); !errors.Is(err, ErrBadFCS) {
			t.Errorf("err = %v, want ErrBadFCS", err)
		}
	})
	t.Run("truncated PSDU", func(t *testing.T) {
		if _, err := ParsePPDU(good[:len(good)-1]); !errors.Is(err, ErrShortFrame) {
			t.Errorf("err = %v, want ErrShortFrame", err)
		}
	})
	t.Run("bad PHR length", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[PreambleLen+1] = 1 // below FCSLen
		if _, err := ParsePPDU(bad); !errors.Is(err, ErrBadLength) {
			t.Errorf("err = %v, want ErrBadLength", err)
		}
	})
}

func TestAirtimeMinimalPacket(t *testing.T) {
	// The paper's motivating computation (§II-B): the minimal 18-byte
	// ZigBee packet lasts 576 µs. 18 bytes total = 10-byte payload here.
	got := Airtime(10)
	if math.Abs(got-576e-6) > 1e-12 {
		t.Errorf("Airtime = %v, want 576µs", got)
	}
}
