package zigbee

import (
	"testing"
	"testing/quick"
)

func TestChipTableMatchesPaperTableI(t *testing.T) {
	// Table I of the paper spells out symbols 0 and F; they anchor the
	// whole table since 1-7 are rotations and 8-15 inversions.
	if got := ChipString(0); got != "11011001110000110101001000101110" {
		t.Errorf("symbol 0 chips = %s", got)
	}
	if got := ChipString(0xF); got != "11001001011000000111011110111000" {
		t.Errorf("symbol F chips = %s", got)
	}
}

func TestChipTableRotationStructure(t *testing.T) {
	// Symbols 1-7 are right cyclic shifts by 4 chips of the previous
	// symbol (IEEE 802.15.4 Table 73 structure).
	for s := byte(1); s < 8; s++ {
		prev, cur := ChipSequence(s-1), ChipSequence(s)
		for k := 0; k < ChipsPerSymbol; k++ {
			if cur[k] != prev[(k+ChipsPerSymbol-4)%ChipsPerSymbol] {
				t.Fatalf("symbol %d is not a 4-chip rotation of %d", s, s-1)
			}
		}
	}
}

func TestChipTableConjugateStructure(t *testing.T) {
	// Symbols 8-15 equal 0-7 with odd-indexed chips inverted, which
	// conjugates the OQPSK waveform (negated quadrature rail).
	for s := byte(8); s < NumSymbols; s++ {
		base, cur := ChipSequence(s-8), ChipSequence(s)
		for k := 0; k < ChipsPerSymbol; k++ {
			want := base[k]
			if k%2 == 1 {
				want ^= 1
			}
			if cur[k] != want {
				t.Fatalf("symbol %X chip %d = %d, want %d", s, k, cur[k], want)
			}
		}
	}
}

func TestChipSequencesDistinctAndBalanced(t *testing.T) {
	seen := make(map[string]byte, NumSymbols)
	for s := byte(0); s < NumSymbols; s++ {
		str := ChipString(s)
		if prev, dup := seen[str]; dup {
			t.Errorf("symbols %X and %X share a chip sequence", prev, s)
		}
		seen[str] = s
	}
}

func TestChipSequenceQuasiOrthogonality(t *testing.T) {
	// DSSS sequences within the same half-set differ in at least 12 of
	// 32 chip positions, the property the ML receiver relies on.
	for a := byte(0); a < NumSymbols; a++ {
		for b := a + 1; b < NumSymbols; b++ {
			sa, sb := ChipSequence(a), ChipSequence(b)
			dist := 0
			for k := range sa {
				if sa[k] != sb[k] {
					dist++
				}
			}
			if dist < 12 {
				t.Errorf("symbols %X,%X Hamming distance %d < 12", a, b, dist)
			}
		}
	}
}

func TestSpreadSymbols(t *testing.T) {
	chips := SpreadSymbols([]byte{6, 7})
	if len(chips) != 64 {
		t.Fatalf("len = %d", len(chips))
	}
	want6, want7 := ChipSequence(6), ChipSequence(7)
	for k := 0; k < 32; k++ {
		if chips[k] != want6[k] || chips[32+k] != want7[k] {
			t.Fatal("SpreadSymbols concatenation wrong")
		}
	}
}

func TestBytesSymbolsRoundTrip(t *testing.T) {
	for _, order := range []SymbolOrder{OrderMSBFirst, OrderLSBFirst} {
		f := func(data []byte) bool {
			syms := BytesToSymbols(data, order)
			if len(syms) != len(data)*2 {
				return false
			}
			back, err := SymbolsToBytes(syms, order)
			if err != nil || len(back) != len(data) {
				return false
			}
			for i := range data {
				if back[i] != data[i] {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("order %v: %v", order, err)
		}
	}
}

func TestBytesToSymbolsOrder(t *testing.T) {
	msb := BytesToSymbols([]byte{0x67}, OrderMSBFirst)
	if msb[0] != 6 || msb[1] != 7 {
		t.Errorf("MSB first = %v, want [6 7]", msb)
	}
	lsb := BytesToSymbols([]byte{0x67}, OrderLSBFirst)
	if lsb[0] != 7 || lsb[1] != 6 {
		t.Errorf("LSB first = %v, want [7 6]", lsb)
	}
}

func TestConstants(t *testing.T) {
	if SymbolDuration != 16e-6 {
		t.Errorf("SymbolDuration = %v, want 16µs", SymbolDuration)
	}
	if BitRate != 250e3 {
		t.Errorf("BitRate = %v, want 250kbps", BitRate)
	}
}
