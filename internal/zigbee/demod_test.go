package zigbee

import (
	"bytes"
	"math/rand"
	"testing"
)

func addNoise(x []complex128, sigma float64, rng *rand.Rand) []complex128 {
	out := make([]complex128, len(x))
	s := sigma / 1.4142135623730951
	for i, v := range x {
		out[i] = v + complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
	}
	return out
}

func TestDemodulateSymbolsNoiseless(t *testing.T) {
	m, err := NewModulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDemodulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	symbols := []byte{0, 5, 6, 7, 0xA, 0xE, 0xF, 3, 9, 1}
	x := m.ModulateSymbols(symbols)
	got, err := d.DemodulateSymbols(x, 0, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, symbols) {
		t.Errorf("demod = %v, want %v", got, symbols)
	}
}

func TestDemodulateSymbolsUnderNoise(t *testing.T) {
	// DSSS gives ~15 dB of spreading gain; at 0 dB per-sample SNR the
	// soft-correlation receiver should still be essentially error-free.
	m, _ := NewModulator(20e6)
	d, _ := NewDemodulator(20e6)
	rng := rand.New(rand.NewSource(99))
	symbols := make([]byte, 200)
	for i := range symbols {
		symbols[i] = byte(rng.Intn(16))
	}
	x := m.ModulateSymbols(symbols)
	noisy := addNoise(x, 1.0, rng) // signal power ≈ 1 → SNR ≈ 0 dB
	got, err := d.DemodulateSymbols(noisy, 0, len(symbols))
	if err != nil {
		t.Fatal(err)
	}
	errors := 0
	for i := range symbols {
		if got[i] != symbols[i] {
			errors++
		}
	}
	if errors > 2 {
		t.Errorf("%d/%d symbol errors at 0 dB SNR", errors, len(symbols))
	}
}

func TestSoftChipsInputValidation(t *testing.T) {
	d, _ := NewDemodulator(20e6)
	if _, err := d.SoftChips(make([]complex128, 10), 0, 32); err == nil {
		t.Error("expected error for short input")
	}
	if _, err := d.SoftChips(make([]complex128, 1000), -1, 1); err == nil {
		t.Error("expected error for negative offset")
	}
}

func TestReceiveFullFrameRoundTrip(t *testing.T) {
	for _, order := range []SymbolOrder{OrderMSBFirst, OrderLSBFirst} {
		m, _ := NewModulator(20e6)
		d, _ := NewDemodulator(20e6)
		payload := []byte("cross technology hello")
		ppdu, err := BuildPPDU(payload)
		if err != nil {
			t.Fatal(err)
		}
		x := m.ModulateBytes(ppdu, order)
		got, err := d.ReceiveAt(x, 0, order)
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("order %v: payload = %q, want %q", order, got, payload)
		}
	}
}

func TestReceiveWithSynchronization(t *testing.T) {
	m, _ := NewModulator(20e6)
	d, _ := NewDemodulator(20e6)
	rng := rand.New(rand.NewSource(7))
	payload := []byte{0xDE, 0xAD, 0xBE, 0xEF}
	ppdu, err := BuildPPDU(payload)
	if err != nil {
		t.Fatal(err)
	}
	sig := m.ModulateBytes(ppdu, OrderLSBFirst)

	// Embed the frame at an arbitrary offset in a noisy capture.
	const offset = 1234
	capture := make([]complex128, offset+len(sig)+500)
	for i := range capture {
		capture[i] = complex(rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
	}
	for i, v := range sig {
		capture[offset+i] += v
	}

	start, err := d.Synchronize(capture, 3000, OrderLSBFirst)
	if err != nil {
		t.Fatal(err)
	}
	if start != offset {
		t.Fatalf("sync offset = %d, want %d", start, offset)
	}
	got, err := d.ReceiveAt(capture, start, OrderLSBFirst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("payload = %v, want %v", got, payload)
	}
}

func TestSynchronizeRejectsNoise(t *testing.T) {
	d, _ := NewDemodulator(20e6)
	rng := rand.New(rand.NewSource(13))
	noise := make([]complex128, 20000)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	if _, err := d.Synchronize(noise, 5000, OrderLSBFirst); err == nil {
		t.Error("expected ErrNoSync on pure noise")
	}
}

func TestReceiveCorruptFrame(t *testing.T) {
	m, _ := NewModulator(20e6)
	d, _ := NewDemodulator(20e6)
	ppdu, err := BuildPPDU([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	x := m.ModulateBytes(ppdu, OrderLSBFirst)
	// Zero out a chunk of the PSDU region to corrupt it decisively.
	for i := len(x) - 2000; i < len(x)-1000; i++ {
		x[i] = 0
	}
	if _, err := d.ReceiveAt(x, 0, OrderLSBFirst); err == nil {
		t.Error("expected FCS failure on corrupted frame")
	}
}
