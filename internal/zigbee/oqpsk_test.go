package zigbee

import (
	"math"
	"testing"

	"symbee/internal/dsp"
)

func TestNewModulatorRates(t *testing.T) {
	tests := []struct {
		rate    float64
		wantSPS int
		wantErr bool
	}{
		{20e6, 10, false},
		{40e6, 20, false},
		{4e6, 2, false},
		{2e6, 0, true},  // 1 sample/slot is too coarse
		{21e6, 0, true}, // non-integer samples per slot
		{0, 0, true},
		{-5, 0, true},
	}
	for _, tt := range tests {
		m, err := NewModulator(tt.rate)
		if tt.wantErr {
			if err == nil {
				t.Errorf("rate %v: expected error", tt.rate)
			}
			continue
		}
		if err != nil {
			t.Errorf("rate %v: %v", tt.rate, err)
			continue
		}
		if m.SamplesPerSlot() != tt.wantSPS {
			t.Errorf("rate %v: sps = %d, want %d", tt.rate, m.SamplesPerSlot(), tt.wantSPS)
		}
		if m.SamplesPerSymbol() != tt.wantSPS*32 {
			t.Errorf("rate %v: samples/symbol = %d", tt.rate, m.SamplesPerSymbol())
		}
	}
}

func TestModulateChipsLengthAndRails(t *testing.T) {
	m, err := NewModulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	// One positive chip on each rail.
	x := m.ModulateChips([]byte{1, 1})
	if len(x) != 3*10 {
		t.Fatalf("len = %d, want 30", len(x))
	}
	// In-phase pulse occupies samples [0,20); quadrature [10,30).
	if real(x[5]) <= 0 || imag(x[5]) != 0 {
		t.Errorf("sample 5 = %v: I rail should be active, Q idle", x[5])
	}
	if imag(x[25]) <= 0 || real(x[25]) != 0 {
		t.Errorf("sample 25 = %v: Q rail should be active, I idle", x[25])
	}
	// Peak of the in-phase half-sine at its center.
	if math.Abs(real(x[10])-1) > 1e-12 {
		t.Errorf("I pulse peak = %v, want 1", real(x[10]))
	}
}

func TestModulateChipPolarity(t *testing.T) {
	m, err := NewModulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	pos := m.ModulateChips([]byte{1})
	neg := m.ModulateChips([]byte{0})
	for i := range pos {
		if real(pos[i]) != -real(neg[i]) {
			t.Fatalf("chip polarity not antisymmetric at sample %d", i)
		}
	}
}

func TestModulatedSignalPower(t *testing.T) {
	m, err := NewModulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	x := m.ModulateSymbols([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	p := dsp.Power(x)
	// Two offset half-sine rails average sin^2 = 0.5 each → power ≈ 1.
	if p < 0.9 || p > 1.1 {
		t.Errorf("mean power = %v, want ≈1", p)
	}
}

func TestSymbolPairStablePhase(t *testing.T) {
	// The paper's central PHY observation (Figs. 6-8): symbol pairs
	// (6,7) and (E,F) contain a 5 µs continuous sinusoid that
	// cross-observes as an 84-sample stable run at ±4π/5, and the two
	// runs have opposite signs.
	m, err := NewModulator(20e6)
	if err != nil {
		t.Fatal(err)
	}
	stable := func(symbols []byte) (length int, value float64) {
		x := m.ModulateSymbols(symbols)
		ph := dsp.PhaseDiffStream(x, 16)
		start, n := dsp.LongestStableRun(ph, 0.05)
		return n, ph[start]
	}

	len67, val67 := stable([]byte{6, 7})
	lenEF, valEF := stable([]byte{0xE, 0xF})
	if len67 < 84 {
		t.Errorf("(6,7) stable run = %d, want >= 84", len67)
	}
	if lenEF < 84 {
		t.Errorf("(E,F) stable run = %d, want >= 84", lenEF)
	}
	want := 4 * math.Pi / 5
	if math.Abs(math.Abs(val67)-want) > 1e-6 {
		t.Errorf("(6,7) stable phase = %v, want ±4π/5", val67)
	}
	if math.Abs(math.Abs(valEF)-want) > 1e-6 {
		t.Errorf("(E,F) stable phase = %v, want ±4π/5", valEF)
	}
	if val67*valEF >= 0 {
		t.Errorf("(6,7) and (E,F) phases should have opposite signs: %v vs %v", val67, valEF)
	}
}

func TestSymbolPairStablePhase40MHz(t *testing.T) {
	// §VI-B: at 40 Msps the lag doubles to 32 and the stable run doubles
	// to 168 values while the phase stays ±4π/5.
	m, err := NewModulator(40e6)
	if err != nil {
		t.Fatal(err)
	}
	x := m.ModulateSymbols([]byte{6, 7})
	ph := dsp.PhaseDiffStream(x, 32)
	start, n := dsp.LongestStableRun(ph, 0.05)
	if n < 168 {
		t.Errorf("stable run = %d, want >= 168", n)
	}
	if math.Abs(math.Abs(ph[start])-4*math.Pi/5) > 1e-6 {
		t.Errorf("stable phase = %v, want ±4π/5", ph[start])
	}
}
