package coding

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func dataWord(v int) [HammingDataBits]byte {
	return [HammingDataBits]byte{byte(v >> 3 & 1), byte(v >> 2 & 1), byte(v >> 1 & 1), byte(v & 1)}
}

func TestHammingRoundTripAllDataWords(t *testing.T) {
	for v := 0; v < 16; v++ {
		data := dataWord(v)
		code := HammingEncode(data)
		got, corrected := HammingDecode(code)
		if corrected {
			t.Errorf("data %04b: clean codeword reported a correction", v)
		}
		if got != data {
			t.Errorf("data %04b: decode = %v", v, got)
		}
	}
}

func TestHammingCorrectsEverySingleBitError(t *testing.T) {
	for v := 0; v < 16; v++ {
		data := dataWord(v)
		code := HammingEncode(data)
		for pos := 0; pos < 7; pos++ {
			bad := code
			bad[pos] ^= 1
			got, corrected := HammingDecode(bad)
			if !corrected {
				t.Errorf("data %04b pos %d: correction not reported", v, pos)
			}
			if got != data {
				t.Errorf("data %04b pos %d: decode = %v, want %v", v, pos, got, data)
			}
		}
	}
}

func TestHammingMinimumDistanceIsThree(t *testing.T) {
	words := make([][HammingCodeBits]byte, 0, 16)
	for v := 0; v < 16; v++ {
		words = append(words, HammingEncode(dataWord(v)))
	}
	for a := 0; a < 16; a++ {
		for b := a + 1; b < 16; b++ {
			dist := 0
			for k := 0; k < 7; k++ {
				if words[a][k] != words[b][k] {
					dist++
				}
			}
			if dist < 3 {
				t.Errorf("codewords %d,%d distance %d < 3", a, b, dist)
			}
		}
	}
}

func TestHammingBitsStreamRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		bits := make([]byte, len(raw))
		for i, b := range raw {
			bits[i] = b & 1
		}
		coded := HammingEncodeBits(bits)
		if len(coded)%7 != 0 {
			return false
		}
		decoded, corrections, err := HammingDecodeBits(coded)
		if err != nil || corrections != 0 {
			return false
		}
		// Decoded includes padding to a multiple of 4.
		if len(decoded) < len(bits) {
			return false
		}
		return bytes.Equal(decoded[:len(bits)], bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingDecodeBitsBadLength(t *testing.T) {
	if _, _, err := HammingDecodeBits(make([]byte, 6)); err == nil {
		t.Error("expected error for length not multiple of 7")
	}
}

func TestHammingStreamCorrectsScatteredErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bits := make([]byte, 400)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	coded := HammingEncodeBits(bits)
	// Flip one bit in every codeword.
	for i := 0; i < len(coded); i += 7 {
		coded[i+rng.Intn(7)] ^= 1
	}
	decoded, corrections, err := HammingDecodeBits(coded)
	if err != nil {
		t.Fatal(err)
	}
	if corrections != len(coded)/7 {
		t.Errorf("corrections = %d, want %d", corrections, len(coded)/7)
	}
	if !bytes.Equal(decoded[:len(bits)], bits) {
		t.Error("scattered single errors not fully corrected")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, depth := range []int{1, 2, 7, 10} {
		n := depth * 9
		bits := make([]byte, n)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		il, err := Interleave(bits, depth)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Deinterleave(il, depth)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, bits) {
			t.Errorf("depth %d: round trip failed", depth)
		}
	}
	if _, err := Interleave(make([]byte, 5), 2); err == nil {
		t.Error("expected error for misaligned length")
	}
	if _, err := Deinterleave(make([]byte, 5), 2); err == nil {
		t.Error("expected error for misaligned length")
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// A burst of `depth` consecutive errors in the interleaved stream
	// must land in distinct codewords after deinterleaving.
	const depth = 7
	bits := make([]byte, depth*8)
	il, err := Interleave(bits, depth)
	if err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 10+depth; i++ {
		il[i] ^= 1
	}
	back, err := Deinterleave(il, depth)
	if err != nil {
		t.Fatal(err)
	}
	// Count errors per 7-bit codeword.
	for cw := 0; cw+7 <= len(back); cw += 7 {
		errs := 0
		for k := 0; k < 7; k++ {
			if back[cw+k] != 0 {
				errs++
			}
		}
		if errs > 1 {
			t.Errorf("codeword %d got %d burst errors; interleaver should spread them", cw/7, errs)
		}
	}
}

func TestBitsBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		bits := BytesToBits(data)
		if len(bits) != len(data)*8 {
			return false
		}
		back, err := BitsToBytes(bits)
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := BitsToBytes(make([]byte, 7)); err == nil {
		t.Error("expected error for length not multiple of 8")
	}
	// MSB-first convention.
	bits := BytesToBits([]byte{0x80})
	if bits[0] != 1 || bits[7] != 0 {
		t.Errorf("MSB-first violated: %v", bits)
	}
}
