// Package coding provides the link-layer codes used around SymBee: the
// Hamming(7,4) single-error-correcting code the paper applies in the
// interference study (Fig. 21), a block bit-interleaver that spreads
// burst errors across codewords, and bit/byte packing helpers.
package coding

import "fmt"

// Hamming(7,4) in systematic form: data bits d1..d4, parity bits
//
//	p1 = d1 ⊕ d2 ⊕ d4
//	p2 = d1 ⊕ d3 ⊕ d4
//	p3 = d2 ⊕ d3 ⊕ d4
//
// laid out in the classic positions [p1 p2 d1 p3 d2 d3 d4] so the
// syndrome directly indexes the flipped position.
const (
	// HammingDataBits is the number of data bits per codeword.
	HammingDataBits = 4
	// HammingCodeBits is the number of coded bits per codeword.
	HammingCodeBits = 7
)

// HammingEncode maps 4 data bits to a 7-bit codeword. Bits are one byte
// each, value 0 or 1; bit values are reduced modulo 2. The fixed-size
// array signature makes malformed lengths a compile error rather than a
// runtime fault.
func HammingEncode(data [HammingDataBits]byte) [HammingCodeBits]byte {
	d1, d2, d3, d4 := data[0]&1, data[1]&1, data[2]&1, data[3]&1
	p1 := d1 ^ d2 ^ d4
	p2 := d1 ^ d3 ^ d4
	p3 := d2 ^ d3 ^ d4
	return [HammingCodeBits]byte{p1, p2, d1, p3, d2, d3, d4}
}

// HammingDecode corrects up to one bit error in a 7-bit codeword and
// returns the 4 data bits along with whether a correction was applied.
// Two-bit errors are miscorrected, as is inherent to Hamming(7,4).
func HammingDecode(code [HammingCodeBits]byte) (data [HammingDataBits]byte, corrected bool) {
	var c [HammingCodeBits]byte
	for i, b := range code {
		c[i] = b & 1
	}
	s1 := c[0] ^ c[2] ^ c[4] ^ c[6]
	s2 := c[1] ^ c[2] ^ c[5] ^ c[6]
	s3 := c[3] ^ c[4] ^ c[5] ^ c[6]
	syndrome := int(s1) | int(s2)<<1 | int(s3)<<2
	if syndrome != 0 {
		c[syndrome-1] ^= 1
		corrected = true
	}
	return [HammingDataBits]byte{c[2], c[4], c[5], c[6]}, corrected
}

// HammingEncodeBits encodes an arbitrary bit string, zero-padding the
// final block. The returned stream length is a multiple of 7.
func HammingEncodeBits(bits []byte) []byte {
	out := make([]byte, 0, (len(bits)+3)/4*HammingCodeBits)
	var block [HammingDataBits]byte
	for i := 0; i < len(bits); i += HammingDataBits {
		for j := range block {
			if i+j < len(bits) {
				block[j] = bits[i+j] & 1
			} else {
				block[j] = 0
			}
		}
		cw := HammingEncode(block)
		out = append(out, cw[:]...)
	}
	return out
}

// HammingDecodeBits decodes a stream of 7-bit codewords produced by
// HammingEncodeBits and returns the data bits (including any padding)
// plus the number of corrected codewords. The input length must be a
// multiple of 7.
func HammingDecodeBits(bits []byte) (data []byte, corrections int, err error) {
	if len(bits)%HammingCodeBits != 0 {
		return nil, 0, fmt.Errorf("coding: coded length %d is not a multiple of %d", len(bits), HammingCodeBits)
	}
	data = make([]byte, 0, len(bits)/HammingCodeBits*HammingDataBits)
	for i := 0; i < len(bits); i += HammingCodeBits {
		var cw [HammingCodeBits]byte
		copy(cw[:], bits[i:i+HammingCodeBits])
		block, corrected := HammingDecode(cw)
		if corrected {
			corrections++
		}
		data = append(data, block[:]...)
	}
	return data, corrections, nil
}

// Interleave performs block interleaving with the given depth: bit i
// goes to position (i mod depth)·rows + (i div depth), spreading a burst
// of up to depth consecutive errors across different codewords. The
// input length must be a multiple of depth.
func Interleave(bits []byte, depth int) ([]byte, error) {
	if depth <= 0 || len(bits)%depth != 0 {
		return nil, fmt.Errorf("coding: length %d not a multiple of depth %d", len(bits), depth)
	}
	rows := len(bits) / depth
	out := make([]byte, len(bits))
	for i, b := range bits {
		out[(i%depth)*rows+i/depth] = b
	}
	return out, nil
}

// Deinterleave inverts Interleave with the same depth.
func Deinterleave(bits []byte, depth int) ([]byte, error) {
	if depth <= 0 || len(bits)%depth != 0 {
		return nil, fmt.Errorf("coding: length %d not a multiple of depth %d", len(bits), depth)
	}
	rows := len(bits) / depth
	out := make([]byte, len(bits))
	for i := range bits {
		out[i] = bits[(i%depth)*rows+i/depth]
	}
	return out, nil
}

// BytesToBits unpacks bytes MSB-first into one bit per byte.
func BytesToBits(data []byte) []byte {
	bits := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, b>>i&1)
		}
	}
	return bits
}

// BitsToBytes packs bits (MSB-first) into bytes; the bit count must be a
// multiple of 8.
func BitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("coding: bit count %d is not a multiple of 8", len(bits))
	}
	data := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b&1 == 1 {
			data[i/8] |= 1 << (7 - i%8)
		}
	}
	return data, nil
}
