package channel

import (
	"fmt"
	"math/rand"
)

// Scenario bundles the radio environment of one evaluation site. The six
// presets mirror the paper's Fig. 15 sites; parameter values are
// calibrated so the simulated SNR/interference statistics reproduce the
// throughput and BER trends of Figs. 13-14 (see EXPERIMENTS.md for the
// calibration record).
type Scenario struct {
	// Name identifies the site ("outdoor", "library", ...).
	Name string
	// Budget is the distance → SNR link budget.
	Budget LinkBudget
	// Interference is the background WiFi traffic at the receiver.
	Interference InterferenceConfig
	// Multipath, when true, applies an indoor tapped-delay-line channel
	// with Rician factor FadingK on the main tap; otherwise a flat
	// block-fading gain with FadingK is used (outdoor).
	Multipath bool
	// FadingK is the Rician K-factor of the dominant path.
	FadingK float64
}

// Config materializes a channel Config for one packet at the given
// distance (meters), TX power (dBm) and wall count, drawing the
// shadowing realization from rng.
func (s Scenario) Config(sampleRate, distance, txPowerDBm float64, walls int, rng *rand.Rand) Config {
	cfg := Config{
		SampleRate:   sampleRate,
		SNRdB:        s.Budget.DrawSNR(distance, txPowerDBm, walls, rng),
		FreqOffset:   DefaultFreqOffset,
		Interference: s.Interference,
		Pad:          1024,
	}
	if s.Multipath {
		cfg.Multipath = TypicalIndoorMultipath(sampleRate, s.FadingK)
	} else {
		cfg.BlockFading = true
		cfg.RicianK = s.FadingK
	}
	return cfg
}

// DefaultFreqOffset is the carrier offset used by scenario configs:
// ZigBee channel 13 (2.415 GHz) observed by WiFi channel 1 (2.412 GHz),
// i.e. +3 MHz — the canonical Appendix B case.
const DefaultFreqOffset = 3e6

// Preset scenario names.
const (
	Outdoor   = "outdoor"
	Library   = "library"
	Classroom = "classroom"
	Dormitory = "dormitory"
	Office    = "office"
	Mall      = "mall"
	// OfficeMidnight is the Fig. 19 variant: office multipath without
	// daytime WiFi traffic.
	OfficeMidnight = "office-midnight"
)

// Presets returns the paper's six evaluation scenarios in presentation
// order (Fig. 15), freshly allocated so callers may tweak them.
func Presets() []Scenario {
	out := make([]Scenario, 0, 6)
	for _, name := range []string{Outdoor, Library, Classroom, Dormitory, Office, Mall} {
		if s, ok := preset(name); ok {
			out = append(out, s)
		}
	}
	return out
}

// ByName returns the preset with the given name.
func ByName(name string) (Scenario, error) {
	if s, ok := preset(name); ok {
		return s, nil
	}
	return Scenario{}, fmt.Errorf("channel: unknown scenario %q", name)
}

// preset materializes one named scenario; ok is false for a name that
// is not one of the preset constants.
func preset(name string) (Scenario, bool) {
	switch name {
	case Outdoor:
		// Open field: near-free-space decay, strong LOS, no WiFi around.
		return Scenario{
			Name:    name,
			Budget:  LinkBudget{SNR1m: 34, Exponent: 2.0, ShadowSigma: 2, WallLoss: 6},
			FadingK: 15,
		}, true
	case Classroom:
		// Large room, campus WiFi mostly idle during lectures.
		return Scenario{
			Name:   name,
			Budget: LinkBudget{SNR1m: 33.5, Exponent: 2.1, ShadowSigma: 2.5, WallLoss: 6},
			Interference: InterferenceConfig{
				DutyCycle: 0.03, BurstDuration: 400e-6, INRdB: 9,
			},
			Multipath: true,
			FadingK:   10,
		}, true
	case Office:
		// Cubicles and walls; most machines are wired, light WiFi.
		return Scenario{
			Name:   name,
			Budget: LinkBudget{SNR1m: 33.5, Exponent: 2.15, ShadowSigma: 2.5, WallLoss: 4},
			Interference: InterferenceConfig{
				DutyCycle: 0.08, BurstDuration: 400e-6, INRdB: 9,
			},
			Multipath: true,
			FadingK:   9,
		}, true
	case Dormitory:
		// More private APs and users than the office.
		return Scenario{
			Name:   name,
			Budget: LinkBudget{SNR1m: 34.5, Exponent: 2.2, ShadowSigma: 3, WallLoss: 6},
			Interference: InterferenceConfig{
				DutyCycle: 0.12, BurstDuration: 400e-6, INRdB: 10,
			},
			Multipath: true,
			FadingK:   8,
		}, true
	case Library:
		// Everyone on campus WiFi: heaviest interference of the six.
		return Scenario{
			Name:   name,
			Budget: LinkBudget{SNR1m: 35, Exponent: 2.2, ShadowSigma: 3, WallLoss: 6},
			Interference: InterferenceConfig{
				DutyCycle: 0.25, BurstDuration: 500e-6, INRdB: 9,
			},
			Multipath: true,
			FadingK:   8,
		}, true
	case Mall:
		// Shopper blockage (low K, higher shadowing) plus store APs.
		return Scenario{
			Name:   name,
			Budget: LinkBudget{SNR1m: 33.4, Exponent: 2.25, ShadowSigma: 4, WallLoss: 6},
			Interference: InterferenceConfig{
				DutyCycle: 0.22, BurstDuration: 500e-6, INRdB: 10,
			},
			Multipath: true,
			FadingK:   6,
		}, true
	case OfficeMidnight:
		s, ok := preset(Office)
		s.Name = OfficeMidnight
		s.Interference = InterferenceConfig{}
		return s, ok
	}
	return Scenario{}, false
}

// MobilityPreset returns the Fig. 23 track-and-field configuration for a
// sender moving at speedMps: the faster the carrier, the lower the
// Rician K (more body scattering) and the more frequent the blockage
// episodes from the swinging bag/body/bicycle frame.
func MobilityPreset(speedMps float64) MobilityConfig {
	return MobilityConfig{
		SpeedMps:         speedMps,
		RicianK:          6 / (1 + speedMps/2),
		BlockageRate:     0.8 + 0.1*speedMps,
		BlockageLossDB:   10,
		BlockageDuration: 0.1,
	}
}
