package channel

import (
	"math"
	"math/rand"
	"testing"

	"symbee/internal/dsp"
)

func constantSignal(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = 1
	}
	return x
}

func TestMediumSNRAndPad(t *testing.T) {
	cfg := Config{SampleRate: 20e6, SNRdB: 10, Pad: 500}
	m, err := NewMedium(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	x := constantSignal(100000)
	y := m.Transmit(x)
	if len(y) != len(x)+1000 {
		t.Fatalf("len = %d, want %d", len(y), len(x)+1000)
	}
	if m.SignalStart() != 500 {
		t.Errorf("SignalStart = %d", m.SignalStart())
	}
	// Pad regions are noise-only (unit power), signal region has
	// signal+noise ≈ 10^(10/10)+1 = 11.
	padPower := dsp.Power(y[:500])
	sigPower := dsp.Power(y[500 : len(y)-500])
	if math.Abs(padPower-1) > 0.3 {
		t.Errorf("pad power = %v, want ≈1", padPower)
	}
	if math.Abs(sigPower-11) > 1 {
		t.Errorf("signal region power = %v, want ≈11", sigPower)
	}
	// Input must be untouched.
	if x[0] != 1 {
		t.Error("Transmit modified its input")
	}
}

func TestMediumValidation(t *testing.T) {
	if _, err := NewMedium(Config{SampleRate: 0}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected error for zero sample rate")
	}
	if _, err := NewMedium(Config{SampleRate: 20e6, Pad: -1}, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected error for negative pad")
	}
}

func TestMediumCFO(t *testing.T) {
	cfg := Config{SampleRate: 20e6, SNRdB: 40, FreqOffset: 3e6}
	m, err := NewMedium(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	y := m.Transmit(constantSignal(4096))
	spec := dsp.SpectrumPower(y[:4096])
	best := 0
	for k, p := range spec {
		if p > spec[best] {
			best = k
		}
	}
	want := int(math.Round(3e6 / 20e6 * 4096))
	if best < want-2 || best > want+2 {
		t.Errorf("peak bin = %d, want ≈%d", best, want)
	}
}

func TestMediumInterferenceDutyCycle(t *testing.T) {
	cfg := Config{
		SampleRate: 20e6,
		SNRdB:      -100, // bury the signal so only interference+noise remains
		Interference: InterferenceConfig{
			DutyCycle:     0.3,
			BurstDuration: 300e-6,
			INRdB:         20,
		},
	}
	m, err := NewMedium(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	y := m.Transmit(constantSignal(2_000_000)) // 100 ms of air
	// Count samples whose instantaneous power indicates a burst
	// (threshold halfway between noise ≈1 and burst ≈100 in dB terms).
	busy := 0
	for _, v := range y {
		if real(v)*real(v)+imag(v)*imag(v) > 10 {
			busy++
		}
	}
	duty := float64(busy) / float64(len(y))
	if duty < 0.15 || duty > 0.45 {
		t.Errorf("observed duty cycle = %v, want ≈0.3", duty)
	}
}

func TestMediumBlockFadingVariesAcrossPackets(t *testing.T) {
	cfg := Config{SampleRate: 20e6, SNRdB: 30, BlockFading: true, RicianK: 0}
	m, err := NewMedium(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	x := constantSignal(5000)
	p1 := dsp.Power(m.Transmit(x))
	different := false
	for i := 0; i < 10; i++ {
		if p2 := dsp.Power(m.Transmit(x)); math.Abs(p2-p1) > 0.05*p1 {
			different = true
			break
		}
	}
	if !different {
		t.Error("Rayleigh block fading should vary packet powers")
	}
}

func TestMediumMobilityTrackEvolves(t *testing.T) {
	cfg := Config{
		SampleRate: 20e6,
		SNRdB:      40,
		Mobility: &MobilityConfig{
			SpeedMps:         4.2,
			RicianK:          2,
			BlockageRate:     5,
			BlockageLossDB:   10,
			BlockageDuration: 0.01,
		},
	}
	m, err := NewMedium(cfg, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	// Over 50 ms the gain must change noticeably within the capture.
	y := m.Transmit(constantSignal(1_000_000))
	first := dsp.Power(y[:10000])
	varied := false
	for off := 100000; off+10000 < len(y); off += 100000 {
		if p := dsp.Power(y[off : off+10000]); math.Abs(p-first) > 0.2*first {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("mobility gain track did not evolve over 50 ms")
	}
}

func TestMixAtSINR(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sig := make([]complex128, 10000)
	inter := make([]complex128, 10000)
	for i := range sig {
		sig[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		inter[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	out := MixAtSINR(sig, inter, 0, 0) // 0 dB: equal powers
	// Mixed power ≈ signal + interference = 2 × signal power.
	if ratio := dsp.Power(out) / dsp.Power(sig); math.Abs(ratio-2) > 0.1 {
		t.Errorf("power ratio = %v, want 2", ratio)
	}
	// Inputs untouched.
	if dsp.Power(sig) == 0 || &out[0] == &sig[0] {
		t.Error("MixAtSINR must copy")
	}
	// Degenerate inputs pass through.
	out2 := MixAtSINR(sig, nil, 0, 0)
	for i := range sig {
		if out2[i] != sig[i] {
			t.Fatal("empty interference should return copy of signal")
		}
	}
}

func TestScenarioPresets(t *testing.T) {
	ps := Presets()
	if len(ps) != 6 {
		t.Fatalf("presets = %d, want 6", len(ps))
	}
	names := map[string]bool{}
	for _, s := range ps {
		names[s.Name] = true
		cfg := s.Config(20e6, 10, 0, 0, rand.New(rand.NewSource(7)))
		if cfg.SampleRate != 20e6 || cfg.FreqOffset != DefaultFreqOffset {
			t.Errorf("%s: bad config %+v", s.Name, cfg)
		}
		if _, err := NewMedium(cfg, rand.New(rand.NewSource(8))); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	for _, want := range []string{Outdoor, Library, Classroom, Dormitory, Office, Mall} {
		if !names[want] {
			t.Errorf("missing preset %s", want)
		}
	}
	if _, err := ByName("submarine"); err == nil {
		t.Error("expected error for unknown scenario")
	}
	om, err := ByName(OfficeMidnight)
	if err != nil {
		t.Fatal(err)
	}
	if om.Interference.DutyCycle != 0 {
		t.Error("office-midnight should have no interference")
	}
}

func TestOutdoorBeatsMallSNR(t *testing.T) {
	// Sanity: at 25 m the outdoor mean SNR must exceed the mall's, or
	// the Fig. 13 ordering cannot come out right.
	out, _ := ByName(Outdoor)
	mall, _ := ByName(Mall)
	if out.Budget.MeanSNR(25, 0, 0) <= mall.Budget.MeanSNR(25, 0, 0) {
		t.Error("outdoor SNR should exceed mall SNR at 25 m")
	}
}

func TestMobilityPresetMonotone(t *testing.T) {
	walk := MobilityPreset(1.52)
	bike := MobilityPreset(4.16)
	if walk.RicianK <= bike.RicianK {
		t.Error("K should fall with speed")
	}
	if walk.BlockageRate >= bike.BlockageRate {
		t.Error("blockage rate should rise with speed")
	}
}
