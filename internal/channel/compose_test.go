package channel_test

import (
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/wifi"
)

// composeConfig is the walking-sender-in-WiFi-traffic scenario: mobility
// fading AND background interference active in one Medium, plus the
// canonical carrier offset and padding — every independent impairment
// the channel package models, composed.
func composeConfig(p core.Params, mob *channel.MobilityConfig) channel.Config {
	return channel.Config{
		SampleRate: p.SampleRate,
		SNRdB:      22,
		FreqOffset: channel.DefaultFreqOffset,
		Mobility:   mob,
		Interference: channel.InterferenceConfig{
			DutyCycle:     0.15,
			BurstDuration: 300e-6,
			INRdB:         2,
		},
		Pad: 1500,
	}
}

func composeMobility() *channel.MobilityConfig {
	mob := channel.MobilityPreset(1.5) // walking pace
	return &mob
}

// transmitFrame pushes one SymBee frame through the medium and reports
// whether it decodes.
func transmitFrame(t *testing.T, med *channel.Medium, phy *core.Link, dec *core.Decoder, seq byte) bool {
	t.Helper()
	sig, err := phy.TransmitFrame(&core.Frame{Seq: seq, Data: []byte("compose!")})
	if err != nil {
		t.Fatal(err)
	}
	capture := med.Transmit(sig)
	frame, err := dec.DecodeFrame(phy.Phases(capture))
	if err != nil {
		return false
	}
	return frame.Seq == seq
}

// TestMobilityInterferenceCompose runs the composed scenario end-to-end:
// with walking-pace mobility and 15% duty-cycle WiFi interference active
// simultaneously, the link still delivers most frames — the impairments
// compose without breaking the decoder or each other.
func TestMobilityInterferenceCompose(t *testing.T) {
	p := core.Params20()
	phy, err := core.NewLink(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewDecoder(p, wifi.CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	med, err := channel.NewMedium(composeConfig(p, composeMobility()), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	const frames = 20
	delivered := 0
	for i := 0; i < frames; i++ {
		if transmitFrame(t, med, phy, dec, byte(i)) {
			delivered++
		}
	}
	t.Logf("composed mobility+interference: %d/%d delivered", delivered, frames)
	if delivered < frames*3/4 {
		t.Errorf("composed channel delivered %d/%d frames, want ≥ %d", delivered, frames, frames*3/4)
	}
	if delivered == frames {
		// The blockage telegraph and interference bursts should cost
		// something over 20 transmissions at walking pace; all-delivered
		// is legal but worth flagging if the impairments silently became
		// no-ops. Verified below by construction instead of by loss.
		t.Log("note: composed channel delivered everything (seed-dependent)")
	}
}

// TestComposeDeterministic pins the seeded-reproducibility contract with
// both impairments enabled: the same seed yields the same capture, a
// different seed a different one.
func TestComposeDeterministic(t *testing.T) {
	p := core.Params20()
	phy, err := core.NewLink(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := phy.TransmitFrame(&core.Frame{Seq: 1, Data: []byte("determ")})
	if err != nil {
		t.Fatal(err)
	}
	capture := func(seed int64) []complex128 {
		med, err := channel.NewMedium(composeConfig(p, composeMobility()), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return med.Transmit(sig)
	}
	a, b, c := capture(5), capture(5), capture(6)
	if len(a) != len(b) {
		t.Fatalf("same seed, different capture lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, captures diverge at sample %d", i)
		}
	}
	same := true
	for i := range a {
		if i < len(c) && a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical captures")
	}
}

// TestComposeImpairmentsAct verifies each composed impairment actually
// modifies the capture: dropping mobility or interference from the same
// seeded config changes the output, so neither is silently disabled by
// the other's presence.
func TestComposeImpairmentsAct(t *testing.T) {
	p := core.Params20()
	phy, err := core.NewLink(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := phy.TransmitFrame(&core.Frame{Seq: 2, Data: []byte("active")})
	if err != nil {
		t.Fatal(err)
	}
	capture := func(cfg channel.Config) []complex128 {
		med, err := channel.NewMedium(cfg, rand.New(rand.NewSource(3)))
		if err != nil {
			t.Fatal(err)
		}
		return med.Transmit(sig)
	}
	full := capture(composeConfig(p, composeMobility()))

	noMob := composeConfig(p, nil)
	noInf := composeConfig(p, composeMobility())
	noInf.Interference = channel.InterferenceConfig{}

	for _, tc := range []struct {
		name string
		got  []complex128
	}{
		{"without mobility", capture(noMob)},
		{"without interference", capture(noInf)},
	} {
		if len(tc.got) != len(full) {
			continue // different length already proves the impairment acts
		}
		same := true
		for i := range full {
			if full[i] != tc.got[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s the capture is identical: impairment is a no-op in composition", tc.name)
		}
	}
}
