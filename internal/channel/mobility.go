package channel

import (
	"math"
	"math/rand"
)

// Wavelength24GHz is the carrier wavelength in the 2.4 GHz ISM band.
const Wavelength24GHz = 0.125

// MobilityConfig models a moving ZigBee sender carried by a person or
// bicycle (Fig. 23): Doppler-rate fading plus intermittent body/bag
// blockage.
type MobilityConfig struct {
	// SpeedMps is the sender speed in meters/second.
	SpeedMps float64
	// RicianK of the fading while unblocked (the moving body scatters,
	// so this is lower than for a static LOS link).
	RicianK float64
	// BlockageRate is the mean number of blockage episodes per second.
	BlockageRate float64
	// BlockageLossDB attenuates the signal during a blockage episode.
	BlockageLossDB float64
	// BlockageDuration is the mean blockage episode length in seconds.
	BlockageDuration float64
}

// mobilityTrack realizes a continuous fading gain across transmissions:
// complex gains drawn at channel-coherence knots and interpolated
// between them, with an on/off blockage telegraph process on top.
type mobilityTrack struct {
	cfg        MobilityConfig
	sampleRate float64
	rng        *rand.Rand

	knotInterval int // samples between fading knots
	prevGain     complex128
	nextGain     complex128
	knotPos      int // sample position within the current knot interval

	blocked      bool
	blockSamples int // samples remaining in the current blockage state
}

func newMobilityTrack(cfg MobilityConfig, sampleRate float64, rng *rand.Rand) *mobilityTrack {
	fd := cfg.SpeedMps / Wavelength24GHz // max Doppler shift, Hz
	coherence := 1.0                     // seconds; effectively static if no speed
	if fd > 0 {
		coherence = 0.423 / fd
	}
	// Four knots per coherence time give a smooth track.
	ki := int(coherence / 4 * sampleRate)
	if ki < 1 {
		ki = 1
	}
	t := &mobilityTrack{
		cfg:          cfg,
		sampleRate:   sampleRate,
		rng:          rng,
		knotInterval: ki,
		prevGain:     RicianGain(cfg.RicianK, rng),
		nextGain:     RicianGain(cfg.RicianK, rng),
	}
	t.blockSamples = t.drawStateLen(false)
	return t
}

func (t *mobilityTrack) drawStateLen(blocked bool) int {
	var mean float64
	if blocked {
		mean = t.cfg.BlockageDuration
	} else {
		if t.cfg.BlockageRate <= 0 {
			return math.MaxInt64 / 2
		}
		mean = 1 / t.cfg.BlockageRate
	}
	if mean <= 0 {
		mean = 1e-3
	}
	n := int(t.rng.ExpFloat64() * mean * t.sampleRate)
	if n < 1 {
		n = 1
	}
	return n
}

// apply multiplies sig in place by the evolving fading gain. The track
// persists across calls, so consecutive packets see a continuous
// channel.
func (t *mobilityTrack) apply(sig []complex128) {
	blockAmp := complex(math.Sqrt(math.Pow(10, -t.cfg.BlockageLossDB/10)), 0)
	for i := range sig {
		frac := float64(t.knotPos) / float64(t.knotInterval)
		g := t.prevGain*complex(1-frac, 0) + t.nextGain*complex(frac, 0)
		if t.blocked {
			g *= blockAmp
		}
		sig[i] *= g

		t.knotPos++
		if t.knotPos >= t.knotInterval {
			t.knotPos = 0
			t.prevGain = t.nextGain
			t.nextGain = RicianGain(t.cfg.RicianK, t.rng)
		}
		t.blockSamples--
		if t.blockSamples <= 0 {
			t.blocked = !t.blocked
			t.blockSamples = t.drawStateLen(t.blocked)
		}
	}
}
