package channel

import (
	"math"
	"math/rand"

	"symbee/internal/dsp"
	"symbee/internal/wifi"
)

// InterferenceConfig describes the ambient WiFi traffic in a scenario as
// an on/off burst process.
type InterferenceConfig struct {
	// DutyCycle is the long-run fraction of airtime occupied by WiFi
	// frames (0 disables interference).
	DutyCycle float64
	// BurstDuration is the mean WiFi frame airtime in seconds.
	BurstDuration float64
	// INRdB is the interference-to-noise ratio of one burst at the
	// receiver in dB (noise floor is unit power).
	INRdB float64
}

// Interferer mixes WiFi bursts into captures according to a config.
type Interferer struct {
	cfg        InterferenceConfig
	sampleRate float64
	tx         *wifi.Transmitter
	rng        *rand.Rand
	frame      []complex128 // cached template burst, re-scaled per mix
}

// NewInterferer returns an interferer; it is a no-op when cfg.DutyCycle
// or cfg.BurstDuration is zero.
func NewInterferer(cfg InterferenceConfig, sampleRate float64, rng *rand.Rand) (*Interferer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	in := &Interferer{cfg: cfg, sampleRate: sampleRate, tx: wifi.NewTransmitter(rng), rng: rng}
	if cfg.DutyCycle > 0 && cfg.BurstDuration > 0 {
		frame, err := in.tx.FrameForDuration(cfg.BurstDuration)
		if err != nil {
			return nil, err
		}
		in.frame = frame
	}
	return in, nil
}

// MixInto overlays WiFi bursts onto x. Burst arrivals follow a geometric
// (memoryless) gap process whose mean matches the configured duty cycle;
// a burst may straddle the start or end of the capture, as real
// interference does.
func (in *Interferer) MixInto(x []complex128) {
	if in.frame == nil || len(x) == 0 {
		return
	}
	burstLen := len(in.frame)
	meanGap := float64(burstLen) * (1 - in.cfg.DutyCycle) / in.cfg.DutyCycle
	amp := math.Sqrt(dsp.FromDB(in.cfg.INRdB))
	scaled := make([]complex128, burstLen)
	for i, v := range in.frame {
		scaled[i] = v * complex(amp, 0)
	}
	// Start before the capture so a burst can straddle the beginning.
	pos := -burstLen + in.gap(meanGap)
	for pos < len(x) {
		dsp.MixInto(x, scaled, pos)
		pos += burstLen + in.gap(meanGap)
	}
}

func (in *Interferer) gap(mean float64) int {
	if mean <= 0 {
		return 0
	}
	g := int(in.rng.ExpFloat64() * mean)
	// Enforce a minimal DIFS-like spacing so bursts do not fuse into one
	// continuous jammer at high duty cycles.
	const minGap = 50
	if g < minGap {
		g = minGap
	}
	return g
}

// MixAtSINR overlays interference onto signal so that the
// signal-to-interference ratio over the interfered span equals sinrDB,
// starting at sample offset. It is the trace-driven mixer behind
// Figs. 20-21 (noise is accounted separately by the caller). The
// interference slice is scaled to a copy; inputs are not modified.
func MixAtSINR(signal, interference []complex128, offset int, sinrDB float64) []complex128 {
	out := make([]complex128, len(signal))
	copy(out, signal)
	ps := dsp.Power(signal)
	pi := dsp.Power(interference)
	if pi == 0 || ps == 0 {
		return out
	}
	amp := math.Sqrt(ps / dsp.FromDB(sinrDB) / pi)
	scaled := make([]complex128, len(interference))
	for i, v := range interference {
		scaled[i] = v * complex(amp, 0)
	}
	dsp.MixInto(out, scaled, offset)
	return out
}
