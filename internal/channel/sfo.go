package channel

import "math"

// ApplySFO resamples x by a sampling-frequency offset of ppm parts per
// million (receiver clock faster for positive ppm), using linear
// interpolation. Real ZigBee crystals are specified at ±40 ppm; over a
// 3.5 ms SymBee packet that slides the sample grid by a couple of
// samples, which the decoder's stable-run margins must absorb. The
// output has the same length as the input (tail samples beyond the
// source are zero).
func ApplySFO(x []complex128, ppm float64) []complex128 {
	if ppm == 0 {
		return x
	}
	ratio := 1 + ppm*1e-6
	out := make([]complex128, len(x))
	for n := range out {
		pos := float64(n) * ratio
		i := int(math.Floor(pos))
		if i+1 >= len(x) {
			break
		}
		frac := pos - float64(i)
		out[n] = x[i]*complex(1-frac, 0) + x[i+1]*complex(frac, 0)
	}
	return out
}
