package channel

import (
	"math"
	"math/rand"
	"testing"

	"symbee/internal/dsp"
)

func TestAddAWGNPower(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]complex128, 100000)
	AddAWGN(x, 2.5, rng)
	if p := dsp.Power(x); math.Abs(p-2.5) > 0.1 {
		t.Errorf("noise power = %v, want 2.5", p)
	}
	// Non-positive power is a no-op.
	y := []complex128{1}
	AddAWGN(y, 0, rng)
	if y[0] != 1 {
		t.Error("zero-power noise modified signal")
	}
}

func TestAddNoiseAtSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]complex128, 50000)
	for i := range x {
		x[i] = 2 // signal power 4
	}
	np := AddNoiseAtSNR(x, 6, rng) // SNR 6 dB → noise power ≈ 1.0047
	want := 4 / dsp.FromDB(6)
	if math.Abs(np-want) > 1e-9 {
		t.Errorf("noise power = %v, want %v", np, want)
	}
	if got := AddNoiseAtSNR(nil, 6, rng); got != 0 {
		t.Errorf("empty signal noise power = %v", got)
	}
}

func TestApplyCFOShiftsSpectrum(t *testing.T) {
	x := make([]complex128, 4096)
	for i := range x {
		x[i] = 1 // DC tone
	}
	ApplyCFO(x, 3e6, 20e6)
	spec := dsp.SpectrumPower(x)
	best := 0
	for k, p := range spec {
		if p > spec[best] {
			best = k
		}
	}
	want := int(3e6 / 20e6 * float64(len(spec)))
	if best != want {
		t.Errorf("peak bin = %d, want %d", best, want)
	}
}

func TestRicianGainStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, k := range []float64{0, 1, 10, 100} {
		var power float64
		const n = 20000
		for i := 0; i < n; i++ {
			g := RicianGain(k, rng)
			power += real(g)*real(g) + imag(g)*imag(g)
		}
		power /= n
		if math.Abs(power-1) > 0.05 {
			t.Errorf("K=%v: mean gain power = %v, want 1", k, power)
		}
	}
	// Negative K is clamped to Rayleigh, not NaN.
	g := RicianGain(-5, rng)
	if math.IsNaN(real(g)) || math.IsNaN(imag(g)) {
		t.Error("negative K produced NaN")
	}
}

func TestRicianHighKIsNearlyDeterministicAmplitude(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		g := RicianGain(1000, rng)
		amp := math.Hypot(real(g), imag(g))
		if math.Abs(amp-1) > 0.15 {
			t.Fatalf("K=1000 amplitude %v strays from 1", amp)
		}
	}
}

func TestMultipathProfileApply(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := TypicalIndoorMultipath(20e6, 6)
	if p.DelaysSamples[1] != 1 || p.DelaysSamples[2] != 3 {
		t.Errorf("delays = %v, want [0 1 3]", p.DelaysSamples)
	}
	x := make([]complex128, 10000)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Average output power over many realizations ≈ input power.
	var ratio float64
	const trials = 200
	for i := 0; i < trials; i++ {
		y := p.Apply(x, rng)
		if len(y) != len(x) {
			t.Fatalf("length changed: %d", len(y))
		}
		ratio += dsp.Power(y) / dsp.Power(x)
	}
	ratio /= trials
	if math.Abs(ratio-1) > 0.15 {
		t.Errorf("mean power ratio = %v, want ≈1", ratio)
	}
	// Nil profile passes through.
	var nilProf *MultipathProfile
	if got := nilProf.Apply(x, rng); &got[0] != &x[0] {
		t.Error("nil profile should return input unchanged")
	}
}

func TestLinkBudget(t *testing.T) {
	b := LinkBudget{SNR1m: 27, Exponent: 2, ShadowSigma: 0, WallLoss: 6}
	if got := b.MeanSNR(10, 0, 0); math.Abs(got-7) > 1e-12 {
		t.Errorf("SNR(10m) = %v, want 7", got)
	}
	if got := b.MeanSNR(10, -5, 0); math.Abs(got-2) > 1e-12 {
		t.Errorf("SNR(10m,-5dBm) = %v, want 2", got)
	}
	if got := b.MeanSNR(10, 0, 2); math.Abs(got-(-5)) > 1e-12 {
		t.Errorf("SNR(10m,2 walls) = %v, want -5", got)
	}
	// Distances below 1 m clamp.
	if got := b.MeanSNR(0.1, 0, 0); got != 27 {
		t.Errorf("SNR(0.1m) = %v, want 27", got)
	}
	// Shadowing draws vary around the mean.
	b.ShadowSigma = 4
	rng := rand.New(rand.NewSource(6))
	var sum, sumSq float64
	const n = 5000
	for i := 0; i < n; i++ {
		v := b.DrawSNR(10, 0, 0, rng)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-7) > 0.3 || math.Abs(std-4) > 0.3 {
		t.Errorf("shadowed SNR mean %v std %v, want 7 / 4", mean, std)
	}
}
