package channel

import (
	"math"
	"math/cmplx"
	"testing"
)

func mustInjector(t *testing.T, cfg FaultConfig) *FaultInjector {
	t.Helper()
	fi, err := NewFaultInjector(cfg)
	if err != nil {
		t.Fatalf("NewFaultInjector(%+v): %v", cfg, err)
	}
	return fi
}

func testCapture(n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*float64(i%7)/7)
	}
	return x
}

// Same seed, same frame sequence → identical outcomes and identical
// sample-level corruption.
func TestFaultInjectorDeterministic(t *testing.T) {
	cfg := FaultConfig{
		Seed: 7, FrameLoss: 0.2,
		BurstEvery: 10, BurstLen: 2, BurstSNRdB: -15,
		DriftEvery: 5, DriftRate: 1e-7,
		AckLoss: 0.3,
	}
	a, b := mustInjector(t, cfg), mustInjector(t, cfg)
	for i := 0; i < 200; i++ {
		ca, cb := testCapture(256), testCapture(256)
		oa, okA := a.Apply(ca)
		ob, okB := b.Apply(cb)
		if okA != okB {
			t.Fatalf("frame %d: outcome diverged: %v vs %v", i, okA, okB)
		}
		if okA {
			for j := range oa {
				if oa[j] != ob[j] {
					t.Fatalf("frame %d sample %d: corruption diverged", i, j)
				}
			}
		}
		if a.DropAck() != b.DropAck() {
			t.Fatalf("frame %d: ack outcome diverged", i)
		}
	}
	la, ja, da := a.Stats()
	lb, jb, db := b.Stats()
	if la != lb || ja != jb || da != db {
		t.Fatalf("stats diverged: (%d,%d,%d) vs (%d,%d,%d)", la, ja, da, lb, jb, db)
	}
	if la == 0 || ja == 0 || da == 0 {
		t.Fatalf("profile exercised nothing: lost=%d jammed=%d drifted=%d", la, ja, da)
	}
}

// Burst windows land exactly on the configured frame-counter schedule.
func TestFaultInjectorBurstSchedule(t *testing.T) {
	fi := mustInjector(t, FaultConfig{BurstEvery: 8, BurstLen: 3}) // SNR 0 → drop
	for i := 0; i < 32; i++ {
		_, ok := fi.Apply(testCapture(64))
		inBurst := i%8 < 3
		if ok == inBurst {
			t.Fatalf("frame %d: ok=%v, want burst drop=%v", i, ok, inBurst)
		}
	}
	lost, _, _ := fi.Stats()
	if lost != 12 {
		t.Fatalf("lost %d frames, want 12", lost)
	}
}

// A jamming burst (nonzero SNR) keeps the frame but corrupts it; frames
// outside the burst pass through untouched.
func TestFaultInjectorJamAndCleanFrames(t *testing.T) {
	fi := mustInjector(t, FaultConfig{Seed: 1, BurstEvery: 4, BurstLen: 1, BurstSNRdB: -20})
	ref := testCapture(128)
	for i := 0; i < 8; i++ {
		out, ok := fi.Apply(testCapture(128))
		if !ok {
			t.Fatalf("frame %d: jamming must not drop the frame", i)
		}
		changed := false
		for j := range out {
			if out[j] != ref[j] {
				changed = true
				break
			}
		}
		if inBurst := i%4 == 0; changed != inBurst {
			t.Fatalf("frame %d: changed=%v, want %v", i, changed, inBurst)
		}
	}
}

// The i.i.d. loss draw is consumed every frame, so enabling bursts does
// not shift which frames the loss pattern hits.
func TestFaultInjectorLossScheduleStable(t *testing.T) {
	lossOnly := mustInjector(t, FaultConfig{Seed: 42, FrameLoss: 0.3})
	withBurst := mustInjector(t, FaultConfig{Seed: 42, FrameLoss: 0.3, BurstEvery: 7, BurstLen: 2, BurstSNRdB: -10})
	for i := 0; i < 300; i++ {
		_, okA := lossOnly.Apply(testCapture(32))
		_, okB := withBurst.Apply(testCapture(32))
		if !okA && okB {
			t.Fatalf("frame %d: i.i.d. loss pattern shifted when bursts were enabled", i)
		}
	}
}

// Reverse-path draws live on their own splitmix stream: interleaving
// DropAck calls must not shift which forward frames the loss pattern
// hits, and toggling ack loss must not change the forward schedule.
func TestFaultInjectorReversePathIndependent(t *testing.T) {
	fwdOnly := mustInjector(t, FaultConfig{Seed: 11, FrameLoss: 0.3})
	interleaved := mustInjector(t, FaultConfig{Seed: 11, FrameLoss: 0.3, AckLoss: 0.5})
	for i := 0; i < 300; i++ {
		_, okA := fwdOnly.Apply(testCapture(32))
		_, okB := interleaved.Apply(testCapture(32))
		interleaved.DropAck() // reverse draw between every forward frame
		if okA != okB {
			t.Fatalf("frame %d: forward loss pattern shifted by reverse-path draws", i)
		}
	}
}

// Ack loss converges to the configured rate.
func TestFaultInjectorAckLossRate(t *testing.T) {
	fi := mustInjector(t, FaultConfig{Seed: 3, AckLoss: 0.25})
	dropped := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if fi.DropAck() {
			dropped++
		}
	}
	got := float64(dropped) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("ack loss rate %.3f, want ≈0.25", got)
	}
}

// The drift ramp applies a pure phase rotation: magnitudes are
// untouched while late-sample phases walk away.
func TestFaultInjectorDriftRamp(t *testing.T) {
	fi := mustInjector(t, FaultConfig{DriftEvery: 1, DriftRate: 1e-6})
	x := testCapture(4096)
	out, ok := fi.Apply(x)
	if !ok {
		t.Fatal("drift must not drop the frame")
	}
	ref := testCapture(4096)
	for i := range out {
		if math.Abs(cmplx.Abs(out[i])-cmplx.Abs(ref[i])) > 1e-12 {
			t.Fatalf("sample %d: drift changed magnitude", i)
		}
	}
	last := len(out) - 1
	if d := cmplx.Abs(out[last] - ref[last]); d < 1e-3 {
		t.Fatalf("late sample unrotated (|Δ|=%g): drift ramp had no effect", d)
	}
}
