package channel

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestApplySFOZeroIsIdentity(t *testing.T) {
	x := []complex128{1, 2i, 3}
	if got := ApplySFO(x, 0); &got[0] != &x[0] {
		t.Error("zero ppm should return the input unchanged")
	}
}

func TestApplySFOShiftsGrid(t *testing.T) {
	// A pure tone resampled at +100 ppm is the same tone at a 100 ppm
	// higher apparent frequency; check the phase drift at the tail.
	const (
		n    = 100000
		ppm  = 100.0
		freq = 0.5e6
		rate = 20e6
	)
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * freq * float64(i) / rate
		x[i] = cmplx.Exp(complex(0, ang))
	}
	y := ApplySFO(x, ppm)
	// At sample n/2, expected phase advance vs original:
	// 2π·freq/rate·(n/2)·ppm·1e-6.
	k := n / 2
	wantShift := 2 * math.Pi * freq / rate * float64(k) * ppm * 1e-6
	gotShift := cmplx.Phase(y[k] * cmplx.Conj(x[k]))
	if math.Abs(gotShift-wantShift) > 0.05 {
		t.Errorf("phase drift at %d = %v, want %v", k, gotShift, wantShift)
	}
	// Tail must be zero-padded, not garbage.
	if y[n-1] != 0 && cmplx.Abs(y[n-1]) > 1.001 {
		t.Errorf("tail sample = %v", y[n-1])
	}
}
