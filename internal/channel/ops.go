package channel

import (
	"math"
	"math/rand"

	"symbee/internal/dsp"
)

// AddAWGN adds complex white Gaussian noise of total power noisePower to
// x in place (noisePower/2 per real dimension).
func AddAWGN(x []complex128, noisePower float64, rng *rand.Rand) {
	if noisePower <= 0 {
		return
	}
	s := math.Sqrt(noisePower / 2)
	for i := range x {
		x[i] += complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
	}
}

// AddNoiseAtSNR scales nothing but adds noise such that the resulting
// SNR (signal power over noise power) is snrDB, measured against the
// current mean power of x. It returns the noise power used.
func AddNoiseAtSNR(x []complex128, snrDB float64, rng *rand.Rand) float64 {
	p := dsp.Power(x)
	if p == 0 {
		return 0
	}
	np := p / dsp.FromDB(snrDB)
	AddAWGN(x, np, rng)
	return np
}

// ApplyCFO rotates x in place by the carrier-frequency offset fDelta Hz
// at the given sample rate, modelling a ZigBee signal landing off-center
// in the WiFi baseband.
func ApplyCFO(x []complex128, fDelta, sampleRate float64) {
	dsp.RotateFrequency(x, fDelta, sampleRate, 0)
}

// RicianGain draws one complex block-fading gain with Rician factor k
// (ratio of line-of-sight power to scattered power; k→∞ is a pure LOS
// channel, k=0 is Rayleigh). The gain has unit mean power.
func RicianGain(k float64, rng *rand.Rand) complex128 {
	if k < 0 {
		k = 0
	}
	losAmp := math.Sqrt(k / (k + 1))
	scatter := math.Sqrt(1 / (k + 1) / 2)
	phi := rng.Float64() * 2 * math.Pi
	los := complex(losAmp*math.Cos(phi), losAmp*math.Sin(phi))
	nlos := complex(rng.NormFloat64()*scatter, rng.NormFloat64()*scatter)
	return los + nlos
}

// MultipathProfile describes a sparse tapped-delay-line channel. Tap
// delays are in samples at the receiver rate; tap powers are linear and
// are normalized to sum to 1 when applied.
type MultipathProfile struct {
	DelaysSamples []int
	Powers        []float64
	// RicianK applies to the first (main) tap; later taps are Rayleigh.
	RicianK float64
}

// Apply draws random complex tap gains from the profile and convolves x
// with them, returning a new slice of the same length with unit mean
// channel power. A malformed profile (delay/power counts disagree)
// passes x through unchanged rather than fault a simulation run.
func (p *MultipathProfile) Apply(x []complex128, rng *rand.Rand) []complex128 {
	if p == nil || len(p.DelaysSamples) == 0 || len(p.DelaysSamples) != len(p.Powers) {
		return x
	}
	var total float64
	for _, pw := range p.Powers {
		total += pw
	}
	gains := make([]complex128, len(p.DelaysSamples))
	for i := range gains {
		k := 0.0
		if i == 0 {
			k = p.RicianK
		}
		g := RicianGain(k, rng)
		gains[i] = g * complex(math.Sqrt(p.Powers[i]/total), 0)
	}
	y, err := dsp.DelaySum(x, p.DelaysSamples, gains)
	if err != nil {
		// Unreachable: gains was built with one entry per delay.
		return x
	}
	return y
}

// TypicalIndoorMultipath returns a 3-tap indoor profile at the given
// sample rate: taps at 0, 50 and 150 ns with exponentially decaying
// power and a line-of-sight factor k on the first tap.
func TypicalIndoorMultipath(sampleRate, ricianK float64) *MultipathProfile {
	toSamples := func(sec float64) int {
		return int(math.Round(sec * sampleRate))
	}
	return &MultipathProfile{
		DelaysSamples: []int{0, toSamples(50e-9), toSamples(150e-9)},
		Powers:        []float64{1, 0.4, 0.15},
		RicianK:       ricianK,
	}
}
