package channel

import (
	"math"
	"math/rand"

	"symbee/internal/dsp"
)

// Config assembles one end-to-end channel realization policy.
type Config struct {
	// SampleRate of the receiver in Hz.
	SampleRate float64
	// SNRdB is the target signal-to-noise ratio (full receiver band).
	SNRdB float64
	// FreqOffset is the ZigBee-vs-WiFi carrier offset in Hz; 0 models a
	// baseband-aligned capture (no CFO compensation needed).
	FreqOffset float64
	// BlockFading, when true, multiplies each transmission by one Rician
	// gain with factor RicianK (per-packet flat fading).
	BlockFading bool
	// RicianK is the Rician K-factor for block fading.
	RicianK float64
	// Multipath, when non-nil, replaces block fading with a random
	// tapped-delay-line realization per transmission.
	Multipath *MultipathProfile
	// Interference describes background WiFi traffic.
	Interference InterferenceConfig
	// Mobility, when non-nil, applies a time-varying fading track.
	Mobility *MobilityConfig
	// Pad prepends and appends this many noise-only samples around the
	// transmission, so receivers must find the packet.
	Pad int
}

// Medium applies a Config to transmissions. It is not safe for
// concurrent use; create one per worker with its own rng.
type Medium struct {
	cfg Config
	rng *rand.Rand
	inf *Interferer
	mob *mobilityTrack
}

// NewMedium builds a medium from cfg, drawing all randomness from rng.
func NewMedium(cfg Config, rng *rand.Rand) (*Medium, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inf, err := NewInterferer(cfg.Interference, cfg.SampleRate, rng)
	if err != nil {
		return nil, err
	}
	m := &Medium{cfg: cfg, rng: rng, inf: inf}
	if cfg.Mobility != nil {
		m.mob = newMobilityTrack(*cfg.Mobility, cfg.SampleRate, rng)
	}
	return m, nil
}

// Transmit passes x through the channel and returns the received capture
// (len(x) + 2·Pad samples, signal starting at sample Pad). The input is
// not modified.
func (m *Medium) Transmit(x []complex128) []complex128 {
	sig := make([]complex128, len(x))
	copy(sig, x)
	dsp.NormalizePower(sig, 1)

	switch {
	case m.cfg.Multipath != nil:
		sig = m.cfg.Multipath.Apply(sig, m.rng)
	case m.cfg.BlockFading:
		g := RicianGain(m.cfg.RicianK, m.rng)
		for i := range sig {
			sig[i] *= g
		}
	}
	if m.mob != nil {
		m.mob.apply(sig)
	}
	if m.cfg.FreqOffset != 0 {
		ApplyCFO(sig, m.cfg.FreqOffset, m.cfg.SampleRate)
	}
	amp := complex(math.Sqrt(dsp.FromDB(m.cfg.SNRdB)), 0)
	out := make([]complex128, len(sig)+2*m.cfg.Pad)
	for i, v := range sig {
		out[m.cfg.Pad+i] = v * amp
	}
	m.inf.MixInto(out)
	AddAWGN(out, 1, m.rng)
	return out
}

// SignalStart returns the sample index where the transmitted signal
// begins inside a capture returned by Transmit.
func (m *Medium) SignalStart() int { return m.cfg.Pad }
