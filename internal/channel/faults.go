package channel

import (
	"math"
	"math/cmplx"
	"math/rand"

	"symbee/internal/dsp"
	"symbee/internal/splitmix"
)

// FaultConfig describes a deterministic fault profile for link-level
// testing: given the same seed and the same sequence of frames, the
// injector corrupts exactly the same frames in exactly the same way.
// The reliability layer's retry paths are exercised against these
// profiles (internal/reliable), so every knob maps to a failure mode
// the paper's system actually faces.
type FaultConfig struct {
	// Seed makes the profile reproducible. Two injectors with the same
	// config corrupt the same frame sequence identically.
	Seed int64

	// FrameLoss is the i.i.d. probability that a data frame is lost
	// outright (deep fade / collision that destroys the capture).
	FrameLoss float64

	// BurstEvery opens a periodic interference window: starting at every
	// BurstEvery-th frame, BurstLen consecutive frames are hit by a
	// strong in-band WiFi burst (≤0 disables bursts). Frame counting
	// includes retransmissions — a burst stays up while the sender
	// retries into it, exactly like a real microwave-oven or bulk-traffic
	// window.
	BurstEvery int
	// BurstLen is the number of consecutive frames each burst covers.
	BurstLen int
	// BurstSNRdB is the signal-to-interference ratio during a burst;
	// strongly negative values bury the frame. When 0, burst frames are
	// dropped outright instead of jammed.
	BurstSNRdB float64

	// DriftEvery applies a CFO drift ramp (an oscillator warming up —
	// the Crocs failure mode) to every DriftEvery-th frame (≤0 never).
	DriftEvery int
	// DriftRate is the frequency ramp slope in rad/sample² — the
	// instantaneous carrier offset grows linearly across the capture.
	DriftRate float64

	// AckLoss is the i.i.d. probability that a WiFi→ZigBee feedback
	// message (an acknowledgment) is lost on the reverse channel.
	AckLoss float64
}

// FaultInjector applies a FaultConfig to a sequence of per-frame
// captures. It is deterministic (seeded, single-goroutine) and
// stateful: the frame counter drives the periodic burst and drift
// windows.
type FaultInjector struct {
	cfg     FaultConfig
	rng     *rand.Rand // forward loss schedule draws: one per frame, never more
	noise   *rand.Rand // jam sample noise, so jamming can't shift the schedule
	reverse *rand.Rand // reverse-path (ack) draws, independent of the forward path
	frame   int        // frames seen so far

	lost     int
	jammed   int
	drifts   int
	acksLost int
}

// NewFaultInjector returns an injector for the profile, rejecting
// structurally invalid ones (probabilities outside [0,1], negative
// periods). All three streams are split from the schedule seed through
// the repo-wide splitmix convention (stream −4 = forward schedule,
// −1 = noise, −2 = reverse), so the injector, the shared-medium
// simulator and the multi-sender scenario all derive their streams the
// same way — adjacent scenario seeds never correlate, and enabling
// reverse-path faults never shifts which forward frames the loss
// pattern hits.
func NewFaultInjector(cfg FaultConfig) (*FaultInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &FaultInjector{
		cfg:     cfg,
		rng:     splitmix.New(cfg.Seed, splitmix.ScheduleStream),
		noise:   splitmix.New(cfg.Seed, splitmix.NoiseStream),
		reverse: splitmix.New(cfg.Seed, splitmix.ReverseStream),
	}, nil
}

// Apply passes one frame capture through the profile, mutating it in
// place. ok=false means the frame was lost outright (nothing reaches
// the receiver); otherwise the returned slice is the (possibly jammed
// or drifted) capture.
func (fi *FaultInjector) Apply(capture []complex128) (out []complex128, ok bool) {
	i := fi.frame
	fi.frame++
	// i.i.d. loss draws one uniform per frame regardless of outcome, so
	// the burst/drift schedule never shifts the loss pattern.
	lossDraw := fi.rng.Float64()
	if fi.cfg.FrameLoss > 0 && lossDraw < fi.cfg.FrameLoss {
		fi.lost++
		return nil, false
	}
	if fi.cfg.BurstEvery > 0 && fi.cfg.BurstLen > 0 && i%fi.cfg.BurstEvery < fi.cfg.BurstLen {
		if fi.cfg.BurstSNRdB == 0 {
			fi.lost++
			return nil, false
		}
		fi.jam(capture)
		fi.jammed++
	}
	if fi.cfg.DriftEvery > 0 && fi.cfg.DriftRate != 0 && i%fi.cfg.DriftEvery == fi.cfg.DriftEvery-1 {
		fi.driftRamp(capture)
		fi.drifts++
	}
	return capture, true
}

// DropAck reports whether the next reverse-channel acknowledgment
// transmission is lost. Draws come from the injector's private
// reverse-path stream (splitmix stream −2), so the ack schedule and the
// forward loss/burst schedule cannot shift each other.
func (fi *FaultInjector) DropAck() bool {
	if fi.cfg.AckLoss > 0 && fi.reverse.Float64() < fi.cfg.AckLoss {
		fi.acksLost++
		return true
	}
	return false
}

// AcksLost reports how many reverse-channel transmissions DropAck has
// rejected so far.
func (fi *FaultInjector) AcksLost() int { return fi.acksLost }

// Frames returns the number of data frames the injector has seen.
func (fi *FaultInjector) Frames() int { return fi.frame }

// Stats reports how many frames were lost outright, jammed by a burst,
// and hit by a drift ramp.
func (fi *FaultInjector) Stats() (lost, jammed, drifted int) {
	return fi.lost, fi.jammed, fi.drifts
}

// jam buries the capture under complex Gaussian interference at the
// configured (negative) SNR, relative to the capture's own mean power.
func (fi *FaultInjector) jam(x []complex128) {
	if len(x) == 0 {
		return
	}
	var p float64
	for _, v := range x {
		p += real(v)*real(v) + imag(v)*imag(v)
	}
	p /= float64(len(x))
	if p == 0 {
		return
	}
	sigma := math.Sqrt(p / dsp.FromDB(fi.cfg.BurstSNRdB) / 2)
	for i := range x {
		x[i] += complex(fi.noise.NormFloat64()*sigma, fi.noise.NormFloat64()*sigma)
	}
}

// driftRamp multiplies the capture by a quadratic phase: an
// instantaneous carrier offset that grows linearly at DriftRate
// rad/sample², i.e. the lag-phase the decoder sees walks steadily away
// from its compensation point until decoding fails mid-frame.
func (fi *FaultInjector) driftRamp(x []complex128) {
	r := fi.cfg.DriftRate
	for i := range x {
		t := float64(i)
		x[i] *= cmplx.Exp(complex(0, 0.5*r*t*t))
	}
}
