package channel

import (
	"errors"
	"fmt"
)

// This file is the config contract of the channel package: every
// exported config type has an explicit Default* baseline and a
// Validate() error method, and every constructor validates before it
// reads a field (the internal/medium convention, enforced repo-wide by
// symbeevet's confvalid rule).

// DefaultConfig returns the baseline channel realization policy: a
// 20 Msps receiver observing from the nominal WiFi↔ZigBee carrier
// offset at 20 dB SNR, no fading, no interference, no padding. Override
// what the scenario needs; the named Scenario presets build richer
// configs via Scenario.Config.
func DefaultConfig() Config {
	return Config{
		SampleRate: 20e6,
		SNRdB:      20,
		FreqOffset: DefaultFreqOffset,
	}
}

// DefaultFaultConfig returns the clean fault profile: every failure
// mode disabled. Enable the modes a test needs field by field — the
// zero value of each knob means "off", never "default on".
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{}
}

// DefaultInterferenceConfig returns the quiet-channel baseline: no
// ambient WiFi traffic.
func DefaultInterferenceConfig() InterferenceConfig {
	return InterferenceConfig{}
}

// DefaultMobilityConfig returns the walking-pace mobility baseline
// (MobilityPreset at 1.5 m/s, the paper's pedestrian track).
func DefaultMobilityConfig() MobilityConfig {
	return MobilityPreset(1.5)
}

// Config validation errors.
var (
	errSampleRate = errors.New("channel: sample rate must be positive")
	errPad        = errors.New("channel: negative pad")
	errRicianK    = errors.New("channel: negative Rician K-factor")
	errProb       = errors.New("channel: probability outside [0,1]")
	errBurst      = errors.New("channel: negative burst geometry")
	errDrift      = errors.New("channel: negative drift period")
	errDuty       = errors.New("channel: duty cycle outside [0,1]")
	errBurstDur   = errors.New("channel: negative burst duration")
	errMobility   = errors.New("channel: negative mobility parameter")
)

// Validate reports the first structural problem with the config,
// chaining into the embedded interference and mobility configs.
func (c Config) Validate() error {
	switch {
	case c.SampleRate <= 0:
		return fmt.Errorf("%w: %v", errSampleRate, c.SampleRate)
	case c.Pad < 0:
		return fmt.Errorf("%w: %d", errPad, c.Pad)
	case c.RicianK < 0:
		return fmt.Errorf("%w: %v", errRicianK, c.RicianK)
	}
	if err := c.Interference.Validate(); err != nil {
		return err
	}
	if c.Mobility != nil {
		return c.Mobility.Validate()
	}
	return nil
}

// Validate reports the first structural problem with the fault profile.
func (c FaultConfig) Validate() error {
	switch {
	case c.FrameLoss < 0 || c.FrameLoss > 1:
		return fmt.Errorf("%w: FrameLoss %v", errProb, c.FrameLoss)
	case c.AckLoss < 0 || c.AckLoss > 1:
		return fmt.Errorf("%w: AckLoss %v", errProb, c.AckLoss)
	case c.BurstEvery < 0 || c.BurstLen < 0:
		return fmt.Errorf("%w: every %d, len %d", errBurst, c.BurstEvery, c.BurstLen)
	case c.DriftEvery < 0:
		return fmt.Errorf("%w: %d", errDrift, c.DriftEvery)
	}
	return nil
}

// Validate reports the first structural problem with the interference
// model.
func (c InterferenceConfig) Validate() error {
	switch {
	case c.DutyCycle < 0 || c.DutyCycle > 1:
		return fmt.Errorf("%w: %v", errDuty, c.DutyCycle)
	case c.BurstDuration < 0:
		return fmt.Errorf("%w: %v", errBurstDur, c.BurstDuration)
	}
	return nil
}

// Validate reports the first structural problem with the mobility
// track.
func (c MobilityConfig) Validate() error {
	switch {
	case c.SpeedMps < 0:
		return fmt.Errorf("%w: SpeedMps %v", errMobility, c.SpeedMps)
	case c.RicianK < 0:
		return fmt.Errorf("%w: RicianK %v", errMobility, c.RicianK)
	case c.BlockageRate < 0:
		return fmt.Errorf("%w: BlockageRate %v", errMobility, c.BlockageRate)
	case c.BlockageDuration < 0:
		return fmt.Errorf("%w: BlockageDuration %v", errMobility, c.BlockageDuration)
	}
	return nil
}
