package channel

import (
	"math"
	"math/rand"
)

// LinkBudget converts geometry and radio parameters into a received SNR.
// Instead of tracking absolute dBm levels it is anchored by SNR1m: the
// full-band SNR a 0 dBm transmitter achieves at 1 m in this environment
// (this folds together TX/RX antenna gains, the receiver noise figure
// and the fact that the 2 MHz ZigBee signal is measured against noise in
// the whole 20 MHz WiFi band, matching how the paper's GNURadio setup
// reports SNR).
type LinkBudget struct {
	// SNR1m is the mean SNR in dB at 1 m for a 0 dBm transmitter.
	SNR1m float64
	// Exponent is the path-loss exponent (≈2 free space, 2.5-4 indoors).
	Exponent float64
	// ShadowSigma is the log-normal shadowing standard deviation in dB.
	ShadowSigma float64
	// WallLoss is the attenuation in dB per wall on the path.
	WallLoss float64
}

// MeanSNR returns the mean SNR in dB at distance meters for a
// transmitter at txPowerDBm with walls obstructing walls on the path.
func (b LinkBudget) MeanSNR(distance, txPowerDBm float64, walls int) float64 {
	if distance < 1 {
		distance = 1
	}
	return b.SNR1m + txPowerDBm -
		10*b.Exponent*math.Log10(distance) -
		float64(walls)*b.WallLoss
}

// DrawSNR returns one shadowed SNR realization around the mean.
func (b LinkBudget) DrawSNR(distance, txPowerDBm float64, walls int, rng *rand.Rand) float64 {
	return b.MeanSNR(distance, txPowerDBm, walls) + rng.NormFloat64()*b.ShadowSigma
}
