// Package channel simulates the wireless medium between a ZigBee
// transmitter and a WiFi receiver, replacing the paper's physical
// testbed (TelosB + USRP B210 in six indoor/outdoor sites).
//
// The model is layered:
//
//   - sample-level operators: AWGN at a target SNR, carrier-frequency
//     offset, Rician/Rayleigh block fading, tapped-delay-line multipath,
//     and WiFi interference bursts mixed at a target
//     interference-to-noise ratio;
//   - a link-budget layer: log-distance path loss with log-normal
//     shadowing and per-wall attenuation, mapping (scenario, distance,
//     TX power) to a mean SNR;
//   - scenario presets for the paper's six evaluation sites (outdoor,
//     library, classroom, dormitory, office, mall), plus the
//     office-at-midnight and mobile variants used by Figs. 19 and 23.
//
// Power normalization: the receiver noise floor is fixed at unit power,
// so a signal at SNR s dB has linear power 10^(s/10) and an interferer
// at INR i dB has power 10^(i/10). All randomness flows from explicit
// *rand.Rand instances so experiments are reproducible.
package channel
