// Package trace records and replays signal captures — IQ sample or
// phase-value traces — in a compact binary format. The paper's
// robustness study (Figs. 20-21) is trace-driven: a clean SymBee
// capture and a clean WiFi capture are recorded once and then mixed at
// controlled SINR levels; this package provides that workflow plus the
// file format used by the symbeetx/symbeerx tools.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Kind discriminates the payload type of a trace.
type Kind uint8

// Trace payload kinds.
const (
	// KindIQ holds complex64-precision IQ samples.
	KindIQ Kind = iota + 1
	// KindPhase holds float64 phase values.
	KindPhase
)

const (
	magic   = "SBTR"
	version = 1
)

// Trace is a recorded capture.
type Trace struct {
	// Kind says whether IQ or Phases is populated.
	Kind Kind
	// SampleRate in Hz.
	SampleRate float64
	// IQ samples (Kind == KindIQ).
	IQ []complex128
	// Phases values (Kind == KindPhase).
	Phases []float64
}

// Errors returned by the reader.
var (
	ErrBadMagic   = errors.New("trace: bad magic (not a SymBee trace)")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrBadKind    = errors.New("trace: unknown payload kind")
)

// Len returns the number of samples or phase values.
func (t *Trace) Len() int {
	if t.Kind == KindIQ {
		return len(t.IQ)
	}
	return len(t.Phases)
}

// Duration returns the covered timespan in seconds.
func (t *Trace) Duration() float64 {
	if t.SampleRate <= 0 {
		return 0
	}
	return float64(t.Len()) / t.SampleRate
}

// Write serializes the trace.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	header := []any{uint8(version), uint8(t.Kind), t.SampleRate, uint64(t.Len())}
	for _, v := range header {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	switch t.Kind {
	case KindIQ:
		buf := make([]byte, 8)
		for _, v := range t.IQ {
			binary.LittleEndian.PutUint32(buf, math.Float32bits(float32(real(v))))
			binary.LittleEndian.PutUint32(buf[4:], math.Float32bits(float32(imag(v))))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	case KindPhase:
		buf := make([]byte, 8)
		for _, v := range t.Phases {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("%w: %d", ErrBadKind, t.Kind)
	}
	return bw.Flush()
}

// Read deserializes a trace.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	var (
		ver  uint8
		kind uint8
		rate float64
		n    uint64
	)
	for _, p := range []any{&ver, &kind, &rate, &n} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if ver != version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	t := &Trace{Kind: Kind(kind), SampleRate: rate}
	const maxSamples = 1 << 30 // 1 Gi entries: refuse absurd headers
	if n > maxSamples {
		return nil, fmt.Errorf("trace: implausible sample count %d", n)
	}
	switch t.Kind {
	case KindIQ:
		t.IQ = make([]complex128, n)
		buf := make([]byte, 8)
		for i := range t.IQ {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			re := math.Float32frombits(binary.LittleEndian.Uint32(buf))
			im := math.Float32frombits(binary.LittleEndian.Uint32(buf[4:]))
			t.IQ[i] = complex(float64(re), float64(im))
		}
	case KindPhase:
		t.Phases = make([]float64, n)
		buf := make([]byte, 8)
		for i := range t.Phases {
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, err
			}
			t.Phases[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf))
		}
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, kind)
	}
	return t, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
