package trace

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestIQRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &Trace{Kind: KindIQ, SampleRate: 20e6, IQ: make([]complex128, 1000)}
	for i := range tr.IQ {
		tr.IQ[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindIQ || got.SampleRate != 20e6 || got.Len() != 1000 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.IQ {
		// float32 storage: ~1e-7 relative precision.
		if d := real(tr.IQ[i]) - real(got.IQ[i]); math.Abs(d) > 1e-6 {
			t.Fatalf("sample %d mismatch", i)
		}
	}
	if d := tr.Duration() - 1000.0/20e6; math.Abs(d) > 1e-15 {
		t.Errorf("Duration = %v", tr.Duration())
	}
}

func TestPhaseRoundTripFile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := &Trace{Kind: KindPhase, SampleRate: 20e6, Phases: make([]float64, 500)}
	for i := range tr.Phases {
		tr.Phases[i] = rng.NormFloat64()
	}
	path := filepath.Join(t.TempDir(), "x.sbtr")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Phases {
		if got.Phases[i] != tr.Phases[i] {
			t.Fatalf("phase %d mismatch", i)
		}
	}
}

func TestReadErrors(t *testing.T) {
	t.Run("bad magic", func(t *testing.T) {
		if _, err := Read(bytes.NewReader([]byte("NOPE00000000000000000000"))); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		tr := &Trace{Kind: KindPhase, SampleRate: 1, Phases: []float64{1, 2, 3}}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-4])); err == nil {
			t.Error("expected error on truncated trace")
		}
	})
	t.Run("bad kind on write", func(t *testing.T) {
		tr := &Trace{Kind: 99, SampleRate: 1}
		var buf bytes.Buffer
		if err := tr.Write(&buf); !errors.Is(err, ErrBadKind) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := Load(filepath.Join(t.TempDir(), "missing.sbtr")); err == nil {
			t.Error("expected error for missing file")
		}
	})
}
