package trace

import (
	"bytes"
	"errors"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestIQRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := &Trace{Kind: KindIQ, SampleRate: 20e6, IQ: make([]complex128, 1000)}
	for i := range tr.IQ {
		tr.IQ[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindIQ || got.SampleRate != 20e6 || got.Len() != 1000 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range tr.IQ {
		// float32 storage: ~1e-7 relative precision.
		if d := real(tr.IQ[i]) - real(got.IQ[i]); math.Abs(d) > 1e-6 {
			t.Fatalf("sample %d mismatch", i)
		}
	}
	if d := tr.Duration() - 1000.0/20e6; math.Abs(d) > 1e-15 {
		t.Errorf("Duration = %v", tr.Duration())
	}
}

func TestPhaseRoundTripFile(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tr := &Trace{Kind: KindPhase, SampleRate: 20e6, Phases: make([]float64, 500)}
	for i := range tr.Phases {
		tr.Phases[i] = rng.NormFloat64()
	}
	path := filepath.Join(t.TempDir(), "x.sbtr")
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Phases {
		if got.Phases[i] != tr.Phases[i] {
			t.Fatalf("phase %d mismatch", i)
		}
	}
}

// chunkedReader yields at most chunk bytes per Read call, exercising
// readers that deliver data in arbitrary small pieces (pipes, sockets,
// throttled replays).
type chunkedReader struct {
	data  []byte
	chunk int
}

func (c *chunkedReader) Read(p []byte) (int, error) {
	if len(c.data) == 0 {
		return 0, io.EOF
	}
	n := c.chunk
	if n > len(p) {
		n = len(p)
	}
	if n > len(c.data) {
		n = len(c.data)
	}
	copy(p, c.data[:n])
	c.data = c.data[n:]
	return n, nil
}

func TestChunkedReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	iq := &Trace{Kind: KindIQ, SampleRate: 20e6, IQ: make([]complex128, 777)}
	for i := range iq.IQ {
		iq.IQ[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	ph := &Trace{Kind: KindPhase, SampleRate: 40e6, Phases: make([]float64, 1234)}
	for i := range ph.Phases {
		ph.Phases[i] = rng.NormFloat64()
	}
	for _, tr := range []*Trace{iq, ph} {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		for _, chunk := range []int{1, 7, 4096} {
			got, err := Read(&chunkedReader{data: buf.Bytes(), chunk: chunk})
			if err != nil {
				t.Fatalf("kind %d chunk %d: %v", tr.Kind, chunk, err)
			}
			if got.Kind != tr.Kind || got.SampleRate != tr.SampleRate || got.Len() != tr.Len() {
				t.Fatalf("kind %d chunk %d: header mismatch: %+v", tr.Kind, chunk, got)
			}
			switch tr.Kind {
			case KindIQ:
				for i := range tr.IQ {
					if math.Abs(real(tr.IQ[i])-real(got.IQ[i])) > 1e-6 ||
						math.Abs(imag(tr.IQ[i])-imag(got.IQ[i])) > 1e-6 {
						t.Fatalf("chunk %d: IQ sample %d mismatch", chunk, i)
					}
				}
			case KindPhase:
				for i := range tr.Phases {
					if got.Phases[i] != tr.Phases[i] {
						t.Fatalf("chunk %d: phase %d mismatch", chunk, i)
					}
				}
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	t.Run("bad magic", func(t *testing.T) {
		if _, err := Read(bytes.NewReader([]byte("NOPE00000000000000000000"))); !errors.Is(err, ErrBadMagic) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		tr := &Trace{Kind: KindPhase, SampleRate: 1, Phases: []float64{1, 2, 3}}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes()[:buf.Len()-4])); err == nil {
			t.Error("expected error on truncated trace")
		}
	})
	t.Run("bad kind on write", func(t *testing.T) {
		tr := &Trace{Kind: 99, SampleRate: 1}
		var buf bytes.Buffer
		if err := tr.Write(&buf); !errors.Is(err, ErrBadKind) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		if _, err := Load(filepath.Join(t.TempDir(), "missing.sbtr")); err == nil {
			t.Error("expected error for missing file")
		}
	})
}
