package medium

import (
	"math"
	"math/rand"

	"symbee/internal/channel"
	"symbee/internal/dsp"
	"symbee/internal/splitmix"
)

// senderSource is one sender's lazily-advanced schedule: its private
// RNG stream has drawn the per-sender impairments and exactly the gaps
// needed to place the next pending frame — never the whole schedule.
// The draw order (CFO, SFO, gain, then one exponential gap per frame)
// matches the dense reference implementation, so a source replayed to
// exhaustion consumes its stream identically.
type senderSource struct {
	id  int
	rng *rand.Rand
	// cfoHz/sfoPPM/gain are the sender's fixed impairments.
	cfoHz  float64
	sfoPPM float64
	gain   complex128
	// meanGapAirtimes scales the exponential idle draws.
	meanGapAirtimes float64
	// airtime is the constant per-frame signal length in samples.
	airtime int
	// nextSeq/nextStart describe the pending frame; frames is the
	// total budget.
	nextSeq   int
	nextStart int
	frames    int
}

// newSenderSource derives sender id's stream and draws its impairments
// plus the idle gap in front of its first frame (so sender 0 does not
// always open the capture).
func newSenderSource(cfg Config, id, airtime int) *senderSource {
	rng := splitmix.New(cfg.Seed, id)
	cfo := channel.DefaultFreqOffset
	if cfg.CFOJitterHz > 0 {
		cfo += (2*rng.Float64() - 1) * cfg.CFOJitterHz
	}
	sfo := 0.0
	if cfg.SFOppm > 0 {
		sfo = (2*rng.Float64() - 1) * cfg.SFOppm
	}
	snr := cfg.SNRdB
	if cfg.GainSpreadDB > 0 {
		snr += (2*rng.Float64() - 1) * cfg.GainSpreadDB
	}
	s := &senderSource{
		id:              id,
		rng:             rng,
		cfoHz:           cfo,
		sfoPPM:          sfo,
		gain:            complex(math.Sqrt(dsp.FromDB(snr)), 0),
		meanGapAirtimes: cfg.MeanGapAirtimes,
		airtime:         airtime,
		frames:          cfg.FramesPerSender,
	}
	s.nextStart = s.drawGap()
	return s
}

// drawGap draws one exponential idle gap in samples. The expression
// mirrors the dense reference exactly (same association order) so the
// float result is bit-identical.
func (s *senderSource) drawGap() int {
	return int(s.rng.ExpFloat64() * s.meanGapAirtimes * float64(s.airtime))
}

// advance consumes the pending frame and draws the gap in front of the
// next one; it reports whether the sender has frames left.
func (s *senderSource) advance() bool {
	end := s.nextStart + s.airtime
	s.nextSeq++
	if s.nextSeq >= s.frames {
		return false
	}
	s.nextStart = end + s.drawGap()
	return true
}

// eventQueue is a min-heap of sender sources ordered by next
// transmission start (ties by sender id — the dense reference's sort
// order, which the renderer's mixing order must reproduce). It is used
// directly rather than through container/heap to keep the item type
// concrete.
type eventQueue struct {
	srcs []*senderSource
}

func (q *eventQueue) len() int { return len(q.srcs) }

// peekStart returns the earliest pending transmission start.
func (q *eventQueue) peekStart() int { return q.srcs[0].nextStart }

func (q *eventQueue) less(i, j int) bool {
	if q.srcs[i].nextStart != q.srcs[j].nextStart {
		return q.srcs[i].nextStart < q.srcs[j].nextStart
	}
	return q.srcs[i].id < q.srcs[j].id
}

// push adds a source and restores the heap invariant.
func (q *eventQueue) push(s *senderSource) {
	q.srcs = append(q.srcs, s)
	i := len(q.srcs) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.srcs[i], q.srcs[parent] = q.srcs[parent], q.srcs[i]
		i = parent
	}
}

// pop removes and returns the source with the earliest pending start.
func (q *eventQueue) pop() *senderSource {
	top := q.srcs[0]
	last := len(q.srcs) - 1
	q.srcs[0] = q.srcs[last]
	q.srcs[last] = nil
	q.srcs = q.srcs[:last]
	q.siftDown(0)
	return top
}

func (q *eventQueue) siftDown(i int) {
	n := len(q.srcs)
	for {
		left, right := 2*i+1, 2*i+2
		smallest := i
		if left < n && q.less(left, smallest) {
			smallest = left
		}
		if right < n && q.less(right, smallest) {
			smallest = right
		}
		if smallest == i {
			return
		}
		q.srcs[i], q.srcs[smallest] = q.srcs[smallest], q.srcs[i]
		i = smallest
	}
}
