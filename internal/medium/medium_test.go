package medium

import (
	"errors"
	"reflect"
	"testing"
)

// discardSink consumes the capture without a receiver: schedule,
// collision and memory accounting are exercised; nothing decodes.
type discardSink struct {
	chunks  int
	samples int
	maxLen  int
}

func (d *discardSink) PushChunk(iq []complex128) error {
	d.chunks++
	d.samples += len(iq)
	if len(iq) > d.maxLen {
		d.maxLen = len(iq)
	}
	return nil
}

func (d *discardSink) Flush() error { return nil }

func run(t *testing.T, cfg Config) (*Report, *discardSink) {
	t.Helper()
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &discardSink{}
	rep, err := e.Run(sink)
	if err != nil {
		t.Fatal(err)
	}
	return rep, sink
}

// TestConfigValidation pins the structural error surface — and that
// the legacy zero-value sentinels are gone: 0 dB SNR and a zero mean
// gap are valid, representable scenarios here.
func TestConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	bad := []func(*Config){
		func(c *Config) { c.Senders = 0 },
		func(c *Config) { c.FramesPerSender = 0 },
		func(c *Config) { c.FramesPerSender = 257 },
		func(c *Config) { c.Senders = 1<<16 + 1 },
		func(c *Config) { c.Senders = 300; c.DataBytes = 2 },
		func(c *Config) { c.DataBytes = 0 },
		func(c *Config) { c.DataBytes = 99 },
		func(c *Config) { c.MeanGapAirtimes = -1 },
		func(c *Config) { c.CFOJitterHz = -1 },
		func(c *Config) { c.ChunkSamples = 0 },
	}
	for i, mutate := range bad {
		cfg := Defaults()
		cfg.Senders, cfg.FramesPerSender = 2, 2
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
	good := Defaults()
	good.Senders, good.FramesPerSender = 2, 2
	good.SNRdB = 0           // a genuine 0 dB scenario
	good.MeanGapAirtimes = 0 // back-to-back transmission
	if err := good.Validate(); err != nil {
		t.Errorf("0 dB / zero-gap config rejected: %v", err)
	}
}

// TestScheduleDeterminism pins the seed contract at the engine level:
// equal seeds reproduce the full report (schedule, collisions, peaks)
// exactly, different seeds move the schedule.
func TestScheduleDeterminism(t *testing.T) {
	cfg := Defaults()
	cfg.Senders, cfg.FramesPerSender, cfg.Seed = 5, 3, 11
	cfg.MeanGapAirtimes = 1
	cfg.CFOJitterHz, cfg.SFOppm, cfg.GainSpreadDB = 20e3, 10, 3
	a, sinkA := run(t, cfg)
	b, sinkB := run(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different reports:\n%+v\n%+v", a, b)
	}
	if sinkA.samples != sinkB.samples || sinkA.chunks != sinkB.chunks {
		t.Errorf("same seed, different capture stream: %+v vs %+v", sinkA, sinkB)
	}
	cfg.Seed = 12
	c, _ := run(t, cfg)
	if c.DurationSec == a.DurationSec && c.Collisions == a.Collisions {
		t.Error("different seeds left schedule and collisions identical")
	}
}

// TestZeroGapZeroSNR runs the scenario the legacy sentinels could not
// express: senders at 0 dB transmitting back-to-back.
func TestZeroGapZeroSNR(t *testing.T) {
	cfg := Defaults()
	cfg.Senders, cfg.FramesPerSender, cfg.Seed = 1, 3, 1
	cfg.SNRdB = 0
	cfg.MeanGapAirtimes = 0
	rep, sink := run(t, cfg)
	if rep.Collisions != 0 {
		t.Errorf("single sender collided %d times", rep.Collisions)
	}
	// Back-to-back frames may straddle one chunk window at the seam,
	// so a single sender's overlap peaks at 2, never more.
	if rep.PeakOverlap > 2 {
		t.Errorf("peak overlap %d, want <= 2", rep.PeakOverlap)
	}
	// Back-to-back: capture = 3 contiguous airtimes plus the decode pad.
	if got := rep.TotalSamples; got <= 3*rep.AirtimeSamples {
		t.Errorf("total %d samples, want > %d", got, 3*rep.AirtimeSamples)
	}
	if sink.samples != rep.TotalSamples {
		t.Errorf("sink saw %d samples, report says %d", sink.samples, rep.TotalSamples)
	}
	if sink.maxLen > cfg.ChunkSamples {
		t.Errorf("chunk of %d samples exceeds configured %d", sink.maxLen, cfg.ChunkSamples)
	}
}

// TestPeakWindowIndependentOfFrames pins the memory model: the peak
// synthesized-window size is a function of overlap width and airtime
// (at most twice the sender count when a frame seam straddles a chunk
// window), not of how many frames each sender sends (total airtime).
func TestPeakWindowIndependentOfFrames(t *testing.T) {
	for _, senders := range []int{1, 4} {
		peaks := map[int]bool{}
		for _, frames := range []int{2, 4, 16} {
			cfg := Defaults()
			cfg.Senders, cfg.FramesPerSender, cfg.Seed = senders, frames, 7
			cfg.MeanGapAirtimes = 0 // continuous occupancy: overlap = senders
			rep, _ := run(t, cfg)
			if rep.PeakWindowSamples != rep.PeakOverlap*rep.AirtimeSamples {
				t.Errorf("N=%d F=%d: peak window %d samples, want overlap %d × airtime %d",
					senders, frames, rep.PeakWindowSamples, rep.PeakOverlap, rep.AirtimeSamples)
			}
			if rep.PeakOverlap > 2*senders {
				t.Errorf("N=%d F=%d: peak overlap %d exceeds seam bound %d",
					senders, frames, rep.PeakOverlap, 2*senders)
			}
			peaks[rep.PeakWindowSamples] = true
		}
		if len(peaks) != 1 {
			t.Errorf("N=%d: peak window varies with FramesPerSender: %v", senders, peaks)
		}
	}
}

// TestEngineSingleRun pins the single-use contract and the decode
// feedback path.
func TestEngineSingleRun(t *testing.T) {
	cfg := Defaults()
	cfg.Senders, cfg.FramesPerSender, cfg.Seed = 1, 1, 1
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Report(); !errors.Is(err, errNotFinished) {
		t.Errorf("report before run: %v", err)
	}
	if _, err := e.Run(nil); !errors.Is(err, errNilSink) {
		t.Errorf("nil sink: %v", err)
	}
	if _, err := e.Run(&discardSink{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(&discardSink{}); !errors.Is(err, errRan) {
		t.Errorf("second run: %v", err)
	}
	if e.MarkDecoded(9, 9) {
		t.Error("unknown transmission credited")
	}
	if !e.MarkDecoded(0, 0) {
		t.Error("known transmission not credited")
	}
	if e.MarkDecoded(0, 0) {
		t.Error("transmission credited twice")
	}
	rep, err := e.Report()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 1 || rep.PerSender[0].Delivered != 1 {
		t.Errorf("delivery accounting wrong: %+v", rep)
	}
}
