package medium

import (
	"errors"
	"fmt"

	"math/rand"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/splitmix"
)

// Sink consumes the synthesized shared-medium capture chunk-by-chunk
// (internal/link wraps a streaming-preset Stack in one). The chunk
// slice is the engine's scratch buffer and is reused: it stays valid
// only until the next PushChunk.
type Sink interface {
	PushChunk(iq []complex128) error
	Flush() error
}

// SenderStats is one sender's delivery accounting (the same schema the
// legacy link scenario reported).
type SenderStats struct {
	// Sender is the sender's identity (0-based).
	Sender int `json:"sender"`
	// Sent is the number of frames transmitted.
	Sent int `json:"sent"`
	// Delivered is the number of frames the receiver decoded intact.
	Delivered int `json:"delivered"`
	// Collided is the number of transmissions whose airtime overlapped
	// another sender's transmission.
	Collided int `json:"collided"`
	// CollidedDelivered counts collided transmissions that decoded
	// anyway (capture effect under the gain spread).
	CollidedDelivered int `json:"collided_delivered"`
	// DeliveryRate is Delivered/Sent.
	DeliveryRate float64 `json:"delivery_rate"`
	// CollisionRate is Collided/Sent.
	CollisionRate float64 `json:"collision_rate"`
}

// Report is the outcome of one scenario run.
type Report struct {
	// Senders/FramesPerSender/Seed echo the scenario shape.
	Senders         int   `json:"senders"`
	FramesPerSender int   `json:"frames_per_sender"`
	Seed            int64 `json:"seed"`
	// OfferedLoadPerSender is the nominal per-sender airtime duty,
	// 1/(1+MeanGapAirtimes); times Senders it is the total offered load.
	OfferedLoadPerSender float64 `json:"offered_load_per_sender"`
	// DurationSec is the simulated capture length in seconds.
	DurationSec float64 `json:"duration_sec"`
	// AirtimeSamples is one frame's constant airtime in samples.
	AirtimeSamples int `json:"airtime_samples"`
	// TotalSamples is the number of capture samples synthesized.
	TotalSamples int `json:"total_samples"`
	// Delivered is the total number of frames decoded intact.
	Delivered int `json:"delivered"`
	// Collisions is the total number of collided transmissions.
	Collisions int `json:"collisions"`
	// GoodputBps is delivered application data in bits per simulated
	// second.
	GoodputBps float64 `json:"goodput_bps"`
	// CollisionRate is Collisions over total transmissions.
	CollisionRate float64 `json:"collision_rate"`
	// DeliveryRate is Delivered over total transmissions.
	DeliveryRate float64 `json:"delivery_rate"`
	// PeakOverlap is the maximum number of simultaneously-active
	// transmissions the renderer held.
	PeakOverlap int `json:"peak_overlap"`
	// PeakWindowSamples is the maximum total waveform samples held at
	// once — the engine's memory bound, a function of overlap width and
	// airtime, independent of FramesPerSender and capture length.
	PeakWindowSamples int `json:"peak_window_samples"`
	// PerSender is each sender's accounting, ordered by sender id.
	PerSender []SenderStats `json:"per_sender"`
}

// Engine run errors.
var (
	errRan         = errors.New("medium: engine already ran")
	errAirtime     = errors.New("medium: synthesized waveform length disagrees with schedule airtime")
	errNilSink     = errors.New("medium: nil sink")
	errNotFinished = errors.New("medium: report requested before Run finished")
)

// txState is one transmission's accounting record. Records are tiny
// and kept for the whole run (the waveform is not).
type txState struct {
	sender, seq int
	start, end  int
	collide     bool
	decoded     bool
}

// activeTx is a transmission currently overlapping the render window:
// the only state whose size scales with airtime, held from admission
// until the cursor passes its end.
type activeTx struct {
	rec  *txState
	sig  []complex128
	gain complex128
}

// Engine runs one shared-medium scenario. Build with NewEngine, drive
// with Run, feed decode outcomes back through MarkDecoded. An engine is
// single-run and single-goroutine.
type Engine struct {
	cfg     Config
	phy     *core.Link
	airtime int
	queue   eventQueue
	noise   *rand.Rand

	records []*txState
	active  []*activeTx

	// Streaming interval-overlap collision state: the running max end
	// and the record that set it (the dense reference's exact rule).
	maxEnd  int
	lastMax *txState

	activeSamples int
	peakOverlap   int
	peakWindow    int

	ran      bool
	finished int // total samples synthesized; -1 while running
}

// NewEngine validates cfg, probes the constant per-frame airtime, and
// seeds every sender's schedule source.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Senders are baseband-aligned and carry their own CFO; the
	// receiver compensates the canonical offset as on a real channel.
	phy, err := core.NewLink(cfg.Params, 0)
	if err != nil {
		return nil, fmt.Errorf("medium: %w", err)
	}
	e := &Engine{
		cfg:      cfg,
		phy:      phy,
		maxEnd:   -1,
		noise:    splitmix.New(cfg.Seed, splitmix.NoiseStream),
		finished: -1,
	}
	// Every frame modulates the same payload length, and SFO
	// resampling preserves length, so one probe pins the airtime every
	// schedule draw depends on.
	probe, err := e.waveform(0, 0, 0, 0)
	if err != nil {
		return nil, err
	}
	e.airtime = len(probe)
	for s := 0; s < cfg.Senders; s++ {
		e.queue.push(newSenderSource(cfg, s, e.airtime))
	}
	return e, nil
}

// Airtime returns the constant per-frame airtime in samples.
func (e *Engine) Airtime() int { return e.airtime }

// Run synthesizes the scenario into sink chunk-by-chunk and returns
// the report. The sink may call MarkDecoded re-entrantly from
// PushChunk/Flush as its receiver emits frames.
func (e *Engine) Run(sink Sink) (*Report, error) {
	if sink == nil {
		return nil, errNilSink
	}
	if e.ran {
		return nil, errRan
	}
	e.ran = true
	chunk := make([]complex128, e.cfg.ChunkSamples)
	cur := 0
	endAt := -1
	for {
		// Admit every transmission starting inside the next window;
		// admission synthesizes its waveform and may re-queue the
		// sender's next frame.
		for e.queue.len() > 0 && e.queue.peekStart() < cur+len(chunk) {
			if err := e.admit(); err != nil {
				return nil, err
			}
		}
		if endAt < 0 && e.queue.len() == 0 {
			// All transmissions known: the capture ends after the last
			// airtime plus the decode-gate pad that forces the final
			// frame's deferred decode (phase stream trails by Lag).
			endAt = e.maxEnd + core.DecodeGateSpan(e.cfg.Params) +
				padSlackPeriods*e.cfg.Params.BitPeriod + e.cfg.Params.Lag
		}
		if endAt >= 0 && cur >= endAt {
			break
		}
		n := len(chunk)
		if endAt >= 0 && cur+n > endAt {
			n = endAt - cur
		}
		buf := chunk[:n]
		renderChunk(buf, e.active, cur, e.noise)
		if err := sink.PushChunk(buf); err != nil {
			return nil, err
		}
		cur += n
		e.retire(cur)
	}
	if err := sink.Flush(); err != nil {
		return nil, err
	}
	e.finished = cur
	return e.buildReport(), nil
}

// padSlackPeriods is the decode-gate anchor slack in bit periods
// appended after the final transmission (the value the legacy scenario
// passed to link.PadHorizon).
const padSlackPeriods = 12

// admit pops the earliest pending transmission, records it, streams
// the collision bookkeeping, synthesizes its waveform and activates
// it. Admission order is (start, sender) — the dense reference's sort.
func (e *Engine) admit() error {
	src := e.queue.pop()
	rec := &txState{
		sender: src.id,
		seq:    src.nextSeq,
		start:  src.nextStart,
		end:    src.nextStart + e.airtime,
	}
	if e.lastMax != nil && rec.start < e.maxEnd {
		rec.collide = true
		e.lastMax.collide = true
	}
	if rec.end > e.maxEnd {
		e.maxEnd = rec.end
		e.lastMax = rec
	}
	e.records = append(e.records, rec)
	sig, err := e.waveform(rec.sender, rec.seq, src.sfoPPM, src.cfoHz)
	if err != nil {
		return err
	}
	if len(sig) != e.airtime {
		return fmt.Errorf("%w: got %d, want %d", errAirtime, len(sig), e.airtime)
	}
	e.active = append(e.active, &activeTx{rec: rec, sig: sig, gain: src.gain})
	e.activeSamples += len(sig)
	if len(e.active) > e.peakOverlap {
		e.peakOverlap = len(e.active)
	}
	if e.activeSamples > e.peakWindow {
		e.peakWindow = e.activeSamples
	}
	if src.advance() {
		e.queue.push(src)
	}
	return nil
}

// waveform synthesizes one frame's impaired transmit signal: identity
// bytes (low id, sequence, high id), SymBee frame encoding, ZigBee
// modulation, then the sender's SFO resample and CFO rotation.
func (e *Engine) waveform(sender, seq int, sfoPPM, cfoHz float64) ([]complex128, error) {
	data := make([]byte, e.cfg.DataBytes)
	data[0] = byte(sender)
	if e.cfg.DataBytes > 1 {
		data[1] = byte(seq)
	}
	if e.cfg.DataBytes > 2 {
		data[2] = byte(sender >> 8)
	}
	payload, err := core.EncodeFrame(&core.Frame{Seq: byte(seq), Data: data})
	if err != nil {
		return nil, fmt.Errorf("medium: %w", err)
	}
	sig, err := e.phy.PayloadToSignal(payload)
	if err != nil {
		return nil, fmt.Errorf("medium: %w", err)
	}
	if sfoPPM != 0 {
		sig = channel.ApplySFO(sig, sfoPPM)
	}
	if cfoHz != 0 {
		channel.ApplyCFO(sig, cfoHz, e.cfg.Params.SampleRate)
	}
	return sig, nil
}

// retire releases every active transmission the cursor has passed,
// freeing its waveform (the records stay for accounting).
func (e *Engine) retire(cur int) {
	kept := e.active[:0]
	for _, a := range e.active {
		if a.rec.end <= cur {
			e.activeSamples -= len(a.sig)
			a.sig = nil
			continue
		}
		kept = append(kept, a)
	}
	for i := len(kept); i < len(e.active); i++ {
		e.active[i] = nil
	}
	e.active = kept
}

// MarkDecoded credits a decoded frame to the earliest matching
// not-yet-credited transmission (the dense reference's matching rule)
// and reports whether one matched.
func (e *Engine) MarkDecoded(sender, seq int) bool {
	for _, rec := range e.records {
		if rec.sender == sender && rec.seq == seq && !rec.decoded {
			rec.decoded = true
			return true
		}
	}
	return false
}

// buildReport folds the transmission records into the scenario report.
func (e *Engine) buildReport() *Report {
	per := make([]SenderStats, e.cfg.Senders)
	for i := range per {
		per[i].Sender = i
	}
	delivered, collisions := 0, 0
	for _, rec := range e.records {
		st := &per[rec.sender]
		st.Sent++
		if rec.decoded {
			st.Delivered++
			delivered++
		}
		if rec.collide {
			st.Collided++
			collisions++
			if rec.decoded {
				st.CollidedDelivered++
			}
		}
	}
	for i := range per {
		if per[i].Sent > 0 {
			per[i].DeliveryRate = float64(per[i].Delivered) / float64(per[i].Sent)
			per[i].CollisionRate = float64(per[i].Collided) / float64(per[i].Sent)
		}
	}
	duration := float64(e.finished) / e.cfg.Params.SampleRate
	total := e.cfg.Senders * e.cfg.FramesPerSender
	return &Report{
		Senders:              e.cfg.Senders,
		FramesPerSender:      e.cfg.FramesPerSender,
		Seed:                 e.cfg.Seed,
		OfferedLoadPerSender: e.cfg.OfferedLoadPerSender(),
		DurationSec:          duration,
		AirtimeSamples:       e.airtime,
		TotalSamples:         e.finished,
		Delivered:            delivered,
		Collisions:           collisions,
		GoodputBps:           float64(delivered*e.cfg.DataBytes*8) / duration,
		CollisionRate:        float64(collisions) / float64(total),
		DeliveryRate:         float64(delivered) / float64(total),
		PeakOverlap:          e.peakOverlap,
		PeakWindowSamples:    e.peakWindow,
		PerSender:            per,
	}
}

// Report returns the finished run's report (Run returns it too; this
// accessor serves sinks that want it after the fact).
func (e *Engine) Report() (*Report, error) {
	if e.finished < 0 {
		return nil, errNotFinished
	}
	return e.buildReport(), nil
}
