package medium

import (
	"errors"
	"fmt"

	"symbee/internal/core"
)

// Config parameterizes one shared-medium scenario. Unlike the legacy
// link.MultiSenderConfig, no field doubles as a sentinel: every value
// is taken literally, so a genuine 0 dB scenario (SNRdB = 0) and a
// back-to-back schedule (MeanGapAirtimes = 0) are both representable.
// Start from Defaults() and override what the scenario needs.
type Config struct {
	// Params is the receiver parameter set (explicit; Defaults() fills
	// core.Params20).
	Params core.Params
	// Senders is the number of independent ZigBee transmitters (≥ 1,
	// ≤ 65536). Identities above 255 need DataBytes ≥ 3 so the high
	// identity byte fits the payload.
	Senders int
	// FramesPerSender is how many frames each sender transmits
	// (1..256; the per-frame sequence byte must stay unambiguous).
	FramesPerSender int
	// Seed drives every random draw. Streams are split per sender via
	// internal/splitmix (receiver noise is stream −1); equal seeds
	// reproduce the scenario bit-for-bit.
	Seed int64
	// SNRdB is the per-sender signal-to-noise ratio before the gain
	// spread is applied. Taken literally: 0 means 0 dB.
	SNRdB float64
	// MeanGapAirtimes is each sender's mean exponential idle gap
	// between frames, as a multiple of one frame airtime (an unslotted
	// ALOHA offered load of 1/(1+gap) per sender). Taken literally:
	// 0 means back-to-back transmission.
	MeanGapAirtimes float64
	// CFOJitterHz spreads each sender's carrier offset uniformly in
	// ±CFOJitterHz around channel.DefaultFreqOffset. Zero keeps every
	// sender at the nominal offset.
	CFOJitterHz float64
	// SFOppm spreads each sender's sampling clock uniformly in ±SFOppm
	// parts per million. Zero disables SFO.
	SFOppm float64
	// GainSpreadDB spreads each sender's receive power uniformly in
	// ±GainSpreadDB around SNRdB (near-far effect). Zero makes all
	// senders equally strong.
	GainSpreadDB float64
	// DataBytes is the frame payload size (1..core.MaxDataBytes).
	// Byte 0 carries the low identity byte, byte 1 the sequence number,
	// byte 2 (when present) the high identity byte.
	DataBytes int
	// ChunkSamples is the synthesis window and receive chunk size in
	// samples (> 0). It bounds the renderer's scratch memory and is the
	// granularity at which the sink sees the capture.
	ChunkSamples int
}

// Defaults returns the baseline scenario configuration: 20 Msps
// receiver, 20 dB SNR, mean gap of 4 airtimes, 4 payload bytes, 4096
// sample chunks. Senders, FramesPerSender and Seed are left zero; the
// caller must set the first two (Validate rejects them unset, on
// purpose — there is no implicit population size).
func Defaults() Config {
	return Config{
		Params:          core.Params20(),
		SNRdB:           20,
		MeanGapAirtimes: 4,
		DataBytes:       4,
		ChunkSamples:    4096,
	}
}

// Config validation errors.
var (
	errSenders   = errors.New("medium: need at least one sender and one frame per sender")
	errTooMany   = errors.New("medium: more than 65536 senders")
	errFrames    = errors.New("medium: more than 256 frames per sender (sequence byte ambiguous)")
	errDataBytes = errors.New("medium: DataBytes out of range")
	errIdentity  = errors.New("medium: sender identities above 255 need DataBytes >= 3")
	errGap       = errors.New("medium: negative MeanGapAirtimes")
	errJitter    = errors.New("medium: negative impairment spread")
	errChunk     = errors.New("medium: ChunkSamples must be positive")
)

// Validate reports the first structural problem with the config.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("medium: %w", err)
	}
	switch {
	case c.Senders < 1 || c.FramesPerSender < 1:
		return errSenders
	case c.Senders > 1<<16:
		return fmt.Errorf("%w: %d", errTooMany, c.Senders)
	case c.FramesPerSender > 256:
		return fmt.Errorf("%w: %d", errFrames, c.FramesPerSender)
	case c.DataBytes < 1 || c.DataBytes > core.MaxDataBytes:
		return fmt.Errorf("%w: %d", errDataBytes, c.DataBytes)
	case c.Senders > 256 && c.DataBytes < 3:
		return fmt.Errorf("%w: %d senders, %d data bytes", errIdentity, c.Senders, c.DataBytes)
	case c.MeanGapAirtimes < 0:
		return fmt.Errorf("%w: %v", errGap, c.MeanGapAirtimes)
	case c.CFOJitterHz < 0 || c.SFOppm < 0 || c.GainSpreadDB < 0:
		return fmt.Errorf("%w: cfo %v, sfo %v, gain %v", errJitter,
			c.CFOJitterHz, c.SFOppm, c.GainSpreadDB)
	case c.ChunkSamples <= 0:
		return fmt.Errorf("%w: %d", errChunk, c.ChunkSamples)
	}
	return nil
}

// OfferedLoadPerSender returns the nominal unslotted offered load of
// one sender: the fraction of time it spends transmitting,
// 1/(1+MeanGapAirtimes).
func (c Config) OfferedLoadPerSender() float64 {
	return 1 / (1 + c.MeanGapAirtimes)
}
