// Package medium is the event-driven shared-medium simulator: N seeded
// ZigBee senders contend for one channel into a single WiFi receiver,
// with the capture synthesized lazily instead of materialized whole.
//
// The legacy scenario (internal/link.RunMultiSender before this
// package) rendered every sender's every frame up front and superposed
// them into one slice — O(senders · frames · airtime) memory, which
// caps populations at a room (N ≤ 8). Here the same scenario is a
// discrete-event system:
//
//   - Each sender is a lazily-advanced schedule source: its private
//     splitmix stream (internal/splitmix, stream = sender id) draws the
//     per-sender CFO/SFO/gain impairments and then one exponential idle
//     gap per frame, exactly one draw ahead of the render cursor.
//   - A min-heap event queue admits transmissions in (start, sender)
//     order as the cursor approaches them; admission synthesizes the
//     frame's impaired waveform on demand and streams the collision
//     bookkeeping (interval overlap against the running max-end).
//   - The renderer produces the capture chunk-by-chunk: each chunk is
//     zeroed, every active transmission's overlap is mixed in admission
//     order, and unit receiver noise (splitmix stream −1) is added last
//     — the same per-sample addition order as the dense reference, so
//     captures match bit-for-bit and so does every downstream decode.
//   - A transmission's waveform is freed as soon as the cursor passes
//     its end: peak memory is bounded by the concurrent-overlap width
//     (PeakWindowSamples in the Report), not by total airtime, and idle
//     air costs two Gaussian draws per sample and nothing else.
//
// The engine knows nothing about reception: it pushes chunks into a
// Sink (internal/link wraps a streaming-preset Stack) and is told about
// decoded frames through MarkDecoded. This keeps the dependency
// direction medium ← link and lets any receiver assembly — or none, for
// pure schedule/occupancy studies — consume the same scenario.
package medium
