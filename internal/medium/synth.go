package medium

import (
	"math/rand"

	"symbee/internal/channel"
)

// renderChunk synthesizes the shared-medium capture for the window
// [cur, cur+len(dst)): zero the window, mix every active
// transmission's overlap in admission (schedule) order, then add unit
// receiver noise last. That is exactly the per-sample addition order
// of the dense reference (which superposes whole waveforms in sorted
// order and AWGNs the finished capture), so the lazily-rendered
// capture is bit-identical to the materialized one. Idle windows cost
// the noise draws and nothing else.
//
//symbee:hotpath
func renderChunk(dst []complex128, active []*activeTx, cur int, noise *rand.Rand) {
	for i := range dst {
		dst[i] = 0
	}
	for _, a := range active {
		mixOverlap(dst, a, cur)
	}
	channel.AddAWGN(dst, 1, noise)
}

// mixOverlap adds the slice of a's waveform that overlaps the window
// starting at cur into dst, scaled by the sender's gain.
func mixOverlap(dst []complex128, a *activeTx, cur int) {
	lo := a.rec.start - cur
	off := 0
	if lo < 0 {
		off = -lo
		lo = 0
	}
	n := len(a.sig) - off
	if m := len(dst) - lo; n > m {
		n = m
	}
	if n <= 0 {
		return
	}
	g := a.gain
	seg := a.sig[off : off+n]
	out := dst[lo : lo+n]
	for i, v := range seg {
		out[i] += v * g
	}
}
