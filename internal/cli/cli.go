// Package cli deduplicates the flag and configuration plumbing the
// command-line tools share: capture-input selection (trace file, trace
// on stdin, raw IQ on stdin), sample-rate → receiver-parameter mapping,
// the common seed/workers knobs, and the JSON artifact writer the bench
// tools emit their results through. Keeping these in one place makes
// every tool accept the same spellings with the same defaults.
package cli

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"symbee/internal/core"
	"symbee/internal/trace"
)

// ParamsForRate maps a capture sample rate to the receiver parameter
// set every tool resolves the same way.
func ParamsForRate(rate float64) (core.Params, error) {
	switch rate {
	case 20e6: //symbee:ignore floatcmp -- rate is a flag-parsed literal matched exactly: near-20e6 rates must hit the error branch, not round into it
		return core.Params20(), nil
	case 40e6: //symbee:ignore floatcmp -- same exact-match contract as the 20e6 arm
		return core.Params40(), nil
	}
	return core.Params{}, fmt.Errorf("sample rate %v unsupported (want 20e6 or 40e6)", rate)
}

// ParamsForTrace resolves the receiver parameters for a loaded capture.
func ParamsForTrace(tr *trace.Trace) (core.Params, error) {
	return ParamsForRate(tr.SampleRate)
}

// Input is the shared capture-input configuration: a trace file ("-"
// for stdin), or — when enabled — raw interleaved complex64 IQ on
// stdin at an explicit rate.
type Input struct {
	// Path is the trace file ("-" reads a trace from stdin).
	Path string
	// Raw switches stdin to raw complex64 LE IQ (RegisterInput with
	// raw=true only).
	Raw bool
	// Rate is the sample rate assumed for raw input, Hz.
	Rate float64

	// stdin is the raw/stdin source; defaults to os.Stdin (tests
	// substitute).
	stdin io.Reader
}

// RegisterInput adds the capture-input flags to fs: always -in, and
// with raw also -raw and -rate. The returned Input is resolved by Load
// after fs.Parse.
func RegisterInput(fs *flag.FlagSet, raw bool) *Input {
	in := &Input{stdin: os.Stdin}
	fs.StringVar(&in.Path, "in", "", "trace file to read (\"-\" for stdin)")
	if raw {
		fs.BoolVar(&in.Raw, "raw", false, "read raw interleaved complex64 LE IQ from stdin instead of a trace")
		fs.Float64Var(&in.Rate, "rate", 20e6, "sample rate for -raw input, Hz")
	}
	return in
}

// Load resolves the configured input to a capture.
func (in *Input) Load() (*trace.Trace, error) {
	src := in.stdin
	if src == nil {
		src = os.Stdin
	}
	if in.Raw {
		iq, err := ReadRawIQ(src)
		if err != nil {
			return nil, err
		}
		return &trace.Trace{Kind: trace.KindIQ, SampleRate: in.Rate, IQ: iq}, nil
	}
	switch in.Path {
	case "":
		return nil, errors.New("need -in trace file")
	case "-":
		return trace.Read(src)
	default:
		return trace.Load(in.Path)
	}
}

// ReadRawIQ consumes interleaved little-endian complex64 pairs to EOF.
func ReadRawIQ(r io.Reader) ([]complex128, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var iq []complex128
	buf := make([]byte, 8)
	for {
		if _, err := io.ReadFull(br, buf); err != nil {
			if errors.Is(err, io.EOF) {
				return iq, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("raw input ends mid-sample (%d bytes over)", len(buf))
			}
			return nil, err
		}
		re := math.Float32frombits(binary.LittleEndian.Uint32(buf))
		im := math.Float32frombits(binary.LittleEndian.Uint32(buf[4:]))
		iq = append(iq, complex(float64(re), float64(im)))
	}
}

// ParseIntList parses a comma-separated list of positive integers
// ("8,64,256") — the spelling sweep-width flags share.
func ParseIntList(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, part := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q in %q", part, s)
		}
		if v < 1 {
			return nil, fmt.Errorf("non-positive list entry %d in %q", v, s)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("empty int list")
	}
	return out, nil
}

// RegisterSeed adds the standard -seed flag (default 1, the value every
// seeded tool starts from).
func RegisterSeed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 1, "random seed")
}

// RegisterWorkers adds the standard -workers flag (0 = GOMAXPROCS).
func RegisterWorkers(fs *flag.FlagSet) *int {
	return fs.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
}

// WriteJSON writes v as indented JSON with a trailing newline to path —
// the artifact convention of every bench tool. An empty path is a
// silent no-op; the returned bool reports whether a file was written.
func WriteJSON(path string, v any) (bool, error) {
	if path == "" {
		return false, nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return false, err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return false, err
	}
	return true, nil
}
