package cli

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"symbee/internal/trace"
)

func TestParamsForRate(t *testing.T) {
	p20, err := ParamsForRate(20e6)
	if err != nil || p20.SampleRate != 20e6 {
		t.Fatalf("20 Msps: params %+v, err %v", p20, err)
	}
	p40, err := ParamsForRate(40e6)
	if err != nil || p40.SampleRate != 40e6 {
		t.Fatalf("40 Msps: params %+v, err %v", p40, err)
	}
	if _, err := ParamsForRate(10e6); err == nil {
		t.Fatal("10 Msps accepted, want error")
	}
}

// rawIQBytes encodes samples in the raw stdin format: interleaved
// little-endian complex64 pairs.
func rawIQBytes(samples []complex128) []byte {
	var buf bytes.Buffer
	for _, s := range samples {
		var w [8]byte
		binary.LittleEndian.PutUint32(w[:4], math.Float32bits(float32(real(s))))
		binary.LittleEndian.PutUint32(w[4:], math.Float32bits(float32(imag(s))))
		buf.Write(w[:])
	}
	return buf.Bytes()
}

func TestReadRawIQ(t *testing.T) {
	want := []complex128{1 + 2i, -0.5 - 0.25i, 0}
	got, err := ReadRawIQ(bytes.NewReader(rawIQBytes(want)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d samples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if _, err := ReadRawIQ(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("truncated raw input accepted, want mid-sample error")
	}
}

func TestInputLoadRaw(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	in := RegisterInput(fs, true)
	if err := fs.Parse([]string{"-raw", "-rate", "40e6"}); err != nil {
		t.Fatal(err)
	}
	in.stdin = bytes.NewReader(rawIQBytes([]complex128{3 + 4i}))
	tr, err := in.Load()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != trace.KindIQ || tr.SampleRate != 40e6 || len(tr.IQ) != 1 {
		t.Fatalf("raw load: kind=%v rate=%v n=%d", tr.Kind, tr.SampleRate, len(tr.IQ))
	}
}

func TestInputLoadTrace(t *testing.T) {
	src := &trace.Trace{Kind: trace.KindPhase, SampleRate: 20e6, Phases: []float64{0.5, -0.5}}
	path := filepath.Join(t.TempDir(), "in.sbtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	in := RegisterInput(fs, false)
	if err := fs.Parse([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
	tr, err := in.Load()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Kind != trace.KindPhase || len(tr.Phases) != 2 {
		t.Fatalf("trace load: kind=%v n=%d", tr.Kind, len(tr.Phases))
	}
	if _, err := ParamsForTrace(tr); err != nil {
		t.Fatal(err)
	}

	// Stdin trace via "-".
	var buf bytes.Buffer
	if err := src.Write(&buf); err != nil {
		t.Fatal(err)
	}
	in.Path = "-"
	in.stdin = &buf
	if tr, err = in.Load(); err != nil || len(tr.Phases) != 2 {
		t.Fatalf("stdin trace load: n=%d err=%v", len(tr.Phases), err)
	}

	// Missing -in is an error, not an empty capture.
	in.Path = ""
	if _, err := in.Load(); err == nil || !strings.Contains(err.Error(), "-in") {
		t.Fatalf("empty path: err=%v, want -in hint", err)
	}
}

func TestWriteJSON(t *testing.T) {
	if wrote, err := WriteJSON("", map[string]int{"a": 1}); err != nil || wrote {
		t.Fatalf("empty path: wrote=%v err=%v, want silent no-op", wrote, err)
	}
	path := filepath.Join(t.TempDir(), "out.json")
	wrote, err := WriteJSON(path, map[string]int{"a": 1})
	if err != nil || !wrote {
		t.Fatalf("wrote=%v err=%v", wrote, err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(raw, []byte("\n")) {
		t.Error("artifact missing trailing newline")
	}
	var got map[string]int
	if err := json.Unmarshal(raw, &got); err != nil || got["a"] != 1 {
		t.Fatalf("round-trip: %v err=%v", got, err)
	}
}

func TestParseIntList(t *testing.T) {
	good := map[string][]int{
		"8":             {8},
		"8,64,256,1024": {8, 64, 256, 1024},
		" 8, 64 ":       {8, 64},
	}
	for in, want := range good {
		got, err := ParseIntList(in)
		if err != nil {
			t.Errorf("ParseIntList(%q): %v", in, err)
			continue
		}
		if len(got) != len(want) {
			t.Errorf("ParseIntList(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("ParseIntList(%q) = %v, want %v", in, got, want)
				break
			}
		}
	}
	for _, in := range []string{"", "8,,64", "a", "8,-1", "0"} {
		if got, err := ParseIntList(in); err == nil {
			t.Errorf("ParseIntList(%q) = %v, want error", in, got)
		}
	}
}
