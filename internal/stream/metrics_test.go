package stream

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Load())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []float64{1, 10, 11, 99, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d", s.Count)
	}
	if want := 1.0 + 10 + 11 + 99 + 100 + 5000; s.Sum != want {
		t.Errorf("sum = %v, want %v", s.Sum, want)
	}
	wantCounts := []uint64{2, 3, 0, 1} // ≤10, ≤100, ≤1000, overflow
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d (le %v) count = %d, want %d", i, b.Le, b.Count, wantCounts[i])
		}
	}
	if !math.IsInf(s.Buckets[3].Le, 1) {
		t.Errorf("last bucket le = %v, want +Inf", s.Buckets[3].Le)
	}
	if mean := s.Sum / 6; s.Mean != mean {
		t.Errorf("mean = %v, want %v", s.Mean, mean)
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := NewHistogram(1e6)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Observe(2)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 || s.Sum != 16000 {
		t.Errorf("count/sum = %d/%v, want 8000/16000", s.Count, s.Sum)
	}
}

func TestHistogramNormalizesBounds(t *testing.T) {
	// Unsorted and duplicated bounds are sorted and deduplicated, so the
	// histogram is always well-formed.
	h := NewHistogram(10, 5, 10)
	for _, v := range []float64{1, 7, 50} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 3 { // ≤5, ≤10, overflow
		t.Fatalf("buckets = %d, want 3", len(s.Buckets))
	}
	if s.Buckets[0].Le != 5 || s.Buckets[1].Le != 10 {
		t.Errorf("bounds = %v, %v, want 5, 10", s.Buckets[0].Le, s.Buckets[1].Le)
	}
	wantCounts := []uint64{1, 1, 1}
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Errorf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
}

func TestSnapshotJSONSchema(t *testing.T) {
	m := NewMetrics()
	m.ChunksIn.Add(3)
	m.FramesDecoded.Add(2)
	m.PhaseNanos.Observe(5e4)
	raw, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"chunks_in", "samples_in", "phases_in", "drops", "phases_produced",
		"locks", "frames_decoded", "frames_failed", "streams_opened",
		"streams_flushed", "phase_ns", "decode_ns", "chunk_ns",
	} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("snapshot JSON missing %q", key)
		}
	}
	if decoded["chunks_in"].(float64) != 3 {
		t.Errorf("chunks_in = %v", decoded["chunks_in"])
	}
	// The overflow bucket must serialize as the string "+Inf", since
	// JSON cannot carry an infinity.
	if !strings.Contains(string(raw), `"le":"+Inf"`) {
		t.Errorf("snapshot JSON lacks +Inf overflow bucket: %s", raw)
	}
}
