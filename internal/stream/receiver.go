package stream

import (
	"symbee/internal/core"
	"symbee/internal/link"
)

// Event is one occurrence on one stream: a preamble lock, a decoded
// frame, or a decode failure. It is the link stack's event type —
// core.StreamEvent wrapped with the stream identity so pool consumers
// can demultiplex.
type Event = link.Event

// Receiver is the complete per-stream receive chain: the streaming
// preset of the link stack (incremental IQ→phase front-end feeding a
// bounded-history FrameMachine). It accepts IQ or phase chunks of any
// size and emits events exactly as a batch decode of the concatenated
// stream would. A Receiver is owned by one goroutine (its pool worker);
// it is not safe for concurrent use.
type Receiver struct {
	stack *link.Stack
}

// NewReceiver builds a single-stream receiver. metrics may be nil for
// an uninstrumented receiver (the hot path then skips all accounting).
func NewReceiver(p core.Params, compensation float64, metrics *Metrics) (*Receiver, error) {
	d, err := core.NewDecoder(p, compensation)
	if err != nil {
		return nil, err
	}
	return NewReceiverFromDecoder(d, metrics)
}

// NewReceiverFromDecoder wraps an existing decoder (useful when many
// receivers share one template/threshold configuration — pool shards
// do).
func NewReceiverFromDecoder(d *core.Decoder, metrics *Metrics) (*Receiver, error) {
	stack, err := link.NewStreaming(d, 0, metrics)
	if err != nil {
		return nil, err
	}
	return &Receiver{stack: stack}, nil
}

// setStream retags the receiver's events with the stream identity.
func (r *Receiver) setStream(id uint64) { r.stack.SetStream(id) }

// PushIQ consumes a chunk of IQ samples: the lag-ring front-end turns
// them into phases, which feed the frame machine. Pushing into a
// flushed receiver reports core.ErrFlushed.
func (r *Receiver) PushIQ(iq []complex128) error { return r.stack.PushIQ(iq) }

// PushPhases consumes a chunk of already-computed phase values (a
// KindPhase trace, or an external front-end). Pushing into a flushed
// receiver reports core.ErrFlushed.
func (r *Receiver) PushPhases(phases []float64) error { return r.stack.PushPhases(phases) }

// Flush ends the stream, forcing any pending decode with the data at
// hand.
func (r *Receiver) Flush() { r.stack.Flush() }

// Drain returns the events produced since the last call, tagged with
// the receiver's stream ID. The returned slice is the receiver's
// internal queue and is reused: it stays valid only until the next
// PushIQ/PushPhases/Flush on this receiver. Consumers that buffer
// events across pushes must copy the elements out (Frame pointers
// remain valid indefinitely).
func (r *Receiver) Drain() []Event { return r.stack.Drain() }

// State returns the underlying machine stage (for diagnostics).
func (r *Receiver) State() core.MachineState { return r.stack.State() }

// Buffered returns the machine's retained history length in phases.
func (r *Receiver) Buffered() int { return r.stack.Buffered() }

// LayerStats reports the per-layer accounting of the underlying stack
// (front-end, frame machine, sinks), bottom-up.
func (r *Receiver) LayerStats() []link.LayerStats { return r.stack.LayerStats() }
