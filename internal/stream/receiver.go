package stream

import (
	"time"

	"symbee/internal/core"
	"symbee/internal/dsp"
)

// Event is one occurrence on one stream: a preamble lock, a decoded
// frame, or a decode failure. It wraps core.StreamEvent with the stream
// identity so pool consumers can demultiplex.
type Event struct {
	Stream uint64
	core.StreamEvent
}

// Receiver is the complete per-stream receive chain: the incremental
// IQ→phase front-end feeding a per-stream FrameMachine. It accepts IQ
// or phase chunks of any size and emits events exactly as a batch
// decode of the concatenated stream would. A Receiver is owned by one
// goroutine (its pool worker); it is not safe for concurrent use.
type Receiver struct {
	id      uint64
	phaser  *dsp.PhaseDiffStreamer
	machine *core.FrameMachine
	metrics *Metrics
	scratch []float64
	pending []Event
}

// NewReceiver builds a single-stream receiver. metrics may be nil for
// an uninstrumented receiver (the hot path then skips all accounting).
func NewReceiver(p core.Params, compensation float64, metrics *Metrics) (*Receiver, error) {
	d, err := core.NewDecoder(p, compensation)
	if err != nil {
		return nil, err
	}
	return NewReceiverFromDecoder(d, metrics)
}

// NewReceiverFromDecoder wraps an existing decoder (useful when many
// receivers share one template/threshold configuration).
func NewReceiverFromDecoder(d *core.Decoder, metrics *Metrics) (*Receiver, error) {
	phaser, err := dsp.NewPhaseDiffStreamer(d.Params().Lag)
	if err != nil {
		return nil, err
	}
	machine, err := d.NewFrameMachine()
	if err != nil {
		return nil, err
	}
	return &Receiver{
		phaser:  phaser,
		machine: machine,
		metrics: metrics,
	}, nil
}

// PushIQ consumes a chunk of IQ samples: the lag-ring front-end turns
// them into phases, which feed the frame machine. Pushing into a
// flushed receiver reports core.ErrFlushed.
func (r *Receiver) PushIQ(iq []complex128) error {
	var start time.Time
	if r.metrics != nil {
		start = wallNow()
	}
	r.scratch = r.phaser.Process(iq, r.scratch[:0])
	var mid time.Time
	if r.metrics != nil {
		mid = wallNow()
		r.metrics.SamplesIn.Add(uint64(len(iq)))
		r.metrics.PhasesProduced.Add(uint64(len(r.scratch)))
		r.metrics.PhaseNanos.Observe(float64(mid.Sub(start)))
	}
	err := r.machine.PushChunk(r.scratch)
	if r.metrics != nil {
		r.metrics.DecodeNanos.Observe(float64(wallNow().Sub(mid)))
	}
	r.account()
	return err
}

// PushPhases consumes a chunk of already-computed phase values (a
// KindPhase trace, or an external front-end). Pushing into a flushed
// receiver reports core.ErrFlushed.
func (r *Receiver) PushPhases(phases []float64) error {
	var start time.Time
	if r.metrics != nil {
		start = wallNow()
	}
	err := r.machine.PushChunk(phases)
	if r.metrics != nil {
		r.metrics.PhasesIn.Add(uint64(len(phases)))
		r.metrics.DecodeNanos.Observe(float64(wallNow().Sub(start)))
	}
	r.account()
	return err
}

// Flush ends the stream, forcing any pending decode with the data at
// hand.
func (r *Receiver) Flush() {
	r.machine.Flush()
	r.account()
}

// account moves freshly produced machine events into the pending queue,
// tagging them with the stream ID and folding counts into the shared
// metrics exactly once per event.
func (r *Receiver) account() {
	for _, ev := range r.machine.Events() {
		if r.metrics != nil {
			switch ev.Kind {
			case core.EventLock:
				r.metrics.Locks.Add(1)
			case core.EventFrame:
				r.metrics.FramesDecoded.Add(1)
			case core.EventDecodeError:
				r.metrics.FramesFailed.Add(1)
			}
		}
		r.pending = append(r.pending, Event{Stream: r.id, StreamEvent: ev})
	}
}

// Drain returns the events produced since the last call, tagged with
// the receiver's stream ID. The returned slice is the receiver's
// internal queue and is reused: it stays valid only until the next
// PushIQ/PushPhases/Flush on this receiver. Consumers that buffer
// events across pushes must copy the elements out (Frame pointers
// remain valid indefinitely).
func (r *Receiver) Drain() []Event {
	out := r.pending
	r.pending = r.pending[:0]
	return out
}

// State returns the underlying machine stage (for diagnostics).
func (r *Receiver) State() core.MachineState { return r.machine.State() }

// Buffered returns the machine's retained history length in phases.
func (r *Receiver) Buffered() int { return r.machine.Buffered() }
