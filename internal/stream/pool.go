package stream

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"symbee/internal/core"
)

// Chunk is one unit of ingestion: a slab of IQ samples or phase values
// belonging to one stream. Exactly one of IQ/Phases should be set (both
// set is allowed and processes IQ first). The pool copies nothing on
// the ingest path — the chunk slices are handed to the owning worker,
// so the producer must not reuse them until the chunk is processed;
// producers that recycle buffers should hand over fresh slices or wait
// for the stream's flush.
type Chunk struct {
	// Stream identifies the logical link the samples belong to. All
	// chunks of one stream are processed in ingest order by one worker.
	Stream uint64
	// IQ samples (front-end input).
	IQ []complex128
	// Phases values (front-end already applied).
	Phases []float64
	// Flush marks the end of the stream: the session decodes whatever
	// remains and is torn down.
	Flush bool
}

// Config parameterizes a Pool.
type Config struct {
	// Params is the receiver parameter set (Params20/Params40/...).
	Params core.Params
	// Compensation is the CFO compensation every stream's decoder
	// applies (wifi.CanonicalCompensation for real channel pairs, 0 for
	// baseband-aligned captures).
	Compensation float64
	// Workers is the number of shard goroutines; ≤0 means GOMAXPROCS.
	Workers int
	// QueueDepth is each worker's chunk queue capacity; ≤0 means 64.
	QueueDepth int
	// DropWhenFull selects the backpressure policy: when a worker's
	// queue is full, Ingest either blocks until there is room (false,
	// the default — lossless, producer-paced) or rejects the chunk and
	// counts it in Metrics.Drops (true — real-time, receiver-paced).
	DropWhenFull bool
	// OnEvent, when set, receives every stream event. It is called from
	// worker goroutines (one call at a time per stream, but concurrent
	// across streams) and must be fast or thread-safe accordingly.
	OnEvent func(Event)
	// Metrics receives stage instrumentation; nil allocates a private
	// registry (retrievable via Pool.Metrics).
	Metrics *Metrics
}

// DefaultConfig returns the baseline pool configuration: the 20 Msps
// parameter set, no CFO compensation, one worker per CPU (Workers 0 =
// GOMAXPROCS), 64-deep queues and lossless backpressure.
func DefaultConfig() Config {
	return Config{Params: core.Params20(), QueueDepth: 64}
}

// Validate reports the first structural problem with the config. The
// Workers and QueueDepth fields keep their documented ≤0-means-default
// semantics, so only the receiver parameters can be structurally wrong.
func (c Config) Validate() error {
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	return nil
}

// Pool is the sharded streaming receiver: N worker goroutines, each
// owning the sessions of the streams sharded to it, fed by bounded
// channels. Each session is one streaming-preset link.Stack (wrapped as
// a Receiver). Stream state is touched only by its owning worker, so
// the decode hot path takes no locks; the only synchronization is the
// channel handoff and the atomic metrics.
type Pool struct {
	cfg     Config
	decoder *core.Decoder
	workers []*worker
	metrics *Metrics
	wg      sync.WaitGroup
	closed  bool          //symbee:guardedby mu
	mu      sync.RWMutex  // guards closed: Ingest holds R, Close holds W
	done    chan struct{} // closed when the pool has fully shut down
}

type worker struct {
	in       chan Chunk
	sessions map[uint64]*Receiver
	pool     *Pool
}

// NewPool starts the workers and returns the pool. Callers must Close
// it to flush outstanding sessions and join the goroutines.
func NewPool(cfg Config) (*Pool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Metrics == nil {
		cfg.Metrics = NewMetrics()
	}
	d, err := core.NewDecoder(cfg.Params, cfg.Compensation)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	p := &Pool{cfg: cfg, decoder: d, metrics: cfg.Metrics, done: make(chan struct{})}
	p.workers = make([]*worker, cfg.Workers)
	for i := range p.workers {
		w := &worker{
			in:       make(chan Chunk, cfg.QueueDepth),
			sessions: make(map[uint64]*Receiver),
			pool:     p,
		}
		p.workers[i] = w
		p.wg.Add(1)
		go w.run()
	}
	return p, nil
}

// NewPoolContext is NewPool bound to a context: when ctx is canceled
// the pool closes itself — open sessions are flushed, final events
// emitted, workers joined — and subsequent Ingest calls report false.
// Close remains safe to call (it is idempotent), so deferred cleanup
// and signal-driven shutdown compose.
func NewPoolContext(ctx context.Context, cfg Config) (*Pool, error) {
	p, err := NewPool(cfg)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if ctx != nil && ctx.Done() != nil {
		// The watcher joins itself: it exits through the p.done arm once
		// Close completes, and it is the goroutine that calls Close on
		// cancellation — waiting for it from Close would deadlock.
		go func() { //symbee:ignore concurrency -- exits via the p.done select arm when the pool closes; Close cannot join the goroutine that may itself be calling Close
			select {
			case <-ctx.Done():
				p.Close()
			case <-p.done:
			}
		}()
	}
	return p, nil
}

// Metrics returns the pool's registry.
func (p *Pool) Metrics() *Metrics { return p.metrics }

// Workers returns the shard count.
func (p *Pool) Workers() int { return len(p.workers) }

// shard routes a stream ID to its owning worker.
func (p *Pool) shard(stream uint64) *worker {
	return p.workers[stream%uint64(len(p.workers))]
}

// Ingest hands a chunk to the owning worker. It reports whether the
// chunk was accepted: with DropWhenFull it returns false (and counts a
// drop) when the worker's queue is full; after Close (including a
// context cancellation closing the pool) it returns false without
// counting a drop; otherwise it blocks until there is room and returns
// true. Ingest is safe for concurrent use by multiple producers; chunks
// of one stream keep their order only when produced by a single
// goroutine.
func (p *Pool) Ingest(c Chunk) bool {
	// The read lock pins the pool open across the send: Close takes the
	// write lock before closing the worker channels, so a send in flight
	// here can never hit a closed channel. A blocking send cannot
	// deadlock Close — the workers keep draining until Close's write
	// lock is granted.
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	w := p.shard(c.Stream)
	if p.cfg.DropWhenFull {
		select {
		case w.in <- c:
		default:
			p.metrics.Drops.Add(1)
			return false
		}
	} else {
		w.in <- c
	}
	p.metrics.ChunksIn.Add(1)
	return true
}

// Close flushes every open session (emitting any final events), stops
// the workers and waits for them to drain. It is idempotent and safe to
// call concurrently with Ingest (late chunks are rejected, not lost in
// a panic).
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done // another Close is draining; wait for it
		return
	}
	p.closed = true
	p.mu.Unlock()
	for _, w := range p.workers {
		close(w.in)
	}
	p.wg.Wait()
	close(p.done)
}

func (w *worker) run() {
	defer w.pool.wg.Done()
	for c := range w.in {
		w.process(c)
	}
	// Channel closed: flush whatever sessions remain so no buffered
	// frame is lost at shutdown.
	for id, r := range w.sessions {
		r.Flush()
		w.emit(r)
		delete(w.sessions, id)
		w.pool.metrics.StreamsFlushed.Add(1)
	}
}

func (w *worker) process(c Chunk) {
	start := wallNow()
	r, ok := w.sessions[c.Stream]
	if !ok {
		var err error
		r, err = NewReceiverFromDecoder(w.pool.decoder, w.pool.metrics)
		if err != nil {
			// The shared decoder was already validated when the pool was
			// built, so a receiver for it cannot fail; count the chunk as
			// dropped rather than crash the worker if it somehow does.
			w.pool.metrics.Drops.Add(1)
			return
		}
		r.setStream(c.Stream)
		w.sessions[c.Stream] = r
		w.pool.metrics.StreamsOpened.Add(1)
	}
	// A push can only fail on a flushed machine; sessions are deleted at
	// flush, so a failure here means the chunk raced a close — drop it.
	if len(c.IQ) > 0 {
		if err := r.PushIQ(c.IQ); err != nil {
			w.pool.metrics.Drops.Add(1)
		}
	}
	if len(c.Phases) > 0 {
		if err := r.PushPhases(c.Phases); err != nil {
			w.pool.metrics.Drops.Add(1)
		}
	}
	if c.Flush {
		r.Flush()
		delete(w.sessions, c.Stream)
		w.pool.metrics.StreamsFlushed.Add(1)
	}
	w.emit(r)
	w.pool.metrics.ChunkNanos.Observe(float64(wallNow().Sub(start)))
}

func (w *worker) emit(r *Receiver) {
	events := r.Drain()
	if w.pool.cfg.OnEvent == nil {
		return
	}
	for _, ev := range events {
		w.pool.cfg.OnEvent(ev)
	}
}
