package stream

import (
	"symbee/internal/core"
)

// ThroughputReport summarizes one single-stream replay measurement.
type ThroughputReport struct {
	// Samples is the number of IQ samples pushed.
	Samples uint64 `json:"samples"`
	// Frames and Errors count the decode outcomes over the replay.
	Frames uint64 `json:"frames"`
	Errors uint64 `json:"errors"`
	// Seconds is the wall-clock processing time.
	Seconds float64 `json:"seconds"`
	// SamplesPerSec is the sustained ingest rate.
	SamplesPerSec float64 `json:"samples_per_sec"`
	// ChunkSize is the chunk size the replay used.
	ChunkSize int `json:"chunk_size"`
	// RealtimeX is SamplesPerSec divided by the parameter set's sample
	// rate: ≥ 1 means the pipeline keeps up with a live radio.
	RealtimeX float64 `json:"realtime_x"`
}

// MeasureThroughput replays the IQ capture through one uninstrumented
// Receiver in chunks of the given size, looping the capture until at
// least minSamples have been pushed, and reports the sustained rate.
// It is the measurement backing BenchmarkStreamThroughput and the
// stream mode of cmd/symbeebench.
func MeasureThroughput(p core.Params, compensation float64, iq []complex128, chunk int, minSamples uint64) (ThroughputReport, error) {
	r, err := NewReceiver(p, compensation, nil)
	if err != nil {
		return ThroughputReport{}, err
	}
	if chunk <= 0 {
		chunk = 4096
	}
	rep := ThroughputReport{ChunkSize: chunk}
	start := wallNow()
	for rep.Samples < minSamples {
		for off := 0; off < len(iq); off += chunk {
			end := off + chunk
			if end > len(iq) {
				end = len(iq)
			}
			if err := r.PushIQ(iq[off:end]); err != nil {
				return rep, err
			}
			for _, ev := range r.Drain() {
				switch ev.Kind {
				case core.EventFrame:
					rep.Frames++
				case core.EventDecodeError:
					rep.Errors++
				}
			}
		}
		rep.Samples += uint64(len(iq))
	}
	rep.Seconds = wallNow().Sub(start).Seconds()
	if rep.Seconds > 0 {
		rep.SamplesPerSec = float64(rep.Samples) / rep.Seconds
	}
	if p.SampleRate > 0 {
		rep.RealtimeX = rep.SamplesPerSec / p.SampleRate
	}
	return rep, nil
}
