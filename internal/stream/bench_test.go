package stream

import (
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/wifi"
)

func benchCapture(b testing.TB, p core.Params) []complex128 {
	b.Helper()
	l, err := core.NewLink(p, wifi.CanonicalCompensation)
	if err != nil {
		b.Fatal(err)
	}
	sig, err := l.TransmitFrame(&core.Frame{Seq: 1, Data: []byte("benchload!")})
	if err != nil {
		b.Fatal(err)
	}
	m, err := channel.NewMedium(channel.Config{
		SampleRate: p.SampleRate,
		SNRdB:      10,
		FreqOffset: channel.DefaultFreqOffset,
		Pad:        4000,
	}, rand.New(rand.NewSource(41)))
	if err != nil {
		b.Fatal(err)
	}
	return m.Transmit(sig)
}

// BenchmarkStreamThroughput measures the single-stream ingest rate of
// the full IQ→phase→decode chain on one core, reporting samples/sec.
// The ISSUE target is ≥ 20e6 (real time at Params20).
func BenchmarkStreamThroughput(b *testing.B) {
	p := core.Params20()
	iq := benchCapture(b, p)
	r, err := NewReceiver(p, wifi.CanonicalCompensation, nil)
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 4096
	b.ReportAllocs()
	b.ResetTimer()
	samples := 0
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(iq); off += chunk {
			end := off + chunk
			if end > len(iq) {
				end = len(iq)
			}
			r.PushIQ(iq[off:end])
			r.Drain()
		}
		samples += len(iq)
	}
	b.StopTimer()
	b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "samples/sec")
	b.ReportMetric(float64(samples)/b.Elapsed().Seconds()/p.SampleRate, "x-realtime")
}

// BenchmarkStreamThroughputNoise is the idle-listening floor: pure noise
// keeps the machine hunting the whole time, which is the steady-state
// cost a receiver pays between packets.
func BenchmarkStreamThroughputNoise(b *testing.B) {
	p := core.Params20()
	rng := rand.New(rand.NewSource(42))
	iq := make([]complex128, 1<<18)
	for i := range iq {
		iq[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	r, err := NewReceiver(p, wifi.CanonicalCompensation, nil)
	if err != nil {
		b.Fatal(err)
	}
	const chunk = 4096
	b.ReportAllocs()
	b.ResetTimer()
	samples := 0
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(iq); off += chunk {
			r.PushIQ(iq[off : off+chunk])
			r.Drain()
		}
		samples += len(iq)
	}
	b.StopTimer()
	b.ReportMetric(float64(samples)/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkMeasureThroughput exercises the shared measurement helper so
// cmd/symbeebench's stream mode stays covered.
func BenchmarkMeasureThroughput(b *testing.B) {
	p := core.Params20()
	iq := benchCapture(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := MeasureThroughput(p, wifi.CanonicalCompensation, iq, 4096, uint64(len(iq)))
		if err != nil {
			b.Fatal(err)
		}
		if rep.Frames == 0 {
			b.Fatal("replay decoded no frames")
		}
	}
}
