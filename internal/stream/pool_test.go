package stream

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/testutil"
	"symbee/internal/wifi"
)

// makeStreamCapture builds one capture carrying a frame whose Seq tags
// the stream it belongs to.
func makeStreamCapture(t *testing.T, p core.Params, seq byte, seed int64) []complex128 {
	t.Helper()
	l, err := core.NewLink(p, wifi.CanonicalCompensation)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := l.TransmitFrame(&core.Frame{Seq: seq, Data: []byte("pool")})
	if err != nil {
		t.Fatal(err)
	}
	m, err := channel.NewMedium(channel.Config{
		SampleRate: p.SampleRate,
		SNRdB:      20,
		FreqOffset: channel.DefaultFreqOffset,
		Pad:        400,
	}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m.Transmit(sig)
}

// TestPoolDecodesConcurrentStreams drives many streams from concurrent
// producers through a small worker pool and checks every stream's frame
// comes back tagged with the right stream ID. Run under -race this also
// proves the shard-ownership model: stream state is only ever touched by
// its owning worker.
func TestPoolDecodesConcurrentStreams(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	p := core.Params20()
	const streams = 8
	captures := make([][]complex128, streams)
	for i := range captures {
		captures[i] = makeStreamCapture(t, p, byte(i+1), int64(100+i))
	}

	var mu sync.Mutex
	frames := map[uint64][]*core.Frame{}
	pool, err := NewPool(Config{
		Params:       p,
		Compensation: wifi.CanonicalCompensation,
		Workers:      3,
		QueueDepth:   8,
		OnEvent: func(ev Event) {
			if ev.Kind == core.EventFrame {
				mu.Lock()
				frames[ev.Stream] = append(frames[ev.Stream], ev.Frame)
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for id := 0; id < streams; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			iq := captures[id]
			for off := 0; off < len(iq); off += 4096 {
				end := off + 4096
				if end > len(iq) {
					end = len(iq)
				}
				pool.Ingest(Chunk{Stream: uint64(id), IQ: iq[off:end]})
			}
			pool.Ingest(Chunk{Stream: uint64(id), Flush: true})
		}(id)
	}
	wg.Wait()
	pool.Close()

	for id := 0; id < streams; id++ {
		got := frames[uint64(id)]
		if len(got) != 1 {
			t.Fatalf("stream %d: %d frames, want 1", id, len(got))
		}
		if got[0].Seq != byte(id+1) || !bytes.Equal(got[0].Data, []byte("pool")) {
			t.Errorf("stream %d decoded %+v", id, got[0])
		}
	}
	s := pool.Metrics().Snapshot()
	if s.FramesDecoded != streams {
		t.Errorf("frames_decoded = %d, want %d", s.FramesDecoded, streams)
	}
	if s.StreamsOpened != streams || s.StreamsFlushed != streams {
		t.Errorf("streams opened/flushed = %d/%d, want %d/%d", s.StreamsOpened, s.StreamsFlushed, streams, streams)
	}
	if s.Drops != 0 {
		t.Errorf("blocking pool dropped %d chunks", s.Drops)
	}
}

// TestPoolCloseFlushesOpenStreams: a stream never explicitly flushed
// must still deliver its frame when the pool shuts down.
func TestPoolCloseFlushesOpenStreams(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	p := core.Params20()
	iq := makeStreamCapture(t, p, 42, 7)
	var mu sync.Mutex
	var got []*core.Frame
	pool, err := NewPool(Config{
		Params:       p,
		Compensation: wifi.CanonicalCompensation,
		Workers:      2,
		OnEvent: func(ev Event) {
			if ev.Kind == core.EventFrame {
				mu.Lock()
				got = append(got, ev.Frame)
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.Ingest(Chunk{Stream: 9, IQ: iq}) // no Flush chunk
	pool.Close()
	if len(got) != 1 || got[0].Seq != 42 {
		t.Fatalf("close-flush delivered %+v, want one frame with Seq 42", got)
	}
	if f := pool.Metrics().StreamsFlushed.Load(); f != 1 {
		t.Errorf("streams_flushed = %d, want 1", f)
	}
}

// TestPoolDropAccounting checks the load-shedding policy's books: every
// Ingest returns either accepted (counted in chunks_in) or rejected
// (counted in drops), and the two sides always sum to the offered load.
func TestPoolDropAccounting(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	p := core.Params20()
	iq := makeStreamCapture(t, p, 1, 8)
	pool, err := NewPool(Config{
		Params:       p,
		Compensation: wifi.CanonicalCompensation,
		Workers:      1,
		QueueDepth:   1,
		DropWhenFull: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	const offered = 200
	accepted := 0
	for i := 0; i < offered; i++ {
		// Big slabs so the worker is still busy when the next chunk
		// arrives: drops are expected (but not asserted — timing).
		if pool.Ingest(Chunk{Stream: 0, IQ: iq}) {
			accepted++
		}
	}
	pool.Close()
	s := pool.Metrics().Snapshot()
	if int(s.ChunksIn) != accepted {
		t.Errorf("chunks_in = %d, accepted = %d", s.ChunksIn, accepted)
	}
	if int(s.Drops) != offered-accepted {
		t.Errorf("drops = %d, rejected = %d", s.Drops, offered-accepted)
	}
	if s.SamplesIn != uint64(accepted)*uint64(len(iq)) {
		t.Errorf("samples_in = %d, want %d", s.SamplesIn, uint64(accepted)*uint64(len(iq)))
	}
}

// TestPoolSharding: chunks of one stream always land on the same worker
// (ownership is stable), and IDs spread across workers.
func TestPoolSharding(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	pool, err := NewPool(Config{Params: core.Params20(), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	seen := map[*worker]bool{}
	for id := uint64(0); id < 16; id++ {
		w := pool.shard(id)
		if again := pool.shard(id); again != w {
			t.Fatalf("stream %d: shard not stable", id)
		}
		seen[w] = true
	}
	if len(seen) != 4 {
		t.Errorf("16 ids hit %d of 4 workers", len(seen))
	}
}

// TestPoolContextCancelShutsDown: canceling the bound context closes
// the pool — workers and the watcher goroutine all exit (the leak
// checker enforces this) and late Ingest calls are rejected.
func TestPoolContextCancelShutsDown(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	ctx, cancel := context.WithCancel(context.Background())
	pool, err := NewPoolContext(ctx, Config{Params: core.Params20(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	<-pool.done
	if pool.Ingest(Chunk{Stream: 1, Phases: []float64{0}}) {
		t.Error("Ingest accepted a chunk after context cancellation")
	}
	pool.Close() // idempotent with the context-driven close
}
