package stream

import "symbee/internal/link"

// The stage-metrics registry lives in internal/link since the layered
// stack refactor — one schema shared by the batch, streaming and
// reliable pipeline configurations. These aliases keep the streaming
// package's historical surface (and the root package re-exports built
// on it) source-compatible.
type (
	// Counter is a monotone atomic event counter.
	Counter = link.Counter
	// Histogram is a fixed-bucket latency/size histogram safe for
	// concurrent Observe.
	Histogram = link.Histogram
	// HistogramBucket is one bucket of a histogram snapshot.
	HistogramBucket = link.HistogramBucket
	// HistogramSnapshot is a point-in-time copy of a histogram.
	HistogramSnapshot = link.HistogramSnapshot
	// Metrics instruments every stage of the pipeline.
	Metrics = link.Metrics
	// Snapshot is the JSON-marshalable point-in-time state of the
	// registry; its field names are the pipeline's stable metrics
	// schema (see DESIGN.md).
	Snapshot = link.Snapshot
)

var (
	// NewHistogram returns a histogram with the given upper bounds.
	NewHistogram = link.NewHistogram
	// NewMetrics returns a zeroed registry.
	NewMetrics = link.NewMetrics
)
