// Package stream is the real-time streaming receiver pipeline: it
// ingests unbounded IQ (or phase) streams in arbitrarily sized chunks
// and decodes SymBee frames from many concurrent links, with the same
// always-on idle-listening posture the paper's WiFi receiver has — the
// front-end never stops producing autocorrelation phases, so neither
// does the decoder.
//
// The pipeline has three layers:
//
//   - Incremental DSP. dsp.PhaseDiffStreamer turns IQ chunks into the
//     idle-listening phase stream with a lag-sample ring carried across
//     chunk boundaries, and core's preambleScanner keeps the sliding
//     fold sums, sign counts and windowed means alive between pushes.
//     A capture split at any offset produces bit-identical output to a
//     batch pass.
//
//   - Per-stream state machine. core.FrameMachine walks hunting →
//     preamble-fold lock → synchronized majority-vote decode → frame
//     emit, holding a bounded phase history (≈124 KiB per stream at
//     20 Msps while hunting). Batch decoding is one big chunk through
//     the same machine, so there is exactly one decoder implementation.
//
//   - Sharded worker pool. Pool runs N workers; each stream is sharded
//     to one worker by ID and its state is touched only by that worker,
//     so the hot path takes no locks. Bounded queues give explicit
//     backpressure (block) or load-shedding (drop, accounted).
//
// Every stage is instrumented by Metrics — stdlib-only atomic counters
// and fixed-bucket histograms with a JSON snapshot — covering chunks
// and samples in, phases produced, preamble locks, frames decoded and
// failed, drops, and per-stage latency.
//
// cmd/symbeestream replays trace files (or stdin IQ) through this
// pipeline at a target sample rate and prints throughput plus the
// metrics snapshot.
package stream
