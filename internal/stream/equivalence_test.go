package stream

import (
	"bytes"
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/core"
	"symbee/internal/testutil"
	"symbee/internal/wifi"
)

// capture is one equivalence scenario: an IQ stream plus the receiver
// configuration that should decode it.
type capture struct {
	name         string
	params       core.Params
	compensation float64
	iq           []complex128
}

// equivalenceCaptures builds the scenario matrix: clean and noisy
// channels, real CFO pairs, both bandwidths, back-to-back frames and
// pure noise.
func equivalenceCaptures(t *testing.T) []capture {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	mk := func(name string, p core.Params, comp float64, cfg channel.Config, frames ...*core.Frame) capture {
		l, err := core.NewLink(p, comp)
		if err != nil {
			t.Fatal(err)
		}
		var iq []complex128
		for _, f := range frames {
			sig, err := l.TransmitFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			m, err := channel.NewMedium(cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			iq = append(iq, m.Transmit(sig)...)
		}
		return capture{name: name, params: p, compensation: comp, iq: iq}
	}
	p20, p40 := core.Params20(), core.Params40()
	cfoPair, err := wifi.FreqOffset(1, 11)
	if err != nil {
		t.Fatal(err)
	}
	caps := []capture{
		mk("clean-no-cfo", p20, 0,
			channel.Config{SampleRate: p20.SampleRate, SNRdB: 40, Pad: 500},
			&core.Frame{Seq: 1, Data: []byte("clean")}),
		mk("snr5-cfo", p20, wifi.CanonicalCompensation,
			channel.Config{SampleRate: p20.SampleRate, SNRdB: 5, FreqOffset: channel.DefaultFreqOffset, Pad: 700},
			&core.Frame{Seq: 2, Flags: 0x1, Data: []byte("noisy")}),
		mk("snr0-cfo", p20, wifi.CanonicalCompensation,
			channel.Config{SampleRate: p20.SampleRate, SNRdB: 0, FreqOffset: channel.DefaultFreqOffset, Pad: 700},
			&core.Frame{Seq: 3, Data: []byte("edge")}),
		mk("real-channel-pair", p20, wifi.CanonicalCompensation,
			channel.Config{SampleRate: p20.SampleRate, SNRdB: 20, FreqOffset: cfoPair, Pad: 400},
			&core.Frame{Seq: 4, Data: []byte("wc1zk11")}),
		mk("40mhz", p40, wifi.CanonicalCompensation,
			channel.Config{SampleRate: p40.SampleRate, SNRdB: 15, FreqOffset: channel.DefaultFreqOffset, Pad: 600},
			&core.Frame{Seq: 5, Data: []byte("wide")}),
		mk("multi-frame", p20, wifi.CanonicalCompensation,
			channel.Config{SampleRate: p20.SampleRate, SNRdB: 15, FreqOffset: channel.DefaultFreqOffset, Pad: 2000},
			&core.Frame{Seq: 6, Data: []byte("one")},
			&core.Frame{Seq: 7, Data: []byte("two")},
			&core.Frame{Seq: 8, Data: []byte("three")}),
	}
	// Noise only: the pipeline must stay silent and bounded.
	noise := make([]complex128, 60000)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	caps = append(caps, capture{name: "noise-only", params: p20, compensation: wifi.CanonicalCompensation, iq: noise})
	return caps
}

// replayIQ pushes the capture through a fresh Receiver in chunks of the
// given size and returns every event.
func replayIQ(t *testing.T, c capture, chunk int) []Event {
	t.Helper()
	r, err := NewReceiver(c.params, c.compensation, nil)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for off := 0; off < len(c.iq); off += chunk {
		end := off + chunk
		if end > len(c.iq) {
			end = len(c.iq)
		}
		r.PushIQ(c.iq[off:end])
		events = append(events, r.Drain()...)
	}
	r.Flush()
	return append(events, r.Drain()...)
}

// replayPhases runs the same stream through the phase-input path.
func replayPhases(t *testing.T, c capture, chunk int) []Event {
	t.Helper()
	fe, err := wifi.NewFrontEnd(c.params.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	phases := fe.PhaseStream(c.iq)
	r, err := NewReceiver(c.params, c.compensation, nil)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for off := 0; off < len(phases); off += chunk {
		end := off + chunk
		if end > len(phases) {
			end = len(phases)
		}
		r.PushPhases(phases[off:end])
		events = append(events, r.Drain()...)
	}
	r.Flush()
	return append(events, r.Drain()...)
}

func diffEvents(t *testing.T, label string, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d (got %+v, want %+v)", label, len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Kind != w.Kind || g.Anchor != w.Anchor || g.End != w.End {
			t.Errorf("%s: event %d = {kind %v anchor %d end %d}, want {kind %v anchor %d end %d}",
				label, i, g.Kind, g.Anchor, g.End, w.Kind, w.Anchor, w.End)
		}
		switch {
		case (g.Frame == nil) != (w.Frame == nil):
			t.Errorf("%s: event %d frame presence mismatch", label, i)
		case g.Frame != nil:
			if g.Frame.Seq != w.Frame.Seq || g.Frame.Flags != w.Frame.Flags || !bytes.Equal(g.Frame.Data, w.Frame.Data) {
				t.Errorf("%s: event %d frame %+v, want %+v", label, i, g.Frame, w.Frame)
			}
		}
		gerr, werr := "", ""
		if g.Err != nil {
			gerr = g.Err.Error()
		}
		if w.Err != nil {
			werr = w.Err.Error()
		}
		if gerr != werr {
			t.Errorf("%s: event %d err %q, want %q", label, i, gerr, werr)
		}
	}
}

// TestStreamingMatchesBatch is the tentpole equivalence guarantee: for
// every scenario, streaming through any chunk size — down to one sample
// at a time — produces exactly the event sequence of a whole-capture
// pass, the phase-input path matches the IQ path, and the first decoded
// frame matches the batch Decoder.DecodeFrame answer.
func TestStreamingMatchesBatch(t *testing.T) {
	defer testutil.CheckGoroutineLeaks(t)()
	for _, c := range equivalenceCaptures(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want := replayIQ(t, c, len(c.iq)) // whole capture as one chunk
			for _, chunk := range []int{1, 7, 64, 641, 4096} {
				diffEvents(t, c.name, replayIQ(t, c, chunk), want)
			}
			diffEvents(t, c.name+"/phase-path", replayPhases(t, c, 4096), want)

			// Batch cross-check: DecodeFrame on the full phase stream must
			// agree with the first frame event (or its absence).
			l, err := core.NewLink(c.params, c.compensation)
			if err != nil {
				t.Fatal(err)
			}
			batch, batchErr := l.Decoder().DecodeFrame(l.Phases(c.iq))
			var first *Event
			for i := range want {
				if want[i].Kind == core.EventFrame {
					first = &want[i]
					break
				}
			}
			switch {
			case batchErr == nil && first == nil:
				t.Fatalf("batch decoded %+v but streaming produced no frame", batch)
			case batchErr == nil:
				if first.Frame.Seq != batch.Seq || !bytes.Equal(first.Frame.Data, batch.Data) {
					t.Errorf("streaming frame %+v, batch %+v", first.Frame, batch)
				}
			case first != nil:
				t.Fatalf("streaming decoded %+v but batch failed: %v", first.Frame, batchErr)
			}
			if c.name == "multi-frame" {
				n := 0
				for _, ev := range want {
					if ev.Kind == core.EventFrame {
						n++
					}
				}
				if n != 3 {
					t.Errorf("multi-frame: %d frames, want 3", n)
				}
			}
		})
	}
}

// TestReceiverBoundedOnNoise checks the hunting memory bound end to end
// through the Receiver (IQ path included).
func TestReceiverBoundedOnNoise(t *testing.T) {
	p := core.Params20()
	r, err := NewReceiver(p, 0, NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(33))
	chunk := make([]complex128, 4096)
	for i := 0; i < 100; i++ {
		for j := range chunk {
			chunk[j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		r.PushIQ(chunk)
		r.Drain()
	}
	// Retention bound from core (≈15.5k) plus one chunk of slack.
	if r.Buffered() > 25*p.BitPeriod+2*p.StableLen+len(chunk) {
		t.Errorf("buffered %d phases on noise", r.Buffered())
	}
}
