package stream

import (
	"math/rand"
	"testing"

	"symbee/internal/core"
	"symbee/internal/wifi"
)

// TestSteadyStateZeroAlloc is the zero-alloc guarantee of the sustained
// ingest path: once a receiver is warm (scratch grown, machine history
// at its retention bound), pushing IQ and draining events on the
// idle-listening/hunting steady state allocates nothing — instrumented
// or not. This is the state a live receiver spends almost all its time
// in at 20 Msps, so any per-chunk allocation here is a GC treadmill.
func TestSteadyStateZeroAlloc(t *testing.T) {
	p := core.Params20()
	rng := rand.New(rand.NewSource(55))
	noise := make([]complex128, 4096)
	for i := range noise {
		noise[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	for _, tc := range []struct {
		name    string
		metrics *Metrics
	}{
		{"uninstrumented", nil},
		{"instrumented", NewMetrics()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r, err := NewReceiver(p, wifi.CanonicalCompensation, tc.metrics)
			if err != nil {
				t.Fatal(err)
			}
			// Warm-up: grow every ring, scratch and retained-history
			// buffer to steady state on the exact chunk we will measure.
			for i := 0; i < 50; i++ {
				r.PushIQ(noise)
				r.Drain()
			}
			allocs := testing.AllocsPerRun(100, func() {
				r.PushIQ(noise)
				r.Drain()
			})
			if allocs != 0 {
				t.Errorf("steady-state PushIQ+Drain allocates %.1f times per chunk, want 0", allocs)
			}
		})
	}
}

// TestFrameReplayAllocBudget bounds the allocation cost of the frame
// path: replaying a frame-bearing capture, everything except the
// decoded Frame itself (which escapes to the consumer) comes from
// reused buffers — scanner rings, bit scratch, event queues. The budget
// is the frame materialization (Frame + Data + two bit→byte scratch
// slices inside ParseFrameBits), with one spare for the retry path.
func TestFrameReplayAllocBudget(t *testing.T) {
	p := core.Params20()
	iq := benchCapture(t, p)
	r, err := NewReceiver(p, wifi.CanonicalCompensation, nil)
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 4096
	replay := func() (frames int) {
		for off := 0; off < len(iq); off += chunk {
			end := off + chunk
			if end > len(iq) {
				end = len(iq)
			}
			r.PushIQ(iq[off:end])
			for _, ev := range r.Drain() {
				if ev.Kind == core.EventFrame {
					frames++
				}
			}
		}
		return frames
	}
	// Warm-up replays: grow buffers and verify the capture decodes.
	warmFrames := 0
	for i := 0; i < 3; i++ {
		warmFrames = replay()
	}
	if warmFrames == 0 {
		t.Fatal("warm-up replay decoded no frames")
	}
	allocs := testing.AllocsPerRun(50, func() {
		if replay() == 0 {
			t.Fatal("replay decoded no frames")
		}
	})
	const perFrameBudget = 8
	if allocs > float64(warmFrames*perFrameBudget) {
		t.Errorf("frame replay allocates %.1f times per capture (%d frames), budget %d",
			allocs, warmFrames, warmFrames*perFrameBudget)
	}
	t.Logf("frame replay: %.1f allocs per capture, %d frames", allocs, warmFrames)
}
