package vet

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestIgnoreSemantics pins the suppression rules: same-line and
// line-above comments silence the named rule, a wrong rule name does
// not, a comment two lines up is out of range, and ignore-file (with
// the "all" wildcard) silences the whole file.
func TestIgnoreSemantics(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "ignore"), "fixture/ignore")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := Run(prog, []*Analyzer{AnalyzerDeterminism()})

	// Map surviving diagnostics to the function that contains them, via
	// the fixture's layout: one violation per function.
	surviving := make(map[int]bool)
	for _, d := range diags {
		if !strings.HasSuffix(d.File, "ignore.go") {
			t.Errorf("diagnostic escaped the ignore-file directive: %s", d.String())
			continue
		}
		surviving[d.Line] = true
	}

	funcLine := fixtureFuncLines(t, prog, "ignore.go")
	cases := []struct {
		fn       string
		suppress bool
	}{
		{"SameLine", true},
		{"LineAbove", true},
		{"WrongRule", false},
		{"TooFar", false},
		{"Unsuppressed", false},
	}
	for _, c := range cases {
		start, end := funcLine[c.fn][0], funcLine[c.fn][1]
		fired := false
		for line := start; line <= end; line++ {
			if surviving[line] {
				fired = true
			}
		}
		if c.suppress && fired {
			t.Errorf("%s: diagnostic fired despite suppression", c.fn)
		}
		if !c.suppress && !fired {
			t.Errorf("%s: diagnostic was suppressed but should fire", c.fn)
		}
	}
}

// fixtureFuncLines returns the [start, end] line span of each function
// declared in the named file.
func fixtureFuncLines(t *testing.T, prog *Program, file string) map[string][2]int {
	t.Helper()
	spans := make(map[string][2]int)
	for _, u := range prog.Units {
		for _, f := range u.Files {
			pos := prog.Fset.Position(f.Pos())
			if !strings.HasSuffix(pos.Filename, file) {
				continue
			}
			for fn, decl := range prog.decls {
				p := prog.Fset.Position(decl.Pos())
				if !strings.HasSuffix(p.Filename, file) {
					continue
				}
				spans[fn.Name()] = [2]int{p.Line, prog.Fset.Position(decl.End()).Line}
			}
		}
	}
	if len(spans) == 0 {
		t.Fatalf("no functions found in %s", file)
	}
	return spans
}

// TestIgnoreMultiRule pins that one ignore comment with a
// comma-separated rule list silences several rules firing on the same
// line, while the unsuppressed control keeps both diagnostics.
func TestIgnoreMultiRule(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "ignoremulti"), "fixture/ignoremulti")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	diags := Run(prog, []*Analyzer{AnalyzerRngstream(), AnalyzerConcurrency()})

	byRule := make(map[string]int)
	for _, d := range diags {
		byRule[d.Rule]++
	}
	if byRule["rngstream"] != 1 || byRule["concurrency"] != 1 || len(diags) != 2 {
		for _, d := range diags {
			t.Logf("got: %s", d.String())
		}
		t.Fatalf("surviving rule counts = %v (%d diags), want one rngstream + one concurrency from the control", byRule, len(diags))
	}
	if diags[0].Line != diags[1].Line {
		t.Errorf("control diagnostics on lines %d and %d, want the same line", diags[0].Line, diags[1].Line)
	}
	spans := fixtureFuncLines(t, prog, "ignoremulti.go")
	for _, d := range diags {
		if d.Line < spans["Control"][0] || d.Line > spans["Control"][1] {
			t.Errorf("diagnostic escaped the multi-rule suppression: %s", d.String())
		}
	}
}

// TestIgnoreParsing pins the comment grammar details: comma/space rule
// lists and the rationale separator.
func TestIgnoreParsing(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{" determinism -- because", []string{"determinism"}},
		{" determinism, floatcmp — dash rationale", []string{"determinism", "floatcmp"}},
		{" errwrap hotpath-alloc", []string{"errwrap", "hotpath-alloc"}},
		{" all", []string{"all"}},
		{" -- rationale only", nil},
	}
	for _, c := range cases {
		got := parseIgnoreRules(c.in)
		if len(got) != len(c.want) {
			t.Errorf("parseIgnoreRules(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseIgnoreRules(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
}
