package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerConcurrency enforces the repo's goroutine and lock
// discipline (the testutil.CheckGoroutineLeaks philosophy, made
// static). In library code (package main exempt — CLI mains own the
// process lifetime):
//
//   - every `go` statement must have a visible join path: the spawning
//     function touches a sync.WaitGroup, or the spawned function
//     signals completion (WaitGroup.Done, a channel send, or a close) —
//     a goroutine nobody can wait for outlives its owner's contract and
//     leaks under churn;
//   - struct fields annotated `//symbee:guardedby <mutex>` (a sibling
//     sync.Mutex/RWMutex field) must only be read or written in
//     functions that lock that mutex on the same receiver first;
//   - a guardedby annotation must name an existing sibling field.
func AnalyzerConcurrency() *Analyzer {
	return &Analyzer{
		Name: "concurrency",
		Doc:  "require join paths for goroutines and lock discipline for //symbee:guardedby fields",
		Run:  runConcurrency,
	}
}

const joinFix = "add a WaitGroup (Add before go, Done inside, Wait at shutdown) or a completion channel the owner receives from"
const guardFix = "lock the annotated mutex on the same receiver before touching the field"

func runConcurrency(prog *Program, u *Unit) []Diagnostic {
	if u.Pkg == nil || u.Pkg.Name() == "main" {
		return nil
	}
	var out []Diagnostic
	guards := collectGuardedFields(prog, u)
	for _, g := range guards.badAnnotations {
		out = append(out, g)
	}
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			out = append(out, checkGoroutineJoins(prog, u, fd)...)
			out = append(out, checkGuardedAccess(prog, u, fd, guards)...)
			return false // FuncDecls are top-level; no nested decls
		})
	}
	return out
}

// ---- goroutine joins ----

// checkGoroutineJoins flags `go` statements with no visible join path.
func checkGoroutineJoins(prog *Program, u *Unit, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	spawnerJoins := usesWaitGroup(u.Info, fd.Body)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if spawnerJoins || spawnedSignalsCompletion(prog, u, g) {
			return true
		}
		out = append(out, prog.diag("concurrency", g.Pos(), joinFix,
			"goroutine has no join path: no WaitGroup in %s and no completion signal in the spawned function", fd.Name.Name))
		return true
	})
	return out
}

// usesWaitGroup reports whether the body calls any sync.WaitGroup
// method (Add/Done/Wait) — the spawning-side half of the join contract.
func usesWaitGroup(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isWaitGroupMethod(info, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isWaitGroupMethod reports whether call's static callee is a method of
// sync.WaitGroup.
func isWaitGroupMethod(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// spawnedSignalsCompletion reports whether the goroutine's own body
// signals when it finishes: WaitGroup Done/Add, a channel send, or a
// close. For `go lit()` the literal body is inspected; for
// `go f(args)` the callee's declaration is, when it is in the module.
func spawnedSignalsCompletion(prog *Program, u *Unit, g *ast.GoStmt) bool {
	var body ast.Node
	var info *types.Info = u.Info
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := calleeFunc(u.Info, g.Call); fn != nil {
		decl, du := prog.Decl(fn)
		if decl == nil || decl.Body == nil {
			return false
		}
		body = decl.Body
		info = du.Info
	} else {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if isWaitGroupMethod(info, n) || isBuiltin(info, n, "close") {
				found = true
			}
		}
		return !found
	})
	return found
}

// ---- guardedby fields ----

// guardedField identifies one annotated field.
type guardedField struct {
	owner *types.Named // the struct's named type
	mutex string       // the sibling mutex field name
}

type guardedSet struct {
	// fields maps the *types.Var of each annotated field to its guard.
	fields map[*types.Var]guardedField
	// badAnnotations are malformed //symbee:guardedby comments.
	badAnnotations []Diagnostic
}

// collectGuardedFields parses //symbee:guardedby annotations off struct
// field comments in the unit.
func collectGuardedFields(prog *Program, u *Unit) guardedSet {
	gs := guardedSet{fields: make(map[*types.Var]guardedField)}
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := u.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				return true
			}
			fieldNames := make(map[string]bool)
			for _, fl := range st.Fields.List {
				for _, name := range fl.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fl := range st.Fields.List {
				mutex, ok := guardAnnotation(fl)
				if !ok {
					continue
				}
				if !fieldNames[mutex] {
					gs.badAnnotations = append(gs.badAnnotations, prog.diag("concurrency", fl.Pos(), guardFix,
						"//symbee:guardedby names %q, which is not a field of %s", mutex, ts.Name.Name))
					continue
				}
				for _, name := range fl.Names {
					if v, ok := u.Info.Defs[name].(*types.Var); ok {
						gs.fields[v] = guardedField{owner: named, mutex: mutex}
					}
				}
			}
			return true
		})
	}
	return gs
}

// guardAnnotation extracts the mutex name from a field's trailing or
// doc comment //symbee:guardedby <name>.
func guardAnnotation(fl *ast.Field) (mutex string, ok bool) {
	for _, cg := range []*ast.CommentGroup{fl.Doc, fl.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			rest, found := strings.CutPrefix(text, "symbee:guardedby")
			if !found {
				continue
			}
			name := strings.TrimSpace(rest)
			if i := strings.IndexAny(name, " \t"); i >= 0 {
				name = name[:i]
			}
			return name, name != ""
		}
	}
	return "", false
}

// checkGuardedAccess flags selector accesses to annotated fields in
// functions that never lock the field's mutex on the same base
// expression first.
func checkGuardedAccess(prog *Program, u *Unit, fd *ast.FuncDecl, guards guardedSet) []Diagnostic {
	if len(guards.fields) == 0 {
		return nil
	}
	var out []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := u.Info.Uses[sel.Sel].(*types.Var)
		if !ok {
			return true
		}
		gf, ok := guards.fields[v]
		if !ok {
			return true
		}
		base := types.ExprString(ast.Unparen(sel.X))
		if lockedBefore(u.Info, fd.Body, base, gf.mutex, sel.Pos()) {
			return true
		}
		out = append(out, prog.diag("concurrency", sel.Pos(), guardFix,
			"%s.%s is annotated guardedby %s but %s does not lock %s.%s before this access",
			base, sel.Sel.Name, gf.mutex, fd.Name.Name, base, gf.mutex))
		return true
	})
	return out
}

// lockedBefore reports whether base.mutex.Lock() or .RLock() is called
// in body at a position before pos.
func lockedBefore(info *types.Info, body ast.Node, base, mutex string, pos token.Pos) bool {
	want := base + "." + mutex
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= pos {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if types.ExprString(ast.Unparen(sel.X)) == want {
			found = true
			return false
		}
		return true
	})
	return found
}
