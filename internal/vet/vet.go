package vet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one rule violation at one source position.
type Diagnostic struct {
	// Rule is the analyzer name ("hotpath-alloc", "determinism", ...).
	Rule string `json:"rule"`
	// File is the path as recorded in the file set; Line and Col are
	// 1-based.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Message states the violation.
	Message string `json:"message"`
	// Fix is a short hint on how to repair or legitimately suppress it.
	Fix string `json:"fix,omitempty"`
}

// Pos renders the go-tool-style file:line:col prefix.
func (d Diagnostic) Pos() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s: [%s] %s", d.Pos(), d.Rule, d.Message)
	if d.Fix != "" {
		s += " (fix: " + d.Fix + ")"
	}
	return s
}

// Analyzer is one checkable rule. Run receives the whole program plus
// the unit under analysis and returns raw diagnostics; the framework
// applies //symbee:ignore suppression and ordering.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, u *Unit) []Diagnostic
}

// Analyzers returns the full rule suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerHotpathAlloc(),
		AnalyzerDeterminism(),
		AnalyzerErrwrap(),
		AnalyzerFloatcmp(),
		AnalyzerLayering(),
		AnalyzerRngstream(),
		AnalyzerConfvalid(),
		AnalyzerConcurrency(),
	}
}

// Run applies the analyzers to every unit of the program, filters
// suppressed findings, and returns the survivors sorted by position.
// Units are analyzed in parallel (bounded by GOMAXPROCS): analyzers
// only read the Program, so unit fan-out is safe, and the final sort
// makes the output order independent of scheduling.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	perUnit := make([][]Diagnostic, len(prog.Units))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, u := range prog.Units {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, u *Unit) {
			defer wg.Done()
			defer func() { <-sem }()
			var diags []Diagnostic
			for _, az := range analyzers {
				for _, d := range az.Run(prog, u) {
					if !prog.suppressed(d) {
						diags = append(diags, d)
					}
				}
			}
			perUnit[i] = diags
		}(i, u)
	}
	wg.Wait()
	var out []Diagnostic
	for _, diags := range perUnit {
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out
}

// diag builds a Diagnostic anchored at pos.
func (p *Program) diag(rule string, pos token.Pos, fix, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		Rule:    rule,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
		Fix:     fix,
	}
}

// ---- shared analyzer helpers ----

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error (and is not the
// untyped nil).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return types.Implements(t, errorType)
}

// calleeFunc resolves a call expression to its static callee: a
// package-level function or a concrete method. Calls through function
// values, builtins and interface methods with no body resolve to nil
// (or to an interface method the caller can detect via Decl returning
// nil).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// calleeIn reports whether the call's static callee is the named
// package-level function: pkgPath is the import path, names the
// accepted function names.
func calleeIn(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", false // method, not a package-level function
	}
	if len(names) == 0 {
		return fn.Name(), true
	}
	for _, n := range names {
		if fn.Name() == n {
			return n, true
		}
	}
	return "", false
}

// funcDoc reports whether the declaration's doc comment group contains
// the given //symbee: directive line.
func hasDirective(fd *ast.FuncDecl, directive string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// funcDisplayName renders fn as pkg.Name or pkg.(Recv).Name for
// diagnostics.
func funcDisplayName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
