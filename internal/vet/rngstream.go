package vet

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// AnalyzerRngstream enforces the splitmix stream discipline (DESIGN.md
// §12: every seeded component derives its random streams through
// internal/splitmix, so "stream k of seed s" means the same thing
// everywhere and adjacent seeds never correlate). It flags, in library
// code (package main and package splitmix itself are exempt):
//
//   - raw rand.NewSource calls — ad-hoc seed arithmetic
//     (rand.NewSource(seed + k*7919)) is exactly the correlated-stream
//     hazard splitmix removes; construct generators with splitmix.New
//     or seed them with splitmix.Split;
//   - two splitmix.New/Split calls in one function with the same seed
//     expression and the same constant stream index: the streams
//     collide and every draw is duplicated;
//   - a *rand.Rand shared across goroutine boundaries: a package-level
//     Rand variable, or a Rand captured by a go-launched func literal —
//     math/rand generators are not safe for concurrent use, and even a
//     locked one makes draw order scheduling-dependent, breaking seed
//     reproducibility.
func AnalyzerRngstream() *Analyzer {
	return &Analyzer{
		Name: "rngstream",
		Doc:  "require splitmix-derived RNG streams and single-goroutine Rand ownership",
		Run:  runRngstream,
	}
}

const rngSourceFix = "use splitmix.New(seed, stream) (or rand.New over splitmix.Split) with a distinct stream constant"
const rngDupFix = "give each stream its own constant (see the splitmix.*Stream conventions)"
const rngShareFix = "create the Rand inside the goroutine from splitmix.Split, or split one stream per worker"

func runRngstream(prog *Program, u *Unit) []Diagnostic {
	if u.Pkg == nil || u.Pkg.Name() == "main" || u.Pkg.Name() == "splitmix" {
		return nil
	}
	var out []Diagnostic
	for _, f := range u.Files {
		// Package-level *rand.Rand variables are reachable from every
		// goroutine the package ever starts.
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if v, ok := u.Info.Defs[name].(*types.Var); ok && isRandPtr(v.Type()) {
						out = append(out, prog.diag("rngstream", name.Pos(), rngShareFix,
							"package-level *rand.Rand %q is reachable from every goroutine in the package", name.Name))
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if _, ok := calleeIn(u.Info, n, "math/rand", "NewSource"); ok {
					out = append(out, prog.diag("rngstream", n.Pos(), rngSourceFix,
						"raw rand.NewSource: seed arithmetic outside splitmix correlates streams across seeds"))
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, checkDuplicateStreams(prog, u, n)...)
					out = append(out, checkSharedRand(prog, u, n)...)
				}
			}
			return true
		})
	}
	return out
}

// isRandPtr reports whether t is *math/rand.Rand.
func isRandPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && obj.Pkg().Path() == "math/rand"
}

// splitmixCall reports whether call is splitmix.New or splitmix.Split
// (matched by package name, so fixtures with a local splitmix work).
func splitmixCall(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "splitmix" {
		return false
	}
	return fn.Name() == "New" || fn.Name() == "Split"
}

// checkDuplicateStreams flags two splitmix derivations in one function
// that use the same seed expression and the same constant stream index.
func checkDuplicateStreams(prog *Program, u *Unit, fn *ast.FuncDecl) []Diagnostic {
	type streamUse struct {
		seed   string
		stream int64
	}
	seen := make(map[streamUse]bool)
	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !splitmixCall(u.Info, call) || len(call.Args) != 2 {
			return true
		}
		tv, ok := u.Info.Types[call.Args[1]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			return true // non-constant stream (per-sender index): fine
		}
		stream, ok := constant.Int64Val(tv.Value)
		if !ok {
			return true
		}
		use := streamUse{seed: types.ExprString(ast.Unparen(call.Args[0])), stream: stream}
		if seen[use] {
			out = append(out, prog.diag("rngstream", call.Pos(), rngDupFix,
				"stream constant %d derived twice from seed %s: the two generators produce identical draws", stream, use.seed))
		}
		seen[use] = true
		return true
	})
	return out
}

// checkSharedRand flags *rand.Rand values captured by go-launched func
// literals: the generator becomes reachable from two goroutines.
func checkSharedRand(prog *Program, u *Unit, fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		reported := make(map[*types.Var]bool)
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			id, ok := inner.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := u.Info.Uses[id].(*types.Var)
			if !ok || v.IsField() || reported[v] || !isRandPtr(v.Type()) {
				return true
			}
			// Captured: declared in the enclosing function, before the
			// literal starts.
			if v.Pos() >= fn.Pos() && v.Pos() < lit.Pos() {
				reported[v] = true
				out = append(out, prog.diag("rngstream", id.Pos(), rngShareFix,
					"*rand.Rand %q is captured by a go-launched goroutine: draws race and the schedule decides the stream", v.Name()))
			}
			return true
		})
		return true
	})
	return out
}
