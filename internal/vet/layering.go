package vet

import (
	"strconv"
	"strings"
)

// AnalyzerLayering enforces the declared import DAG of the internal
// packages. The architecture's layer boundaries — the shared-medium
// engine must not know about the link stack (medium ↛ link), the
// decoder core must not know about the worker pool (core ↛ stream),
// splitmix imports nothing — exist so subsystems can be grown and
// replaced independently; this rule turns them from review lore into a
// machine-checked manifest.
//
// The manifest below lists, for every internal package, the internal
// packages it is allowed to import. An import of an internal package
// that is not listed is a violation naming the offending edge and the
// manifest line; a package missing from the manifest entirely is a
// violation at its package clause (new packages must declare their
// layer when they are added).
func AnalyzerLayering() *Analyzer {
	return newLayeringAnalyzer("symbee/internal/", repoLayerManifest)
}

// repoLayerManifest is the declared dependency DAG of internal/...:
// one line per package, "pkg: allowed allowed ...". Only edges between
// internal packages are constrained; stdlib and root imports are free.
// Keep the list alphabetized within its layers, leaves first.
const repoLayerManifest = `
coding:
dsp:
mac:
splitmix:
testutil:
trace:
vet:
zigbee:
wifi: dsp
ctc: splitmix
channel: dsp splitmix wifi
core: coding dsp wifi zigbee
cli: core trace
medium: channel core dsp splitmix
link: core ctc dsp medium wifi
stream: core link
reliable: channel coding core ctc link splitmix zigbee
sim: channel coding core ctc dsp mac wifi zigbee
`

const layeringFix = "move the code across the boundary, invert the dependency through an " +
	"interface, or (for a deliberate architecture change) amend the manifest in internal/vet/layering.go"

// manifestEntry is one parsed manifest line.
type manifestEntry struct {
	allowed map[string]bool
	line    int    // 1-based line within the manifest literal
	text    string // the raw manifest line, for diagnostics
}

// newLayeringAnalyzer builds the layering rule over an arbitrary
// package-path prefix and manifest — the production prefix is
// "symbee/internal/"; fixtures substitute their own.
func newLayeringAnalyzer(prefix, manifest string) *Analyzer {
	entries := parseLayerManifest(manifest)
	return &Analyzer{
		Name: "layering",
		Doc:  "enforce the declared internal import DAG (manifest in internal/vet/layering.go)",
		Run: func(prog *Program, u *Unit) []Diagnostic {
			return runLayering(prog, u, prefix, entries)
		},
	}
}

// parseLayerManifest parses "pkg: dep dep" lines into entries keyed by
// the package's path-after-prefix, remembering each line number so
// diagnostics can point back into the manifest.
func parseLayerManifest(manifest string) map[string]manifestEntry {
	entries := make(map[string]manifestEntry)
	for i, raw := range strings.Split(manifest, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, deps, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		e := manifestEntry{allowed: make(map[string]bool), line: i + 1, text: line}
		for _, dep := range strings.Fields(deps) {
			e.allowed[dep] = true
		}
		entries[strings.TrimSpace(name)] = e
	}
	return entries
}

func runLayering(prog *Program, u *Unit, prefix string, entries map[string]manifestEntry) []Diagnostic {
	short, ok := strings.CutPrefix(u.Path, prefix)
	if !ok {
		return nil // only packages under the prefix are layered
	}
	entry, declared := entries[short]
	if !declared {
		if len(u.Files) == 0 {
			return nil
		}
		return []Diagnostic{prog.diag("layering", u.Files[0].Name.Pos(), layeringFix,
			"package %s is not declared in the layering manifest: add a %q line", u.Path, short+": <deps>")}
	}
	var out []Diagnostic
	for _, f := range u.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			dep, ok := strings.CutPrefix(path, prefix)
			if !ok || entry.allowed[dep] {
				continue
			}
			out = append(out, prog.diag("layering", imp.Pos(), layeringFix,
				"%s imports %s: edge not in the layering manifest (line %d: %q)",
				u.Path, path, entry.line, entry.text))
		}
	}
	return out
}
