package vet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// AnalyzerFloatcmp flags == and != between floating-point (or complex)
// operands in the DSP and channel code: after resampling, FFT round
// trips and phase unwrapping, exact equality is a latent flake.
//
// Exemptions, matching the kernel's documented IEEE idioms:
//
//   - one operand is an exact constant zero (`mag2 == 0`, `im != 0`):
//     the bit-exact zero test that guards division and sign seams;
//   - syntactic self-comparison (`x != x`): the NaN probe;
//   - both operands constant: folded at compile time.
func AnalyzerFloatcmp() *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc:  "forbid exact ==/!= between float operands (NaN/rounding hazards)",
		Run:  runFloatcmp,
	}
}

const floatFix = "use dsp.ApproxEqual(a, b, tol) or an explicit |a-b| <= tol with a documented tolerance"

func runFloatcmp(prog *Program, u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloatOperand(u, cmp.X) || !isFloatOperand(u, cmp.Y) {
				return true
			}
			xc, yc := constOf(u, cmp.X), constOf(u, cmp.Y)
			if xc != nil && yc != nil {
				return true // both constant: folded, exact by definition
			}
			if isExactZero(xc) || isExactZero(yc) {
				return true // IEEE zero test guarding a division or sign seam
			}
			if types.ExprString(ast.Unparen(cmp.X)) == types.ExprString(ast.Unparen(cmp.Y)) {
				return true // x != x: the NaN probe
			}
			out = append(out, prog.diag("floatcmp", cmp.Pos(), floatFix,
				"exact %s between floating-point operands: rounding makes this comparison unstable", cmp.Op))
			return true
		})
	}
	return out
}

// isFloatOperand reports whether e has floating-point or complex type.
func isFloatOperand(u *Unit, e ast.Expr) bool {
	t := u.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// constOf returns the constant value of e, or nil.
func constOf(u *Unit, e ast.Expr) constant.Value {
	if tv, ok := u.Info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// isExactZero reports whether v is the constant zero (real and, for
// complex, imaginary parts both zero).
func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}
