package vet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// AnalyzerFloatcmp flags exact floating-point (or complex) equality in
// the DSP and channel code: after resampling, FFT round trips and phase
// unwrapping, exact equality is a latent flake. Three shapes are
// covered:
//
//   - == and != between float operands;
//   - switch statements dispatching on a float tag: every case
//     comparison is an exact ==;
//   - map types keyed by a float or complex type: a NaN key can never
//     be retrieved, and rounding splits logically-equal keys.
//
// Exemptions, matching the kernel's documented IEEE idioms:
//
//   - one operand (or the case value) is an exact constant zero
//     (`mag2 == 0`, `case 0:`): the bit-exact zero test that guards
//     division and sign seams;
//   - syntactic self-comparison (`x != x`): the NaN probe;
//   - both operands constant: folded at compile time.
func AnalyzerFloatcmp() *Analyzer {
	return &Analyzer{
		Name: "floatcmp",
		Doc:  "forbid exact ==/!= between float operands (NaN/rounding hazards)",
		Run:  runFloatcmp,
	}
}

const floatFix = "use dsp.ApproxEqual(a, b, tol) or an explicit |a-b| <= tol with a documented tolerance"

func runFloatcmp(prog *Program, u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if d := checkFloatBinary(prog, u, n); d != nil {
					out = append(out, *d)
				}
			case *ast.SwitchStmt:
				out = append(out, checkFloatSwitch(prog, u, n)...)
			case *ast.MapType:
				if kt := u.Info.TypeOf(n.Key); kt != nil {
					if b, ok := kt.Underlying().(*types.Basic); ok && b.Info()&(types.IsFloat|types.IsComplex) != 0 {
						out = append(out, prog.diag("floatcmp", n.Pos(), floatFix,
							"map keyed by floating-point type %s: NaN keys are unretrievable and rounding splits equal keys", kt))
					}
				}
			}
			return true
		})
	}
	return out
}

// checkFloatBinary applies the ==/!= rule to one comparison.
func checkFloatBinary(prog *Program, u *Unit, cmp *ast.BinaryExpr) *Diagnostic {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return nil
	}
	if !isFloatOperand(u, cmp.X) || !isFloatOperand(u, cmp.Y) {
		return nil
	}
	xc, yc := constOf(u, cmp.X), constOf(u, cmp.Y)
	if xc != nil && yc != nil {
		return nil // both constant: folded, exact by definition
	}
	if isExactZero(xc) || isExactZero(yc) {
		return nil // IEEE zero test guarding a division or sign seam
	}
	if types.ExprString(ast.Unparen(cmp.X)) == types.ExprString(ast.Unparen(cmp.Y)) {
		return nil // x != x: the NaN probe
	}
	d := prog.diag("floatcmp", cmp.Pos(), floatFix,
		"exact %s between floating-point operands: rounding makes this comparison unstable", cmp.Op)
	return &d
}

// checkFloatSwitch flags each case value of a float-tagged switch —
// every one is an exact == in disguise. Constant-zero case values keep
// the zero-test exemption.
func checkFloatSwitch(prog *Program, u *Unit, sw *ast.SwitchStmt) []Diagnostic {
	if sw.Tag == nil || !isFloatOperand(u, sw.Tag) {
		return nil
	}
	var out []Diagnostic
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if isExactZero(constOf(u, e)) {
				continue
			}
			out = append(out, prog.diag("floatcmp", e.Pos(), floatFix,
				"case on a floating-point tag is an exact ==: rounding makes this dispatch unstable"))
		}
	}
	return out
}

// isFloatOperand reports whether e has floating-point or complex type.
func isFloatOperand(u *Unit, e ast.Expr) bool {
	t := u.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// constOf returns the constant value of e, or nil.
func constOf(u *Unit, e ast.Expr) constant.Value {
	if tv, ok := u.Info.Types[e]; ok {
		return tv.Value
	}
	return nil
}

// isExactZero reports whether v is the constant zero (real and, for
// complex, imaginary parts both zero).
func isExactZero(v constant.Value) bool {
	if v == nil {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	case constant.Complex:
		return constant.Sign(constant.Real(v)) == 0 && constant.Sign(constant.Imag(v)) == 0
	}
	return false
}
