package vet

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strings"
)

// AnalyzerErrwrap enforces the error-taxonomy contract (DESIGN.md §6:
// sentinel errors like core.ErrCRC are part of the public API and must
// survive wrapping). It flags:
//
//   - fmt.Errorf calls that receive error-typed arguments but fewer %w
//     verbs than errors: the chain breaks and errors.Is stops matching
//     the sentinel;
//   - comparing err.Error() strings with == or !=: message text is not
//     part of the contract;
//   - comparing two error values with == or != (other than against
//     nil): sentinels may arrive wrapped, so only errors.Is sees them.
func AnalyzerErrwrap() *Analyzer {
	return &Analyzer{
		Name: "errwrap",
		Doc:  "enforce %w wrapping and errors.Is/As over string or identity comparison",
		Run:  runErrwrap,
	}
}

const wrapFix = "use %w for the error argument so errors.Is/As keep matching the sentinel"
const strcmpFix = "compare with errors.Is(err, sentinel), not message text"
const identcmpFix = "use errors.Is (or errors.As) — the sentinel may be wrapped"

func runErrwrap(prog *Program, u *Unit) []Diagnostic {
	var out []Diagnostic
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				out = append(out, checkErrorf(prog, u, n)...)
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					out = append(out, checkErrCompare(prog, u, n)...)
				}
			}
			return true
		})
	}
	return out
}

// checkErrorf verifies that fmt.Errorf wraps every error argument.
func checkErrorf(prog *Program, u *Unit, call *ast.CallExpr) []Diagnostic {
	if _, ok := calleeIn(u.Info, call, "fmt", "Errorf"); !ok {
		return nil
	}
	if len(call.Args) < 2 {
		return nil
	}
	var errArgs int
	for _, arg := range call.Args[1:] {
		if isErrorType(u.Info.TypeOf(arg)) {
			errArgs++
		}
	}
	if errArgs == 0 {
		return nil
	}
	tv, ok := u.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil // non-constant format: can't count verbs
	}
	wraps := strings.Count(constant.StringVal(tv.Value), "%w")
	if wraps >= errArgs {
		return nil
	}
	return []Diagnostic{prog.diag("errwrap", call.Pos(), wrapFix,
		"fmt.Errorf receives %d error value(s) but the format has %d %%w verb(s): the error chain is cut", errArgs, wraps)}
}

// checkErrCompare flags ==/!= on err.Error() strings and on error
// values themselves (except against nil).
func checkErrCompare(prog *Program, u *Unit, cmp *ast.BinaryExpr) []Diagnostic {
	var out []Diagnostic
	for _, op := range []ast.Expr{cmp.X, cmp.Y} {
		call, ok := ast.Unparen(op).(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
			continue
		}
		if isErrorType(u.Info.TypeOf(sel.X)) {
			out = append(out, prog.diag("errwrap", cmp.Pos(), strcmpFix,
				"comparing err.Error() text with %s: error messages are not a stable API", cmp.Op))
			return out
		}
	}
	if isNilExpr(u, cmp.X) || isNilExpr(u, cmp.Y) {
		return out // err != nil is the idiom, not a violation
	}
	if isErrorType(u.Info.TypeOf(cmp.X)) && isErrorType(u.Info.TypeOf(cmp.Y)) {
		out = append(out, prog.diag("errwrap", cmp.Pos(), identcmpFix,
			"comparing error values with %s misses wrapped sentinels", cmp.Op))
	}
	return out
}

func isNilExpr(u *Unit, e ast.Expr) bool {
	tv, ok := u.Info.Types[e]
	return ok && tv.IsNil()
}
