package vet

import (
	"go/ast"
	"go/types"
	"sort"
)

// AnalyzerHotpathAlloc enforces the zero-alloc steady-state invariant
// of the streaming ingest (DESIGN.md §7, pinned by the AllocsPerRun==0
// tests): functions annotated //symbee:hotpath, and every function they
// statically call within the module, must not contain
// allocation-inducing constructs.
//
// Flagged constructs:
//
//   - append whose result is not assigned back to the slice it appends
//     to (x = append(x, ...) — the amortized reuse pattern — is
//     allowed; anything else can grow a fresh backing array per call)
//   - string concatenation (non-constant)
//   - any call into package fmt
//   - make, new, and map/slice composite literals (including &T{})
//   - func literals that capture enclosing variables (closure
//     allocation)
//   - interface-typed parameters receiving non-pointer concrete
//     arguments (boxing at the call site)
//
// Propagation stops at functions annotated //symbee:coldpath: the
// per-frame boundary, where bounded allocation is the documented
// contract (4 allocs/frame), as opposed to the per-sample ingest where
// the budget is zero.
func AnalyzerHotpathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotpath-alloc",
		Doc:  "forbid allocation-inducing constructs in //symbee:hotpath call graphs",
		Run:  runHotpathAlloc,
	}
}

func runHotpathAlloc(prog *Program, u *Unit) []Diagnostic {
	hot := hotpathSet(prog)
	// Deterministic iteration: the framework sorts diagnostics, but the
	// check order itself should not depend on map order either.
	fns := make([]*types.Func, 0, len(hot))
	for fn := range hot {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	var out []Diagnostic
	for _, fn := range fns {
		decl, du := prog.Decl(fn)
		if du != u || decl.Body == nil {
			continue // report each function in its defining unit only
		}
		out = append(out, checkHotFunc(prog, du, decl, hot[fn])...)
	}
	return out
}

// hotpathSet computes the transitive hot set: annotated roots plus
// every module function they statically reach, each mapped to the
// display name of the root that pulled it in.
func hotpathSet(prog *Program) map[*types.Func]string {
	hot := make(map[*types.Func]string)
	var queue []*types.Func
	// Deterministic root order: collect then sort by position.
	var roots []*types.Func
	for fn, decl := range prog.decls {
		if hasDirective(decl, "//symbee:hotpath") {
			roots = append(roots, fn)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Pos() < roots[j].Pos() })
	for _, fn := range roots {
		hot[fn] = funcDisplayName(fn)
		queue = append(queue, fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		decl, u := prog.Decl(fn)
		if decl == nil || decl.Body == nil {
			continue
		}
		root := hot[fn]
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(u.Info, call)
			if callee == nil {
				return true
			}
			cd, _ := prog.Decl(callee)
			if cd == nil {
				return true // outside the module, or interface method
			}
			if hasDirective(cd, "//symbee:coldpath") {
				return true // explicit per-frame/setup boundary
			}
			if _, seen := hot[callee]; !seen {
				hot[callee] = root
				queue = append(queue, callee)
			}
			return true
		})
	}
	return hot
}

const hotpathFix = "hoist the allocation to setup, reuse a retained buffer, " +
	"mark the callee //symbee:coldpath if it is per-frame, or //symbee:ignore hotpath-alloc with a rationale"

// checkHotFunc flags allocation-inducing constructs in one hot
// function body.
func checkHotFunc(prog *Program, u *Unit, decl *ast.FuncDecl, root string) []Diagnostic {
	var out []Diagnostic
	info := u.Info
	in := "in hot path (reached from " + root + ")"
	report := func(n ast.Node, format string, args ...any) {
		args = append(args, in)
		out = append(out, prog.diag("hotpath-alloc", n.Pos(), hotpathFix, format+" %s", args...))
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := capturedVars(info, decl, n); len(capt) > 0 {
				report(n, "func literal captures %q: closure allocates", capt[0])
			}
			// The literal's body belongs to the closure, which runs
			// whenever it runs — if it is invoked on the hot path it is
			// reached through its own call edge; don't double-report.
			return false
		case *ast.AssignStmt:
			// Recognize the amortized-growth idiom before descending:
			// x = append(x, ...) and x = append(x[:k], ...).
			for i, rhs := range n.Rhs {
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
					if i < len(n.Lhs) && appendReusesTarget(n.Lhs[i], call) {
						// Walk the non-slice arguments only.
						for _, arg := range call.Args[1:] {
							ast.Inspect(arg, walk)
						}
						continue
					}
					report(call, "append result is not assigned back to its operand: backing array may be reallocated per call")
					for _, arg := range call.Args {
						ast.Inspect(arg, walk)
					}
					continue
				}
				ast.Inspect(rhs, walk)
			}
			for _, lhs := range n.Lhs {
				ast.Inspect(lhs, walk)
			}
			return false
		case *ast.ReturnStmt:
			// return append(x, ...) hands growth to the caller — the
			// caller-managed reuse pattern (Process-style APIs) — as
			// long as the appended slice is a parameter the caller owns.
			for _, res := range n.Results {
				if call, ok := ast.Unparen(res).(*ast.CallExpr); ok && isBuiltin(info, call, "append") {
					for _, arg := range call.Args[1:] {
						ast.Inspect(arg, walk)
					}
					continue
				}
				ast.Inspect(res, walk)
			}
			return false
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n, "append"):
				report(n, "append outside a grow-assign (x = append(x, ...)): backing array may be reallocated per call")
			case isBuiltin(info, n, "make"):
				report(n, "make allocates")
			case isBuiltin(info, n, "new"):
				report(n, "new allocates")
			default:
				if name, ok := calleeIn(info, n, "fmt"); ok {
					report(n, "fmt.%s allocates (formatting, boxing)", name)
				}
				out = append(out, checkBoxing(prog, info, n, in)...)
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					report(n, "slice literal allocates")
				case *types.Map:
					report(n, "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n, "&composite literal escapes to the heap")
					return false
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				t := info.TypeOf(n)
				if t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						if tv, ok := info.Types[n]; !ok || tv.Value == nil { // constant folds are free
							report(n, "string concatenation allocates")
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(decl.Body, walk)
	return out
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// appendReusesTarget reports whether `lhs = append(first, ...)` writes
// back to the slice it appends to: lhs and the base of first must be
// the same expression (x and x, or x and x[:k]).
func appendReusesTarget(lhs ast.Expr, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	first := ast.Unparen(call.Args[0])
	if sl, ok := first.(*ast.SliceExpr); ok {
		first = ast.Unparen(sl.X)
	}
	return types.ExprString(lhs) == types.ExprString(first)
}

// capturedVars lists names of variables a func literal captures from
// its enclosing function (declared after the enclosing declaration
// starts and before the literal does).
func capturedVars(info *types.Info, encl *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= encl.Pos() && v.Pos() < lit.Pos() && !seen[v.Name()] {
			seen[v.Name()] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}

// checkBoxing flags non-pointer concrete arguments passed to
// interface-typed parameters.
func checkBoxing(prog *Program, info *types.Info, call *ast.CallExpr, in string) []Diagnostic {
	sigTV, ok := info.Types[call.Fun]
	if !ok || sigTV.Type == nil {
		return nil
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []Diagnostic
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // slice passed whole
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue // no boxing: interface copy, or pointer in the data word
		}
		out = append(out, prog.diag("hotpath-alloc", arg.Pos(), hotpathFix,
			"passing concrete %s to interface parameter boxes it %s", at.String(), in))
	}
	return out
}
