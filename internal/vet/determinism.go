package vet

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// AnalyzerDeterminism enforces the seeded-reproducibility invariant
// (DESIGN.md §5: every simulation and fault-injection result must be
// replayable from a seed). It flags:
//
//   - calls to the global (process-seeded) math/rand and math/rand/v2
//     top-level functions — randomness must flow from an injected,
//     seeded *rand.Rand;
//   - calls to or references of time.Now / time.Since / time.Until
//     anywhere except internal/reliable/clock.go, the one blessed
//     wall-clock seam (retransmission timers go through the Clock
//     interface so tests drive virtual time);
//   - ranging over a map while feeding an ordered output (printing, or
//     appending to a slice that is never sorted afterwards in the same
//     function) — map iteration order is randomized per run.
//
// Package main is exempt from the clock rule: CLI entry points
// legitimately report wall-clock progress.
func AnalyzerDeterminism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid ambient randomness, unblessed wall clocks, and order-leaking map ranges",
		Run:  runDeterminism,
	}
}

// clockAllowFile is the one file allowed to touch the wall clock.
const clockAllowFile = "internal/reliable/clock.go"

const randFix = "thread a seeded *rand.Rand (or rand.Source) through the call path"
const clockFix = "inject a reliable.Clock, or route through the package's single " +
	"//symbee:ignore-annotated wallNow seam"
const mapOrderFix = "collect keys, sort, then iterate; or sort the accumulated slice before use"

func runDeterminism(prog *Program, u *Unit) []Diagnostic {
	var out []Diagnostic
	isMain := u.Pkg != nil && u.Pkg.Name() == "main"
	for _, f := range u.Files {
		fname := prog.Fset.Position(f.Pos()).Filename
		clockAllowed := isMain || strings.HasSuffix(filepath.ToSlash(fname), clockAllowFile)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// Constructors (New, NewSource, ...) build seeded local
				// generators — the blessed pattern; only the top-level
				// functions drive the process-global state.
				for _, pkg := range []string{"math/rand", "math/rand/v2"} {
					if name, ok := calleeIn(u.Info, n, pkg); ok && !strings.HasPrefix(name, "New") {
						out = append(out, prog.diag("determinism", n.Pos(), randFix,
							"%s.%s uses the process-global generator: results are not seed-reproducible", pkg, name))
					}
				}
			case *ast.SelectorExpr:
				// References, not just calls: `var now = time.Now`
				// smuggles the wall clock past a call-only check.
				if clockAllowed {
					return true
				}
				if fn, ok := u.Info.Uses[n.Sel].(*types.Func); ok {
					if fn.Pkg() != nil && fn.Pkg().Path() == "time" {
						switch fn.Name() {
						case "Now", "Since", "Until":
							out = append(out, prog.diag("determinism", n.Pos(), clockFix,
								"time.%s outside %s: wall-clock reads make runs irreproducible", fn.Name(), clockAllowFile))
						}
					}
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					out = append(out, checkMapRangeOrder(prog, u, n)...)
				}
			}
			return true
		})
	}
	return out
}

// checkMapRangeOrder flags range-over-map statements inside fn whose
// body leaks iteration order into an ordered output.
func checkMapRangeOrder(prog *Program, u *Unit, fn *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := u.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, ok := t.Underlying().(*types.Map); !ok {
			return true
		}
		if target, kind := mapRangeLeak(u, fn, rng); kind != "" {
			msg := "map iteration order leaks into output: " + kind
			if target != "" {
				msg += " " + target
			}
			out = append(out, prog.diag("determinism", rng.Pos(), mapOrderFix, msg))
		}
		return true
	})
	return out
}

// mapRangeLeak inspects a range-over-map body for order-dependent
// emission: direct printing, or appending to a slice that the enclosing
// function never sorts afterwards.
func mapRangeLeak(u *Unit, fn *ast.FuncDecl, rng *ast.RangeStmt) (target, kind string) {
	var appended []ast.Expr
	found := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := calleeIn(u.Info, call, "fmt", "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf"); ok {
			found = "fmt." + name + " inside the range body"
			return false
		}
		if isBuiltin(u.Info, call, "append") && len(call.Args) > 0 {
			if first := ast.Unparen(call.Args[0]); exprIdentityKnown(u, first) {
				appended = append(appended, first)
			}
		}
		return true
	})
	if found != "" {
		return "", found
	}
	for _, tgt := range appended {
		if !sortedAfter(u, fn, rng, tgt) {
			return types.ExprString(tgt), "append to"
		}
	}
	return "", ""
}

// exprIdentityKnown reports whether the expression is simple enough to
// track by its printed form (identifier or selector chain).
func exprIdentityKnown(u *Unit, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return exprIdentityKnown(u, e.X)
	default:
		return false
	}
}

// sortedAfter reports whether, somewhere in fn after the range
// statement ends, a sort call (sort.* or slices.Sort*) receives the
// target expression.
func sortedAfter(u *Unit, fn *ast.FuncDecl, rng *ast.RangeStmt, target ast.Expr) bool {
	want := types.ExprString(target)
	sorted := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fnObj := calleeFunc(u.Info, call)
		if fnObj == nil || fnObj.Pkg() == nil {
			return true
		}
		pkg := fnObj.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			a := ast.Unparen(arg)
			if types.ExprString(a) == want {
				sorted = true
				return false
			}
			// sort.Slice(x, func...) and wrappers like sort.Sort(byX(x)).
			if inner, ok := a.(*ast.CallExpr); ok {
				for _, ia := range inner.Args {
					if types.ExprString(ast.Unparen(ia)) == want {
						sorted = true
						return false
					}
				}
			}
		}
		return true
	})
	return sorted
}
