package vet

import (
	"testing"
)

// BenchmarkVetRun is the self-bench the nightly workflow tracks: one
// whole-module load up front (amortized — the load dominates wall time
// and the JSON report splits it out as load_ms), then b.N runs of the
// full 8-analyzer suite over every unit. The parallel fan-out in Run
// makes this scale with GOMAXPROCS; regressions here mean an analyzer
// grew a super-linear walk.
func BenchmarkVetRun(b *testing.B) {
	prog, err := Load("../..", []string{"./..."})
	if err != nil {
		b.Fatalf("Load: %v", err)
	}
	analyzers := Analyzers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(prog, analyzers)
	}
}

// BenchmarkVetLoad tracks the parse/type-check half separately, so a
// load regression cannot hide inside the analysis number.
func BenchmarkVetLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Load("../..", []string{"./internal/dsp", "./internal/splitmix"}); err != nil {
			b.Fatalf("Load: %v", err)
		}
	}
}
