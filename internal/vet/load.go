package vet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Unit is one type-checked package of the analyzed module.
type Unit struct {
	// Path is the import path ("symbee/internal/dsp").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Pkg and Info are the go/types results for Files.
	Pkg  *types.Package
	Info *types.Info
}

// Program is a load of the module: every package reachable from the
// requested patterns, type-checked against a shared file set so object
// identities line up across packages (the hotpath analyzer walks the
// cross-package call graph through Decls).
type Program struct {
	Fset *token.FileSet
	// Units are the analyzed packages in deterministic (path) order.
	Units []*Unit
	// ignores indexes //symbee:ignore comments by file and line.
	ignores map[string]*fileIgnores

	decls    map[*types.Func]*ast.FuncDecl
	declUnit map[*types.Func]*Unit
}

// Decl returns the syntax of fn and the unit declaring it, when fn is
// declared in the loaded module (nil otherwise — stdlib, interface
// methods, function values).
func (p *Program) Decl(fn *types.Func) (*ast.FuncDecl, *Unit) {
	return p.decls[fn], p.declUnit[fn]
}

// Position resolves a token position against the program's file set.
func (p *Program) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// pkgSource is a parsed-but-not-yet-checked package directory.
type pkgSource struct {
	path  string
	dir   string
	files []*ast.File
}

// loader type-checks module packages on demand: Import is handed to
// go/types as the importer, so dependency order falls out of the
// recursion (with memoization and cycle detection). Imports outside the
// module fall through to the toolchain's export data, then to the
// from-source importer.
type loader struct {
	fset     *token.FileSet
	srcs     map[string]*pkgSource
	units    map[string]*Unit
	checking map[string]bool
	gc       types.Importer
	source   types.Importer
}

func (l *loader) Import(path string) (*types.Package, error) {
	if s, ok := l.srcs[path]; ok {
		u, err := l.check(s)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	pkg, err := l.gc.Import(path)
	if err == nil {
		return pkg, nil
	}
	return l.source.Import(path)
}

func (l *loader) check(s *pkgSource) (*Unit, error) {
	if u, ok := l.units[s.path]; ok {
		return u, nil
	}
	if l.checking[s.path] {
		return nil, fmt.Errorf("vet: import cycle through %s", s.path)
	}
	l.checking[s.path] = true
	defer delete(l.checking, s.path)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(s.path, l.fset, s.files, info)
	if err != nil {
		return nil, fmt.Errorf("vet: type-checking %s: %w", s.path, err)
	}
	u := &Unit{Path: s.path, Dir: s.dir, Files: s.files, Pkg: pkg, Info: info}
	l.units[s.path] = u
	return u, nil
}

// Load parses and type-checks the module rooted at or above dir,
// returning the packages matched by patterns ("./...", "./pkg/...",
// "./pkg", "."). Test files are not loaded: the enforced invariants are
// library-code invariants, and tests routinely (and legitimately) use
// wall clocks, global rand and exact comparisons.
func Load(dir string, patterns []string) (*Program, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	srcs, err := discover(fset, root, modPath)
	if err != nil {
		return nil, err
	}
	// Wildcard patterns never reach into testdata (discover skips those
	// trees, mirroring the go tool), but an explicitly named directory
	// should still load — that is how the golden fixtures are run from
	// the command line.
	if err := addExplicitDirs(fset, root, modPath, patterns, srcs); err != nil {
		return nil, err
	}
	l := &loader{
		fset:     fset,
		srcs:     srcs,
		units:    make(map[string]*Unit),
		checking: make(map[string]bool),
		gc:       importer.Default(),
		source:   importer.ForCompiler(fset, "source", nil),
	}
	matched := make([]*pkgSource, 0, len(srcs))
	for _, s := range srcs {
		if matchesAny(patterns, root, s) {
			matched = append(matched, s)
		}
	}
	if len(matched) == 0 {
		return nil, fmt.Errorf("vet: no packages match %v", patterns)
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].path < matched[j].path })

	prog := &Program{
		Fset:     fset,
		ignores:  make(map[string]*fileIgnores),
		decls:    make(map[*types.Func]*ast.FuncDecl),
		declUnit: make(map[*types.Func]*Unit),
	}
	for _, s := range matched {
		u, err := l.check(s)
		if err != nil {
			return nil, err
		}
		prog.Units = append(prog.Units, u)
	}
	// Index declarations and suppression comments across every loaded
	// unit (matched or dependency): the hotpath walk crosses package
	// boundaries, so callee bodies must be reachable even when their
	// package was pulled in only as an import.
	for _, u := range l.units {
		prog.indexUnit(u)
	}
	return prog, nil
}

// LoadDir type-checks a standalone directory tree (no module context)
// under the given synthetic import path. It exists for the
// golden-fixture tests, whose packages live under testdata and import
// only the standard library — or each other: subdirectories holding Go
// files become sibling packages at path+"/"+subdir, resolvable from
// the root fixture's imports (the layering and rngstream fixtures model
// multi-package programs this way).
func LoadDir(dir, path string) (*Program, error) {
	fset := token.NewFileSet()
	srcs := make(map[string]*pkgSource)
	err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() || strings.HasPrefix(d.Name(), ".") {
			return nil
		}
		files, err := parseDir(fset, p)
		if err != nil || len(files) == 0 {
			return err
		}
		rel, err := filepath.Rel(dir, p)
		if err != nil {
			return err
		}
		imp := path
		if rel != "." {
			imp = path + "/" + filepath.ToSlash(rel)
		}
		srcs[imp] = &pkgSource{path: imp, dir: p, files: files}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(srcs) == 0 {
		return nil, fmt.Errorf("vet: no Go files in %s", dir)
	}
	l := &loader{
		fset:     fset,
		srcs:     srcs,
		units:    make(map[string]*Unit),
		checking: make(map[string]bool),
		gc:       importer.Default(),
		source:   importer.ForCompiler(fset, "source", nil),
	}
	paths := make([]string, 0, len(srcs))
	for p := range srcs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	prog := &Program{
		Fset:     fset,
		ignores:  make(map[string]*fileIgnores),
		decls:    make(map[*types.Func]*ast.FuncDecl),
		declUnit: make(map[*types.Func]*Unit),
	}
	for _, p := range paths {
		u, err := l.check(srcs[p])
		if err != nil {
			return nil, err
		}
		prog.Units = append(prog.Units, u)
		prog.indexUnit(u)
	}
	return prog, nil
}

func (p *Program) indexUnit(u *Unit) {
	for _, f := range u.Files {
		p.indexIgnores(f)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
				p.decls[fn] = fd
				p.declUnit[fn] = u
			}
		}
	}
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("vet: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("vet: no go.mod at or above %s", abs)
		}
	}
}

// discover parses every package directory of the module. Hidden
// directories, testdata and vendor trees are skipped, as are test
// files.
func discover(fset *token.FileSet, root, modPath string) (map[string]*pkgSource, error) {
	srcs := make(map[string]*pkgSource)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "node_modules") {
			return filepath.SkipDir
		}
		files, err := parseDir(fset, path)
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		srcs[imp] = &pkgSource{path: imp, dir: path, files: files}
		return nil
	})
	return srcs, err
}

// addExplicitDirs parses package directories that were named directly
// by a wildcard-free pattern but skipped by discover (testdata trees).
// Missing directories are left for matchesAny to report as unmatched.
func addExplicitDirs(fset *token.FileSet, root, modPath string, patterns []string, srcs map[string]*pkgSource) error {
	for _, pat := range patterns {
		p := strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if p == "" || p == "." || strings.Contains(p, "...") {
			continue
		}
		imp := modPath + "/" + p
		if _, ok := srcs[imp]; ok {
			continue
		}
		dir := filepath.Join(root, filepath.FromSlash(p))
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			continue
		}
		files, err := parseDir(fset, dir)
		if err != nil {
			return err
		}
		if len(files) > 0 {
			srcs[imp] = &pkgSource{path: imp, dir: dir, files: files}
		}
	}
	return nil
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// matchesAny reports whether the package source matches one of the
// go-style path patterns, resolved relative to the module root.
func matchesAny(patterns []string, root string, s *pkgSource) bool {
	rel, err := filepath.Rel(root, s.dir)
	if err != nil {
		return false
	}
	rel = filepath.ToSlash(rel)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat == "..." || pat == "" {
			return true
		}
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == sub || strings.HasPrefix(rel, sub+"/") {
				return true
			}
			continue
		}
		if pat == "." && rel == "." {
			return true
		}
		if rel == pat {
			return true
		}
	}
	return false
}
