package vet

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// golden runs one analyzer over a testdata fixture package and checks
// its diagnostics against the fixture's `// want "regexp"` comments:
// every diagnostic must match a want on its line, and every want must
// be matched by some diagnostic on its line.
func golden(t *testing.T, fixture string, az *Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", fixture)
	prog, err := LoadDir(dir, "fixture/"+fixture)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags := Run(prog, []*Analyzer{az})

	wants := collectWants(t, prog)
	matched := make(map[string]bool) // "line#idx" of consumed wants

	for _, d := range diags {
		lineWants := wants[d.Line]
		ok := false
		for i, re := range lineWants {
			if re.MatchString(d.Message) {
				matched[fmt.Sprintf("%d#%d", d.Line, i)] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos(), d.Message)
		}
	}
	for line, res := range wants {
		for i, re := range res {
			if !matched[fmt.Sprintf("%d#%d", line, i)] {
				t.Errorf("%s:%d: want %q: no matching diagnostic", fixture, line, re)
			}
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("got: %s", d.String())
		}
	}
}

var wantRE = regexp.MustCompile("`([^`]+)`")

// collectWants parses `// want` comments out of the fixture ASTs,
// keyed by line. Patterns are backquoted regexps: // want `re` `re2`.
func collectWants(t *testing.T, prog *Program) map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[int][]*regexp.Regexp)
	for _, u := range prog.Units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					line := prog.Fset.Position(c.Pos()).Line
					for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", m[1], err)
						}
						wants[line] = append(wants[line], re)
					}
					if len(wantRE.FindAllString(rest, -1)) == 0 {
						t.Fatalf("want comment with no backquoted pattern: %s", c.Text)
					}
				}
			}
		}
	}
	return wants
}

func TestGoldenHotpathAlloc(t *testing.T) { golden(t, "hotpath", AnalyzerHotpathAlloc()) }
func TestGoldenDeterminism(t *testing.T)  { golden(t, "determinism", AnalyzerDeterminism()) }
func TestGoldenErrwrap(t *testing.T)      { golden(t, "errwrap", AnalyzerErrwrap()) }
func TestGoldenFloatcmp(t *testing.T)     { golden(t, "floatcmp", AnalyzerFloatcmp()) }
func TestGoldenRngstream(t *testing.T)    { golden(t, "rngstream", AnalyzerRngstream()) }
func TestGoldenConfvalid(t *testing.T)    { golden(t, "confvalid", AnalyzerConfvalid()) }
func TestGoldenConcurrency(t *testing.T)  { golden(t, "concurrency", AnalyzerConcurrency()) }

// fixtureLayerManifest mirrors the shape of repoLayerManifest over the
// layering fixture's subpackages: a and f are leaves, b/c/e each may
// import a, and d is deliberately undeclared.
const fixtureLayerManifest = `
a:
f:
b: a
c: a
e: a
`

func TestGoldenLayering(t *testing.T) {
	golden(t, "layering", newLayeringAnalyzer("fixture/layering/", fixtureLayerManifest))
}

// TestFixturesHaveCoverage pins the ISSUE's floor: every fixture holds
// at least 3 positive (want) and 2 negative (ok:) cases.
func TestFixturesHaveCoverage(t *testing.T) {
	for _, fixture := range []string{
		"hotpath", "determinism", "errwrap", "floatcmp",
		"layering", "rngstream", "confvalid", "concurrency",
	} {
		prog, err := LoadDir(filepath.Join("testdata", fixture), "fixture/"+fixture)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", fixture, err)
		}
		positives, negatives := 0, 0
		for _, u := range prog.Units {
			for _, f := range u.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
						if strings.HasPrefix(text, "want ") {
							positives++
						}
						if strings.HasPrefix(text, "ok") {
							negatives++
						}
					}
				}
			}
		}
		if positives < 3 || negatives < 2 {
			t.Errorf("%s: %d positive / %d negative cases, need >=3 / >=2", fixture, positives, negatives)
		}
	}
}

// TestAnalyzersRegistered pins the suite composition and ordering.
func TestAnalyzersRegistered(t *testing.T) {
	want := []string{
		"hotpath-alloc", "determinism", "errwrap", "floatcmp",
		"layering", "rngstream", "confvalid", "concurrency",
	}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, az := range got {
		if az.Name != want[i] {
			t.Errorf("analyzer[%d] = %s, want %s", i, az.Name, want[i])
		}
		if az.Doc == "" || az.Run == nil {
			t.Errorf("analyzer %s missing Doc or Run", az.Name)
		}
	}
}

// TestLoadRepo loads the real module from this package's directory and
// checks that cross-package declarations resolve (the hotpath walk
// depends on it).
func TestLoadRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load")
	}
	prog, err := Load(".", []string{"./internal/dsp", "./internal/core"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Units) != 2 {
		t.Fatalf("got %d units, want 2", len(prog.Units))
	}
	// A hot root annotated in dsp must have its declaration indexed.
	found := false
	for fn, decl := range prog.decls {
		if hasDirective(decl, "//symbee:hotpath") {
			found = true
			if d, u := prog.Decl(fn); d == nil || u == nil {
				t.Errorf("hot root %s has no indexed declaration", funcDisplayName(fn))
			}
		}
	}
	if !found {
		t.Error("no //symbee:hotpath roots found in dsp+core — annotations missing")
	}
}

// TestLoadExplicitTestdataDir pins the CLI contract for fixtures:
// wildcard patterns skip testdata trees, but naming a fixture
// directory outright loads it and produces its diagnostics.
func TestLoadExplicitTestdataDir(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module load")
	}
	prog, err := Load(".", []string{"./internal/vet/testdata/errwrap"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Units) != 1 {
		t.Fatalf("got %d units, want 1", len(prog.Units))
	}
	if diags := Run(prog, Analyzers()); len(diags) == 0 {
		t.Error("errwrap fixture produced no diagnostics through Load")
	}

	// The wildcard over the same subtree must keep skipping testdata.
	if _, err := Load(".", []string{"./internal/vet/testdata/..."}); err == nil {
		t.Error("wildcard into testdata matched packages; want no-packages error")
	}
}
