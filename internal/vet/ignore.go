package vet

import (
	"go/ast"
	"strings"
)

// Suppression comments:
//
//	//symbee:ignore <rules> -- rationale     silences the listed rules on
//	                                          this line and the next one
//	//symbee:ignore-file <rules> -- rationale silences them for the file
//
// Rules are comma-separated analyzer names; "all" matches every rule.
// The rationale (anything after "--" or "—") is free-form and ignored
// by the machinery, but the convention is that an ignore without a why
// does not survive review.

type fileIgnores struct {
	// byLine maps a source line to the rules ignored on it.
	byLine map[int][]string
	// whole holds file-wide ignored rules.
	whole []string
}

func (p *Program) indexIgnores(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			var rules []string
			var whole bool
			switch {
			case strings.HasPrefix(text, "symbee:ignore-file"):
				rules = parseIgnoreRules(strings.TrimPrefix(text, "symbee:ignore-file"))
				whole = true
			case strings.HasPrefix(text, "symbee:ignore"):
				rules = parseIgnoreRules(strings.TrimPrefix(text, "symbee:ignore"))
			default:
				continue
			}
			if len(rules) == 0 {
				continue
			}
			pos := p.Fset.Position(c.Pos())
			fi := p.ignores[pos.Filename]
			if fi == nil {
				fi = &fileIgnores{byLine: make(map[int][]string)}
				p.ignores[pos.Filename] = fi
			}
			if whole {
				fi.whole = append(fi.whole, rules...)
			} else {
				fi.byLine[pos.Line] = append(fi.byLine[pos.Line], rules...)
			}
		}
	}
}

// parseIgnoreRules extracts the rule list, stopping at a rationale
// separator ("--" or "—").
func parseIgnoreRules(s string) []string {
	for _, sep := range []string{"--", "—"} {
		if i := strings.Index(s, sep); i >= 0 {
			s = s[:i]
		}
	}
	var rules []string
	for _, field := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if field != "" {
			rules = append(rules, field)
		}
	}
	return rules
}

// suppressed reports whether d is silenced by an ignore comment: a
// file-wide ignore, or a line ignore on the diagnostic's line or the
// line directly above it.
func (p *Program) suppressed(d Diagnostic) bool {
	fi := p.ignores[d.File]
	if fi == nil {
		return false
	}
	match := func(rules []string) bool {
		for _, r := range rules {
			if r == d.Rule || r == "all" {
				return true
			}
		}
		return false
	}
	if match(fi.whole) {
		return true
	}
	return match(fi.byLine[d.Line]) || match(fi.byLine[d.Line-1])
}
