package vet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerConfvalid enforces the sentinel-free config contract
// (DESIGN.md §14, generalized from the reliability layer): exported
// config structs are built from an explicit baseline and validated
// before use, instead of scattering zero-value sentinels through
// constructors. Concretely, in library code (package main exempt):
//
//   - every exported struct type named Config or *Config must have a
//     package-level Default* constructor returning it (Defaults(),
//     DefaultConfig(), DefaultSimConfig(s), ...) and a Validate() error
//     method;
//   - every exported package-level function taking such a config must
//     call its Validate (or hand the whole config to another function,
//     which owns validation at its own site) before reading any field —
//     an entry point that normalizes or uses fields first silently
//     accepts configurations Validate would reject.
func AnalyzerConfvalid() *Analyzer {
	return &Analyzer{
		Name: "confvalid",
		Doc:  "require Defaults()/Validate() on exported configs and Validate-before-use in entry points",
		Run:  runConfvalid,
	}
}

const confDeclFix = "add a package-level Default* constructor and a Validate() error method (see internal/medium/config.go for the pattern)"
const confUseFix = "call cfg.Validate() (returning the error) before the first field read"

func runConfvalid(prog *Program, u *Unit) []Diagnostic {
	if u.Pkg == nil || u.Pkg.Name() == "main" {
		return nil
	}
	var out []Diagnostic
	for _, f := range u.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					out = append(out, checkConfigDecl(prog, u, ts)...)
				}
			case *ast.FuncDecl:
				out = append(out, checkConfigEntryPoint(prog, u, d)...)
			}
		}
	}
	return out
}

// isConfigType reports whether named is an exported struct type whose
// name marks it as a config.
func isConfigType(named *types.Named) bool {
	if named == nil {
		return false
	}
	obj := named.Obj()
	if !obj.Exported() || !strings.HasSuffix(obj.Name(), "Config") {
		return false
	}
	_, ok := named.Underlying().(*types.Struct)
	return ok
}

// checkConfigDecl verifies the Defaults/Validate surface of one
// exported config type declaration.
func checkConfigDecl(prog *Program, u *Unit, ts *ast.TypeSpec) []Diagnostic {
	obj, ok := u.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok || !isConfigType(named) {
		return nil
	}
	var out []Diagnostic
	if !hasDefaultsCtor(u.Pkg, named) {
		out = append(out, prog.diag("confvalid", ts.Name.Pos(), confDeclFix,
			"exported config %s has no Default* constructor: callers must guess a baseline field by field", obj.Name()))
	}
	if !hasValidateMethod(named) {
		out = append(out, prog.diag("confvalid", ts.Name.Pos(), confDeclFix,
			"exported config %s has no Validate() error method: invalid values surface as misbehavior, not errors", obj.Name()))
	}
	return out
}

// hasDefaultsCtor reports whether pkg declares a Default*-named
// callable whose first result is the config type (by value or pointer).
// Package-level function values count too, so a re-export like
// `var DefaultSimConfig = reliable.DefaultSimConfig` satisfies the
// contract for the aliased type.
func hasDefaultsCtor(pkg *types.Package, cfg *types.Named) bool {
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Default") {
			continue
		}
		var t types.Type
		switch obj := scope.Lookup(name).(type) {
		case *types.Func:
			t = obj.Type()
		case *types.Var:
			t = obj.Type()
		default:
			continue
		}
		sig, ok := t.(*types.Signature)
		if !ok || sig.Results().Len() == 0 {
			continue
		}
		res := sig.Results().At(0).Type()
		if p, ok := res.(*types.Pointer); ok {
			res = p.Elem()
		}
		if types.Identical(res, cfg) {
			return true
		}
	}
	return false
}

// hasValidateMethod reports whether the type (or its pointer) has a
// Validate() error method.
func hasValidateMethod(cfg *types.Named) bool {
	for _, t := range []types.Type{cfg, types.NewPointer(cfg)} {
		ms := types.NewMethodSet(t)
		for i := 0; i < ms.Len(); i++ {
			fn, ok := ms.At(i).Obj().(*types.Func)
			if !ok || fn.Name() != "Validate" {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() == 0 && sig.Results().Len() == 1 && isErrorType(sig.Results().At(0).Type()) {
				return true
			}
		}
	}
	return false
}

// checkConfigEntryPoint verifies that an exported package-level
// function validates its config parameters before reading their fields.
func checkConfigEntryPoint(prog *Program, u *Unit, fd *ast.FuncDecl) []Diagnostic {
	if fd.Recv != nil || fd.Body == nil || fd.Name == nil || !fd.Name.IsExported() {
		return nil
	}
	var out []Diagnostic
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			v, ok := u.Info.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			t := v.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok || !isConfigType(named) {
				continue
			}
			if d := checkValidateBeforeUse(prog, u, fd, v); d != nil {
				out = append(out, *d)
			}
		}
	}
	return out
}

// checkValidateBeforeUse finds the first field read of the config
// parameter and checks that a Validate call (or a whole-value handoff
// to another function) precedes it.
func checkValidateBeforeUse(prog *Program, u *Unit, fd *ast.FuncDecl, param *types.Var) *Diagnostic {
	type event struct {
		pos   int // token.Pos as int for ordering
		field string
		kind  int // 0 = field read, 1 = validate, 2 = handoff
	}
	var events []event
	// Walk with a parent stack so each use of the parameter can be
	// classified by its immediate context.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || u.Info.Uses[id] != param {
			return true
		}
		parent := ast.Node(nil)
		if len(stack) >= 2 {
			parent = stack[len(stack)-2]
		}
		switch p := parent.(type) {
		case *ast.SelectorExpr:
			if p.X != id {
				return true
			}
			if p.Sel.Name == "Validate" {
				events = append(events, event{pos: int(id.Pos()), kind: 1})
				return true
			}
			events = append(events, event{pos: int(id.Pos()), field: p.Sel.Name, kind: 0})
		case *ast.CallExpr:
			for _, arg := range p.Args {
				if arg == ast.Expr(id) {
					events = append(events, event{pos: int(id.Pos()), kind: 2})
					return true
				}
			}
		case *ast.UnaryExpr:
			// &cfg handed onward: treat like a whole-value handoff.
			if p.Op.String() == "&" {
				events = append(events, event{pos: int(id.Pos()), kind: 2})
			}
		}
		return true
	})
	first := event{kind: -1}
	for _, e := range events {
		if e.kind == 0 && (first.kind == -1 || e.pos < first.pos) {
			first = e
		}
	}
	if first.kind == -1 {
		return nil // no field reads at all
	}
	// A validate/handoff event clears the function only when it happens
	// before the first field read.
	for _, e := range events {
		if e.kind != 0 && e.pos < first.pos {
			return nil
		}
	}
	d := prog.diag("confvalid", token.Pos(first.pos), confUseFix,
		"%s reads %s.%s before calling Validate: invalid configs flow into the construction", fd.Name.Name, param.Name(), first.field)
	return &d
}
