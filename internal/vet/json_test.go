package vet

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"
	"time"
)

// TestReportShape pins the JSON schema CI consumes: field names, the
// count/diagnostics duplication, and []-not-null for clean runs.
func TestReportShape(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "floatcmp"), "fixture/floatcmp")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	analyzers := []*Analyzer{AnalyzerFloatcmp()}
	diags := Run(prog, analyzers)
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}

	var buf bytes.Buffer
	if err := NewReport([]string{"./..."}, analyzers, prog, diags, 5*time.Millisecond, 2*time.Millisecond).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}

	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, key := range []string{"patterns", "rules", "packages", "load_ms", "analyze_ms", "rule_counts", "diagnostics", "count"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("report missing %q key", key)
		}
	}
	if got := decoded["count"].(float64); int(got) != len(diags) {
		t.Errorf("count = %v, want %d", got, len(diags))
	}
	if got := decoded["load_ms"].(float64); int(got) != 5 {
		t.Errorf("load_ms = %v, want 5", got)
	}
	if got := decoded["analyze_ms"].(float64); int(got) != 2 {
		t.Errorf("analyze_ms = %v, want 2", got)
	}
	counts := decoded["rule_counts"].(map[string]any)
	if got := counts["floatcmp"].(float64); int(got) != len(diags) {
		t.Errorf("rule_counts[floatcmp] = %v, want %d", got, len(diags))
	}
	if got := decoded["rules"].([]any); len(got) != 1 || got[0] != "floatcmp" {
		t.Errorf("rules = %v, want [floatcmp]", got)
	}
	first := decoded["diagnostics"].([]any)[0].(map[string]any)
	for _, key := range []string{"rule", "file", "line", "col", "message"} {
		if _, ok := first[key]; !ok {
			t.Errorf("diagnostic missing %q key", key)
		}
	}
	if first["rule"] != "floatcmp" {
		t.Errorf("diagnostic rule = %v, want floatcmp", first["rule"])
	}
	if line := first["line"].(float64); line < 1 {
		t.Errorf("diagnostic line = %v, want >= 1", line)
	}
}

// TestReportEmptyDiagnostics pins that a clean run serializes
// diagnostics as [] rather than null.
func TestReportEmptyDiagnostics(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "floatcmp"), "fixture/floatcmp")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	var buf bytes.Buffer
	if err := NewReport([]string{"./..."}, Analyzers(), prog, nil, 0, 0).WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"diagnostics": null`)) {
		t.Error("empty diagnostics serialized as null, want []")
	}
	var decoded struct {
		Diagnostics []Diagnostic `json:"diagnostics"`
		Count       int          `json:"count"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded.Count != 0 || len(decoded.Diagnostics) != 0 {
		t.Errorf("clean report has count=%d len=%d, want 0/0", decoded.Count, len(decoded.Diagnostics))
	}
}
