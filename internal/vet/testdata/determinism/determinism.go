// Package determinism is a golden fixture for the determinism analyzer.
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// GlobalDraw uses the process-global generator.
func GlobalDraw() float64 {
	return rand.Float64() // want `math/rand\.Float64 uses the process-global generator`
}

// SeededDraw threads a seeded generator: the blessed pattern.
func SeededDraw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // ok: constructor, local generator
	return r.Float64()                  // ok: method on the seeded generator
}

// Stamp reads the wall clock outside the blessed file.
func Stamp() time.Time {
	return time.Now() // want `time\.Now outside internal/reliable/clock\.go`
}

// Elapsed smuggles the clock through a function value.
var Elapsed = time.Since // want `time\.Since outside internal/reliable/clock\.go`

// PrintAll leaks map order straight into output.
func PrintAll(m map[string]int) {
	for k, v := range m { // want `map iteration order leaks into output: fmt\.Println inside the range body`
		fmt.Println(k, v)
	}
}

// CollectUnsorted leaks map order through an unsorted slice.
func CollectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order leaks into output: append to keys`
		keys = append(keys, k)
	}
	return keys
}

// CollectSorted restores a deterministic order before returning.
func CollectSorted(m map[string]int) []string {
	var keys []string
	for k := range m { // ok: keys is sorted below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Tally ranges over a map without ordered output: order cannot leak.
func Tally(m map[string]int) int {
	total := 0
	for _, v := range m { // ok: sum is order-independent
		total += v
	}
	return total
}
