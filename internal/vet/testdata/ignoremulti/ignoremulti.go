// Package ignoremulti exercises one suppression comment silencing two
// different rules that fire on the same source line.
package ignoremulti

import "math/rand"

// Suppressed packs an rngstream violation (captured Rand) and a
// concurrency violation (joinless goroutine) onto one line, silenced by
// a single comma-separated ignore.
func Suppressed(seed int64) {
	rng := rand.New(rand.NewSource(seed)) //symbee:ignore rngstream -- fixture: raw source feeding the capture case
	go func() { _ = rng.Float64() }()     //symbee:ignore rngstream,concurrency -- fixture: one comment, two rules
}

// Control is the same shape with no suppression: both rules must fire
// on the go-statement line. The blank line keeps the raw-source
// suppression above from reaching the go statement via the line-above
// rule.
func Control(seed int64) {
	rng := rand.New(rand.NewSource(seed)) //symbee:ignore rngstream -- fixture: raw source feeding the capture case

	go func() { _ = rng.Float64() }()
}
