// Package floatcmp is a golden fixture for the floatcmp analyzer.
package floatcmp

// Equal compares computed floats exactly.
func Equal(a, b float64) bool {
	return a == b // want `exact == between floating-point operands`
}

// Drift compares float32 results exactly.
func Drift(x, y float32) bool {
	return x+1 != y // want `exact != between floating-point operands`
}

// SpectraMatch compares complex samples exactly.
func SpectraMatch(c1, c2 complex128) bool {
	return c1 == c2 // want `exact == between floating-point operands`
}

// ZeroGuard is the IEEE zero test protecting a division.
func ZeroGuard(mag2 float64) float64 {
	if mag2 == 0 { // ok: exact-zero guard
		return 0
	}
	return 1 / mag2
}

// IsNaN is the self-comparison probe.
func IsNaN(x float64) bool {
	return x != x // ok: NaN idiom
}

// IntCompare is not a float comparison at all.
func IntCompare(i, j int) bool {
	return i == j // ok
}
