// Package floatcmp is a golden fixture for the floatcmp analyzer.
package floatcmp

// Equal compares computed floats exactly.
func Equal(a, b float64) bool {
	return a == b // want `exact == between floating-point operands`
}

// Drift compares float32 results exactly.
func Drift(x, y float32) bool {
	return x+1 != y // want `exact != between floating-point operands`
}

// SpectraMatch compares complex samples exactly.
func SpectraMatch(c1, c2 complex128) bool {
	return c1 == c2 // want `exact == between floating-point operands`
}

// ZeroGuard is the IEEE zero test protecting a division.
func ZeroGuard(mag2 float64) float64 {
	if mag2 == 0 { // ok: exact-zero guard
		return 0
	}
	return 1 / mag2
}

// IsNaN is the self-comparison probe.
func IsNaN(x float64) bool {
	return x != x // ok: NaN idiom
}

// IntCompare is not a float comparison at all.
func IntCompare(i, j int) bool {
	return i == j // ok
}

// Dispatch switches on a computed float: every case is an exact ==.
func Dispatch(rate float64) int {
	switch rate * 2 {
	case 0: // ok: constant-zero case keeps the zero-test exemption
		return 0
	case 20e6: // want `case on a floating-point tag is an exact ==`
		return 1
	case 40e6, 80e6: // want `case on a floating-point tag` `case on a floating-point tag`
		return 2
	}
	return -1
}

// DispatchInt switches on an integer tag: cases are exact by nature.
func DispatchInt(n int) bool {
	switch n {
	case 3: // ok: integer dispatch
		return true
	}
	return false
}

// TaglessGuard is a tagless switch — its case expressions are ordinary
// boolean conditions, covered by the binary rule, not the switch rule.
func TaglessGuard(x float64) int {
	switch {
	case x > 1: // ok: inequality, not exact equality
		return 1
	case x == 2: // want `exact == between floating-point operands`
		return 2
	}
	return 0
}

// PhaseBuckets keys a map by a computed float.
func PhaseBuckets() map[float64]int { // want `map keyed by floating-point type float64`
	return map[float64]int{} // want `map keyed by floating-point type float64`
}

// SpectrumIndex keys by complex frequency-bin values.
type SpectrumIndex map[complex128]string // want `map keyed by floating-point type complex128`

// ByName is keyed by a comparable non-float type.
type ByName map[string]float64 // ok: float values are fine, only keys hash
