// Package confvalid is a golden fixture for the confvalid analyzer.
package confvalid

import "errors"

// GoodConfig carries the full contract: baseline constructor, Validate,
// and an entry point that validates before reading fields.
type GoodConfig struct { // ok: Defaults + Validate present
	N int
}

// DefaultGoodConfig returns the baseline.
func DefaultGoodConfig() GoodConfig { return GoodConfig{N: 4} }

// Validate reports the first structural problem.
func (c GoodConfig) Validate() error {
	if c.N < 1 {
		return errors.New("confvalid: N must be positive")
	}
	return nil
}

// NewGood validates before the first field read.
func NewGood(cfg GoodConfig) (int, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	return cfg.N, nil // ok: Validate ran first
}

// Wrap hands the whole config to NewGood, which owns validation.
func Wrap(cfg GoodConfig) (int, error) {
	return NewGood(cfg) // ok: whole-value handoff
}

// BadConfig has neither a baseline nor validation.
type BadConfig struct { // want `no Default\* constructor` `no Validate\(\) error method`
	N int
}

// Run reads a field before validating.
func Run(cfg GoodConfig) int {
	return cfg.N * 2 // want `Run reads cfg\.N before calling Validate`
}

// Apply takes the config by pointer; the contract is the same.
func Apply(cfg *GoodConfig) int {
	return cfg.N + 1 // want `Apply reads cfg\.N before calling Validate`
}

// peek is unexported: internal helpers may assume validated configs.
func peek(cfg GoodConfig) int {
	return cfg.N // ok: unexported helper, validation happened at the boundary
}

// legacyConfig is unexported, so the contract does not apply.
type legacyConfig struct { // ok: unexported type
	n int
}

// FrozenConfig is exempted with a reviewed rationale.
type FrozenConfig struct { //symbee:ignore confvalid -- fixture: frozen wire-format struct, field semantics documented elsewhere
	Raw []byte
}

var _ = BadConfig{}
var _ = legacyConfig{}
var _ = FrozenConfig{}
var _ = peek
