// Package splitmix is the fixture's stand-in for internal/splitmix:
// the analyzer matches derivation calls by package name, and the
// package itself is exempt from the raw-NewSource rule (it is where
// the one legitimate NewSource lives).
package splitmix

import "math/rand"

// Split derives stream's seed from the scenario seed.
func Split(seed int64, stream int) int64 {
	return seed ^ int64(stream+1)*0x9e3779b9
}

// New returns a generator over Split.
func New(seed int64, stream int) *rand.Rand {
	return rand.New(rand.NewSource(Split(seed, stream))) // ok: package splitmix owns the raw source
}
