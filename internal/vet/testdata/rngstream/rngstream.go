// Package rngstream is a golden fixture for the rngstream analyzer.
package rngstream

import (
	"math/rand"

	"fixture/rngstream/splitmix"
)

// Global is reachable from every goroutine the package ever starts.
var Global = splitmix.New(1, 0) // want `package-level \*rand\.Rand "Global"`

// RawSource does ad-hoc seed arithmetic — the correlated-streams hazard.
func RawSource(seed int64, w int) float64 {
	rng := rand.New(rand.NewSource(seed + int64(w)*7919)) // want `raw rand\.NewSource`
	return rng.Float64()
}

// DupStreams derives the same stream constant twice from one seed.
func DupStreams(seed int64) (float64, float64) {
	a := splitmix.New(seed, 3)
	b := splitmix.New(seed, 3) // want `stream constant 3 derived twice from seed seed`
	return a.Float64(), b.Float64()
}

// DistinctStreams is the sanctioned layout: one constant per purpose.
func DistinctStreams(seed int64) (float64, float64) {
	sched := splitmix.New(seed, 0)
	noise := splitmix.New(seed, -1) // ok: distinct stream constants never collide
	return sched.Float64(), noise.Float64()
}

// PerWorker indexes streams by a loop variable — not a constant, so two
// calls cannot silently collide.
func PerWorker(seed int64, workers int) float64 {
	var sum float64
	for w := 0; w < workers; w++ {
		rng := splitmix.New(seed, w) // ok: per-worker stream index
		sum += rng.Float64()
	}
	return sum
}

// SharedAcrossGoroutines captures one generator in a go-launched
// literal: draws race and the schedule decides the stream.
func SharedAcrossGoroutines(seed int64) {
	rng := splitmix.New(seed, 2)
	done := make(chan struct{})
	go func() {
		_ = rng.Float64() // want `captured by a go-launched goroutine`
		close(done)
	}()
	_ = rng.Float64()
	<-done
}

// OwnedByGoroutine derives the generator inside the goroutine — the
// Rand never crosses a goroutine boundary.
func OwnedByGoroutine(seed int64) {
	done := make(chan struct{})
	go func() {
		rng := splitmix.New(seed, 4) // ok: created inside the goroutine that uses it
		_ = rng.Float64()
		close(done)
	}()
	<-done
}

// Replayed reuses a historically pinned derivation under a reviewed
// suppression.
func Replayed(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) //symbee:ignore rngstream -- fixture: pinned legacy stream kept for artifact replay
	return rng.Float64()
}
