// Package concurrency is a golden fixture for the concurrency analyzer.
package concurrency

import "sync"

// Fire spawns a goroutine nobody can wait for.
func Fire() {
	go work() // want `goroutine has no join path`
}

// FireLit spawns a literal with no completion signal either.
func FireLit() {
	go func() { // want `goroutine has no join path`
		work()
	}()
}

func work() {}

// Joined uses the WaitGroup contract on the spawning side.
func Joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // ok: WaitGroup join in the spawner
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Signaled spawns a literal that announces completion on a channel.
func Signaled() <-chan int {
	out := make(chan int, 1)
	go func() { // ok: spawned body sends a completion signal
		work()
		out <- 1
	}()
	return out
}

// signalingWorker closes its channel when done, so spawning it by name
// is joinable too.
func signalingWorker(done chan struct{}) {
	work()
	close(done)
}

// SignaledByName spawns a named function whose body signals.
func SignaledByName() {
	done := make(chan struct{})
	go signalingWorker(done) // ok: callee closes done
	<-done
}

// Watcher is a reviewed fire-and-forget exception.
func Watcher() {
	go work() //symbee:ignore concurrency -- fixture: process-lifetime watcher, reviewed
}

// Counter guards its count with an annotated mutex.
type Counter struct {
	mu sync.Mutex
	n  int //symbee:guardedby mu
}

// Inc locks before touching the guarded field.
func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++ // ok: mu held
}

// Peek reads the guarded field without the lock.
func (c *Counter) Peek() int {
	return c.n // want `c\.n is annotated guardedby mu but Peek does not lock`
}

// Mislabeled names a mutex that is not a sibling field.
type Mislabeled struct {
	mu sync.Mutex
	//symbee:guardedby lock
	v int // want `names "lock", which is not a field of Mislabeled`
}

// Use keeps Mislabeled's fields referenced.
func (m *Mislabeled) Use() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.v++
}
