// Package hotpath is a golden fixture for the hotpath-alloc analyzer.
package hotpath

import "fmt"

// State is the retained per-stream scratch.
type State struct {
	buf  []float64
	out  []float64
	tags map[string]int
}

var sink []float64

// Ingest is the per-sample entry point.
//
//symbee:hotpath
func Ingest(s *State, x float64) {
	s.buf = append(s.buf, x) // ok: grow-assign reuses the retained buffer
	if len(s.buf) >= 4 {
		process(s)
	}
}

// process is hot transitively: Ingest calls it.
func process(s *State) {
	tmp := make([]float64, len(s.buf)) // want `make allocates`
	copy(tmp, s.buf)
	sink = append(tmp, 1)             // want `append result is not assigned back`
	fmt.Println(s)                    // want `fmt\.Println allocates`
	record(s.buf[0])                  // want `passing concrete float64 to interface parameter boxes it`
	s.tags = map[string]int{}         // want `map literal allocates`
	s.out = append(s.out[:0], tmp...) // ok: reslice of the same target
	s.buf = s.buf[:0]
	emit(s, Flush(s))
}

func record(v any) { _ = v }

func emit(s *State, vals []float64) {
	f := func() { s.out = vals } // want `func literal captures`
	f()
}

// Flush is the per-frame boundary: bounded allocation is its contract,
// so propagation stops here.
//
//symbee:coldpath
func Flush(s *State) []float64 {
	out := make([]float64, len(s.out)) // ok: behind //symbee:coldpath
	copy(out, s.out)
	return out
}

// Setup is never reached from a hot root; it may allocate freely.
func Setup(n int) *State {
	return &State{buf: make([]float64, 0, n), tags: map[string]int{}} // ok: cold
}
