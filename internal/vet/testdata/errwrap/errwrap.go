// Package errwrap is a golden fixture for the errwrap analyzer.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrBusy is a sentinel callers match with errors.Is.
var ErrBusy = errors.New("busy")

// WrapCut wraps with %v, cutting the chain.
func WrapCut(err error) error {
	return fmt.Errorf("push failed: %v", err) // want `1 error value\(s\) but the format has 0 %w verb\(s\)`
}

// WrapHalf wraps only one of two errors.
func WrapHalf(a, b error) error {
	return fmt.Errorf("a=%w b=%v", a, b) // want `2 error value\(s\) but the format has 1 %w verb\(s\)`
}

// WrapGood keeps the chain intact.
func WrapGood(err error) error {
	return fmt.Errorf("push failed: %w", err) // ok
}

// FormatValue has no error arguments at all.
func FormatValue(n int) error {
	return fmt.Errorf("bad count %d", n) // ok
}

// TextMatch compares message strings.
func TextMatch(err error) bool {
	return err.Error() == "busy" // want `comparing err\.Error\(\) text with ==`
}

// IdentityMatch compares error identity directly.
func IdentityMatch(err error) bool {
	return err == ErrBusy // want `comparing error values with == misses wrapped sentinels`
}

// NilCheck is the idiom, not a violation.
func NilCheck(err error) bool {
	return err != nil // ok
}

// IsMatch is the blessed sentinel test.
func IsMatch(err error) bool {
	return errors.Is(err, ErrBusy) // ok
}
