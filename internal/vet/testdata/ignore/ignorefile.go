//symbee:ignore-file all -- fixture: file-wide wildcard suppression
package ignore

import "time"

// FileWide is covered by the ignore-file directive above.
func FileWide() time.Time {
	return time.Now()
}

// FileWideToo is covered as well — the directive spans the whole file.
func FileWideToo() time.Time {
	return time.Now()
}
