// Package ignore is a fixture for the suppression machinery
// (ignore_test.go asserts which of these survive).
package ignore

import "time"

// SameLine is suppressed by a trailing comment on the violating line.
func SameLine() time.Time {
	return time.Now() //symbee:ignore determinism -- fixture: same-line suppression
}

// LineAbove is suppressed by a comment on the line above.
func LineAbove() time.Time {
	//symbee:ignore determinism -- fixture: line-above suppression
	return time.Now()
}

// WrongRule names a different rule, so the diagnostic still fires.
func WrongRule() time.Time {
	return time.Now() //symbee:ignore floatcmp -- fixture: wrong rule, must not suppress
}

// TooFar has the comment two lines up, out of range.
func TooFar() time.Time {
	//symbee:ignore determinism -- fixture: too far, must not suppress

	return time.Now()
}

// Unsuppressed has no ignore at all.
func Unsuppressed() time.Time {
	return time.Now()
}
