// Package e crosses an undeclared edge under a reviewed suppression.
package e

import (
	"fixture/layering/a" // ok: declared edge e -> a
	"fixture/layering/b" //symbee:ignore layering -- fixture: a deliberate, reviewed exception to the manifest
)

// Both uses the declared edge and the suppressed one.
func Both() int { return a.Value() + b.Sum() }
