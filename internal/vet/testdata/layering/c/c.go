// Package c may import a, but reaches sideways into b instead.
package c

import (
	"os" // ok: stdlib imports are never constrained

	"fixture/layering/b" // want `imports fixture/layering/b: edge not in the layering manifest`
)

// Total leans on the undeclared edge.
func Total() int { return b.Sum() + len(os.Args) }
