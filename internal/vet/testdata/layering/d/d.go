// Package d was added without declaring its layer.
package d // want `package fixture/layering/d is not declared in the layering manifest`

import "fixture/layering/a"

// Twice would be perfectly layered — but the manifest does not know
// the package exists, and new packages must declare their layer.
func Twice() int { return 2 * a.Value() }
