// Package b may import a — and nothing else under the prefix.
package b

import (
	"fixture/layering/a" // ok: declared edge b -> a
	"fixture/layering/f" // want `imports fixture/layering/f: edge not in the layering manifest`
)

// Sum crosses one legal and one illegal layer edge.
func Sum() int { return a.Value() + f.Forbidden() }
