// Package a is a leaf: its manifest line declares no dependencies.
package a

// Value is exported so the higher layers have something to import.
func Value() int { return 1 } // ok: leaf package, no internal imports
