// Package layering is a golden fixture for the layering analyzer. The
// subdirectories form a small program whose manifest lives in
// vet_test.go: a and f are leaves, b may import a, c may import a,
// e may import a, and d is deliberately missing from the manifest.
// This root package sits outside the layered prefix and is never
// checked.
package layering
