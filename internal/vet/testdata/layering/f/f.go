// Package f is a declared leaf that nobody is allowed to import.
package f

// Forbidden exists to be imported illegally by b.
func Forbidden() int { return 6 }
