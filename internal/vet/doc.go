// Package vet is the project's static-analysis framework: a pure-stdlib
// (go/parser + go/types + go/importer) loader and diagnostic model
// behind cmd/symbeevet, plus the four project-specific analyzers that
// machine-enforce invariants earlier PRs established by convention:
//
//   - hotpath-alloc: functions annotated //symbee:hotpath — and
//     everything they statically call within the module — must not
//     contain allocation-inducing constructs. This turns the
//     AllocsPerRun==0 spot checks of the streaming ingest tests into a
//     whole-call-graph guarantee (DESIGN.md §9.1).
//   - determinism: no global math/rand top-level functions (seeded
//     *rand.Rand only), no time.Now/time.Since/time.Until outside
//     internal/reliable/clock.go, and no range over a map feeding an
//     ordered output without an intervening sort (§9.2).
//   - errwrap: fmt.Errorf with an error argument must use %w, no
//     err.Error() string comparisons, sentinel errors consumed only via
//     errors.Is/errors.As (§9.3).
//   - floatcmp: no ==/!= between floating-point operands (exact-zero
//     tests, self-comparisons and constant folds excepted) — use
//     dsp.ApproxEqual or an explicit tolerance (§9.4).
//
// Suppression: a diagnostic is silenced by a //symbee:ignore <rules>
// comment on the flagged line or the line directly above it, or a
// //symbee:ignore-file <rules> comment anywhere in the file. Rules are
// comma-separated; "all" matches every rule. Everything after "--" or
// "—" in the comment is a free-form rationale (conventionally
// mandatory: an ignore without a why does not survive review).
//
// This package is the one place in the repository where panic is an
// acceptable failure mode (scripts/check.sh greps it out of every other
// library package): the analyzers run offline in CI, never in a serving
// path.
package vet
