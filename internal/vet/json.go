package vet

import (
	"encoding/json"
	"io"
	"time"
)

// Report is the machine-readable result of a run — the stable schema
// editor and CI integrations consume (json_test.go pins it).
type Report struct {
	// Patterns are the package patterns the run was invoked with.
	Patterns []string `json:"patterns"`
	// Rules are the analyzer names that ran, in suite order.
	Rules []string `json:"rules"`
	// Packages is the number of packages analyzed.
	Packages int `json:"packages"`
	// LoadMillis and AnalyzeMillis split the run's wall time between
	// parse/type-check and the analyzer fan-out, so CI can track vet
	// cost over time (the self-bench in bench_test.go tracks the same
	// quantity under `go test -bench`).
	LoadMillis    int64 `json:"load_ms"`
	AnalyzeMillis int64 `json:"analyze_ms"`
	// RuleCounts maps each rule that fired to its number of surviving
	// diagnostics (clean rules are omitted; JSON object keys sort, so
	// the report stays byte-stable for a given result set).
	RuleCounts map[string]int `json:"rule_counts"`
	// Diagnostics are the surviving findings in position order; an
	// empty run serializes as [] rather than null.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Count duplicates len(diagnostics) for cheap shell consumption
	// (jq .count).
	Count int `json:"count"`
}

// NewReport assembles the JSON payload for one run. load and analyze
// are the wall-clock durations of Load and Run respectively.
func NewReport(patterns []string, analyzers []*Analyzer, prog *Program, diags []Diagnostic, load, analyze time.Duration) Report {
	rules := make([]string, len(analyzers))
	for i, az := range analyzers {
		rules[i] = az.Name
	}
	if diags == nil {
		diags = []Diagnostic{}
	}
	counts := make(map[string]int)
	for _, d := range diags {
		counts[d.Rule]++
	}
	return Report{
		Patterns:      patterns,
		Rules:         rules,
		Packages:      len(prog.Units),
		LoadMillis:    load.Milliseconds(),
		AnalyzeMillis: analyze.Milliseconds(),
		RuleCounts:    counts,
		Diagnostics:   diags,
		Count:         len(diags),
	}
}

// WriteJSON renders the report, indented, to w.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
