package vet

import (
	"encoding/json"
	"io"
)

// Report is the machine-readable result of a run — the stable schema
// editor and CI integrations consume (json_test.go pins it).
type Report struct {
	// Patterns are the package patterns the run was invoked with.
	Patterns []string `json:"patterns"`
	// Rules are the analyzer names that ran, in suite order.
	Rules []string `json:"rules"`
	// Packages is the number of packages analyzed.
	Packages int `json:"packages"`
	// Diagnostics are the surviving findings in position order; an
	// empty run serializes as [] rather than null.
	Diagnostics []Diagnostic `json:"diagnostics"`
	// Count duplicates len(diagnostics) for cheap shell consumption
	// (jq .count).
	Count int `json:"count"`
}

// NewReport assembles the JSON payload for one run.
func NewReport(patterns []string, analyzers []*Analyzer, prog *Program, diags []Diagnostic) Report {
	rules := make([]string, len(analyzers))
	for i, az := range analyzers {
		rules[i] = az.Name
	}
	if diags == nil {
		diags = []Diagnostic{}
	}
	return Report{
		Patterns:    patterns,
		Rules:       rules,
		Packages:    len(prog.Units),
		Diagnostics: diags,
		Count:       len(diags),
	}
}

// WriteJSON renders the report, indented, to w.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
