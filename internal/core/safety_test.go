package core

import (
	"bytes"
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/wifi"
)

// TestFrameDecodeNeverSilentlyWrong is the frame-integrity property: at
// any SNR, DecodeFrame either returns the transmitted frame or an error
// — the CRC must catch every corruption the channel produces. (A CRC-16
// has a 2^-16 residual collision chance per corrupted packet; the fixed
// seed keeps this test deterministic.)
func TestFrameDecodeNeverSilentlyWrong(t *testing.T) {
	p := Params20()
	l := mustLink(t, p, wifi.CanonicalCompensation)
	rng := rand.New(rand.NewSource(77))
	decoded, errored := 0, 0
	for trial := 0; trial < 120; trial++ {
		data := make([]byte, rng.Intn(MaxDataBytes+1))
		rng.Read(data)
		f := &Frame{Seq: byte(trial), Flags: byte(trial) & 0x0F, Data: data}
		sig, err := l.TransmitFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		snr := -6 + rng.Float64()*16 // −6 … +10 dB
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      snr,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        300,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.ReceiveFrame(m.Transmit(sig))
		if err != nil {
			errored++
			continue
		}
		decoded++
		if got.Seq != f.Seq || got.Flags != f.Flags || !bytes.Equal(got.Data, f.Data) {
			t.Fatalf("trial %d (SNR %.1f): silently wrong frame: got %+v want %+v",
				trial, snr, got, f)
		}
	}
	if decoded == 0 {
		t.Error("no frame ever decoded; test is vacuous")
	}
	t.Logf("decoded %d, rejected %d", decoded, errored)
}

// TestFrameRetryRecoversShiftedAnchor forces the capture one period off
// and confirms the ±1-period retry in DecodeFrame still lands the frame.
func TestFrameRetryRecoversShiftedAnchor(t *testing.T) {
	p := Params20()
	l := mustLink(t, p, 0)
	f := &Frame{Seq: 3, Data: []byte{0xAB, 0xCD}}
	sig, err := l.TransmitFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	phases := l.Phases(sig)
	dec := l.Decoder()
	anchor, err := dec.CapturePreamble(phases)
	if err != nil {
		t.Fatal(err)
	}
	for _, shift := range []int{-p.BitPeriod, 0, p.BitPeriod} {
		got, _, err := dec.decodeFrameWinWithRetry(phaseWindow{data: phases}, anchor+shift, nil)
		if err != nil {
			t.Errorf("shift %+d: %v", shift, err)
			continue
		}
		if got.Seq != f.Seq || !bytes.Equal(got.Data, f.Data) {
			t.Errorf("shift %+d: frame = %+v", shift, got)
		}
	}
}

// TestPayloadPadAvoidsCodewordPHR: a raw payload of 97 bits would give
// the ZigBee PHR the value 0x67 — phase-identical to a SymBee codeword
// and inherently ambiguous for anchoring. The transmitter must pad.
func TestPayloadPadAvoidsCodewordPHR(t *testing.T) {
	l := mustLink(t, Params20(), 0)
	rng := rand.New(rand.NewSource(5))
	bits := randomBits(97, rng) // PSDU would be 4+97+2 = 103 = 0x67
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := l.ReceiveBits(sig, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bits) {
		t.Error("97-bit payload (codeword-valued PHR) decoded wrong")
	}
}
