package core

import (
	"bytes"
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/wifi"
)

// mustMachine builds a streaming machine or fails the test.
func mustMachine(t testing.TB, d *Decoder) *FrameMachine {
	t.Helper()
	m, err := d.NewFrameMachine()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// pushChunked feeds phases through a fresh streaming machine in chunks
// of the given size and returns every event.
func pushChunked(t *testing.T, d *Decoder, phases []float64, chunk int) []StreamEvent {
	t.Helper()
	m := mustMachine(t, d)
	var events []StreamEvent
	for off := 0; off < len(phases); off += chunk {
		end := off + chunk
		if end > len(phases) {
			end = len(phases)
		}
		m.PushChunk(phases[off:end])
		events = append(events, m.Events()...)
	}
	m.Flush()
	return append(events, m.Events()...)
}

func firstFrame(events []StreamEvent) *StreamEvent {
	for i := range events {
		if events[i].Kind == EventFrame {
			return &events[i]
		}
	}
	return nil
}

func TestFrameMachineMatchesBatchAcrossChunkSizes(t *testing.T) {
	p := Params20()
	rng := rand.New(rand.NewSource(21))
	l := mustLink(t, p, wifi.CanonicalCompensation)
	f := &Frame{Seq: 9, Flags: 0x2, Data: []byte("machine!")}
	sig, err := l.TransmitFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, snr := range []float64{30, 2} {
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      snr,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        400,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		phases := l.Phases(m.Transmit(sig))
		want, batchErr := l.Decoder().DecodeFrame(phases)
		if batchErr != nil {
			t.Fatalf("snr %v: batch decode failed: %v", snr, batchErr)
		}
		for _, chunk := range []int{1, 7, 100, 4096, len(phases)} {
			events := pushChunked(t, l.Decoder(), phases, chunk)
			ev := firstFrame(events)
			if ev == nil {
				t.Fatalf("snr %v chunk %d: no frame event (events: %+v)", snr, chunk, events)
			}
			got := ev.Frame
			if got.Seq != want.Seq || got.Flags != want.Flags || !bytes.Equal(got.Data, want.Data) {
				t.Errorf("snr %v chunk %d: frame %+v, want %+v", snr, chunk, got, want)
			}
		}
	}
}

func TestFrameMachineDecodesBackToBackFrames(t *testing.T) {
	// An always-on stream: several packets separated by idle noise must
	// each produce a frame event, in order.
	p := Params20()
	rng := rand.New(rand.NewSource(22))
	l := mustLink(t, p, wifi.CanonicalCompensation)
	frames := []*Frame{
		{Seq: 1, Data: []byte("first")},
		{Seq: 2, Data: []byte("second")},
		{Seq: 3, Data: []byte("third")},
	}
	var phases []float64
	for _, f := range frames {
		sig, err := l.TransmitFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		med, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      20,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        2000,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		phases = append(phases, l.Phases(med.Transmit(sig))...)
	}
	m := mustMachine(t, l.Decoder())
	var got []*Frame
	for off := 0; off < len(phases); off += 4096 {
		end := off + 4096
		if end > len(phases) {
			end = len(phases)
		}
		m.PushChunk(phases[off:end])
		for _, ev := range m.Events() {
			if ev.Kind == EventFrame {
				got = append(got, ev.Frame)
			}
		}
	}
	m.Flush()
	for _, ev := range m.Events() {
		if ev.Kind == EventFrame {
			got = append(got, ev.Frame)
		}
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i, f := range frames {
		if got[i].Seq != f.Seq || !bytes.Equal(got[i].Data, f.Data) {
			t.Errorf("frame %d = %+v, want %+v", i, got[i], f)
		}
	}
}

func TestFrameMachineBoundedMemoryOnNoise(t *testing.T) {
	// Hunting over pure noise must not accumulate history: the retained
	// window stays at the configured retention bound.
	p := Params20()
	d, err := NewDecoder(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := mustMachine(t, d)
	rng := rand.New(rand.NewSource(23))
	chunk := make([]float64, 4096)
	for i := 0; i < 200; i++ {
		for j := range chunk {
			chunk[j] = (rng.Float64()*2 - 1) * 3.14
		}
		m.PushChunk(chunk)
	}
	limit := defaultRetention(p) + len(chunk)
	if m.Buffered() > limit {
		t.Errorf("buffered %d phases on noise, want ≤ %d", m.Buffered(), limit)
	}
	if m.Pushed() != 200*len(chunk) {
		t.Errorf("pushed = %d", m.Pushed())
	}
}

func TestFrameMachineLockAndErrorEvents(t *testing.T) {
	// A preamble followed by a stream that ends mid-frame must produce a
	// lock event and a decode error (truncated), not silence.
	p := Params20()
	l := mustLink(t, p, 0)
	f := &Frame{Seq: 5, Data: []byte("0123456789")}
	sig, err := l.TransmitFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	phases := l.Phases(sig)
	anchor, err := l.Decoder().CapturePreamble(phases)
	if err != nil {
		t.Fatal(err)
	}
	cut := anchor + (PreambleBits+HeaderBits/2)*p.BitPeriod // mid-header
	events := pushChunked(t, l.Decoder(), phases[:cut], 512)
	var sawLock, sawError bool
	for _, ev := range events {
		switch ev.Kind {
		case EventLock:
			sawLock = true
		case EventFrame:
			t.Fatalf("truncated stream produced a frame: %+v", ev.Frame)
		case EventDecodeError:
			sawError = true
			if ev.Err == nil {
				t.Error("decode-error event with nil Err")
			}
		}
	}
	if !sawLock || !sawError {
		t.Errorf("sawLock=%v sawError=%v, want both", sawLock, sawError)
	}
}

func TestFrameMachineResetReuse(t *testing.T) {
	p := Params20()
	l := mustLink(t, p, 0)
	sig, err := l.TransmitFrame(&Frame{Seq: 1, Data: []byte("x")})
	if err != nil {
		t.Fatal(err)
	}
	phases := l.Phases(sig)
	m := mustMachine(t, l.Decoder())
	run := func() int {
		m.PushChunk(phases)
		m.Flush()
		n := 0
		for _, ev := range m.Events() {
			if ev.Kind == EventFrame {
				n++
			}
		}
		return n
	}
	if n := run(); n != 1 {
		t.Fatalf("first run: %d frames", n)
	}
	m.Reset()
	if n := run(); n != 1 {
		t.Fatalf("after Reset: %d frames", n)
	}
}
