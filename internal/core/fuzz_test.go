package core

import (
	"bytes"
	"math"
	"testing"
)

// fuzzPhases maps fuzz bytes onto a bounded phase stream: one phase per
// byte, spanning [-π, π] — the decoder's whole input domain.
func fuzzPhases(data []byte) []float64 {
	phases := make([]float64, len(data))
	for i, b := range data {
		phases[i] = (float64(b)/255*2 - 1) * math.Pi
	}
	return phases
}

// quantize is the inverse direction for seeding the corpus with real
// captures.
func quantize(phases []float64) []byte {
	out := make([]byte, len(phases))
	for i, p := range phases {
		out[i] = byte((p/math.Pi + 1) / 2 * 255)
	}
	return out
}

// FuzzDecodeFrame drives arbitrary phase streams through the batch
// decoder and, independently, through a chunked FrameMachine. The
// decoder must never panic, any frame it accepts must re-encode, and
// the machine must reach the same verdict regardless of chunking.
func FuzzDecodeFrame(f *testing.F) {
	link, err := NewLink(Params20(), 0)
	if err != nil {
		f.Fatal(err)
	}
	sig, err := link.TransmitFrame(&Frame{Seq: 3, Flags: FlagMore, Data: []byte("fuzz seed!")})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(quantize(link.Phases(sig)))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00, 0xFF}, 2000)) // alternating extremes
	f.Add(bytes.Repeat([]byte{0xE6}, 8000))       // constant near +4π/5

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			return
		}
		phases := fuzzPhases(data)
		d, err := NewDecoder(Params20(), 0)
		if err != nil {
			t.Fatal(err)
		}
		frame, decErr := d.DecodeFrame(phases)
		if decErr == nil {
			if _, err := EncodeFrame(frame); err != nil {
				t.Fatalf("decoded frame does not re-encode: %v", err)
			}
		}

		// Chunk-size invariance: the same stream fed in uneven pieces
		// must produce the same first frame (or none).
		m := mustMachine(t, d)
		for off := 0; off < len(phases); {
			end := off + 1000 + off%777
			if end > len(phases) {
				end = len(phases)
			}
			m.PushChunk(phases[off:end])
			off = end
		}
		m.Flush()
		var streamed *Frame
		for _, ev := range m.Events() {
			if ev.Kind == EventFrame && streamed == nil {
				streamed = ev.Frame
			}
		}
		switch {
		case decErr == nil && streamed == nil:
			t.Fatalf("batch decoded seq=%d but chunked machine found nothing", frame.Seq)
		case decErr == nil && streamed != nil:
			if streamed.Seq != frame.Seq || streamed.Flags != frame.Flags ||
				!bytes.Equal(streamed.Data, frame.Data) {
				t.Fatalf("chunked %+v != batch %+v", streamed, frame)
			}
		}
	})
}

// FuzzReassemblerAdd feeds an arbitrary frame stream into a
// Reassembler: it must never panic and never emit more bytes than it
// was fed. The same input, fragmented legitimately, must round-trip.
func FuzzReassemblerAdd(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, FlagMore, 2, 'h', 'i', 1, 0, 1, '!'})
	f.Add(bytes.Repeat([]byte{7}, 300))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<15 {
			return
		}
		// Arbitrary frame stream: [seq flags dataLen data...]*
		var r Reassembler
		fed := 0
		for i := 0; i+3 <= len(data); {
			seq, flags := data[i], data[i+1]
			n := int(data[i+2]) % (MaxDataBytes + 1)
			i += 3
			if i+n > len(data) {
				n = len(data) - i
			}
			frame := &Frame{Seq: seq, Flags: flags & FlagMore, Data: data[i : i+n]}
			i += n
			fed += n
			msg, done, _ := r.Add(frame)
			if done && len(msg) > fed {
				t.Fatalf("reassembler emitted %d bytes from %d fed", len(msg), fed)
			}
		}

		// Conservation's other half: a legitimate fragmentation of the
		// same bytes reassembles exactly.
		if len(data) == 0 {
			return
		}
		frames, err := NewMessenger(nil).Fragment(data)
		if err != nil {
			t.Fatalf("Fragment: %v", err)
		}
		var fresh Reassembler
		for i, fr := range frames {
			msg, done, err := fresh.Add(fr)
			if err != nil {
				t.Fatalf("fragment %d: %v", i, err)
			}
			if last := i == len(frames)-1; done != last {
				t.Fatalf("fragment %d: done=%v", i, done)
			}
			if done && !bytes.Equal(msg, data) {
				t.Fatal("round trip lost bytes")
			}
		}
	})
}
