package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/wifi"
)

func TestAngularDistance(t *testing.T) {
	tests := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{math.Pi, -math.Pi, 0},
		{StablePhase, -StablePhase, 2 * math.Pi * 0.2}, // 2π−8π/5 = 2π/5
		{0.1, -0.1, 0.2},
	}
	for _, tt := range tests {
		if got := angularDistance(tt.a, tt.b); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("angularDistance(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSoftDecodeNoiseless(t *testing.T) {
	l := mustLink(t, Params20(), 0)
	bits := []byte{0, 1, 1, 0, 1}
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	soft, err := l.Decoder().DecodeBitsSoft(l.Phases(sig), len(bits))
	if err != nil {
		t.Fatal(err)
	}
	for i, sb := range soft {
		if sb.Bit != bits[i] {
			t.Errorf("bit %d = %d, want %d", i, sb.Bit, bits[i])
		}
		// Noiseless LLR magnitude ≈ StableLen · 2π/5 per window... at
		// minimum well above half of the ideal.
		ideal := float64(Params20().StableLen) * 2 * math.Pi / 5
		if math.Abs(sb.LLR) < ideal/2 {
			t.Errorf("bit %d LLR = %v, want magnitude ≥ %v", i, sb.LLR, ideal/2)
		}
	}
}

func TestSoftBeatsOrMatchesHardAtLowSNR(t *testing.T) {
	p := Params20()
	l := mustLink(t, p, wifi.CanonicalCompensation)
	rng := rand.New(rand.NewSource(21))
	bits := randomBits(60, rng)
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	hardErrs, softErrs, packets := 0, 0, 0
	for i := 0; i < 25; i++ {
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      -1,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        400,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		phases := l.Phases(m.Transmit(sig))
		anchor, err := l.Decoder().CapturePreamble(phases)
		if err != nil {
			continue
		}
		hard, err := l.Decoder().DecodeSyncBits(phases, anchor, len(bits))
		if err != nil {
			continue // bogus capture anchor: window ran off the stream
		}
		soft, err := l.Decoder().DecodeSyncBitsSoft(phases, anchor, len(bits))
		if err != nil {
			continue
		}
		packets++
		for k := range bits {
			if hard[k] != bits[k] {
				hardErrs++
			}
			if soft[k].Bit != bits[k] {
				softErrs++
			}
		}
	}
	if packets == 0 {
		t.Skip("no captures at this SNR")
	}
	t.Logf("hard %d vs soft %d errors over %d packets", hardErrs, softErrs, packets)
	if softErrs > hardErrs+hardErrs/4+2 {
		t.Errorf("soft decoding (%d errors) should not be worse than hard (%d)", softErrs, hardErrs)
	}
}

func TestSoftDecodeTruncated(t *testing.T) {
	l := mustLink(t, Params20(), 0)
	sig, err := l.TransmitBits([]byte{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.Decoder().DecodeBitsSoft(l.Phases(sig), 40)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestSoftLLRConfidenceOrdersErrors(t *testing.T) {
	// Among decoded bits under noise, errors should concentrate at low
	// |LLR|: the confidence measure must be informative.
	p := Params20()
	l := mustLink(t, p, wifi.CanonicalCompensation)
	rng := rand.New(rand.NewSource(22))
	bits := randomBits(60, rng)
	sig, err := l.TransmitBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	var errLLR, okLLR []float64
	for i := 0; i < 20; i++ {
		m, err := channel.NewMedium(channel.Config{
			SampleRate: p.SampleRate,
			SNRdB:      -2,
			FreqOffset: channel.DefaultFreqOffset,
			Pad:        400,
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		phases := l.Phases(m.Transmit(sig))
		anchor, err := l.Decoder().CapturePreamble(phases)
		if err != nil {
			continue
		}
		soft, err := l.Decoder().DecodeSyncBitsSoft(phases, anchor, len(bits))
		if err != nil {
			continue // bogus capture anchor
		}
		for k, sb := range soft {
			if sb.Bit == bits[k] {
				okLLR = append(okLLR, math.Abs(sb.LLR))
			} else {
				errLLR = append(errLLR, math.Abs(sb.LLR))
			}
		}
	}
	if len(errLLR) < 5 || len(okLLR) < 50 {
		t.Skip("not enough errors/successes to compare at this seed")
	}
	meanAbs := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	if meanAbs(errLLR) >= meanAbs(okLLR) {
		t.Errorf("wrong bits should have lower confidence: err %v vs ok %v",
			meanAbs(errLLR), meanAbs(okLLR))
	}
}
