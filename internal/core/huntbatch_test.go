package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"symbee/internal/channel"
	"symbee/internal/wifi"
)

// huntEvent is a StreamEvent flattened for DeepEqual: frames by value,
// errors by message.
type huntEvent struct {
	Kind   StreamEventKind
	Anchor int
	End    int
	Seq    uint8
	Flags  uint8
	Data   string
	Err    string
}

func flattenEvents(events []StreamEvent) []huntEvent {
	out := make([]huntEvent, 0, len(events))
	for _, e := range events {
		h := huntEvent{Kind: e.Kind, Anchor: e.Anchor, End: e.End}
		if e.Frame != nil {
			h.Seq = e.Frame.Seq
			h.Flags = e.Frame.Flags
			h.Data = string(e.Frame.Data)
		}
		if e.Err != nil {
			h.Err = e.Err.Error()
		}
		out = append(out, h)
	}
	return out
}

// huntState captures the scanner decision state a hunt leaves behind:
// everything that influences future events.
type huntState struct {
	Cands     []foldCandidate
	BestMean  float64
	BestIdx   int
	Remaining int
	Done      bool
	State     MachineState
}

func captureHuntState(m *FrameMachine) huntState {
	return huntState{
		Cands:     append([]foldCandidate(nil), m.scan.cands...),
		BestMean:  m.scan.bestMean,
		BestIdx:   m.scan.bestIdx,
		Remaining: m.scan.remaining,
		Done:      m.scan.done,
		State:     m.state,
	}
}

// replayHunt feeds phases through a fresh machine in chunks, with the
// hunt path selected, and returns the flattened events plus the final
// scanner state.
func replayHunt(t *testing.T, d *Decoder, phases []float64, chunk int, scalar bool) ([]huntEvent, huntState) {
	t.Helper()
	m := mustMachine(t, d)
	m.SetScalarHunt(scalar)
	var events []huntEvent
	for off := 0; off < len(phases); off += chunk {
		end := off + chunk
		if end > len(phases) {
			end = len(phases)
		}
		if err := m.PushChunk(phases[off:end]); err != nil {
			t.Fatal(err)
		}
		events = append(events, flattenEvents(m.Events())...)
	}
	m.Flush()
	events = append(events, flattenEvents(m.Events())...)
	return events, captureHuntState(m)
}

// huntCaptures builds the randomized scenario set: pure noise (the
// idle-listening state the batch kernel exists for), a clean frame, a
// noisy frame, and back-to-back frames with idle gaps — each as a
// compensated phase stream.
func huntCaptures(t *testing.T) map[string][]float64 {
	t.Helper()
	p := Params20()
	rng := rand.New(rand.NewSource(77))
	l := mustLink(t, p, wifi.CanonicalCompensation)

	captures := make(map[string][]float64)

	// Truly idle noise: full-circle uniform phase diffs, mean zero even
	// after compensation — the pre-gate skips almost every segment.
	idle := make([]float64, 300000)
	for i := range idle {
		idle[i] = (2*rng.Float64() - 1) * math.Pi
	}
	captures["noise-idle"] = idle

	// Hot noise: half-amplitude uniform phases that the compensation
	// shift biases off zero, driving constant false locks, decode
	// errors and rearms — the gate almost never fires and the paths
	// churn through lock handoffs.
	hot := make([]float64, 300000)
	for i := range hot {
		hot[i] = (2*rng.Float64() - 1) * math.Pi / 2
	}
	captures["noise-hot"] = hot

	frame := func(name string, snr float64, pad int, frames ...*Frame) {
		var phases []float64
		for _, f := range frames {
			sig, err := l.TransmitFrame(f)
			if err != nil {
				t.Fatal(err)
			}
			med, err := channel.NewMedium(channel.Config{
				SampleRate: p.SampleRate,
				SNRdB:      snr,
				FreqOffset: channel.DefaultFreqOffset,
				Pad:        pad,
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			phases = append(phases, l.Phases(med.Transmit(sig))...)
		}
		captures[name] = phases
	}
	frame("frame-clean", 30, 2500, &Frame{Seq: 5, Flags: 1, Data: []byte("hunt")})
	frame("frame-noisy", 3, 4000, &Frame{Seq: 6, Data: []byte("low snr")})
	frame("frames-gapped", 12, 6000,
		&Frame{Seq: 7, Data: []byte("one")},
		&Frame{Seq: 8, Data: []byte("two")},
		&Frame{Seq: 9, Data: []byte("three")})
	return captures
}

// TestHuntBatchZeroAlloc pins the allocation budget of the batched
// hunt path: once warm, pushing noise chunks through a hunting machine
// — gate evaluations, segment skips, deferred frontier tails and all —
// allocates nothing.
func TestHuntBatchZeroAlloc(t *testing.T) {
	d := mustLink(t, Params20(), wifi.CanonicalCompensation).Decoder()
	m := mustMachine(t, d)
	rng := rand.New(rand.NewSource(41))
	chunk := make([]float64, 4096)
	// Idle-channel phase diffs are uniform over the whole circle: the
	// machine's constant compensation rotates but never biases them, so
	// the fold mean stays at noise level and the hunt never locks.
	refill := func() {
		for i := range chunk {
			chunk[i] = (2*rng.Float64() - 1) * math.Pi
		}
	}
	for warm := 0; warm < 50; warm++ {
		refill()
		if err := m.PushChunk(chunk); err != nil {
			t.Fatal(err)
		}
		m.Events()
	}
	allocs := testing.AllocsPerRun(100, func() {
		refill()
		if err := m.PushChunk(chunk); err != nil {
			t.Fatal(err)
		}
		m.Events()
	})
	if allocs != 0 {
		t.Fatalf("batched hunt path allocates %.1f per push, want 0", allocs)
	}
	if m.State() != StateHunting {
		t.Fatalf("noise drove the machine out of hunting: %v", m.State())
	}
}

// TestHuntScalarBatchEquivalence pins the tentpole guarantee of the
// batched idle-hunt kernel: over noise-only and frame-bearing streams,
// at every chunk size down to one sample, the batched path emits
// exactly the events of the per-sample reference path and leaves the
// scanner in the same decision state.
func TestHuntScalarBatchEquivalence(t *testing.T) {
	d := mustLink(t, Params20(), wifi.CanonicalCompensation).Decoder()
	for name, phases := range huntCaptures(t) {
		t.Run(name, func(t *testing.T) {
			wantEvents, wantState := replayHunt(t, d, phases, len(phases), true)
			for _, chunk := range []int{1, 7, 64, 1024, len(phases)} {
				gotEvents, gotState := replayHunt(t, d, phases, chunk, false)
				if !reflect.DeepEqual(gotEvents, wantEvents) {
					t.Errorf("chunk %d: batched events diverge from scalar reference\n got: %+v\nwant: %+v",
						chunk, gotEvents, wantEvents)
				}
				if !reflect.DeepEqual(gotState, wantState) {
					t.Errorf("chunk %d: batched scanner state diverges\n got: %+v\nwant: %+v",
						chunk, gotState, wantState)
				}
				// The scalar path must itself be chunk-invariant with the
				// re-anchor schedule in place.
				scalarEvents, scalarState := replayHunt(t, d, phases, chunk, true)
				if !reflect.DeepEqual(scalarEvents, wantEvents) || !reflect.DeepEqual(scalarState, wantState) {
					t.Errorf("chunk %d: scalar path not chunk-invariant", chunk)
				}
			}
		})
	}
}
