package core

import (
	"fmt"

	"symbee/internal/dsp"
)

// phaseWindow is a view of one contiguous span of the phase stream,
// addressed by absolute stream index: data[0] holds the phase at stream
// index base. The batch decoder uses a window with base 0 over the whole
// capture; the streaming FrameMachine uses a bounded retained window
// whose base advances as old phases are discarded. Every read is bounds
// checked against the window, so code written against phaseWindow
// behaves identically on both, provided the window covers the accessed
// span.
type phaseWindow struct {
	data []float64
	base int
}

// end returns one past the last stream index the window covers.
func (w phaseWindow) end() int { return w.base + len(w.data) }

// contains reports whether stream indices [from, to) are in the window.
func (w phaseWindow) contains(from, to int) bool {
	return from >= w.base && to <= w.end()
}

// at returns the phase at absolute stream index idx (caller must ensure
// containment).
func (w phaseWindow) at(idx int) float64 { return w.data[idx-w.base] }

// foldCandidate is one local maximum of the preamble detection
// statistic: a potential anchor with the fold-window mean that scored it.
type foldCandidate struct {
	anchor int
	mean   float64
}

// preambleScanner is the incremental half of preamble capture (§V): it
// consumes the phase stream one value at a time, maintaining the sliding
// fold sums, the sign counter and the windowed mean across pushes, and
// collects candidate anchors. It carries all state between pushes, so a
// stream split at any chunk boundary scans identically to a single
// batch pass — this is what lets internal/stream decode unbounded
// captures with bounded memory.
//
// The scan semantics are exactly those of the former Decoder
// capturePreamble loop: candidates are local maxima of the fold-mean
// statistic, collected for a bounded refinement span after the first
// threshold crossing; push reports true when that span is exhausted
// (the batch loop's break). finish then runs candidate selection.
type preambleScanner struct {
	d        *Decoder
	folder   *dsp.SlidingFolder
	counter  *dsp.MovingSignCounter
	mean     *dsp.MovingAverage
	foldSpan int
	// i is the absolute stream index of the next phase to consume.
	i int
	// start is the stream index the scanner was (re)set at; fold anchors
	// exist from start onward, and the re-anchor schedule (below) is
	// phased off absolute anchor positions so the scalar and batched hunt
	// paths re-derive their windowed state at identical points.
	start     int
	cands     []foldCandidate
	bestMean  float64
	bestIdx   int
	remaining int // ≥0 once in the refinement phase
	// lockAnchor is the candidate anchor at the moment of the first
	// threshold crossing (the lock event's reported anchor).
	lockAnchor int
	done       bool
	// scores is finish's per-shortlist scratch, retained so a scanner
	// that is reset per frame keeps the streaming decode allocation-free.
	scores []float64
	// Batched hunt kernel state (huntbatch.go). foldRing mirrors the
	// mean/counter rings as one chronological ring of the last StableLen
	// fold sums; msum and neg are the incremental window sum and negative
	// count; foldPos is the ring cursor (oldest element). batchValid
	// marks that this state continues exactly at fold anchor i-foldSpan+1.
	foldRing    []float64
	handScratch []float64
	foldPos     int
	msum        float64
	neg         int
	batchValid  bool
	gateSlack   float64
}

// newPreambleScanner returns a scanner whose next consumed phase has
// absolute stream index start (0 for a batch pass over a whole capture).
func (d *Decoder) newPreambleScanner(start int) (*preambleScanner, error) {
	folder, err := dsp.NewSlidingFolder(d.p.BitPeriod, PreambleBits)
	if err != nil {
		return nil, fmt.Errorf("core: preamble scanner: %w", err)
	}
	counter, err := dsp.NewMovingSignCounter(d.p.StableLen)
	if err != nil {
		return nil, fmt.Errorf("core: preamble scanner: %w", err)
	}
	mean, err := dsp.NewMovingAverage(d.p.StableLen)
	if err != nil {
		return nil, fmt.Errorf("core: preamble scanner: %w", err)
	}
	s := &preambleScanner{
		d:        d,
		folder:   folder,
		counter:  counter,
		mean:     mean,
		foldSpan: d.p.BitPeriod * PreambleBits,
		// Batched hunt kernel state (huntbatch.go): the rolling window of
		// the last StableLen fold sums, and the chronological scratch the
		// lock handoff rebuilds the scalar rings through. Allocated here,
		// at setup, so the sustained hunt path never has to.
		foldRing:    make([]float64, d.p.StableLen),
		handScratch: make([]float64, d.p.StableLen),
		gateSlack:   huntGateSlack(d.p),
	}
	s.reset(start)
	return s, nil
}

// reset rewinds the scanner to a cold hunting state whose next consumed
// phase has absolute stream index start, reusing the DSP rings and the
// candidate storage. The streaming FrameMachine resets one scanner per
// rearm instead of allocating a fresh one per frame.
func (s *preambleScanner) reset(start int) {
	s.folder.Reset()
	s.counter.Reset()
	s.mean.Reset()
	s.i = start
	s.start = start
	s.cands = s.cands[:0]
	s.bestMean = 0
	s.bestIdx = -1
	s.remaining = -1
	s.lockAnchor = 0
	s.done = false
	s.batchValid = false
}

// locked reports whether the detection statistic has crossed the capture
// threshold at least once (the stream holds a preamble-like pattern).
func (s *preambleScanner) locked() bool { return s.remaining >= 0 }

// push consumes one phase value (compensation already applied) and
// reports whether the scan is complete: the bounded candidate-refinement
// span after the first threshold crossing has been exhausted. Callers
// must stop pushing once push returns true and move on to finish.
//
//symbee:hotpath
func (s *preambleScanner) push(phi float64) bool {
	if s.done {
		return true
	}
	i := s.i
	s.i++
	sum, ok := s.folder.Push(phi)
	if !ok {
		return false
	}
	// a is the fold anchor this push completes. Re-anchor the windowed
	// state at the deterministic absolute positions the batched hunt
	// kernel re-derives its state at (every huntSegment anchors, once the
	// windows are full): at those points the incremental sums become pure
	// functions of the window contents, which is what lets the batch path
	// skip whole idle segments and still agree with this path to the last
	// bit (see huntbatch.go).
	a := i - s.foldSpan + 1
	if a&(huntSegment-1) == 0 && a-s.start >= s.d.p.StableLen {
		s.mean.Reanchor()
		s.counter.Reanchor()
	}
	mean := s.mean.Push(sum)
	full, _, nonneg := s.counter.Push(sum)
	if !full {
		return false
	}
	// The counter window covers fold anchors [a-StableLen+1 .. a].
	anchor := a - s.d.p.StableLen + 1
	if mean >= s.d.CaptureThreshold && nonneg >= s.d.p.TauSync {
		s.consider(anchor, mean)
	}
	if s.remaining >= 0 {
		s.remaining--
		if s.remaining <= 0 {
			s.done = true
			return true
		}
	}
	return false
}

// consider records a threshold-crossing anchor, merging it with the
// previous candidate when they fall within half a bit period (the fold
// plateau around one preamble produces a run of crossings — keep the
// strongest). It reports whether this crossing is the first, i.e. the
// scanner just locked and entered its bounded refinement span.
//
//symbee:hotpath
func (s *preambleScanner) consider(anchor int, mean float64) bool {
	if n := len(s.cands); n > 0 && anchor-s.cands[n-1].anchor < s.d.p.BitPeriod/2 {
		if mean > s.cands[n-1].mean {
			s.cands[n-1] = foldCandidate{anchor, mean}
			if s.cands[n-1].mean > s.bestMean {
				s.bestMean, s.bestIdx = mean, n-1
			}
		}
	} else {
		s.cands = append(s.cands, foldCandidate{anchor, mean})
		if mean > s.bestMean {
			s.bestMean, s.bestIdx = mean, len(s.cands)-1
		}
	}
	if s.remaining < 0 {
		s.remaining = 16*s.d.p.BitPeriod + 2*s.d.p.StableLen
		// The lock event reports the anchor as of the moment of the
		// first crossing — later plateau crossings may merge-update
		// cands[0] in place, and chunked and whole-capture feeds must
		// emit the same anchor.
		s.lockAnchor = anchor
		return true
	}
	return false
}

// selectionSpanEnd returns one past the highest stream index candidate
// selection can read: the template refinement looks up to ±16 samples
// around each candidate over PreambleBits periods, and the forward
// template walk advances at most 16 bit periods, each probing one more
// period. Once the stream (or retained window) covers this span, finish
// produces the same anchor it would with the whole capture in hand —
// the coverage gate the streaming machine waits on.
func (s *preambleScanner) selectionSpanEnd() int {
	if len(s.cands) == 0 {
		return s.i
	}
	last := s.cands[len(s.cands)-1].anchor
	return last + 17*s.d.p.BitPeriod + 16
}

// finish runs candidate selection over the scanned stream and returns
// the refined preamble anchor. win must cover every phase the template
// stage may touch: in batch mode the whole capture, in streaming mode
// the retained history through selectionSpanEnd (or through end of
// stream on a final flush). The selection logic — shortlist, template
// alignment, earliest-strong-candidate rule and the anchor walk — is
// the former tail of Decoder.capturePreamble, verbatim.
//
// finish is the per-frame boundary of the streaming path: its bounded
// allocations (the shortlist scratch on first use) are outside the
// per-sample zero-alloc budget.
//
//symbee:coldpath
func (s *preambleScanner) finish(win phaseWindow) (int, error) {
	if s.bestIdx < 0 {
		return 0, ErrNoPreamble
	}
	cands, bestMean, bestIdx := s.cands, s.bestMean, s.bestIdx
	// Selection. The fold mean alone cannot identify the preamble: a
	// run of zero DATA bits folds slightly STRONGER than the preamble
	// itself (the preamble's leading stable run is clipped by the PHR
	// junction, shrinking the usable window intersection to ≈86%),
	// while the ZigBee header folds at ≈75% and partial window overlaps
	// anywhere in between. So candidates within a generous band of the
	// maximum are re-scored with the codeword TEMPLATE over
	// PreambleBits periods — codeword-anchored candidates (preamble and
	// zero-runs) tie at the full level, the header scores ≤½ — and the
	// EARLIEST template-strong candidate wins: the preamble precedes
	// every data run.
	shortlist := cands[:0]
	for _, c := range cands {
		if c.mean >= 0.75*bestMean {
			shortlist = append(shortlist, c)
		}
	}
	// The fold plateau leaves ±10 samples of anchor jitter, and the
	// template decorrelates within a few samples of misalignment, so
	// each candidate is scored at its best alignment within a small
	// window — which simultaneously refines the anchor.
	d := s.d
	maxS := 0.0
	if cap(s.scores) < len(shortlist) {
		s.scores = make([]float64, len(shortlist))
	}
	scores := s.scores[:len(shortlist)]
	for i := range shortlist {
		sc, refined := d.alignTemplate(win, shortlist[i].anchor)
		scores[i] = sc
		shortlist[i].anchor = refined
		if sc > maxS {
			maxS = sc
		}
	}
	best := cands[bestIdx].anchor
	for i := range shortlist {
		if scores[i] >= 0.85*maxS {
			best = shortlist[i].anchor
			break
		}
	}
	// Template walk: pin the anchor to the first codeword period. A
	// genuine codeword period correlates at the full level while the
	// strongest possible impostor (PHR byte 0x37) reaches 61%, so 75%
	// splits the hypotheses with margin for the anchor jitter of noisy
	// captures. Walk forward off header periods (a selected partial
	// overlap), then back across any contiguous codeword run.
	if maxS > 0 {
		for steps := 0; steps < 16; steps++ {
			sc, selfOK := d.templateScore(win, best, 1)
			if !selfOK || sc >= maxS*0.75 {
				break
			}
			best += d.p.BitPeriod
		}
		for best-d.p.BitPeriod >= 0 {
			sc, prevOK := d.templateScore(win, best-d.p.BitPeriod, 1)
			if !prevOK || sc < maxS*0.75 {
				break
			}
			best -= d.p.BitPeriod
		}
	}
	return best, nil
}

// alignTemplate scores a candidate at its best alignment within ±16
// samples and returns that score along with the refined anchor.
func (d *Decoder) alignTemplate(win phaseWindow, anchor int) (float64, int) {
	bestS, bestA := 0.0, anchor
	for delta := -16; delta <= 16; delta += 2 {
		if s, ok := d.templateScore(win, anchor+delta, PreambleBits); ok && s > bestS {
			bestS, bestA = s, anchor+delta
		}
	}
	return bestS, bestA
}

// templateScore is the matched-filter statistic behind the anchor
// walk-back: the correlation of `periods` consecutive bit periods
// starting at anchor with the ideal bit-0 phase profile, normalized per
// value. anchor points at a stable-run start; the template is aligned
// so its own run start coincides. Reads outside the window (before the
// stream start in batch mode, outside the retained span in streaming
// mode) return ok=false, exactly as the slice-based implementation did
// for out-of-range anchors.
func (d *Decoder) templateScore(win phaseWindow, anchor, periods int) (float64, bool) {
	base := anchor - d.templateRunOffset
	end := base + (periods-1)*d.p.BitPeriod + len(d.template)
	if base < 0 || !win.contains(base, end) {
		return 0, false
	}
	var s float64
	for r := 0; r < periods; r++ {
		seg := win.data[base+r*d.p.BitPeriod-win.base:]
		for w, tv := range d.template {
			s += seg[w] * tv
		}
	}
	return s / float64(periods*len(d.template)), true
}

// decodeSyncBitsWin majority-votes n bits at their known positions
// within the window (see DecodeSyncBits for the slice-based public
// wrapper). buf, when capacious enough, backs the returned bit slice so
// streaming callers can keep the per-frame decode allocation-free; pass
// nil to allocate.
func (d *Decoder) decodeSyncBitsWin(win phaseWindow, anchor, n int, buf []byte) ([]byte, error) {
	// Every returned position is explicitly written below, so reused
	// scratch needs no zeroing.
	var bits []byte
	if cap(buf) >= n {
		bits = buf[:n]
	} else {
		bits = make([]byte, n)
	}
	for k := 0; k < n; k++ {
		start := anchor + (PreambleBits+k)*d.p.BitPeriod
		end := start + d.p.StableLen
		if start < 0 || !win.contains(start, end) {
			return bits[:k], fmt.Errorf("%w: bit %d needs [%d,%d), stream has %d",
				ErrTruncated, k, start, end, win.end())
		}
		_, nonneg := dsp.SignCounts(win.data[start-win.base : end-win.base])
		if nonneg >= d.p.TauSync {
			bits[k] = 0
		} else {
			bits[k] = 1
		}
	}
	return bits, nil
}

// decodeFrameWin reads the frame header at anchor, learns the data
// length, decodes the remaining bits and validates the checksum. buf is
// the optional bit-decode scratch (see decodeSyncBitsWin).
func (d *Decoder) decodeFrameWin(win phaseWindow, anchor int, buf []byte) (*Frame, error) {
	header, err := d.decodeSyncBitsWin(win, anchor, HeaderBits, buf)
	if err != nil {
		return nil, err
	}
	dataLen := 0
	for _, b := range header[8:16] {
		dataLen = dataLen<<1 | int(b)
	}
	if dataLen > MaxDataBytes {
		return nil, fmt.Errorf("%w: header claims %d data bytes", ErrTruncated, dataLen)
	}
	total := HeaderBits + dataLen*8 + CRCBits
	bits, err := d.decodeSyncBitsWin(win, anchor, total, buf)
	if err != nil {
		return nil, err
	}
	return ParseFrameBits(bits)
}

// decodeFrameWinWithRetry attempts decodeFrameWin at anchor and, on
// failure, one bit period to either side — recovering captures that
// locked on a period off. It reports the anchor that actually produced
// the frame so streaming callers can place the frame's end in the
// stream; on failure it returns the error of the unshifted attempt.
//
// Runs once per locked frame, not per sample: the 4-allocs-per-frame
// budget applies here, not the zero-alloc ingest budget.
//
//symbee:coldpath
func (d *Decoder) decodeFrameWinWithRetry(win phaseWindow, anchor int, buf []byte) (*Frame, int, error) {
	frame, err := d.decodeFrameWin(win, anchor, buf)
	if err == nil {
		return frame, anchor, nil
	}
	for _, shift := range []int{-d.p.BitPeriod, d.p.BitPeriod} {
		if frame, retryErr := d.decodeFrameWin(win, anchor+shift, buf); retryErr == nil {
			return frame, anchor + shift, nil
		}
	}
	return nil, anchor, err
}
