package core

import (
	"fmt"
	"math"

	"symbee/internal/dsp"
	"symbee/internal/zigbee"
)

// StablePhase is the magnitude of the stable phase difference a SymBee
// codeword produces at the idle listening: 4π/5 (§IV-B).
const StablePhase = 4 * math.Pi / 5

// Decoding errors (ErrNoPreamble, ErrBadVersion, ErrCRC/ErrChecksum,
// ErrTruncated) are defined in errors.go.

// Decoder turns WiFi idle-listening phase streams back into SymBee bits
// and frames.
type Decoder struct {
	p Params
	// Compensation is added to every phase before decoding to undo the
	// ZigBee/WiFi channel frequency offset; wifi.CanonicalCompensation
	// (+4π/5) for any real channel pair, 0 for a baseband-aligned
	// capture (Appendix B).
	Compensation float64
	// CaptureThreshold is the minimum windowed mean of fold sums that
	// declares a preamble. The default is five standard deviations of
	// the signal-free fold noise floor (≈2.0 at 20 Msps, ≈1.4 at
	// 40 Msps, where the doubled window halves the floor's σ): deep
	// enough into the noise tail to make false captures rare, yet well
	// below the ideal preamble magnitude of PreambleBits·4π/5 ≈ 10.05,
	// and above anything the ZigBee synchronization header can fold to
	// (its period-matched pattern is capped near ±π/10 over most of the
	// window). See the fold-threshold ablation bench.
	CaptureThreshold float64

	// template is the ideal one-period phase profile of the bit-0
	// codeword (byte 0x67 in a codeword stream), used as a matched
	// filter to pin the preamble anchor: windows one period before the
	// true preamble mix in the ZigBee PPDU header and correlate
	// measurably worse, even for PHR bytes that resemble codewords.
	template []float64
	// templateRunOffset is the index within template where the stable
	// run begins (anchors point at stable-run starts).
	templateRunOffset int
}

// DefaultCaptureThreshold returns the default preamble detection
// threshold for a parameter set: five standard deviations of the
// fold-window noise floor. Phases of pure noise are uniform on (−π, π]
// (σ = π/√3); a fold window averages PreambleBits·StableLen of them.
func DefaultCaptureThreshold(p Params) float64 {
	sigmaFloor := math.Pi / math.Sqrt(3) * math.Sqrt(float64(PreambleBits)) / math.Sqrt(float64(p.StableLen))
	return 5 * sigmaFloor
}

// NewDecoder returns a decoder for the given parameters.
func NewDecoder(p Params, compensation float64) (*Decoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tmpl, runOffset, err := codewordTemplate(p)
	if err != nil {
		return nil, err
	}
	return &Decoder{
		p:                 p,
		Compensation:      compensation,
		CaptureThreshold:  DefaultCaptureThreshold(p),
		template:          tmpl,
		templateRunOffset: runOffset,
	}, nil
}

// codewordTemplate synthesizes the ideal phase profile of one bit-0
// period: the middle period of a noiseless 0x67 codeword stream.
func codewordTemplate(p Params) ([]float64, int, error) {
	mod, err := zigbee.NewModulator(p.SampleRate)
	if err != nil {
		return nil, 0, fmt.Errorf("core: template modulator: %w", err)
	}
	sig := mod.ModulateBytes([]byte{Bit0Byte, Bit0Byte, Bit0Byte}, zigbee.OrderMSBFirst)
	phases := dsp.PhaseDiffStream(sig, p.Lag)
	tmpl := make([]float64, p.BitPeriod)
	copy(tmpl, phases[p.BitPeriod:2*p.BitPeriod])
	start, _ := dsp.LongestStableRun(tmpl, 0.05)
	return tmpl, start, nil
}

// Params returns the decoder's parameter set.
func (d *Decoder) Params() Params { return d.p }

// prepare applies CFO compensation to a private copy (the input is
// never modified).
func (d *Decoder) prepare(phases []float64) []float64 {
	if d.Compensation == 0 {
		return phases
	}
	out := make([]float64, len(phases))
	copy(out, phases)
	return dsp.CompensatePhases(out, d.Compensation)
}

// DetectedBit is one bit found by unsynchronized decoding, anchored at
// the phase-stream index where its stable run begins.
type DetectedBit struct {
	Bit byte
	Pos int
}

// DecodeUnsync scans the phase stream with a StableLen window and emits
// a bit whenever at least StableLen−Tau values share a sign (§IV-C):
// nonnegative runs are bit 0 ((6,7) cross-observes at +4π/5) and
// negative runs bit 1. After each detection the scan jumps one bit
// period forward, since at most one SymBee bit exists per period.
func (d *Decoder) DecodeUnsync(phases []float64) []DetectedBit {
	phases = d.prepare(phases)
	var out []DetectedBit
	// StableLen is positive for every decoder built through NewDecoder
	// (Params.Validate), so the window error cannot occur here.
	counter, err := dsp.NewMovingSignCounter(d.p.StableLen)
	if err != nil {
		return nil
	}
	need := d.p.StableLen - d.p.Tau
	i := 0
	for i < len(phases) {
		full, neg, nonneg := counter.Push(phases[i])
		i++
		if !full {
			continue
		}
		var bit byte
		switch {
		case nonneg >= need:
			bit = 0
		case neg >= need:
			bit = 1
		default:
			continue
		}
		anchor := i - d.p.StableLen
		out = append(out, DetectedBit{Bit: bit, Pos: anchor})
		// Skip to where the next bit's stable run can start.
		i = anchor + d.p.BitPeriod
		counter.Reset()
	}
	return out
}

// CapturePreamble locates the SymBee preamble (§V): the phase stream is
// folded with period BitPeriod and depth PreambleBits, and the unsync
// detector is applied to the fold sums. It returns the stream index
// where the stable run of the first preamble bit begins. After the
// first hit it keeps scanning for up to one StableLen to refine the
// anchor to the strongest window.
//
// The scan itself is incremental (preambleScanner in scan.go) so that
// the streaming FrameMachine shares it; this batch entry point feeds
// the whole capture through one scanner and finishes with the full
// stream as the template window.
func (d *Decoder) CapturePreamble(phases []float64) (int, error) {
	return d.capturePreamble(d.prepare(phases))
}

func (d *Decoder) capturePreamble(phases []float64) (int, error) {
	sc, err := d.newPreambleScanner(0)
	if err != nil {
		return 0, err
	}
	for _, phi := range phases {
		if sc.push(phi) {
			break
		}
	}
	return sc.finish(phaseWindow{data: phases})
}

// DecodeSyncBits majority-votes n bits at their known positions: bit k
// occupies phases[anchor+(PreambleBits+k)·BitPeriod ... +StableLen). A
// window with at least TauSync nonnegative values decodes to 0,
// otherwise 1 (§V; sign convention per package doc). anchor is the
// value returned by CapturePreamble.
func (d *Decoder) DecodeSyncBits(phases []float64, anchor, n int) ([]byte, error) {
	phases = d.prepare(phases)
	return d.decodeSyncBits(phases, anchor, n)
}

func (d *Decoder) decodeSyncBits(phases []float64, anchor, n int) ([]byte, error) {
	return d.decodeSyncBitsWin(phaseWindow{data: phases}, anchor, n, nil)
}

// SyncBitMargins reports, for each of n bits, the number of nonnegative
// values in its stable window — the x-axis of the paper's constellation
// diagram (Fig. 17).
func (d *Decoder) SyncBitMargins(phases []float64, anchor, n int) ([]int, error) {
	phases = d.prepare(phases)
	margins := make([]int, n)
	for k := 0; k < n; k++ {
		start := anchor + (PreambleBits+k)*d.p.BitPeriod
		end := start + d.p.StableLen
		if start < 0 || end > len(phases) {
			return margins[:k], fmt.Errorf("%w: bit %d", ErrTruncated, k)
		}
		_, nonneg := dsp.SignCounts(phases[start:end])
		margins[k] = nonneg
	}
	return margins, nil
}

// DecodeBits captures the preamble and then sync-decodes n raw bits.
func (d *Decoder) DecodeBits(phases []float64, n int) ([]byte, error) {
	prepared := d.prepare(phases)
	anchor, err := d.capturePreamble(prepared)
	if err != nil {
		return nil, err
	}
	return d.decodeSyncBits(prepared, anchor, n)
}

// DecodeFrame captures the preamble, reads the frame header to learn the
// data length, decodes the remaining bits and validates the checksum.
// If parsing fails at the captured anchor it retries one bit period to
// either side, recovering captures that locked on a period off.
//
// Batch decoding is one big chunk through the streaming FrameMachine:
// the capture is pushed whole, the stream is flushed, and the first
// terminal event is the result. The machine's decision points fire at
// the same stream positions regardless of chunking, so this is
// bit-identical to feeding the capture sample by sample.
func (d *Decoder) DecodeFrame(phases []float64) (*Frame, error) {
	m, err := d.NewBatchMachine()
	if err != nil {
		return nil, err
	}
	if err := m.PushChunk(phases); err != nil {
		return nil, err
	}
	m.Flush()
	for _, ev := range m.Events() {
		switch ev.Kind {
		case EventFrame:
			return ev.Frame, nil
		case EventDecodeError:
			return nil, ev.Err
		}
	}
	return nil, ErrNoPreamble
}
