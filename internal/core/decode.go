package core

import (
	"errors"
	"fmt"
	"math"

	"symbee/internal/dsp"
	"symbee/internal/zigbee"
)

// StablePhase is the magnitude of the stable phase difference a SymBee
// codeword produces at the idle listening: 4π/5 (§IV-B).
const StablePhase = 4 * math.Pi / 5

// Decoding errors.
var (
	ErrNoPreamble = errors.New("core: no SymBee preamble captured")
	ErrBadVersion = errors.New("core: frame version mismatch")
	ErrChecksum   = errors.New("core: frame checksum mismatch")
	ErrTruncated  = errors.New("core: phase stream ends before frame does")
)

// Decoder turns WiFi idle-listening phase streams back into SymBee bits
// and frames.
type Decoder struct {
	p Params
	// Compensation is added to every phase before decoding to undo the
	// ZigBee/WiFi channel frequency offset; wifi.CanonicalCompensation
	// (+4π/5) for any real channel pair, 0 for a baseband-aligned
	// capture (Appendix B).
	Compensation float64
	// CaptureThreshold is the minimum windowed mean of fold sums that
	// declares a preamble. The default is five standard deviations of
	// the signal-free fold noise floor (≈2.0 at 20 Msps, ≈1.4 at
	// 40 Msps, where the doubled window halves the floor's σ): deep
	// enough into the noise tail to make false captures rare, yet well
	// below the ideal preamble magnitude of PreambleBits·4π/5 ≈ 10.05,
	// and above anything the ZigBee synchronization header can fold to
	// (its period-matched pattern is capped near ±π/10 over most of the
	// window). See the fold-threshold ablation bench.
	CaptureThreshold float64

	// template is the ideal one-period phase profile of the bit-0
	// codeword (byte 0x67 in a codeword stream), used as a matched
	// filter to pin the preamble anchor: windows one period before the
	// true preamble mix in the ZigBee PPDU header and correlate
	// measurably worse, even for PHR bytes that resemble codewords.
	template []float64
	// templateRunOffset is the index within template where the stable
	// run begins (anchors point at stable-run starts).
	templateRunOffset int
}

// DefaultCaptureThreshold returns the default preamble detection
// threshold for a parameter set: five standard deviations of the
// fold-window noise floor. Phases of pure noise are uniform on (−π, π]
// (σ = π/√3); a fold window averages PreambleBits·StableLen of them.
func DefaultCaptureThreshold(p Params) float64 {
	sigmaFloor := math.Pi / math.Sqrt(3) * math.Sqrt(float64(PreambleBits)) / math.Sqrt(float64(p.StableLen))
	return 5 * sigmaFloor
}

// NewDecoder returns a decoder for the given parameters.
func NewDecoder(p Params, compensation float64) (*Decoder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	tmpl, runOffset, err := codewordTemplate(p)
	if err != nil {
		return nil, err
	}
	return &Decoder{
		p:                 p,
		Compensation:      compensation,
		CaptureThreshold:  DefaultCaptureThreshold(p),
		template:          tmpl,
		templateRunOffset: runOffset,
	}, nil
}

// codewordTemplate synthesizes the ideal phase profile of one bit-0
// period: the middle period of a noiseless 0x67 codeword stream.
func codewordTemplate(p Params) ([]float64, int, error) {
	mod, err := zigbee.NewModulator(p.SampleRate)
	if err != nil {
		return nil, 0, fmt.Errorf("core: template modulator: %w", err)
	}
	sig := mod.ModulateBytes([]byte{Bit0Byte, Bit0Byte, Bit0Byte}, zigbee.OrderMSBFirst)
	phases := dsp.PhaseDiffStream(sig, p.Lag)
	tmpl := make([]float64, p.BitPeriod)
	copy(tmpl, phases[p.BitPeriod:2*p.BitPeriod])
	start, _ := dsp.LongestStableRun(tmpl, 0.05)
	return tmpl, start, nil
}

// Params returns the decoder's parameter set.
func (d *Decoder) Params() Params { return d.p }

// prepare applies CFO compensation to a private copy (the input is
// never modified).
func (d *Decoder) prepare(phases []float64) []float64 {
	if d.Compensation == 0 {
		return phases
	}
	out := make([]float64, len(phases))
	copy(out, phases)
	return dsp.CompensatePhases(out, d.Compensation)
}

// DetectedBit is one bit found by unsynchronized decoding, anchored at
// the phase-stream index where its stable run begins.
type DetectedBit struct {
	Bit byte
	Pos int
}

// DecodeUnsync scans the phase stream with a StableLen window and emits
// a bit whenever at least StableLen−Tau values share a sign (§IV-C):
// nonnegative runs are bit 0 ((6,7) cross-observes at +4π/5) and
// negative runs bit 1. After each detection the scan jumps one bit
// period forward, since at most one SymBee bit exists per period.
func (d *Decoder) DecodeUnsync(phases []float64) []DetectedBit {
	phases = d.prepare(phases)
	var out []DetectedBit
	counter := dsp.NewMovingSignCounter(d.p.StableLen)
	need := d.p.StableLen - d.p.Tau
	i := 0
	for i < len(phases) {
		full, neg, nonneg := counter.Push(phases[i])
		i++
		if !full {
			continue
		}
		var bit byte
		switch {
		case nonneg >= need:
			bit = 0
		case neg >= need:
			bit = 1
		default:
			continue
		}
		anchor := i - d.p.StableLen
		out = append(out, DetectedBit{Bit: bit, Pos: anchor})
		// Skip to where the next bit's stable run can start.
		i = anchor + d.p.BitPeriod
		counter.Reset()
	}
	return out
}

// CapturePreamble locates the SymBee preamble (§V): the phase stream is
// folded with period BitPeriod and depth PreambleBits, and the unsync
// detector is applied to the fold sums. It returns the stream index
// where the stable run of the first preamble bit begins. After the
// first hit it keeps scanning for up to one StableLen to refine the
// anchor to the strongest window.
func (d *Decoder) CapturePreamble(phases []float64) (int, error) {
	return d.capturePreamble(d.prepare(phases))
}

func (d *Decoder) capturePreamble(phases []float64) (int, error) {
	folder := dsp.NewSlidingFolder(d.p.BitPeriod, PreambleBits)
	counter := dsp.NewMovingSignCounter(d.p.StableLen)
	meanTracker := dsp.NewMovingAverage(d.p.StableLen)
	foldSpan := d.p.BitPeriod * PreambleBits

	// Detection statistic: the mean of the StableLen fold sums in the
	// window — a matched filter for "PreambleBits coherent repetitions
	// of a nonnegative stable run". A majority-sign sanity check keeps
	// pathological heavy-tailed windows out.
	//
	// Candidate anchors (local maxima of the statistic, at most one per
	// bit period) are collected for a bounded span after the first
	// crossing: the ZigBee synchronization header — whose repeated
	// symbol 0 contains its own shorter stable run and folds coherently
	// — can trigger up to a full header length before the SymBee
	// preamble (15 bytes with PHY+MAC framing), and zero data bits
	// after the preamble fold identically to it.
	type candidate struct {
		anchor int
		mean   float64
	}
	var cands []candidate
	bestMean := 0.0
	bestIdx := -1
	remaining := -1 // >=0 once we are in the refinement phase
	for i, phi := range phases {
		sum, ok := folder.Push(phi)
		if !ok {
			continue
		}
		mean := meanTracker.Push(sum)
		full, _, nonneg := counter.Push(sum)
		if !full {
			continue
		}
		// The counter window covers fold anchors
		// [i-foldSpan+1-StableLen+1 .. i-foldSpan+1].
		anchor := i - foldSpan + 1 - d.p.StableLen + 1
		if mean >= d.CaptureThreshold && nonneg >= d.p.TauSync {
			if n := len(cands); n > 0 && anchor-cands[n-1].anchor < d.p.BitPeriod/2 {
				if mean > cands[n-1].mean {
					cands[n-1] = candidate{anchor, mean}
					if cands[n-1].mean > bestMean {
						bestMean, bestIdx = mean, n-1
					}
				}
			} else {
				cands = append(cands, candidate{anchor, mean})
				if mean > bestMean {
					bestMean, bestIdx = mean, len(cands)-1
				}
			}
			if remaining < 0 {
				remaining = 16*d.p.BitPeriod + 2*d.p.StableLen
			}
		}
		if remaining >= 0 {
			remaining--
			if remaining <= 0 {
				break
			}
		}
	}
	if bestIdx < 0 {
		return 0, ErrNoPreamble
	}
	// Selection. The fold mean alone cannot identify the preamble: a
	// run of zero DATA bits folds slightly STRONGER than the preamble
	// itself (the preamble's leading stable run is clipped by the PHR
	// junction, shrinking the usable window intersection to ≈86%),
	// while the ZigBee header folds at ≈75% and partial window overlaps
	// anywhere in between. So candidates within a generous band of the
	// maximum are re-scored with the codeword TEMPLATE over
	// PreambleBits periods — codeword-anchored candidates (preamble and
	// zero-runs) tie at the full level, the header scores ≤½ — and the
	// EARLIEST template-strong candidate wins: the preamble precedes
	// every data run.
	shortlist := cands[:0]
	for _, c := range cands {
		if c.mean >= 0.75*bestMean {
			shortlist = append(shortlist, c)
		}
	}
	// The fold plateau leaves ±10 samples of anchor jitter, and the
	// template decorrelates within a few samples of misalignment, so
	// each candidate is scored at its best alignment within a small
	// window — which simultaneously refines the anchor.
	maxS := 0.0
	scores := make([]float64, len(shortlist))
	for i := range shortlist {
		s, refined := d.alignTemplate(phases, shortlist[i].anchor)
		scores[i] = s
		shortlist[i].anchor = refined
		if s > maxS {
			maxS = s
		}
	}
	best := cands[bestIdx].anchor
	for i := range shortlist {
		if scores[i] >= 0.85*maxS {
			best = shortlist[i].anchor
			break
		}
	}
	// Template walk: pin the anchor to the first codeword period. A
	// genuine codeword period correlates at the full level while the
	// strongest possible impostor (PHR byte 0x37) reaches 61%, so 75%
	// splits the hypotheses with margin for the anchor jitter of noisy
	// captures. Walk forward off header periods (a selected partial
	// overlap), then back across any contiguous codeword run.
	if maxS > 0 {
		for steps := 0; steps < 16; steps++ {
			s, selfOK := d.templateScore(phases, best, 1)
			if !selfOK || s >= maxS*0.75 {
				break
			}
			best += d.p.BitPeriod
		}
		for best-d.p.BitPeriod >= 0 {
			s, prevOK := d.templateScore(phases, best-d.p.BitPeriod, 1)
			if !prevOK || s < maxS*0.75 {
				break
			}
			best -= d.p.BitPeriod
		}
	}
	return best, nil
}

// alignTemplate scores a candidate at its best alignment within ±16
// samples and returns that score along with the refined anchor.
func (d *Decoder) alignTemplate(phases []float64, anchor int) (float64, int) {
	bestS, bestA := 0.0, anchor
	for delta := -16; delta <= 16; delta += 2 {
		if s, ok := d.templateScore(phases, anchor+delta, PreambleBits); ok && s > bestS {
			bestS, bestA = s, anchor+delta
		}
	}
	return bestS, bestA
}

// templateScore is the matched-filter statistic behind the anchor
// walk-back: the correlation of `periods` consecutive bit periods
// starting at anchor with the ideal bit-0 phase profile, normalized per
// value. anchor points at a stable-run start; the template is aligned
// so its own run start coincides.
func (d *Decoder) templateScore(phases []float64, anchor, periods int) (float64, bool) {
	base := anchor - d.templateRunOffset
	end := base + (periods-1)*d.p.BitPeriod + len(d.template)
	if base < 0 || end > len(phases) {
		return 0, false
	}
	var s float64
	for r := 0; r < periods; r++ {
		off := base + r*d.p.BitPeriod
		for w, tv := range d.template {
			s += phases[off+w] * tv
		}
	}
	return s / float64(periods*len(d.template)), true
}

// DecodeSyncBits majority-votes n bits at their known positions: bit k
// occupies phases[anchor+(PreambleBits+k)·BitPeriod ... +StableLen). A
// window with at least TauSync nonnegative values decodes to 0,
// otherwise 1 (§V; sign convention per package doc). anchor is the
// value returned by CapturePreamble.
func (d *Decoder) DecodeSyncBits(phases []float64, anchor, n int) ([]byte, error) {
	phases = d.prepare(phases)
	return d.decodeSyncBits(phases, anchor, n)
}

func (d *Decoder) decodeSyncBits(phases []float64, anchor, n int) ([]byte, error) {
	bits := make([]byte, n)
	for k := 0; k < n; k++ {
		start := anchor + (PreambleBits+k)*d.p.BitPeriod
		end := start + d.p.StableLen
		if start < 0 || end > len(phases) {
			return bits[:k], fmt.Errorf("%w: bit %d needs [%d,%d), stream has %d",
				ErrTruncated, k, start, end, len(phases))
		}
		_, nonneg := dsp.SignCounts(phases[start:end])
		if nonneg >= d.p.TauSync {
			bits[k] = 0
		} else {
			bits[k] = 1
		}
	}
	return bits, nil
}

// SyncBitMargins reports, for each of n bits, the number of nonnegative
// values in its stable window — the x-axis of the paper's constellation
// diagram (Fig. 17).
func (d *Decoder) SyncBitMargins(phases []float64, anchor, n int) ([]int, error) {
	phases = d.prepare(phases)
	margins := make([]int, n)
	for k := 0; k < n; k++ {
		start := anchor + (PreambleBits+k)*d.p.BitPeriod
		end := start + d.p.StableLen
		if start < 0 || end > len(phases) {
			return margins[:k], fmt.Errorf("%w: bit %d", ErrTruncated, k)
		}
		_, nonneg := dsp.SignCounts(phases[start:end])
		margins[k] = nonneg
	}
	return margins, nil
}

// DecodeBits captures the preamble and then sync-decodes n raw bits.
func (d *Decoder) DecodeBits(phases []float64, n int) ([]byte, error) {
	prepared := d.prepare(phases)
	anchor, err := d.capturePreamble(prepared)
	if err != nil {
		return nil, err
	}
	return d.decodeSyncBits(prepared, anchor, n)
}

// DecodeFrame captures the preamble, reads the frame header to learn the
// data length, decodes the remaining bits and validates the checksum.
// If parsing fails at the captured anchor it retries one bit period to
// either side, recovering captures that locked on a period off.
func (d *Decoder) DecodeFrame(phases []float64) (*Frame, error) {
	prepared := d.prepare(phases)
	anchor, err := d.capturePreamble(prepared)
	if err != nil {
		return nil, err
	}
	return d.decodeFrameAtWithRetry(prepared, anchor)
}

func (d *Decoder) decodeFrameAtWithRetry(prepared []float64, anchor int) (*Frame, error) {
	frame, err := d.decodeFrameAt(prepared, anchor)
	if err == nil {
		return frame, nil
	}
	for _, shift := range []int{-d.p.BitPeriod, d.p.BitPeriod} {
		if frame, retryErr := d.decodeFrameAt(prepared, anchor+shift); retryErr == nil {
			return frame, nil
		}
	}
	return nil, err
}

func (d *Decoder) decodeFrameAt(prepared []float64, anchor int) (*Frame, error) {
	header, err := d.decodeSyncBits(prepared, anchor, HeaderBits)
	if err != nil {
		return nil, err
	}
	dataLen := 0
	for _, b := range header[8:16] {
		dataLen = dataLen<<1 | int(b)
	}
	if dataLen > MaxDataBytes {
		return nil, fmt.Errorf("%w: header claims %d data bytes", ErrTruncated, dataLen)
	}
	total := HeaderBits + dataLen*8 + CRCBits
	bits, err := d.decodeSyncBits(prepared, anchor, total)
	if err != nil {
		return nil, err
	}
	return parseFrameBits(bits)
}
