package core

import "math"

// Soft-decision decoding: an extension beyond the paper. §IV-C decodes
// by counting signs against the 0 boundary, which discards how far each
// phase sits from the two codeword hypotheses ±4π/5. The soft decoder
// accumulates per-value log-likelihood-style scores instead — the
// angular distance to each hypothesis — which buys measurable BER at
// low SNR for free (the phases are already computed). See the
// soft-decision ablation bench.

// SoftBit carries a soft decision for one bit position.
type SoftBit struct {
	// Bit is the hard decision.
	Bit byte
	// LLR is the accumulated score difference: positive favors bit 0
	// (stable phase +4π/5), negative favors bit 1. Magnitude is
	// confidence.
	LLR float64
}

// softScore accumulates the hypothesis-distance difference over one
// stable window: for each phase value, distance to −4π/5 minus distance
// to +4π/5 (positive → closer to the bit-0 phase).
func softScore(window []float64) float64 {
	var s float64
	for _, phi := range window {
		d0 := angularDistance(phi, StablePhase)
		d1 := angularDistance(phi, -StablePhase)
		s += d1 - d0
	}
	return s
}

func angularDistance(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// DecodeSyncBitsSoft is DecodeSyncBits with soft decisions: bit k's
// window is scored against both codeword phases instead of sign-counted.
func (d *Decoder) DecodeSyncBitsSoft(phases []float64, anchor, n int) ([]SoftBit, error) {
	prepared := d.prepare(phases)
	out := make([]SoftBit, n)
	for k := 0; k < n; k++ {
		start := anchor + (PreambleBits+k)*d.p.BitPeriod
		end := start + d.p.StableLen
		if start < 0 || end > len(prepared) {
			return out[:k], errTruncatedBit(k, start, end, len(prepared))
		}
		llr := softScore(prepared[start:end])
		bit := byte(0)
		if llr < 0 {
			bit = 1
		}
		out[k] = SoftBit{Bit: bit, LLR: llr}
	}
	return out, nil
}

// DecodeBitsSoft captures the preamble and soft-decodes n bits.
func (d *Decoder) DecodeBitsSoft(phases []float64, n int) ([]SoftBit, error) {
	prepared := d.prepare(phases)
	anchor, err := d.capturePreamble(prepared)
	if err != nil {
		return nil, err
	}
	soft := make([]SoftBit, n)
	for k := 0; k < n; k++ {
		start := anchor + (PreambleBits+k)*d.p.BitPeriod
		end := start + d.p.StableLen
		if start < 0 || end > len(prepared) {
			return soft[:k], errTruncatedBit(k, start, end, len(prepared))
		}
		llr := softScore(prepared[start:end])
		bit := byte(0)
		if llr < 0 {
			bit = 1
		}
		soft[k] = SoftBit{Bit: bit, LLR: llr}
	}
	return soft, nil
}

func errTruncatedBit(k, start, end, have int) error {
	return &truncatedError{bit: k, start: start, end: end, have: have}
}

// truncatedError wraps ErrTruncated with position detail.
type truncatedError struct {
	bit, start, end, have int
}

func (e *truncatedError) Error() string {
	return "core: phase stream ends before frame does (soft bit window out of range)"
}

func (e *truncatedError) Unwrap() error { return ErrTruncated }
