package core

import "math"

// This file is the batched idle-hunt kernel: the chunk-at-a-time
// counterpart of preambleScanner.push for the cold-hunt state the
// receiver sits in ~99% of the time on an idle channel.
//
// The scalar path pays three ring data structures (folder, windowed
// mean, sign counter) per sample. The batch kernel removes all of them:
// fold sums are gathered directly from the retained phase history with
// a 4-tap strided read, and the windowed mean/sign state is carried in
// three scalars (msum, neg, plus one chronological ring of fold sums).
// On top of that sits a decimated pre-gate that proves whole segments
// of anchors cannot reach the capture threshold and skips them without
// touching any per-anchor state.
//
// Bit-identity with the scalar path is engineered, not hoped for:
//
//   - Both paths re-anchor the windowed state (recompute the window sum
//     oldest→newest, recount negatives) at the same deterministic
//     absolute fold anchors: every multiple of huntSegment once the
//     windows are full. At those points the state is a pure function of
//     the phase window, so a segment whose interior the batch path never
//     evaluated resumes with exactly the state the scalar path holds.
//   - Between re-anchors the kernel replicates the scalar update order
//     exactly: the fold sum adds taps oldest→newest (SlidingFolder.Push
//     order) and the window sum subtracts the evicted value before
//     adding the new one (MovingAverage.Push order).
//   - The pre-gate is sound by construction: it evaluates exact window
//     means at decimated checkpoints and adds the worst-case Lipschitz
//     slack of the statistic between checkpoints, so a skipped anchor
//     provably could not have crossed the threshold (analysis in
//     DESIGN.md §13). A gate false-alarm only costs speed: the segment
//     is evaluated exactly.
//
// The equivalence is pinned by TestHuntScalarBatchEquivalence and the
// golden trace fixtures, which run both paths over identical streams.

const (
	// huntSegment is the re-anchor period in fold anchors, and the
	// granularity at which the pre-gate skips. Must be a power of two
	// (the scalar path tests anchors with a mask). 512 keeps re-anchor
	// cost ≈0.3 adds/sample while bounding the deferred-tail lag.
	huntSegment = 512
	// gateDecim is the pre-gate checkpoint spacing in anchors. The gate
	// slides four StableLen-run sums by gateDecim between checkpoints:
	// ~8/gateDecim adds per anchor, traded against the Lipschitz slack
	// (gateDecim/2)·2·PreambleBits·π/StableLen it must leave under the
	// threshold.
	gateDecim = 4
	// gateMargin absorbs floating-point drift between the gate's sliding
	// checkpoint sums and the kernel's incremental window sums. Both are
	// re-derived fresh every segment, so the true drift is below 1e-9;
	// 1e-6 leaves three orders of magnitude of headroom while remaining
	// negligible against the ≈0.6 Lipschitz slack.
	gateMargin = 1e-6
)

// huntGateSlack returns the pre-gate's between-checkpoint slack: the
// worst-case travel of the windowed fold mean over the gateDecim/2
// anchors separating any anchor from its nearest checkpoint. One anchor
// step exchanges PreambleBits phases (each in [-π, π]) in the
// StableLen-window of fold sums, so the mean moves by at most
// 2·PreambleBits·π/StableLen per step.
func huntGateSlack(p Params) float64 {
	perStep := 2 * float64(PreambleBits) * math.Pi / float64(p.StableLen)
	return perStep * float64(gateDecim/2)
}

// huntChunk consumes the buffered phase stream [s.i, n) from win,
// exactly as a loop of push(win.at(s.i)) would, and reports whether the
// scan is complete. scalarOnly forces the per-sample reference path
// (the equivalence tests diff the two). flushed marks end of stream:
// the kernel may otherwise defer an idle frontier tail shorter than a
// segment until more phases arrive (deferral is invisible — a provably
// idle tail emits nothing — but a flush must drain it).
//
//symbee:hotpath
func (s *preambleScanner) huntChunk(win phaseWindow, n int, scalarOnly, flushed bool) bool {
	if s.done {
		return true
	}
	stable := s.d.p.StableLen
	for s.i < n {
		// The batch kernel runs only in the cold hunt: locked scanners
		// are in the bounded refinement span where per-sample cost no
		// longer matters, and the warm-up before the first re-anchor
		// boundary has no batch-derivable state. PreambleBits != 4 never
		// holds today (compile-time constant); the guard documents the
		// kernel's 4-tap specialization.
		a := s.i - s.foldSpan + 1
		if scalarOnly || PreambleBits != 4 || s.locked() ||
			(!s.batchValid && (a-s.start < stable || a&(huntSegment-1) != 0)) {
			if s.push(win.at(s.i)) {
				return true
			}
			continue
		}
		if s.huntBatch(win, n, flushed) {
			// Locked: the handoff rebuilt the scalar rings; the
			// refinement span continues per-sample above.
			continue
		}
		// Everything processable was consumed (or an idle frontier tail
		// was deferred); s.i marks the resume point either way.
		return false
	}
	return false
}

// huntBatch runs the batched kernel from fold anchor s.i-foldSpan+1 to
// the last processable anchor, skipping segments the pre-gate proves
// idle. It returns true when a threshold crossing locked the scanner
// (state handed back to the scalar rings); otherwise it has consumed
// the input, except possibly an idle sub-segment frontier tail, which
// stays deferred at its segment boundary unless flushed.
func (s *preambleScanner) huntBatch(win phaseWindow, n int, flushed bool) bool {
	aEnd := n - s.foldSpan + 1 // one past the last processable anchor
	a := s.i - s.foldSpan + 1
	for a < aEnd {
		if a&(huntSegment-1) == 0 {
			// Segment boundary: both paths re-anchor here, so state may
			// be re-derived fresh — which is what makes gate skips free.
			e := a + huntSegment
			partial := e > aEnd
			if partial {
				e = aEnd
			}
			if s.gateIdle(win, a, e) {
				if partial && !flushed {
					// Idle frontier tail: defer until more phases
					// arrive, so the next call re-gates the fuller
					// segment from this same boundary.
					s.setScanPos(a)
					return false
				}
				s.batchValid = false
				a = e
				continue
			}
			s.rederive(win, a)
			if s.runSpan(win, a, e) {
				return true
			}
			a = e
		} else {
			// Mid-segment resume: carried state continues exactly to
			// the next boundary (batchValid holds by construction — the
			// only mid-segment entries are chunk-boundary resumes of a
			// segment this kernel was already evaluating).
			e := a - (a & (huntSegment - 1)) + huntSegment
			if e > aEnd {
				e = aEnd
			}
			if s.runSpan(win, a, e) {
				return true
			}
			a = e
		}
	}
	s.setScanPos(aEnd)
	return false
}

// setScanPos positions the scanner so the next consumed phase completes
// fold anchor a: the scalar push of stream index i completes anchor
// i-foldSpan+1.
func (s *preambleScanner) setScanPos(a int) {
	s.i = a + s.foldSpan - 1
}

// rederive rebuilds the kernel's windowed state fresh at segment-start
// anchor a: the chronological ring of fold sums for anchors
// [a-StableLen, a), their oldest→newest sum, and the negative count —
// exactly the state the scalar path holds after its Reanchor calls at
// the same position.
func (s *preambleScanner) rederive(win phaseWindow, a int) {
	p := s.d.p.BitPeriod
	stable := s.d.p.StableLen
	data := win.data
	j := a - stable - win.base
	var msum float64
	neg := 0
	for k := 0; k < stable; k++ {
		f := data[j] + data[j+p] + data[j+2*p] + data[j+3*p]
		s.foldRing[k] = f
		msum += f
		if f < 0 {
			neg++
		}
		j++
	}
	s.foldPos = 0
	s.msum = msum
	s.neg = neg
	s.batchValid = true
}

// runSpan evaluates the exact detection statistic at every fold anchor
// in [a, e) using the carried kernel state, replicating the scalar
// update order bit for bit. On a threshold crossing that locks the
// scanner it hands the state back to the scalar rings and returns true;
// otherwise it leaves the carried state continuing at anchor e.
//
//symbee:hotpath
func (s *preambleScanner) runSpan(win phaseWindow, a, e int) bool {
	d := s.d
	p := d.p.BitPeriod
	stable := d.p.StableLen
	thr := d.CaptureThreshold
	tau := d.p.TauSync
	// Sum-domain screen: mean ≥ thr requires msum ≥ thr·stable up to the
	// division rounding; the 1e-6 slack keeps the screen conservative so
	// the exact mean test below still decides every borderline case.
	thrSumLo := thr*float64(stable) - 1e-6
	invStable := float64(stable)
	data := win.data
	ring := s.foldRing
	j := a - win.base
	msum, neg, pos := s.msum, s.neg, s.foldPos
	for ; a < e; a++ {
		f := data[j] + data[j+p] + data[j+2*p] + data[j+3*p]
		old := ring[pos]
		ring[pos] = f
		pos++
		if pos == stable {
			pos = 0
		}
		// MovingAverage.Push order: evict, then add.
		msum -= old
		msum += f
		if old < 0 {
			neg--
		}
		if f < 0 {
			neg++
		}
		j++
		if stable-neg >= tau && msum >= thrSumLo {
			mean := msum / invStable
			if mean >= thr {
				if s.consider(a-stable+1, mean) {
					// First crossing: the scanner locked. Mirror the
					// locking push's own countdown tick, then hand the
					// state back to the scalar rings.
					s.remaining--
					s.msum, s.neg, s.foldPos = msum, neg, pos
					s.handoff(win, a)
					return true
				}
			}
		}
	}
	s.msum, s.neg, s.foldPos = msum, neg, pos
	s.setScanPos(e)
	s.batchValid = true
	return false
}

// handoff rebuilds the scalar rings from the kernel state after a lock
// at fold anchor a, leaving the scanner exactly as if every phase had
// gone through push: the folder ring holds the last foldSpan phases,
// and the mean/counter rings hold the chronological window of fold
// sums with the carried (not recomputed) running sum.
//
//symbee:coldpath
func (s *preambleScanner) handoff(win phaseWindow, a int) {
	s.i = a + s.foldSpan // just past the locking push
	k := copy(s.handScratch, s.foldRing[s.foldPos:])
	copy(s.handScratch[k:], s.foldRing[:s.foldPos])
	s.folder.LoadWindow(win.data[s.i-s.foldSpan-win.base : s.i-win.base])
	s.mean.LoadWindow(s.handScratch, s.msum)
	s.counter.LoadWindow(s.handScratch)
	s.batchValid = false
}

// gateIdle reports whether no fold anchor in [a, e) can reach the
// capture threshold, by evaluating the exact windowed fold mean at
// checkpoints every gateDecim anchors (endpoints forced) and allowing
// the worst-case Lipschitz travel gateSlack between checkpoints. The
// windowed mean at anchor c is the average of StableLen fold sums,
// which regroups into PreambleBits sliding StableLen-run sums of the
// phase stream itself:
//
//	mean(c) = (1/StableLen) Σ_{i<PreambleBits} Q(c-StableLen+1 + i·P)
//	   Q(q) = Σ_{t<StableLen} φ[q+t]
//
// so checkpoints cost 2·PreambleBits adds per arm-slide step instead
// of a full window rebuild. The checkpoint sums are re-derived fresh at
// every gate call, so their drift stays far below gateMargin.
//
//symbee:hotpath
func (s *preambleScanner) gateIdle(win phaseWindow, a, e int) bool {
	d := s.d
	stable := d.p.StableLen
	p := d.p.BitPeriod
	// Compare in the sum domain: idle iff every checkpoint's four-arm
	// sum stays under (thr - slack - margin)·StableLen.
	limit := (d.CaptureThreshold - s.gateSlack - gateMargin) * float64(stable)
	if limit <= 0 {
		return false // degenerate threshold: the gate can never help
	}
	data := win.data
	// Arm 0 covers phases [a-StableLen+1, a+1); arms 1..3 sit one bit
	// period apart. All reads lie within the processable span.
	off := a - stable + 1 - win.base
	var total float64
	for _, arm := range [4]int{off, off + p, off + 2*p, off + 3*p} {
		for _, v := range data[arm : arm+stable] {
			total += v
		}
	}
	if total >= limit {
		return false
	}
	for c := a; c < e-1; {
		step := gateDecim
		if c+step > e-1 {
			step = e - 1 - c
		}
		for t := 0; t < step; t++ {
			idx := off + t
			total += data[idx+stable] - data[idx]
			total += data[idx+p+stable] - data[idx+p]
			total += data[idx+2*p+stable] - data[idx+2*p]
			total += data[idx+3*p+stable] - data[idx+3*p]
		}
		off += step
		c += step
		if total >= limit {
			return false
		}
	}
	return true
}
