package core

import (
	"fmt"

	"symbee/internal/wifi"
	"symbee/internal/zigbee"
)

// Link bundles the full SymBee pipeline: payload encoding, the ZigBee
// PHY transmitter, the WiFi idle-listening front-end and the phase
// decoder. A channel model (package channel) is applied by the caller
// between Transmit* and Receive*.
type Link struct {
	params  Params
	order   zigbee.SymbolOrder
	mod     *zigbee.Modulator
	fe      *wifi.FrontEnd
	decoder *Decoder
}

// NewLink builds a link at the given parameters. compensation is the
// CFO compensation the receiver applies (wifi.CanonicalCompensation when
// the channel model injects a real carrier offset, 0 otherwise).
func NewLink(p Params, compensation float64) (*Link, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mod, err := zigbee.NewModulator(p.SampleRate)
	if err != nil {
		return nil, fmt.Errorf("core: link modulator: %w", err)
	}
	fe, err := wifi.NewFrontEnd(p.SampleRate)
	if err != nil {
		return nil, fmt.Errorf("core: link front-end: %w", err)
	}
	if fe.Lag() != p.Lag {
		return nil, fmt.Errorf("core: lag mismatch: front-end %d, params %d", fe.Lag(), p.Lag)
	}
	dec, err := NewDecoder(p, compensation)
	if err != nil {
		return nil, err
	}
	return &Link{params: p, order: zigbee.OrderMSBFirst, mod: mod, fe: fe, decoder: dec}, nil
}

// Params returns the link's parameter set.
func (l *Link) Params() Params { return l.params }

// Decoder returns the link's phase decoder.
func (l *Link) Decoder() *Decoder { return l.decoder }

// PayloadToSignal wraps SymBee payload bytes in a ZigBee PPDU and
// modulates it to complex baseband. When the resulting PHR length byte
// would itself be a SymBee codeword (PSDU length 0x67) the payload is
// padded by one byte: such a PHR is phase-indistinguishable from a
// preamble bit and would make the anchor ambiguous. The pad byte is not
// a codeword, so both the WiFi and ZigBee receivers ignore it.
func (l *Link) PayloadToSignal(payload []byte) ([]complex128, error) {
	if len(payload)+zigbee.FCSLen == int(Bit0Byte) {
		padded := make([]byte, len(payload)+1)
		copy(padded, payload)
		payload = padded
	}
	ppdu, err := zigbee.BuildPPDU(payload)
	if err != nil {
		return nil, err
	}
	return l.mod.ModulateBytes(ppdu, l.order), nil
}

// TransmitBits modulates a raw SymBee bit string (preamble prepended)
// into one ZigBee packet.
func (l *Link) TransmitBits(bits []byte) ([]complex128, error) {
	payload, err := EncodeBits(bits)
	if err != nil {
		return nil, err
	}
	return l.PayloadToSignal(payload)
}

// TransmitFrame modulates one SymBee frame into one ZigBee packet.
func (l *Link) TransmitFrame(f *Frame) ([]complex128, error) {
	payload, err := EncodeFrame(f)
	if err != nil {
		return nil, err
	}
	return l.PayloadToSignal(payload)
}

// TransmitFrameMAC is TransmitFrame with full IEEE 802.15.4 MAC framing:
// the SymBee codewords ride as the MSDU of a broadcast MAC data frame
// from the given short source address — exactly what a commodity node's
// normal send path produces. The WiFi-side decoder needs no change: the
// MAC header is just nine more non-codeword bytes for the preamble
// capture to skip.
func (l *Link) TransmitFrameMAC(f *Frame, src uint16, macSeq byte) ([]complex128, error) {
	payload, err := EncodeFrame(f)
	if err != nil {
		return nil, err
	}
	ppdu, err := zigbee.BuildDataPPDU(src, macSeq, payload)
	if err != nil {
		return nil, err
	}
	return l.mod.ModulateBytes(ppdu, l.order), nil
}

// Phases runs a received capture through the WiFi idle-listening block.
func (l *Link) Phases(capture []complex128) []float64 {
	return l.fe.PhaseStream(capture)
}

// ReceiveBits decodes n raw SymBee bits from a capture.
func (l *Link) ReceiveBits(capture []complex128, n int) ([]byte, error) {
	return l.decoder.DecodeBits(l.Phases(capture), n)
}

// ReceiveFrame decodes one SymBee frame from a capture.
func (l *Link) ReceiveFrame(capture []complex128) (*Frame, error) {
	return l.decoder.DecodeFrame(l.Phases(capture))
}

// PacketAirtime returns the on-air duration of a ZigBee packet carrying
// nBits SymBee bits (preamble included), in seconds.
func (l *Link) PacketAirtime(nBits int) float64 {
	return zigbee.Airtime(PreambleBits + nBits)
}
