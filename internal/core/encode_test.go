package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestBitByteMapping(t *testing.T) {
	if b, err := BitToByte(0); err != nil || b != 0x67 {
		t.Errorf("bit 0 → 0x%02X, %v", b, err)
	}
	if b, err := BitToByte(1); err != nil || b != 0xEF {
		t.Errorf("bit 1 → 0x%02X, %v", b, err)
	}
	if _, err := BitToByte(2); !errors.Is(err, ErrBadBit) {
		t.Errorf("bit 2: err = %v", err)
	}
	if bit, ok := ByteToBit(0x67); !ok || bit != 0 {
		t.Errorf("0x67 → %d,%v", bit, ok)
	}
	if bit, ok := ByteToBit(0xEF); !ok || bit != 1 {
		t.Errorf("0xEF → %d,%v", bit, ok)
	}
	if _, ok := ByteToBit(0x00); ok {
		t.Error("0x00 should not be a codeword")
	}
}

func TestEncodeBits(t *testing.T) {
	payload, err := EncodeBits([]byte{0, 1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0x67, 0x67, 0x67, 0x67, 0x67, 0xEF, 0xEF, 0x67}
	if !bytes.Equal(payload, want) {
		t.Errorf("payload = %X, want %X", payload, want)
	}
	if _, err := EncodeBits([]byte{2}); !errors.Is(err, ErrBadBit) {
		t.Errorf("err = %v", err)
	}
	if _, err := EncodeBits(make([]byte, MaxPayloadBits)); !errors.Is(err, ErrDataTooLong) {
		t.Errorf("err = %v", err)
	}
}

func TestMaxDataBytesBudget(t *testing.T) {
	// 125 payload byte slots: 4 preamble + 24 header + 16 CRC + 8·data.
	if MaxDataBytes != 10 {
		t.Errorf("MaxDataBytes = %d, want 10", MaxDataBytes)
	}
	f := &Frame{Seq: 1, Data: make([]byte, MaxDataBytes)}
	payload, err := EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) > MaxPayloadBits {
		t.Errorf("payload %d bytes exceeds ZigBee budget %d", len(payload), MaxPayloadBits)
	}
	f.Data = make([]byte, MaxDataBytes+1)
	if _, err := EncodeFrame(f); !errors.Is(err, ErrDataTooLong) {
		t.Errorf("err = %v", err)
	}
}

func TestFrameBroadcastRoundTrip(t *testing.T) {
	f := func(seq, flags byte, data []byte) bool {
		if len(data) > MaxDataBytes {
			data = data[:MaxDataBytes]
		}
		frame := &Frame{Seq: seq, Flags: flags & 0x0F, Data: data}
		payload, err := EncodeFrame(frame)
		if err != nil {
			return false
		}
		got, err := DecodeBroadcastPayload(payload)
		if err != nil {
			return false
		}
		return got.Seq == frame.Seq &&
			got.Flags == frame.Flags &&
			bytes.Equal(got.Data, frame.Data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeBroadcastPayloadErrors(t *testing.T) {
	t.Run("no preamble", func(t *testing.T) {
		if _, err := DecodeBroadcastPayload([]byte{1, 2, 3, 4, 5}); !errors.Is(err, ErrNoPreamble) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("corrupted codeword truncates frame", func(t *testing.T) {
		frame := &Frame{Seq: 9, Data: []byte{0xAA}}
		payload, err := EncodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		payload[10] = 0x33 // not a codeword: message cut short
		if _, err := DecodeBroadcastPayload(payload); err == nil {
			t.Error("expected parse failure")
		}
	})
	t.Run("flipped bit fails checksum", func(t *testing.T) {
		frame := &Frame{Seq: 9, Data: []byte{0xAA, 0xBB}}
		payload, err := EncodeFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one data codeword (0x67 ↔ 0xEF) after the header.
		idx := PreambleBits + HeaderBits + 3
		if payload[idx] == 0x67 {
			payload[idx] = 0xEF
		} else {
			payload[idx] = 0x67
		}
		if _, err := DecodeBroadcastPayload(payload); !errors.Is(err, ErrChecksum) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		frame := &Frame{Seq: 1}
		payload, _ := EncodeFrame(frame)
		// First ctrl bit is the MSB of version 0x5 = 0101: flip bit 1
		// (index PreambleBits+1) from 1 to 0 → version 0x1.
		payload[PreambleBits+1] = 0x67
		if _, err := DecodeBroadcastPayload(payload); !errors.Is(err, ErrBadVersion) {
			t.Errorf("err = %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		frame := &Frame{Seq: 1, Data: []byte{1, 2, 3}}
		payload, _ := EncodeFrame(frame)
		if _, err := DecodeBroadcastPayload(payload[:len(payload)-8]); !errors.Is(err, ErrTruncated) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestEncodeFrameStartsWithPreamble(t *testing.T) {
	payload, err := EncodeFrame(&Frame{Seq: 3, Data: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < PreambleBits; i++ {
		if payload[i] != Bit0Byte {
			t.Fatalf("payload[%d] = 0x%02X, want preamble byte 0x67", i, payload[i])
		}
	}
}
