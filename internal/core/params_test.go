package core

import (
	"math"
	"testing"
)

func TestParams20(t *testing.T) {
	p := Params20()
	if p.Lag != 16 || p.StableLen != 84 || p.BitPeriod != 640 || p.Tau != 10 || p.TauSync != 42 {
		t.Errorf("Params20 = %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Error(err)
	}
	if got := p.BitDuration(); math.Abs(got-32e-6) > 1e-12 {
		t.Errorf("BitDuration = %v, want 32µs", got)
	}
	if got := p.RawBitRate(); math.Abs(got-31250) > 1e-6 {
		t.Errorf("RawBitRate = %v, want 31.25 kbps", got)
	}
}

func TestParams40(t *testing.T) {
	// §VI-B: everything doubles at 40 Msps; the bit rate does not change.
	p := Params40()
	if p.Lag != 32 || p.StableLen != 168 || p.BitPeriod != 1280 || p.Tau != 20 || p.TauSync != 84 {
		t.Errorf("Params40 = %+v", p)
	}
	if got := p.RawBitRate(); math.Abs(got-31250) > 1e-6 {
		t.Errorf("RawBitRate = %v, want 31.25 kbps", got)
	}
}

func TestNewParamsRejectsOddRates(t *testing.T) {
	for _, rate := range []float64{0, -20e6, 30e6, 19e6} {
		if _, err := NewParams(rate); err == nil {
			t.Errorf("rate %v: expected error", rate)
		}
	}
}

func TestWithTau(t *testing.T) {
	p := Params20().WithTau(25)
	if p.Tau != 25 {
		t.Errorf("Tau = %d", p.Tau)
	}
	if Params20().Tau != 10 {
		t.Error("WithTau mutated the base params")
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	good := Params20()
	tests := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero rate", func(p *Params) { p.SampleRate = 0 }},
		{"zero lag", func(p *Params) { p.Lag = 0 }},
		{"negative tau", func(p *Params) { p.Tau = -1 }},
		{"tau too large", func(p *Params) { p.Tau = p.StableLen }},
		{"tauSync zero", func(p *Params) { p.TauSync = 0 }},
		{"tauSync too large", func(p *Params) { p.TauSync = p.StableLen + 1 }},
		{"stable >= period", func(p *Params) { p.StableLen = p.BitPeriod }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := good
			tt.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Error("expected validation error")
			}
		})
	}
}
